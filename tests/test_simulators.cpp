// Fabric simulators: asymptotics match the analytic bounds of §5.2 and the
// event-level models bound the barrier-level ones.
#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "mcf/timestepped.hpp"
#include "runtime/ct_simulator.hpp"
#include "runtime/event_sim.hpp"
#include "runtime/sf_simulator.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/compile_path.hpp"

namespace a2a {
namespace {

TEST(SfSimulator, LargeBufferThroughputApproachesUpperBound) {
  const DiGraph g = make_hypercube(3);
  const auto ts = solve_tsmcf_exact(g, 4, all_nodes(g));
  const LinkSchedule sched = compile_tsmcf_schedule(g, ts);
  const Fabric fabric = gpu_mscl_fabric();
  // Upper bound (N-1) F b = 7 * 0.25 * 3.125 = 5.47 GB/s.
  const double ub = 7 * 0.25 * fabric.link_GBps;
  const auto big = simulate_link_schedule(g, sched, 256e6 / 8, 8, fabric);
  EXPECT_GT(big.algo_throughput_GBps, 0.93 * ub);
  EXPECT_LE(big.algo_throughput_GBps, ub * 1.02);
}

TEST(SfSimulator, SmallBuffersAreLatencyBound) {
  const DiGraph g = make_hypercube(3);
  const auto ts = solve_tsmcf_exact(g, 4, all_nodes(g));
  const LinkSchedule sched = compile_tsmcf_schedule(g, ts);
  const Fabric fabric = gpu_mscl_fabric();
  const auto small = simulate_link_schedule(g, sched, 1024, 8, fabric);
  const auto big = simulate_link_schedule(g, sched, 64e6, 8, fabric);
  EXPECT_LT(small.algo_throughput_GBps, 0.2 * big.algo_throughput_GBps);
  // Latency floor: steps * sync.
  EXPECT_GE(small.seconds, sched.num_steps * fabric.step_sync_s);
}

TEST(SfSimulator, ThroughputMonotoneInBufferSize) {
  const DiGraph g = make_ring(4);
  const auto ts = solve_tsmcf_exact(g, 3, all_nodes(g));
  const LinkSchedule sched = compile_tsmcf_schedule(g, ts);
  const Fabric fabric = cpu_oneccl_fabric();
  double prev = 0;
  for (double buf = 1 << 13; buf <= (1 << 28); buf *= 16) {
    const auto r = simulate_link_schedule(g, sched, buf / 4, 4, fabric);
    EXPECT_GE(r.algo_throughput_GBps, prev - 1e-9);
    prev = r.algo_throughput_GBps;
  }
}

TEST(SfSimulator, AugmentedEdgeCapacityActsAsBandwidth) {
  // A capacity-4 edge (host link at 100 Gbps over 25 Gbps units) moves bytes
  // 4x faster.
  DiGraph g(2);
  g.add_edge(0, 1, 4.0);
  LinkSchedule sched;
  sched.num_nodes = 2;
  sched.num_steps = 1;
  sched.transfers.push_back(
      Transfer{Chunk{0, 1, Rational(0), Rational(1)}, 0, 1, 1});
  Fabric f = cpu_oneccl_fabric();
  f.step_sync_s = 0;
  const auto r = simulate_link_schedule(g, sched, 1e9, 2, f);
  EXPECT_NEAR(r.seconds, 1e9 / (4 * 3.125e9), 1e-6);
}

TEST(EventSim, NoSlowerInformationThanBarrierModel) {
  // Without the per-step barrier, completion can only be earlier (up to the
  // small per-chunk overhead).
  const DiGraph g = make_hypercube(3);
  const auto ts = solve_tsmcf_exact(g, 4, all_nodes(g));
  const LinkSchedule sched = compile_tsmcf_schedule(g, ts);
  Fabric fabric = gpu_mscl_fabric();
  fabric.per_chunk_s = 0.0;
  const double barrier =
      simulate_link_schedule(g, sched, 16e6, 8, fabric).seconds;
  const double event =
      simulate_link_schedule_events(g, sched, 16e6, 8, fabric).seconds;
  EXPECT_LE(event, barrier + 1e-9);
}

TEST(CtSimulator, RespectsInjectionCap) {
  // A path schedule on the 27-node torus: injection 12.5 GB/s bounds
  // throughput at (N-1)m/T <= 12.5 * (N-1)/N... i.e. T >= (N-1)m/injection.
  const DiGraph g = make_torus({3, 3, 3});
  DecomposedOptions opts;
  opts.master = MasterMode::kFptas;
  opts.fptas_epsilon = 0.05;
  const auto flows = solve_decomposed_mcf(g, all_nodes(g), opts);
  const PathSchedule sched =
      compile_path_schedule(g, paths_from_link_flows(g, flows));
  const Fabric fabric = hpc_cerio_fabric();
  const double shard = 8e6;
  const auto r = simulate_path_schedule(g, sched, shard, 27, fabric);
  EXPECT_GE(r.seconds, 26 * shard / (fabric.injection_GBps * 1e9) - 1e-9);
}

TEST(CtSimulator, QpContentionDegradesManyFlowSchedules) {
  Fabric fabric = hpc_cerio_fabric();
  EXPECT_DOUBLE_EQ(fabric.effective_link_GBps(10), fabric.link_GBps);
  EXPECT_LT(fabric.effective_link_GBps(10000), fabric.link_GBps);
  EXPECT_LE(fabric.effective_link_GBps(1e9), fabric.link_GBps);
  EXPECT_GE(fabric.effective_link_GBps(1e9), 0.25 * fabric.link_GBps);
}

TEST(CtSimulator, EventModelTracksClosedForm) {
  const DiGraph g = make_hypercube(3);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  const PathSchedule sched =
      compile_path_schedule(g, paths_from_link_flows(g, flows));
  const Fabric fabric = hpc_cerio_fabric();
  const double shard = 64e6;
  const auto closed = simulate_path_schedule(g, sched, shard, 8, fabric);
  const auto event = simulate_path_schedule_events(g, sched, shard, 8, fabric);
  // Same steady-state regime: within 2.5x of each other at large buffers.
  // (The MCF LP is degenerate, but the primal ratio test breaks degenerate
  // ties deterministically — larger pivot magnitude, then lower basic
  // index — so the chosen optimal vertex, the compiled schedule, and this
  // ratio are stable run over run; measured 2.25x on this fixture.)
  EXPECT_LT(event.seconds, 2.5 * closed.seconds);
  EXPECT_GT(event.seconds, closed.seconds / 2.5);
}

TEST(CtSimulator, CutThroughBeatsStoreAndForwardAtSmallBuffers) {
  // §5.2: path-based schedules win at small buffers because they avoid the
  // per-step global synchronization.
  const DiGraph g = make_torus({3, 3});
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  const auto cpaths = paths_from_link_flows(g, flows);
  const LinkSchedule link_sched = unroll_rate_schedule(g, cpaths);
  const PathSchedule path_sched = compile_path_schedule(g, cpaths);
  const Fabric sf = cpu_oneccl_fabric();
  const Fabric ct = hpc_cerio_fabric();
  const double shard = 64e3 / 9;  // small buffer
  const double t_link = simulate_link_schedule(g, link_sched, shard, 9, sf).seconds;
  const double t_path = simulate_path_schedule(g, path_sched, shard, 9, ct).seconds;
  EXPECT_LT(t_path, t_link);
}

}  // namespace
}  // namespace a2a
