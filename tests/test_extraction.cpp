// Widest-path extraction and flow post-processing (§3.2.1 / §3.1.1).
#include "mcf/extraction.hpp"

#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "mcf/concurrent_flow.hpp"

namespace a2a {
namespace {

TEST(Extraction, CancelCyclesRemovesPureCirculation) {
  const DiGraph g = make_ring(4);  // bidirectional
  std::vector<double> flow(static_cast<std::size_t>(g.num_edges()), 0.0);
  // Put 1 unit on the directed cycle 0->1->2->3->0.
  for (int i = 0; i < 4; ++i) {
    const EdgeId e = g.find_edge(i, (i + 1) % 4);
    flow[static_cast<std::size_t>(e)] = 1.0;
  }
  cancel_cycles(g, flow);
  for (const double f : flow) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(Extraction, CancelCyclesPreservesAcyclicFlow) {
  DiGraph g(3);
  const EdgeId a = g.add_edge(0, 1);
  const EdgeId b = g.add_edge(1, 2);
  std::vector<double> flow{0.7, 0.7};
  cancel_cycles(g, flow);
  EXPECT_DOUBLE_EQ(flow[static_cast<std::size_t>(a)], 0.7);
  EXPECT_DOUBLE_EQ(flow[static_cast<std::size_t>(b)], 0.7);
}

TEST(Extraction, WidestPathsDecreasingAndConserving) {
  // Diamond: 0->1->3 carries 0.6, 0->2->3 carries 0.4.
  DiGraph g(4);
  const EdgeId a1 = g.add_edge(0, 1);
  const EdgeId a2 = g.add_edge(1, 3);
  const EdgeId b1 = g.add_edge(0, 2);
  const EdgeId b2 = g.add_edge(2, 3);
  std::vector<double> flow(4, 0.0);
  flow[static_cast<std::size_t>(a1)] = flow[static_cast<std::size_t>(a2)] = 0.6;
  flow[static_cast<std::size_t>(b1)] = flow[static_cast<std::size_t>(b2)] = 0.4;
  const auto paths = extract_widest_paths(g, 0, 3, flow);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NEAR(paths[0].weight, 0.6, 1e-9);  // widest first (§3.2.1 step 4)
  EXPECT_NEAR(paths[1].weight, 0.4, 1e-9);
  EXPECT_GE(paths[0].weight, paths[1].weight);
}

TEST(Extraction, TargetStopsEarly) {
  DiGraph g(2);
  g.add_edge(0, 1);
  const auto paths = extract_widest_paths(g, 0, 1, {1.0}, 0.3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].weight, 0.3, 1e-9);
}

TEST(Extraction, PruneRestoresExactConservation) {
  // Flow with surplus near the source (allowed by the relaxed constraint 3).
  DiGraph g(3);
  const EdgeId a = g.add_edge(0, 1);
  const EdgeId b = g.add_edge(1, 2);
  g.add_edge(0, 2);
  std::vector<double> flow(3, 0.0);
  flow[static_cast<std::size_t>(a)] = 0.9;  // more than forwarded
  flow[static_cast<std::size_t>(b)] = 0.5;
  flow[2] = 0.1;
  const auto pruned = prune_to_exact_flow(g, 0, 2, flow, 0.6);
  double in1 = pruned[static_cast<std::size_t>(a)];
  double out1 = pruned[static_cast<std::size_t>(b)];
  EXPECT_NEAR(in1, out1, 1e-9);
  EXPECT_NEAR(pruned[static_cast<std::size_t>(b)] + pruned[2], 0.6, 1e-9);
  EXPECT_THROW(prune_to_exact_flow(g, 0, 2, flow, 0.7), InvalidArgument);
}

TEST(Extraction, ExtractionOfMcfSolutionDeliversF) {
  const DiGraph g = make_hypercube(3);
  const auto sol = solve_link_mcf_exact(g, all_nodes(g));
  for (int k = 0; k < sol.pairs.count(); ++k) {
    const auto [s, d] = sol.pairs.nodes(k);
    const auto paths = extract_widest_paths(
        g, s, d, sol.per_commodity[static_cast<std::size_t>(k)],
        sol.concurrent_flow);
    double total = 0;
    for (const auto& p : paths) {
      EXPECT_TRUE(path_is_valid(g, p.path, s, d));
      total += p.weight;
    }
    EXPECT_NEAR(total, sol.concurrent_flow, 1e-6);
  }
}

TEST(Extraction, SplitSourceFlowDeliversAllSinks) {
  const DiGraph g = make_torus({3, 3});
  const auto master = solve_master_lp(g, all_nodes(g));
  const double F = master.concurrent_flow;
  for (int si = 0; si < g.num_nodes(); ++si) {
    std::vector<NodeId> sinks;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u != si) sinks.push_back(u);
    }
    const auto split = split_source_flow(
        g, si, sinks, master.per_source[static_cast<std::size_t>(si)], F);
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      EXPECT_NEAR(split.delivered[i], F, 1e-6)
          << "source " << si << " sink " << sinks[i];
      // Per-sink flow is a valid path flow of that amount.
      double arrived = 0;
      for (const EdgeId e : g.in_edges(sinks[i])) {
        arrived += split.per_sink_flow[i][static_cast<std::size_t>(e)];
      }
      EXPECT_NEAR(arrived, split.delivered[i], 1e-6);
    }
    // Splits stay within the master's per-source budget.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      double used = 0;
      for (std::size_t i = 0; i < sinks.size(); ++i) {
        used += split.per_sink_flow[i][static_cast<std::size_t>(e)];
      }
      EXPECT_LE(used, master.per_source[static_cast<std::size_t>(si)]
                              [static_cast<std::size_t>(e)] +
                          1e-6);
    }
  }
}

TEST(Extraction, SplitSourceFlowPartialWhenCapacityShort) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto split = split_source_flow(g, 0, {1, 2}, {0.5, 0.25}, 1.0);
  EXPECT_NEAR(split.delivered[0], 0.5, 1e-9);
  EXPECT_NEAR(split.delivered[1], 0.25, 1e-9);
}

}  // namespace
}  // namespace a2a
