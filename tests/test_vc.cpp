// Deadlock-freedom (§5.5): LASH layer assignment keeps every layer's
// channel-dependency graph acyclic, and LASH-sequential needs <= 4 layers on
// the paper's route families.
#include "runtime/vc.hpp"

#include <gtest/gtest.h>

#include "baselines/dor.hpp"
#include "baselines/sssp.hpp"
#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/compile_path.hpp"

namespace a2a {
namespace {

/// Re-checks an assignment: per layer, routes must have an acyclic CDG.
void check_assignment(const DiGraph& g, const std::vector<Path>& routes,
                      const VcAssignment& a) {
  ASSERT_EQ(a.layer.size(), routes.size());
  for (int layer = 0; layer < a.num_layers; ++layer) {
    std::vector<Path> in_layer;
    for (std::size_t i = 0; i < routes.size(); ++i) {
      if (a.layer[i] == layer) in_layer.push_back(routes[i]);
    }
    EXPECT_TRUE(cdg_is_acyclic(g, in_layer)) << "layer " << layer;
  }
}

TEST(Vc, DorOnTorusIsNotDeadlockFreeButMeshIs) {
  // Classic result [17]: DOR deadlocks on wraparound rings, never on meshes.
  const DiGraph mesh = make_mesh({3, 3});
  const auto mesh_plan = dor_routes(mesh, {3, 3}, false);
  EXPECT_TRUE(cdg_is_acyclic(mesh, mesh_plan.routes));

  const DiGraph torus = make_torus({4, 4});
  const auto torus_plan = dor_routes(torus, {4, 4}, true);
  EXPECT_FALSE(cdg_is_acyclic(torus, torus_plan.routes));
}

TEST(Vc, AssignmentValidOnTorusDor) {
  const DiGraph torus = make_torus({3, 3, 3});
  const auto plan = dor_routes(torus, {3, 3, 3}, true);
  const auto a = assign_layers(torus, plan.routes, VcOrdering::kShortestFirst);
  check_assignment(torus, plan.routes, a);
  EXPECT_LE(a.num_layers, 4);  // the paper's §5.5 observation
}

TEST(Vc, LashSequentialAtMostFourLayersAcrossAlgorithmsAndTopologies) {
  std::vector<DiGraph> graphs;
  graphs.push_back(make_torus({3, 3, 3}));
  graphs.push_back(make_hypercube(3));
  graphs.push_back(make_complete_bipartite(4, 4));
  graphs.push_back(make_generalized_kautz(16, 3));
  for (const auto& g : graphs) {
    // SSSP routes.
    const auto sssp = sssp_routes(g, all_nodes(g));
    const auto a1 = assign_layers(g, sssp.routes, VcOrdering::kShortestFirst);
    check_assignment(g, sssp.routes, a1);
    EXPECT_LE(a1.num_layers, 4) << "SSSP on " << g.summary();
    // MCF-extP routes.
    const auto flows = solve_decomposed_mcf(g, all_nodes(g));
    const auto cpaths = paths_from_link_flows(g, flows);
    std::vector<Path> routes;
    for (const auto& cp : cpaths) {
      for (const auto& wp : cp.paths) routes.push_back(wp.path);
    }
    const auto a2 = assign_layers(g, routes, VcOrdering::kShortestFirst);
    check_assignment(g, routes, a2);
    EXPECT_LE(a2.num_layers, 4) << "MCF-extP on " << g.summary();
  }
}

TEST(Vc, OrderingsAreAllValid) {
  const DiGraph g = make_torus({3, 3});
  const auto plan = sssp_routes(g, all_nodes(g));
  for (const auto ordering : {VcOrdering::kInputOrder, VcOrdering::kShortestFirst,
                              VcOrdering::kSourceGrouped}) {
    const auto a = assign_layers(g, plan.routes, ordering);
    check_assignment(g, plan.routes, a);
    EXPECT_GE(a.num_layers, 1);
  }
}

TEST(Vc, SingleHopRoutesNeedOneLayer) {
  const DiGraph g = make_complete(4);
  std::vector<Path> routes;
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId d = 0; d < 4; ++d) {
      if (s != d) routes.push_back({g.find_edge(s, d)});
    }
  }
  const auto a = assign_layers(g, routes);
  EXPECT_EQ(a.num_layers, 1);
}

TEST(Vc, PathScheduleLayersWrittenInPlace) {
  const DiGraph g = make_hypercube(3);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  PathSchedule sched = compile_path_schedule(g, paths_from_link_flows(g, flows));
  const int layers = assign_layers(g, sched, VcOrdering::kShortestFirst);
  EXPECT_GE(layers, 1);
  EXPECT_LE(layers, 4);
  for (const RouteEntry& r : sched.entries) {
    EXPECT_GE(r.layer, 0);
    EXPECT_LT(r.layer, layers);
  }
}

}  // namespace
}  // namespace a2a
