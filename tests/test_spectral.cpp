#include "graph/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "graph/topologies.hpp"

namespace a2a {
namespace {

TEST(Spectral, RingSecondEigenvalueMatchesClosedForm) {
  // Cycle C_n adjacency eigenvalues: 2 cos(2 pi k / n); lambda2 = 2 cos(2pi/n).
  for (const int n : {6, 8, 12}) {
    const DiGraph g = make_ring(n);
    const double expected = 2.0 * std::cos(2.0 * std::numbers::pi / n);
    EXPECT_NEAR(second_eigenvalue(g, 2000), expected, 0.02) << n;
  }
}

TEST(Spectral, CompleteGraphGapIsMaximal) {
  // K_n: the signed second-largest eigenvalue is -1, gap = (n-1) - (-1) = n.
  const DiGraph g = make_complete(6);
  EXPECT_NEAR(second_eigenvalue(g, 2000), -1.0, 0.05);
  EXPECT_NEAR(spectral_gap(g, 2000), 6.0, 0.1);
}

TEST(Spectral, ExpandersBeatToriAtEqualDegree) {
  // §5.4 motivation: expander families keep a constant spectral gap while a
  // 2D torus' gap decays as 2 - 2cos(2*pi/L); at N=100 the ordering is
  // already clear.
  Rng rng(21);
  const DiGraph torus = make_torus_2d(100);          // 10x10, gap ~ 0.38
  const DiGraph xpander = make_xpander(4, 20, rng);  // degree 4, N=100
  EXPECT_GT(spectral_gap(xpander, 3000), spectral_gap(torus, 3000));
  // And the torus gap matches the closed form.
  EXPECT_NEAR(second_eigenvalue(torus, 3000),
              2.0 + 2.0 * std::cos(2.0 * std::numbers::pi / 10.0), 0.05);
}

TEST(Spectral, HypercubeKnownSpectrum) {
  // Q_n adjacency eigenvalues: n - 2k; lambda2 = n - 2.
  const DiGraph g = make_hypercube(4);
  EXPECT_NEAR(second_eigenvalue(g, 3000), 2.0, 0.05);
}

}  // namespace
}  // namespace a2a
