// Failure-domain fallback library + deadline-bounded re-scheduling.
//
// Covers the offline half (signature algebra, domain enumeration, degraded
// views), the online ladder (precomputed hit -> dual-warm exact -> FPTAS ->
// degraded reroute), and the contract every rung shares: whatever is served
// validates against the DEGRADED topology. Ends with a fault-injection
// stream of failures and restorations — the miniature of bench_failover.
#include "failover/manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "common/random.hpp"
#include "failover/failure_domain.hpp"
#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "runtime/fabric.hpp"
#include "schedule/validate.hpp"

namespace a2a {
namespace {

namespace fs = std::filesystem;

Fabric forwarding_fabric() { return hpc_cerio_fabric(); }

// ---------------------------------------------------------- signatures ---

TEST(FailureSignature, NormalizeToStringParseRoundtrip) {
  const DiGraph g = make_ring(6);
  FailureSignature sig;
  sig.edges = {7, 3, 7};
  sig.nodes = {2};
  sig.normalize();
  EXPECT_EQ(sig.edges, (std::vector<EdgeId>{3, 7}));
  EXPECT_EQ(sig.to_string(), "e3+e7+n2");
  EXPECT_EQ(FailureSignature{}.to_string(), "healthy");

  const FailureSignature parsed = FailureSignature::parse("e7,e3,n2", g);
  EXPECT_TRUE(parsed == sig);
  EXPECT_TRUE(FailureSignature::parse(sig.to_string(), g) == sig);
  EXPECT_TRUE(FailureSignature::parse("healthy", g).empty());
  EXPECT_THROW((void)FailureSignature::parse("x3", g), Error);
  EXPECT_THROW((void)FailureSignature::parse("e999", g), Error);
  EXPECT_THROW((void)FailureSignature::parse("e", g), Error);
}

TEST(FailureSignature, FingerprintsAreDistinctAndStable) {
  FailureSignature a, b;
  a.edges = {3};
  b.edges = {4};
  const std::string base = "0123456789abcdef0123456789abcdef";
  EXPECT_EQ(failover_fingerprint(base, a).size(), 32u);
  EXPECT_NE(failover_fingerprint(base, a), failover_fingerprint(base, b));
  EXPECT_NE(failover_fingerprint(base, a),
            failover_fingerprint(base, FailureSignature{}));
  EXPECT_EQ(failover_fingerprint(base, a), failover_fingerprint(base, a));
  EXPECT_NE(failover_fingerprint("another_base_fingerprint_value__", a),
            failover_fingerprint(base, a));
}

// ------------------------------------------------------ degraded views ---

TEST(FailureDomain, DegradedTopologyRemapAndNodeKill) {
  const DiGraph g = make_generalized_kautz(12, 3);
  FailureSignature sig;
  sig.edges = {5};
  sig.nodes = {2};
  sig.normalize();

  const std::vector<EdgeId> dead = failed_edge_ids(g, sig);
  // Edge 5 plus every arc touching node 2.
  EXPECT_TRUE(std::binary_search(dead.begin(), dead.end(), 5));
  for (const EdgeId e : dead) {
    EXPECT_TRUE(e == 5 || g.edge(e).from == 2 || g.edge(e).to == 2);
  }

  std::vector<EdgeId> remap;
  const DiGraph degraded = degraded_topology(g, sig, &remap);
  EXPECT_EQ(degraded.num_nodes(), g.num_nodes());  // ids preserved.
  EXPECT_EQ(degraded.num_edges(), g.num_edges() - static_cast<int>(dead.size()));
  EXPECT_EQ(degraded.out_degree(2) + degraded.in_degree(2), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeId mapped = remap[static_cast<std::size_t>(e)];
    if (std::binary_search(dead.begin(), dead.end(), e)) {
      EXPECT_EQ(mapped, -1);
    } else {
      ASSERT_GE(mapped, 0);
      EXPECT_EQ(degraded.edge(mapped).from, g.edge(e).from);
      EXPECT_EQ(degraded.edge(mapped).to, g.edge(e).to);
    }
  }
}

TEST(FailureDomain, CollapsedTopologyPreservesLpShape) {
  const DiGraph g = make_generalized_kautz(12, 3);
  FailureSignature sig;
  sig.edges = {0, 7};
  const DiGraph collapsed = collapsed_topology(g, sig, 1e-7);
  EXPECT_EQ(collapsed.num_edges(), g.num_edges());
  EXPECT_EQ(collapsed.num_nodes(), g.num_nodes());
  EXPECT_DOUBLE_EQ(collapsed.edge(0).capacity, 1e-7);
  EXPECT_DOUBLE_EQ(collapsed.edge(7).capacity, 1e-7);
  EXPECT_DOUBLE_EQ(collapsed.edge(3).capacity, g.edge(3).capacity);
}

TEST(FailureDomain, EnumerationCoversSinglesAndRankedPairs) {
  const DiGraph g = make_generalized_kautz(12, 3);
  FailureDomainOptions opts;
  opts.top_k_link_pairs = 4;
  opts.spectral_pool = 6;
  opts.spectral_iters = 48;
  const std::vector<FailureSignature> domain = enumerate_failure_domain(g, opts);

  std::size_t singles_e = 0, singles_n = 0, pairs = 0;
  std::set<std::string> seen;
  for (const FailureSignature& sig : domain) {
    EXPECT_TRUE(seen.insert(sig.to_string()).second) << sig.to_string();
    if (sig.nodes.empty() && sig.edges.size() == 1) ++singles_e;
    if (sig.edges.empty() && sig.nodes.size() == 1) ++singles_n;
    if (sig.nodes.empty() && sig.edges.size() == 2) ++pairs;
  }
  EXPECT_EQ(singles_e, static_cast<std::size_t>(g.num_edges()));
  EXPECT_EQ(singles_n, static_cast<std::size_t>(g.num_nodes()));
  EXPECT_EQ(pairs, 4u);
}

// ------------------------------------------- satellite 3: validation ----

// A schedule that was valid on the healthy fabric MUST be rejected against
// a degraded topology when any of its routes crosses a failed link.
TEST(DegradedValidation, HealthyScheduleRejectedOnDegradedTopology) {
  const DiGraph g = make_generalized_kautz(10, 3);
  FailoverManager mgr(g, forwarding_fabric(), {});
  const GeneratedSchedule& healthy = mgr.healthy_schedule();
  ASSERT_TRUE(healthy.path.has_value());
  ASSERT_TRUE(
      validate_path_schedule(g, *healthy.path, healthy.terminals).ok);

  // Find an edge the healthy schedule actually uses and fail it.
  std::vector<bool> used(static_cast<std::size_t>(g.num_edges()), false);
  for (const RouteEntry& r : healthy.path->entries) {
    for (const EdgeId e : r.path) used[static_cast<std::size_t>(e)] = true;
  }
  EdgeId victim = -1;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (used[static_cast<std::size_t>(e)]) {
      victim = e;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  FailureSignature sig;
  sig.edges = {victim};
  const DiGraph degraded = degraded_topology(g, sig);
  const ValidationResult check =
      validate_path_schedule(degraded, *healthy.path, healthy.terminals);
  EXPECT_FALSE(check.ok);
  EXPECT_FALSE(check.errors.empty());
}

// --------------------------------------------------------- the ladder ---

TEST(FailoverLadder, HealthySignatureHitsTheSeededLibrary) {
  const DiGraph g = make_generalized_kautz(10, 3);
  FailoverManager mgr(g, forwarding_fabric(), {});
  const FailoverResult r = mgr.reschedule(FailureSignature{}, 1.0);
  EXPECT_EQ(r.rung, FailoverRung::kPrecomputedHit);
  EXPECT_TRUE(r.validated);
  EXPECT_TRUE(r.schedule.from_cache);
  EXPECT_GT(r.schedule.concurrent_flow, 0.0);
}

TEST(FailoverLadder, ColdLinkFailureResolvesExactThenHits) {
  const DiGraph g = make_generalized_kautz(10, 3);
  FailoverManager mgr(g, forwarding_fabric(), {});
  FailureSignature sig;
  sig.edges = {1};

  const FailoverResult first = mgr.reschedule(sig, 5.0);
  EXPECT_EQ(first.rung, FailoverRung::kDualWarmExact);
  EXPECT_TRUE(first.validated);
  // The served schedule must not touch the failed edge (it lives on the
  // degraded graph's id space and validated there).
  ASSERT_TRUE(first.schedule.path.has_value());
  const ValidationResult check = validate_path_schedule(
      degraded_topology(g, sig), *first.schedule.path,
      first.schedule.terminals);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors.front());

  // The exact result was inserted into the library: same signature now
  // short-circuits to the precomputed rung.
  const FailoverResult second = mgr.reschedule(sig, 5.0);
  EXPECT_EQ(second.rung, FailoverRung::kPrecomputedHit);
  EXPECT_TRUE(second.validated);
}

TEST(FailoverLadder, NodeFailureResolvesOnSurvivors) {
  const DiGraph g = make_generalized_kautz(10, 3);
  FailoverManager mgr(g, forwarding_fabric(), {});
  FailureSignature sig;
  sig.nodes = {4};
  const FailoverResult r = mgr.reschedule(sig, 10.0);
  EXPECT_EQ(r.rung, FailoverRung::kDualWarmExact);
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.schedule.terminals.size(), static_cast<std::size_t>(g.num_nodes() - 1));
  EXPECT_TRUE(std::find(r.schedule.terminals.begin(),
                        r.schedule.terminals.end(),
                        4) == r.schedule.terminals.end());
}

TEST(FailoverLadder, VanishingDeadlineFallsToDegradedRerouteStillValid) {
  const DiGraph g = make_generalized_kautz(10, 3);
  FailoverManager mgr(g, forwarding_fabric(), {});
  FailureSignature sig;
  sig.edges = {2};
  // A deadline far below any LP/FPTAS budget: the ladder must fall through
  // to the greedy reroute, which STILL has to validate on the degraded
  // fabric.
  const FailoverResult r = mgr.reschedule(sig, 1e-6);
  EXPECT_EQ(r.rung, FailoverRung::kDegradedReroute);
  EXPECT_TRUE(r.validated);
  ASSERT_TRUE(r.schedule.path.has_value());
  EXPECT_TRUE(validate_path_schedule(degraded_topology(g, sig),
                                     *r.schedule.path, r.schedule.terminals)
                  .ok);
}

TEST(FailoverLadder, DisconnectingFailureReportsUnschedulable) {
  // Ring: killing both arcs of one bidirectional link disconnects the
  // cycle's directed rotations? No — a ring survives one bidi cut as a
  // path; kill two separated bidi links instead, leaving two islands.
  const DiGraph g = make_ring(6);
  FailureSignature sig;
  // make_ring adds bidi pairs in order: edges 2i/2i+1 belong to link i
  // (0-1, 1-2, ...). Cut links 0-1 and 3-4: nodes {1,2,3} split from
  // {4,5,0}.
  sig.edges = {0, 1, 6, 7};
  FailoverManager mgr(g, forwarding_fabric(), {});
  const FailoverResult r = mgr.reschedule(sig, 1.0);
  EXPECT_FALSE(r.validated);
  EXPECT_FALSE(r.notes.empty());
}

// ------------------------------------------------------- precompute -----

TEST(FailoverPrecompute, DomainBatchStoresValidatedFallbacks) {
  const DiGraph g = make_generalized_kautz(10, 3);
  FailoverOptions opts;
  opts.domain.single_nodes = false;
  opts.domain.top_k_link_pairs = 2;
  opts.domain.spectral_pool = 4;
  opts.domain.spectral_iters = 32;
  opts.precompute_deadline_s = 10.0;
  FailoverManager mgr(g, forwarding_fabric(), opts);

  const std::vector<FailureSignature> domain = mgr.enumerate_domain();
  ASSERT_FALSE(domain.empty());
  const PrecomputeReport report = mgr.precompute(domain);
  EXPECT_EQ(report.attempted, domain.size());
  EXPECT_EQ(report.stored + report.skipped_disconnected + report.failed,
            report.attempted);
  EXPECT_GT(report.stored, 0u);

  // Every stored signature now serves from the precomputed rung, validated.
  std::size_t hits = 0;
  for (const FailureSignature& sig : domain) {
    const FailoverResult r = mgr.reschedule(sig, 1.0);
    if (r.rung == FailoverRung::kPrecomputedHit) {
      EXPECT_TRUE(r.validated);
      ++hits;
    }
  }
  EXPECT_EQ(hits, report.stored);
}

TEST(FailoverPrecompute, DiskLibrarySurvivesManagerRestart) {
  const DiGraph g = make_generalized_kautz(10, 3);
  const fs::path dir =
      fs::temp_directory_path() /
      ("a2a_failover_lib_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  FailureSignature sig;
  sig.edges = {3};
  {
    FailoverOptions opts;
    opts.library_dir = dir.string();
    FailoverManager mgr(g, forwarding_fabric(), opts);
    const FailoverResult r = mgr.reschedule(sig, 5.0);
    EXPECT_EQ(r.rung, FailoverRung::kDualWarmExact);
  }
  {
    // A fresh manager (fresh memory tier) over the same directory serves
    // the persisted fallback without re-solving.
    FailoverOptions opts;
    opts.library_dir = dir.string();
    FailoverManager mgr(g, forwarding_fabric(), opts);
    const FailoverResult r = mgr.reschedule(sig, 5.0);
    EXPECT_EQ(r.rung, FailoverRung::kPrecomputedHit);
    EXPECT_TRUE(r.validated);
  }
  fs::remove_all(dir);
}

// ------------------------------------------------- fault injection ------

// Miniature of bench_failover: a stream of random link/node failures and
// restorations over a GenKautz fabric. Every served schedule must validate
// against the current degraded topology, and the deadline may be overshot
// by at most the validation pass (plus scheduling noise).
TEST(FaultInjection, EventStreamServesValidSchedulesWithinDeadline) {
  const DiGraph g = make_generalized_kautz(12, 3);
  FailoverManager mgr(g, forwarding_fabric(), {});
  Rng rng(2024);
  const double deadline = 0.5;

  std::set<EdgeId> down_edges;
  std::set<NodeId> down_nodes;
  int served = 0;
  for (int event = 0; event < 24; ++event) {
    // Mutate the fabric state: mostly failures, some restorations.
    const int kind = rng.next_int(0, 10);
    if (kind < 5) {
      down_edges.insert(rng.next_int(0, g.num_edges()));
    } else if (kind < 7 && down_nodes.empty()) {
      down_nodes.insert(rng.next_int(0, g.num_nodes()));
    } else if (!down_edges.empty()) {
      down_edges.erase(down_edges.begin());
    } else {
      down_nodes.clear();
    }

    FailureSignature sig;
    sig.edges.assign(down_edges.begin(), down_edges.end());
    sig.nodes.assign(down_nodes.begin(), down_nodes.end());
    sig.normalize();

    // Connectivity guard: skip states with no feasible all-to-all.
    std::vector<NodeId> terminals;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (down_nodes.count(n) == 0) terminals.push_back(n);
    }
    if (terminals.size() < 2 ||
        !terminals_mutually_reachable(degraded_topology(g, sig), terminals)) {
      continue;
    }

    const FailoverResult r = mgr.reschedule(sig, deadline);
    ++served;
    EXPECT_TRUE(r.validated) << "event " << event << " sig "
                             << sig.to_string() << ": " << r.notes;
    ASSERT_TRUE(r.schedule.path.has_value());
    EXPECT_TRUE(validate_path_schedule(degraded_topology(g, sig),
                                       *r.schedule.path, r.schedule.terminals)
                    .ok);
    EXPECT_GT(r.schedule.concurrent_flow, 0.0);
    // Deadline contract: overshoot bounded by the validation cost (plus a
    // generous scheduling-noise allowance for CI machines).
    EXPECT_LE(r.elapsed_s, deadline + r.validate_s + 0.25)
        << "event " << event << " rung " << to_string(r.rung);
  }
  EXPECT_GT(served, 10);
}

}  // namespace
}  // namespace a2a
