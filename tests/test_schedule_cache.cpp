// ScheduleCache: fingerprints, LRU tier, disk tier, pipeline bypass.
#include "core/schedule_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graph/topologies.hpp"
#include "runtime/fabric.hpp"

namespace a2a {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("a2a_cache_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

TEST(Fingerprint, StableAndSensitive) {
  const DiGraph ring = make_ring(8);
  const Fabric cerio = hpc_cerio_fabric();
  const ToolchainOptions options;
  const std::string fp = schedule_fingerprint(ring, cerio, options);
  EXPECT_EQ(fp.size(), 32u);
  EXPECT_EQ(fp, schedule_fingerprint(make_ring(8), cerio, options));

  // Any input change moves the fingerprint.
  EXPECT_NE(fp, schedule_fingerprint(make_ring(9), cerio, options));
  EXPECT_NE(fp, schedule_fingerprint(ring, gpu_mscl_fabric(), options));
  ToolchainOptions coarser = options;
  coarser.chunking.max_denominator = 12;
  EXPECT_NE(fp, schedule_fingerprint(ring, cerio, coarser));
  DiGraph recap = make_ring(8);
  recap.set_capacity(0, 2.0);
  EXPECT_NE(fp, schedule_fingerprint(recap, cerio, options));
}

TEST(Fingerprint, EdgeOrderDoesNotMatter) {
  DiGraph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(1, 2);
  b.add_edge(0, 1);
  const Fabric f = cpu_oneccl_fabric();
  EXPECT_EQ(schedule_fingerprint(a, f, {}), schedule_fingerprint(b, f, {}));
}

TEST(ScheduleCache, SecondCallSkipsPipeline) {
  const DiGraph g = make_ring(6);
  const Fabric fabric = cpu_oneccl_fabric();
  ScheduleCache cache;

  const std::uint64_t runs_before = pipeline_invocations();
  const GeneratedSchedule first = generate_schedule(g, fabric, {}, &cache);
  EXPECT_EQ(pipeline_invocations(), runs_before + 1);
  EXPECT_FALSE(first.from_cache);

  const GeneratedSchedule second = generate_schedule(g, fabric, {}, &cache);
  EXPECT_EQ(pipeline_invocations(), runs_before + 1)
      << "second identical request must not re-run the LP/MCF pipeline";
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // The cached result is the same schedule.
  EXPECT_EQ(second.kind, first.kind);
  EXPECT_EQ(second.concurrent_flow, first.concurrent_flow);
  ASSERT_TRUE(first.link.has_value());
  ASSERT_TRUE(second.link.has_value());
  EXPECT_EQ(second.link->transfers.size(), first.link->transfers.size());
  EXPECT_EQ(second.terminals, first.terminals);
  EXPECT_EQ(second.notes, first.notes);
}

TEST(ScheduleCache, DifferentRequestsMiss) {
  const Fabric fabric = cpu_oneccl_fabric();
  ScheduleCache cache;
  (void)generate_schedule(make_ring(6), fabric, {}, &cache);
  (void)generate_schedule(make_ring(7), fabric, {}, &cache);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits(), 0u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ScheduleCache, LruEvictsOldest) {
  const Fabric fabric = cpu_oneccl_fabric();
  ScheduleCacheOptions options;
  options.max_entries = 2;
  ScheduleCache cache(options);
  (void)generate_schedule(make_ring(5), fabric, {}, &cache);
  (void)generate_schedule(make_ring(6), fabric, {}, &cache);
  // Touch ring(5) so ring(6) is the LRU victim.
  (void)generate_schedule(make_ring(5), fabric, {}, &cache);
  (void)generate_schedule(make_ring(7), fabric, {}, &cache);
  EXPECT_EQ(cache.size(), 2u);
  (void)generate_schedule(make_ring(5), fabric, {}, &cache);
  EXPECT_EQ(cache.stats().memory_hits, 2u);  // the touch + this hit
  (void)generate_schedule(make_ring(6), fabric, {}, &cache);
  EXPECT_EQ(cache.stats().misses, 4u);  // 5, 6, 7, then evicted 6 again
}

TEST(ScheduleCache, DiskTierSurvivesProcessRestart) {
  const TempDir dir;
  const DiGraph g = make_ring(6);
  const Fabric fabric = cpu_oneccl_fabric();
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();

  GeneratedSchedule first;
  {
    ScheduleCache cache(options);
    first = generate_schedule(g, fabric, {}, &cache);
    EXPECT_EQ(cache.stats().disk_writes, 1u);
    const std::string entry =
        cache.entry_path(schedule_fingerprint(g, fabric, {}));
    EXPECT_TRUE(fs::exists(entry));
  }

  // A fresh cache (fresh process, conceptually) hits the disk tier and does
  // not re-run the pipeline.
  ScheduleCache cache(options);
  const std::uint64_t runs_before = pipeline_invocations();
  const GeneratedSchedule second = generate_schedule(g, fabric, {}, &cache);
  EXPECT_EQ(pipeline_invocations(), runs_before);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  ASSERT_TRUE(second.link.has_value());
  ASSERT_TRUE(first.link.has_value());
  ASSERT_EQ(second.link->transfers.size(), first.link->transfers.size());
  for (std::size_t i = 0; i < first.link->transfers.size(); ++i) {
    EXPECT_EQ(second.link->transfers[i].chunk, first.link->transfers[i].chunk);
    EXPECT_EQ(second.link->transfers[i].step, first.link->transfers[i].step);
  }
  EXPECT_EQ(second.schedule_graph.num_edges(), first.schedule_graph.num_edges());
  EXPECT_EQ(second.notes, first.notes);
}

TEST(ScheduleCache, ZeroCapacityDisablesMemoryTier) {
  // max_entries == 0 used to be rejected by the constructor, and the insert
  // path would otherwise admit-then-evict every entry (and promote every
  // disk hit into an immediately evicted slot). It now means "memory tier
  // off": inserts retain nothing, lookups without a disk tier always miss.
  ScheduleCacheOptions options;
  options.max_entries = 0;
  ScheduleCache cache(options);
  const DiGraph g = make_ring(5);
  const Fabric fabric = cpu_oneccl_fabric();
  const std::string fp = schedule_fingerprint(g, fabric, {});
  const GeneratedSchedule schedule = generate_schedule(g, fabric, {});
  cache.insert(fp, schedule);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(fp).has_value());
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().memory_hits, 0u);
}

TEST(ScheduleCache, ZeroCapacityStillServesDiskTier) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.max_entries = 0;
  options.disk_dir = dir.path.string();
  ScheduleCache cache(options);
  const DiGraph g = make_ring(5);
  const Fabric fabric = cpu_oneccl_fabric();
  const std::string fp = schedule_fingerprint(g, fabric, {});
  const GeneratedSchedule schedule = generate_schedule(g, fabric, {});
  cache.insert(fp, schedule);
  EXPECT_EQ(cache.size(), 0u);  // nothing retained in memory
  const auto hit = cache.lookup(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->concurrent_flow, schedule.concurrent_flow);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  EXPECT_EQ(cache.size(), 0u);  // the disk hit was not promoted either
  // Repeated lookups keep hitting disk, never the (disabled) memory tier.
  ASSERT_TRUE(cache.lookup(fp).has_value());
  EXPECT_EQ(cache.stats().disk_hits, 2u);
  EXPECT_EQ(cache.stats().memory_hits, 0u);
}

TEST(ScheduleCache, CorruptDiskEntryIsAMissNotAnError) {
  const TempDir dir;
  const DiGraph g = make_ring(6);
  const Fabric fabric = cpu_oneccl_fabric();
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  const std::string fp = schedule_fingerprint(g, fabric, {});
  {
    ScheduleCache cache(options);
    (void)generate_schedule(g, fabric, {}, &cache);
    // Corrupt the entry on disk.
    const std::string path = cache.entry_path(fp);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xFF');
  }
  ScheduleCache cache(options);
  const GeneratedSchedule regenerated = generate_schedule(g, fabric, {}, &cache);
  EXPECT_FALSE(regenerated.from_cache);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
}

TEST(ScheduleCache, EnvelopeRoundTripsPathSchedules) {
  // A path-kind GeneratedSchedule (NIC-forwarding fabric) through the disk
  // envelope: graph, terminals, notes, vc layers and bit-exact weights.
  const DiGraph g = make_hypercube(3);
  const GeneratedSchedule original = generate_schedule(g, hpc_cerio_fabric(), {});
  ASSERT_TRUE(original.path.has_value());
  const std::string bytes = generated_schedule_to_bytes(original);
  const GeneratedSchedule decoded = generated_schedule_from_bytes(bytes);
  EXPECT_EQ(decoded.kind, original.kind);
  EXPECT_EQ(decoded.concurrent_flow, original.concurrent_flow);
  EXPECT_EQ(decoded.vc_layers, original.vc_layers);
  EXPECT_EQ(decoded.terminals, original.terminals);
  EXPECT_EQ(decoded.notes, original.notes);
  ASSERT_TRUE(decoded.path.has_value());
  ASSERT_EQ(decoded.path->entries.size(), original.path->entries.size());
  for (std::size_t i = 0; i < decoded.path->entries.size(); ++i) {
    EXPECT_EQ(decoded.path->entries[i].weight, original.path->entries[i].weight);
    EXPECT_EQ(decoded.path->entries[i].path, original.path->entries[i].path);
  }
}

TEST(ScheduleCache, NullCacheBehavesLikePlainCall) {
  const DiGraph g = make_ring(5);
  const std::uint64_t runs_before = pipeline_invocations();
  const GeneratedSchedule r =
      generate_schedule(g, cpu_oneccl_fabric(), {}, nullptr);
  EXPECT_EQ(pipeline_invocations(), runs_before + 1);
  EXPECT_FALSE(r.from_cache);
}

}  // namespace
}  // namespace a2a
