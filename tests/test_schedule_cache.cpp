// ScheduleCache: fingerprints, byte-budget LRU tier, content-addressed disk
// tier, pipeline bypass.
#include "core/schedule_cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "graph/topologies.hpp"
#include "runtime/fabric.hpp"

namespace a2a {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("a2a_cache_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

/// Synthetic schedule whose memory footprint scales with `transfers` and
/// whose serialized content is distinguished by `tag` — precise byte-budget
/// and dedup experiments without running the LP/MCF pipeline.
GeneratedSchedule make_sized(int transfers, int tag) {
  GeneratedSchedule s;
  s.kind = ScheduleKind::kLinkUnrolled;
  LinkSchedule link;
  link.num_nodes = 4;
  link.num_steps = 1 + tag;
  link.transfers.assign(
      static_cast<std::size_t>(transfers),
      Transfer{{0, 1, Rational(0), Rational(1)}, 0, 1, 1});
  s.link = std::move(link);
  s.concurrent_flow = tag;
  s.schedule_graph = make_ring(4);
  s.terminals = {0, 1, 2, 3};
  s.notes = "synthetic";
  return s;
}

TEST(Fingerprint, StableAndSensitive) {
  const DiGraph ring = make_ring(8);
  const Fabric cerio = hpc_cerio_fabric();
  const ToolchainOptions options;
  const std::string fp = schedule_fingerprint(ring, cerio, options);
  EXPECT_EQ(fp.size(), 32u);
  EXPECT_EQ(fp, schedule_fingerprint(make_ring(8), cerio, options));

  // Any input change moves the fingerprint.
  EXPECT_NE(fp, schedule_fingerprint(make_ring(9), cerio, options));
  EXPECT_NE(fp, schedule_fingerprint(ring, gpu_mscl_fabric(), options));
  ToolchainOptions coarser = options;
  coarser.chunking.max_denominator = 12;
  EXPECT_NE(fp, schedule_fingerprint(ring, cerio, coarser));
  DiGraph recap = make_ring(8);
  recap.set_capacity(0, 2.0);
  EXPECT_NE(fp, schedule_fingerprint(recap, cerio, options));
}

TEST(Fingerprint, EdgeOrderDoesNotMatter) {
  DiGraph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(1, 2);
  b.add_edge(0, 1);
  const Fabric f = cpu_oneccl_fabric();
  EXPECT_EQ(schedule_fingerprint(a, f, {}), schedule_fingerprint(b, f, {}));
}

TEST(ScheduleCache, SecondCallSkipsPipeline) {
  const DiGraph g = make_ring(6);
  const Fabric fabric = cpu_oneccl_fabric();
  ScheduleCache cache;

  const std::uint64_t runs_before = pipeline_invocations();
  const GeneratedSchedule first = generate_schedule(g, fabric, {}, &cache);
  EXPECT_EQ(pipeline_invocations(), runs_before + 1);
  EXPECT_FALSE(first.from_cache);

  const GeneratedSchedule second = generate_schedule(g, fabric, {}, &cache);
  EXPECT_EQ(pipeline_invocations(), runs_before + 1)
      << "second identical request must not re-run the LP/MCF pipeline";
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // The cached result is the same schedule.
  EXPECT_EQ(second.kind, first.kind);
  EXPECT_EQ(second.concurrent_flow, first.concurrent_flow);
  ASSERT_TRUE(first.link.has_value());
  ASSERT_TRUE(second.link.has_value());
  EXPECT_EQ(second.link->transfers.size(), first.link->transfers.size());
  EXPECT_EQ(second.terminals, first.terminals);
  EXPECT_EQ(second.notes, first.notes);
}

TEST(ScheduleCache, DifferentRequestsMiss) {
  const Fabric fabric = cpu_oneccl_fabric();
  ScheduleCache cache;
  (void)generate_schedule(make_ring(6), fabric, {}, &cache);
  (void)generate_schedule(make_ring(7), fabric, {}, &cache);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits(), 0u);
  EXPECT_EQ(cache.size(), 2u);
}

// ---- memory tier: byte-budget eviction ------------------------------------

TEST(ScheduleCache, ByteBudgetEvictsLruOldest) {
  const GeneratedSchedule a = make_sized(100, 1);
  const GeneratedSchedule b = make_sized(100, 2);
  const GeneratedSchedule c = make_sized(100, 3);
  const std::size_t each = schedule_memory_bytes(a);
  ASSERT_EQ(each, schedule_memory_bytes(b));

  ScheduleCacheOptions options;
  options.max_memory_bytes = 2 * each;  // room for exactly two
  ScheduleCache cache(options);
  cache.insert("a", a);
  cache.insert("b", b);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.memory_bytes(), 2 * each);
  // Touch a so b becomes the LRU victim.
  EXPECT_TRUE(cache.lookup("a").has_value());
  cache.insert("c", c);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().memory_evictions, 1u);
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value()) << "b was the LRU victim";
}

TEST(ScheduleCache, MixedSizeEvictionFreesEnoughBytes) {
  // One large insert must evict as many small LRU entries as it takes.
  const GeneratedSchedule small = make_sized(50, 1);
  const GeneratedSchedule large = make_sized(400, 2);
  const std::size_t small_bytes = schedule_memory_bytes(small);
  const std::size_t large_bytes = schedule_memory_bytes(large);
  ASSERT_GT(large_bytes, 3 * small_bytes);

  ScheduleCacheOptions options;
  options.max_memory_bytes = large_bytes + small_bytes;
  ScheduleCache cache(options);
  cache.insert("s1", small);
  cache.insert("s2", small);
  cache.insert("s3", small);
  cache.insert("s4", small);
  EXPECT_EQ(cache.size(), 4u);
  cache.insert("big", large);
  EXPECT_LE(cache.memory_bytes(), options.max_memory_bytes);
  EXPECT_TRUE(cache.lookup("big").has_value());
  EXPECT_TRUE(cache.lookup("s4").has_value()) << "newest small survives";
  EXPECT_FALSE(cache.lookup("s1").has_value());
  EXPECT_FALSE(cache.lookup("s2").has_value());
  EXPECT_FALSE(cache.lookup("s3").has_value());
}

TEST(ScheduleCache, BudgetExactlyMetKeepsEntries) {
  const GeneratedSchedule a = make_sized(64, 1);
  const GeneratedSchedule b = make_sized(64, 2);
  ScheduleCacheOptions options;
  options.max_memory_bytes = schedule_memory_bytes(a) + schedule_memory_bytes(b);
  ScheduleCache cache(options);
  cache.insert("a", a);
  cache.insert("b", b);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.memory_bytes(), options.max_memory_bytes);
  EXPECT_EQ(cache.stats().memory_evictions, 0u);
  // One more byte of demand evicts the LRU entry.
  cache.insert("c", make_sized(1, 3));
  EXPECT_EQ(cache.stats().memory_evictions, 1u);
  EXPECT_FALSE(cache.lookup("a").has_value());
}

TEST(ScheduleCache, SingleEntryLargerThanBudgetNeverAdmitted) {
  const GeneratedSchedule big = make_sized(1000, 1);
  ScheduleCacheOptions options;
  options.max_memory_bytes = schedule_memory_bytes(big) - 1;
  ScheduleCache cache(options);
  cache.insert("big", big);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.memory_bytes(), 0u);
  EXPECT_FALSE(cache.lookup("big").has_value());
  // A smaller version under the same key is admitted; a later oversize
  // update must drop it rather than serve stale data.
  const GeneratedSchedule small = make_sized(10, 1);
  cache.insert("big", small);
  EXPECT_EQ(cache.size(), 1u);
  cache.insert("big", big);
  EXPECT_EQ(cache.size(), 0u) << "oversize update must evict the stale entry";
}

TEST(ScheduleCache, ZeroBudgetDisablesMemoryTier) {
  ScheduleCacheOptions options;
  options.max_memory_bytes = 0;
  ScheduleCache cache(options);
  const GeneratedSchedule schedule = make_sized(10, 1);
  cache.insert("fp", schedule);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.memory_bytes(), 0u);
  EXPECT_FALSE(cache.lookup("fp").has_value());
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().memory_hits, 0u);
}

TEST(ScheduleCache, ZeroBudgetStillServesDiskTier) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.max_memory_bytes = 0;
  options.disk_dir = dir.path.string();
  ScheduleCache cache(options);
  const GeneratedSchedule schedule = make_sized(10, 1);
  cache.insert("fp", schedule);
  EXPECT_EQ(cache.size(), 0u);  // nothing retained in memory
  const auto hit = cache.lookup("fp");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->concurrent_flow, schedule.concurrent_flow);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  EXPECT_EQ(cache.size(), 0u);  // the disk hit was not promoted either
  // Repeated lookups keep hitting disk, never the (disabled) memory tier.
  ASSERT_TRUE(cache.lookup("fp").has_value());
  EXPECT_EQ(cache.stats().disk_hits, 2u);
  EXPECT_EQ(cache.stats().memory_hits, 0u);
}

// ---- disk tier: content addressing + byte budget --------------------------

TEST(ScheduleCache, DiskTierSurvivesProcessRestart) {
  const TempDir dir;
  const DiGraph g = make_ring(6);
  const Fabric fabric = cpu_oneccl_fabric();
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();

  GeneratedSchedule first;
  {
    ScheduleCache cache(options);
    first = generate_schedule(g, fabric, {}, &cache);
    EXPECT_EQ(cache.stats().disk_writes, 1u);
    const std::string entry =
        cache.entry_path(schedule_fingerprint(g, fabric, {}));
    ASSERT_FALSE(entry.empty());
    EXPECT_TRUE(fs::exists(entry));
  }

  // A fresh cache (fresh process, conceptually) hits the disk tier and does
  // not re-run the pipeline.
  ScheduleCache cache(options);
  const std::uint64_t runs_before = pipeline_invocations();
  const GeneratedSchedule second = generate_schedule(g, fabric, {}, &cache);
  EXPECT_EQ(pipeline_invocations(), runs_before);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  ASSERT_TRUE(second.link.has_value());
  ASSERT_TRUE(first.link.has_value());
  ASSERT_EQ(second.link->transfers.size(), first.link->transfers.size());
  for (std::size_t i = 0; i < first.link->transfers.size(); ++i) {
    EXPECT_EQ(second.link->transfers[i].chunk, first.link->transfers[i].chunk);
    EXPECT_EQ(second.link->transfers[i].step, first.link->transfers[i].step);
  }
  EXPECT_EQ(second.schedule_graph.num_edges(), first.schedule_graph.num_edges());
  EXPECT_EQ(second.notes, first.notes);
}

TEST(ScheduleCache, ContentAddressedDedupSharesOneArtifact) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  ScheduleCache cache(options);
  const GeneratedSchedule schedule = make_sized(200, 7);
  // Two different requests (fingerprints) compiling to the identical
  // schedule — e.g. the same topology requested under two option sets that
  // do not change the result, or repeat pipeline invocations.
  cache.insert("fingerprint_one", schedule);
  cache.insert("fingerprint_two", schedule);
  EXPECT_EQ(cache.disk_object_count(), 1u)
      << "identical schedules must share one on-disk artifact";
  EXPECT_EQ(cache.stats().disk_writes, 1u);
  EXPECT_EQ(cache.stats().disk_dedups, 1u);
  EXPECT_EQ(cache.entry_path("fingerprint_one"),
            cache.entry_path("fingerprint_two"));

  // Both fingerprints resolve from a fresh cache (disk only).
  ScheduleCacheOptions cold = options;
  cold.max_memory_bytes = 0;
  ScheduleCache fresh(cold);
  EXPECT_TRUE(fresh.lookup("fingerprint_one").has_value());
  EXPECT_TRUE(fresh.lookup("fingerprint_two").has_value());
  EXPECT_EQ(fresh.stats().disk_hits, 2u);

  // Distinct content gets its own artifact.
  cache.insert("fingerprint_three", make_sized(200, 8));
  EXPECT_EQ(cache.disk_object_count(), 2u);
}

TEST(ScheduleCache, DiskByteBudgetGcEvictsOldestArtifactsAndRefs) {
  const TempDir dir;
  ScheduleCacheOptions probe_options;
  probe_options.disk_dir = dir.path.string();
  std::size_t artifact_bytes = 0;
  {
    ScheduleCache probe(probe_options);
    probe.insert("probe", make_sized(300, 0));
    artifact_bytes = probe.disk_bytes();
    ASSERT_GT(artifact_bytes, 0u);
    fs::remove(probe.entry_path("probe"));
  }

  ScheduleCacheOptions options = probe_options;
  options.max_disk_bytes = 2 * artifact_bytes + artifact_bytes / 2;
  ScheduleCache cache(options);
  cache.insert("first", make_sized(300, 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.insert("second", make_sized(300, 2));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(cache.disk_object_count(), 2u);
  cache.insert("third", make_sized(300, 3));

  // The budget holds two artifacts: the oldest ("first") was GC'ed along
  // with its ref, so the lookup is a clean miss, not a dangling pointer.
  EXPECT_EQ(cache.disk_object_count(), 2u);
  EXPECT_LE(cache.disk_bytes(), options.max_disk_bytes);
  EXPECT_GE(cache.stats().disk_evictions, 1u);
  EXPECT_TRUE(cache.entry_path("first").empty());
  EXPECT_FALSE(cache.entry_path("second").empty());
  EXPECT_FALSE(cache.entry_path("third").empty());

  ScheduleCacheOptions cold = options;
  cold.max_memory_bytes = 0;
  ScheduleCache fresh(cold);
  EXPECT_FALSE(fresh.lookup("first").has_value());
  EXPECT_TRUE(fresh.lookup("second").has_value());
  EXPECT_TRUE(fresh.lookup("third").has_value());
}

TEST(ScheduleCache, ReinsertHealsCorruptArtifactInsteadOfDedupingAgainstIt) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  options.max_memory_bytes = 0;  // force every lookup to the disk tier
  ScheduleCache cache(options);
  const GeneratedSchedule schedule = make_sized(100, 3);
  cache.insert("fp", schedule);
  const std::string path = cache.entry_path("fp");
  ASSERT_FALSE(path.empty());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);
    f.put('\xEE');
  }
  EXPECT_FALSE(cache.lookup("fp").has_value()) << "corrupt entry is a miss";
  // The recompile-and-reinsert path must rewrite the bad bytes, not dedup
  // against them and leave the object poisoned forever.
  cache.insert("fp", schedule);
  EXPECT_EQ(cache.stats().disk_writes, 2u);
  EXPECT_EQ(cache.stats().disk_dedups, 0u);
  ScheduleCacheOptions cold = options;
  cold.max_memory_bytes = 0;
  ScheduleCache fresh(cold);
  EXPECT_TRUE(fresh.lookup("fp").has_value()) << "artifact healed";
}

TEST(ScheduleCache, OversizeArtifactIsNeverWrittenToDisk) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  const GeneratedSchedule big = make_sized(500, 1);
  const std::size_t artifact =
      generated_schedule_to_bytes(big, options.schedbin).size();
  options.max_disk_bytes = artifact - 1;
  ScheduleCache cache(options);
  cache.insert("big", big);
  // Writing it would only be GC'ed straight back (insert-then-evict churn),
  // so the write is skipped and surfaced in the stats.
  EXPECT_EQ(cache.disk_object_count(), 0u);
  EXPECT_EQ(cache.stats().disk_writes, 0u);
  EXPECT_EQ(cache.stats().disk_oversize_rejections, 1u);
  // A fitting artifact still lands.
  cache.insert("small", make_sized(5, 2));
  EXPECT_EQ(cache.disk_object_count(), 1u);
  EXPECT_EQ(cache.stats().disk_writes, 1u);
}

TEST(ScheduleCache, LegacyFlatEntriesCountTowardDiskBudgetAndEvict) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  // A pre-v2 cache layout: one flat <fingerprint>.schedbin at the top
  // level. It must serve lookups, count toward the byte budget, and be
  // evictable by the GC like any object.
  const GeneratedSchedule legacy_schedule = make_sized(300, 1);
  const std::string legacy_bytes =
      generated_schedule_to_bytes(legacy_schedule, options.schedbin);
  {
    std::ofstream out(dir.path / "legacyfp.schedbin", std::ios::binary);
    out.write(legacy_bytes.data(),
              static_cast<std::streamsize>(legacy_bytes.size()));
  }
  ScheduleCache cache(options);
  EXPECT_EQ(cache.disk_bytes(), legacy_bytes.size());
  EXPECT_EQ(cache.disk_object_count(), 1u);
  ASSERT_TRUE(cache.lookup("legacyfp").has_value());

  // A budgeted cache inserting a new artifact must GC the (older) legacy
  // file once the combined size crosses the budget.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ScheduleCacheOptions budgeted = options;
  budgeted.max_disk_bytes = legacy_bytes.size() + legacy_bytes.size() / 2;
  ScheduleCache squeezed(budgeted);
  squeezed.insert("fresh", make_sized(300, 2));
  EXPECT_EQ(squeezed.disk_object_count(), 1u);
  EXPECT_GE(squeezed.stats().disk_evictions, 1u);
  EXPECT_FALSE(fs::exists(dir.path / "legacyfp.schedbin"))
      << "the older legacy entry was the GC victim";
  EXPECT_FALSE(squeezed.entry_path("fresh").empty());
}

TEST(ScheduleCache, CorruptDiskEntryIsAMissNotAnError) {
  const TempDir dir;
  const DiGraph g = make_ring(6);
  const Fabric fabric = cpu_oneccl_fabric();
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  const std::string fp = schedule_fingerprint(g, fabric, {});
  {
    ScheduleCache cache(options);
    (void)generate_schedule(g, fabric, {}, &cache);
    // Corrupt the artifact on disk.
    const std::string path = cache.entry_path(fp);
    ASSERT_FALSE(path.empty());
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xFF');
  }
  ScheduleCache cache(options);
  const GeneratedSchedule regenerated = generate_schedule(g, fabric, {}, &cache);
  EXPECT_FALSE(regenerated.from_cache);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
}

TEST(ScheduleCache, CorruptArtifactIsQuarantinedAndRefDropped) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  options.max_memory_bytes = 0;  // force lookups to the disk tier
  ScheduleCache cache(options);
  cache.insert("fp", make_sized(50, 7));
  const std::string path = cache.entry_path("fp");
  ASSERT_FALSE(path.empty());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    f.put('\xAB');
  }
  EXPECT_FALSE(cache.lookup("fp").has_value());
  EXPECT_EQ(cache.stats().disk_corrupt, 1u);
  // The bad bytes are preserved for forensics under quarantine/, no longer
  // where lookups resolve, and the fingerprint's ref is gone.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(
      fs::exists(dir.path / "quarantine" / fs::path(path).filename()));
  EXPECT_TRUE(cache.entry_path("fp").empty());
  // Quarantined garbage never counts as a servable artifact.
  EXPECT_EQ(cache.disk_object_count(), 0u);
  // Second lookup is a plain miss — quarantine happens once per artifact.
  EXPECT_FALSE(cache.lookup("fp").has_value());
  EXPECT_EQ(cache.stats().disk_corrupt, 1u);
}

TEST(ScheduleCache, TruncatedArtifactQuarantinesInsteadOfThrowing) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  options.max_memory_bytes = 0;
  ScheduleCache cache(options);
  cache.insert("fp", make_sized(200, 9));
  const std::string path = cache.entry_path("fp");
  ASSERT_FALSE(path.empty());
  // Simulate a crashed writer that bypassed the tmp+rename discipline (or
  // bit-rot that shortened the file): keep only the first 40 bytes, which
  // still parse as a plausible envelope prefix.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 40u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), 40);
  }
  EXPECT_FALSE(cache.lookup("fp").has_value());
  EXPECT_EQ(cache.stats().disk_corrupt, 1u);
  // Re-synthesis (re-insert) heals the entry with a fresh write.
  cache.insert("fp", make_sized(200, 9));
  EXPECT_TRUE(cache.lookup("fp").has_value());
}

TEST(ScheduleCache, EnvelopeRoundTripsPathSchedules) {
  // A path-kind GeneratedSchedule (NIC-forwarding fabric) through the disk
  // envelope: graph, terminals, notes, vc layers and bit-exact weights.
  const DiGraph g = make_hypercube(3);
  const GeneratedSchedule original = generate_schedule(g, hpc_cerio_fabric(), {});
  ASSERT_TRUE(original.path.has_value());
  const std::string bytes = generated_schedule_to_bytes(original);
  const GeneratedSchedule decoded = generated_schedule_from_bytes(bytes);
  EXPECT_EQ(decoded.kind, original.kind);
  EXPECT_EQ(decoded.concurrent_flow, original.concurrent_flow);
  EXPECT_EQ(decoded.vc_layers, original.vc_layers);
  EXPECT_EQ(decoded.terminals, original.terminals);
  EXPECT_EQ(decoded.notes, original.notes);
  ASSERT_TRUE(decoded.path.has_value());
  ASSERT_EQ(decoded.path->entries.size(), original.path->entries.size());
  for (std::size_t i = 0; i < decoded.path->entries.size(); ++i) {
    EXPECT_EQ(decoded.path->entries[i].weight, original.path->entries[i].weight);
    EXPECT_EQ(decoded.path->entries[i].path, original.path->entries[i].path);
  }
}

TEST(ScheduleCache, NullCacheBehavesLikePlainCall) {
  const DiGraph g = make_ring(5);
  const std::uint64_t runs_before = pipeline_invocations();
  const GeneratedSchedule r =
      generate_schedule(g, cpu_oneccl_fabric(), {}, nullptr);
  EXPECT_EQ(pipeline_invocations(), runs_before + 1);
  EXPECT_FALSE(r.from_cache);
}

TEST(ScheduleCache, InsertReturnsTheExactEnvelopeWritten) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  ScheduleCache cache(std::move(options));
  const GeneratedSchedule schedule = make_sized(50, 3);
  const auto bytes = cache.insert("fp", schedule);
  ASSERT_TRUE(bytes);
  // The returned buffer IS the serialized envelope the disk artifact holds.
  EXPECT_EQ(*bytes, generated_schedule_to_bytes(schedule, {}));
  std::ifstream in(cache.entry_path("fp"), std::ios::binary);
  std::ostringstream on_disk;
  on_disk << in.rdbuf();
  EXPECT_EQ(on_disk.str(), *bytes);
  // And parse_schedule_envelope locates the inner frame without a decode.
  const ArtifactView view = parse_schedule_envelope(*bytes);
  EXPECT_TRUE(view.valid());
  EXPECT_GT(view.blob_size, 0u);
  EXPECT_EQ(view.kind, schedule.kind);
  EXPECT_DOUBLE_EQ(view.concurrent_flow, schedule.concurrent_flow);
  const SchedBinReader reader = SchedBinReader::from_bytes(view.schedbin());
  EXPECT_EQ(reader.info().record_count,
            static_cast<std::uint64_t>(schedule.link->transfers.size()));
}

TEST(ScheduleCache, LookupArtifactServesMmapWithoutDecode) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  ScheduleCache cache(std::move(options));
  const GeneratedSchedule schedule = make_sized(80, 4);
  const auto bytes = cache.insert("fp", schedule);

  const auto view = cache.lookup_artifact("fp");
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->mapping);  // zero-copy: the disk object's pages.
  EXPECT_FALSE(view->bytes);
  EXPECT_EQ(std::string(view->envelope), *bytes);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  // The artifact path stays byte-path only: the decoded memory tier was
  // neither consulted nor populated.
  EXPECT_EQ(cache.size(), 1u);  // insert() populated it...
  cache.clear();
  EXPECT_TRUE(cache.lookup_artifact("fp").has_value());
  EXPECT_EQ(cache.size(), 0u);  // ...lookup_artifact() does not.

  EXPECT_FALSE(cache.lookup_artifact("absent").has_value());
}

TEST(ScheduleCache, LookupArtifactQuarantinesCorruptObjects) {
  const TempDir dir;
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  ScheduleCache cache(std::move(options));
  cache.insert("fp", make_sized(80, 5));
  const std::string path = cache.entry_path("fp");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("GARB", 4);  // destroy the envelope magic.
  }
  EXPECT_FALSE(cache.lookup_artifact("fp").has_value());
  EXPECT_EQ(cache.stats().disk_corrupt, 1u);
  EXPECT_FALSE(fs::exists(path));  // moved into quarantine/.
}

TEST(ScheduleCache, ConcurrentHammerStaysConsistent) {
  // Satellite audit gate: every public operation from many threads at once,
  // with eviction pressure on both tiers, must neither throw nor corrupt
  // the counters. Disk GC racing mmap'd readers is safe by construction
  // (POSIX keeps unlinked pages alive); a reader racing a deletion degrades
  // to a miss.
  const TempDir dir;
  std::size_t artifact_bytes = 0;
  {
    ScheduleCacheOptions probe_options;
    probe_options.disk_dir = (dir.path / "probe").string();
    ScheduleCache probe(std::move(probe_options));
    probe.insert("probe", make_sized(120, 0));
    artifact_bytes = probe.disk_bytes();
  }
  ScheduleCacheOptions options;
  options.disk_dir = dir.path.string();
  options.max_memory_bytes = 64 * 1024;       // forces LRU evictions.
  options.max_disk_bytes = artifact_bytes * 3;  // forces disk GC.
  ScheduleCache cache(std::move(options));

  constexpr int kThreads = 8;
  constexpr int kIters = 60;
  std::atomic<int> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int tag = (t + i) % 6;
        const std::string fp = "fp" + std::to_string(tag);
        switch (i % 4) {
          case 0:
            cache.insert(fp, make_sized(120, tag));
            break;
          case 1:
            if (const auto hit = cache.lookup(fp)) {
              ASSERT_EQ(static_cast<int>(hit->concurrent_flow), tag);
              served.fetch_add(1);
            }
            break;
          case 2:
            if (const auto view = cache.lookup_artifact(fp)) {
              // Decode the served bytes even if GC unlinks the object
              // underneath us — the mmap pins the pages.
              const GeneratedSchedule decoded =
                  generated_schedule_from_bytes(view->envelope);
              ASSERT_EQ(static_cast<int>(decoded.concurrent_flow), tag);
              served.fetch_add(1);
            }
            break;
          case 3:
            (void)cache.stats();
            (void)cache.disk_object_count();
            (void)cache.disk_bytes();
            (void)cache.entry_path(fp);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, stats.memory_hits + stats.disk_hits + stats.misses);
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(stats.disk_corrupt, 0u);
  // The budgets held despite the concurrency.
  EXPECT_LE(cache.memory_bytes(), 64u * 1024u);
  EXPECT_LE(cache.disk_bytes(), artifact_bytes * 3);
}

}  // namespace
}  // namespace a2a
