// Randomized weighted-demand differential harness (ctest labels
// fuzz;collectives).
//
// Draws random strongly-connected fabrics and random demand matrices —
// uniform, Zipf-skewed, permutations, arbitrary positive weights, and
// degenerate shapes with whole rows zeroed — and cross-checks every solver
// tier of the weighted pipeline against the others:
//   * exact link MCF (eqs. 1-5 with weighted demand rows) as the reference;
//   * decomposed MCF (grouped master LP + combinatorial children);
//   * Fleischer's grouped FPTAS (within its epsilon guarantee);
// then compiles + validates schedules from the decomposed flows against the
// demand matrix, and locks the weight-1 contract down: a unit demand matrix
// must reproduce the historical uniform pipeline bit-for-bit.
//
// A2A_FUZZ_ITERS overrides the instance count for longer soak runs; seeds
// derive from the instance index, so any failure reproduces standalone.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <bit>

#include "collectives/collective.hpp"
#include "common/random.hpp"
#include "core/api.hpp"
#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/validate.hpp"
#include "schedule/xml_io.hpp"

namespace a2a {
namespace {

long long fuzz_iterations() {
  if (const char* env = std::getenv("A2A_FUZZ_ITERS")) {
    return std::max(1LL, std::atoll(env));
  }
  return 40;
}

/// Strongly connected random fabric: a directed ring plus random chords.
DiGraph random_fabric(Rng& rng) {
  const int nodes = rng.next_int(4, 8);
  DiGraph g(nodes);
  for (int u = 0; u < nodes; ++u) {
    g.add_edge(u, (u + 1) % nodes, 1.0 + rng.next_int(0, 3));
  }
  const int chords = rng.next_int(2, 2 * nodes);
  for (int c = 0; c < chords; ++c) {
    const int u = rng.next_int(0, nodes);
    const int v = rng.next_int(0, nodes);
    if (u != v && g.find_edge(u, v) < 0) {
      g.add_edge(u, v, 1.0 + rng.next_int(0, 3));
    }
  }
  return g;
}

/// Random demand matrix over `n` terminals; `family` picks the shape.
DemandMatrix random_demand(Rng& rng, int n, int family) {
  switch (family) {
    case 0:
      return DemandMatrix::uniform(n);
    case 1:
      return DemandMatrix::zipf(n, 0.3 * rng.next_int(1, 5));
    case 2:
      return DemandMatrix::permutation(n, rng.next_below(1u << 16));
    case 3: {
      // Arbitrary positive weights, some drawn off the chunking grid.
      DemandMatrix m(n, 0.0);
      for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
          if (s == d) continue;
          const double w = rng.next_below(2) == 0
                               ? rng.next_int(1, 5) / 2.0          // on-grid
                               : 0.25 + 0.1 * rng.next_int(0, 30);  // off-grid
          m.set(s, d, w);
        }
      }
      return m;
    }
    default: {
      // Degenerate: uniform with one or more whole rows silenced (plus
      // scattered zero entries), always keeping at least one positive row.
      DemandMatrix m = DemandMatrix::uniform(n);
      const int silent = rng.next_int(1, n - 1);
      for (int k = 0; k < silent; ++k) {
        const int row = rng.next_int(0, n);
        for (int d = 0; d < n; ++d) {
          if (d != row) m.set(row, d, 0.0);
        }
      }
      for (int hits = rng.next_int(0, n); hits > 0; --hits) {
        const int s = rng.next_int(0, n);
        const int d = rng.next_int(0, n);
        if (s != d) m.set(s, d, 0.0);
      }
      if (m.total() <= 0.0) m.set(0, 1, 1.0);
      return m;
    }
  }
}

/// Per-commodity feasibility of weighted link flows: capacities respected,
/// commodity k delivers >= w_k * F, flow conserved at intermediate nodes,
/// and zero-weight commodities carry nothing.
void check_weighted_feasible(const DiGraph& g, const LinkFlowSolution& sol,
                             const DemandMatrix& demand) {
  const auto total = sol.total_edge_flow(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_LE(total[static_cast<std::size_t>(e)], g.edge(e).capacity + 1e-5);
  }
  for (int k = 0; k < sol.pairs.count(); ++k) {
    const auto [s, d] = sol.pairs.nodes(k);
    const double w = demand_weight(&demand, sol.pairs, k);
    const auto& flow = sol.per_commodity[static_cast<std::size_t>(k)];
    double delivered = 0;
    for (const EdgeId e : g.in_edges(d)) {
      delivered += flow[static_cast<std::size_t>(e)];
    }
    for (const EdgeId e : g.out_edges(d)) {
      delivered -= flow[static_cast<std::size_t>(e)];
    }
    if (w <= 0.0) {
      ASSERT_NEAR(delivered, 0.0, 1e-7) << s << "->" << d << " (zero demand)";
      continue;
    }
    ASSERT_GE(delivered, w * sol.concurrent_flow - 1e-5) << s << "->" << d;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == s || u == d) continue;
      double in = 0, out = 0;
      for (const EdgeId e : g.in_edges(u)) in += flow[static_cast<std::size_t>(e)];
      for (const EdgeId e : g.out_edges(u)) out += flow[static_cast<std::size_t>(e)];
      ASSERT_NEAR(in, out, 1e-5) << "conservation at " << u;
    }
  }
}

TEST(FuzzDemands, SolverTiersAgreeOnRandomDemandMatrices) {
  const long long iters = fuzz_iterations();
  long long degenerate_seen = 0;
  for (long long i = 0; i < iters; ++i) {
    Rng rng(0xDE11A0D5 + static_cast<std::uint64_t>(i));
    const DiGraph g = random_fabric(rng);
    const std::vector<NodeId> terminals = all_nodes(g);
    const int n = g.num_nodes();
    const int family = static_cast<int>(rng.next_below(5));
    const DemandMatrix demand = random_demand(rng, n, family);
    if (family == 4) ++degenerate_seen;
    SCOPED_TRACE(::testing::Message()
                 << "instance " << i << " family " << family << " n=" << n
                 << " positive=" << demand.num_positive());

    // Reference: the exact link MCF with weighted demand rows.
    const LinkFlowSolution exact =
        solve_link_mcf_exact(g, terminals, {}, nullptr, LpWarmMode::kAuto,
                             &demand);
    ASSERT_GT(exact.concurrent_flow, 0.0);
    check_weighted_feasible(g, exact, demand);

    // Decomposed (grouped master LP + combinatorial children) must reach
    // the same optimum: grouping commodities by source loses nothing.
    DecomposedOptions options;
    options.master = MasterMode::kExactLp;
    const LinkFlowSolution decomposed =
        solve_decomposed_mcf(g, terminals, options, nullptr, nullptr, &demand);
    ASSERT_NEAR(decomposed.concurrent_flow, exact.concurrent_flow,
                1e-4 * std::max(1.0, exact.concurrent_flow));
    check_weighted_feasible(g, decomposed, demand);

    // Fleischer's grouped FPTAS: feasible (never above the optimum) and
    // within its approximation guarantee.
    FleischerOptions fo;
    fo.epsilon = 0.05;
    const GroupedFlowSolution fptas =
        fleischer_grouped(g, terminals, fo, &demand);
    ASSERT_LE(fptas.concurrent_flow, exact.concurrent_flow * (1.0 + 1e-6));
    ASSERT_GE(fptas.concurrent_flow, exact.concurrent_flow * (1.0 - 0.15));

    // Compile the decomposed flows into a pipelined schedule and validate
    // it against the demand matrix (zero rows must ship zero chunks).
    const auto commodity_paths = paths_from_link_flows(g, decomposed, &demand);
    const LinkSchedule sched = unroll_rate_schedule(g, commodity_paths);
    const ValidationResult validation =
        validate_link_schedule(g, sched, terminals, &demand);
    ASSERT_TRUE(validation.ok)
        << (validation.errors.empty() ? "" : validation.errors.front());
  }
  // The degenerate family must actually fire or the zero-row paths go
  // untested.
  EXPECT_GT(degenerate_seen, 0);
}

// ---- the weight-1 golden contract ------------------------------------------
//
// A non-default workload whose demand lowers to all-ones must take the
// weighted code path (demand pointer non-null everywhere) and still emit
// bit-identical schedules: 1.0 * x is exact in IEEE arithmetic and
// snap_demand(1) == 1 exactly, so any divergence is a real regression.

ToolchainOptions unit_zipf_workload() {
  ToolchainOptions options;
  options.workload.demand.kind = DemandSpec::Kind::kZipf;
  options.workload.demand.zipf_s = 0.0;  // zipf:0 == uniform, bit for bit
  return options;
}

TEST(FuzzDemands, UnitWeightLinkScheduleIsByteIdenticalToDefault) {
  const DiGraph g = make_hypercube(3);
  const Fabric fabric = gpu_mscl_fabric();
  const GeneratedSchedule base = generate_schedule(g, fabric);
  const GeneratedSchedule weighted =
      generate_schedule(g, fabric, unit_zipf_workload());
  ASSERT_TRUE(base.link.has_value());
  ASSERT_TRUE(weighted.link.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(base.concurrent_flow),
            std::bit_cast<std::uint64_t>(weighted.concurrent_flow));
  EXPECT_EQ(link_schedule_to_xml(*base.link),
            link_schedule_to_xml(*weighted.link));
}

TEST(FuzzDemands, UnitWeightPathScheduleIsByteIdenticalToDefault) {
  const DiGraph g = make_generalized_kautz(12, 3);
  const Fabric fabric = hpc_cerio_fabric();
  const GeneratedSchedule base = generate_schedule(g, fabric);
  const GeneratedSchedule weighted =
      generate_schedule(g, fabric, unit_zipf_workload());
  ASSERT_TRUE(base.path.has_value());
  ASSERT_TRUE(weighted.path.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(base.concurrent_flow),
            std::bit_cast<std::uint64_t>(weighted.concurrent_flow));
  EXPECT_EQ(path_schedule_to_xml(g, *base.path),
            path_schedule_to_xml(g, *weighted.path));
}

TEST(FuzzDemands, UnitWeightUnrolledScheduleIsByteIdenticalToDefault) {
  // The decomposed + unroll link branch (n > exact_tsmcf_limit).
  const DiGraph g = make_hypercube(3);
  Fabric fabric = gpu_mscl_fabric();
  fabric.injection_GBps = 100.0;  // skip augmentation: pure solver diff
  ToolchainOptions base_options;
  base_options.exact_tsmcf_limit = 4;  // force the decomposed branch
  ToolchainOptions weighted_options = unit_zipf_workload();
  weighted_options.exact_tsmcf_limit = 4;
  const GeneratedSchedule base = generate_schedule(g, fabric, base_options);
  const GeneratedSchedule weighted =
      generate_schedule(g, fabric, weighted_options);
  ASSERT_TRUE(base.link.has_value());
  ASSERT_TRUE(weighted.link.has_value());
  EXPECT_EQ(base.kind, ScheduleKind::kLinkUnrolled);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(base.concurrent_flow),
            std::bit_cast<std::uint64_t>(weighted.concurrent_flow));
  EXPECT_EQ(link_schedule_to_xml(*base.link),
            link_schedule_to_xml(*weighted.link));
}

}  // namespace
}  // namespace a2a
