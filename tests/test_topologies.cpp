#include "graph/topologies.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"

namespace a2a {
namespace {

TEST(Topologies, RingShape) {
  const DiGraph g = make_ring(6);
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_EQ(diameter(g), 3);
}

TEST(Topologies, RingOfTwoHasSingleBidiLink) {
  const DiGraph g = make_ring(2);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Topologies, CompleteBipartite) {
  const DiGraph g = make_complete_bipartite(4, 4);
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_EQ(g.num_edges(), 32);
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_EQ(diameter(g), 2);
}

TEST(Topologies, HypercubeQ3) {
  const DiGraph g = make_hypercube(3);
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_EQ(g.num_edges(), 24);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_EQ(diameter(g), 3);
  EXPECT_EQ(total_pairwise_distance(g), 96);
}

TEST(Topologies, TwistedHypercubeShortensDistances) {
  const DiGraph tq = make_twisted_hypercube(3);
  EXPECT_EQ(tq.num_nodes(), 8);
  EXPECT_TRUE(tq.is_regular(3));
  EXPECT_LE(total_pairwise_distance(tq), total_pairwise_distance(make_hypercube(3)));
  EXPECT_TRUE(is_strongly_connected(tq));
}

TEST(Topologies, Torus333) {
  const DiGraph g = make_torus({3, 3, 3});
  EXPECT_EQ(g.num_nodes(), 27);
  EXPECT_EQ(g.num_edges(), 162);
  EXPECT_TRUE(g.is_regular(6));
  EXPECT_EQ(diameter(g), 3);
  EXPECT_EQ(total_pairwise_distance(g), 1458);  // gives F = 1/9 (§5.2)
}

TEST(Topologies, TorusDimension2NotDoubled) {
  const DiGraph g = make_torus({2, 3});
  EXPECT_EQ(g.num_nodes(), 6);
  // Each node: 1 link in the size-2 dim + 2 in the ring dim.
  EXPECT_TRUE(g.is_regular(3));
}

TEST(Topologies, MeshHasNoWraparound) {
  const DiGraph mesh = make_mesh({3, 3});
  EXPECT_EQ(mesh.num_edges(), 24);  // 12 bidi links
  EXPECT_EQ(diameter(mesh), 4);
}

TEST(Topologies, Torus2dFactorization) {
  const DiGraph g = make_torus_2d(12);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_THROW(make_torus_2d(22), InvalidArgument);  // 2*11 has no a,b >= 3
}

TEST(Topologies, GeneralizedKautzAnyNAndDegree) {
  for (const int n : {7, 12, 25, 50, 81}) {
    for (const int d : {2, 3, 4}) {
      const DiGraph g = make_generalized_kautz(n, d);
      EXPECT_EQ(g.num_nodes(), n);
      EXPECT_TRUE(is_strongly_connected(g)) << "GK(" << d << "," << n << ")";
      // Out-degree d, minus possibly skipped self-loop arcs.
      for (NodeId u = 0; u < n; ++u) {
        EXPECT_LE(g.out_degree(u), d);
        EXPECT_GE(g.out_degree(u), d - 1);
      }
    }
  }
}

TEST(Topologies, GeneralizedKautzLowDiameter) {
  // GK diameter is at most ceil(log_d N) + 1 for the Imase-Itoh construction.
  const DiGraph g = make_generalized_kautz(64, 4);
  EXPECT_LE(diameter(g), 4);
}

TEST(Topologies, DeBruijn) {
  const DiGraph g = make_de_bruijn(2, 3);
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_LE(diameter(g), 3);
}

TEST(Topologies, XpanderRegularAndConnected) {
  Rng rng(42);
  const DiGraph g = make_xpander(4, 8, rng);  // N = 40
  EXPECT_EQ(g.num_nodes(), 40);
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Topologies, DragonflyShapeAndConnectivity) {
  const DiGraph g = make_dragonfly(5, 4, 1);
  EXPECT_EQ(g.num_nodes(), 20);
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_LE(diameter(g), 4);  // local-global-local plus slack
  // Every router has its 3 intra-group links.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(g.out_degree(u), 3);
  }
  EXPECT_THROW(make_dragonfly(1, 4), InvalidArgument);
}

TEST(Topologies, RandomRegularIsSimpleRegularConnected) {
  Rng rng(7);
  const DiGraph g = make_random_regular(24, 3, rng);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_TRUE(is_strongly_connected(g));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::set<NodeId> seen;
    for (const EdgeId e : g.out_edges(u)) {
      EXPECT_TRUE(seen.insert(g.edge(e).to).second) << "parallel edge at " << u;
    }
  }
  EXPECT_THROW(make_random_regular(5, 3, rng), InvalidArgument);  // odd n*d
}

TEST(Topologies, PunctureEdgesKeepsConnectivityAndRemovesPairs) {
  Rng rng(3);
  const DiGraph torus = make_torus({3, 3, 3});
  const DiGraph punctured = puncture_edges(torus, 3, rng);
  EXPECT_EQ(punctured.num_nodes(), 27);
  EXPECT_EQ(punctured.num_edges(), 162 - 6);
  EXPECT_TRUE(is_strongly_connected(punctured));
}

TEST(Topologies, PunctureNodes) {
  Rng rng(3);
  const DiGraph torus = make_torus({3, 3, 3});
  const DiGraph punctured = puncture_nodes(torus, 3, rng);
  EXPECT_EQ(punctured.num_nodes(), 24);
  EXPECT_TRUE(is_strongly_connected(punctured));
}

TEST(Topologies, DisableRandomArcs) {
  Rng rng(11);
  const DiGraph g = make_generalized_kautz(81, 8);
  const DiGraph damaged = disable_random_arcs(g, 40, rng);
  EXPECT_EQ(damaged.num_edges(), g.num_edges() - 40);
  EXPECT_TRUE(is_strongly_connected(damaged));
}

/// Parameterized sweep: every family stays strongly connected across sizes.
class TopologyFamilies : public ::testing::TestWithParam<int> {};

TEST_P(TopologyFamilies, ConnectedAndSane) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  std::vector<DiGraph> graphs;
  graphs.push_back(make_ring(n));
  graphs.push_back(make_generalized_kautz(n, 3));
  if (n % 2 == 0) graphs.push_back(make_random_regular(n, 3, rng));
  for (const auto& g : graphs) {
    EXPECT_TRUE(is_strongly_connected(g)) << g.summary();
    EXPECT_GT(g.num_edges(), 0);
    for (const Edge& e : g.edges()) {
      EXPECT_NE(e.from, e.to);
      EXPECT_GT(e.capacity, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologyFamilies,
                         ::testing::Values(6, 9, 14, 21, 32, 50));

}  // namespace
}  // namespace a2a
