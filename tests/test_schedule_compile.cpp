// Schedule compilation (§4): exact tsMCF lowering and the scalable unroller
// both produce validator-clean schedules whose byte counts match the flows.
#include "schedule/compile_link.hpp"

#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "schedule/compile_path.hpp"
#include "schedule/validate.hpp"

namespace a2a {
namespace {

TEST(CompileLink, TsMcfScheduleValidates) {
  const DiGraph g = make_hypercube(3);
  const auto ts = solve_tsmcf_exact(g, 4, all_nodes(g));
  const LinkSchedule sched = compile_tsmcf_schedule(g, ts);
  const auto result = validate_link_schedule(g, sched, all_nodes(g));
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(sched.num_steps, 4);
}

TEST(CompileLink, TsMcfBytesMatchUtilization) {
  const DiGraph g = make_ring(4);
  const auto ts = solve_tsmcf_exact(g, 3, all_nodes(g));
  const LinkSchedule sched = compile_tsmcf_schedule(g, ts);
  const double shard = 1000.0;
  const auto bytes = sched.bytes_per_edge_step(g, shard);
  // Per-step peak bytes across links ~ U_t * shard (chunk snapping adds
  // rounding at the 1/7560 level).
  double total_peak = 0;
  for (int t = 0; t < sched.num_steps; ++t) {
    double peak = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      peak = std::max(peak, bytes[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)]);
    }
    total_peak += peak;
  }
  EXPECT_NEAR(total_peak, ts.total_utilization * shard, 0.05 * shard);
}

TEST(CompileLink, PathsFromLinkFlowsCoverEveryCommodity) {
  const DiGraph g = make_torus({3, 3});
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  const auto paths = paths_from_link_flows(g, flows);
  EXPECT_EQ(paths.size(), static_cast<std::size_t>(flows.pairs.count()));
  for (const auto& cp : paths) {
    double total = 0;
    for (const auto& wp : cp.paths) {
      EXPECT_TRUE(path_is_valid(g, wp.path, cp.src, cp.dst));
      total += wp.weight;
    }
    EXPECT_NEAR(total, flows.concurrent_flow, 1e-6);
  }
}

TEST(CompileLink, UnrolledScheduleValidates) {
  const DiGraph g = make_torus({3, 3});
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  const auto paths = paths_from_link_flows(g, flows);
  const LinkSchedule sched = unroll_rate_schedule(g, paths);
  const auto result = validate_link_schedule(g, sched, all_nodes(g));
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_GT(sched.num_steps, 0);
}

TEST(CompileLink, UnrolledThroughputNearOptimal) {
  // Steady state: total per-link chunk-steps ~ 1/F when every step carries
  // at most one chunk slot per link.
  const DiGraph g = make_hypercube(3);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  const auto paths = paths_from_link_flows(g, flows);
  const LinkSchedule sched = unroll_rate_schedule(g, paths);
  const double shard = 1.0;
  const auto bytes = sched.bytes_per_edge_step(g, shard);
  double busy = 0;  // sum over steps of per-step max bytes
  for (int t = 0; t < sched.num_steps; ++t) {
    double peak = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      peak = std::max(peak, bytes[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)]);
    }
    busy += peak;
  }
  // The serialized byte-time is within 2x of the fluid optimum 1/F = 4
  // (pipelining fill/drain costs the rest).
  EXPECT_LE(busy, 2.0 / flows.concurrent_flow);
}

TEST(CompilePath, FromExtractionValidates) {
  const DiGraph g = make_hypercube(3);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  const auto commodity_paths = paths_from_link_flows(g, flows);
  const PathSchedule sched = compile_path_schedule(g, commodity_paths);
  const auto result = validate_path_schedule(g, sched, all_nodes(g));
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  // Max link load stays near the optimum 1/F.
  EXPECT_LE(sched.max_link_load(g), 1.0 / flows.concurrent_flow + 0.15);
}

TEST(CompilePath, FromPathMcfWeightsValidates) {
  const DiGraph g = make_complete_bipartite(4, 4);
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  const auto sol = solve_path_mcf_exact(g, set);
  const PathSchedule sched = compile_path_schedule(g, set, sol.weights);
  const auto result = validate_path_schedule(g, sched, all_nodes(g));
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_GT(sched.total_chunks(), 0);
  EXPECT_EQ(sched.num_nodes, 8);
}

TEST(CompilePath, ChunkCountsMatchWeights) {
  const DiGraph g = make_ring(4);
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  const auto sol = solve_path_mcf_exact(g, set);
  const PathSchedule sched = compile_path_schedule(g, set, sol.weights);
  const double unit = sched.chunk_unit.to_double();
  for (const RouteEntry& r : sched.entries) {
    EXPECT_NEAR(r.weight, r.num_chunks * unit, 1e-9);
  }
}

}  // namespace
}  // namespace a2a
