// Schedule service: broker coalescing, zero-copy artifact serving,
// deadline admission, and the HTTP transport round trip.
#include "service/broker.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "container/schedbin.hpp"
#include "core/api.hpp"
#include "core/schedule_cache.hpp"
#include "graph/topologies.hpp"
#include "service/admission.hpp"
#include "service/request.hpp"
#include "service/server.hpp"

namespace a2a {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("a2a_service_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

/// Mints a fingerprint no other test has used: path_diversity_threshold is
/// fingerprint-relevant but, at values far above any small topology's
/// actual diversity, never flips a Fig. 1 branch — the schedule is
/// identical, the identity is fresh.
ToolchainOptions fresh_options() {
  static std::atomic<long long> next{100000};
  ToolchainOptions options;
  options.path_diversity_threshold = next.fetch_add(1);
  return options;
}

// ---- request vocabulary -----------------------------------------------------

TEST(ServiceRequest, QueryRoundTrip) {
  service::ServiceRequest request;
  request.spec.topology = "genkautz";
  request.spec.nodes = 27;
  request.spec.degree = 4;
  request.fabric = "gpu";
  request.deadline_ms = 250.0;
  request.options.path_diversity_threshold = 777;
  const std::string query = service::canonical_query(request);
  const service::ServiceRequest parsed = service::parse_service_request(query);
  EXPECT_EQ(parsed.spec.topology, "genkautz");
  EXPECT_EQ(parsed.spec.nodes, 27);
  EXPECT_EQ(parsed.spec.degree, 4);
  EXPECT_EQ(parsed.fabric, "gpu");
  EXPECT_DOUBLE_EQ(parsed.deadline_ms, 250.0);
  EXPECT_EQ(parsed.options.path_diversity_threshold, 777);
}

TEST(ServiceRequest, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW((void)service::parse_service_request("bogus=1"),
               InvalidArgument);
  EXPECT_THROW((void)service::parse_service_request("nodes=abc"),
               InvalidArgument);
  EXPECT_THROW((void)service::parse_service_request("topology"),
               InvalidArgument);
  EXPECT_THROW((void)service::build_topology({.topology = "nosuch"}),
               InvalidArgument);
  EXPECT_THROW((void)service::build_fabric("nosuch"), InvalidArgument);
}

TEST(ServiceRequest, WorkloadKeysRoundTripAndCanonicalize) {
  const service::ServiceRequest parsed = service::parse_service_request(
      "topology=genkautz&nodes=12&degree=3&demand=zipf:1.2&collective=rs");
  EXPECT_EQ(parsed.options.workload.collective, CollectiveKind::kReduceScatter);
  EXPECT_EQ(parsed.options.workload.demand.kind, DemandSpec::Kind::kZipf);
  EXPECT_DOUBLE_EQ(parsed.options.workload.demand.zipf_s, 1.2);
  // Canonicalization emits the workload keys (alphabetical, defaults
  // elided) and re-parsing reproduces the request.
  const std::string canonical = service::canonical_query(parsed);
  EXPECT_NE(canonical.find("collective=rs"), std::string::npos);
  EXPECT_NE(canonical.find("demand=zipf:1.2"), std::string::npos);
  const service::ServiceRequest again =
      service::parse_service_request(canonical);
  EXPECT_EQ(again.options.workload, parsed.options.workload);
  // Long-form aliases resolve to the same canonical collective.
  EXPECT_EQ(service::parse_service_request("collective=reduce-scatter")
                .options.workload.collective,
            CollectiveKind::kReduceScatter);
  // The default workload stays elided — historical queries canonicalize
  // unchanged.
  service::ServiceRequest plain;
  plain.spec.nodes = 12;
  EXPECT_EQ(service::canonical_query(plain).find("collective"),
            std::string::npos);
}

TEST(ServiceRequest, WorkloadsMintDistinctFingerprints) {
  const DiGraph topo = service::build_topology(
      {.topology = "genkautz", .nodes = 12, .degree = 3});
  const Fabric fabric = service::build_fabric("cerio");
  const auto fp = [&](const char* query) {
    return schedule_fingerprint(topo, fabric,
                                service::parse_service_request(query).options);
  };
  const std::string base = fp("");
  const std::string skewed = fp("demand=zipf:1.2");
  const std::string rs = fp("collective=rs");
  const std::string rs_skewed = fp("demand=zipf:1.2&collective=rs");
  EXPECT_NE(base, skewed);
  EXPECT_NE(base, rs);
  EXPECT_NE(skewed, rs);
  EXPECT_NE(rs, rs_skewed);
  // And the uniform-workload fingerprint is exactly the pre-workload one:
  // an explicitly-spelled default elides from the fingerprint.
  EXPECT_EQ(base, fp("collective=a2a&demand=uniform"));
}

TEST(ServiceRequest, MalformedWorkloadValuesThrow) {
  for (const char* query :
       {"collective=broadcast", "collective=", "demand=zipf",
        "demand=zipf:junk", "demand=zipf:9.5", "demand=block:0",
        "demand=nosuch"}) {
    EXPECT_THROW((void)service::parse_service_request(query), InvalidArgument)
        << query;
  }
}

TEST(ServiceRequest, BuildersMatchSchedgenFamilies) {
  service::TopologySpec spec;
  spec.topology = "genkautz";
  spec.nodes = 27;
  spec.degree = 4;
  EXPECT_EQ(service::build_topology(spec).num_nodes(), 27);
  EXPECT_EQ(service::build_fabric("cerio").name,
            hpc_cerio_fabric().name);
}

// ---- broker: coalescing -----------------------------------------------------

TEST(ScheduleBroker, ConcurrentIdenticalRequestsRunOneSynthesis) {
  TempDir dir;
  ScheduleCacheOptions cache_options;
  cache_options.disk_dir = dir.path.string();
  ScheduleCache cache(std::move(cache_options));
  ThreadPool pool(4);
  service::ScheduleBroker broker(&cache, &pool);

  const DiGraph topo = make_ring(6);
  const Fabric fabric = hpc_cerio_fabric();
  const ToolchainOptions options = fresh_options();

  const std::uint64_t runs_before = pipeline_invocations();
  constexpr int kThreads = 8;
  std::vector<service::BrokerResult> results(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      results[static_cast<std::size_t>(t)] =
          broker.request(topo, fabric, options);
    });
  }
  for (auto& th : threads) th.join();

  // The whole point: N concurrent identical misses, ONE pipeline run.
  EXPECT_EQ(pipeline_invocations() - runs_before, 1u);

  // Everyone got byte-identical artifact bytes.
  const std::string reference(results[0].view.envelope);
  int leaders = 0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.view.valid());
    EXPECT_EQ(std::string(r.view.envelope), reference);
    if (r.synth_seconds > 0.0) ++leaders;
    if (!r.hit && !r.coalesced) EXPECT_GT(r.synth_seconds, 0.0);
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_EQ(broker.inflight(), 0u);

  // And a later request is a pure hit.
  const auto again = broker.request(topo, fabric, options);
  EXPECT_TRUE(again.hit);
  EXPECT_EQ(pipeline_invocations() - runs_before, 1u);
}

TEST(ScheduleBroker, LeaderFailurePropagatesAndClearsTheSlot) {
  ThreadPool pool(4);
  service::ScheduleBroker broker(nullptr, &pool);

  const DiGraph topo = make_ring(6);
  const Fabric fabric = hpc_cerio_fabric();
  ToolchainOptions failing = fresh_options();
  // An unmeetable cooperative time limit: the pipeline dies with a
  // SolverError naming "time-limit" on every attempt.
  failing.mcf.lp.time_limit_s = 1e-9;
  const std::string fp = schedule_fingerprint(topo, fabric, failing);

  // Several concurrent requests with the failing options: whichever becomes
  // leader throws, and every coalesced waiter inherits the SAME exception
  // instead of hanging (cancellation propagates).
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        (void)broker.request(fp, topo, fabric, failing);
      } catch (const SolverError&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_EQ(broker.inflight(), 0u);

  // The failure cleared the in-flight slot: the same fingerprint with sane
  // options synthesizes fresh instead of inheriting the stale error.
  ToolchainOptions sane = failing;
  sane.mcf.lp.time_limit_s = 0.0;
  const auto result = broker.request(fp, topo, fabric, sane);
  EXPECT_TRUE(result.view.valid());
  EXPECT_FALSE(result.hit);
}

TEST(ScheduleBroker, HitsAreServedFromHotTierWithoutCacheTraffic) {
  TempDir dir;
  ScheduleCacheOptions cache_options;
  cache_options.disk_dir = dir.path.string();
  ScheduleCache cache(std::move(cache_options));
  service::ScheduleBroker broker(&cache, nullptr);

  const DiGraph topo = make_ring(6);
  const Fabric fabric = hpc_cerio_fabric();
  const ToolchainOptions options = fresh_options();

  const auto miss = broker.request(topo, fabric, options);
  ASSERT_TRUE(miss.view.valid());
  EXPECT_TRUE(miss.view.bytes);  // miss path serves the bytes insert() wrote.

  const std::uint64_t cache_lookups_before = cache.stats().lookups;
  const auto hit = broker.request(topo, fabric, options);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(cache.stats().lookups, cache_lookups_before);  // hot tier only.
  EXPECT_EQ(std::string(hit.view.envelope), std::string(miss.view.envelope));
}

TEST(ScheduleBroker, ColdBrokerServesMmapViewFromDiskTier) {
  TempDir dir;
  const DiGraph topo = make_ring(6);
  const Fabric fabric = hpc_cerio_fabric();
  const ToolchainOptions options = fresh_options();
  const std::string fp = schedule_fingerprint(topo, fabric, options);
  {
    ScheduleCacheOptions cache_options;
    cache_options.disk_dir = dir.path.string();
    ScheduleCache cache(std::move(cache_options));
    service::ScheduleBroker warm(&cache, nullptr);
    (void)warm.request(topo, fabric, options);
  }
  // A different process (modeled by a fresh cache + broker): the hit is the
  // artifact's mmap, not a heap copy — the zero-copy serving path.
  ScheduleCacheOptions cache_options;
  cache_options.disk_dir = dir.path.string();
  ScheduleCache cache(std::move(cache_options));
  service::ScheduleBroker cold(&cache, nullptr);
  const auto view = cold.try_lookup(fp);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->mapping);
  EXPECT_FALSE(view->bytes);
  // The inner frame is a decodable SchedBin container.
  const SchedBinReader reader = SchedBinReader::from_bytes(view->schedbin());
  EXPECT_GT(reader.info().record_count, 0u);
}

// ---- admission --------------------------------------------------------------

TEST(AdmissionQueue, ServesHitsAndRejectsMissesWhenQueueFull) {
  TempDir dir;
  ScheduleCacheOptions cache_options;
  cache_options.disk_dir = dir.path.string();
  ScheduleCache cache(std::move(cache_options));
  service::ScheduleBroker broker(&cache, nullptr);

  const DiGraph topo = make_ring(6);
  const Fabric fabric = hpc_cerio_fabric();
  const ToolchainOptions options = fresh_options();
  // Warm the cache through a permissive queue.
  {
    service::AdmissionQueue admit(&broker);
    const auto reply = admit.serve(topo, fabric, options);
    ASSERT_EQ(reply.outcome, service::ServiceOutcome::kServed);
    EXPECT_FALSE(reply.hit);
  }
  // max_pending = 0: serve-from-cache-only mode. Hits still flow; a fresh
  // fingerprint is rejected up front.
  service::AdmissionOptions admission_options;
  admission_options.max_pending = 0;
  service::AdmissionQueue admit(&broker, admission_options);
  const auto hit = admit.serve(topo, fabric, options);
  EXPECT_EQ(hit.outcome, service::ServiceOutcome::kServed);
  EXPECT_TRUE(hit.hit);
  const auto miss = admit.serve(topo, fabric, fresh_options());
  EXPECT_EQ(miss.outcome, service::ServiceOutcome::kRejectedQueueFull);
  EXPECT_FALSE(miss.view.valid());
}

TEST(AdmissionQueue, ExpiredDeadlineIsShedNotFailed) {
  service::ScheduleBroker broker(nullptr, nullptr);
  service::AdmissionQueue admit(&broker);
  const DiGraph topo = make_ring(6);
  const Fabric fabric = hpc_cerio_fabric();
  // A microsecond deadline: the cooperative time limit fires inside the
  // pipeline and admission maps it to a shed, not a pipeline failure.
  const auto reply = admit.serve(topo, fabric, fresh_options(), 1e-3);
  EXPECT_EQ(reply.outcome, service::ServiceOutcome::kShedDeadline);
  EXPECT_FALSE(reply.error.empty());
}

TEST(AdmissionQueue, UnmeetableDeadlineIsShedUpfrontViaEwma) {
  service::ScheduleBroker broker(nullptr, nullptr);
  service::AdmissionQueue admit(&broker);
  const DiGraph topo = make_ring(6);
  const Fabric fabric = hpc_cerio_fabric();
  // Prime the synthesis-time estimate with a real miss.
  const auto first = admit.serve(topo, fabric, fresh_options());
  ASSERT_EQ(first.outcome, service::ServiceOutcome::kServed);
  ASSERT_GT(admit.ewma_synth_seconds(), 0.0);
  // A deadline far below the estimate is shed WITHOUT spending pipeline
  // time: the pipeline never runs for it.
  const double hopeless_ms = admit.ewma_synth_seconds() * 1000.0 / 100.0;
  const std::uint64_t runs_before = pipeline_invocations();
  const auto reply = admit.serve(topo, fabric, fresh_options(), hopeless_ms);
  EXPECT_EQ(reply.outcome, service::ServiceOutcome::kShedDeadline);
  EXPECT_EQ(pipeline_invocations(), runs_before);
}

// ---- transport --------------------------------------------------------------

/// Minimal HTTP client for the round-trip tests: one request, whole
/// response (headers + body) as a string.
std::string http_request(std::uint16_t port, const std::string& method,
                         const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  const std::string request = method + " " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: "
                              "close\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string{} : response.substr(pos + 4);
}

TEST(ScheduleServer, RoundTripServesSchedBinAndMetrics) {
  TempDir dir;
  ScheduleCacheOptions cache_options;
  cache_options.disk_dir = dir.path.string();
  ScheduleCache cache(std::move(cache_options));
  ThreadPool pool(2);
  service::ScheduleBroker broker(&cache, &pool);
  service::AdmissionQueue admission(&broker);
  service::ServerOptions server_options;
  server_options.port = 0;
  server_options.threads = 2;
  service::ScheduleServer server(&admission, server_options);
  server.start();
  ASSERT_GT(server.port(), 0);

  EXPECT_NE(http_request(server.port(), "GET", "/healthz").find("200 OK"),
            std::string::npos);

  const std::string schedule = http_request(
      server.port(), "GET", "/schedule?topology=ring&nodes=6");
  EXPECT_NE(schedule.find("200 OK"), std::string::npos);
  EXPECT_NE(schedule.find("X-A2A-Outcome: served"), std::string::npos);
  EXPECT_NE(schedule.find("X-A2A-Hit: 0"), std::string::npos);
  const std::string payload = body_of(schedule);
  // The body is the raw inner SchedBin frame.
  ASSERT_GE(payload.size(), sizeof kSchedBinMagic);
  EXPECT_EQ(std::memcmp(payload.data(), kSchedBinMagic,
                        sizeof kSchedBinMagic),
            0);

  // Same request again: a hit served from bytes already on disk.
  const std::string again = http_request(
      server.port(), "GET", "/schedule?topology=ring&nodes=6");
  EXPECT_NE(again.find("X-A2A-Hit: 1"), std::string::npos);
  EXPECT_EQ(body_of(again), payload);

  const std::string metrics = http_request(server.port(), "GET", "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("application/json"), std::string::npos);
  const std::string metrics_body = body_of(metrics);
  ASSERT_FALSE(metrics_body.empty());
  EXPECT_EQ(metrics_body.front(), '{');
  EXPECT_NE(metrics_body.find("\"service.requests\""), std::string::npos);

  // Weighted and lowered workloads serve end-to-end through the same
  // transport, each under its own fingerprint (a miss, not the ring hit).
  const std::string skewed = http_request(
      server.port(), "GET", "/schedule?topology=ring&nodes=6&demand=zipf:1.2");
  EXPECT_NE(skewed.find("200 OK"), std::string::npos);
  EXPECT_NE(skewed.find("X-A2A-Hit: 0"), std::string::npos);
  EXPECT_NE(body_of(skewed), payload);
  const std::string reduce_scatter = http_request(
      server.port(), "GET", "/schedule?topology=ring&nodes=6&collective=rs");
  EXPECT_NE(reduce_scatter.find("200 OK"), std::string::npos);
  // Repeating the skewed request hits its cached entry.
  EXPECT_NE(
      http_request(server.port(), "GET",
                   "/schedule?topology=ring&nodes=6&demand=zipf:1.2")
          .find("X-A2A-Hit: 1"),
      std::string::npos);

  EXPECT_NE(http_request(server.port(), "GET", "/schedule?bogus=1")
                .find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "GET",
                         "/schedule?topology=ring&nodes=6&demand=zipf:bad")
                .find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "GET",
                         "/schedule?topology=ring&nodes=6&collective=nosuch")
                .find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "GET", "/nosuch").find("404"),
            std::string::npos);

  // Graceful stop: POST /shutdown unblocks wait_shutdown().
  std::thread waiter([&server] { server.wait_shutdown(); });
  EXPECT_NE(http_request(server.port(), "POST", "/shutdown").find("200 OK"),
            std::string::npos);
  waiter.join();
  server.stop();
}

TEST(ScheduleServer, DeadlineQueryIsHonored) {
  service::ScheduleBroker broker(nullptr, nullptr);
  service::AdmissionQueue admission(&broker);
  service::ServerOptions server_options;
  server_options.port = 0;
  server_options.threads = 1;
  service::ScheduleServer server(&admission, server_options);
  server.start();
  const std::string response = http_request(
      server.port(), "GET", "/schedule?topology=ring&nodes=6&deadline_ms=0.001");
  EXPECT_NE(response.find("504"), std::string::npos);
  EXPECT_NE(response.find("X-A2A-Outcome: shed-deadline"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace a2a
