// Observability layer tests: metric correctness under concurrent hammering,
// span nesting and thread attribution, Chrome-trace JSON well-formedness,
// the disabled fast paths, and metric-count determinism across repeat
// identical LP solves.
//
// The registry is process-global and other suites in this binary may bump
// metrics, so every assertion here works on deltas between snapshots (or on
// metrics with names only this file uses), never on absolute values.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "mcf/concurrent_flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace a2a {
namespace {

using obs::MetricKind;
using obs::MetricSample;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::TraceSession;
using obs::TraceSpan;

std::map<std::string, std::int64_t> snapshot_values() {
  std::map<std::string, std::int64_t> out;
  for (const MetricSample& s : MetricsRegistry::global().snapshot()) {
    out[s.name] = s.value;
  }
  return out;
}

TEST(Metrics, CounterConcurrentHammering) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  obs::Counter& counter = MetricsRegistry::global().counter("test_obs.hammer");
  const std::uint64_t before = counter.value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value() - before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, GaugeConcurrentAddSubBalances) {
  obs::Gauge& gauge = MetricsRegistry::global().gauge("test_obs.gauge");
  const std::int64_t before = gauge.value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        gauge.add(3);
        gauge.sub(3);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gauge.value(), before);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  obs::Histogram& h = MetricsRegistry::global().histogram("test_obs.hist");
  h.reset();
  // 2^i ns lands in bucket i ([2^i, 2^(i+1)) by the bit-scan rule); 0 and 1
  // both land in bucket 0.
  h.observe_ns(0);
  h.observe_ns(1);
  h.observe_ns(2);
  h.observe_ns(1024);
  h.observe_ns((1ULL << 40));  // beyond the last bound: absorbed by bucket 31
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::kBuckets - 1), 1u);
  // Quantiles are bucket upper bounds: the median observation lives in
  // bucket 1 (value 2), so p50 reports that bucket's bound.
  EXPECT_EQ(h.quantile_ns(0.5), obs::Histogram::bucket_bound_ns(1));
  EXPECT_EQ(h.quantile_ns(1.0),
            obs::Histogram::bucket_bound_ns(obs::Histogram::kBuckets - 1));
}

TEST(Metrics, HistogramConcurrentCountsAreExact) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  obs::Histogram& h =
      MetricsRegistry::global().histogram("test_obs.hist_concurrent");
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe_ns(static_cast<std::uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) bucket_total += h.bucket(b);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(Metrics, RegistryReturnsStableReferencesAndChecksKinds) {
  obs::Counter& a = MetricsRegistry::global().counter("test_obs.stable");
  obs::Counter& b = MetricsRegistry::global().counter("test_obs.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(MetricsRegistry::global().gauge("test_obs.stable"),
               InternalError);
}

TEST(Metrics, RuntimeDisableStopsUpdatesAndKeepsValues) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  obs::Counter& counter =
      MetricsRegistry::global().counter("test_obs.disable");
  counter.add(7);
  const std::uint64_t before = counter.value();
  obs::set_metrics_enabled(false);
  counter.add(100);
  EXPECT_EQ(counter.value(), before);  // muted, not cleared
  obs::set_metrics_enabled(true);
  counter.add(1);
  EXPECT_EQ(counter.value(), before + 1);
}

TEST(Metrics, ToJsonIsWellFormedFlatObject) {
  MetricsRegistry::global().counter("test_obs.json").add(3);
  MetricsRegistry::global().histogram("test_obs.json_hist").observe_ns(500);
  const std::string json = MetricsRegistry::global().to_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.find_last_not_of('\n')], '}');
  EXPECT_NE(json.find("\"test_obs.json\":"), std::string::npos);
  EXPECT_NE(json.find("\"test_obs.json_hist.count\":"), std::string::npos);
  EXPECT_NE(json.find("\"test_obs.json_hist.p99_ns\":"), std::string::npos);
  // Structural sanity without a JSON parser: balanced braces, no raw
  // control characters.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  for (const char c : json) {
    EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20) << (int)c;
  }
}

TEST(Trace, SpanNestingDepthsAndOrdering) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  TraceSession session;
  {
    TraceSpan outer("test_obs.outer");
    {
      TraceSpan inner("test_obs.inner", "detail");
      obs::trace_instant("test_obs.mark");
    }
  }
  session.stop();
  const std::vector<TraceEvent> events = session.events();
  ASSERT_EQ(events.size(), 3u);
  // Sorted (tid, start, dur desc): outer encloses inner encloses the mark.
  EXPECT_STREQ(events[0].name, "test_obs.outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_STREQ(events[1].name, "test_obs.inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[1].args, "detail");
  EXPECT_STREQ(events[2].name, "test_obs.mark");
  EXPECT_TRUE(events[2].instant);
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST(Trace, ThreadAttribution) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  TraceSession session;
  {
    TraceSpan main_span("test_obs.main_thread");
    std::thread worker([] { TraceSpan s("test_obs.worker_thread"); });
    worker.join();
  }
  session.stop();
  std::uint32_t main_tid = 0, worker_tid = 0;
  bool saw_main = false, saw_worker = false;
  for (const TraceEvent& ev : session.events()) {
    if (std::string(ev.name) == "test_obs.main_thread") {
      main_tid = ev.tid;
      saw_main = true;
    }
    if (std::string(ev.name) == "test_obs.worker_thread") {
      worker_tid = ev.tid;
      saw_worker = true;
    }
  }
  ASSERT_TRUE(saw_main);
  ASSERT_TRUE(saw_worker);
  EXPECT_NE(main_tid, worker_tid);
}

TEST(Trace, AnnotateAppendsWithSeparator) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  TraceSession session;
  {
    TraceSpan span("test_obs.annotated");
    span.annotate("first");
    span.annotate("second");
  }
  session.stop();
  const auto events = session.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].args, "first; second");
}

TEST(Trace, ChromeJsonWellFormed) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  TraceSession session;
  {
    TraceSpan span("test_obs.chrome", "quote\" backslash\\ newline\n tab\t");
    obs::trace_instant("test_obs.chrome_mark");
  }
  session.stop();
  const std::string json = session.chrome_json();
  EXPECT_EQ(json.rfind("{\n\"traceEvents\": [", 0), 0u);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // The hostile annotation must come out escaped, never as raw bytes.
  EXPECT_NE(json.find("quote\\\" backslash\\\\ newline\\n tab\\t"),
            std::string::npos);
  for (const char c : json) {
    EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20) << (int)c;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, NoSessionMeansNoRecording) {
  ASSERT_FALSE(obs::tracing_enabled());
  { TraceSpan span("test_obs.unrecorded"); }  // must be a cheap no-op
  TraceSession session;
  session.stop();
  for (const TraceEvent& ev : session.events()) {
    EXPECT_STRNE(ev.name, "test_obs.unrecorded");
  }
}

TEST(Trace, SessionClearsPriorEvents) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  {
    TraceSession first;
    TraceSpan span("test_obs.first_session");
  }
  TraceSession second;
  { TraceSpan span("test_obs.second_session"); }
  second.stop();
  const auto events = second.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test_obs.second_session");
}

TEST(Obs, LpMetricDeltasAreDeterministicAcrossIdenticalSolves) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  const DiGraph g = make_generalized_kautz(8, 4);
  const LpModel model = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  (void)solve_lp(model);  // settle one-time registrations

  const auto delta_of_run = [&] {
    const auto before = snapshot_values();
    (void)solve_lp(model);
    const auto after = snapshot_values();
    std::map<std::string, std::int64_t> delta;
    for (const auto& [name, value] : after) {
      // Only the deterministic lp.* counters: histograms and wall-clock
      // metrics vary run to run by construction.
      if (name.rfind("lp.", 0) != 0) continue;
      if (name.find("solve.seconds") != std::string::npos) continue;
      const auto it = before.find(name);
      delta[name] = value - (it == before.end() ? 0 : it->second);
    }
    return delta;
  };
  const auto first = delta_of_run();
  const auto second = delta_of_run();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.at("lp.solves"), 0);
  EXPECT_GT(first.at("lp.iterations"), 0);
}

TEST(Obs, SolveStatsMatchGlobalCounterDeltas) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with A2A_OBS=0";
  const DiGraph g = make_generalized_kautz(8, 4);
  const LpModel model = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  const auto before = snapshot_values();
  const LpSolution sol = solve_lp(model);
  const auto after = snapshot_values();
  const auto delta = [&](const char* name) {
    const auto b = before.find(name);
    return after.at(name) - (b == before.end() ? 0 : b->second);
  };
  EXPECT_EQ(delta("lp.solves"), 1);
  EXPECT_EQ(delta("lp.iterations"), sol.stats.iterations);
  EXPECT_EQ(delta("lp.refactorizations"), sol.stats.refactorizations);
  EXPECT_EQ(delta("lp.ft_updates"), sol.stats.ft_updates);
  EXPECT_EQ(sol.iterations, sol.stats.iterations);
  EXPECT_EQ(sol.stats.primal_iterations + sol.stats.dual_iterations,
            sol.stats.iterations);
}

}  // namespace
}  // namespace a2a
