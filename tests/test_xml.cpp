#include "common/xml.hpp"

#include <gtest/gtest.h>

namespace a2a {
namespace {

TEST(Xml, RoundTripsElementsAndAttributes) {
  XmlNode root("algo");
  root.set_attr("name", "alltoall");
  root.set_attr("steps", 4LL);
  XmlNode& child = root.add_child("step");
  child.set_attr("id", 1LL);
  child.add_child("send").set_attr("to", 3LL);
  const std::string text = xml_to_string(root);
  const auto parsed = xml_parse(text);
  EXPECT_EQ(parsed->name, "algo");
  EXPECT_EQ(parsed->attr("name"), "alltoall");
  EXPECT_EQ(parsed->attr_int("steps"), 4);
  ASSERT_EQ(parsed->children.size(), 1u);
  EXPECT_EQ(parsed->children[0]->children_named("send").size(), 1u);
}

TEST(Xml, EscapesSpecialCharacters) {
  XmlNode root("r");
  root.set_attr("expr", "a<b&&c>\"d\"");
  const auto parsed = xml_parse(xml_to_string(root));
  EXPECT_EQ(parsed->attr("expr"), "a<b&&c>\"d\"");
}

TEST(Xml, ParsesTextContent) {
  const auto parsed = xml_parse("<note>  hello &amp; goodbye  </note>");
  EXPECT_EQ(parsed->text, "hello & goodbye");
}

TEST(Xml, SkipsPrologAndSelfClosing) {
  const auto parsed =
      xml_parse("<?xml version=\"1.0\"?>\n<a><b x=\"1\"/><b x=\"2\"/></a>");
  EXPECT_EQ(parsed->children_named("b").size(), 2u);
}

TEST(Xml, RejectsMalformedInput) {
  EXPECT_THROW(xml_parse("<a><b></a></b>"), InvalidArgument);
  EXPECT_THROW(xml_parse("<a"), InvalidArgument);
  EXPECT_THROW(xml_parse("<a></a><b></b>"), InvalidArgument);
  EXPECT_THROW(xml_parse("<a x=1></a>"), InvalidArgument);
}

TEST(Xml, MissingAttributeThrows) {
  const auto parsed = xml_parse("<a x=\"1\"/>");
  EXPECT_TRUE(parsed->has_attr("x"));
  EXPECT_FALSE(parsed->has_attr("y"));
  EXPECT_THROW(static_cast<void>(parsed->attr("y")), InvalidArgument);
}

}  // namespace
}  // namespace a2a
