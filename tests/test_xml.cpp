#include "common/xml.hpp"

#include <gtest/gtest.h>

namespace a2a {
namespace {

TEST(Xml, RoundTripsElementsAndAttributes) {
  XmlNode root("algo");
  root.set_attr("name", "alltoall");
  root.set_attr("steps", 4LL);
  XmlNode& child = root.add_child("step");
  child.set_attr("id", 1LL);
  child.add_child("send").set_attr("to", 3LL);
  const std::string text = xml_to_string(root);
  const auto parsed = xml_parse(text);
  EXPECT_EQ(parsed->name, "algo");
  EXPECT_EQ(parsed->attr("name"), "alltoall");
  EXPECT_EQ(parsed->attr_int("steps"), 4);
  ASSERT_EQ(parsed->children.size(), 1u);
  EXPECT_EQ(parsed->children[0]->children_named("send").size(), 1u);
}

TEST(Xml, EscapesSpecialCharacters) {
  XmlNode root("r");
  root.set_attr("expr", "a<b&&c>\"d\"");
  const auto parsed = xml_parse(xml_to_string(root));
  EXPECT_EQ(parsed->attr("expr"), "a<b&&c>\"d\"");
}

TEST(Xml, EscapesApostrophes) {
  XmlNode root("r");
  root.set_attr("who", "it's <here> & 'there'");
  root.text = "don't";
  const std::string text = xml_to_string(root);
  EXPECT_EQ(text.find('\''), std::string::npos)
      << "raw apostrophe leaked into serialized XML: " << text;
  const auto parsed = xml_parse(text);
  EXPECT_EQ(parsed->attr("who"), "it's <here> & 'there'");
  EXPECT_EQ(parsed->text, "don't");
}

TEST(Xml, AttrIntDiagnosesMalformedNumbers) {
  const auto parsed = xml_parse(
      "<a empty=\"\" word=\"banana\" trail=\"12abc\" huge=\""
      "999999999999999999999999999\" ok=\"-42\"/>");
  EXPECT_EQ(parsed->attr_int("ok"), -42);
  // Each failure mode surfaces as the library's InvalidArgument (with the
  // attribute name in the message), never a raw std:: exception.
  for (const char* key : {"empty", "word", "trail", "huge"}) {
    try {
      (void)parsed->attr_int(key);
      FAIL() << "attr_int(" << key << ") did not throw";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
          << "diagnostic does not name the attribute: " << e.what();
    }
  }
}

TEST(Xml, ParsesTextContent) {
  const auto parsed = xml_parse("<note>  hello &amp; goodbye  </note>");
  EXPECT_EQ(parsed->text, "hello & goodbye");
}

TEST(Xml, SkipsPrologAndSelfClosing) {
  const auto parsed =
      xml_parse("<?xml version=\"1.0\"?>\n<a><b x=\"1\"/><b x=\"2\"/></a>");
  EXPECT_EQ(parsed->children_named("b").size(), 2u);
}

TEST(Xml, RejectsMalformedInput) {
  EXPECT_THROW(xml_parse("<a><b></a></b>"), InvalidArgument);
  EXPECT_THROW(xml_parse("<a"), InvalidArgument);
  EXPECT_THROW(xml_parse("<a></a><b></b>"), InvalidArgument);
  EXPECT_THROW(xml_parse("<a x=1></a>"), InvalidArgument);
}

TEST(Xml, MissingAttributeThrows) {
  const auto parsed = xml_parse("<a x=\"1\"/>");
  EXPECT_TRUE(parsed->has_attr("x"));
  EXPECT_FALSE(parsed->has_attr("y"));
  EXPECT_THROW(static_cast<void>(parsed->attr("y")), InvalidArgument);
}

}  // namespace
}  // namespace a2a
