// End-to-end Fig. 1 decision flow.
#include "core/api.hpp"

#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "runtime/executor.hpp"
#include "schedule/validate.hpp"

namespace a2a {
namespace {

TEST(CoreApi, MlFabricSmallTopologyUsesExactTsMcf) {
  const DiGraph g = make_hypercube(3);
  const auto result = generate_schedule(g, gpu_mscl_fabric());
  EXPECT_EQ(result.kind, ScheduleKind::kLinkTsMcf);
  ASSERT_TRUE(result.link.has_value());
  EXPECT_NEAR(result.concurrent_flow, 0.25, 1e-4);
  EXPECT_TRUE(validate_link_schedule(result.schedule_graph, *result.link,
                                     result.terminals)
                  .ok);
  // And it actually runs.
  const auto report = execute_link_schedule(result.schedule_graph, *result.link,
                                            result.terminals, 7560);
  EXPECT_TRUE(report.transpose_verified);
}

TEST(CoreApi, MlFabricLargeTopologyUnrollsDecomposedMcf) {
  const DiGraph g = make_torus({3, 3, 3});
  Fabric fabric = cpu_oneccl_fabric();
  fabric.injection_GBps = 100.0;  // no host bottleneck in this variant
  ToolchainOptions options;
  options.mcf.master = MasterMode::kFptas;
  options.mcf.fptas_epsilon = 0.05;
  const auto result = generate_schedule(g, fabric, options);
  EXPECT_EQ(result.kind, ScheduleKind::kLinkUnrolled);
  ASSERT_TRUE(result.link.has_value());
  EXPECT_TRUE(validate_link_schedule(result.schedule_graph, *result.link,
                                     result.terminals)
                  .ok);
  EXPECT_GE(result.concurrent_flow, (1.0 / 9.0) * 0.85);
}

TEST(CoreApi, HostBottleneckTriggersAugmentation) {
  // The paper's TACC setting: degree 6 at 25 Gbps = 150 Gbps NIC vs
  // 100 Gbps injection -> augmentation, F -> 2/27.
  const DiGraph g = make_torus({3, 3, 3});
  ToolchainOptions options;
  options.mcf.master = MasterMode::kFptas;
  options.mcf.fptas_epsilon = 0.05;
  const auto result = generate_schedule(g, cpu_oneccl_fabric(), options);
  EXPECT_NE(result.notes.find("augmentation"), std::string::npos);
  EXPECT_EQ(result.terminals.size(), 27u);
  EXPECT_EQ(result.schedule_graph.num_nodes(), 81);
  EXPECT_LE(result.concurrent_flow, 2.0 / 27.0 + 1e-6);
  EXPECT_GE(result.concurrent_flow, (2.0 / 27.0) * 0.8);
  ASSERT_TRUE(result.link.has_value());
  EXPECT_TRUE(validate_link_schedule(result.schedule_graph, *result.link,
                                     result.terminals)
                  .ok);
}

TEST(CoreApi, HpcFabricLowDiversityUsesPMcf) {
  const DiGraph g = make_generalized_kautz(12, 3);
  const auto result = generate_schedule(g, hpc_cerio_fabric());
  EXPECT_EQ(result.kind, ScheduleKind::kPathPMcf);
  ASSERT_TRUE(result.path.has_value());
  EXPECT_TRUE(validate_path_schedule(g, *result.path, result.terminals).ok);
  EXPECT_GE(result.vc_layers, 1);
  EXPECT_LE(result.vc_layers, 4);
}

TEST(CoreApi, HpcFabricHighDiversityUsesExtraction) {
  // The 3D torus has exponentially many bounded-length paths (§3.1.4).
  const DiGraph g = make_torus({3, 3, 3});
  ToolchainOptions options;
  options.path_diversity_threshold = 64;
  const auto result = generate_schedule(g, hpc_cerio_fabric(), options);
  EXPECT_EQ(result.kind, ScheduleKind::kPathExtracted);
  ASSERT_TRUE(result.path.has_value());
  EXPECT_TRUE(validate_path_schedule(g, *result.path, result.terminals).ok);
  EXPECT_NEAR(result.concurrent_flow, 1.0 / 9.0, 0.01);
}

TEST(CoreApi, PathDiversityEstimatorSeparatesFamilies) {
  EXPECT_GT(estimate_path_diversity(make_torus({3, 3, 3})),
            estimate_path_diversity(make_generalized_kautz(27, 3)));
}

}  // namespace
}  // namespace a2a
