// Path-based MCF (§3.1.4): disjoint-path candidates nearly match the
// unrestricted optimum (the §5.3 observation), shortest-path candidates can
// be strictly worse on expanders.
#include "mcf/path_mcf.hpp"

#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "mcf/concurrent_flow.hpp"

namespace a2a {
namespace {

TEST(PathMcf, DisjointMatchesLinkOptimumOnHypercube) {
  const DiGraph g = make_hypercube(3);
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  const auto sol = solve_path_mcf_exact(g, set);
  EXPECT_NEAR(sol.concurrent_flow, 0.25, 1e-5);
}

TEST(PathMcf, DisjointMatchesLinkOptimumOnK44) {
  const DiGraph g = make_complete_bipartite(4, 4);
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  const auto sol = solve_path_mcf_exact(g, set);
  EXPECT_NEAR(sol.concurrent_flow, 0.4, 1e-5);
}

TEST(PathMcf, ShortestPathsWeakerThanDisjointOnExpander) {
  // §5.3: pMCF with only shortest paths is suboptimal on expanders because
  // expanders have few shortest paths.
  const DiGraph g = make_generalized_kautz(10, 3);
  const std::vector<NodeId> nodes = all_nodes(g);
  const double f_disjoint =
      solve_path_mcf_exact(g, build_disjoint_path_set(g, nodes)).concurrent_flow;
  const double f_shortest =
      solve_path_mcf_exact(g, build_shortest_path_set(g, nodes, 64)).concurrent_flow;
  EXPECT_LE(f_shortest, f_disjoint + 1e-6);
  const double f_link = solve_link_mcf_exact(g, nodes).concurrent_flow;
  EXPECT_GE(f_disjoint, 0.85 * f_link);  // near-optimal per §5.3
}

TEST(PathMcf, UnrestrictedPathsEqualLinkDualOnSmallGraph) {
  // On a 5-ring, shortest+disjoint candidates already realize the full dual.
  const DiGraph g = make_ring(5);
  const std::vector<NodeId> nodes = all_nodes(g);
  const double f_link = solve_link_mcf_exact(g, nodes).concurrent_flow;
  const double f_path =
      solve_path_mcf_exact(g, build_disjoint_path_set(g, nodes)).concurrent_flow;
  EXPECT_NEAR(f_link, f_path, 1e-5);
}

TEST(PathMcf, WeightsRespectCapacitiesAndDemands) {
  const DiGraph g = make_torus({3, 3});
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  const auto sol = solve_path_mcf_exact(g, set);
  std::vector<double> load(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (std::size_t k = 0; k < set.candidates.size(); ++k) {
    double demand = 0;
    for (std::size_t p = 0; p < set.candidates[k].size(); ++p) {
      demand += sol.weights[k][p];
      for (const EdgeId e : set.candidates[k][p]) {
        load[static_cast<std::size_t>(e)] += sol.weights[k][p];
      }
    }
    EXPECT_GE(demand, sol.concurrent_flow - 1e-6);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(load[static_cast<std::size_t>(e)], g.edge(e).capacity + 1e-6);
  }
}

TEST(PathMcf, MaxLinkLoadInverseOfF) {
  // With weights normalized per commodity, 1/max_link_load is the rate the
  // schedule actually achieves; for the optimal weights it equals F.
  const DiGraph g = make_hypercube(3);
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  const auto sol = solve_path_mcf_exact(g, set);
  const double load = max_link_load(g, set, sol.weights);
  EXPECT_NEAR(1.0 / load, sol.concurrent_flow, 1e-5);
}

TEST(PathMcf, ShortestSetTruncationFlagOnTorus) {
  const DiGraph g = make_torus({3, 3, 3});
  bool truncated = false;
  (void)build_shortest_path_set(g, all_nodes(g), 4, &truncated);
  EXPECT_TRUE(truncated);  // tori have many shortest paths (§3.1.4)
}

TEST(PathMcf, BudgetedSolveReportsTimeLimitInsteadOfThrowing) {
  const DiGraph g = make_torus({3, 3});
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  SimplexOptions lp;
  lp.time_limit_s = 1e-9;
  const auto sol = solve_path_mcf_budgeted(g, set, lp);
  EXPECT_EQ(sol.status, LpStatus::kTimeLimit);
  // Weights stay shaped like the candidate set even when the solve was cut
  // off before any value was produced (callers repair, not crash).
  ASSERT_EQ(sol.weights.size(), set.commodities.size());
  for (std::size_t k = 0; k < sol.weights.size(); ++k) {
    EXPECT_EQ(sol.weights[k].size(), set.candidates[k].size());
  }
}

TEST(PathMcf, BudgetedSolveMatchesExactWithGenerousBudget) {
  const DiGraph g = make_hypercube(3);
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  SimplexOptions lp;
  lp.time_limit_s = 30.0;
  const auto sol = solve_path_mcf_budgeted(g, set, lp);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.concurrent_flow, 0.25, 1e-5);
}

TEST(PathMcf, BuildDisjointThrowsOnDisconnectedTerminals) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  EXPECT_THROW(build_disjoint_path_set(g, {0, 2}), InvalidArgument);
}

}  // namespace
}  // namespace a2a
