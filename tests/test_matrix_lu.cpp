#include <gtest/gtest.h>

#include "common/matrix.hpp"
#include "common/random.hpp"
#include "lp/lu.hpp"

namespace a2a {
namespace {

TEST(Matrix, MultiplyAndTranspose) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  std::vector<double> x{1, 1, 1}, y;
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
  std::vector<double> z;
  m.multiply_transpose(y, z);
  EXPECT_DOUBLE_EQ(z[0], 6 + 60);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  std::vector<double> x{3, -1, 2}, y;
  id.multiply(x, y);
  EXPECT_EQ(x, y);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  LuFactorization lu(a);
  std::vector<double> b{5, 10};
  lu.solve(b);  // x = (1, 3)
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Lu, SolveTransposeConsistent) {
  Rng rng(4);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next_double() - 0.5;
    a(i, i) += 3.0;  // diagonally dominant -> well conditioned
  }
  LuFactorization lu(a);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.next_double();
  // Compute b = A^T x, then solve A^T y = b; expect y == x.
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[j] += a(i, j) * x[i];
  }
  lu.solve_transpose(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x[i], 1e-9);
}

TEST(Lu, InvertProducesInverse) {
  Rng rng(5);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next_double() - 0.5;
    a(i, i) += 2.0;
  }
  LuFactorization lu(a);
  Matrix inv;
  lu.invert(inv);
  // a * inv == I.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::size_t k = 0; k < n; ++k) acc += a(i, k) * inv(k, j);
      EXPECT_NEAR(acc, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  LuFactorization lu(a);
  std::vector<double> b{2, 3};
  lu.solve(b);  // swap: x = (3, 2)
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(LuFactorization lu(a), SolverError);
}

}  // namespace
}  // namespace a2a
