#include <gtest/gtest.h>

#include "common/matrix.hpp"
#include "common/random.hpp"
#include "lp/lu.hpp"
#include "lp/sparse.hpp"
#include "lp/sparse_lu.hpp"

namespace a2a {
namespace {

TEST(Matrix, MultiplyAndTranspose) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  std::vector<double> x{1, 1, 1}, y;
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
  std::vector<double> z;
  m.multiply_transpose(y, z);
  EXPECT_DOUBLE_EQ(z[0], 6 + 60);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  std::vector<double> x{3, -1, 2}, y;
  id.multiply(x, y);
  EXPECT_EQ(x, y);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  LuFactorization lu(a);
  std::vector<double> b{5, 10};
  lu.solve(b);  // x = (1, 3)
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Lu, SolveTransposeConsistent) {
  Rng rng(4);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next_double() - 0.5;
    a(i, i) += 3.0;  // diagonally dominant -> well conditioned
  }
  LuFactorization lu(a);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.next_double();
  // Compute b = A^T x, then solve A^T y = b; expect y == x.
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[j] += a(i, j) * x[i];
  }
  lu.solve_transpose(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x[i], 1e-9);
}

TEST(Lu, InvertProducesInverse) {
  Rng rng(5);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next_double() - 0.5;
    a(i, i) += 2.0;
  }
  LuFactorization lu(a);
  Matrix inv;
  lu.invert(inv);
  // a * inv == I.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::size_t k = 0; k < n; ++k) acc += a(i, k) * inv(k, j);
      EXPECT_NEAR(acc, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  LuFactorization lu(a);
  std::vector<double> b{2, 3};
  lu.solve(b);  // swap: x = (3, 2)
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(LuFactorization lu(a), SolverError);
}

/// Builds a random sparse well-conditioned matrix in CSC form plus its dense
/// mirror: a permuted diagonally-dominant band so both the singleton peel
/// and the bump elimination paths get exercised.
void random_sparse_system(Rng& rng, int n, CscMatrix& csc, Matrix& dense) {
  csc.reset(n);
  dense = Matrix(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    csc.begin_column();
    for (int i = 0; i < n; ++i) {
      const bool diag = i == j;
      const bool band = std::abs(i - j) <= 2 && rng.next_double() < 0.5;
      if (!diag && !band) continue;
      const double v = diag ? 4.0 + rng.next_double() : rng.next_double() - 0.5;
      csc.push(i, v);
      dense(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = v;
    }
  }
}

TEST(SparseLu, FtranMatchesDenseSolve) {
  Rng rng(11);
  const int n = 24;
  CscMatrix csc;
  Matrix dense;
  random_sparse_system(rng, n, csc, dense);
  std::vector<int> columns(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) columns[static_cast<std::size_t>(j)] = j;
  SparseLu lu;
  lu.factor(csc, columns);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_double() - 0.5;
  std::vector<double> x = b, scratch;
  lu.ftran(x, scratch);
  // Check A x == b.
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) {
      acc += dense(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
             x[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(acc, b[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(SparseLu, BtranMatchesDenseTransposeSolve) {
  Rng rng(12);
  const int n = 24;
  CscMatrix csc;
  Matrix dense;
  random_sparse_system(rng, n, csc, dense);
  std::vector<int> columns(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) columns[static_cast<std::size_t>(j)] = j;
  SparseLu lu;
  lu.factor(csc, columns);
  std::vector<double> c(static_cast<std::size_t>(n));
  for (auto& v : c) v = rng.next_double() - 0.5;
  std::vector<double> y = c, scratch;
  lu.btran(y, scratch);
  // Check A' y == c.
  for (int j = 0; j < n; ++j) {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      acc += dense(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
             y[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(acc, c[static_cast<std::size_t>(j)], 1e-9);
  }
}

TEST(SparseLu, HandlesPermutedTriangularViaPeel) {
  // A permuted triangular matrix: the singleton peel must order it with
  // zero fill and the solves must still be exact.
  const int n = 5;
  CscMatrix csc(n);
  Matrix dense(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  // Column j has entries at rows {j, (j+1)%n...} arranged so it is a row
  // permutation of an upper-triangular system.
  const int perm[5] = {3, 0, 4, 1, 2};
  for (int j = 0; j < n; ++j) {
    csc.begin_column();
    for (int i = 0; i <= j; ++i) {
      const int r = perm[i];
      const double v = i == j ? 2.0 : 1.0;
      csc.push(r, v);
      dense(static_cast<std::size_t>(r), static_cast<std::size_t>(j)) = v;
    }
  }
  std::vector<int> columns{0, 1, 2, 3, 4};
  SparseLu lu;
  lu.factor(csc, columns);
  std::vector<double> b{1, 2, 3, 4, 5};
  std::vector<double> x = b, scratch;
  lu.ftran(x, scratch);
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) {
      acc += dense(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
             x[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(acc, b[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(SparseLu, ThrowsOnSingular) {
  CscMatrix csc(2);
  csc.begin_column();
  csc.push(0, 1.0);
  csc.push(1, 2.0);
  csc.begin_column();
  csc.push(0, 2.0);
  csc.push(1, 4.0);
  SparseLu lu;
  EXPECT_THROW(lu.factor(csc, {0, 1}), SolverError);
}

}  // namespace
}  // namespace a2a
