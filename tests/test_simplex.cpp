#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "lp/simplex_core.hpp"
#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "mcf/concurrent_flow.hpp"
#include "mcf/timestepped.hpp"

namespace a2a {
namespace {

/// Solves with both backends and checks they agree on status and objective
/// (the acceptance bar of the sparse-solver rewrite).
LpSolution cross_check(const LpModel& model) {
  const LpSolution sparse = solve_lp(model);
  const LpSolution dense = solve_lp_dense(model);
  EXPECT_EQ(sparse.status, dense.status);
  if (sparse.optimal() && dense.optimal()) {
    EXPECT_NEAR(sparse.objective, dense.objective,
                1e-6 * std::max(1.0, std::abs(dense.objective)));
  }
  return sparse;
}

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2, 6).
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(0, kInfinity, 3);
  const int y = m.add_variable(0, kInfinity, 5);
  m.add_coefficient(m.add_row(RowType::kLessEqual, 4), x, 1);
  m.add_coefficient(m.add_row(RowType::kLessEqual, 12), y, 2);
  const int r = m.add_row(RowType::kLessEqual, 18);
  m.add_coefficient(r, x, 3);
  m.add_coefficient(r, y, 2);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(Simplex, SolvesEqualityAndGreaterEqual) {
  // min x + 2y  s.t.  x + y = 3, x - y >= 1, x,y >= 0  -> (3,0) obj 3? Check:
  // x+y=3, x-y>=1 -> x>=2. min x+2y = min x + 2(3-x) = 6 - x -> x=3,y=0: obj 3.
  LpModel m(Sense::kMinimize);
  const int x = m.add_variable(0, kInfinity, 1);
  const int y = m.add_variable(0, kInfinity, 2);
  int r = m.add_row(RowType::kEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  r = m.add_row(RowType::kGreaterEqual, 1);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, -1);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LpModel m(Sense::kMinimize);
  const int x = m.add_variable(0, kInfinity, 1);
  m.add_coefficient(m.add_row(RowType::kGreaterEqual, 5), x, 1);
  m.add_coefficient(m.add_row(RowType::kLessEqual, 3), x, 1);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(0, kInfinity, 1);
  const int y = m.add_variable(0, kInfinity, 0);
  const int r = m.add_row(RowType::kLessEqual, 1);
  m.add_coefficient(r, y, 1);
  (void)x;
  EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, RespectsVariableUpperBounds) {
  // max x + y with x <= 2 (bound), x + y <= 3.
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(0, 2, 1);
  const int y = m.add_variable(0, kInfinity, 1);
  const int r = m.add_row(RowType::kLessEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
  EXPECT_LE(s.values[static_cast<std::size_t>(x)], 2.0 + 1e-9);
}

TEST(Simplex, BoundFlipPath) {
  // All variables boxed; optimum at upper bounds.
  LpModel m(Sense::kMaximize);
  const int n = 12;
  int row = -1;
  for (int i = 0; i < n; ++i) {
    const int v = m.add_variable(0, 1, 1.0 + 0.01 * i);
    if (row < 0) row = m.add_row(RowType::kLessEqual, 100.0);
    m.add_coefficient(row, v, 1.0);
  }
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(s.values[static_cast<std::size_t>(i)], 1.0, 1e-7);
  }
}

TEST(Simplex, FixedVariableViaEqualBounds) {
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(2, 2, 1);  // fixed at 2
  const int y = m.add_variable(0, kInfinity, 1);
  const int r = m.add_row(RowType::kLessEqual, 5);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
}

TEST(Simplex, NonZeroLowerBounds) {
  // min x + y, x >= 1.5, y >= 2.5, x + y >= 5 -> obj 5.
  LpModel m(Sense::kMinimize);
  const int x = m.add_variable(1.5, kInfinity, 1);
  const int y = m.add_variable(2.5, kInfinity, 1);
  const int r = m.add_row(RowType::kGreaterEqual, 5);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
}

TEST(Simplex, DegenerateTransportationProblem) {
  // Balanced 3x3 transportation problem with known optimum.
  // supply {10,10,10}, demand {10,10,10}, cost c[i][j] = |i-j|+1.
  LpModel m(Sense::kMinimize);
  int var[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      var[i][j] = m.add_variable(0, kInfinity, std::abs(i - j) + 1);
    }
  }
  for (int i = 0; i < 3; ++i) {
    const int r = m.add_row(RowType::kEqual, 10);
    for (int j = 0; j < 3; ++j) m.add_coefficient(r, var[i][j], 1);
  }
  for (int j = 0; j < 3; ++j) {
    const int r = m.add_row(RowType::kEqual, 10);
    for (int i = 0; i < 3; ++i) m.add_coefficient(r, var[i][j], 1);
  }
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 30.0, 1e-6);  // all diagonal at cost 1
}

/// Randomized property sweep: feasibility and weak-duality sanity on random
/// packing LPs (max c'x, Ax <= b, x >= 0 with non-negative data): the
/// optimum must satisfy every constraint and beat every single-variable
/// feasible point.
class SimplexRandomPacking : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomPacking, OptimumFeasibleAndDominant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 5 + static_cast<int>(rng.next_below(10));
  const int rows = 3 + static_cast<int>(rng.next_below(8));
  std::vector<double> c(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) c[static_cast<std::size_t>(j)] = 0.1 + rng.next_double();
  std::vector<std::vector<double>> a(static_cast<std::size_t>(rows),
                                     std::vector<double>(static_cast<std::size_t>(n)));
  std::vector<double> b(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    b[static_cast<std::size_t>(i)] = 1.0 + rng.next_double() * 5;
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = rng.next_double();
    }
  }
  LpModel model(Sense::kMaximize);
  for (int j = 0; j < n; ++j) model.add_variable(0, kInfinity, c[static_cast<std::size_t>(j)]);
  for (int i = 0; i < rows; ++i) {
    const int r = model.add_row(RowType::kLessEqual, b[static_cast<std::size_t>(i)]);
    for (int j = 0; j < n; ++j) {
      model.add_coefficient(r, j, a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }
  for (int j = 0; j < n; ++j) {
    model.add_coefficient(model.add_row(RowType::kLessEqual, 10.0), j, 1.0);
  }
  const LpSolution s = solve_lp(model);
  ASSERT_TRUE(s.optimal());
  // Feasibility.
  for (int i = 0; i < rows; ++i) {
    double lhs = 0;
    for (int j = 0; j < n; ++j) {
      lhs += a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
             s.values[static_cast<std::size_t>(j)];
    }
    EXPECT_LE(lhs, b[static_cast<std::size_t>(i)] + 1e-6);
  }
  // Dominance over single-variable feasible points.
  for (int j = 0; j < n; ++j) {
    double max_x = 10.0;
    for (int i = 0; i < rows; ++i) {
      const double aij = a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (aij > 1e-12) max_x = std::min(max_x, b[static_cast<std::size_t>(i)] / aij);
    }
    EXPECT_GE(s.objective, c[static_cast<std::size_t>(j)] * max_x - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomPacking, ::testing::Range(1, 17));

// ---- sparse vs dense cross-checks -----------------------------------------

TEST(SimplexCrossCheck, TextbookFixtures) {
  {
    LpModel m(Sense::kMaximize);
    const int x = m.add_variable(0, kInfinity, 3);
    const int y = m.add_variable(0, kInfinity, 5);
    m.add_coefficient(m.add_row(RowType::kLessEqual, 4), x, 1);
    m.add_coefficient(m.add_row(RowType::kLessEqual, 12), y, 2);
    const int r = m.add_row(RowType::kLessEqual, 18);
    m.add_coefficient(r, x, 3);
    m.add_coefficient(r, y, 2);
    cross_check(m);
  }
  {
    LpModel m(Sense::kMinimize);
    const int x = m.add_variable(0, kInfinity, 1);
    const int y = m.add_variable(0, kInfinity, 2);
    int r = m.add_row(RowType::kEqual, 3);
    m.add_coefficient(r, x, 1);
    m.add_coefficient(r, y, 1);
    r = m.add_row(RowType::kGreaterEqual, 1);
    m.add_coefficient(r, x, 1);
    m.add_coefficient(r, y, -1);
    cross_check(m);
  }
  {
    // Infeasible.
    LpModel m(Sense::kMinimize);
    const int x = m.add_variable(0, kInfinity, 1);
    m.add_coefficient(m.add_row(RowType::kGreaterEqual, 5), x, 1);
    m.add_coefficient(m.add_row(RowType::kLessEqual, 3), x, 1);
    cross_check(m);
  }
}

/// Network LPs are the production workload: the full link-MCF models on the
/// repository's topologies must agree between the two solvers on every
/// fixture.
class SimplexCrossCheckNetwork : public ::testing::TestWithParam<int> {};

TEST_P(SimplexCrossCheckNetwork, LinkMcfModelsAgree) {
  DiGraph g;
  switch (GetParam()) {
    case 0: g = make_ring(5); break;
    case 1: g = make_hypercube(3); break;
    case 2: g = make_complete_bipartite(3, 3); break;
    case 3: g = make_generalized_kautz(9, 2); break;
    case 4: g = make_torus({3, 3}); break;
    default: {
      Rng rng(77);
      g = make_random_regular(10, 3, rng);
      break;
    }
  }
  cross_check(build_link_mcf_model(g, TerminalPairs(all_nodes(g))));
}

INSTANTIATE_TEST_SUITE_P(Topologies, SimplexCrossCheckNetwork,
                         ::testing::Range(0, 6));

TEST(SimplexCrossCheck, TsMcfModelAgrees) {
  const DiGraph g = make_ring(5);
  cross_check(
      build_tsmcf_model(g, diameter(g) + 1, TerminalPairs(all_nodes(g))));
}

// ---- warm starts ----------------------------------------------------------

TEST(SimplexWarmStart, ResolveFromOptimalBasisTakesNoPivots) {
  const DiGraph g = make_hypercube(3);
  const LpModel model = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  const LpSolution cold = solve_lp(model);
  ASSERT_TRUE(cold.optimal());
  const LpSolution warm = solve_lp(model, {}, &cold.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.iterations, 0);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
}

/// Property sweep: on randomized network LPs, a warm start from the optimal
/// basis of a capacity-perturbed sibling must reach the same optimum as a
/// cold solve — and a warm start never changes the answer, only the path.
class SimplexWarmStartRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimplexWarmStartRandom, PerturbedResolveMatchesCold) {
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const DiGraph base = make_random_regular(8, 3, rng);
  const LpModel base_model =
      build_link_mcf_model(base, TerminalPairs(all_nodes(base)));
  const LpSolution first = solve_lp(base_model);
  ASSERT_TRUE(first.optimal());

  // Shrink a few capacities (the Fig. 9 move): same LP shape, shifted rhs.
  DiGraph g = base;
  for (int k = 0; k < 3; ++k) {
    const EdgeId e = static_cast<EdgeId>(
        rng.next_below(static_cast<std::uint64_t>(g.num_edges())));
    g.set_capacity(e, 0.5);
  }
  const LpModel perturbed =
      build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  const LpSolution cold = solve_lp(perturbed);
  const LpSolution warm = solve_lp(perturbed, {}, &first.basis);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-6 * std::max(1.0, std::abs(cold.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexWarmStartRandom, ::testing::Range(0, 8));

TEST(SimplexWarmStart, IncompatibleBasisFallsBackToCold) {
  // Basis from a different-shaped LP must be ignored, not crash the solve.
  LpModel small(Sense::kMaximize);
  const int x = small.add_variable(0, kInfinity, 1);
  const int r = small.add_row(RowType::kLessEqual, 2);
  small.add_coefficient(r, x, 1);
  const LpSolution small_sol = solve_lp(small);
  ASSERT_TRUE(small_sol.optimal());

  const DiGraph g = make_ring(4);
  const LpModel big = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  const LpSolution sol = solve_lp(big, {}, &small_sol.basis);
  ASSERT_TRUE(sol.optimal());
  EXPECT_FALSE(sol.warm_started);
  EXPECT_NEAR(sol.objective, solve_lp(big).objective, 1e-9);
}

TEST(SimplexWarmStart, McfEntryPointsRoundTripBases) {
  const DiGraph g = make_hypercube(3);
  LpBasis warm;
  const auto a = solve_link_mcf_exact(g, all_nodes(g), {}, &warm);
  EXPECT_FALSE(warm.empty());
  const auto b = solve_link_mcf_exact(g, all_nodes(g), {}, &warm);
  EXPECT_NEAR(a.concurrent_flow, b.concurrent_flow, 1e-9);
  EXPECT_EQ(b.lp_iterations, 0);
}

// ---- degenerate and bound-flip pivot paths --------------------------------

TEST(SimplexDegenerate, AssignmentProblemHeavilyDegenerate) {
  // 4x4 assignment relaxation: every vertex is massively degenerate; the LP
  // optimum equals the min-cost matching (here the diagonal, cost 4).
  LpModel m(Sense::kMinimize);
  int var[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      var[i][j] = m.add_variable(0, 1, i == j ? 1.0 : 10.0 + i + j);
    }
  }
  for (int i = 0; i < 4; ++i) {
    const int r = m.add_row(RowType::kEqual, 1);
    for (int j = 0; j < 4; ++j) m.add_coefficient(r, var[i][j], 1);
  }
  for (int j = 0; j < 4; ++j) {
    const int r = m.add_row(RowType::kEqual, 1);
    for (int i = 0; i < 4; ++i) m.add_coefficient(r, var[i][j], 1);
  }
  const LpSolution s = cross_check(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST(SimplexDegenerate, TiedRatioTestStillTerminates) {
  // All rows give identical ratios: the tie-break and the Bland fallback
  // must cope without cycling.
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(0, kInfinity, 1);
  const int y = m.add_variable(0, kInfinity, 1);
  for (int i = 0; i < 6; ++i) {
    const int r = m.add_row(RowType::kLessEqual, 2);
    m.add_coefficient(r, x, 1);
    m.add_coefficient(r, y, 1);
  }
  const LpSolution s = cross_check(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(SimplexBoundFlip, BoxedNetworkOptimumViaFlipsOnly) {
  // tsMCF-style boxed variables (all f <= 1): the optimum sets most
  // variables at bounds, exercising the flip path of the ratio test.
  LpModel m(Sense::kMaximize);
  const int n = 20;
  std::vector<int> vars;
  const int cap = m.add_row(RowType::kLessEqual, 15.0);
  for (int i = 0; i < n; ++i) {
    const int v = m.add_variable(0, 1, 1.0 + 0.001 * i);
    m.add_coefficient(cap, v, i % 3 == 0 ? 0.5 : 1.0);
    vars.push_back(v);
  }
  const LpSolution s = cross_check(m);
  ASSERT_TRUE(s.optimal());
  for (const int v : vars) {
    EXPECT_LE(s.values[static_cast<std::size_t>(v)], 1.0 + 1e-9);
    EXPECT_GE(s.values[static_cast<std::size_t>(v)], -1e-9);
  }
}

TEST(SimplexCycling, BealeExampleTerminatesAtOptimum) {
  // Beale's classic cycling LP: Dantzig pricing with naive tie-breaking
  // cycles forever on this fixture. The solver's anti-cycling machinery
  // (degenerate-streak Bland fallback) must terminate at the known optimum
  // z* = -1/20 at x = (1/25, 0, 1, 0).
  LpModel m(Sense::kMinimize);
  const int x1 = m.add_variable(0, kInfinity, -0.75);
  const int x2 = m.add_variable(0, kInfinity, 150.0);
  const int x3 = m.add_variable(0, kInfinity, -0.02);
  const int x4 = m.add_variable(0, kInfinity, 6.0);
  int r = m.add_row(RowType::kLessEqual, 0);
  m.add_coefficient(r, x1, 0.25);
  m.add_coefficient(r, x2, -60.0);
  m.add_coefficient(r, x3, -0.04);
  m.add_coefficient(r, x4, 9.0);
  r = m.add_row(RowType::kLessEqual, 0);
  m.add_coefficient(r, x1, 0.5);
  m.add_coefficient(r, x2, -90.0);
  m.add_coefficient(r, x3, -0.02);
  m.add_coefficient(r, x4, 3.0);
  m.add_coefficient(m.add_row(RowType::kLessEqual, 1), x3, 1.0);
  const LpSolution s = cross_check(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -0.05, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x1)], 0.04, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x3)], 1.0, 1e-7);
}

TEST(SimplexCycling, BealeWarmRestorationSurvivesDegeneracy) {
  // Re-solve Beale's LP from its own optimal basis after tightening the x3
  // bound row: the restoration path starts on a massively degenerate vertex
  // and must repair feasibility (via the Bland fallback if it stalls)
  // rather than reporting a failed solve.
  LpModel m(Sense::kMinimize);
  const int x1 = m.add_variable(0, kInfinity, -0.75);
  const int x2 = m.add_variable(0, kInfinity, 150.0);
  const int x3 = m.add_variable(0, kInfinity, -0.02);
  const int x4 = m.add_variable(0, kInfinity, 6.0);
  int r = m.add_row(RowType::kLessEqual, 0);
  m.add_coefficient(r, x1, 0.25);
  m.add_coefficient(r, x2, -60.0);
  m.add_coefficient(r, x3, -0.04);
  m.add_coefficient(r, x4, 9.0);
  r = m.add_row(RowType::kLessEqual, 0);
  m.add_coefficient(r, x1, 0.5);
  m.add_coefficient(r, x2, -90.0);
  m.add_coefficient(r, x3, -0.02);
  m.add_coefficient(r, x4, 3.0);
  const int bound_row = m.add_row(RowType::kLessEqual, 1);
  m.add_coefficient(bound_row, x3, 1.0);
  const LpSolution first = solve_lp(m);
  ASSERT_TRUE(first.optimal());

  LpModel tight(Sense::kMinimize);
  (void)tight.add_variable(0, kInfinity, -0.75);
  (void)tight.add_variable(0, kInfinity, 150.0);
  (void)tight.add_variable(0, kInfinity, -0.02);
  (void)tight.add_variable(0, kInfinity, 6.0);
  r = tight.add_row(RowType::kLessEqual, 0);
  tight.add_coefficient(r, x1, 0.25);
  tight.add_coefficient(r, x2, -60.0);
  tight.add_coefficient(r, x3, -0.04);
  tight.add_coefficient(r, x4, 9.0);
  r = tight.add_row(RowType::kLessEqual, 0);
  tight.add_coefficient(r, x1, 0.5);
  tight.add_coefficient(r, x2, -90.0);
  tight.add_coefficient(r, x3, -0.02);
  tight.add_coefficient(r, x4, 3.0);
  tight.add_coefficient(tight.add_row(RowType::kLessEqual, 0.5), x3, 1.0);
  const LpSolution cold = solve_lp(tight);
  const LpSolution warm = solve_lp(tight, {}, &first.basis, LpWarmMode::kPrimal);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
}

// ---- dual simplex ----------------------------------------------------------

TEST(DualSimplex, AdoptsOptimalBasisWithZeroPivots) {
  // Unperturbed re-solve under kDual: the basis is primal and dual feasible,
  // so the dual loop should confirm optimality without a single pivot.
  const DiGraph g = make_hypercube(3);
  const LpModel model = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  const LpSolution cold = solve_lp(model);
  ASSERT_TRUE(cold.optimal());
  const LpSolution dual = solve_lp(model, {}, &cold.basis, LpWarmMode::kDual);
  ASSERT_TRUE(dual.optimal());
  EXPECT_TRUE(dual.warm_started);
  EXPECT_EQ(dual.iterations, 0);
  EXPECT_NEAR(dual.objective, cold.objective, 1e-9);
}

/// The tentpole property: after tightening capacities under an optimal
/// basis (the Fig. 9 move), the basis stays dual feasible and the dual
/// simplex must reach the same optimum a cold solve finds, on every seed.
class DualSimplexCapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(DualSimplexCapacitySweep, TightenedResolveMatchesCold) {
  Rng rng(static_cast<std::uint64_t>(500 + GetParam()));
  const DiGraph base = make_random_regular(8, 3, rng);
  const LpModel base_model =
      build_link_mcf_model(base, TerminalPairs(all_nodes(base)));
  const LpSolution first = solve_lp(base_model);
  ASSERT_TRUE(first.optimal());

  DiGraph g = base;
  const int hits = 1 + static_cast<int>(rng.next_below(4));
  for (int k = 0; k < hits; ++k) {
    const EdgeId e = static_cast<EdgeId>(
        rng.next_below(static_cast<std::uint64_t>(g.num_edges())));
    g.set_capacity(e, 0.25 + 0.5 * rng.next_double());
  }
  const LpModel perturbed = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  const LpSolution cold = solve_lp(perturbed);
  const LpSolution dual = solve_lp(perturbed, {}, &first.basis, LpWarmMode::kDual);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(dual.optimal());
  EXPECT_NEAR(dual.objective, cold.objective,
              1e-6 * std::max(1.0, std::abs(cold.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualSimplexCapacitySweep, ::testing::Range(0, 10));

TEST(DualSimplex, BoundFlipHeavyBoxes) {
  // Boxed LP whose re-solve shrinks the shared capacity: restoring
  // feasibility in the dual requires crossing many boxed columns in the
  // ratio test, exercising the bound-flipping walk.
  const int n = 24;
  LpModel m(Sense::kMaximize);
  const int cap = m.add_row(RowType::kLessEqual, 18.0);
  for (int i = 0; i < n; ++i) {
    const int v = m.add_variable(0, 1, 1.0 + 0.002 * i);
    m.add_coefficient(cap, v, 1.0);
  }
  const LpSolution first = solve_lp(m);
  ASSERT_TRUE(first.optimal());
  // Top 18 of the 24 boxed columns saturate: 18 + 0.002 * sum(6..23).
  EXPECT_NEAR(first.objective, 18.0 + 0.002 * 261, 1e-6);

  LpModel tight(Sense::kMaximize);
  const int cap2 = tight.add_row(RowType::kLessEqual, 5.0);
  for (int i = 0; i < n; ++i) {
    const int v = tight.add_variable(0, 1, 1.0 + 0.002 * i);
    tight.add_coefficient(cap2, v, 1.0);
  }
  const LpSolution cold = solve_lp(tight);
  const LpSolution dual = solve_lp(tight, {}, &first.basis, LpWarmMode::kDual);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(dual.optimal());
  EXPECT_TRUE(dual.warm_started);
  EXPECT_NEAR(dual.objective, cold.objective, 1e-7);
  // The five highest-value columns fill the shrunk capacity.
  EXPECT_NEAR(dual.objective, 5.0 + 0.002 * (23 + 22 + 21 + 20 + 19), 1e-6);
}

TEST(DualSimplex, DualInfeasibleWarmBasisFallsBackToPrimal) {
  // Flip the objective after the first solve: the old basis keeps primal
  // feasibility but its reduced costs have the wrong signs, so kDual cannot
  // run the dual loop and must land on the primal path — transparently, with
  // the same optimum a cold solve finds.
  const DiGraph g = make_ring(5);
  LpModel model = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  const LpSolution first = solve_lp(model);
  ASSERT_TRUE(first.optimal());

  // Same constraints, inverted sense of progress: maximize -F.
  LpModel flipped = model;
  flipped.set_objective(model.num_variables() - 1, -1.0);
  const LpSolution cold = solve_lp(flipped);
  const LpSolution warm = solve_lp(flipped, {}, &first.basis, LpWarmMode::kDual);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
}

TEST(DualSimplex, TsMcfCapacityUpdateViaEntryPoint) {
  // End-to-end through solve_tsmcf_exact: warm basis round-trips across a
  // capacity update in kDual mode with the objective a cold pipeline finds.
  const DiGraph g = make_ring(5);
  const int steps = diameter(g) + 1;
  LpBasis warm;
  const auto first =
      solve_tsmcf_exact(g, steps, all_nodes(g), {}, &warm, LpWarmMode::kDual);
  ASSERT_FALSE(warm.empty());

  DiGraph tight = g;
  tight.set_capacity(0, 0.5);
  const auto cold = solve_tsmcf_exact(tight, steps, all_nodes(tight));
  const auto dual =
      solve_tsmcf_exact(tight, steps, all_nodes(tight), {}, &warm,
                        LpWarmMode::kDual);
  EXPECT_NEAR(dual.total_utilization, cold.total_utilization, 1e-6);
  EXPECT_GE(dual.total_utilization, first.total_utilization - 1e-9);
}

TEST(SimplexBoundFlip, FlipOnlySolveLeavesBasisUntouched) {
  // Optimum reached purely by flipping variables to their upper bounds; the
  // final basis must still round-trip as a warm start.
  LpModel m(Sense::kMaximize);
  for (int i = 0; i < 8; ++i) {
    const int v = m.add_variable(0, 1, 1.0);
    m.add_coefficient(m.add_row(RowType::kLessEqual, 2.0), v, 1.0);
  }
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 8.0, 1e-7);
  const LpSolution again = solve_lp(m, {}, &s.basis);
  ASSERT_TRUE(again.optimal());
  EXPECT_EQ(again.iterations, 0);
}

/// A model presolve cannot collapse: every variable couples several rows.
LpModel overlapping_rows_model(int n) {
  LpModel m(Sense::kMaximize);
  std::vector<int> vars;
  vars.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    vars.push_back(m.add_variable(0, kInfinity, 1.0 + 0.01 * i));
  }
  for (int r = 0; r < n; ++r) {
    const int row = m.add_row(RowType::kLessEqual, 10.0);
    for (int k = 0; k < 5; ++k) {
      m.add_coefficient(row, vars[static_cast<std::size_t>((r * 3 + k * 7) % n)],
                        1.0 + (r + k) % 3);
    }
  }
  return m;
}

TEST(SimplexDeadline, TinyBudgetEndsCooperativelyWithTimeLimit) {
  const LpModel m = overlapping_rows_model(60);
  SimplexOptions opts;
  opts.time_limit_s = 1e-9;  // expires before the first pivot's probe
  const LpSolution cut = solve_lp(m, opts);
  EXPECT_EQ(cut.status, LpStatus::kTimeLimit);
  EXPECT_FALSE(cut.optimal());
  EXPECT_EQ(to_string(cut.status), "time-limit");
}

TEST(SimplexDeadline, GenerousBudgetMatchesUnlimitedOptimum) {
  const LpModel m = overlapping_rows_model(60);
  const LpSolution full = solve_lp(m);
  ASSERT_TRUE(full.optimal());
  SimplexOptions opts;
  opts.time_limit_s = 30.0;
  const LpSolution budgeted = solve_lp(m, opts);
  ASSERT_TRUE(budgeted.optimal());
  EXPECT_NEAR(budgeted.objective, full.objective,
              1e-6 * std::max(1.0, std::abs(full.objective)));
}

TEST(SimplexDeadline, MergeFailedAttemptFoldsForensicsIntoStats) {
  LpSolution out;
  out.iterations = 10;
  out.stats.iterations = 10;
  out.stats.primal_iterations = 10;
  SolverErrorContext context;
  context.iterations = 7;
  context.refactorizations = 3;
  context.phase = "dual";
  lp_detail::merge_failed_attempt(out, context);
  EXPECT_EQ(out.iterations, 17);
  EXPECT_EQ(out.stats.iterations, 17);
  EXPECT_EQ(out.stats.dual_iterations, 7);
  EXPECT_EQ(out.stats.primal_iterations, 10);
  EXPECT_EQ(out.stats.refactorizations, 3);
  // -1 context fields mean "unknown" and must not subtract.
  lp_detail::merge_failed_attempt(out, SolverErrorContext{});
  EXPECT_EQ(out.iterations, 17);
  EXPECT_EQ(out.stats.refactorizations, 3);
}

}  // namespace
}  // namespace a2a
