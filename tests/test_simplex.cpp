#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace a2a {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2, 6).
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(0, kInfinity, 3);
  const int y = m.add_variable(0, kInfinity, 5);
  m.add_coefficient(m.add_row(RowType::kLessEqual, 4), x, 1);
  m.add_coefficient(m.add_row(RowType::kLessEqual, 12), y, 2);
  const int r = m.add_row(RowType::kLessEqual, 18);
  m.add_coefficient(r, x, 3);
  m.add_coefficient(r, y, 2);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(Simplex, SolvesEqualityAndGreaterEqual) {
  // min x + 2y  s.t.  x + y = 3, x - y >= 1, x,y >= 0  -> (3,0) obj 3? Check:
  // x+y=3, x-y>=1 -> x>=2. min x+2y = min x + 2(3-x) = 6 - x -> x=3,y=0: obj 3.
  LpModel m(Sense::kMinimize);
  const int x = m.add_variable(0, kInfinity, 1);
  const int y = m.add_variable(0, kInfinity, 2);
  int r = m.add_row(RowType::kEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  r = m.add_row(RowType::kGreaterEqual, 1);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, -1);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LpModel m(Sense::kMinimize);
  const int x = m.add_variable(0, kInfinity, 1);
  m.add_coefficient(m.add_row(RowType::kGreaterEqual, 5), x, 1);
  m.add_coefficient(m.add_row(RowType::kLessEqual, 3), x, 1);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(0, kInfinity, 1);
  const int y = m.add_variable(0, kInfinity, 0);
  const int r = m.add_row(RowType::kLessEqual, 1);
  m.add_coefficient(r, y, 1);
  (void)x;
  EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, RespectsVariableUpperBounds) {
  // max x + y with x <= 2 (bound), x + y <= 3.
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(0, 2, 1);
  const int y = m.add_variable(0, kInfinity, 1);
  const int r = m.add_row(RowType::kLessEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
  EXPECT_LE(s.values[static_cast<std::size_t>(x)], 2.0 + 1e-9);
}

TEST(Simplex, BoundFlipPath) {
  // All variables boxed; optimum at upper bounds.
  LpModel m(Sense::kMaximize);
  const int n = 12;
  int row = -1;
  for (int i = 0; i < n; ++i) {
    const int v = m.add_variable(0, 1, 1.0 + 0.01 * i);
    if (row < 0) row = m.add_row(RowType::kLessEqual, 100.0);
    m.add_coefficient(row, v, 1.0);
  }
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(s.values[static_cast<std::size_t>(i)], 1.0, 1e-7);
  }
}

TEST(Simplex, FixedVariableViaEqualBounds) {
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(2, 2, 1);  // fixed at 2
  const int y = m.add_variable(0, kInfinity, 1);
  const int r = m.add_row(RowType::kLessEqual, 5);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
}

TEST(Simplex, NonZeroLowerBounds) {
  // min x + y, x >= 1.5, y >= 2.5, x + y >= 5 -> obj 5.
  LpModel m(Sense::kMinimize);
  const int x = m.add_variable(1.5, kInfinity, 1);
  const int y = m.add_variable(2.5, kInfinity, 1);
  const int r = m.add_row(RowType::kGreaterEqual, 5);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
}

TEST(Simplex, DegenerateTransportationProblem) {
  // Balanced 3x3 transportation problem with known optimum.
  // supply {10,10,10}, demand {10,10,10}, cost c[i][j] = |i-j|+1.
  LpModel m(Sense::kMinimize);
  int var[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      var[i][j] = m.add_variable(0, kInfinity, std::abs(i - j) + 1);
    }
  }
  for (int i = 0; i < 3; ++i) {
    const int r = m.add_row(RowType::kEqual, 10);
    for (int j = 0; j < 3; ++j) m.add_coefficient(r, var[i][j], 1);
  }
  for (int j = 0; j < 3; ++j) {
    const int r = m.add_row(RowType::kEqual, 10);
    for (int i = 0; i < 3; ++i) m.add_coefficient(r, var[i][j], 1);
  }
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 30.0, 1e-6);  // all diagonal at cost 1
}

/// Randomized property sweep: feasibility and weak-duality sanity on random
/// packing LPs (max c'x, Ax <= b, x >= 0 with non-negative data): the
/// optimum must satisfy every constraint and beat every single-variable
/// feasible point.
class SimplexRandomPacking : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomPacking, OptimumFeasibleAndDominant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 5 + static_cast<int>(rng.next_below(10));
  const int rows = 3 + static_cast<int>(rng.next_below(8));
  std::vector<double> c(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) c[static_cast<std::size_t>(j)] = 0.1 + rng.next_double();
  std::vector<std::vector<double>> a(static_cast<std::size_t>(rows),
                                     std::vector<double>(static_cast<std::size_t>(n)));
  std::vector<double> b(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    b[static_cast<std::size_t>(i)] = 1.0 + rng.next_double() * 5;
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = rng.next_double();
    }
  }
  LpModel model(Sense::kMaximize);
  for (int j = 0; j < n; ++j) model.add_variable(0, kInfinity, c[static_cast<std::size_t>(j)]);
  for (int i = 0; i < rows; ++i) {
    const int r = model.add_row(RowType::kLessEqual, b[static_cast<std::size_t>(i)]);
    for (int j = 0; j < n; ++j) {
      model.add_coefficient(r, j, a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }
  for (int j = 0; j < n; ++j) {
    model.add_coefficient(model.add_row(RowType::kLessEqual, 10.0), j, 1.0);
  }
  const LpSolution s = solve_lp(model);
  ASSERT_TRUE(s.optimal());
  // Feasibility.
  for (int i = 0; i < rows; ++i) {
    double lhs = 0;
    for (int j = 0; j < n; ++j) {
      lhs += a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
             s.values[static_cast<std::size_t>(j)];
    }
    EXPECT_LE(lhs, b[static_cast<std::size_t>(i)] + 1e-6);
  }
  // Dominance over single-variable feasible points.
  for (int j = 0; j < n; ++j) {
    double max_x = 10.0;
    for (int i = 0; i < rows; ++i) {
      const double aij = a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (aij > 1e-12) max_x = std::min(max_x, b[static_cast<std::size_t>(i)] / aij);
    }
    EXPECT_GE(s.objective, c[static_cast<std::size_t>(j)] * max_x - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomPacking, ::testing::Range(1, 17));

}  // namespace
}  // namespace a2a
