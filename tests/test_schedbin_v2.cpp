// SchedBin v2: property-based round trips for every codec/version, mmap
// zero-copy chunk reads, trailer metadata, lossless conversion, and the
// golden corpus pinning the wire format byte-for-byte.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/mmap_file.hpp"
#include "common/random.hpp"
#include "common/thread_pool.hpp"
#include "container/schedbin.hpp"
#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/compile_path.hpp"
#include "schedbin_corpus.hpp"

#ifndef A2A_SOURCE_DIR
#define A2A_SOURCE_DIR "."
#endif

namespace a2a {
namespace {

namespace fs = std::filesystem;

using corpus::random_link_schedule;
using corpus::random_path_schedule;

constexpr SchedBinCodec kV2Codecs[] = {SchedBinCodec::kRaw, SchedBinCodec::kRle,
                                       SchedBinCodec::kDelta,
                                       SchedBinCodec::kDict};

std::vector<SchedBinCodec> codecs_for(std::uint16_t version) {
  if (version == kSchedBinVersion1) {
    return {SchedBinCodec::kRaw, SchedBinCodec::kRle, SchedBinCodec::kDelta};
  }
  return {SchedBinCodec::kRaw, SchedBinCodec::kRle, SchedBinCodec::kDelta,
          SchedBinCodec::kDict};
}

void expect_link_equal(const LinkSchedule& a, const LinkSchedule& b) {
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.num_steps, b.num_steps);
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    EXPECT_EQ(a.transfers[i].chunk, b.transfers[i].chunk);
    EXPECT_EQ(a.transfers[i].from, b.transfers[i].from);
    EXPECT_EQ(a.transfers[i].to, b.transfers[i].to);
    EXPECT_EQ(a.transfers[i].step, b.transfers[i].step);
  }
}

void expect_path_equal(const PathSchedule& a, const PathSchedule& b) {
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.chunk_unit, b.chunk_unit);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].src, b.entries[i].src);
    EXPECT_EQ(a.entries[i].dst, b.entries[i].dst);
    EXPECT_EQ(a.entries[i].path, b.entries[i].path);
    EXPECT_EQ(a.entries[i].weight, b.entries[i].weight);
    EXPECT_EQ(a.entries[i].num_chunks, b.entries[i].num_chunks);
    EXPECT_EQ(a.entries[i].layer, b.entries[i].layer);
  }
}

struct TempFile {
  fs::path path;
  explicit TempFile(const std::string& stem) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           (stem + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++) + ".schedbin");
  }
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
  }
  void write(std::string_view bytes) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }
};

// ---- property: encode -> decode == identity, every codec, both versions ---

TEST(SchedBinV2, RandomLinkSchedulesRoundTripEveryCodecAndVersion) {
  Rng rng(20260730);
  for (int trial = 0; trial < 8; ++trial) {
    const LinkSchedule s = random_link_schedule(rng, rng.next_int(0, 600));
    for (const std::uint16_t version : {kSchedBinVersion1, kSchedBinVersion2}) {
      for (const SchedBinCodec codec :
           codecs_for(version)) {
        SchedBinOptions options;
        options.version = version;
        options.codec = codec;
        // Vary the chunk geometry: single-chunk up to many tiny chunks.
        options.chunk_words = trial % 2 == 0 ? 128 : 64 * 1024;
        const std::string bytes = link_schedule_to_schedbin(s, options);
        expect_link_equal(link_schedule_from_schedbin(bytes), s);
        EXPECT_EQ(schedbin_inspect(bytes).version, version);
      }
    }
  }
}

TEST(SchedBinV2, RandomPathSchedulesRoundTripEveryCodecAndVersion) {
  Rng rng(77);
  const DiGraph g = make_hypercube(4);
  for (int trial = 0; trial < 8; ++trial) {
    const PathSchedule s = random_path_schedule(g, rng, rng.next_int(0, 250));
    for (const std::uint16_t version : {kSchedBinVersion1, kSchedBinVersion2}) {
      for (const SchedBinCodec codec :
           codecs_for(version)) {
        SchedBinOptions options;
        options.version = version;
        options.codec = codec;
        options.chunk_words = 64 << (trial % 4);
        expect_path_equal(
            path_schedule_from_schedbin(
                g, path_schedule_to_schedbin(g, s, options)),
            s);
      }
    }
  }
}

TEST(SchedBinV2, PathologicalAllSameRoundTrips) {
  LinkSchedule s;
  s.num_nodes = 2;
  s.num_steps = 1;
  s.transfers.assign(50000,
                     Transfer{{0, 1, Rational(0), Rational(1)}, 0, 1, 1});
  for (const SchedBinCodec codec : kV2Codecs) {
    SchedBinOptions options;
    options.codec = codec;
    options.chunk_words = 4096;
    const std::string bytes = link_schedule_to_schedbin(s, options);
    expect_link_equal(link_schedule_from_schedbin(bytes), s);
  }
}

TEST(SchedBinV2, PathologicalAllDistinctRoundTrips) {
  // Every word distinct (and large): the dictionary must come out empty and
  // every chunk must fall back — still an identity round trip.
  LinkSchedule s;
  s.num_nodes = 1000000;
  s.num_steps = 1000000;
  Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    Transfer t;
    t.chunk.src = static_cast<NodeId>(rng.next_u64() >> 32);
    t.chunk.dst = static_cast<NodeId>(rng.next_u64() >> 32);
    t.chunk.lo = Rational(static_cast<std::int64_t>(rng.next_u64() >> 16), 1);
    t.chunk.hi = Rational(static_cast<std::int64_t>(rng.next_u64() >> 16), 3);
    t.from = static_cast<NodeId>(rng.next_u64() >> 32);
    t.to = static_cast<NodeId>(rng.next_u64() >> 32);
    t.step = static_cast<int>(rng.next_u64() >> 40);
    s.transfers.push_back(t);
  }
  std::size_t delta_size = 0;
  for (const SchedBinCodec codec : kV2Codecs) {
    SchedBinOptions options;
    options.codec = codec;
    options.chunk_words = 2048;
    const std::string bytes = link_schedule_to_schedbin(s, options);
    expect_link_equal(link_schedule_from_schedbin(bytes), s);
    if (codec == SchedBinCodec::kDelta) delta_size = bytes.size();
    if (codec == SchedBinCodec::kDict) {
      const SchedBinReader reader = SchedBinReader::from_bytes(bytes);
      // Only the rational-denominator constants repeat; the dictionary must
      // stay tiny, not balloon with one-shot values.
      EXPECT_LE(reader.info().dict_words, 8u);
      // Chunks 0 and 1 cover the src column — genuinely all-distinct words
      // — and must fall back instead of paying dict literal overhead.
      // (Later chunks holding constant denominator runs may keep the dict
      // label when they tie with rle; ties are fine, regressions are not.)
      EXPECT_NE(reader.chunk_entry(0).codec, SchedBinCodec::kDict);
      EXPECT_NE(reader.chunk_entry(1).codec, SchedBinCodec::kDict);
      // The per-chunk fallback bounds the frame: never worse than delta
      // plus the (tiny) trailer dictionary.
      EXPECT_LE(bytes.size(), delta_size + 128);
    }
  }
}

TEST(SchedBinV2, EmptyFramesRoundTripEveryCodec) {
  LinkSchedule empty;
  empty.num_nodes = 8;
  empty.num_steps = 3;
  const DiGraph ring = make_ring(4);
  PathSchedule empty_path;
  empty_path.num_nodes = 4;
  empty_path.chunk_unit = Rational(1, 6);
  for (const SchedBinCodec codec : kV2Codecs) {
    SchedBinOptions options;
    options.codec = codec;
    const std::string link_bytes = link_schedule_to_schedbin(empty, options);
    expect_link_equal(link_schedule_from_schedbin(link_bytes), empty);
    const SchedBinInfo info = schedbin_inspect(link_bytes);
    EXPECT_EQ(info.num_chunks, 0u);
    EXPECT_EQ(info.version, kSchedBinVersion2);
    expect_path_equal(
        path_schedule_from_schedbin(
            ring, path_schedule_to_schedbin(ring, empty_path, options)),
        empty_path);
  }
}

// ---- mmap zero-copy reads -------------------------------------------------

TEST(SchedBinV2, MmapChunkAtATimeEqualsFullDecode) {
  Rng rng(9);
  const LinkSchedule s = random_link_schedule(rng, 3000);
  for (const SchedBinCodec codec : kV2Codecs) {
    SchedBinOptions options;
    options.codec = codec;
    options.chunk_words = 1024;
    const std::string bytes = link_schedule_to_schedbin(s, options);
    const TempFile file("a2a_mmap_eq");
    file.write(bytes);

    const SchedBinReader reader = SchedBinReader::open_file(file.path.string());
    ASSERT_GT(reader.num_chunks(), 4u);
    std::vector<std::int64_t> concat;
    std::vector<std::int64_t> chunk;
    for (std::uint32_t c = 0; c < reader.num_chunks(); ++c) {
      reader.decode_chunk(c, chunk);
      concat.insert(concat.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(concat, reader.decode_all());
    expect_link_equal(reader.read_link(), s);
  }
}

TEST(SchedBinV2, MmapSingleChunkReadTouchesOnlyThatChunk) {
  Rng rng(10);
  const LinkSchedule s = random_link_schedule(rng, 5000);
  SchedBinOptions options;
  options.codec = SchedBinCodec::kDelta;
  options.chunk_words = 512;
  const std::string bytes = link_schedule_to_schedbin(s, options);
  const TempFile file("a2a_mmap_single");
  file.write(bytes);

  const SchedBinReader reader = SchedBinReader::open_file(file.path.string());
  ASSERT_GT(reader.num_chunks(), 8u);
  const std::size_t after_open = reader.bytes_read();
  const SchedBinInfo& info = reader.info();
  // Opening reads only header + trailer + footer, not the payload.
  EXPECT_EQ(after_open, info.total_bytes - info.payload_bytes);
  EXPECT_LT(after_open, info.total_bytes / 4);

  std::vector<std::int64_t> chunk;
  reader.decode_chunk(3, chunk);
  EXPECT_EQ(reader.bytes_read(), after_open + reader.chunk_entry(3).size);
  // The byte-read counter proves a single-chunk decode did not slurp the
  // container: everything else stayed untouched.
  EXPECT_LT(reader.bytes_read(), info.total_bytes / 2);
}

TEST(SchedBinV2, MmapReaderServesV1Containers) {
  Rng rng(11);
  const LinkSchedule s = random_link_schedule(rng, 1500);
  SchedBinOptions options;
  options.version = kSchedBinVersion1;
  options.codec = SchedBinCodec::kRle;
  options.chunk_words = 256;
  const std::string bytes = link_schedule_to_schedbin(s, options);
  const TempFile file("a2a_mmap_v1");
  file.write(bytes);
  const SchedBinReader reader = SchedBinReader::open_file(file.path.string());
  EXPECT_EQ(reader.info().version, kSchedBinVersion1);
  expect_link_equal(reader.read_link(), s);
  std::vector<std::int64_t> chunk;
  EXPECT_GT(reader.decode_chunk(0, chunk), 0u);
}

TEST(SchedBinV2, ReaderRejectsBadChunkIndexAndWrongKind) {
  Rng rng(12);
  const LinkSchedule s = random_link_schedule(rng, 100);
  const std::string bytes = link_schedule_to_schedbin(s);
  const SchedBinReader reader = SchedBinReader::from_bytes(bytes);
  std::vector<std::int64_t> chunk;
  EXPECT_THROW((void)reader.decode_chunk(reader.num_chunks(), chunk),
               InvalidArgument);
  const DiGraph ring = make_ring(4);
  EXPECT_THROW((void)reader.read_path(ring), InvalidArgument);
}

// ---- trailer metadata -----------------------------------------------------

TEST(SchedBinV2, MetadataRoundTrips) {
  Rng rng(13);
  const LinkSchedule s = random_link_schedule(rng, 50);
  SchedBinOptions options;
  options.metadata = {{"generator", "test"}, {"k", std::string(4096, 'v')}};
  const std::string bytes = link_schedule_to_schedbin(s, options);
  const SchedBinInfo info = schedbin_inspect(bytes);
  EXPECT_EQ(info.metadata, options.metadata);
  // v1 frames cannot carry metadata.
  options.version = kSchedBinVersion1;
  EXPECT_THROW((void)link_schedule_to_schedbin(s, options), InvalidArgument);
}

TEST(SchedBinV2, MetadataLimitsEnforcedOnWrite) {
  Rng rng(14);
  const LinkSchedule s = random_link_schedule(rng, 10);
  SchedBinOptions options;
  options.metadata = {{"", "empty key"}};
  EXPECT_THROW((void)link_schedule_to_schedbin(s, options), InvalidArgument);
  options.metadata = {{"k", std::string(4097, 'v')}};
  EXPECT_THROW((void)link_schedule_to_schedbin(s, options), InvalidArgument);
  options.metadata.assign(65, {"k", "v"});
  EXPECT_THROW((void)link_schedule_to_schedbin(s, options), InvalidArgument);
}

// ---- v2 integrity ---------------------------------------------------------

TEST(SchedBinV2, CorruptHeaderTrailerOrFooterRejected) {
  Rng rng(15);
  const LinkSchedule s = random_link_schedule(rng, 400);
  SchedBinOptions options;
  options.chunk_words = 256;
  const std::string bytes = link_schedule_to_schedbin(s, options);

  // Header bit flip: caught by the v2 header CRC (field 10 is inside
  // record_count, which no v1-style structural check would notice).
  std::string bad = bytes;
  bad[20] = static_cast<char>(bad[20] ^ 0x10);
  EXPECT_THROW((void)schedbin_inspect(bad), InvalidArgument);

  // Trailer bit flip: caught by the trailer CRC.
  bad = bytes;
  bad[bytes.size() - 30] = static_cast<char>(bad[bytes.size() - 30] ^ 0x01);
  EXPECT_THROW((void)schedbin_inspect(bad), InvalidArgument);

  // Footer magic gone.
  bad = bytes;
  bad[bytes.size() - 1] = 'X';
  EXPECT_THROW((void)schedbin_inspect(bad), InvalidArgument);

  // Truncations at every structural boundary.
  EXPECT_THROW((void)schedbin_inspect(bytes.substr(0, 40)), InvalidArgument);
  EXPECT_THROW((void)schedbin_inspect(bytes.substr(0, 60)), InvalidArgument);
  EXPECT_THROW((void)schedbin_inspect(bytes.substr(0, bytes.size() - 7)),
               InvalidArgument);
}

// ---- lossless conversion --------------------------------------------------

TEST(SchedBinV2, ConvertPreservesScheduleAndMetadata) {
  Rng rng(16);
  const LinkSchedule s = random_link_schedule(rng, 800);
  SchedBinOptions v1;
  v1.version = kSchedBinVersion1;
  v1.codec = SchedBinCodec::kDelta;
  v1.chunk_words = 256;
  const std::string v1_bytes = link_schedule_to_schedbin(s, v1);

  // v1 -> v2 dict: schedule identical, still no metadata to carry.
  SchedBinOptions up;
  up.codec = SchedBinCodec::kDict;
  up.metadata = {{"pipeline_invocation", "42"}};
  const std::string v2_bytes = schedbin_convert(v1_bytes, up);
  expect_link_equal(link_schedule_from_schedbin(v2_bytes), s);
  EXPECT_EQ(schedbin_inspect(v2_bytes).metadata, up.metadata);

  // v2 -> v2 codec change: metadata rides along without being re-stamped.
  SchedBinOptions recode;
  recode.codec = SchedBinCodec::kRle;
  const std::string rle_bytes = schedbin_convert(v2_bytes, recode);
  const SchedBinInfo rle_info = schedbin_inspect(rle_bytes);
  EXPECT_EQ(rle_info.codec, SchedBinCodec::kRle);
  EXPECT_EQ(rle_info.metadata, up.metadata)
      << "conversion must carry the source frame's metadata, not re-derive it";
  expect_link_equal(link_schedule_from_schedbin(rle_bytes), s);

  // v2 -> v1: down-level loses the trailer (and with it the metadata), but
  // the schedule and header fields survive; converting back up round-trips.
  SchedBinOptions down;
  down.version = kSchedBinVersion1;
  down.codec = SchedBinCodec::kRle;
  const std::string down_bytes = schedbin_convert(rle_bytes, down);
  EXPECT_EQ(schedbin_inspect(down_bytes).version, kSchedBinVersion1);
  expect_link_equal(link_schedule_from_schedbin(down_bytes), s);
  // Identical geometry + codec as the original direct v1 encode: the
  // conversion chain is lossless down to the byte level.
  EXPECT_EQ(schedbin_convert(down_bytes, v1), v1_bytes);
}

TEST(SchedBinV2, ConvertPathFramesWithoutTopology) {
  // Conversion transcodes the word stream: no DiGraph needed even for path
  // frames, and the route node sequences survive untouched.
  const DiGraph g = make_hypercube(3);
  Rng rng(17);
  const PathSchedule s = random_path_schedule(g, rng, 120);
  SchedBinOptions v1;
  v1.version = kSchedBinVersion1;
  v1.codec = SchedBinCodec::kRle;
  const std::string v1_bytes = path_schedule_to_schedbin(g, s, v1);
  SchedBinOptions up;
  up.codec = SchedBinCodec::kDict;
  const std::string v2_bytes = schedbin_convert(v1_bytes, up);
  expect_path_equal(path_schedule_from_schedbin(g, v2_bytes), s);
  const SchedBinInfo info = schedbin_inspect(v2_bytes);
  EXPECT_EQ(info.kind, SchedBinKind::kPath);
  EXPECT_EQ(info.chunk_unit, s.chunk_unit);
}

// ---- dict codec effectiveness --------------------------------------------

TEST(SchedBinV2, DictBeatsRleAndDeltaOnRepetitivePathSchedules) {
  // Fig. 4-style path schedule from the real pipeline: route weights and
  // node ids repeat heavily across chunks — exactly the dict codec's prey.
  const DiGraph g = make_generalized_kautz(16, 4);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  PathSchedule sched = compile_path_schedule(g, paths_from_link_flows(g, flows));
  std::size_t size_by_codec[4] = {0, 0, 0, 0};
  for (const SchedBinCodec codec : kV2Codecs) {
    SchedBinOptions options;
    options.codec = codec;
    options.chunk_words = 1024;  // several chunks, dictionary shared across
    size_by_codec[static_cast<int>(codec)] =
        path_schedule_to_schedbin(g, sched, options).size();
  }
  const std::size_t dict = size_by_codec[static_cast<int>(SchedBinCodec::kDict)];
  EXPECT_LT(dict, size_by_codec[static_cast<int>(SchedBinCodec::kRle)]);
  EXPECT_LT(dict, size_by_codec[static_cast<int>(SchedBinCodec::kDelta)]);
  EXPECT_LT(dict, size_by_codec[static_cast<int>(SchedBinCodec::kRaw)]);
}

// ---- golden corpus --------------------------------------------------------

TEST(SchedBinV2, CorpusFilesAreByteStableAndDecode) {
  const fs::path dir = fs::path(A2A_SOURCE_DIR) / "tests" / "corpus" / "schedbin";
  const bool update = std::getenv("A2A_UPDATE_CORPUS") != nullptr;
  for (const auto& frame : corpus::corpus_frames()) {
    const fs::path file = dir / frame.name;
    if (update) {
      fs::create_directories(dir);
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      out.write(frame.bytes.data(),
                static_cast<std::streamsize>(frame.bytes.size()));
      continue;
    }
    std::ifstream in(file, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing corpus seed " << file
                           << " (regenerate with A2A_UPDATE_CORPUS=1)";
    std::string on_disk((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    // Byte-for-byte: a writer change that alters the wire format must be a
    // deliberate version bump, not an accident — and v1 seeds double as the
    // "old fleet artifacts still decode unchanged under v2 readers" proof.
    EXPECT_EQ(on_disk, frame.bytes) << frame.name << " drifted";
    EXPECT_NO_THROW((void)schedbin_inspect(on_disk)) << frame.name;
  }
}

}  // namespace
}  // namespace a2a
