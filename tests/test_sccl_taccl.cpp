// SCCL-like and TACCL-like synthesizers: valid schedules when they finish,
// and the Fig. 7 scaling behaviour (SCCL times out quickly).
#include <gtest/gtest.h>

#include "baselines/sccl_like.hpp"
#include "baselines/taccl_like.hpp"
#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "mcf/concurrent_flow.hpp"
#include "schedule/validate.hpp"

namespace a2a {
namespace {

TEST(Sccl, SolvesRingOfFour) {
  const DiGraph g = make_ring(4);
  ScclOptions options;
  options.time_limit_s = 10.0;
  const auto result = sccl_synthesize(g, options);
  ASSERT_TRUE(result.schedule.has_value()) << "timed_out=" << result.timed_out;
  const auto validation = validate_link_schedule(g, *result.schedule, all_nodes(g));
  EXPECT_TRUE(validation.ok) << (validation.errors.empty() ? "" : validation.errors[0]);
  EXPECT_GE(result.steps, diameter(g));
}

TEST(Sccl, SolvesCompleteGraphInOneStep) {
  const DiGraph g = make_complete(4);
  const auto result = sccl_synthesize(g);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_EQ(result.steps, 1);
}

TEST(Sccl, TimesOutAtModestScale) {
  // Fig. 7: SCCL cannot generate all-to-all schedules even for N=16.
  const DiGraph g = make_generalized_kautz(16, 4);
  ScclOptions options;
  options.time_limit_s = 0.5;
  options.max_steps = 6;
  const auto result = sccl_synthesize(g, options);
  EXPECT_TRUE(result.timed_out || !result.schedule.has_value());
}

TEST(Taccl, ProducesValidScheduleOnHypercube) {
  const DiGraph g = make_hypercube(3);
  TacclOptions options;
  options.rollouts = 8;
  const auto result = taccl_synthesize(g, options);
  const auto validation = validate_link_schedule(g, result.schedule, all_nodes(g));
  EXPECT_TRUE(validation.ok) << (validation.errors.empty() ? "" : validation.errors[0]);
  EXPECT_GE(result.steps, diameter(g));
}

TEST(Taccl, UnderperformsTsMcfOptimum) {
  // Fig. 3: TACCL underperforms on the hypercube. With whole-shard tokens
  // every step moves at most one shard per link, so steps >= 1/F means the
  // schedule's serialized time is steps >= 4; TACCL typically needs more.
  const DiGraph g = make_hypercube(3);
  TacclOptions options;
  options.rollouts = 8;
  const auto result = taccl_synthesize(g, options);
  EXPECT_GE(result.steps, 4);  // 1/F floor
}

TEST(Taccl, ChunkGranularityValidates) {
  const DiGraph g = make_ring(4);
  TacclOptions options;
  options.chunks_per_shard = 2;
  options.rollouts = 4;
  const auto result = taccl_synthesize(g, options);
  const auto validation = validate_link_schedule(g, result.schedule, all_nodes(g));
  EXPECT_TRUE(validation.ok) << (validation.errors.empty() ? "" : validation.errors[0]);
}

TEST(Taccl, RuntimeGrowsWithN) {
  TacclOptions options;
  options.rollouts = 4;
  options.time_limit_s = 30.0;
  const auto t8 = taccl_synthesize(make_generalized_kautz(8, 3), options);
  const auto t20 = taccl_synthesize(make_generalized_kautz(20, 3), options);
  EXPECT_GT(t20.seconds, t8.seconds);
}

}  // namespace
}  // namespace a2a
