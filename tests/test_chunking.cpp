#include "schedule/chunking.hpp"

#include <gtest/gtest.h>

namespace a2a {
namespace {

TEST(Chunking, SnapSumsToOneExactly) {
  const auto fracs = snap_to_unit_fractions({0.3333, 0.3333, 0.3334});
  Rational sum(0);
  for (const auto& f : fracs) sum += f;
  EXPECT_EQ(sum, Rational(1));
}

TEST(Chunking, SnapPreservesObviousRatios) {
  const auto fracs = snap_to_unit_fractions({0.5, 0.25, 0.25});
  EXPECT_EQ(fracs[0], Rational(1, 2));
  EXPECT_EQ(fracs[1], Rational(1, 4));
  EXPECT_EQ(fracs[2], Rational(1, 4));
}

TEST(Chunking, SnapNormalizesArbitraryScale) {
  // MCF rates are in flow units, not fractions; snapping normalizes.
  const auto fracs = snap_to_unit_fractions({2.0, 1.0, 1.0});
  EXPECT_EQ(fracs[0], Rational(1, 2));
}

TEST(Chunking, TinyWeightsDropped) {
  ChunkingOptions options;
  options.min_fraction = 1e-3;
  const auto fracs = snap_to_unit_fractions({1.0, 1e-7}, options);
  EXPECT_EQ(fracs[1], Rational(0));
  EXPECT_EQ(fracs[0], Rational(1));
}

TEST(Chunking, RejectsDegenerateInput) {
  EXPECT_THROW(snap_to_unit_fractions({}), InvalidArgument);
  EXPECT_THROW(snap_to_unit_fractions({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(snap_to_unit_fractions({-1.0, 2.0}), InvalidArgument);
}

TEST(Chunking, HcfDividesEveryFraction) {
  const auto fracs = snap_to_unit_fractions({0.5, 0.3, 0.2});
  const Rational h = fractions_hcf(fracs);
  for (const auto& f : fracs) {
    if (f.is_zero()) continue;
    EXPECT_EQ((f / h).den(), 1);
  }
}

TEST(Chunking, HcfAcrossCommodities) {
  const std::vector<std::vector<Rational>> sets = {
      snap_to_unit_fractions({0.5, 0.5}),
      snap_to_unit_fractions({0.75, 0.25}),
  };
  const Rational h = fractions_hcf(sets);
  EXPECT_EQ(h, Rational(1, 4));
}

TEST(Chunking, ChunkCountsStayModest) {
  // The §4 lowering divides each shard into 1/HCF chunks; the fixed-grid
  // snap bounds that by max_denominator even for awkward LP outputs.
  const auto fracs =
      snap_to_unit_fractions({0.123456, 0.234567, 0.345678, 0.296299});
  const Rational h = fractions_hcf(fracs);
  const Rational chunks = Rational(1) / h;
  EXPECT_EQ(chunks.den(), 1);
  EXPECT_LE(chunks.num(), 7560);
}

}  // namespace
}  // namespace a2a
