// Fleischer FPTAS (§2.3 baseline / large-N master): feasibility always,
// (1 - O(eps)) optimality against the exact simplex on overlapping sizes.
#include "mcf/fleischer.hpp"

#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "mcf/path_mcf.hpp"

namespace a2a {
namespace {

void check_grouped_feasible(const DiGraph& g, const GroupedFlowSolution& sol) {
  std::vector<double> total(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (const auto& fs : sol.per_source) {
    for (std::size_t e = 0; e < total.size(); ++e) total[e] += fs[e];
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(total[static_cast<std::size_t>(e)], g.edge(e).capacity + 1e-6);
  }
  // Every source delivers >= F to each other terminal (grouped form:
  // inflow - outflow >= F at every other terminal).
  for (std::size_t si = 0; si < sol.terminals.size(); ++si) {
    const auto& flow = sol.per_source[si];
    for (const NodeId u : sol.terminals) {
      if (u == sol.terminals[si]) continue;
      double in = 0, out = 0;
      for (const EdgeId e : g.in_edges(u)) in += flow[static_cast<std::size_t>(e)];
      for (const EdgeId e : g.out_edges(u)) out += flow[static_cast<std::size_t>(e)];
      EXPECT_GE(in - out, sol.concurrent_flow - 1e-6)
          << "source " << sol.terminals[si] << " sink " << u;
    }
  }
}

class FleischerVsExact : public ::testing::TestWithParam<int> {};

TEST_P(FleischerVsExact, WithinEpsilonOfSimplex) {
  DiGraph g;
  double exact;
  switch (GetParam()) {
    case 0: g = make_ring(6); exact = 12.0 / 54.0; break;
    case 1: g = make_hypercube(3); exact = 0.25; break;
    case 2: g = make_complete_bipartite(4, 4); exact = 0.4; break;
    case 3: g = make_torus({3, 3, 3}); exact = 1.0 / 9.0; break;
    default: g = make_complete(6); exact = 1.0; break;
  }
  FleischerOptions options;
  options.epsilon = 0.05;
  const auto sol = fleischer_grouped(g, all_nodes(g), options);
  EXPECT_LE(sol.concurrent_flow, exact + 1e-6);
  EXPECT_GE(sol.concurrent_flow, exact * (1.0 - 3 * options.epsilon));
  check_grouped_feasible(g, sol);
}

INSTANTIATE_TEST_SUITE_P(Topologies, FleischerVsExact, ::testing::Range(0, 5));

TEST(Fleischer, TighterEpsilonIsCloser) {
  const DiGraph g = make_hypercube(3);
  FleischerOptions loose;
  loose.epsilon = 0.3;
  FleischerOptions tight;
  tight.epsilon = 0.03;
  const double f_loose = fleischer_grouped(g, all_nodes(g), loose).concurrent_flow;
  const double f_tight = fleischer_grouped(g, all_nodes(g), tight).concurrent_flow;
  EXPECT_GE(f_tight, f_loose - 1e-9);
  EXPECT_GE(f_tight, 0.25 * 0.95);
}

TEST(Fleischer, RejectsBadEpsilon) {
  const DiGraph g = make_ring(4);
  FleischerOptions options;
  options.epsilon = 0.9;
  EXPECT_THROW(fleischer_grouped(g, all_nodes(g), options), InvalidArgument);
}

TEST(Fleischer, PathRestrictedMatchesExactPathLp) {
  const DiGraph g = make_complete_bipartite(4, 4);
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  const double exact = solve_path_mcf_exact(g, set).concurrent_flow;
  FleischerOptions options;
  options.epsilon = 0.05;
  const auto sol = fleischer_paths(g, set, options);
  EXPECT_LE(sol.concurrent_flow, exact + 1e-6);
  EXPECT_GE(sol.concurrent_flow, exact * (1.0 - 3 * options.epsilon));
  // Weight shapes align with the candidate sets.
  ASSERT_EQ(sol.weights.size(), set.candidates.size());
  for (std::size_t k = 0; k < sol.weights.size(); ++k) {
    EXPECT_EQ(sol.weights[k].size(), set.candidates[k].size());
    double total = 0;
    for (const double w : sol.weights[k]) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_GE(total, sol.concurrent_flow - 1e-9);
  }
}

TEST(Fleischer, PathRestrictedRespectsCapacities) {
  const DiGraph g = make_torus({3, 3});
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  const auto sol = fleischer_paths(g, set);
  std::vector<double> load(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (std::size_t k = 0; k < sol.weights.size(); ++k) {
    for (std::size_t p = 0; p < sol.weights[k].size(); ++p) {
      for (const EdgeId e : set.candidates[k][p]) {
        load[static_cast<std::size_t>(e)] += sol.weights[k][p];
      }
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(load[static_cast<std::size_t>(e)], g.edge(e).capacity + 1e-6);
  }
}

TEST(Fleischer, TinyTimeLimitStillYieldsFeasibleFlow) {
  // Anytime contract: the phase-boundary cutoff may cost optimality but
  // never feasibility, and at least one phase always runs (the congestion
  // rescale needs some flow to normalize by).
  const DiGraph g = make_torus({3, 3});
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  FleischerOptions options;
  options.time_limit_s = 1e-9;
  const auto sol = fleischer_paths(g, set, options);
  EXPECT_GT(sol.concurrent_flow, 0.0);
  std::vector<double> load(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (std::size_t k = 0; k < sol.weights.size(); ++k) {
    for (std::size_t p = 0; p < sol.weights[k].size(); ++p) {
      for (const EdgeId e : set.candidates[k][p]) {
        load[static_cast<std::size_t>(e)] += sol.weights[k][p];
      }
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(load[static_cast<std::size_t>(e)], g.edge(e).capacity + 1e-6);
  }
}

TEST(Fleischer, GroupedTimeLimitKeepsFeasibility) {
  const DiGraph g = make_ring(8);
  FleischerOptions options;
  options.time_limit_s = 1e-9;
  const auto sol = fleischer_grouped(g, all_nodes(g), options);
  check_grouped_feasible(g, sol);
  EXPECT_GT(sol.concurrent_flow, 0.0);
}

TEST(Fleischer, GroupedWithTerminalSubset) {
  const DiGraph g = make_ring(6);
  const auto sol = fleischer_grouped(g, {0, 3});
  // Two disjoint halves of the ring, capacity 1 each: F close to 2.
  EXPECT_GE(sol.concurrent_flow, 2.0 * 0.85);
  EXPECT_LE(sol.concurrent_flow, 2.0 + 1e-6);
}

}  // namespace
}  // namespace a2a
