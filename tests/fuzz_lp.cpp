// Randomized LP differential harness (ctest label `fuzz`).
//
// Generates random LPs — box LPs with presolve bait (fixed variables,
// singleton/empty rows, empty columns, duplicate rows), tie-heavy degenerate
// instances, and random-network link-MCF models — and cross-checks every
// solver path against every other:
//   * dense reference (solve_lp_dense);
//   * sparse legacy (product-form eta file, no presolve, exact ratio tests);
//   * sparse Forrest–Tomlin (presolve off);
//   * the full default (FT + presolve + Harris + partial pricing);
//   * a dual-warm re-solve of a perturbed instance vs its cold solve;
//   * an EXACT rational tableau simplex (Bland's rule, Rational arithmetic)
//     on the small all-integer instances, where "identical objective" means
//     equality against the exact optimum, not solver-vs-solver agreement.
// Statuses must agree, optimal objectives must match to tight tolerance,
// and the (postsolved) solution of the default path must satisfy every
// original constraint and bound.
//
// A2A_FUZZ_ITERS overrides the instance count for longer soak runs; seeds
// derive from the instance index, so any failure reproduces standalone.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "common/rational.hpp"
#include "graph/digraph.hpp"
#include "lp/simplex.hpp"
#include "mcf/concurrent_flow.hpp"

namespace a2a {
namespace {

// ---- exact rational oracle --------------------------------------------------

struct ExactResult {
  LpStatus status = LpStatus::kIterationLimit;
  Rational objective;
};

/// Dense two-phase tableau simplex over Rational with Bland's rule: exact
/// and cycle-free, the ground-truth oracle for small integer LPs. Requires
/// every lower bound to be non-negative (the generator's exact family
/// guarantees it); finite bounds become explicit rows. Returns nullopt when
/// the rationals overflow int64 (possible on adversarial pivots — the
/// caller just skips the exact comparison) or the pivot cap trips.
std::optional<ExactResult> exact_solve(const LpModel& model) {
  const int n = model.num_variables();
  const double obj_sign = model.sense() == Sense::kMaximize ? -1.0 : 1.0;
  try {
    // Assemble rows: the model's own, then one x_j <= u_j row per finite
    // upper bound. Negative rhs rows are sign-flipped so b >= 0.
    struct Row {
      std::vector<Rational> a;
      Rational b;
      RowType type;
    };
    std::vector<Row> rows;
    for (int r = 0; r < model.num_rows(); ++r) {
      Row row;
      row.a.assign(static_cast<std::size_t>(n), Rational(0));
      row.b = Rational::approximate(model.rhs(r));
      row.type = model.row_type(r);
      for (int j = 0; j < n; ++j) {
        for (const auto& e : model.column(j)) {
          if (e.row == r) row.a[static_cast<std::size_t>(j)] = Rational::approximate(e.value);
        }
      }
      rows.push_back(std::move(row));
    }
    for (int j = 0; j < n; ++j) {
      if (model.upper(j) < kInfinity) {
        Row row;
        row.a.assign(static_cast<std::size_t>(n), Rational(0));
        row.a[static_cast<std::size_t>(j)] = Rational(1);
        row.b = Rational::approximate(model.upper(j));
        row.type = RowType::kLessEqual;
        rows.push_back(std::move(row));
      }
      if (model.lower(j) > 0.0) {
        Row row;
        row.a.assign(static_cast<std::size_t>(n), Rational(0));
        row.a[static_cast<std::size_t>(j)] = Rational(1);
        row.b = Rational::approximate(model.lower(j));
        row.type = RowType::kGreaterEqual;
        rows.push_back(std::move(row));
      }
    }
    const int m = static_cast<int>(rows.size());
    for (Row& row : rows) {
      if (row.b < Rational(0)) {
        for (Rational& v : row.a) v = Rational(0) - v;
        row.b = Rational(0) - row.b;
        row.type = row.type == RowType::kLessEqual ? RowType::kGreaterEqual
                   : row.type == RowType::kGreaterEqual ? RowType::kLessEqual
                                                        : RowType::kEqual;
      }
    }
    // Tableau columns: structural, then slack/surplus, then artificials.
    std::vector<std::vector<Rational>> T(
        static_cast<std::size_t>(m),
        std::vector<Rational>(static_cast<std::size_t>(n), Rational(0)));
    for (int r = 0; r < m; ++r) T[r] = rows[static_cast<std::size_t>(r)].a;
    std::vector<Rational> rhs(static_cast<std::size_t>(m));
    for (int r = 0; r < m; ++r) rhs[static_cast<std::size_t>(r)] = rows[static_cast<std::size_t>(r)].b;
    std::vector<int> basis(static_cast<std::size_t>(m), -1);
    int num_cols = n;
    const auto add_unit_column = [&](int r, const Rational& v) {
      for (int i = 0; i < m; ++i) {
        T[static_cast<std::size_t>(i)].push_back(i == r ? v : Rational(0));
      }
      return num_cols++;
    };
    int first_artificial = -1;
    for (int r = 0; r < m; ++r) {
      const RowType type = rows[static_cast<std::size_t>(r)].type;
      if (type == RowType::kLessEqual) {
        basis[static_cast<std::size_t>(r)] = add_unit_column(r, Rational(1));
      } else if (type == RowType::kGreaterEqual) {
        add_unit_column(r, Rational(-1));
      }
    }
    for (int r = 0; r < m; ++r) {
      if (basis[static_cast<std::size_t>(r)] >= 0) continue;
      const int a = add_unit_column(r, Rational(1));
      if (first_artificial < 0) first_artificial = a;
      basis[static_cast<std::size_t>(r)] = a;
    }
    if (first_artificial < 0) first_artificial = num_cols;

    std::vector<Rational> cost(static_cast<std::size_t>(num_cols), Rational(0));
    for (int j = 0; j < n; ++j) {
      cost[static_cast<std::size_t>(j)] =
          Rational::approximate(obj_sign * model.objective(j));
    }
    const auto apply_pivot = [&](int leaving, int entering) {
      const Rational piv =
          T[static_cast<std::size_t>(leaving)][static_cast<std::size_t>(entering)];
      for (int j = 0; j < num_cols; ++j) {
        T[static_cast<std::size_t>(leaving)][static_cast<std::size_t>(j)] =
            T[static_cast<std::size_t>(leaving)][static_cast<std::size_t>(j)] / piv;
      }
      rhs[static_cast<std::size_t>(leaving)] = rhs[static_cast<std::size_t>(leaving)] / piv;
      for (int i = 0; i < m; ++i) {
        if (i == leaving) continue;
        const Rational f = T[static_cast<std::size_t>(i)][static_cast<std::size_t>(entering)];
        if (f.is_zero()) continue;
        for (int j = 0; j < num_cols; ++j) {
          T[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] -=
              f * T[static_cast<std::size_t>(leaving)][static_cast<std::size_t>(j)];
        }
        rhs[static_cast<std::size_t>(i)] -= f * rhs[static_cast<std::size_t>(leaving)];
      }
      basis[static_cast<std::size_t>(leaving)] = entering;
    };
    const auto iterate = [&](const std::vector<Rational>& c,
                             bool lock_artificials) -> std::optional<LpStatus> {
      for (int pivots = 0; pivots < 5000; ++pivots) {
        // Reduced costs d_j = c_j - c_B' T_j; Bland: lowest j with d_j < 0.
        int entering = -1;
        for (int j = 0; j < num_cols && entering < 0; ++j) {
          if (lock_artificials && j >= first_artificial) break;
          bool is_basic = false;
          for (int i = 0; i < m; ++i) is_basic |= basis[static_cast<std::size_t>(i)] == j;
          if (is_basic) continue;
          Rational d = c[static_cast<std::size_t>(j)];
          for (int i = 0; i < m; ++i) {
            const Rational cb = c[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])];
            if (!cb.is_zero()) d -= cb * T[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          }
          if (d < Rational(0)) entering = j;
        }
        if (entering < 0) return LpStatus::kOptimal;
        int leaving = -1;
        Rational best_ratio;
        for (int i = 0; i < m; ++i) {
          const Rational& a = T[static_cast<std::size_t>(i)][static_cast<std::size_t>(entering)];
          if (!(a > Rational(0))) continue;
          const Rational ratio = rhs[static_cast<std::size_t>(i)] / a;
          if (leaving < 0 || ratio < best_ratio ||
              (ratio == best_ratio &&
               basis[static_cast<std::size_t>(i)] < basis[static_cast<std::size_t>(leaving)])) {
            leaving = i;
            best_ratio = ratio;
          }
        }
        if (leaving < 0) return LpStatus::kUnbounded;
        apply_pivot(leaving, entering);
      }
      return std::nullopt;  // pivot cap (never seen; Bland cannot cycle)
    };

    // Phase 1: minimize the artificial sum.
    if (first_artificial < num_cols) {
      std::vector<Rational> phase1(static_cast<std::size_t>(num_cols), Rational(0));
      for (int j = first_artificial; j < num_cols; ++j) phase1[static_cast<std::size_t>(j)] = Rational(1);
      const auto s = iterate(phase1, /*lock_artificials=*/false);
      if (!s.has_value()) return std::nullopt;
      Rational infeas(0);
      for (int i = 0; i < m; ++i) {
        if (basis[static_cast<std::size_t>(i)] >= first_artificial) {
          infeas += rhs[static_cast<std::size_t>(i)];
        }
      }
      if (!(infeas == Rational(0))) {
        return ExactResult{LpStatus::kInfeasible, Rational(0)};
      }
      // Drive still-basic artificials (degenerate, value zero) out of the
      // basis with a degenerate pivot on any nonbasic structural/slack
      // column in their row — otherwise phase 2, where artificials cost
      // nothing, can silently grow one back and void its constraint. A row
      // with no such column is redundant: every entering column has a zero
      // there, so the artificial stays pinned at zero and is harmless.
      for (int i = 0; i < m; ++i) {
        if (basis[static_cast<std::size_t>(i)] < first_artificial) continue;
        int pivot_col = -1;
        for (int j = 0; j < first_artificial && pivot_col < 0; ++j) {
          bool is_basic = false;
          for (int r = 0; r < m; ++r) is_basic |= basis[static_cast<std::size_t>(r)] == j;
          if (!is_basic &&
              !T[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)].is_zero()) {
            pivot_col = j;
          }
        }
        if (pivot_col >= 0) apply_pivot(i, pivot_col);
      }
    }
    const auto s = iterate(cost, /*lock_artificials=*/true);
    if (!s.has_value()) return std::nullopt;
    if (*s == LpStatus::kUnbounded) return ExactResult{LpStatus::kUnbounded, Rational(0)};
    Rational obj(0);
    for (int i = 0; i < m; ++i) {
      const Rational cb = cost[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])];
      if (!cb.is_zero()) obj += cb * rhs[static_cast<std::size_t>(i)];
    }
    if (obj_sign < 0.0) obj = Rational(0) - obj;  // back to the model's sense
    return ExactResult{LpStatus::kOptimal, obj};
  } catch (const Error&) {
    return std::nullopt;  // rational overflow: exact comparison unavailable
  }
}

// ---- instance generators ----------------------------------------------------

/// Box LP with presolve bait. `exact_family` restricts to all-integer data
/// with zero lower bounds so the rational oracle applies.
LpModel random_box_lp(Rng& rng, bool exact_family) {
  const int n = exact_family ? rng.next_int(2, 5) : rng.next_int(2, 13);
  const int m = exact_family ? rng.next_int(1, 5) : rng.next_int(1, 11);
  LpModel model(rng.next_below(2) == 0 ? Sense::kMinimize : Sense::kMaximize);
  for (int j = 0; j < n; ++j) {
    double lo = 0.0;
    double up = kInfinity;
    const int kind = rng.next_int(0, 10);
    if (kind < 5) {
      up = static_cast<double>(rng.next_int(1, 5));  // boxed
    } else if (kind == 5) {
      lo = up = static_cast<double>(rng.next_int(0, 3));  // fixed: presolve bait
    } else if (kind == 6 && !exact_family) {
      lo = static_cast<double>(rng.next_int(-3, 1));
      up = lo + rng.next_int(0, 5);
    }
    model.add_variable(lo, up, static_cast<double>(rng.next_int(-4, 5)));
  }
  for (int r = 0; r < m; ++r) {
    const RowType type = static_cast<RowType>(rng.next_int(0, 3));
    const int rhs = rng.next_int(exact_family ? 0 : -4, 9);
    const int row = model.add_row(type, static_cast<double>(rhs));
    const int kind = rng.next_int(0, 12);
    if (kind == 0) continue;  // empty row: presolve bait
    const int entries = kind == 1 ? 1  // singleton row: presolve bait
                                  : rng.next_int(2, std::max(3, n + 1));
    for (int k = 0; k < entries; ++k) {
      const int var = rng.next_int(0, n);
      int coeff = rng.next_int(-3, 4);
      if (coeff == 0) coeff = 1;
      model.add_coefficient(row, var, static_cast<double>(coeff));
    }
  }
  return model;
}

/// Tie-heavy degenerate LP: duplicated rows and columns, zero rhs — the
/// alternate-optima faces where deterministic tie-breaking and Harris
/// windows earn their keep.
LpModel random_degenerate_lp(Rng& rng) {
  const int n = rng.next_int(3, 9);
  LpModel model(Sense::kMaximize);
  for (int j = 0; j < n; ++j) {
    model.add_variable(0.0, static_cast<double>(rng.next_int(1, 4)), 1.0);
  }
  const int m = rng.next_int(2, 7);
  std::vector<int> pattern;
  for (int r = 0; r < m; ++r) {
    const bool duplicate = r > 0 && rng.next_below(3) == 0 && !pattern.empty();
    if (!duplicate) {
      pattern.clear();
      for (int j = 0; j < n; ++j) {
        if (rng.next_below(2) == 0) pattern.push_back(j);
      }
      if (pattern.empty()) pattern.push_back(rng.next_int(0, n));
    }
    const int row = model.add_row(RowType::kLessEqual,
                                  static_cast<double>(rng.next_int(0, 6)));
    for (const int j : pattern) model.add_coefficient(row, j, 1.0);
  }
  return model;
}

/// Random-network link-MCF LP: always feasible, totally degenerate at the
/// optimum — the production shape.
LpModel random_network_lp(Rng& rng, DiGraph* graph_out) {
  const int nodes = rng.next_int(4, 8);
  DiGraph g(nodes);
  for (int u = 0; u < nodes; ++u) {
    g.add_edge(u, (u + 1) % nodes, 1.0 + rng.next_int(0, 3));
  }
  const int chords = rng.next_int(1, 2 * nodes);
  for (int c = 0; c < chords; ++c) {
    const int u = rng.next_int(0, nodes);
    const int v = rng.next_int(0, nodes);
    if (u != v) g.add_edge(u, v, 1.0 + rng.next_int(0, 3));
  }
  const int terminals = rng.next_int(2, std::min(nodes, 5));
  std::vector<NodeId> ts;
  for (int t = 0; t < terminals; ++t) ts.push_back(t);
  if (graph_out != nullptr) *graph_out = g;
  return build_link_mcf_model(g, TerminalPairs(ts));
}

// ---- checks -----------------------------------------------------------------

/// Feasibility of `values` against every original row and bound, within a
/// tolerance covering the Harris relaxation and presolve substitutions.
::testing::AssertionResult feasible(const LpModel& model,
                                    const std::vector<double>& values) {
  constexpr double kTol = 1e-5;
  if (static_cast<int>(values.size()) != model.num_variables()) {
    return ::testing::AssertionFailure() << "values size mismatch";
  }
  std::vector<double> activity(static_cast<std::size_t>(model.num_rows()), 0.0);
  for (int j = 0; j < model.num_variables(); ++j) {
    const double v = values[static_cast<std::size_t>(j)];
    if (v < model.lower(j) - kTol || v > model.upper(j) + kTol) {
      return ::testing::AssertionFailure()
             << "var " << j << " = " << v << " outside [" << model.lower(j)
             << ", " << model.upper(j) << "]";
    }
    for (const auto& e : model.column(j)) {
      activity[static_cast<std::size_t>(e.row)] += e.value * v;
    }
  }
  for (int r = 0; r < model.num_rows(); ++r) {
    const double a = activity[static_cast<std::size_t>(r)];
    const double b = model.rhs(r);
    const double tol = kTol * std::max(1.0, std::abs(b));
    const bool ok = model.row_type(r) == RowType::kLessEqual ? a <= b + tol
                    : model.row_type(r) == RowType::kGreaterEqual ? a >= b - tol
                                                                  : std::abs(a - b) <= tol;
    if (!ok) {
      return ::testing::AssertionFailure()
             << "row " << r << " activity " << a << " violates rhs " << b;
    }
  }
  return ::testing::AssertionSuccess();
}

struct SolverPath {
  const char* name;
  SimplexOptions options;
};

std::vector<SolverPath> solver_paths() {
  SimplexOptions legacy;
  legacy.basis_update = LpBasisUpdate::kEta;
  legacy.presolve = false;
  legacy.harris_ratio = false;
  legacy.partial_pricing_threshold = 0;
  SimplexOptions ft = legacy;
  ft.basis_update = LpBasisUpdate::kForrestTomlin;
  SimplexOptions presolved_eta = legacy;
  presolved_eta.presolve = true;
  SimplexOptions full;  // FT + presolve + Harris + partial pricing
  full.partial_pricing_threshold = 64;  // force the sectioned scan into play
  return {{"legacy-eta", legacy},
          {"ft", ft},
          {"eta+presolve", presolved_eta},
          {"full-default", full}};
}

long long fuzz_iterations() {
  if (const char* env = std::getenv("A2A_FUZZ_ITERS")) {
    return std::max(1LL, std::atoll(env));
  }
  return 2200;
}

TEST(FuzzLp, AllSolverPathsAgreeOnRandomInstances) {
  const long long iters = fuzz_iterations();
  const std::vector<SolverPath> paths = solver_paths();
  long long optimal = 0;
  long long infeasible = 0;
  long long unbounded = 0;
  long long exact_checked = 0;
  for (long long i = 0; i < iters; ++i) {
    Rng rng(0x5EEDF00D + static_cast<std::uint64_t>(i));
    const int family = static_cast<int>(rng.next_below(10));
    const bool exact_family = family < 3;
    LpModel model = family < 6 ? random_box_lp(rng, exact_family)
                    : family < 8 ? random_degenerate_lp(rng)
                                 : random_network_lp(rng, nullptr);
    const LpSolution dense = solve_lp_dense(model);
    SCOPED_TRACE(::testing::Message() << "instance " << i << " family " << family
                                      << " n=" << model.num_variables()
                                      << " m=" << model.num_rows());
    for (const SolverPath& path : paths) {
      const LpSolution s = solve_lp(model, path.options);
      ASSERT_EQ(s.status, dense.status) << path.name;
      if (s.optimal()) {
        ASSERT_NEAR(s.objective, dense.objective,
                    1e-6 * std::max(1.0, std::abs(dense.objective)))
            << path.name;
        ASSERT_TRUE(feasible(model, s.values)) << path.name;
      }
    }
    switch (dense.status) {
      case LpStatus::kOptimal: ++optimal; break;
      case LpStatus::kInfeasible: ++infeasible; break;
      case LpStatus::kUnbounded: ++unbounded; break;
      default: FAIL() << "unexpected status from the dense reference";
    }
    if (exact_family) {
      const auto exact = exact_solve(model);
      if (exact.has_value()) {
        ++exact_checked;
        ASSERT_EQ(dense.status, exact->status) << "vs exact oracle";
        if (dense.status == LpStatus::kOptimal) {
          ASSERT_NEAR(dense.objective, exact->objective.to_double(),
                      1e-6 * std::max(1.0, std::abs(dense.objective)))
              << "vs exact oracle";
        }
      }
    }
  }
  // The generator must exercise every status and the oracle must actually
  // fire — a silent skew here would hollow the harness out.
  EXPECT_GT(optimal, iters / 3);
  EXPECT_GT(infeasible, 0);
  EXPECT_GT(unbounded, 0);
  EXPECT_GT(exact_checked, iters / 8);
}

TEST(FuzzLp, DualWarmResolvesMatchColdOnPerturbedInstances) {
  const long long iters = std::max(1LL, fuzz_iterations() / 8);
  for (long long i = 0; i < iters; ++i) {
    Rng rng(0xD00DA000 + static_cast<std::uint64_t>(i));
    DiGraph g(1);
    (void)random_network_lp(rng, &g);  // draw a random graph shape
    const LpModel base = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
    LpBasis warm;
    const LpSolution first = solve_lp_warm(base, {}, &warm);
    ASSERT_TRUE(first.optimal()) << "instance " << i;
    // Perturb: collapse one or two capacities (rhs-only — the basis stays
    // dual feasible), then cross-check dual-warm vs cold.
    DiGraph shrunk = g;
    const int hits = rng.next_int(1, 3);
    for (int h = 0; h < hits; ++h) {
      shrunk.set_capacity(static_cast<EdgeId>(rng.next_below(
                              static_cast<std::uint64_t>(shrunk.num_edges()))),
                          1e-6);
    }
    const LpModel perturbed =
        build_link_mcf_model(shrunk, TerminalPairs(all_nodes(shrunk)));
    const LpSolution cold = solve_lp(perturbed);
    const LpSolution dual = solve_lp(perturbed, {}, &warm, LpWarmMode::kDual);
    ASSERT_TRUE(cold.optimal()) << "instance " << i;
    ASSERT_TRUE(dual.optimal()) << "instance " << i;
    ASSERT_NEAR(cold.objective, dual.objective,
                1e-6 * std::max(1.0, std::abs(cold.objective)))
        << "instance " << i;
    ASSERT_TRUE(feasible(perturbed, dual.values)) << "instance " << i;
  }
}

}  // namespace
}  // namespace a2a
