// Demand generators and collective lowering (ctest labels unit;collectives).
//
// The lowering identities under test are the §2-style contracts the service
// relies on: reduce-scatter is a column-constant demand pattern, all-gather
// is row-constant, and allreduce is their two-stage composition over one
// shared partition vector — so the composed schedule can never complete
// faster than either stage alone.
#include "collectives/collective.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/api.hpp"
#include "graph/topologies.hpp"
#include "runtime/ct_simulator.hpp"
#include "schedule/validate.hpp"

namespace a2a {
namespace {

// ---- generators -------------------------------------------------------------

TEST(DemandMatrix, UniformIsUnitEverywhereOffDiagonal) {
  const DemandMatrix m = DemandMatrix::uniform(5);
  EXPECT_TRUE(m.is_uniform_unit());
  EXPECT_DOUBLE_EQ(m.total(), 20.0);
  EXPECT_EQ(m.num_positive(), 20);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
}

TEST(DemandMatrix, ZipfZeroIsBitIdenticalToUniform) {
  const DemandMatrix u = DemandMatrix::uniform(9);
  const DemandMatrix z = DemandMatrix::zipf(9, 0.0);
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 9; ++j) {
      EXPECT_EQ(u.at(i, j), z.at(i, j)) << i << "," << j;  // exact, not NEAR
    }
  }
  EXPECT_TRUE(z.is_uniform_unit());
}

TEST(DemandMatrix, ZipfSkewsRowsButPreservesTotal) {
  const int n = 8;
  const DemandMatrix m = DemandMatrix::zipf(n, 1.2);
  // Row weights strictly decrease in rank; total matches uniform's n(n-1).
  for (int r = 1; r < n; ++r) {
    EXPECT_LT(m.row_sum(r), m.row_sum(r - 1)) << "row " << r;
  }
  EXPECT_NEAR(m.total(), static_cast<double>(n * (n - 1)), 1e-9);
  EXPECT_FALSE(m.is_uniform_unit());
}

TEST(DemandMatrix, PermutationHasOnePositivePerRowAndColumn) {
  const int n = 7;
  const DemandMatrix m = DemandMatrix::permutation(n, 3);
  for (int i = 0; i < n; ++i) {
    int row_pos = 0;
    int col_pos = 0;
    for (int j = 0; j < n; ++j) {
      row_pos += m.at(i, j) > 0.0 ? 1 : 0;
      col_pos += m.at(j, i) > 0.0 ? 1 : 0;
    }
    EXPECT_EQ(row_pos, 1) << "row " << i;
    EXPECT_EQ(col_pos, 1) << "col " << i;
  }
  EXPECT_DOUBLE_EQ(m.total(), static_cast<double>(n));
}

TEST(DemandMatrix, BlockDiagonalHasNoCrossBlockTraffic) {
  const int n = 8;
  const DemandMatrix m = DemandMatrix::block_diagonal(n, 2);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const bool same_block = (i < 4) == (j < 4);
      EXPECT_DOUBLE_EQ(m.at(i, j), same_block ? 1.0 : 0.0) << i << "," << j;
    }
  }
  // 2 blocks of 4: 2 * 4*3 positive commodities.
  EXPECT_EQ(m.num_positive(), 24);
}

// ---- spec grammar -----------------------------------------------------------

TEST(DemandSpec, ParseRoundTripsCanonicalSpellings) {
  for (const char* spec : {"uniform", "zipf:1.2", "zipf:0", "perm", "perm:5",
                           "block:4"}) {
    const DemandSpec parsed = DemandSpec::parse(spec);
    EXPECT_EQ(DemandSpec::parse(parsed.to_string()), parsed) << spec;
  }
  EXPECT_TRUE(DemandSpec::parse("uniform").is_default());
  EXPECT_FALSE(DemandSpec::parse("zipf:0.6").is_default());
}

TEST(DemandSpec, MalformedSpecsThrow) {
  for (const char* spec :
       {"", "zipf", "zipf:", "zipf:abc", "zipf:-1", "zipf:99", "block",
        "block:0", "block:2.5", "perm:-3", "uniform:1", "bogus"}) {
    EXPECT_THROW((void)DemandSpec::parse(spec), InvalidArgument) << spec;
  }
}

TEST(Collective, NamesRoundTripAndAliasesResolve) {
  for (const CollectiveKind kind :
       {CollectiveKind::kAllToAll, CollectiveKind::kReduceScatter,
        CollectiveKind::kAllGather, CollectiveKind::kAllReduce}) {
    EXPECT_EQ(collective_from_name(collective_name(kind)), kind);
  }
  EXPECT_EQ(collective_from_name("reduce-scatter"),
            CollectiveKind::kReduceScatter);
  EXPECT_EQ(collective_from_name("ar"), CollectiveKind::kAllReduce);
  EXPECT_THROW((void)collective_from_name("broadcast"), InvalidArgument);
}

// ---- lowering identities ----------------------------------------------------

TEST(Collective, ReduceScatterLowersToColumnConstantPattern) {
  DemandSpec spec;
  spec.kind = DemandSpec::Kind::kZipf;
  spec.zipf_s = 1.2;
  const CollectivePlan plan =
      lower_collective(CollectiveKind::kReduceScatter, 6, spec);
  ASSERT_EQ(plan.stages.size(), 1u);
  const DemandMatrix& d = plan.stages[0].demand;
  for (int col = 0; col < 6; ++col) {
    double seen = -1.0;
    for (int row = 0; row < 6; ++row) {
      if (row == col) continue;
      if (seen < 0.0) seen = d.at(row, col);
      EXPECT_DOUBLE_EQ(d.at(row, col), seen) << "col " << col;
    }
  }
}

TEST(Collective, AllGatherLowersToRowConstantPattern) {
  DemandSpec spec;
  spec.kind = DemandSpec::Kind::kZipf;
  spec.zipf_s = 1.2;
  const CollectivePlan plan =
      lower_collective(CollectiveKind::kAllGather, 6, spec);
  ASSERT_EQ(plan.stages.size(), 1u);
  const DemandMatrix& d = plan.stages[0].demand;
  for (int row = 0; row < 6; ++row) {
    double seen = -1.0;
    for (int col = 0; col < 6; ++col) {
      if (row == col) continue;
      if (seen < 0.0) seen = d.at(row, col);
      EXPECT_DOUBLE_EQ(d.at(row, col), seen) << "row " << row;
    }
  }
}

TEST(Collective, AllReduceComposesReduceScatterThenAllGather) {
  DemandSpec spec;
  spec.kind = DemandSpec::Kind::kZipf;
  spec.zipf_s = 0.6;
  const CollectivePlan rs =
      lower_collective(CollectiveKind::kReduceScatter, 6, spec);
  const CollectivePlan ag =
      lower_collective(CollectiveKind::kAllGather, 6, spec);
  const CollectivePlan ar =
      lower_collective(CollectiveKind::kAllReduce, 6, spec);
  ASSERT_EQ(ar.stages.size(), 2u);
  EXPECT_EQ(ar.stages[0].name, "reduce-scatter");
  EXPECT_EQ(ar.stages[1].name, "all-gather");
  // Both stages share the same partition vector p, so stage demands match
  // the standalone lowerings and the effective (overlaid) demand is the sum.
  const WorkloadSpec workload{CollectiveKind::kAllReduce, spec};
  const DemandMatrix sum = effective_demand(workload, 6);
  for (int s = 0; s < 6; ++s) {
    for (int d = 0; d < 6; ++d) {
      if (s == d) continue;
      EXPECT_DOUBLE_EQ(ar.stages[0].demand.at(s, d),
                       rs.stages[0].demand.at(s, d));
      EXPECT_DOUBLE_EQ(ar.stages[1].demand.at(s, d),
                       ag.stages[0].demand.at(s, d));
      EXPECT_DOUBLE_EQ(sum.at(s, d), ar.stages[0].demand.at(s, d) +
                                         ar.stages[1].demand.at(s, d));
    }
  }
}

TEST(Collective, UniformAllReduceDoublesTheUniformDemand) {
  const WorkloadSpec workload{CollectiveKind::kAllReduce, DemandSpec{}};
  const DemandMatrix d = effective_demand(workload, 5);
  for (int s = 0; s < 5; ++s) {
    for (int t = 0; t < 5; ++t) {
      if (s == t) continue;
      EXPECT_DOUBLE_EQ(d.at(s, t), 2.0);
    }
  }
}

TEST(Collective, DegenerateTerminalCountsLowerToNoTraffic) {
  for (const int n : {0, 1}) {
    for (const CollectiveKind kind :
         {CollectiveKind::kAllToAll, CollectiveKind::kReduceScatter,
          CollectiveKind::kAllGather, CollectiveKind::kAllReduce}) {
      const CollectivePlan plan = lower_collective(kind, n);
      EXPECT_TRUE(plan.stages.empty()) << collective_name(kind) << " n=" << n;
      EXPECT_FALSE(plan.has_traffic());
    }
  }
}

// ---- end-to-end composition through the pipeline ----------------------------

TEST(Collective, ComposedAllReduceScheduleIsNoFasterThanEitherStage) {
  const DiGraph g = make_generalized_kautz(12, 3);
  const Fabric fabric = hpc_cerio_fabric();
  DemandSpec spec;
  spec.kind = DemandSpec::Kind::kZipf;
  spec.zipf_s = 0.6;
  const auto run = [&](CollectiveKind kind) {
    ToolchainOptions options;
    options.workload.collective = kind;
    options.workload.demand = spec;
    const GeneratedSchedule result = generate_schedule(g, fabric, options);
    const DemandMatrix check = effective_demand(
        options.workload, static_cast<int>(result.terminals.size()));
    EXPECT_TRUE(validate_path_schedule(result.schedule_graph, *result.path,
                                       result.terminals, &check)
                    .ok)
        << collective_name(kind);
    return simulate_path_schedule(g, *result.path, 1 << 20,
                                  static_cast<int>(result.terminals.size()),
                                  fabric)
        .seconds;
  };
  const double rs_s = run(CollectiveKind::kReduceScatter);
  const double ag_s = run(CollectiveKind::kAllGather);
  const double ar_s = run(CollectiveKind::kAllReduce);
  EXPECT_GT(rs_s, 0.0);
  EXPECT_GT(ag_s, 0.0);
  // The composition carries both stages' bytes, so it cannot beat a stage.
  EXPECT_GE(ar_s, rs_s * (1.0 - 1e-9));
  EXPECT_GE(ar_s, ag_s * (1.0 - 1e-9));
}

}  // namespace
}  // namespace a2a
