// Baselines (§5.2/§5.3): each produces valid routes and ranks against the
// MCF optimum exactly the way the paper reports.
#include <gtest/gtest.h>

#include "baselines/dor.hpp"
#include "baselines/ewsp.hpp"
#include "baselines/ilp_disjoint.hpp"
#include "baselines/native_p2p.hpp"
#include "baselines/sssp.hpp"
#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "mcf/concurrent_flow.hpp"
#include "mcf/path_mcf.hpp"

namespace a2a {
namespace {

void check_plan(const DiGraph& g, const SingleRoutePlan& plan) {
  ASSERT_EQ(plan.commodities.size(), plan.routes.size());
  for (std::size_t k = 0; k < plan.routes.size(); ++k) {
    EXPECT_TRUE(path_is_valid(g, plan.routes[k], plan.commodities[k].first,
                              plan.commodities[k].second));
  }
}

TEST(Baselines, SsspRoutesValidAndAboveOptimum) {
  const DiGraph g = make_torus({3, 3});
  const auto plan = sssp_routes(g, all_nodes(g));
  check_plan(g, plan);
  const double f = solve_master_lp(g, all_nodes(g)).concurrent_flow;
  EXPECT_GE(plan.max_link_load(g), 1.0 / f - 1e-6);  // single-path >= optimum
}

TEST(Baselines, DorIsBandwidthOptimalOnTorus333) {
  // §5.2: DOR is theoretically bandwidth optimal on the 3D torus.
  const DiGraph g = make_torus({3, 3, 3});
  const auto plan = dor_routes(g, {3, 3, 3}, true);
  check_plan(g, plan);
  EXPECT_NEAR(plan.max_link_load(g), 9.0, 1e-9);  // == 1/F with F = 1/9
}

TEST(Baselines, DorRejectsWrongGraph) {
  EXPECT_THROW(dor_routes(make_ring(6), {3, 3}, true), InvalidArgument);
}

TEST(Baselines, DorOnMesh) {
  const DiGraph g = make_mesh({3, 3});
  const auto plan = dor_routes(g, {3, 3}, false);
  check_plan(g, plan);
}

TEST(Baselines, EwspLoadMatchesPathSetEvaluation) {
  const DiGraph g = make_hypercube(3);
  const double dp_load = ewsp_max_link_load(g, all_nodes(g));
  // Cross-check with the explicit enumeration (Q3 has few shortest paths).
  const PathSet set = ewsp_path_set(g, all_nodes(g), 64);
  std::vector<std::vector<double>> equal_weights;
  for (const auto& cands : set.candidates) {
    equal_weights.emplace_back(cands.size(), 1.0);
  }
  EXPECT_NEAR(dp_load, max_link_load(g, set, equal_weights), 1e-9);
}

TEST(Baselines, EwspOptimalOnEdgeTransitiveButNotExpanders) {
  // §5.2/5.3: EwSP is good on the symmetric testbed topologies but
  // suboptimal on expanders.
  const DiGraph torus = make_torus({3, 3, 3});
  EXPECT_NEAR(ewsp_max_link_load(torus, all_nodes(torus)), 9.0, 1e-9);
  const DiGraph gk = make_generalized_kautz(16, 3);
  const double f = solve_master_lp(gk, all_nodes(gk)).concurrent_flow;
  EXPECT_GT(ewsp_max_link_load(gk, all_nodes(gk)), 1.0 / f + 1e-6);
}

TEST(Baselines, NativeP2pDeterministicAndValid) {
  const DiGraph g = make_torus({3, 3});
  const auto a = native_p2p_routes(g, all_nodes(g));
  const auto b = native_p2p_routes(g, all_nodes(g));
  check_plan(g, a);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i], b.routes[i]);
  }
  // Single-path without balancing: at least as loaded as SSSP.
  const auto sssp = sssp_routes(g, all_nodes(g));
  EXPECT_GE(a.max_link_load(g), sssp.max_link_load(g) - 1e-9);
}

TEST(Baselines, IlpBeatsItsGreedyLowerBoundStructure) {
  const DiGraph g = make_torus({3, 3, 3});
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  IlpOptions options;
  options.lower_bound = 9.0;  // 1/F
  options.time_limit_s = 20.0;
  const auto result = ilp_single_path(g, set, options);
  check_plan(g, result.plan);
  // ILP-disjoint is a strong baseline on the torus (§5.2): within 15% of
  // the bound.
  EXPECT_LE(result.max_load, 9.0 * 1.15);
  EXPECT_GE(result.max_load, 9.0 - 1e-9);
}

TEST(Baselines, IlpExactOnTinyInstanceByBruteForce) {
  const DiGraph g = make_ring(4);
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  IlpOptions options;
  options.time_limit_s = 5.0;
  options.restarts = 16;
  const auto result = ilp_single_path(g, set, options);
  // Brute force over all assignments (2 candidates per opposite pair).
  double best = 1e18;
  std::vector<int> choice(set.candidates.size(), 0);
  std::function<void(std::size_t)> rec = [&](std::size_t k) {
    if (k == set.candidates.size()) {
      std::vector<double> load(static_cast<std::size_t>(g.num_edges()), 0.0);
      for (std::size_t i = 0; i < choice.size(); ++i) {
        for (const EdgeId e : set.candidates[i][static_cast<std::size_t>(choice[i])]) {
          load[static_cast<std::size_t>(e)] += 1.0;
        }
      }
      double peak = 0;
      for (const double l : load) peak = std::max(peak, l);
      best = std::min(best, peak);
      return;
    }
    for (std::size_t p = 0; p < set.candidates[k].size(); ++p) {
      choice[k] = static_cast<int>(p);
      rec(k + 1);
    }
  };
  rec(0);
  EXPECT_NEAR(result.max_load, best, 1e-9);
}

TEST(Baselines, IlpToleranceStopsEarly) {
  const DiGraph g = make_hypercube(3);
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  IlpOptions options;
  options.lower_bound = 4.0;
  options.tolerance = 0.5;  // generous: greedy already qualifies
  const auto result = ilp_single_path(g, set, options);
  EXPECT_TRUE(result.proved_optimal);
  EXPECT_LE(result.max_load, 4.0 * 1.5 + 1e-6);
}

TEST(Baselines, RankingMatchesPaperOnGenKautz) {
  // Fig. 8's ordering at one size: MCF <= pMCF-disjoint <= SSSP and EwSP
  // clearly above MCF.
  const DiGraph g = make_generalized_kautz(16, 4);
  const std::vector<NodeId> nodes = all_nodes(g);
  const double t_mcf = 1.0 / solve_master_lp(g, nodes).concurrent_flow;
  const double t_pmcf =
      1.0 / solve_path_mcf_exact(g, build_disjoint_path_set(g, nodes)).concurrent_flow;
  const double t_sssp = sssp_routes(g, nodes).max_link_load(g);
  const double t_ewsp = ewsp_max_link_load(g, nodes);
  EXPECT_LE(t_mcf, t_pmcf + 1e-6);
  EXPECT_LE(t_pmcf, t_sssp + 1e-6);
  EXPECT_GT(t_ewsp, t_mcf - 1e-6);
}

}  // namespace
}  // namespace a2a
