#include "schedule/validate.hpp"

#include <gtest/gtest.h>

#include "collectives/demand.hpp"
#include "graph/topologies.hpp"
#include "mcf/concurrent_flow.hpp"

namespace a2a {
namespace {

Chunk whole(NodeId s, NodeId d) {
  return Chunk{s, d, Rational(0), Rational(1)};
}

TEST(Validate, AcceptsDirectExchange) {
  const DiGraph g = make_complete(3);
  LinkSchedule sched;
  sched.num_nodes = 3;
  sched.num_steps = 1;
  for (NodeId s = 0; s < 3; ++s) {
    for (NodeId d = 0; d < 3; ++d) {
      if (s != d) sched.transfers.push_back(Transfer{whole(s, d), s, d, 1});
    }
  }
  EXPECT_TRUE(validate_link_schedule(g, sched, all_nodes(g)).ok);
}

TEST(Validate, RejectsNonEdgeHop) {
  const DiGraph g = make_ring(4);
  LinkSchedule sched;
  sched.num_nodes = 4;
  sched.num_steps = 1;
  sched.transfers.push_back(Transfer{whole(0, 2), 0, 2, 1});  // chord: not a link
  const auto result = validate_link_schedule(g, sched, {0, 2});
  EXPECT_FALSE(result.ok);
}

TEST(Validate, RejectsCausalityViolation) {
  const DiGraph g = make_ring(4);
  LinkSchedule sched;
  sched.num_nodes = 4;
  sched.num_steps = 2;
  // Forwarded from 1 at the same step it arrives there.
  sched.transfers.push_back(Transfer{whole(0, 2), 0, 1, 1});
  sched.transfers.push_back(Transfer{whole(0, 2), 1, 2, 1});
  sched.transfers.push_back(Transfer{whole(2, 0), 2, 3, 1});
  sched.transfers.push_back(Transfer{whole(2, 0), 3, 0, 2});
  const auto result = validate_link_schedule(g, sched, {0, 2});
  EXPECT_FALSE(result.ok);
  // Fixing the step ordering makes it valid.
  sched.transfers[1].step = 2;
  EXPECT_TRUE(validate_link_schedule(g, sched, {0, 2}).ok);
}

TEST(Validate, RejectsMissingShard) {
  const DiGraph g = make_complete(3);
  LinkSchedule sched;
  sched.num_nodes = 3;
  sched.num_steps = 1;
  sched.transfers.push_back(Transfer{whole(0, 1), 0, 1, 1});
  const auto result = validate_link_schedule(g, sched, all_nodes(g));
  EXPECT_FALSE(result.ok);  // 5 other shards never delivered
}

TEST(Validate, RejectsOverlappingChunks) {
  const DiGraph g = make_complete(2);
  LinkSchedule sched;
  sched.num_nodes = 2;
  sched.num_steps = 1;
  sched.transfers.push_back(
      Transfer{Chunk{0, 1, Rational(0), Rational(3, 4)}, 0, 1, 1});
  sched.transfers.push_back(
      Transfer{Chunk{0, 1, Rational(1, 2), Rational(1)}, 0, 1, 1});
  sched.transfers.push_back(Transfer{whole(1, 0), 1, 0, 1});
  EXPECT_FALSE(validate_link_schedule(g, sched, all_nodes(g)).ok);
}

TEST(Validate, AcceptsChunkedMultiStep) {
  const DiGraph g = make_ring(4);
  LinkSchedule sched;
  sched.num_nodes = 4;
  sched.num_steps = 2;
  // 0 -> 2 split into halves over the two ring directions.
  const Chunk left{0, 2, Rational(0), Rational(1, 2)};
  const Chunk right{0, 2, Rational(1, 2), Rational(1)};
  sched.transfers.push_back(Transfer{left, 0, 1, 1});
  sched.transfers.push_back(Transfer{left, 1, 2, 2});
  sched.transfers.push_back(Transfer{right, 0, 3, 1});
  sched.transfers.push_back(Transfer{right, 3, 2, 2});
  sched.transfers.push_back(Transfer{whole(2, 0), 2, 1, 1});
  sched.transfers.push_back(Transfer{whole(2, 0), 1, 0, 2});
  EXPECT_TRUE(validate_link_schedule(g, sched, {0, 2}).ok);
}

TEST(ValidatePath, RejectsIncompleteWeights) {
  const DiGraph g = make_ring(4);
  PathSchedule sched;
  sched.num_nodes = 4;
  sched.chunk_unit = Rational(1, 2);
  RouteEntry r;
  r.src = 0;
  r.dst = 1;
  r.path = {g.find_edge(0, 1)};
  r.weight = 0.5;
  r.num_chunks = 1;
  sched.entries.push_back(r);
  const auto result = validate_path_schedule(g, sched, {0, 1});
  EXPECT_FALSE(result.ok);  // weights sum to 0.5 and the 1->0 commodity is missing
}

TEST(ValidatePath, AcceptsCompleteSchedule) {
  const DiGraph g = make_ring(4);
  PathSchedule sched;
  sched.num_nodes = 4;
  sched.chunk_unit = Rational(1, 2);
  auto add = [&](NodeId s, NodeId d, const Path& p, double w, int chunks) {
    RouteEntry r;
    r.src = s;
    r.dst = d;
    r.path = p;
    r.weight = w;
    r.num_chunks = chunks;
    sched.entries.push_back(r);
  };
  add(0, 2, {g.find_edge(0, 1), g.find_edge(1, 2)}, 0.5, 1);
  add(0, 2, {g.find_edge(0, 3), g.find_edge(3, 2)}, 0.5, 1);
  add(2, 0, {g.find_edge(2, 1), g.find_edge(1, 0)}, 1.0, 2);
  EXPECT_TRUE(validate_path_schedule(g, sched, {0, 2}).ok);
}

// ---- demand-aware contracts -------------------------------------------------

TEST(ValidatePath, ZeroWeightCommodityMustHaveNoRoutes) {
  const DiGraph g = make_complete(3);
  // Demand over terminals {0, 1, 2}: only 0->1 and 1->0 move bytes.
  DemandMatrix demand(3, 0.0);
  demand.set(0, 1, 1.0);
  demand.set(1, 0, 1.0);
  PathSchedule sched;
  sched.num_nodes = 3;
  sched.chunk_unit = Rational(1);
  auto add = [&](NodeId s, NodeId d) {
    RouteEntry r;
    r.src = s;
    r.dst = d;
    r.path = {g.find_edge(s, d)};
    r.weight = 1.0;
    r.num_chunks = 1;
    sched.entries.push_back(r);
  };
  add(0, 1);
  add(1, 0);
  EXPECT_TRUE(validate_path_schedule(g, sched, all_nodes(g), &demand).ok);
  // A route on a zero-demand commodity is a contract violation, not slack.
  add(0, 2);
  EXPECT_FALSE(validate_path_schedule(g, sched, all_nodes(g), &demand).ok);
  // The same schedule also fails the legacy unit-demand contract (2->*
  // shards are missing), so the overloads agree on rejection here.
  EXPECT_FALSE(validate_path_schedule(g, sched, all_nodes(g)).ok);
}

TEST(ValidatePath, ChunkCountsScaleWithCommodityWeight) {
  // Regression for the unit-demand assumption round(1/unit): a weight-3
  // commodity ships 3x the chunks of a weight-1 commodity at the same unit,
  // and the validator must demand exactly that, commodity by commodity.
  const DiGraph g = make_complete(2);
  DemandMatrix demand(2, 0.0);
  demand.set(0, 1, 3.0);
  demand.set(1, 0, 1.0);
  PathSchedule sched;
  sched.num_nodes = 2;
  sched.chunk_unit = Rational(1, 2);
  auto add = [&](NodeId s, NodeId d, double w, int chunks) {
    RouteEntry r;
    r.src = s;
    r.dst = d;
    r.path = {g.find_edge(s, d)};
    r.weight = w;
    r.num_chunks = chunks;
    sched.entries.push_back(r);
  };
  add(0, 1, 3.0, 6);  // 3 shards at unit 1/2 -> 6 chunks
  add(1, 0, 1.0, 2);
  EXPECT_TRUE(validate_path_schedule(g, sched, all_nodes(g), &demand).ok);
  // Under-shipping the heavy commodity (unit-demand chunk count) must fail.
  sched.entries[0].num_chunks = 2;
  EXPECT_FALSE(validate_path_schedule(g, sched, all_nodes(g), &demand).ok);
}

TEST(ValidateLink, ZeroWeightShardMustShipNoChunks) {
  const DiGraph g = make_complete(3);
  DemandMatrix demand(3, 1.0);
  for (int d = 0; d < 3; ++d) {
    if (d != 2) demand.set(2, d, 0.0);  // rank 2 is a silent source
  }
  LinkSchedule sched;
  sched.num_nodes = 3;
  sched.num_steps = 1;
  for (NodeId s = 0; s < 2; ++s) {
    for (NodeId d = 0; d < 3; ++d) {
      if (s != d) sched.transfers.push_back(Transfer{whole(s, d), s, d, 1});
    }
  }
  EXPECT_TRUE(validate_link_schedule(g, sched, all_nodes(g), &demand).ok);
  // Chunks from the silenced source violate the demand contract.
  sched.transfers.push_back(Transfer{whole(2, 0), 2, 0, 1});
  EXPECT_FALSE(validate_link_schedule(g, sched, all_nodes(g), &demand).ok);
}

TEST(ValidateLink, WeightedShardMustTileToItsDemand) {
  const DiGraph g = make_complete(2);
  DemandMatrix demand(2, 0.0);
  demand.set(0, 1, 2.0);
  demand.set(1, 0, 1.0);
  LinkSchedule sched;
  sched.num_nodes = 2;
  sched.num_steps = 1;
  // 0->1 tiles [0, 2) in two unit chunks; 1->0 tiles [0, 1).
  sched.transfers.push_back(
      Transfer{Chunk{0, 1, Rational(0), Rational(1)}, 0, 1, 1});
  sched.transfers.push_back(
      Transfer{Chunk{0, 1, Rational(1), Rational(2)}, 0, 1, 1});
  sched.transfers.push_back(Transfer{whole(1, 0), 1, 0, 1});
  EXPECT_TRUE(validate_link_schedule(g, sched, all_nodes(g), &demand).ok);
  // Delivering only the unit prefix of the weight-2 shard must fail.
  sched.transfers.pop_back();
  sched.transfers.pop_back();
  sched.transfers.push_back(Transfer{whole(1, 0), 1, 0, 1});
  EXPECT_FALSE(validate_link_schedule(g, sched, all_nodes(g), &demand).ok);
}

}  // namespace
}  // namespace a2a
