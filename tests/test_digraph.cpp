#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace a2a {
namespace {

TEST(DiGraph, AddAndQueryEdges) {
  DiGraph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(e).from, 0);
  EXPECT_EQ(g.edge(e).to, 1);
  EXPECT_DOUBLE_EQ(g.edge(e).capacity, 2.5);
  EXPECT_EQ(g.find_edge(0, 1), e);
  EXPECT_EQ(g.find_edge(1, 0), -1);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(1), 1);
}

TEST(DiGraph, RejectsBadEdges) {
  DiGraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), InvalidArgument);   // self loop
  EXPECT_THROW(g.add_edge(0, 5), InvalidArgument);   // out of range
  EXPECT_THROW(g.add_edge(0, 1, -1.0), InvalidArgument);
}

TEST(DiGraph, BidiAddsBothArcs) {
  DiGraph g(2);
  g.add_bidi_edge(0, 1, 1.5);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_GE(g.find_edge(0, 1), 0);
  EXPECT_GE(g.find_edge(1, 0), 0);
}

TEST(DiGraph, ParallelEdgesAllowed) {
  DiGraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.out_degree(0), 2);
}

TEST(DiGraph, SetCapacity) {
  DiGraph g(2);
  const EdgeId e = g.add_edge(0, 1);
  g.set_capacity(e, 7.0);
  EXPECT_DOUBLE_EQ(g.edge(e).capacity, 7.0);
  EXPECT_THROW(g.set_capacity(e, -1.0), InvalidArgument);
}

TEST(DiGraph, WithoutEdges) {
  DiGraph g(3);
  const EdgeId a = g.add_edge(0, 1);
  g.add_edge(1, 2);
  const DiGraph h = g.without_edges({a});
  EXPECT_EQ(h.num_edges(), 1);
  EXPECT_EQ(h.edge(0).from, 1);
  EXPECT_EQ(h.edge(0).to, 2);
}

TEST(DiGraph, WithoutNodesRemapsDensely) {
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  std::vector<NodeId> remap;
  const DiGraph h = g.without_nodes({1}, &remap);
  EXPECT_EQ(h.num_nodes(), 3);
  EXPECT_EQ(h.num_edges(), 1);  // only 2->3 survives
  EXPECT_EQ(remap[0], 0);
  EXPECT_EQ(remap[1], -1);
  EXPECT_EQ(remap[2], 1);
  EXPECT_EQ(remap[3], 2);
}

TEST(DiGraph, MaxOutDegreeAndRegularity) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.max_out_degree(), 2);
  EXPECT_FALSE(g.is_regular(2));
}

TEST(DiGraph, Summary) {
  DiGraph g(5);
  g.add_edge(0, 1);
  EXPECT_EQ(g.summary(), "DiGraph(N=5, E=1)");
}

}  // namespace
}  // namespace a2a
