// Forrest–Tomlin factor-update tests: chains of SparseLu::update() against
// fresh refactorizations, the instability refusal path, the solver-level
// refactorization triggers, and the eta-vs-FT differential on the Fig. 7
// LPs.
#include "lp/sparse_lu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "lp/simplex.hpp"
#include "mcf/concurrent_flow.hpp"
#include "mcf/timestepped.hpp"

namespace a2a {
namespace {

/// Builds a well-conditioned n x n basis (diagonally dominant dense-ish
/// columns) plus `extra` replacement columns anchored on random rows, all in
/// one CSC container (the shape SimplexCore feeds SparseLu).
struct UpdateFixture {
  CscMatrix a;
  std::vector<int> basis;
  std::vector<int> replacements;

  UpdateFixture(Rng& rng, int n, int extra) : a(n) {
    basis.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      basis[static_cast<std::size_t>(j)] = a.begin_column();
      for (int r = 0; r < n; ++r) {
        a.push(r, (r == j ? 4.0 : 0.0) + rng.next_double() - 0.5);
      }
    }
    for (int e = 0; e < extra; ++e) {
      replacements.push_back(a.begin_column());
      const int anchor = rng.next_int(0, n);
      for (int r = 0; r < n; ++r) {
        a.push(r, (r == anchor ? 4.0 : 0.0) + rng.next_double() - 0.5);
      }
    }
  }
};

/// Max |B x - b| over a random b solved through `lu` (ftran), plus the
/// transposed residual through btran — the ground truth the factors must
/// reproduce regardless of how many updates they absorbed.
double worst_residual(const SparseLu& lu, const CscMatrix& a,
                      const std::vector<int>& basis, Rng& rng) {
  const int n = lu.size();
  std::vector<double> b(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) b[static_cast<std::size_t>(i)] = rng.next_double() - 0.5;
  std::vector<double> scratch;
  std::vector<double> x = b;
  lu.ftran(x, scratch);
  double worst = 0.0;
  std::vector<double> resid = b;
  for (int j = 0; j < n; ++j) {
    const int col = basis[static_cast<std::size_t>(j)];
    for (int k = a.col_begin(col); k < a.col_end(col); ++k) {
      resid[static_cast<std::size_t>(a.entry_row(k))] -=
          a.entry_value(k) * x[static_cast<std::size_t>(j)];
    }
  }
  for (int i = 0; i < n; ++i) worst = std::max(worst, std::abs(resid[static_cast<std::size_t>(i)]));
  std::vector<double> y = b;
  lu.btran(y, scratch);
  for (int j = 0; j < n; ++j) {
    double rj = b[static_cast<std::size_t>(j)];
    const int col = basis[static_cast<std::size_t>(j)];
    for (int k = a.col_begin(col); k < a.col_end(col); ++k) {
      rj -= a.entry_value(k) * y[static_cast<std::size_t>(a.entry_row(k))];
    }
    worst = std::max(worst, std::abs(rj));
  }
  return worst;
}

TEST(ForrestTomlin, LongUpdateChainMatchesFreshRefactorization) {
  Rng rng(20240715);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 24;
    UpdateFixture fx(rng, n, 80);
    SparseLu lu;
    lu.factor(fx.a, fx.basis, /*prepare_updates=*/true);
    std::vector<double> alpha(static_cast<std::size_t>(n));
    std::vector<double> scratch;
    std::vector<double> spike;
    int applied = 0;
    for (const int nc : fx.replacements) {
      const int pos = rng.next_int(0, n);
      std::fill(alpha.begin(), alpha.end(), 0.0);
      for (int k = fx.a.col_begin(nc); k < fx.a.col_end(nc); ++k) {
        alpha[static_cast<std::size_t>(fx.a.entry_row(k))] += fx.a.entry_value(k);
      }
      lu.ftran(alpha, scratch, &spike);
      if (!lu.update(pos, spike, 1e-9, 1e-12)) continue;
      fx.basis[static_cast<std::size_t>(pos)] = nc;
      ++applied;
      // The updated factors and a from-scratch factorization of the SAME
      // column set must agree on FTRAN and BTRAN against the real matrix.
      // The bar is loose enough for the conditioning that ~80 random column
      // replacements legitimately accumulate, tight enough to catch any
      // structural bug (which blows residuals past 1e-1 within a few
      // updates).
      EXPECT_LT(worst_residual(lu, fx.a, fx.basis, rng), 5e-6);
      SparseLu fresh;
      fresh.factor(fx.a, fx.basis);
      EXPECT_LT(worst_residual(fresh, fx.a, fx.basis, rng), 5e-6);
    }
    EXPECT_EQ(lu.updates(), applied);
    EXPECT_GT(applied, 60) << "well-conditioned replacements mostly accepted";
  }
}

TEST(ForrestTomlin, RefusesUnstableReplacementAndKeepsOldFactors) {
  Rng rng(7);
  const int n = 12;
  UpdateFixture fx(rng, n, 0);
  SparseLu lu;
  lu.factor(fx.a, fx.basis, /*prepare_updates=*/true);
  // Replacing position 3 with (a copy of) the basis column at position 5
  // makes the basis exactly singular: the transformed spike diagonal is
  // zero and the update must refuse.
  std::vector<double> alpha(static_cast<std::size_t>(n), 0.0);
  const int dup = fx.basis[5];
  for (int k = fx.a.col_begin(dup); k < fx.a.col_end(dup); ++k) {
    alpha[static_cast<std::size_t>(fx.a.entry_row(k))] += fx.a.entry_value(k);
  }
  std::vector<double> scratch;
  std::vector<double> spike;
  lu.ftran(alpha, scratch, &spike);
  EXPECT_FALSE(lu.update(3, spike, 1e-9, 1e-12));
  EXPECT_EQ(lu.updates(), 0);
  // Refusal is transactional: the factors still solve the OLD basis.
  EXPECT_LT(worst_residual(lu, fx.a, fx.basis, rng), 1e-10);
}

TEST(ForrestTomlin, UpdateRequiresPreparation) {
  Rng rng(3);
  const int n = 6;
  UpdateFixture fx(rng, n, 1);
  SparseLu lu;
  lu.factor(fx.a, fx.basis, /*prepare_updates=*/false);
  std::vector<double> spike(static_cast<std::size_t>(n), 0.0);
  EXPECT_THROW((void)lu.update(0, spike, 1e-9, 1e-12), Error);
}

// ---- solver-level: eta vs FT differential and refactorization triggers -----

SimplexOptions with_update(LpBasisUpdate update) {
  SimplexOptions o;
  o.basis_update = update;
  o.presolve = false;  // isolate the factor-update machinery
  return o;
}

TEST(ForrestTomlin, EtaAndFtAgreeOnFig7Lps) {
  const DiGraph gk = make_generalized_kautz(10, 4);
  const DiGraph hc = make_hypercube(3);
  const std::vector<LpModel> models = {
      build_link_mcf_model(gk, TerminalPairs(all_nodes(gk))),
      build_tsmcf_model(hc, diameter(hc) + 1, TerminalPairs(all_nodes(hc))),
  };
  for (const LpModel& model : models) {
    const LpSolution eta = solve_lp(model, with_update(LpBasisUpdate::kEta));
    const LpSolution ft =
        solve_lp(model, with_update(LpBasisUpdate::kForrestTomlin));
    ASSERT_TRUE(eta.optimal());
    ASSERT_TRUE(ft.optimal());
    EXPECT_NEAR(eta.objective, ft.objective,
                1e-7 * std::max(1.0, std::abs(eta.objective)));
  }
}

TEST(ForrestTomlin, ForcedRefactorizationTriggersStillSolve) {
  const DiGraph g = make_generalized_kautz(8, 4);
  const LpModel model = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  const double reference =
      solve_lp(model, with_update(LpBasisUpdate::kEta)).objective;
  // Instability trigger: a diag tolerance so strict every update is refused
  // and the solver refactorizes on each pivot.
  SimplexOptions paranoid = with_update(LpBasisUpdate::kForrestTomlin);
  paranoid.ft_diag_tol = 0.99;
  const LpSolution s1 = solve_lp(model, paranoid);
  ASSERT_TRUE(s1.optimal());
  EXPECT_NEAR(s1.objective, reference, 1e-7);
  // Fill-growth trigger pinned to fire almost immediately.
  SimplexOptions tight_fill = with_update(LpBasisUpdate::kForrestTomlin);
  tight_fill.refactor_fill_growth = 1.001;
  const LpSolution s2 = solve_lp(model, tight_fill);
  ASSERT_TRUE(s2.optimal());
  EXPECT_NEAR(s2.objective, reference, 1e-7);
  // Update-count backstop of one: refactorize after every single update.
  SimplexOptions one = with_update(LpBasisUpdate::kForrestTomlin);
  one.ft_update_limit = 1;
  const LpSolution s3 = solve_lp(model, one);
  ASSERT_TRUE(s3.optimal());
  EXPECT_NEAR(s3.objective, reference, 1e-7);
}

TEST(ForrestTomlin, WarmDualResolvesAgreeAcrossUpdateModes) {
  // The Fig. 9 shape: optimal basis, then capacities collapse and the dual
  // simplex re-solves warm — in both factor-update modes, with the same
  // objectives as a cold solve of the perturbed instance.
  const DiGraph base = make_generalized_kautz(10, 4);
  const auto nodes = all_nodes(base);
  for (const LpBasisUpdate update :
       {LpBasisUpdate::kEta, LpBasisUpdate::kForrestTomlin}) {
    SimplexOptions o = with_update(update);
    LpBasis warm;
    const LpSolution first =
        solve_lp_warm(build_link_mcf_model(base, TerminalPairs(nodes)), o,
                      &warm, LpWarmMode::kAuto);
    ASSERT_TRUE(first.optimal());
    DiGraph g = base;
    Rng rng(99);
    for (int hit = 0; hit < 3; ++hit) {
      g.set_capacity(static_cast<EdgeId>(rng.next_below(
                         static_cast<std::uint64_t>(g.num_edges()))),
                     1e-6);
    }
    const LpModel perturbed = build_link_mcf_model(g, TerminalPairs(nodes));
    const LpSolution cold = solve_lp(perturbed, o);
    const LpSolution dual =
        solve_lp(perturbed, o, &warm, LpWarmMode::kDual);
    ASSERT_TRUE(cold.optimal());
    ASSERT_TRUE(dual.optimal());
    EXPECT_TRUE(dual.warm_started);
    EXPECT_NEAR(cold.objective, dual.objective,
                1e-6 * std::max(1.0, std::abs(cold.objective)));
  }
}

}  // namespace
}  // namespace a2a
