// SchedBin container round trips, codecs, and integrity checks.
#include "container/schedbin.hpp"

#include <gtest/gtest.h>

#include "common/binio.hpp"
#include "common/crc32.hpp"
#include "common/random.hpp"
#include "common/thread_pool.hpp"
#include "common/varint.hpp"
#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "mcf/timestepped.hpp"
#include "runtime/vc.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/compile_path.hpp"
#include "schedule/validate.hpp"
#include "schedule/xml_io.hpp"

namespace a2a {
namespace {

constexpr SchedBinCodec kAllCodecs[] = {SchedBinCodec::kRaw,
                                        SchedBinCodec::kRle,
                                        SchedBinCodec::kDelta,
                                        SchedBinCodec::kDict};

void expect_link_equal(const LinkSchedule& a, const LinkSchedule& b) {
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.num_steps, b.num_steps);
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    EXPECT_EQ(a.transfers[i].chunk, b.transfers[i].chunk);
    EXPECT_EQ(a.transfers[i].from, b.transfers[i].from);
    EXPECT_EQ(a.transfers[i].to, b.transfers[i].to);
    EXPECT_EQ(a.transfers[i].step, b.transfers[i].step);
  }
}

void expect_path_equal(const PathSchedule& a, const PathSchedule& b) {
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.chunk_unit, b.chunk_unit);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].src, b.entries[i].src);
    EXPECT_EQ(a.entries[i].dst, b.entries[i].dst);
    EXPECT_EQ(a.entries[i].path, b.entries[i].path);
    // Bit-exact, unlike the XML dialect's rational snapping.
    EXPECT_EQ(a.entries[i].weight, b.entries[i].weight);
    EXPECT_EQ(a.entries[i].num_chunks, b.entries[i].num_chunks);
    EXPECT_EQ(a.entries[i].layer, b.entries[i].layer);
  }
}

/// A random (not necessarily valid) link schedule exercising negative ids,
/// large rationals, and repeated values.
LinkSchedule random_link_schedule(Rng& rng, int transfers) {
  LinkSchedule s;
  s.num_nodes = rng.next_int(1, 1000);
  s.num_steps = rng.next_int(1, 100);
  for (int i = 0; i < transfers; ++i) {
    Transfer t;
    t.chunk.src = rng.next_int(0, s.num_nodes);
    t.chunk.dst = rng.next_int(0, s.num_nodes);
    const std::int64_t den = rng.next_int(1, 360);
    const std::int64_t lo = rng.next_int(0, static_cast<int>(den));
    t.chunk.lo = Rational(lo, den);
    t.chunk.hi = Rational(lo + rng.next_int(1, 24), den * rng.next_int(1, 4));
    t.from = rng.next_int(0, s.num_nodes);
    t.to = rng.next_int(0, s.num_nodes);
    t.step = rng.next_int(1, s.num_steps + 1);
    s.transfers.push_back(t);
  }
  return s;
}

/// A random path schedule on `g` whose routes are real random walks, so the
/// node-sequence -> edge-id resolution on decode is exercised.
PathSchedule random_path_schedule(const DiGraph& g, Rng& rng, int routes) {
  PathSchedule s;
  s.num_nodes = g.num_nodes();
  s.chunk_unit = Rational(1, rng.next_int(1, 48));
  for (int i = 0; i < routes; ++i) {
    RouteEntry e;
    NodeId u = rng.next_int(0, g.num_nodes());
    e.src = u;
    const int hops = rng.next_int(1, 5);
    for (int h = 0; h < hops; ++h) {
      const auto& out = g.out_edges(u);
      if (out.empty()) break;
      const EdgeId edge =
          out[static_cast<std::size_t>(rng.next_int(0, static_cast<int>(out.size())))];
      e.path.push_back(edge);
      u = g.edge(edge).to;
    }
    if (e.path.empty()) continue;
    e.dst = u;
    e.weight = rng.next_double();
    e.num_chunks = rng.next_int(1, 64);
    e.layer = rng.next_int(0, 4);
    s.entries.push_back(std::move(e));
  }
  return s;
}

TEST(Varint, RoundTripsEdgeValues) {
  const std::int64_t values[] = {0,  1,  -1, 63, 64, -64, -65, 1'000'000,
                                 INT64_MAX, INT64_MIN, INT64_MIN + 1};
  std::string buf;
  for (const std::int64_t v : values) append_svarint(buf, v);
  std::size_t pos = 0;
  for (const std::int64_t v : values) {
    EXPECT_EQ(read_svarint(buf.data(), buf.size(), pos), v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncatedInputThrows) {
  std::string buf;
  append_uvarint(buf, 1'000'000);
  std::size_t pos = 0;
  EXPECT_THROW((void)read_uvarint(buf.data(), buf.size() - 1, pos),
               InvalidArgument);
}

TEST(Crc32, MatchesKnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  // Accumulation across buffers equals one-shot.
  const std::uint32_t partial = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, partial), 0xCBF43926u);
}

TEST(SchedBin, EmptyLinkScheduleRoundTripsUnderEveryCodec) {
  LinkSchedule empty;
  empty.num_nodes = 8;
  empty.num_steps = 3;
  for (const SchedBinCodec codec : kAllCodecs) {
    SchedBinOptions options;
    options.codec = codec;
    const std::string bytes = link_schedule_to_schedbin(empty, options);
    expect_link_equal(link_schedule_from_schedbin(bytes), empty);
    const SchedBinInfo info = schedbin_inspect(bytes);
    EXPECT_EQ(info.kind, SchedBinKind::kLink);
    EXPECT_EQ(info.record_count, 0u);
    EXPECT_EQ(info.num_chunks, 0u);
  }
}

TEST(SchedBin, EmptyPathScheduleRoundTripsUnderEveryCodec) {
  const DiGraph g = make_ring(4);
  PathSchedule empty;
  empty.num_nodes = 4;
  empty.chunk_unit = Rational(1, 6);
  for (const SchedBinCodec codec : kAllCodecs) {
    SchedBinOptions options;
    options.codec = codec;
    const std::string bytes = path_schedule_to_schedbin(g, empty, options);
    expect_path_equal(path_schedule_from_schedbin(g, bytes), empty);
  }
}

TEST(SchedBin, SingleTransferRoundTrips) {
  LinkSchedule s;
  s.num_nodes = 2;
  s.num_steps = 1;
  Transfer t;
  t.chunk = Chunk{0, 1, Rational(0), Rational(1)};
  t.from = 0;
  t.to = 1;
  t.step = 1;
  s.transfers.push_back(t);
  for (const SchedBinCodec codec : kAllCodecs) {
    SchedBinOptions options;
    options.codec = codec;
    expect_link_equal(
        link_schedule_from_schedbin(link_schedule_to_schedbin(s, options)), s);
  }
}

TEST(SchedBin, RandomLinkSchedulesRoundTripUnderEveryCodec) {
  Rng rng(20240731);
  for (int trial = 0; trial < 10; ++trial) {
    const LinkSchedule s = random_link_schedule(rng, rng.next_int(0, 500));
    for (const SchedBinCodec codec : kAllCodecs) {
      SchedBinOptions options;
      options.codec = codec;
      options.chunk_words = 256;  // force multiple chunks
      expect_link_equal(
          link_schedule_from_schedbin(link_schedule_to_schedbin(s, options)),
          s);
    }
  }
}

TEST(SchedBin, RandomPathSchedulesRoundTripUnderEveryCodec) {
  Rng rng(42);
  const DiGraph g = make_hypercube(4);
  for (int trial = 0; trial < 10; ++trial) {
    const PathSchedule s = random_path_schedule(g, rng, rng.next_int(0, 200));
    for (const SchedBinCodec codec : kAllCodecs) {
      SchedBinOptions options;
      options.codec = codec;
      options.chunk_words = 128;
      expect_path_equal(
          path_schedule_from_schedbin(g, path_schedule_to_schedbin(g, s, options)),
          s);
    }
  }
}

TEST(SchedBin, CompiledScheduleRoundTripsAndStillValidates) {
  const DiGraph g = make_ring(4);
  const auto ts = solve_tsmcf_exact(g, 3, all_nodes(g));
  const LinkSchedule sched = compile_tsmcf_schedule(g, ts);
  const std::string bytes = link_schedule_to_schedbin(sched);
  const LinkSchedule parsed = link_schedule_from_schedbin(bytes);
  expect_link_equal(parsed, sched);
  EXPECT_TRUE(validate_link_schedule(g, parsed, all_nodes(g)).ok);
}

TEST(SchedBin, CompiledPathScheduleRoundTripsAndStillValidates) {
  const DiGraph g = make_hypercube(3);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  PathSchedule sched = compile_path_schedule(g, paths_from_link_flows(g, flows));
  assign_layers(g, sched);
  const std::string bytes = path_schedule_to_schedbin(g, sched);
  const PathSchedule parsed = path_schedule_from_schedbin(g, bytes);
  expect_path_equal(parsed, sched);
  EXPECT_TRUE(validate_path_schedule(g, parsed, all_nodes(g)).ok);
}

TEST(SchedBin, ParallelAndSerialProduceIdenticalBytes) {
  Rng rng(7);
  const LinkSchedule s = random_link_schedule(rng, 2000);
  ThreadPool pool(4);
  for (const SchedBinCodec codec : kAllCodecs) {
    SchedBinOptions serial;
    serial.codec = codec;
    serial.chunk_words = 128;  // ~140 chunks
    SchedBinOptions parallel = serial;
    parallel.pool = &pool;
    const std::string a = link_schedule_to_schedbin(s, serial);
    const std::string b = link_schedule_to_schedbin(s, parallel);
    EXPECT_EQ(a, b);
    expect_link_equal(link_schedule_from_schedbin(b, &pool), s);
  }
}

TEST(SchedBin, DeltaBeatsXmlOnRealSchedules) {
  const DiGraph g = make_generalized_kautz(16, 4);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  PathSchedule sched = compile_path_schedule(g, paths_from_link_flows(g, flows));
  const std::string xml = path_schedule_to_xml(g, sched);
  SchedBinOptions options;
  options.codec = SchedBinCodec::kDelta;
  const std::string bin = path_schedule_to_schedbin(g, sched, options);
  EXPECT_LT(bin.size() * 5, xml.size())
      << "schedbin=" << bin.size() << " xml=" << xml.size();
}

TEST(SchedBin, CorruptedPayloadFailsCrc) {
  Rng rng(11);
  const LinkSchedule s = random_link_schedule(rng, 100);
  std::string bytes = link_schedule_to_schedbin(s);
  ASSERT_GT(bytes.size(), 60u);
  bytes[bytes.size() - 1] ^= 0x40;  // flip a payload bit
  EXPECT_THROW((void)link_schedule_from_schedbin(bytes), InvalidArgument);
  EXPECT_THROW((void)schedbin_inspect(bytes), InvalidArgument);
}

TEST(SchedBin, TruncatedAndForeignBlobsRejected) {
  Rng rng(12);
  const LinkSchedule s = random_link_schedule(rng, 50);
  const std::string bytes = link_schedule_to_schedbin(s);
  EXPECT_THROW((void)link_schedule_from_schedbin(bytes.substr(0, 20)),
               InvalidArgument);
  EXPECT_THROW((void)link_schedule_from_schedbin(bytes.substr(0, bytes.size() - 3)),
               InvalidArgument);
  EXPECT_THROW((void)link_schedule_from_schedbin("not a schedbin at all"),
               InvalidArgument);
  // Kind mismatch: a link container is not a path container.
  const DiGraph g = make_ring(4);
  EXPECT_THROW((void)path_schedule_from_schedbin(g, bytes), InvalidArgument);
}

TEST(SchedBin, PathDecodeRejectsNonEdgeRoute) {
  // Encode against a hypercube, decode against a ring missing those edges.
  Rng rng(13);
  const DiGraph cube = make_hypercube(3);
  PathSchedule s = random_path_schedule(cube, rng, 40);
  ASSERT_FALSE(s.entries.empty());
  const std::string bytes = path_schedule_to_schedbin(cube, s);
  const DiGraph ring = make_ring(8);
  EXPECT_THROW((void)path_schedule_from_schedbin(ring, bytes), InvalidArgument);
}

// ---- hostile / corrupt frame hardening -------------------------------------

/// Builds a syntactically well-formed v1 link-kind container from raw
/// parts: header fields as given, one directory entry + CRC per payload.
std::string forge_container(SchedBinCodec codec, std::uint64_t word_count,
                            std::uint32_t chunk_words,
                            const std::vector<std::string>& payloads) {
  std::string out;
  out.append(kSchedBinMagic, sizeof(kSchedBinMagic));
  binio::put_u16(out, kSchedBinVersion1);
  out.push_back(static_cast<char>(SchedBinKind::kLink));
  out.push_back(static_cast<char>(codec));
  binio::put_u32(out, 4);   // num_nodes
  binio::put_u32(out, 1);   // num_steps
  binio::put_u64(out, word_count / 9);  // record_count (immaterial here)
  binio::put_u64(out, word_count);
  binio::put_u64(out, 0);   // chunk_unit num
  binio::put_u64(out, 1);   // chunk_unit den
  binio::put_u32(out, chunk_words);
  binio::put_u32(out, static_cast<std::uint32_t>(payloads.size()));
  for (const std::string& p : payloads) {
    binio::put_u32(out, static_cast<std::uint32_t>(p.size()));
    binio::put_u32(out, crc32(p.data(), p.size()));
  }
  for (const std::string& p : payloads) out.append(p);
  return out;
}

TEST(SchedBinHardening, HugeDeclaredDecodeIsRefusedBeforeAllocation) {
  // 256 five-byte rle chunks claiming 2^24 words each: a ~1.3 KiB blob
  // whose declared decoded size is 32 GiB. The reader must refuse on the
  // decode budget — instantly, not after attempting the allocation.
  const std::uint32_t chunk_words = 1u << 24;
  std::string run;
  append_svarint(run, 0);
  append_uvarint(run, chunk_words);
  const std::vector<std::string> payloads(256, run);
  const std::string blob =
      forge_container(SchedBinCodec::kRle,
                      static_cast<std::uint64_t>(chunk_words) * 256,
                      chunk_words, payloads);
  EXPECT_LT(blob.size(), 4096u);
  EXPECT_THROW((void)schedbin_inspect(blob), InvalidArgument);
  EXPECT_THROW((void)link_schedule_from_schedbin(blob), InvalidArgument);
  // An explicit (absurd) budget lets the same container through the clamp
  // and into the ordinary decode path (which then rejects the word/record
  // mismatch) — proving the refusal above came from the budget.
  EXPECT_NO_THROW((void)schedbin_inspect(blob, 1ULL << 40));
}

TEST(SchedBinHardening, ChunkWordsAboveCeilingRejected) {
  const std::string blob = forge_container(
      SchedBinCodec::kRle, 1, 0xFFFFFFFFu, {std::string("\x00\x01", 2)});
  EXPECT_THROW((void)schedbin_inspect(blob), InvalidArgument);
  SchedBinOptions options;
  options.chunk_words = kSchedBinMaxChunkWords + 1;
  Rng rng(3);
  const LinkSchedule s = random_link_schedule(rng, 4);
  EXPECT_THROW((void)link_schedule_to_schedbin(s, options), InvalidArgument);
}

TEST(SchedBinHardening, PayloadTooSmallForDeclaredWordsRejected) {
  // Delta codec needs >= 1 byte per word; a chunk declaring 100 words from
  // a 10-byte payload is structurally corrupt and must fail in the parse,
  // before any decoder sizes its output from the header.
  std::string payload(10, '\0');  // ten valid zero svarints
  const std::string blob =
      forge_container(SchedBinCodec::kDelta, 100, 128, {payload});
  EXPECT_THROW((void)schedbin_inspect(blob), InvalidArgument);
  EXPECT_THROW((void)link_schedule_from_schedbin(blob), InvalidArgument);
}

TEST(SchedBinHardening, RawChunkSizeMustBeExact) {
  std::string payload(7 * 8 + 3, '\0');  // not a multiple of a word
  const std::string blob =
      forge_container(SchedBinCodec::kRaw, 9, 16, {payload});
  EXPECT_THROW((void)schedbin_inspect(blob), InvalidArgument);
}

TEST(SchedBinHardening, RleRunOverflowingChunkRejected) {
  // One run claiming more words than the chunk declares: the rle decoder's
  // growth clamp must throw instead of writing past the declared size.
  std::string run;
  append_svarint(run, 7);
  append_uvarint(run, 1000);  // chunk declares only 16 words
  const std::string blob = forge_container(SchedBinCodec::kRle, 16, 16, {run});
  EXPECT_THROW((void)link_schedule_from_schedbin(blob), InvalidArgument);
}

TEST(SchedBinHardening, LegitimateLargeRleStillDecodes) {
  // The clamps must not reject honest high-ratio RLE: a constant 200k-word
  // schedule compresses to a handful of runs and still round-trips.
  LinkSchedule s;
  s.num_nodes = 2;
  s.num_steps = 1;
  s.transfers.assign(20000, Transfer{{0, 1, Rational(0), Rational(1)}, 0, 1, 1});
  SchedBinOptions options;
  options.codec = SchedBinCodec::kRle;
  const std::string bytes = link_schedule_to_schedbin(s, options);
  EXPECT_LT(bytes.size(), 4096u);
  const LinkSchedule back = link_schedule_from_schedbin(bytes);
  EXPECT_EQ(back.transfers.size(), s.transfers.size());
}

TEST(SchedBin, InspectReportsGeometry) {
  Rng rng(14);
  const LinkSchedule s = random_link_schedule(rng, 300);
  SchedBinOptions options;
  options.codec = SchedBinCodec::kRle;
  options.chunk_words = 512;
  const std::string bytes = link_schedule_to_schedbin(s, options);
  const SchedBinInfo info = schedbin_inspect(bytes);
  EXPECT_EQ(info.version, kSchedBinVersion2);
  EXPECT_EQ(info.kind, SchedBinKind::kLink);
  EXPECT_EQ(info.codec, SchedBinCodec::kRle);
  EXPECT_EQ(info.num_nodes, s.num_nodes);
  EXPECT_EQ(info.num_steps, s.num_steps);
  EXPECT_EQ(info.record_count, s.transfers.size());
  EXPECT_EQ(info.word_count, s.transfers.size() * 9);
  EXPECT_EQ(info.num_chunks, (info.word_count + 511) / 512);
  EXPECT_EQ(info.total_bytes, bytes.size());
}

}  // namespace
}  // namespace a2a
