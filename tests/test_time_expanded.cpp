#include "graph/time_expanded.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"

namespace a2a {
namespace {

TEST(TimeExpanded, ShapeAndIndexing) {
  const DiGraph g = make_ring(4);  // N=4, E=8
  const auto te = make_time_expanded(g, 3);
  EXPECT_EQ(te.graph.num_nodes(), 4 * 4);
  EXPECT_EQ(te.graph.num_edges(), 3 * (8 + 4));  // fabric + wait arcs
  EXPECT_EQ(te.node_at(2, 0), 2);
  EXPECT_EQ(te.node_at(1, 3), 13);
  EXPECT_EQ(te.base_node(13), 1);
  EXPECT_EQ(te.time_of(13), 3);
}

TEST(TimeExpanded, FabricEdgesCrossTimeSteps) {
  const DiGraph g = make_ring(3);
  const auto te = make_time_expanded(g, 2);
  for (EdgeId e = 0; e < te.graph.num_edges(); ++e) {
    const Edge& edge = te.graph.edge(e);
    EXPECT_EQ(te.time_of(edge.to), te.time_of(edge.from) + 1);
    const EdgeId fabric = te.fabric_edge[static_cast<std::size_t>(e)];
    if (fabric >= 0) {
      EXPECT_EQ(te.base_node(edge.from), g.edge(fabric).from);
      EXPECT_EQ(te.base_node(edge.to), g.edge(fabric).to);
      EXPECT_DOUBLE_EQ(edge.capacity, g.edge(fabric).capacity);
    } else {
      EXPECT_EQ(te.base_node(edge.from), te.base_node(edge.to));
      EXPECT_DOUBLE_EQ(edge.capacity, TimeExpandedGraph::kWaitCapacity);
    }
  }
}

TEST(TimeExpanded, ReachabilityMatchesHopDistance) {
  const DiGraph g = make_ring(6);  // diameter 3
  const auto te = make_time_expanded(g, 3);
  const auto dist = bfs_distances(te.graph, te.node_at(0, 0));
  // Node at hop distance k is reachable at layer k (via k fabric hops).
  const auto base_dist = bfs_distances(g, 0);
  for (NodeId u = 0; u < 6; ++u) {
    const int k = base_dist[static_cast<std::size_t>(u)];
    EXPECT_NE(dist[static_cast<std::size_t>(te.node_at(u, 3))], kUnreachable);
    if (k > 0) {
      // Not reachable strictly before its hop distance.
      for (int t = 0; t < k; ++t) {
        EXPECT_EQ(dist[static_cast<std::size_t>(te.node_at(u, t))], kUnreachable)
            << "u=" << u << " t=" << t;
      }
    }
  }
}

TEST(TimeExpanded, RejectsZeroSteps) {
  EXPECT_THROW(make_time_expanded(make_ring(3), 0), InvalidArgument);
}

}  // namespace
}  // namespace a2a
