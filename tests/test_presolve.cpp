// Presolve/postsolve layer tests: the individual reductions, infeasibility
// and unboundedness detection, postsolved solution/basis fidelity, and warm
// bases threading through the presolved path.
#include "lp/presolve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "mcf/concurrent_flow.hpp"
#include "mcf/timestepped.hpp"

namespace a2a {
namespace {

SimplexOptions no_presolve() {
  SimplexOptions o;
  o.presolve = false;
  return o;
}

/// |A x - rhs| feasibility of `values` against every row of `model`.
void expect_feasible(const LpModel& model, const std::vector<double>& values,
                     double tol) {
  ASSERT_EQ(static_cast<int>(values.size()), model.num_variables());
  std::vector<double> activity(static_cast<std::size_t>(model.num_rows()), 0.0);
  for (int j = 0; j < model.num_variables(); ++j) {
    EXPECT_GE(values[static_cast<std::size_t>(j)], model.lower(j) - tol);
    EXPECT_LE(values[static_cast<std::size_t>(j)], model.upper(j) + tol);
    for (const auto& e : model.column(j)) {
      activity[static_cast<std::size_t>(e.row)] +=
          e.value * values[static_cast<std::size_t>(j)];
    }
  }
  for (int r = 0; r < model.num_rows(); ++r) {
    const double a = activity[static_cast<std::size_t>(r)];
    const double b = model.rhs(r);
    const double rtol = tol * std::max(1.0, std::abs(b));
    switch (model.row_type(r)) {
      case RowType::kLessEqual: EXPECT_LE(a, b + rtol); break;
      case RowType::kGreaterEqual: EXPECT_GE(a, b - rtol); break;
      case RowType::kEqual: EXPECT_NEAR(a, b, rtol); break;
    }
  }
}

TEST(Presolve, FixedVariableSubstitutesIntoRhs) {
  // min x + 2z + y  s.t.  x + z + y >= 4, x - z <= 1, with y fixed to 1 by
  // its bounds: y substitutes into the first rhs (4 -> 3) and two coupled
  // variables survive, so the reduction stops at a smaller model instead of
  // solving outright.
  LpModel m(Sense::kMinimize);
  const int x = m.add_variable(0, kInfinity, 1);
  const int z = m.add_variable(0, kInfinity, 2);
  const int y = m.add_variable(1, 1, 1);
  const int r = m.add_row(RowType::kGreaterEqual, 4);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, z, 1);
  m.add_coefficient(r, y, 1);
  const int r2 = m.add_row(RowType::kLessEqual, 1);
  m.add_coefficient(r2, x, 1);
  m.add_coefficient(r2, z, -1);
  Presolve pre;
  ASSERT_EQ(pre.run(m, {}), Presolve::Result::kReduced);
  EXPECT_EQ(pre.stats().fixed_variables, 1);
  EXPECT_EQ(pre.reduced().num_variables(), 2);
  EXPECT_NEAR(pre.reduced().rhs(0), 3.0, 1e-12);
  // x + z >= 3, x - z <= 1: optimum x = 2, z = 1 -> 2 + 2 + 1 = 5.
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 1.0, 1e-12);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 2.0, 1e-7);
}

TEST(Presolve, SingletonRowBecomesBound) {
  // max x + y  s.t.  x <= 2 (a singleton row), x + y <= 3.
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(0, kInfinity, 1);
  const int y = m.add_variable(0, kInfinity, 1);
  m.add_coefficient(m.add_row(RowType::kLessEqual, 2), x, 1);
  const int r = m.add_row(RowType::kLessEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  Presolve pre;
  ASSERT_EQ(pre.run(m, {}), Presolve::Result::kReduced);
  EXPECT_EQ(pre.stats().singleton_rows, 1);
  EXPECT_EQ(pre.reduced().num_rows(), 1);
  EXPECT_NEAR(pre.reduced().upper(0), 2.0, 1e-12);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(Presolve, SingletonEqualityCascadesToFix) {
  // 2x = 6 fixes x = 3; substitution turns the coupled row into a bound on
  // y; everything reduces away.
  LpModel m(Sense::kMinimize);
  const int x = m.add_variable(0, kInfinity, 1);
  const int y = m.add_variable(0, kInfinity, 2);
  m.add_coefficient(m.add_row(RowType::kEqual, 6), x, 2);
  const int r = m.add_row(RowType::kGreaterEqual, 5);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 3.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, 7.0, 1e-9);
  EXPECT_EQ(s.iterations, 0) << "fully presolved: no simplex pivots at all";
}

TEST(Presolve, DetectsInfeasibleSingletonAndEmptyRows) {
  {
    // x <= 1 and x >= 3 through singleton rows.
    LpModel m(Sense::kMinimize);
    const int x = m.add_variable(0, kInfinity, 1);
    m.add_coefficient(m.add_row(RowType::kLessEqual, 1), x, 1);
    m.add_coefficient(m.add_row(RowType::kGreaterEqual, 3), x, 1);
    EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
  }
  {
    // A fixed variable empties a row into 2 <= 1: infeasible.
    LpModel m(Sense::kMinimize);
    const int x = m.add_variable(2, 2, 0);
    m.add_coefficient(m.add_row(RowType::kLessEqual, 1), x, 1);
    EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
  }
}

TEST(Presolve, DetectsUnboundedAfterFullReduction) {
  // The only row is satisfied by the fixed variable; y has negative min-cost
  // direction and no upper bound.
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(1, 1, 0);
  const int y = m.add_variable(0, kInfinity, 1);
  m.add_coefficient(m.add_row(RowType::kLessEqual, 2), x, 1);
  (void)y;
  EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(Presolve, PostsolvedBasisReimportsCleanly) {
  // Solve a reducible MCF LP with presolve, feed the exported full-model
  // basis back as a warm start: it must be adopted and re-solve in O(1)
  // pivots.
  const DiGraph g = make_generalized_kautz(8, 4);
  const LpModel model = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  const LpSolution first = solve_lp(model);
  ASSERT_TRUE(first.optimal());
  ASSERT_TRUE(first.basis.compatible(model.num_variables(), model.num_rows()));
  const LpSolution second = solve_lp(model, {}, &first.basis, LpWarmMode::kAuto);
  ASSERT_TRUE(second.optimal());
  EXPECT_TRUE(second.warm_started);
  EXPECT_NEAR(first.objective, second.objective, 1e-9);
  EXPECT_LE(second.iterations, first.iterations / 4)
      << "warm re-solve through presolve should be near-free";
}

TEST(Presolve, OnAndOffAgreeOnMcfModels) {
  const DiGraph gk = make_generalized_kautz(10, 4);
  const DiGraph hc = make_hypercube(3);
  const std::vector<LpModel> models = {
      build_link_mcf_model(gk, TerminalPairs(all_nodes(gk))),
      build_tsmcf_model(hc, diameter(hc) + 1, TerminalPairs(all_nodes(hc))),
  };
  for (const LpModel& model : models) {
    const LpSolution off = solve_lp(model, no_presolve());
    const LpSolution on = solve_lp(model);
    ASSERT_TRUE(off.optimal());
    ASSERT_TRUE(on.optimal());
    EXPECT_NEAR(off.objective, on.objective,
                1e-7 * std::max(1.0, std::abs(off.objective)));
    expect_feasible(model, on.values, 1e-6);
  }
}

TEST(Presolve, WarmBasisThreadsThroughPerturbedResolves) {
  // The Fig. 9 pattern under presolve: the reductions are structural, so
  // the full-model basis maps into every scenario's reduced space and the
  // dual-warm re-solve stays cheaper than cold.
  const DiGraph base = make_generalized_kautz(10, 4);
  const auto nodes = all_nodes(base);
  LpBasis warm;
  const LpSolution first = solve_lp_warm(
      build_link_mcf_model(base, TerminalPairs(nodes)), {}, &warm);
  ASSERT_TRUE(first.optimal());
  Rng rng(4242);
  DiGraph g = base;
  for (int hit = 0; hit < 2; ++hit) {
    g.set_capacity(static_cast<EdgeId>(rng.next_below(
                       static_cast<std::uint64_t>(g.num_edges()))),
                   1e-6);
  }
  const LpModel perturbed = build_link_mcf_model(g, TerminalPairs(nodes));
  const LpSolution cold = solve_lp(perturbed);
  LpBasis warm_copy = warm;
  const LpSolution resolved =
      solve_lp_warm(perturbed, {}, &warm_copy, LpWarmMode::kDual);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(resolved.optimal());
  EXPECT_TRUE(resolved.warm_started);
  EXPECT_NEAR(cold.objective, resolved.objective,
              1e-6 * std::max(1.0, std::abs(cold.objective)));
  EXPECT_LT(resolved.iterations, cold.iterations);
  expect_feasible(perturbed, resolved.values, 1e-6);
}

TEST(Presolve, MapWarmBasisRejectsBasicEliminatedColumn) {
  // Two live variables coupled through two rows keep the reduction from
  // solving the model outright; y is eliminated as fixed.
  LpModel m(Sense::kMinimize);
  const int x = m.add_variable(0, kInfinity, 1);
  const int z = m.add_variable(0, kInfinity, 1);
  const int y = m.add_variable(2, 2, 1);  // fixed: eliminated
  const int r = m.add_row(RowType::kGreaterEqual, 4);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, z, 1);
  m.add_coefficient(r, y, 1);
  const int r2 = m.add_row(RowType::kLessEqual, 1);
  m.add_coefficient(r2, x, 1);
  m.add_coefficient(r2, z, -1);
  Presolve pre;
  ASSERT_EQ(pre.run(m, {}), Presolve::Result::kReduced);
  LpBasis full;
  full.variables = {LpVarStatus::kAtLower, LpVarStatus::kAtLower,
                    LpVarStatus::kBasic};
  full.rows = {LpVarStatus::kBasic, LpVarStatus::kBasic};
  LpBasis mapped;
  EXPECT_FALSE(pre.map_warm_basis(full, &mapped))
      << "eliminated y marked basic must not transfer";
  full.variables = {LpVarStatus::kBasic, LpVarStatus::kAtLower,
                    LpVarStatus::kAtLower};
  full.rows = {LpVarStatus::kAtLower, LpVarStatus::kBasic};
  ASSERT_TRUE(pre.map_warm_basis(full, &mapped));
  EXPECT_EQ(mapped.variables.size(), 2u);
  EXPECT_EQ(mapped.rows.size(), 2u);
}

}  // namespace
}  // namespace a2a
