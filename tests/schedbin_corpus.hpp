// Deterministic SchedBin seed-frame corpus, shared by the golden-stability
// tests and the fuzz harness.
//
// Every frame here is a pure function of fixed Rng seeds and the codecs —
// no LP/MCF pipeline involved — so the checked-in files under
// tests/corpus/schedbin/ must stay byte-identical to what this header
// generates on any compiler. That pins the wire format: a writer change
// that alters any emitted byte fails the golden test instead of silently
// orphaning every artifact in the fleet's caches.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/random.hpp"
#include "container/schedbin.hpp"
#include "graph/topologies.hpp"
#include "schedule/schedule.hpp"

namespace a2a::corpus {

/// A random (not necessarily valid) link schedule exercising negative ids,
/// large rationals, and repeated values.
inline LinkSchedule random_link_schedule(Rng& rng, int transfers) {
  LinkSchedule s;
  s.num_nodes = rng.next_int(1, 1000);
  s.num_steps = rng.next_int(1, 100);
  for (int i = 0; i < transfers; ++i) {
    Transfer t;
    t.chunk.src = rng.next_int(0, s.num_nodes);
    t.chunk.dst = rng.next_int(0, s.num_nodes);
    const std::int64_t den = rng.next_int(1, 360);
    const std::int64_t lo = rng.next_int(0, static_cast<int>(den));
    t.chunk.lo = Rational(lo, den);
    t.chunk.hi = Rational(lo + rng.next_int(1, 24), den * rng.next_int(1, 4));
    t.from = rng.next_int(0, s.num_nodes);
    t.to = rng.next_int(0, s.num_nodes);
    t.step = rng.next_int(1, s.num_steps + 1);
    s.transfers.push_back(t);
  }
  return s;
}

/// A random path schedule on `g` whose routes are real random walks, so the
/// node-sequence -> edge-id resolution on decode is exercised. Weights are
/// drawn from a small set so the dict codec sees realistic repetition.
inline PathSchedule random_path_schedule(const DiGraph& g, Rng& rng,
                                         int routes) {
  PathSchedule s;
  s.num_nodes = g.num_nodes();
  s.chunk_unit = Rational(1, rng.next_int(1, 48));
  for (int i = 0; i < routes; ++i) {
    RouteEntry e;
    NodeId u = rng.next_int(0, g.num_nodes());
    e.src = u;
    const int hops = rng.next_int(1, 5);
    for (int h = 0; h < hops; ++h) {
      const auto& out = g.out_edges(u);
      if (out.empty()) break;
      const EdgeId edge =
          out[static_cast<std::size_t>(rng.next_int(0, static_cast<int>(out.size())))];
      e.path.push_back(edge);
      u = g.edge(edge).to;
    }
    if (e.path.empty()) continue;
    e.dst = u;
    e.weight = 1.0 / rng.next_int(1, 8);
    e.num_chunks = rng.next_int(1, 64);
    e.layer = rng.next_int(0, 4);
    s.entries.push_back(std::move(e));
  }
  return s;
}

struct CorpusFrame {
  std::string name;   ///< file basename under tests/corpus/schedbin/.
  std::string bytes;  ///< the container.
};

/// The seed frames: both kinds, both versions, every codec, single- and
/// multi-chunk, empty, and metadata-carrying.
inline std::vector<CorpusFrame> corpus_frames() {
  std::vector<CorpusFrame> frames;
  const auto add = [&](std::string name, std::string bytes) {
    frames.push_back({std::move(name), std::move(bytes)});
  };

  Rng link_rng(101);
  const LinkSchedule link = random_link_schedule(link_rng, 300);
  {
    SchedBinOptions o;
    o.version = kSchedBinVersion1;
    o.codec = SchedBinCodec::kDelta;
    o.chunk_words = 256;
    add("link_v1_delta.schedbin", link_schedule_to_schedbin(link, o));
    o.codec = SchedBinCodec::kRle;
    add("link_v1_rle.schedbin", link_schedule_to_schedbin(link, o));
    o.version = kSchedBinVersion2;
    o.codec = SchedBinCodec::kDict;
    o.metadata = {{"origin", "corpus"}, {"note", "seed frame"}};
    add("link_v2_dict.schedbin", link_schedule_to_schedbin(link, o));
  }
  {
    Rng big_rng(103);
    const LinkSchedule big = random_link_schedule(big_rng, 2000);
    SchedBinOptions o;
    o.codec = SchedBinCodec::kDelta;
    o.chunk_words = 512;
    add("link_v2_delta_multichunk.schedbin", link_schedule_to_schedbin(big, o));
  }
  {
    LinkSchedule empty;
    empty.num_nodes = 8;
    empty.num_steps = 3;
    SchedBinOptions o;
    o.codec = SchedBinCodec::kRaw;
    add("link_v2_raw_empty.schedbin", link_schedule_to_schedbin(empty, o));
  }

  const DiGraph cube = make_hypercube(4);
  Rng path_rng(202);
  const PathSchedule path = random_path_schedule(cube, path_rng, 200);
  {
    SchedBinOptions o;
    o.version = kSchedBinVersion1;
    o.codec = SchedBinCodec::kDelta;
    o.chunk_words = 128;
    add("path_v1_delta.schedbin", path_schedule_to_schedbin(cube, path, o));
    o.version = kSchedBinVersion2;
    o.codec = SchedBinCodec::kDict;
    o.metadata = {{"origin", "corpus"}};
    add("path_v2_dict.schedbin", path_schedule_to_schedbin(cube, path, o));
  }
  return frames;
}

}  // namespace a2a::corpus
