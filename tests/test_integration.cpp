// End-to-end property sweep across topology families: solve -> compile ->
// validate -> execute -> simulate, asserting the §5.2 relationships hold on
// every graph (not just the hand-picked anchors):
//   * schedules validate and execute correctly (real bytes, transpose);
//   * simulated large-buffer throughput lands within [55%, 102%] of the
//     analytic upper bound (N-1)*F*b for link schedules (pipelining fill /
//     chunk rounding cost the rest) and within [70%, 102%] for path
//     schedules;
//   * the Theorem-1 bound caps F.
#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "mcf/bounds.hpp"
#include "mcf/decomposed.hpp"
#include "runtime/ct_simulator.hpp"
#include "runtime/executor.hpp"
#include "runtime/sf_simulator.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/compile_path.hpp"
#include "schedule/validate.hpp"
#include "schedule/xml_io.hpp"

namespace a2a {
namespace {

DiGraph family_graph(int index) {
  Rng rng(static_cast<std::uint64_t>(index) * 77 + 5);
  switch (index) {
    case 0: return make_generalized_kautz(9, 3);
    case 1: return make_random_regular(10, 3, rng);
    case 2: return puncture_edges(make_ring(8), 0, rng);
    case 3: return make_xpander(3, 3, rng);
    case 4: return make_torus({3, 4});
    case 5: return make_de_bruijn(2, 3);
    case 6: return puncture_edges(make_torus({3, 3}), 2, rng);
    default: return make_twisted_hypercube(3);
  }
}

class EndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(EndToEnd, LinkPipelineDeliversAndPerforms) {
  const DiGraph g = family_graph(GetParam());
  const auto nodes = all_nodes(g);
  DecomposedOptions options;
  options.master = MasterMode::kExactLp;
  const auto flows = solve_decomposed_mcf(g, nodes, options);
  const double f = flows.concurrent_flow;
  EXPECT_LE(f, concurrent_flow_upper_bound(g) + 1e-6) << g.summary();

  const auto paths = paths_from_link_flows(g, flows);
  const LinkSchedule sched = unroll_rate_schedule(g, paths);
  const auto validation = validate_link_schedule(g, sched, nodes);
  ASSERT_TRUE(validation.ok) << g.summary() << ": "
                             << (validation.errors.empty() ? "" : validation.errors[0]);
  const auto report = execute_link_schedule(g, sched, nodes, 720);
  EXPECT_TRUE(report.transpose_verified);

  Fabric fabric = gpu_mscl_fabric();
  const int n = g.num_nodes();
  const double ub = (n - 1) * f * fabric.link_GBps;
  const auto sim = simulate_link_schedule(g, sched, 512e6 / n, n, fabric);
  EXPECT_LE(sim.algo_throughput_GBps, ub * 1.02) << g.summary();
  EXPECT_GE(sim.algo_throughput_GBps, ub * 0.55) << g.summary();
}

TEST_P(EndToEnd, PathPipelineDeliversAndPerforms) {
  const DiGraph g = family_graph(GetParam());
  const auto nodes = all_nodes(g);
  DecomposedOptions options;
  options.master = MasterMode::kExactLp;
  const auto flows = solve_decomposed_mcf(g, nodes, options);
  const double f = flows.concurrent_flow;

  const PathSchedule sched =
      compile_path_schedule(g, paths_from_link_flows(g, flows));
  const auto validation = validate_path_schedule(g, sched, nodes);
  ASSERT_TRUE(validation.ok) << g.summary() << ": "
                             << (validation.errors.empty() ? "" : validation.errors[0]);
  const auto report = execute_path_schedule(g, sched, nodes, 720);
  EXPECT_TRUE(report.transpose_verified);

  Fabric fabric = hpc_cerio_fabric();
  fabric.injection_GBps = 1e9;  // isolate the link-bandwidth term
  fabric.qp_penalty = 0.0;      // contention is modelled, tested elsewhere
  fabric.per_chunk_s = 0.0;
  const int n = g.num_nodes();
  const double ub = (n - 1) * f * fabric.link_GBps;
  const auto sim = simulate_path_schedule(g, sched, 2e9 / n, n, fabric);
  EXPECT_LE(sim.algo_throughput_GBps, ub * 1.02) << g.summary();
  EXPECT_GE(sim.algo_throughput_GBps, ub * 0.90) << g.summary();
}

TEST_P(EndToEnd, ScheduleSurvivesXmlRoundTripAndStillExecutes) {
  const DiGraph g = family_graph(GetParam());
  const auto nodes = all_nodes(g);
  const auto flows = solve_decomposed_mcf(g, nodes);
  const LinkSchedule sched =
      unroll_rate_schedule(g, paths_from_link_flows(g, flows));
  // Serialize, parse back, and execute the parsed schedule — integration of
  // xml_io with the runtime.
  const LinkSchedule parsed = link_schedule_from_xml(link_schedule_to_xml(sched));
  const auto report = execute_link_schedule(g, parsed, nodes, 360);
  EXPECT_TRUE(report.transpose_verified);
}

INSTANTIATE_TEST_SUITE_P(Families, EndToEnd, ::testing::Range(0, 8));

TEST(EndToEnd, IterationLimitSurfacesAsStatus) {
  // Two variables coupled through two rows so presolve cannot reduce the
  // model away (a single boxed variable it would solve outright, and the
  // iteration limit would never be consulted).
  LpModel m(Sense::kMaximize);
  const int x = m.add_variable(0, kInfinity, 1);
  const int y = m.add_variable(0, kInfinity, 1);
  const int r = m.add_row(RowType::kLessEqual, 1);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const int r2 = m.add_row(RowType::kLessEqual, 0);
  m.add_coefficient(r2, x, 1);
  m.add_coefficient(r2, y, -1);
  SimplexOptions options;
  options.max_iterations = 0;
  EXPECT_EQ(solve_lp(m, options).status, LpStatus::kIterationLimit);
}

}  // namespace
}  // namespace a2a
