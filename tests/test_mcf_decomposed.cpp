// Decomposed MCF (§3.1.2): the headline equivalence — decomposition attains
// the same optimal F as the original LP — plus feasibility of the recovered
// per-commodity flows under both child solvers.
#include "mcf/decomposed.hpp"

#include <gtest/gtest.h>

#include "graph/topologies.hpp"

namespace a2a {
namespace {

void check_per_commodity_feasible(const DiGraph& g, const LinkFlowSolution& sol) {
  const auto total = sol.total_edge_flow(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(total[static_cast<std::size_t>(e)], g.edge(e).capacity + 1e-5);
  }
  for (int k = 0; k < sol.pairs.count(); ++k) {
    const auto [s, d] = sol.pairs.nodes(k);
    const auto& flow = sol.per_commodity[static_cast<std::size_t>(k)];
    double delivered = 0;
    for (const EdgeId e : g.in_edges(d)) delivered += flow[static_cast<std::size_t>(e)];
    for (const EdgeId e : g.out_edges(d)) delivered -= flow[static_cast<std::size_t>(e)];
    EXPECT_GE(delivered, sol.concurrent_flow - 1e-5) << s << "->" << d;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == s || u == d) continue;
      double in = 0, out = 0;
      for (const EdgeId e : g.in_edges(u)) in += flow[static_cast<std::size_t>(e)];
      for (const EdgeId e : g.out_edges(u)) out += flow[static_cast<std::size_t>(e)];
      EXPECT_NEAR(in, out, 1e-5) << "conservation at " << u;
    }
  }
}

struct Case {
  const char* name;
  DiGraph graph;
  double expected_f;  // < 0 when unknown
};

std::vector<Case> cases() {
  Rng rng(99);
  std::vector<Case> out;
  out.push_back({"ring6", make_ring(6), 12.0 / (6 * 9.0)});
  out.push_back({"hypercube3", make_hypercube(3), 0.25});
  out.push_back({"k44", make_complete_bipartite(4, 4), 0.4});
  out.push_back({"torus333", make_torus({3, 3, 3}), 1.0 / 9.0});
  out.push_back({"genkautz12_3", make_generalized_kautz(12, 3), -1.0});
  out.push_back({"random16_3", make_random_regular(16, 3, rng), -1.0});
  return out;
}

class DecomposedVsExact : public ::testing::TestWithParam<int> {};

TEST_P(DecomposedVsExact, CombinatorialChildrenReachMasterOptimum) {
  Case c = cases()[static_cast<std::size_t>(GetParam())];
  DecomposedOptions options;
  options.master = MasterMode::kExactLp;
  options.child = ChildMode::kCombinatorial;
  DecomposedTiming timing;
  const auto sol = solve_decomposed_mcf(c.graph, all_nodes(c.graph), options,
                                        &timing);
  if (c.expected_f > 0) {
    EXPECT_NEAR(sol.concurrent_flow, c.expected_f, 1e-5) << c.name;
  }
  check_per_commodity_feasible(c.graph, sol);
  EXPECT_GT(timing.master_seconds, 0.0);
  EXPECT_GT(timing.child_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Cases, DecomposedVsExact, ::testing::Range(0, 6));

TEST(Decomposed, ChildLpMatchesCombinatorial) {
  const DiGraph g = make_hypercube(3);
  DecomposedOptions lp_child;
  lp_child.master = MasterMode::kExactLp;
  lp_child.child = ChildMode::kLp;
  DecomposedOptions comb_child;
  comb_child.master = MasterMode::kExactLp;
  comb_child.child = ChildMode::kCombinatorial;
  const auto a = solve_decomposed_mcf(g, all_nodes(g), lp_child);
  const auto b = solve_decomposed_mcf(g, all_nodes(g), comb_child);
  EXPECT_NEAR(a.concurrent_flow, b.concurrent_flow, 1e-5);
  check_per_commodity_feasible(g, a);
  check_per_commodity_feasible(g, b);
}

TEST(Decomposed, FptasMasterWithinEpsilon) {
  const DiGraph g = make_torus({3, 3, 3});
  DecomposedOptions options;
  options.master = MasterMode::kFptas;
  options.fptas_epsilon = 0.05;
  const auto sol = solve_decomposed_mcf(g, all_nodes(g), options);
  // Feasible (<= OPT) and within ~3*eps of the known optimum 1/9.
  EXPECT_LE(sol.concurrent_flow, 1.0 / 9.0 + 1e-6);
  EXPECT_GE(sol.concurrent_flow, (1.0 / 9.0) * (1.0 - 0.15));
  check_per_commodity_feasible(g, sol);
}

TEST(Decomposed, WorksOnPuncturedTorus) {
  Rng rng(5);
  const DiGraph g = puncture_edges(make_torus({3, 3, 3}), 3, rng);
  DecomposedOptions options;
  options.master = MasterMode::kExactLp;
  const auto sol = solve_decomposed_mcf(g, all_nodes(g), options);
  // Punctures can only hurt: F <= 1/9, but connectivity keeps F > 0.
  EXPECT_LE(sol.concurrent_flow, 1.0 / 9.0 + 1e-6);
  EXPECT_GT(sol.concurrent_flow, 0.0);
  check_per_commodity_feasible(g, sol);
}

TEST(Decomposed, AutoModeSwitchesToFptasBeyondLimit) {
  const DiGraph g = make_generalized_kautz(48, 4);
  DecomposedOptions options;
  options.master = MasterMode::kAuto;
  options.exact_master_limit = 16;  // force the FPTAS branch
  options.fptas_epsilon = 0.05;
  const auto sol = solve_decomposed_mcf(g, all_nodes(g), options);
  EXPECT_GT(sol.concurrent_flow, 0.0);
  check_per_commodity_feasible(g, sol);
}

}  // namespace
}  // namespace a2a
