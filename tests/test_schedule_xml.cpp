// XML lowering round trips (§4).
#include "schedule/xml_io.hpp"

#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "mcf/timestepped.hpp"
#include "runtime/vc.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/compile_path.hpp"
#include "schedule/validate.hpp"

namespace a2a {
namespace {

TEST(ScheduleXml, LinkScheduleRoundTrip) {
  const DiGraph g = make_ring(4);
  const auto ts = solve_tsmcf_exact(g, 3, all_nodes(g));
  const LinkSchedule sched = compile_tsmcf_schedule(g, ts);
  const std::string xml = link_schedule_to_xml(sched);
  const LinkSchedule parsed = link_schedule_from_xml(xml);
  EXPECT_EQ(parsed.num_nodes, sched.num_nodes);
  EXPECT_EQ(parsed.num_steps, sched.num_steps);
  ASSERT_EQ(parsed.transfers.size(), sched.transfers.size());
  for (std::size_t i = 0; i < parsed.transfers.size(); ++i) {
    EXPECT_EQ(parsed.transfers[i].chunk, sched.transfers[i].chunk);
    EXPECT_EQ(parsed.transfers[i].from, sched.transfers[i].from);
    EXPECT_EQ(parsed.transfers[i].to, sched.transfers[i].to);
    EXPECT_EQ(parsed.transfers[i].step, sched.transfers[i].step);
  }
  // The parsed schedule still validates.
  EXPECT_TRUE(validate_link_schedule(g, parsed, all_nodes(g)).ok);
}

TEST(ScheduleXml, PathScheduleRoundTrip) {
  const DiGraph g = make_hypercube(3);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  PathSchedule sched = compile_path_schedule(g, paths_from_link_flows(g, flows));
  assign_layers(g, sched);
  const std::string xml = path_schedule_to_xml(g, sched);
  const PathSchedule parsed = path_schedule_from_xml(g, xml);
  EXPECT_EQ(parsed.num_nodes, sched.num_nodes);
  EXPECT_EQ(parsed.chunk_unit, sched.chunk_unit);
  ASSERT_EQ(parsed.entries.size(), sched.entries.size());
  for (std::size_t i = 0; i < parsed.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].src, sched.entries[i].src);
    EXPECT_EQ(parsed.entries[i].dst, sched.entries[i].dst);
    EXPECT_EQ(parsed.entries[i].path, sched.entries[i].path);
    EXPECT_EQ(parsed.entries[i].num_chunks, sched.entries[i].num_chunks);
    EXPECT_EQ(parsed.entries[i].layer, sched.entries[i].layer);
  }
  EXPECT_TRUE(validate_path_schedule(g, parsed, all_nodes(g)).ok);
}

TEST(ScheduleXml, PathXmlRejectsNonEdgeRoute) {
  const DiGraph g = make_ring(4);
  const std::string xml =
      "<pathschedule nodes=\"4\" chunkunit=\"1\">"
      "<route src=\"0\" dst=\"2\" weight=\"1\" chunks=\"1\" layer=\"0\" "
      "path=\"0>2\"/></pathschedule>";
  EXPECT_THROW(path_schedule_from_xml(g, xml), InvalidArgument);
}

TEST(ScheduleXml, WrongRootRejected) {
  EXPECT_THROW(link_schedule_from_xml("<pathschedule nodes=\"1\"/>"),
               InvalidArgument);
}

}  // namespace
}  // namespace a2a
