#include "workloads/fft.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "workloads/fft3d.hpp"

namespace a2a {
namespace {

std::vector<Complex> random_signal(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> out(static_cast<std::size_t>(n));
  for (auto& v : out) v = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
  return out;
}

double max_error(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double err = 0;
  for (std::size_t i = 0; i < a.size(); ++i) err = std::max(err, std::abs(a[i] - b[i]));
  return err;
}

class FftLengths : public ::testing::TestWithParam<int> {};

TEST_P(FftLengths, MatchesNaiveDft) {
  const int n = GetParam();
  auto signal = random_signal(n, static_cast<std::uint64_t>(n));
  const auto expected = naive_dft(signal);
  fft(signal);
  EXPECT_LT(max_error(signal, expected), 1e-8 * n) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(MixedRadix, FftLengths,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15,
                                           16, 18, 20, 24, 25, 27, 30, 36, 45,
                                           7, 11, 14, 21));

TEST(Fft, InverseRoundTrip) {
  for (const int n : {8, 12, 27, 30}) {
    const auto original = random_signal(n, 77);
    auto data = original;
    fft(data);
    ifft(data);
    EXPECT_LT(max_error(data, original), 1e-10) << "n=" << n;
  }
}

TEST(Fft, LinearityProperty) {
  const int n = 24;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  std::vector<Complex> sum(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    sum[static_cast<std::size_t>(i)] =
        2.0 * a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
  }
  auto fa = a, fb = b, fsum = sum;
  fft(fa);
  fft(fb);
  fft(fsum);
  for (int i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(fsum[static_cast<std::size_t>(i)] -
                       (2.0 * fa[static_cast<std::size_t>(i)] +
                        fb[static_cast<std::size_t>(i)])),
              1e-10);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  const int n = 36;
  auto signal = random_signal(n, 5);
  double time_energy = 0;
  for (const auto& v : signal) time_energy += std::norm(v);
  fft(signal);
  double freq_energy = 0;
  for (const auto& v : signal) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-8 * n);
}

TEST(Fft3d, MatchesPerAxisNaive) {
  const int n = 6;
  auto grid = random_signal(n * n * n, 9);
  auto expected = grid;
  // Reference: naive DFT along each axis.
  auto axis_dft = [&](std::vector<Complex>& g, int stride, int count, int reps,
                      int block) {
    for (int r = 0; r < reps; ++r) {
      for (int b = 0; b < block; ++b) {
        std::vector<Complex> line(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) {
          line[static_cast<std::size_t>(i)] =
              g[static_cast<std::size_t>(r) * count * block + i * block + b];
        }
        const auto out = naive_dft(line);
        for (int i = 0; i < count; ++i) {
          g[static_cast<std::size_t>(r) * count * block + i * block + b] =
              out[static_cast<std::size_t>(i)];
        }
      }
    }
    (void)stride;
  };
  axis_dft(expected, 1, n, n * n, 1);      // x lines
  axis_dft(expected, n, n, n, n);          // y lines
  axis_dft(expected, n * n, n, 1, n * n);  // z lines
  fft_3d(grid, n, n, n);
  EXPECT_LT(max_error(grid, expected), 1e-8);
}

class DistributedFft : public ::testing::TestWithParam<int> {};

TEST_P(DistributedFft, SlabDecompositionMatchesSingleNode) {
  const int ranks = GetParam();
  const int n = 12;  // divisible by 2, 3, 4, 6
  const auto grid = random_signal(n * n * n, 13);
  auto reference = grid;
  fft_3d(reference, n, n, n);
  const auto distributed = run_fft3d_local(grid, n, ranks);
  EXPECT_LT(max_error(distributed, reference), 1e-8) << "ranks=" << ranks;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedFft, ::testing::Values(1, 2, 3, 4, 6));

TEST(Fft3d, BufferBytesMatchPaperScale) {
  // §5.2: grid width 1296 on 27 ranks -> ~1.29 GB all-to-all buffers.
  EXPECT_NEAR(fft3d_alltoall_buffer_bytes(1296, 27) / 1e9, 1.29, 0.02);
}

TEST(Fft3d, TimeModelScalesWithGrid) {
  auto zero_comm = [](double) { return 0.0; };
  const auto small = model_fft3d_time(128, 27, 32, zero_comm, 32);
  const auto large = model_fft3d_time(256, 27, 32, zero_comm, 32);
  EXPECT_GT(large.total(), small.total() * 6);  // ~8x elements + log factor
  const auto with_comm =
      model_fft3d_time(128, 27, 32, [](double bytes) { return bytes / 1e9; }, 32);
  EXPECT_GT(with_comm.alltoall_s, 0.0);
}

}  // namespace
}  // namespace a2a
