#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>
#include <sstream>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace a2a {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ThreadPool, RunsAllIterations) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) {
    hits[i].fetch_add(1);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 100);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(50,
                                 [](std::size_t i) {
                                   if (i == 13) throw InvalidArgument("boom");
                                 }),
               InvalidArgument);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ManyConcurrentThrowersStress) {
  // Regression for the exception-publication race: many tasks throw at
  // once from every worker, so several workers race to publish while the
  // caller races to rethrow. Exactly one exception must surface per call,
  // it must be a fully-formed one (safe to inspect), and the pool must
  // stay usable afterwards. Repeated rounds shake out interleavings.
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> started{0};
    bool caught = false;
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        started.fetch_add(1);
        throw InvalidArgument("boom " + std::to_string(i));
      });
    } catch (const InvalidArgument& e) {
      caught = true;
      EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
    }
    EXPECT_TRUE(caught);
    EXPECT_GE(started.load(), 1);
    // The pool is intact: a clean run completes fully.
    std::atomic<int> ok{0};
    pool.parallel_for(32, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 32);
  }
}

TEST(ThreadPool, LateIterationsSkippedAfterFailure) {
  // Once a task throws, workers may skip iterations that have not started;
  // whatever DID run must have run exactly once (no lost or doubled work).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  EXPECT_THROW(pool.parallel_for(200,
                                 [&](std::size_t i) {
                                   hits[i].fetch_add(1);
                                   if (i == 0) throw SolverError("first");
                                 }),
               SolverError);
  for (auto& h : hits) EXPECT_LE(h.load(), 1);
  EXPECT_EQ(hits[0].load(), 1);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 2);
  t.row().cell("b").cell(42LL);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

}  // namespace
}  // namespace a2a
