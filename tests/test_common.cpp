#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "common/random.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace a2a {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ThreadPool, RunsAllIterations) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) {
    hits[i].fetch_add(1);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 100);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(50,
                                 [](std::size_t i) {
                                   if (i == 13) throw InvalidArgument("boom");
                                 }),
               InvalidArgument);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 2);
  t.row().cell("b").cell(42LL);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

}  // namespace
}  // namespace a2a
