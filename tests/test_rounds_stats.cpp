// Round partitioning (§5.5 injection-rate-control fix) and schedule
// statistics.
#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "mcf/timestepped.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/compile_path.hpp"
#include "schedule/rounds.hpp"
#include "schedule/stats.hpp"
#include "schedule/validate.hpp"

namespace a2a {
namespace {

PathSchedule torus_path_schedule() {
  const DiGraph g = make_torus({3, 3, 3});
  DecomposedOptions options;
  options.master = MasterMode::kFptas;
  options.fptas_epsilon = 0.05;
  const auto flows = solve_decomposed_mcf(g, all_nodes(g), options);
  ChunkingOptions chunking;
  chunking.max_denominator = 12;
  chunking.min_fraction = 1e-3;
  return compile_path_schedule(g, paths_from_link_flows(g, flows), chunking);
}

TEST(Rounds, PartitionPreservesChunkTotals) {
  const PathSchedule sched = torus_path_schedule();
  const auto rounded = partition_into_rounds(sched, 4);
  EXPECT_EQ(rounded.num_rounds, 4);
  long long total = 0;
  for (const auto& round : rounded.rounds) total += round.total_chunks();
  EXPECT_EQ(total, sched.total_chunks());
}

TEST(Rounds, RoundsAreBalanced) {
  const PathSchedule sched = torus_path_schedule();
  const auto rounded = partition_into_rounds(sched, 3);
  long long lo = sched.total_chunks(), hi = 0;
  for (const auto& round : rounded.rounds) {
    lo = std::min(lo, round.total_chunks());
    hi = std::max(hi, round.total_chunks());
  }
  EXPECT_LE(hi - lo, static_cast<long long>(sched.entries.size()));
}

TEST(Rounds, SingleRoundIsIdentity) {
  const PathSchedule sched = torus_path_schedule();
  const auto rounded = partition_into_rounds(sched, 1);
  ASSERT_EQ(rounded.rounds.size(), 1u);
  EXPECT_EQ(rounded.rounds[0].total_chunks(), sched.total_chunks());
  EXPECT_EQ(rounded.rounds[0].entries.size(), sched.entries.size());
}

TEST(Rounds, ReducesPeakConcurrentFlows) {
  const DiGraph g = make_torus({3, 3, 3});
  const PathSchedule sched = torus_path_schedule();
  const Fabric fabric = hpc_cerio_fabric();
  const auto r1 = simulate_rounded_schedule(g, partition_into_rounds(sched, 1),
                                            1e6, 27, fabric);
  const auto r4 = simulate_rounded_schedule(g, partition_into_rounds(sched, 4),
                                            1e6, 27, fabric);
  EXPECT_LT(r4.peak_concurrent_flows, r1.peak_concurrent_flows);
  EXPECT_GT(r4.peak_concurrent_flows, 0);
}

TEST(Rounds, TradeoffVisibleUnderContention) {
  // With a harsh contention model, splitting rounds helps large transfers;
  // with contention disabled, the extra barriers only cost time.
  const DiGraph g = make_torus({3, 3, 3});
  const PathSchedule sched = torus_path_schedule();
  Fabric harsh = hpc_cerio_fabric();
  harsh.qp_knee = 64;
  harsh.qp_penalty = 0.5;
  const double big = 512e6 / 27;
  const auto one = simulate_rounded_schedule(g, partition_into_rounds(sched, 1),
                                             big, 27, harsh);
  const auto eight = simulate_rounded_schedule(
      g, partition_into_rounds(sched, 8), big, 27, harsh);
  EXPECT_LT(eight.seconds, one.seconds);

  Fabric mellow = hpc_cerio_fabric();
  mellow.qp_penalty = 0.0;
  const auto one_m = simulate_rounded_schedule(
      g, partition_into_rounds(sched, 1), big, 27, mellow);
  const auto eight_m = simulate_rounded_schedule(
      g, partition_into_rounds(sched, 8), big, 27, mellow);
  EXPECT_GE(eight_m.seconds, one_m.seconds - 1e-9);
}

TEST(Rounds, RejectsZeroRounds) {
  EXPECT_THROW(partition_into_rounds(PathSchedule{}, 0), InvalidArgument);
}

TEST(Stats, LinkScheduleScratchAndTraffic) {
  const DiGraph g = make_ring(4);
  const auto ts = solve_tsmcf_exact(g, 3, all_nodes(g));
  const LinkSchedule sched = compile_tsmcf_schedule(g, ts);
  const auto stats = analyze_link_schedule(g, sched);
  EXPECT_EQ(stats.num_steps, 3);
  EXPECT_EQ(stats.num_transfers, static_cast<long long>(sched.transfers.size()));
  // Ring-of-4 all-to-all forwards the opposite-node shards -> some scratch.
  EXPECT_GT(stats.peak_scratch_per_rank, 0.0);
  EXPECT_LE(stats.peak_scratch_per_rank, 4.0);
  EXPECT_EQ(stats.max_hops, 2);  // diameter
  double total_traffic = 0;
  for (const double t : stats.step_traffic) total_traffic += t;
  // Total shard-hops: 8 pairs at distance 1 + 4 pairs at distance 2 = 16.
  EXPECT_NEAR(total_traffic, 16.0, 0.1);
}

TEST(Stats, DirectExchangeNeedsNoScratch) {
  const DiGraph g = make_complete(4);
  LinkSchedule sched;
  sched.num_nodes = 4;
  sched.num_steps = 1;
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId d = 0; d < 4; ++d) {
      if (s != d) {
        sched.transfers.push_back(
            Transfer{Chunk{s, d, Rational(0), Rational(1)}, s, d, 1});
      }
    }
  }
  const auto stats = analyze_link_schedule(g, sched);
  EXPECT_DOUBLE_EQ(stats.peak_scratch_per_rank, 0.0);
  EXPECT_EQ(stats.max_hops, 1);
}

TEST(Stats, PathScheduleSummary) {
  const DiGraph g = make_torus({3, 3, 3});
  const PathSchedule sched = torus_path_schedule();
  const auto stats = analyze_path_schedule(g, sched);
  EXPECT_EQ(stats.num_chunks, sched.total_chunks());
  EXPECT_GE(stats.avg_hops, 1.0);
  EXPECT_LE(stats.max_hops, 6);
  EXPECT_NEAR(stats.max_link_load, 9.0, 0.5);  // ~1/F on the torus
}

}  // namespace
}  // namespace a2a
