// The threaded executor moves real bytes and checks the all-to-all
// transpose — integration proof that compiled schedules are executable.
#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include "baselines/taccl_like.hpp"
#include "graph/augment.hpp"
#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "mcf/timestepped.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/compile_path.hpp"

namespace a2a {
namespace {

TEST(Executor, RunsTsMcfScheduleOnHypercube) {
  const DiGraph g = make_hypercube(3);
  const auto ts = solve_tsmcf_exact(g, 4, all_nodes(g));
  const LinkSchedule sched = compile_tsmcf_schedule(g, ts);
  const auto report = execute_link_schedule(g, sched, all_nodes(g), 7560);
  EXPECT_TRUE(report.transpose_verified);
  EXPECT_EQ(report.steps_executed, 4);
  EXPECT_GT(report.bytes_moved, 0u);
}

TEST(Executor, RunsUnrolledScheduleOnTorus) {
  const DiGraph g = make_torus({3, 3});
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  const LinkSchedule sched =
      unroll_rate_schedule(g, paths_from_link_flows(g, flows));
  const auto report = execute_link_schedule(g, sched, all_nodes(g), 4096);
  EXPECT_TRUE(report.transpose_verified);
}

TEST(Executor, RunsTacclScheduleOnRing) {
  const DiGraph g = make_ring(6);
  TacclOptions options;
  options.rollouts = 4;
  const auto result = taccl_synthesize(g, options);
  const auto report = execute_link_schedule(g, result.schedule, all_nodes(g), 512);
  EXPECT_TRUE(report.transpose_verified);
}

TEST(Executor, RunsAugmentedGraphScheduleBetweenHosts) {
  const DiGraph ring = make_ring(4);
  const AugmentedGraph aug = augment_host_bottleneck(ring, 1.0);
  std::vector<NodeId> hosts;
  for (NodeId u = 0; u < 4; ++u) hosts.push_back(aug.host(u));
  const auto flows = solve_decomposed_mcf(aug.graph, hosts);
  const LinkSchedule sched =
      unroll_rate_schedule(aug.graph, paths_from_link_flows(aug.graph, flows));
  const auto report = execute_link_schedule(aug.graph, sched, hosts, 1024);
  EXPECT_TRUE(report.transpose_verified);
}

TEST(Executor, OddShardSizesAreByteExact) {
  const DiGraph g = make_ring(4);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  const LinkSchedule sched =
      unroll_rate_schedule(g, paths_from_link_flows(g, flows));
  for (const std::size_t shard : {1u, 13u, 257u, 1000u}) {
    const auto report = execute_link_schedule(g, sched, all_nodes(g), shard);
    EXPECT_TRUE(report.transpose_verified) << "shard=" << shard;
  }
}

TEST(Executor, DetectsCausalityViolationAtRuntime) {
  const DiGraph g = make_ring(4);
  LinkSchedule bad;
  bad.num_nodes = 4;
  bad.num_steps = 1;
  Chunk c{0, 2, Rational(0), Rational(1)};
  // Forwarding from node 1 without the chunk ever arriving there.
  bad.transfers.push_back(Transfer{c, 1, 2, 1});
  EXPECT_THROW(execute_link_schedule(g, bad, {0, 2}, 64), Error);
}

TEST(Executor, PathScheduleDeliversTranspose) {
  const DiGraph g = make_hypercube(3);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  const PathSchedule sched =
      compile_path_schedule(g, paths_from_link_flows(g, flows));
  const auto report = execute_path_schedule(g, sched, all_nodes(g), 4096);
  EXPECT_TRUE(report.transpose_verified);
  EXPECT_GT(report.bytes_moved, 0u);
}

}  // namespace
}  // namespace a2a
