#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "runtime/sf_simulator.hpp"
#include "schedule/compile_link.hpp"
#include "workloads/dlrm.hpp"
#include "workloads/fft3d.hpp"

namespace a2a {
namespace {

TEST(Dlrm, ShardBytesScaleWithConfig) {
  DlrmConfig config;
  config.ranks = 8;
  config.batch_size = 4096;
  config.embedding_dim = 128;
  config.tables_per_rank = 4;
  // 512 samples * 4 tables * 128 dims * 4 bytes = 1 MiB.
  EXPECT_NEAR(dlrm_shard_bytes(config), 512.0 * 4 * 128 * 4, 1e-6);
  config.embedding_dim = 256;
  EXPECT_NEAR(dlrm_shard_bytes(config), 512.0 * 4 * 256 * 4, 1e-6);
}

TEST(Dlrm, EvaluateUsesScheduleSimulator) {
  const DiGraph g = make_hypercube(3);
  const auto flows = solve_decomposed_mcf(g, all_nodes(g));
  const LinkSchedule sched =
      unroll_rate_schedule(g, paths_from_link_flows(g, flows));
  const Fabric fabric = gpu_mscl_fabric();
  DlrmConfig config;
  config.ranks = 8;
  const auto report = evaluate_dlrm(config, [&](double shard_bytes) {
    return simulate_link_schedule(g, sched, shard_bytes, 8, fabric).seconds;
  });
  EXPECT_GT(report.alltoall_s, 0.0);
  EXPECT_GT(report.batches_per_second, 0.0);
  // Faster network -> more batches/s.
  Fabric fast = fabric;
  fast.link_GBps *= 4;
  const auto faster = evaluate_dlrm(config, [&](double shard_bytes) {
    return simulate_link_schedule(g, sched, shard_bytes, 8, fast).seconds;
  });
  EXPECT_GT(faster.batches_per_second, report.batches_per_second);
}

TEST(Fft3dModel, BreakdownBandsAllPositive) {
  const auto t = model_fft3d_time(96, 27, 32,
                                  [](double bytes) { return bytes / 5e9; }, 32);
  EXPECT_GT(t.fft2d_pack_s, 0.0);
  EXPECT_GT(t.unpack_fft1d_s, 0.0);
  EXPECT_GT(t.alltoall_s, 0.0);
  EXPECT_NEAR(t.total(), t.fft2d_pack_s + t.alltoall_s + t.unpack_fft1d_s, 1e-12);
}

TEST(Fft3dModel, FasterCollectiveShrinksOnlyCommBand) {
  auto slow = model_fft3d_time(128, 27, 32, [](double b) { return b / 1e9; }, 32);
  auto fast = model_fft3d_time(128, 27, 32, [](double b) { return b / 8e9; }, 32);
  EXPECT_NEAR(slow.fft2d_pack_s, fast.fft2d_pack_s, 1e-9);
  EXPECT_GT(slow.alltoall_s, fast.alltoall_s);
}

TEST(Fft3dModel, PaperGridBufferSizes) {
  // §5.2: up to 1296^3 grid -> 1.29 GB all-to-all buffers on 27 ranks.
  EXPECT_NEAR(fft3d_alltoall_buffer_bytes(729, 27) / 1e6, 229.6, 2.0);
  EXPECT_NEAR(fft3d_alltoall_buffer_bytes(1296, 27) / 1e9, 1.29, 0.02);
}

}  // namespace
}  // namespace a2a
