#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/topologies.hpp"

namespace a2a {
namespace {

TEST(GraphAlgorithms, BfsDistancesOnRing) {
  const DiGraph g = make_ring(6);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 2, 1}));
  const auto dist_to = bfs_distances_to(g, 0);
  EXPECT_EQ(dist_to, (std::vector<int>{0, 1, 2, 3, 2, 1}));
}

TEST(GraphAlgorithms, BfsDirectional) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto dist = bfs_distances(g, 2);
  EXPECT_EQ(dist[0], kUnreachable);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(GraphAlgorithms, WidestPathPicksBottleneck) {
  // Two routes 0->3: via 1 (widths 5, 1) and via 2 (widths 2, 2).
  DiGraph g(4);
  const EdgeId a1 = g.add_edge(0, 1);
  const EdgeId a2 = g.add_edge(1, 3);
  const EdgeId b1 = g.add_edge(0, 2);
  const EdgeId b2 = g.add_edge(2, 3);
  std::vector<double> width(4);
  width[static_cast<std::size_t>(a1)] = 5;
  width[static_cast<std::size_t>(a2)] = 1;
  width[static_cast<std::size_t>(b1)] = 2;
  width[static_cast<std::size_t>(b2)] = 2;
  const auto result = widest_path(g, 0, 3, width);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->bottleneck, 2.0);
  EXPECT_EQ(result->path, (Path{b1, b2}));
}

TEST(GraphAlgorithms, WidestPathRespectsMinWidth) {
  DiGraph g(2);
  g.add_edge(0, 1);
  EXPECT_FALSE(widest_path(g, 0, 1, {0.5}, 0.5).has_value());
  EXPECT_TRUE(widest_path(g, 0, 1, {0.5}, 0.4).has_value());
}

TEST(GraphAlgorithms, DijkstraShortest) {
  const DiGraph g = make_ring(8);
  std::vector<double> len(static_cast<std::size_t>(g.num_edges()), 1.0);
  const auto path = dijkstra_path(g, 0, 3, len);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
  EXPECT_TRUE(path_is_valid(g, *path, 0, 3));
}

TEST(GraphAlgorithms, DijkstraRejectsNegativeLengths) {
  DiGraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(dijkstra_path(g, 0, 1, {-1.0}), InvalidArgument);
}

TEST(GraphAlgorithms, EdgeDisjointPathsCountEqualsDegreeOnHypercube) {
  const DiGraph g = make_hypercube(3);
  for (NodeId t = 1; t < 8; ++t) {
    const auto paths = edge_disjoint_paths(g, 0, t);
    EXPECT_EQ(paths.size(), 3u) << "t=" << t;  // Q3 is 3-edge-connected
    for (std::size_t i = 0; i < paths.size(); ++i) {
      EXPECT_TRUE(path_is_valid(g, paths[i], 0, t));
      for (std::size_t j = i + 1; j < paths.size(); ++j) {
        EXPECT_TRUE(paths_edge_disjoint(paths[i], paths[j]));
      }
    }
  }
}

TEST(GraphAlgorithms, EdgeDisjointPathsRespectsLimit) {
  const DiGraph g = make_hypercube(3);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 7, 2).size(), 2u);
}

TEST(GraphAlgorithms, EwspFractionsFormUnitFlow) {
  const DiGraph g = make_torus({3, 3});
  for (NodeId d = 1; d < 9; ++d) {
    const auto frac = ewsp_edge_fractions(g, 0, d);
    for (NodeId u = 0; u < 9; ++u) {
      double in = 0, out = 0;
      for (const EdgeId e : g.in_edges(u)) in += frac[static_cast<std::size_t>(e)];
      for (const EdgeId e : g.out_edges(u)) out += frac[static_cast<std::size_t>(e)];
      if (u == 0) EXPECT_NEAR(out - in, 1.0, 1e-9);
      else if (u == d) EXPECT_NEAR(in - out, 1.0, 1e-9);
      else EXPECT_NEAR(in, out, 1e-9);
    }
  }
}

TEST(GraphAlgorithms, EnumerateShortestPathsOnTorus) {
  const DiGraph g = make_torus({3, 3});
  bool truncated = true;
  const auto paths = enumerate_shortest_paths(g, 0, 4, 100, &truncated);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(paths.size(), 2u);  // (1,1) neighbor: x-then-y or y-then-x
  for (const auto& p : paths) EXPECT_EQ(p.size(), 2u);
}

TEST(GraphAlgorithms, EnumerateShortestPathsTruncates) {
  const DiGraph g = make_hypercube(4);
  bool truncated = false;
  // The antipodal pair in Q4 has 4! = 24 shortest paths.
  const auto paths = enumerate_shortest_paths(g, 0, 15, 10, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(paths.size(), 10u);
}

TEST(GraphAlgorithms, CountBoundedPathsMatchesFactorialOnHypercube) {
  const DiGraph g = make_hypercube(3);
  EXPECT_EQ(count_bounded_paths(g, 0, 7, 3, 1'000'000), 6);  // 3! shortest
  EXPECT_EQ(count_bounded_paths(g, 0, 7, 2, 1'000'000), 0);
  EXPECT_EQ(count_bounded_paths(g, 0, 7, 9, 5), 5);  // saturates at cap
}

TEST(GraphAlgorithms, DiameterAndDistanceSumThrowOnDisconnected) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(diameter(g), InvalidArgument);
  EXPECT_THROW(total_pairwise_distance(g), InvalidArgument);
}

TEST(GraphAlgorithms, PathHelpers) {
  const DiGraph g = make_ring(5);
  std::vector<double> len(static_cast<std::size_t>(g.num_edges()), 1.0);
  const auto p = dijkstra_path(g, 0, 2, len).value();
  EXPECT_EQ(path_source(g, p), 0);
  EXPECT_EQ(path_target(g, p), 2);
  EXPECT_EQ(path_nodes(g, p).size(), 3u);
  EXPECT_EQ(path_to_string(g, p), "0>1>2");
  EXPECT_FALSE(path_is_valid(g, p, 0, 3));
  EXPECT_FALSE(path_is_valid(g, {}, 0, 2));
}

}  // namespace
}  // namespace a2a
