// Structure-aware fuzz harness for SchedBin decode (modeled on c-blosc2's
// decompress fuzzer, but deterministic and in-tree): mutate valid frames —
// truncate, bit-flip headers/trailers/chunk directories, splice chunks
// between files, lie in length fields, and re-seal CRCs over the lies so
// corruption reaches the structural validators instead of stopping at the
// checksum wall — then assert that decode either round-trips or throws a
// clean a2a::Error. Any other escape (std::length_error or bad_alloc from
// a wild allocation, segfault, UB) fails the run.
//
// Runs as ctest `fuzz_smoke`: fixed seed, ~10k iterations, a few seconds.
// A2A_FUZZ_ITERS overrides the iteration count for longer soak runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/crc32.hpp"
#include "common/random.hpp"
#include "container/schedbin.hpp"
#include "graph/topologies.hpp"
#include "schedbin_corpus.hpp"

#ifndef A2A_SOURCE_DIR
#define A2A_SOURCE_DIR "."
#endif

namespace a2a {
namespace {

namespace fs = std::filesystem;

/// Decode budget used for half the probes: small enough that "lie about
/// word_count" mutants exercise the budget rejection path.
constexpr std::uint64_t kSmallBudget = 1u << 20;

std::vector<std::string> load_seeds() {
  std::vector<std::string> seeds;
  // In-process deterministic seeds (also the generator of the checked-in
  // corpus, so both stay in lockstep)...
  for (auto& frame : corpus::corpus_frames()) {
    seeds.push_back(std::move(frame.bytes));
  }
  // ...plus whatever extra frames are checked in under the corpus dir
  // (regression cases from past fuzz findings land there).
  const fs::path dir = fs::path(A2A_SOURCE_DIR) / "tests" / "corpus" / "schedbin";
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (!de.is_regular_file(ec)) continue;
    std::ifstream in(de.path(), std::ios::binary);
    if (!in.good()) continue;
    seeds.emplace_back(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }
  return seeds;
}

/// Best-effort CRC re-seal after a mutation, so structural lies survive the
/// checksum layer. Geometry is taken at face value from the (possibly
/// mutated) bytes; when it is nonsense the re-seal silently gives up and
/// the mutant just dies at a CRC check instead.
void reseal_crcs(std::string& blob, Rng& rng) {
  if (blob.size() < 56) return;
  const auto version =
      static_cast<std::uint16_t>(binio::get_uint(blob, 4, 2));
  const auto num_chunks =
      static_cast<std::uint32_t>(binio::get_uint(blob, 52, 4));
  const auto patch_u32 = [&](std::size_t pos, std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      blob[pos + static_cast<std::size_t>(b)] =
          static_cast<char>((v >> (8 * b)) & 0xFF);
    }
  };
  if (version == kSchedBinVersion1) {
    // Re-seal each directory entry's CRC over the chunk bytes it points at.
    std::size_t offset = 56 + static_cast<std::size_t>(num_chunks) * 8;
    for (std::uint32_t c = 0; c < num_chunks; ++c) {
      const std::size_t entry = 56 + static_cast<std::size_t>(c) * 8;
      if (entry + 8 > blob.size()) return;
      const auto size =
          static_cast<std::uint32_t>(binio::get_uint(blob, entry, 4));
      if (offset + size > blob.size()) return;
      patch_u32(entry + 4, crc32(blob.data() + offset, size));
      offset += size;
    }
    return;
  }
  if (blob.size() < 56 + 24) return;
  const std::size_t footer = blob.size() - 24;
  const std::uint64_t trailer_offset = binio::get_uint(blob, footer, 8);
  const auto trailer_bytes =
      static_cast<std::size_t>(binio::get_uint(blob, footer + 8, 4));
  if (trailer_offset > blob.size() ||
      trailer_offset + trailer_bytes + 24 != blob.size()) {
    return;
  }
  // Occasionally re-seal the per-chunk CRCs in the directory too.
  if (rng.next_int(0, 2) == 0 &&
      trailer_bytes >= static_cast<std::size_t>(num_chunks) * 17) {
    std::size_t entry = static_cast<std::size_t>(trailer_offset) +
                        trailer_bytes -
                        static_cast<std::size_t>(num_chunks) * 17;
    for (std::uint32_t c = 0; c < num_chunks; ++c, entry += 17) {
      const std::uint64_t off = binio::get_uint(blob, entry, 8);
      const auto size =
          static_cast<std::uint32_t>(binio::get_uint(blob, entry + 8, 4));
      // Bound before summing: a mutated 64-bit offset can wrap off + size.
      if (off > blob.size() || size > blob.size() - off) break;
      patch_u32(entry + 12, crc32(blob.data() + off, size));
    }
  }
  patch_u32(footer + 12,
            crc32(blob.data() + trailer_offset, trailer_bytes));
  patch_u32(footer + 16, crc32(blob.data(), 56));
}

std::string mutate(const std::vector<std::string>& seeds, Rng& rng) {
  std::string blob = seeds[static_cast<std::size_t>(
      rng.next_int(0, static_cast<int>(seeds.size())))];
  const int rounds = rng.next_int(1, 4);
  for (int round = 0; round < rounds; ++round) {
    if (blob.empty()) break;
    const auto pick_pos = [&]() {
      // Bias mutations toward the structure: header, directory region
      // (front for v1), and trailer/footer (back for v2).
      switch (rng.next_int(0, 4)) {
        case 0: return static_cast<std::size_t>(
                    rng.next_int(0, static_cast<int>(std::min<std::size_t>(blob.size(), 80))));
        case 1: return blob.size() - 1 -
                    static_cast<std::size_t>(rng.next_int(
                        0, static_cast<int>(std::min<std::size_t>(blob.size(), 120))));
        default:
          return static_cast<std::size_t>(rng.next_below(blob.size()));
      }
    };
    switch (rng.next_int(0, 7)) {
      case 0:  // truncate
        blob.resize(rng.next_below(blob.size() + 1));
        break;
      case 1:  // bit flip
        blob[pick_pos()] ^= static_cast<char>(1 << rng.next_int(0, 8));
        break;
      case 2: {  // lie in a length-ish field: overwrite 4 bytes
        const std::size_t pos = pick_pos();
        if (pos + 4 > blob.size()) break;
        const std::uint32_t lies[] = {0u, 1u, 0x7FFFFFFFu, 0xFFFFFFFFu,
                                      static_cast<std::uint32_t>(blob.size()),
                                      static_cast<std::uint32_t>(rng.next_u64())};
        const std::uint32_t lie =
            lies[rng.next_int(0, static_cast<int>(std::size(lies)))];
        for (int b = 0; b < 4; ++b) {
          blob[pos + static_cast<std::size_t>(b)] =
              static_cast<char>((lie >> (8 * b)) & 0xFF);
        }
        break;
      }
      case 3: {  // splice: prefix of this frame + suffix of another
        const std::string& other = seeds[static_cast<std::size_t>(
            rng.next_int(0, static_cast<int>(seeds.size())))];
        if (other.empty()) break;
        blob = blob.substr(0, rng.next_below(blob.size() + 1)) +
               other.substr(other.size() - 1 - rng.next_below(other.size()));
        break;
      }
      case 4: {  // duplicate an interior slice (chunk-splice within a file)
        const std::size_t a = rng.next_below(blob.size());
        const std::size_t len =
            std::min<std::size_t>(blob.size() - a,
                                  1 + rng.next_below(64));
        blob.insert(rng.next_below(blob.size()), blob.substr(a, len));
        break;
      }
      case 5: {  // erase an interior slice
        const std::size_t a = rng.next_below(blob.size());
        blob.erase(a, 1 + rng.next_below(32));
        break;
      }
      case 6:  // re-seal CRCs so the lie reaches the structural checks
        reseal_crcs(blob, rng);
        break;
    }
  }
  // Half the time seal the checksums at the end: those mutants probe the
  // validators, the unsealed half probes the CRC wall itself.
  if (rng.next_int(0, 2) == 0) reseal_crcs(blob, rng);
  return blob;
}

TEST(FuzzSchedBin, SmokeSeededMutations) {
  const std::vector<std::string> seeds = load_seeds();
  ASSERT_FALSE(seeds.empty());
  // Sanity: every pristine seed decodes.
  for (const std::string& seed : seeds) {
    EXPECT_NO_THROW((void)schedbin_inspect(seed));
  }

  long iterations = 10000;
  if (const char* env = std::getenv("A2A_FUZZ_ITERS")) {
    iterations = std::atol(env);
  }
  // Triage hook: A2A_FUZZ_DUMP=path writes every mutant there before it is
  // probed, so after a crash the file holds the killer input (c-blosc2's
  // README_FUZZER workflow, minus the base64 detour).
  const char* dump_path = std::getenv("A2A_FUZZ_DUMP");
  const DiGraph cube = make_hypercube(4);
  Rng rng(0xF0225EEDULL);
  long clean_decodes = 0;
  long rejected = 0;
  for (long iter = 0; iter < iterations; ++iter) {
    const std::string mutant = mutate(seeds, rng);
    if (dump_path != nullptr) {
      std::ofstream dump(dump_path, std::ios::binary | std::ios::trunc);
      dump.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
    }
    const std::uint64_t budget =
        iter % 2 == 0 ? kSchedBinDefaultDecodeBudget : kSmallBudget;
    try {
      const SchedBinInfo info = schedbin_inspect(mutant, budget);
      // Accepted: the decode budget must have been honored...
      ASSERT_LE(info.word_count * 8, budget);
      // ...and a full decode must produce exactly the declared words and
      // survive a re-encode round trip.
      if (info.kind == SchedBinKind::kLink) {
        const LinkSchedule sched =
            link_schedule_from_schedbin(mutant, nullptr, budget);
        SchedBinOptions re;
        re.codec = info.codec;
        const std::string bytes = link_schedule_to_schedbin(sched, re);
        const LinkSchedule again = link_schedule_from_schedbin(bytes);
        ASSERT_EQ(again.transfers.size(), sched.transfers.size());
      } else {
        // Mutant route words rarely resolve against any real topology;
        // a clean InvalidArgument is fine, a crash is not.
        try {
          (void)path_schedule_from_schedbin(cube, mutant, nullptr, budget);
        } catch (const Error&) {
        }
      }
      ++clean_decodes;
    } catch (const Error&) {
      ++rejected;  // clean structured rejection — the expected outcome
    } catch (const std::exception& e) {
      FAIL() << "iteration " << iter << ": decoder leaked a non-a2a error: "
             << e.what();
    }
    // Reader path: on-demand chunk decode must uphold the same contract.
    try {
      const SchedBinReader reader = SchedBinReader::from_bytes(mutant, budget);
      std::vector<std::int64_t> chunk;
      for (std::uint32_t c = 0; c < reader.num_chunks(); ++c) {
        (void)reader.decode_chunk(c, chunk);
      }
    } catch (const Error&) {
    } catch (const std::exception& e) {
      FAIL() << "iteration " << iter << ": reader leaked a non-a2a error: "
             << e.what();
    }
  }
  // The mutator must not be so destructive that the interesting accepting
  // paths never run, nor so tame that nothing is rejected.
  EXPECT_GT(clean_decodes, iterations / 200);
  EXPECT_GT(rejected, iterations / 2);
  std::cout << "fuzz_smoke: " << iterations << " mutants, " << clean_decodes
            << " decoded cleanly, " << rejected << " rejected cleanly\n";
}

}  // namespace
}  // namespace a2a
