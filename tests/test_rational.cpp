#include "common/rational.hpp"

#include <gtest/gtest.h>

namespace a2a {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  const Rational neg(3, -9);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 3);
  EXPECT_EQ(Rational(0, 17), Rational(0));
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), InvalidArgument);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1) / Rational(0), InvalidArgument);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 4), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, GcdMatchesHandComputedCases) {
  EXPECT_EQ(Rational::gcd(Rational(1, 4), Rational(1, 6)), Rational(1, 12));
  EXPECT_EQ(Rational::gcd(Rational(3, 10), Rational(1, 5)), Rational(1, 10));
  EXPECT_EQ(Rational::gcd(Rational(0), Rational(2, 7)), Rational(2, 7));
}

TEST(Rational, GcdDividesBothOperands) {
  for (int a = 1; a <= 12; ++a) {
    for (int b = 1; b <= 12; ++b) {
      const Rational x(a, 12), y(b, 12);
      const Rational g = Rational::gcd(x, y);
      EXPECT_EQ((x / g).den(), 1) << a << "/" << b;
      EXPECT_EQ((y / g).den(), 1) << a << "/" << b;
    }
  }
}

TEST(Rational, ApproximateRecoversExactRationals) {
  for (int num = 1; num <= 20; ++num) {
    for (int den = 1; den <= 20; ++den) {
      const double x = static_cast<double>(num) / den;
      const Rational r = Rational::approximate(x, 100);
      EXPECT_EQ(r, Rational(num, den));
    }
  }
}

TEST(Rational, ApproximateBoundsDenominator) {
  const Rational pi = Rational::approximate(3.14159265358979, 1000);
  EXPECT_LE(pi.den(), 1000);
  EXPECT_NEAR(pi.to_double(), 3.14159265358979, 1e-6);
}

TEST(Rational, ApproximateHandlesNegative) {
  const Rational r = Rational::approximate(-0.25, 100);
  EXPECT_EQ(r, Rational(-1, 4));
}

}  // namespace
}  // namespace a2a
