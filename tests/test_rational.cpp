#include "common/rational.hpp"

#include <gtest/gtest.h>

namespace a2a {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  const Rational neg(3, -9);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 3);
  EXPECT_EQ(Rational(0, 17), Rational(0));
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), InvalidArgument);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1) / Rational(0), InvalidArgument);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 4), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, GcdMatchesHandComputedCases) {
  EXPECT_EQ(Rational::gcd(Rational(1, 4), Rational(1, 6)), Rational(1, 12));
  EXPECT_EQ(Rational::gcd(Rational(3, 10), Rational(1, 5)), Rational(1, 10));
  EXPECT_EQ(Rational::gcd(Rational(0), Rational(2, 7)), Rational(2, 7));
}

TEST(Rational, GcdDividesBothOperands) {
  for (int a = 1; a <= 12; ++a) {
    for (int b = 1; b <= 12; ++b) {
      const Rational x(a, 12), y(b, 12);
      const Rational g = Rational::gcd(x, y);
      EXPECT_EQ((x / g).den(), 1) << a << "/" << b;
      EXPECT_EQ((y / g).den(), 1) << a << "/" << b;
    }
  }
}

TEST(Rational, ApproximateRecoversExactRationals) {
  for (int num = 1; num <= 20; ++num) {
    for (int den = 1; den <= 20; ++den) {
      const double x = static_cast<double>(num) / den;
      const Rational r = Rational::approximate(x, 100);
      EXPECT_EQ(r, Rational(num, den));
    }
  }
}

TEST(Rational, ApproximateBoundsDenominator) {
  const Rational pi = Rational::approximate(3.14159265358979, 1000);
  EXPECT_LE(pi.den(), 1000);
  EXPECT_NEAR(pi.to_double(), 3.14159265358979, 1e-6);
}

TEST(Rational, ApproximateHandlesNegative) {
  const Rational r = Rational::approximate(-0.25, 100);
  EXPECT_EQ(r, Rational(-1, 4));
}

// Regression tests for the signed-overflow hazards in the cross-multiplying
// operators: with raw int64 intermediates every case below either crashed
// (UBSan) or silently produced garbage.

TEST(Rational, AdditionSurvivesLargeCoprimeDenominators) {
  // den product is ~2^62.6; raw cross-multiplication of numerators overflows.
  const Rational a(1'000'000'006, 2'000'000'011);
  const Rational b(1'000'000'007, 2'000'000'033);
  const Rational sum = a + b;
  EXPECT_NEAR(sum.to_double(), a.to_double() + b.to_double(), 1e-12);
  EXPECT_EQ(sum - b, a);
  EXPECT_EQ(sum - a, b);
}

TEST(Rational, AdditionOfHugeReducibleTermsReduces) {
  // a + b = 1; intermediates far exceed int64 without gcd pre-reduction.
  const std::int64_t big = 3'037'000'499;  // ~2^31.5, prime
  const Rational a(big - 1, big);
  const Rational b(1, big);
  EXPECT_EQ(a + b, Rational(1));
}

TEST(Rational, MultiplicationCrossReduces) {
  const std::int64_t big = 4'000'000'007;
  const Rational a(big, 3);
  const Rational b(3, big);
  EXPECT_EQ(a * b, Rational(1));
  // One-sided reduction: (big/2) * (2/3) = big/3.
  EXPECT_EQ(Rational(big, 2) * Rational(2, 3), Rational(big, 3));
}

TEST(Rational, ComparisonSurvivesCrossMultiplyOverflow)  {
  // Both cross-products exceed int64; the raw <=> verdict was wrong.
  const Rational a(INT64_MAX / 2, INT64_MAX - 1);
  const Rational b(INT64_MAX / 2 + 1, INT64_MAX - 2);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  // 1 + 6/p vs 1 + 6/q with p < q: exactly c > d, yet the difference
  // (~5e-18) is invisible to doubles and the cross-products exceed int64.
  const Rational c(3'037'000'499, 3'037'000'493);
  const Rational d(3'037'000'507, 3'037'000'501);
  EXPECT_GT(c, d);
  EXPECT_LT(d, c);
}

TEST(Rational, TrueOverflowIsDiagnosedNotSilent) {
  const Rational huge(INT64_MAX, 1);
  EXPECT_THROW(huge * huge, InvalidArgument);
  EXPECT_THROW(huge + huge, InvalidArgument);
  // INT64_MIN magnitudes do not trip negation UB.
  const Rational lowest(INT64_MIN, 1);
  EXPECT_EQ(lowest * Rational(1), lowest);
  EXPECT_EQ(lowest / lowest, Rational(1));
}

TEST(Rational, GcdSurvivesLargeDenominators) {
  // p*q ~ 9.0e18 fits int64 but the raw gcd(a*d, c*b) intermediates were
  // already squared-scale; must now compute exactly.
  const Rational ok =
      Rational::gcd(Rational(1, 3'000'000'019), Rational(1, 3'000'000'037));
  EXPECT_EQ(ok.num(), 1);
  EXPECT_EQ(ok.den(), 3'000'000'019LL * 3'000'000'037LL);
  // p*q ~ 1.6e19 does not fit: diagnosed, not silently wrong.
  EXPECT_THROW(
      Rational::gcd(Rational(1, 4'000'000'007), Rational(1, 4'000'000'009)),
      InvalidArgument);
}

}  // namespace
}  // namespace a2a
