// Time-stepped MCF (§3.1.3): the optimal total utilization equals 1/F of
// the fluid MCF once enough steps are allowed, and the flows satisfy the
// causality/demand constraints (15)-(20).
#include "mcf/timestepped.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"

namespace a2a {
namespace {

void check_tsmcf_invariants(const DiGraph& g, const TsMcfSolution& sol) {
  for (int k = 0; k < sol.pairs.count(); ++k) {
    const auto [s, d] = sol.pairs.nodes(k);
    const auto& flow = sol.flow[static_cast<std::size_t>(k)];
    // (19) one unit leaves s, one unit reaches d.
    double out_s = 0, in_d = 0;
    for (int t = 0; t < sol.steps; ++t) {
      for (const EdgeId e : g.out_edges(s)) {
        out_s += flow[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)];
      }
      for (const EdgeId e : g.in_edges(d)) {
        in_d += flow[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)];
      }
    }
    EXPECT_NEAR(out_s, 1.0, 1e-5) << s << "->" << d;
    EXPECT_NEAR(in_d, 1.0, 1e-5) << s << "->" << d;
    // (17) cumulative causality at intermediates.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == s || u == d) continue;
      double cum_in = 0, cum_out = 0;
      for (int t = 0; t < sol.steps; ++t) {
        for (const EdgeId e : g.out_edges(u)) {
          cum_out += flow[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)];
        }
        EXPECT_LE(cum_out, cum_in + 1e-5) << "node " << u << " step " << t + 1;
        for (const EdgeId e : g.in_edges(u)) {
          cum_in += flow[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)];
        }
      }
      EXPECT_NEAR(cum_in, cum_out, 1e-5) << "(18) at node " << u;
    }
  }
  // (16): per-step utilization matches the reported U_t.
  for (int t = 0; t < sol.steps; ++t) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      double total = 0;
      for (int k = 0; k < sol.pairs.count(); ++k) {
        total += sol.flow[static_cast<std::size_t>(k)][static_cast<std::size_t>(t)]
                         [static_cast<std::size_t>(e)];
      }
      EXPECT_LE(total / g.edge(e).capacity,
                sol.step_utilization[static_cast<std::size_t>(t)] + 1e-5);
    }
  }
}

TEST(TsMcf, RingOfFourMatchesFluidOptimum) {
  const DiGraph g = make_ring(4);
  const auto sol = solve_tsmcf_exact(g, 3, all_nodes(g));
  EXPECT_NEAR(sol.total_utilization, 2.0, 1e-5);  // 1/F with F = 1/2
  check_tsmcf_invariants(g, sol);
}

TEST(TsMcf, HypercubeMatchesFluidOptimum) {
  const DiGraph g = make_hypercube(3);
  const auto sol = solve_tsmcf_exact(g, 4, all_nodes(g));
  EXPECT_NEAR(sol.total_utilization, 4.0, 1e-4);  // 1/F with F = 1/4
  check_tsmcf_invariants(g, sol);
}

TEST(TsMcf, BipartiteMatchesFluidOptimum) {
  const DiGraph g = make_complete_bipartite(4, 4);
  const auto sol = solve_tsmcf_exact(g, 3, all_nodes(g));
  EXPECT_NEAR(sol.total_utilization, 2.5, 1e-4);  // 1/F with F = 2/5
  check_tsmcf_invariants(g, sol);
}

TEST(TsMcf, MoreStepsNeverHurt) {
  const DiGraph g = make_ring(4);
  const double u3 = solve_tsmcf_exact(g, 3, all_nodes(g)).total_utilization;
  const double u5 = solve_tsmcf_exact(g, 5, all_nodes(g)).total_utilization;
  EXPECT_LE(u5, u3 + 1e-6);
}

TEST(TsMcf, RejectsTooFewSteps) {
  const DiGraph g = make_ring(6);  // diameter 3
  EXPECT_THROW(solve_tsmcf_exact(g, 2, all_nodes(g)), InvalidArgument);
}

TEST(TsMcf, TotalUtilizationAtLeastFluidBound) {
  // For any steps >= diameter, sum U_t >= 1/F_fluid.
  const DiGraph g = make_twisted_hypercube(3);
  const auto sol = solve_tsmcf_exact(g, diameter(g) + 1, all_nodes(g));
  check_tsmcf_invariants(g, sol);
  EXPECT_GE(sol.total_utilization, 1.0);  // trivially >= (N-1)/d = 7/3? no: >= 1
}

}  // namespace
}  // namespace a2a
