// Theorem 1 bounds (§5.4).
#include "mcf/bounds.hpp"

#include <gtest/gtest.h>

#include "graph/topologies.hpp"
#include "mcf/concurrent_flow.hpp"

namespace a2a {
namespace {

TEST(Bounds, HandComputedTimeBounds) {
  // time LB = total pairwise distance / total capacity (when it dominates).
  EXPECT_NEAR(alltoall_time_lower_bound(make_hypercube(3)), 96.0 / 24.0, 1e-9);
  EXPECT_NEAR(alltoall_time_lower_bound(make_torus({3, 3, 3})), 1458.0 / 162.0,
              1e-9);
  EXPECT_NEAR(alltoall_time_lower_bound(make_complete_bipartite(4, 4)),
              80.0 / 32.0, 1e-9);
}

TEST(Bounds, InjectionBoundDominatesOnStar) {
  // Complete graph has distance bound (N-1)*N... the injection bound
  // (N-1)/d = 1 equals the aggregate bound; on a low-degree node it rules.
  DiGraph g(3);
  g.add_bidi_edge(0, 1);
  g.add_bidi_edge(1, 2);
  // Node 0 has out-capacity 1, N-1 = 2 -> injection bound 2; aggregate
  // bound = (1+2+1+1+2+1)/4 = 2. Equal here; with capacity 0.5 on one link
  // the injection bound dominates.
  const double lb = alltoall_time_lower_bound(g);
  EXPECT_NEAR(lb, 2.0, 1e-9);
}

TEST(Bounds, UpperBoundsExactMcf) {
  for (const auto& g :
       {make_ring(6), make_hypercube(3), make_complete_bipartite(3, 3),
        make_generalized_kautz(12, 3), make_torus({3, 3})}) {
    const double f_ub = concurrent_flow_upper_bound(g);
    const double f = solve_master_lp(g, all_nodes(g)).concurrent_flow;
    EXPECT_LE(f, f_ub + 1e-6) << g.summary();
  }
}

TEST(Bounds, BoundTightOnEdgeTransitiveGraphs) {
  for (const auto& g : {make_hypercube(3), make_torus({3, 3, 3})}) {
    const double f_ub = concurrent_flow_upper_bound(g);
    const double f = solve_master_lp(g, all_nodes(g)).concurrent_flow;
    EXPECT_NEAR(f, f_ub, 1e-5) << g.summary();
  }
}

TEST(Bounds, RegularTimeBoundClosedForm) {
  // d-ary arborescence distance sum over d: for N=1+d+d^2 (full 2-level
  // tree), sum = d*1 + d^2*2, bound = (d + 2 d^2)/d = 1 + 2d.
  EXPECT_NEAR(regular_graph_time_bound(1 + 3 + 9, 3), 7.0, 1e-9);
  EXPECT_NEAR(regular_graph_time_bound(1 + 2 + 4, 2), 5.0, 1e-9);
  // Partial last level: N=5, d=2: levels 1(x2@1), 2(x2@2): sum=2+4 -> /2 = 3.
  EXPECT_NEAR(regular_graph_time_bound(5, 2), 3.0, 1e-9);
}

TEST(Bounds, RegularBoundLowerBoundsActualTopologies) {
  // No d-regular topology can beat the arborescence bound.
  for (const int n : {8, 12, 16, 24}) {
    const DiGraph g = make_generalized_kautz(n, 3);
    const double ideal = regular_graph_time_bound(n, 3);
    const double actual = alltoall_time_lower_bound(g);
    EXPECT_GE(actual, ideal - 1e-9) << n;
  }
}

TEST(Bounds, GenKautzApproachesRegularBound) {
  // Fig. 10 (left): GenKautz tracks the lower bound closely.
  const int n = 96, d = 4;
  const DiGraph g = make_generalized_kautz(n, d);
  const double ideal = regular_graph_time_bound(n, d);
  const double actual = alltoall_time_lower_bound(g);
  EXPECT_LE(actual / ideal, 1.35);
}

}  // namespace
}  // namespace a2a
