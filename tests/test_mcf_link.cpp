// Exact link-based MCF (§3.1.1) against hand-derived optima and feasibility
// invariants. The anchors follow from the capacity/distance bound
// F <= E / (N * total pairwise distance) being tight on edge-transitive
// graphs:
//   ring(4) F = 1/2, complete(4) F = 1, Q3 F = 1/4, K4,4 F = 2/5,
//   3x3x3 torus F = 1/9 (quoted directly in §5.2 of the paper).
#include "mcf/concurrent_flow.hpp"

#include <gtest/gtest.h>

#include "graph/topologies.hpp"

namespace a2a {
namespace {

void check_feasible(const DiGraph& g, const LinkFlowSolution& sol) {
  const double F = sol.concurrent_flow;
  // Capacity.
  const auto total = sol.total_edge_flow(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(total[static_cast<std::size_t>(e)], g.edge(e).capacity + 1e-6);
  }
  for (int k = 0; k < sol.pairs.count(); ++k) {
    const auto [s, d] = sol.pairs.nodes(k);
    const auto& flow = sol.per_commodity[static_cast<std::size_t>(k)];
    // Conservation at intermediate nodes (within LP slack direction).
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == s || u == d) continue;
      double in = 0, out = 0;
      for (const EdgeId e : g.in_edges(u)) in += flow[static_cast<std::size_t>(e)];
      for (const EdgeId e : g.out_edges(u)) out += flow[static_cast<std::size_t>(e)];
      EXPECT_LE(out, in + 1e-6) << "commodity " << s << "->" << d << " node " << u;
    }
    // Demand.
    double delivered = 0;
    for (const EdgeId e : g.in_edges(d)) delivered += flow[static_cast<std::size_t>(e)];
    EXPECT_GE(delivered, F - 1e-6);
  }
}

TEST(LinkMcf, RingOfFour) {
  const DiGraph g = make_ring(4);
  const auto sol = solve_link_mcf_exact(g, all_nodes(g));
  EXPECT_NEAR(sol.concurrent_flow, 0.5, 1e-6);
  check_feasible(g, sol);
}

TEST(LinkMcf, CompleteGraph) {
  const DiGraph g = make_complete(4);
  const auto sol = solve_link_mcf_exact(g, all_nodes(g));
  EXPECT_NEAR(sol.concurrent_flow, 1.0, 1e-6);
  check_feasible(g, sol);
}

TEST(LinkMcf, HypercubeQ3) {
  const DiGraph g = make_hypercube(3);
  const auto sol = solve_link_mcf_exact(g, all_nodes(g));
  EXPECT_NEAR(sol.concurrent_flow, 0.25, 1e-6);
  check_feasible(g, sol);
}

TEST(LinkMcf, CompleteBipartiteK44) {
  const DiGraph g = make_complete_bipartite(4, 4);
  const auto sol = solve_link_mcf_exact(g, all_nodes(g));
  EXPECT_NEAR(sol.concurrent_flow, 0.4, 1e-6);
  check_feasible(g, sol);
}

TEST(LinkMcf, TwistedHypercubeAtLeastHypercube) {
  const DiGraph q3 = make_hypercube(3);
  const DiGraph tq3 = make_twisted_hypercube(3);
  const double fq = solve_link_mcf_exact(q3, all_nodes(q3)).concurrent_flow;
  const double ft = solve_link_mcf_exact(tq3, all_nodes(tq3)).concurrent_flow;
  // The twist shortens average distance, so the optimum cannot be worse.
  EXPECT_GE(ft, fq - 1e-6);
}

TEST(LinkMcf, CapacityScalesLinearly) {
  DiGraph g = make_ring(4);
  for (EdgeId e = 0; e < g.num_edges(); ++e) g.set_capacity(e, 2.0);
  const auto sol = solve_link_mcf_exact(g, all_nodes(g));
  EXPECT_NEAR(sol.concurrent_flow, 1.0, 1e-6);
}

TEST(LinkMcf, DirectedRingHasOneWayFlows) {
  // Unidirectional 4-ring: distances 1+2+3 per node, total 24, E=4 ->
  // F = 4/24 = 1/6.
  DiGraph g(4);
  for (int i = 0; i < 4; ++i) g.add_edge(i, (i + 1) % 4);
  const auto sol = solve_link_mcf_exact(g, all_nodes(g));
  EXPECT_NEAR(sol.concurrent_flow, 1.0 / 6.0, 1e-6);
  check_feasible(g, sol);
}

TEST(LinkMcf, TerminalSubset) {
  // Only two terminals on a 6-ring: two edge-disjoint routes of capacity 1
  // each between opposite nodes -> F = 2.
  const DiGraph g = make_ring(6);
  const auto sol = solve_link_mcf_exact(g, {0, 3});
  EXPECT_NEAR(sol.concurrent_flow, 2.0, 1e-6);
  check_feasible(g, sol);
}

TEST(LinkMcf, TerminalPairsIndexing) {
  TerminalPairs pairs(std::vector<NodeId>{3, 7, 9});
  EXPECT_EQ(pairs.count(), 6);
  for (int i = 0; i < pairs.count(); ++i) {
    const auto [si, di] = pairs.terminal_indices(i);
    EXPECT_EQ(pairs.index(si, di), i);
    EXPECT_NE(si, di);
  }
  EXPECT_EQ(pairs.nodes(pairs.index(0, 2)).first, 3);
  EXPECT_EQ(pairs.nodes(pairs.index(0, 2)).second, 9);
}

/// Property sweep: the master (grouped) LP must report the same F as the
/// full per-commodity LP (§3.1.2's claim of equal optimal value).
class MasterEqualsFull : public ::testing::TestWithParam<int> {};

TEST_P(MasterEqualsFull, SameOptimum) {
  DiGraph g;
  switch (GetParam()) {
    case 0: g = make_ring(5); break;
    case 1: g = make_hypercube(3); break;
    case 2: g = make_complete_bipartite(3, 3); break;
    case 3: g = make_generalized_kautz(9, 2); break;
    case 4: g = make_torus({3, 3}); break;
    default: g = make_complete(5); break;
  }
  const double f_full = solve_link_mcf_exact(g, all_nodes(g)).concurrent_flow;
  const double f_master = solve_master_lp(g, all_nodes(g)).concurrent_flow;
  EXPECT_NEAR(f_full, f_master, 1e-5) << g.summary();
}

INSTANTIATE_TEST_SUITE_P(Topologies, MasterEqualsFull, ::testing::Range(0, 6));

}  // namespace
}  // namespace a2a
