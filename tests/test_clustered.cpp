// Clustered/hybrid configurations (§5.5 extension): the internal/external
// bandwidth imbalance flows straight through the MCF toolchain.
#include "graph/clustered.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "mcf/bounds.hpp"
#include "mcf/decomposed.hpp"
#include "runtime/executor.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/validate.hpp"

namespace a2a {
namespace {

ClusteredOptions small_options() {
  ClusteredOptions o;
  o.num_pods = 4;
  o.accelerators_per_pod = 3;
  o.internal_capacity = 8.0;
  o.external_ports_per_pod = 2;
  return o;
}

TEST(Clustered, ShapeAndConnectivity) {
  const auto topo = make_clustered(make_ring(4), small_options());
  EXPECT_EQ(topo.graph.num_nodes(), 12);
  EXPECT_TRUE(is_strongly_connected(topo.graph));
  EXPECT_EQ(topo.pod_of(topo.accelerator(2, 1)), 2);
  // Intra-pod links carry the internal capacity.
  const EdgeId internal =
      topo.graph.find_edge(topo.accelerator(0, 0), topo.accelerator(0, 1));
  ASSERT_GE(internal, 0);
  EXPECT_DOUBLE_EQ(topo.graph.edge(internal).capacity, 8.0);
}

TEST(Clustered, GatewaysSpreadAcrossExternalPorts) {
  const auto topo = make_clustered(make_ring(4), small_options());
  // Each pod has 4 external arcs (2 out + 2 in on the ring); with 2 gateway
  // ports, both gateways of each pod touch external links.
  for (int pod = 0; pod < 4; ++pod) {
    int gateways_used = 0;
    for (int a = 0; a < 2; ++a) {
      const NodeId u = topo.accelerator(pod, a);
      bool external = false;
      for (const EdgeId e : topo.graph.out_edges(u)) {
        if (topo.pod_of(topo.graph.edge(e).to) != pod) external = true;
      }
      for (const EdgeId e : topo.graph.in_edges(u)) {
        if (topo.pod_of(topo.graph.edge(e).from) != pod) external = true;
      }
      if (external) ++gateways_used;
    }
    EXPECT_EQ(gateways_used, 2) << "pod " << pod;
  }
}

TEST(Clustered, ExternalBandwidthBoundsAllToAll) {
  // With huge internal capacity, the bisection of external links rules:
  // every inter-pod pair's flow crosses pod boundaries, so F is set by the
  // external topology alone. The aggregate bound makes that exact.
  const auto topo = make_clustered(make_ring(4), small_options());
  DecomposedOptions options;
  options.master = MasterMode::kExactLp;
  const auto sol = solve_decomposed_mcf(topo.graph, all_nodes(topo.graph), options);
  EXPECT_LE(sol.concurrent_flow,
            concurrent_flow_upper_bound(topo.graph) + 1e-6);
  // External traffic: 9 destinations in other pods per source, through 4
  // external out-arcs of capacity 1 shared by 3 accelerators... the simple
  // per-pod cut: 12 * ... keep it as a monotonicity property instead:
  // doubling the internal capacity cannot change F once externals bind.
  ClusteredOptions richer = small_options();
  richer.internal_capacity = 16.0;
  const auto topo2 = make_clustered(make_ring(4), richer);
  const auto sol2 = solve_decomposed_mcf(topo2.graph, all_nodes(topo2.graph), options);
  EXPECT_NEAR(sol.concurrent_flow, sol2.concurrent_flow, 1e-5);
}

TEST(Clustered, StarvedInternalFabricBindsInstead) {
  ClusteredOptions starved = small_options();
  starved.internal_capacity = 0.05;  // internal links weaker than external
  const auto topo = make_clustered(make_ring(4), starved);
  DecomposedOptions options;
  options.master = MasterMode::kExactLp;
  const auto rich = make_clustered(make_ring(4), small_options());
  const double f_starved =
      solve_decomposed_mcf(topo.graph, all_nodes(topo.graph), options).concurrent_flow;
  const double f_rich =
      solve_decomposed_mcf(rich.graph, all_nodes(rich.graph), options).concurrent_flow;
  EXPECT_LT(f_starved, f_rich);
}

TEST(Clustered, SchedulesCompileValidateAndExecute) {
  const auto topo = make_clustered(make_generalized_kautz(4, 2), small_options());
  const auto nodes = all_nodes(topo.graph);
  const auto flows = solve_decomposed_mcf(topo.graph, nodes);
  const LinkSchedule sched =
      unroll_rate_schedule(topo.graph, paths_from_link_flows(topo.graph, flows));
  ASSERT_TRUE(validate_link_schedule(topo.graph, sched, nodes).ok);
  const auto report = execute_link_schedule(topo.graph, sched, nodes, 720);
  EXPECT_TRUE(report.transpose_verified);
}

TEST(Clustered, RejectsBadOptions) {
  ClusteredOptions bad = small_options();
  bad.external_ports_per_pod = 99;
  EXPECT_THROW(make_clustered(make_ring(4), bad), InvalidArgument);
  EXPECT_THROW(make_clustered(make_ring(3), small_options()), InvalidArgument);
}

}  // namespace
}  // namespace a2a
