// Fig. 2 host-bottleneck augmentation: reproduces the paper's exact numbers
// for the 3x3x3 torus with 100 Gbps hosts on 6x25 Gbps NICs (F = 2/27 and
// the 6.01 GB/s upper bound, §5.2).
#include "graph/augment.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "mcf/concurrent_flow.hpp"
#include "mcf/fleischer.hpp"

namespace a2a {
namespace {

TEST(Augment, ShapeOfAugmentedGraph) {
  const DiGraph ring = make_ring(4);
  const AugmentedGraph aug = augment_host_bottleneck(ring, 2.0);
  EXPECT_EQ(aug.graph.num_nodes(), 12);
  EXPECT_EQ(aug.graph.num_edges(), 2 * 4 + ring.num_edges());
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_TRUE(aug.is_host(aug.host(u)));
    EXPECT_FALSE(aug.is_host(aug.nic_in(u)));
    // host -> nic_out and nic_in -> host links carry the host capacity.
    const EdgeId out = aug.graph.find_edge(aug.host(u), aug.nic_out(u));
    ASSERT_GE(out, 0);
    EXPECT_DOUBLE_EQ(aug.graph.edge(out).capacity, 2.0);
  }
  EXPECT_TRUE(is_strongly_connected(aug.graph));
}

TEST(Augment, ForcesTrafficThroughHost) {
  // In the augmented graph the only way from nic_in(u) onward is via
  // host(u): nic_in has exactly one outgoing edge.
  const DiGraph torus = make_torus({3, 3, 3});
  const AugmentedGraph aug = augment_host_bottleneck(torus, 4.0);
  for (NodeId u = 0; u < 27; ++u) {
    EXPECT_EQ(aug.graph.out_degree(aug.nic_in(u)), 1);
    EXPECT_EQ(aug.graph.edge(aug.graph.out_edges(aug.nic_in(u))[0]).to,
              aug.host(u));
  }
}

TEST(Augment, Ring4WithUnitHostBandwidthExact) {
  // Hand-derived: host-out load (3 + 1 forwarded) * F <= 1 -> F = 1/4.
  const DiGraph ring = make_ring(4);
  const AugmentedGraph aug = augment_host_bottleneck(ring, 1.0);
  std::vector<NodeId> hosts;
  for (NodeId u = 0; u < 4; ++u) hosts.push_back(aug.host(u));
  const auto sol = solve_master_lp(aug.graph, hosts);
  EXPECT_NEAR(sol.concurrent_flow, 0.25, 1e-6);
}

TEST(Augment, PaperTorusAnchorTwoTwentySevenths) {
  // §5.2: "The flow value produced by MCF on this bottlenecked 3D Torus
  // topology is f = 2/27". 100 Gbps host / 25 Gbps links -> capacity 4.
  const DiGraph torus = make_torus({3, 3, 3});
  const AugmentedGraph aug = augment_host_bottleneck(torus, 4.0);
  std::vector<NodeId> hosts;
  for (NodeId u = 0; u < 27; ++u) hosts.push_back(aug.host(u));
  FleischerOptions options;
  options.epsilon = 0.02;
  const auto sol = fleischer_grouped(aug.graph, hosts, options);
  const double expected = 2.0 / 27.0;
  EXPECT_LE(sol.concurrent_flow, expected + 1e-6);
  EXPECT_GE(sol.concurrent_flow, expected * 0.94);
  // Upper-bound throughput (N-1) f b = 6.01 GB/s at b = 3.125 GB/s.
  EXPECT_NEAR(26 * expected * 3.125, 6.01, 0.02);
}

TEST(Augment, NoBottleneckWhenHostCapacityExceedsDegree) {
  // Q3 (degree 3) with host capacity 4 (100 Gbps vs 75 Gbps NIC): the
  // bottleneck links don't bind, F stays 1/4.
  const DiGraph q3 = make_hypercube(3);
  const AugmentedGraph aug = augment_host_bottleneck(q3, 4.0);
  std::vector<NodeId> hosts;
  for (NodeId u = 0; u < 8; ++u) hosts.push_back(aug.host(u));
  const auto sol = solve_master_lp(aug.graph, hosts);
  EXPECT_NEAR(sol.concurrent_flow, 0.25, 1e-5);
}

TEST(Augment, RejectsNonPositiveCapacity) {
  EXPECT_THROW(augment_host_bottleneck(make_ring(4), 0.0), InvalidArgument);
}

}  // namespace
}  // namespace a2a
