// Determinism regression tests: the same instance must produce bit-identical
// pivot sequences, objectives, values, and LpBasis exports run after run —
// and across thread counts for the decomposed solver — pinning the
// deterministic tie-breaking PR 3 introduced and the deterministic partial-
// pricing cursor this PR added.
#include <gtest/gtest.h>

#include <cstring>

#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "lp/simplex.hpp"
#include "mcf/concurrent_flow.hpp"
#include "mcf/decomposed.hpp"
#include "mcf/timestepped.hpp"

namespace a2a {
namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const LpSolution& a, const LpSolution& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.iterations, b.iterations) << "pivot sequences diverged";
  EXPECT_TRUE(bit_equal(a.objective, b.objective));
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t j = 0; j < a.values.size(); ++j) {
    EXPECT_TRUE(bit_equal(a.values[j], b.values[j])) << "value " << j;
  }
  EXPECT_EQ(a.basis.variables, b.basis.variables);
  EXPECT_EQ(a.basis.rows, b.basis.rows);
}

TEST(LpDeterminism, RepeatedColdSolvesAreBitIdentical) {
  const DiGraph gk = make_generalized_kautz(10, 4);
  const DiGraph hc = make_hypercube(3);
  const std::vector<LpModel> models = {
      build_link_mcf_model(gk, TerminalPairs(all_nodes(gk))),
      build_tsmcf_model(hc, diameter(hc) + 1, TerminalPairs(all_nodes(hc))),
  };
  for (const LpModel& model : models) {
    const LpSolution a = solve_lp(model);
    const LpSolution b = solve_lp(model);
    ASSERT_TRUE(a.optimal());
    expect_identical(a, b);
  }
}

TEST(LpDeterminism, RepeatedWarmResolvesAreBitIdentical) {
  const DiGraph base = make_generalized_kautz(8, 4);
  const auto nodes = all_nodes(base);
  const LpSolution first =
      solve_lp(build_link_mcf_model(base, TerminalPairs(nodes)));
  ASSERT_TRUE(first.optimal());
  DiGraph g = base;
  g.set_capacity(0, 1e-6);
  g.set_capacity(5, 1e-6);
  const LpModel perturbed = build_link_mcf_model(g, TerminalPairs(nodes));
  for (const LpWarmMode mode :
       {LpWarmMode::kPrimal, LpWarmMode::kDual, LpWarmMode::kAuto}) {
    const LpSolution a = solve_lp(perturbed, {}, &first.basis, mode);
    const LpSolution b = solve_lp(perturbed, {}, &first.basis, mode);
    ASSERT_TRUE(a.optimal());
    expect_identical(a, b);
  }
}

TEST(LpDeterminism, PartialPricingCursorIsDeterministic) {
  // Force sectioned pricing onto a model that would not normally trigger it
  // and pin that the cursor state keeps runs identical.
  const DiGraph g = make_generalized_kautz(10, 4);
  const LpModel model = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
  SimplexOptions o;
  o.partial_pricing_threshold = 64;  // far below this model's column count
  const LpSolution a = solve_lp(model, o);
  const LpSolution b = solve_lp(model, o);
  ASSERT_TRUE(a.optimal());
  expect_identical(a, b);
  // And sectioned pricing must agree with full pricing on the objective.
  SimplexOptions full;
  full.partial_pricing_threshold = 0;
  const LpSolution c = solve_lp(model, full);
  EXPECT_NEAR(a.objective, c.objective,
              1e-7 * std::max(1.0, std::abs(c.objective)));
}

TEST(LpDeterminism, DecomposedSolveIsThreadCountInvariant) {
  const DiGraph g = make_generalized_kautz(12, 4);
  const auto nodes = all_nodes(g);
  DecomposedOptions opts;
  opts.child = ChildMode::kLp;
  opts.threads = 1;
  const LinkFlowSolution one = solve_decomposed_mcf(g, nodes, opts);
  opts.threads = 4;
  const LinkFlowSolution four = solve_decomposed_mcf(g, nodes, opts);
  EXPECT_TRUE(bit_equal(one.concurrent_flow, four.concurrent_flow));
  ASSERT_EQ(one.per_commodity.size(), four.per_commodity.size());
  for (std::size_t k = 0; k < one.per_commodity.size(); ++k) {
    const auto& fa = one.per_commodity[k];
    const auto& fb = four.per_commodity[k];
    ASSERT_EQ(fa.size(), fb.size()) << "commodity " << k;
    for (std::size_t i = 0; i < fa.size(); ++i) {
      EXPECT_EQ(fa.edges()[i], fb.edges()[i]);
      EXPECT_TRUE(bit_equal(fa.values()[i], fb.values()[i]));
    }
  }
}

}  // namespace
}  // namespace a2a
