// Fig. 9 — GenKautz N=81 d=8 (648 arcs) with 0..60 randomly disabled links;
// all-to-all time normalized by link-based MCF.
//
// Schemes: link MCF (normalizer), pMCF-disjoint, SSSP, ILP-disjoint at 10%
// tolerance — exactly the Fig. 9 line-up.
#include "bench_util.hpp"

#include <algorithm>

#include "baselines/ilp_disjoint.hpp"
#include "baselines/sssp.hpp"
#include "mcf/fleischer.hpp"
#include "mcf/path_mcf.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

/// The same Fig. 9 question asked of the exact LP: "disable" links by
/// collapsing their capacity so the pMCF keeps its exact shape, then
/// re-solve each scenario from the previous optimum. The basis stays dual
/// feasible across the whole sweep (only capacities move), so the dual
/// simplex iterates on it directly — this is the production path for
/// incremental failure analysis, where every scenario after the first costs
/// a fraction of a cold solve.
void exact_resolve_sweep() {
  std::cout << "\n--- exact pMCF re-solve sweep, GenKautz(27, d=4),"
               " dual warm starts ---\n";
  const DiGraph base = make_generalized_kautz(27, 4);
  const auto nodes = all_nodes(base);
  const PathSet candidates = build_disjoint_path_set(base, nodes);
  Rng rng(777);
  Table table({"disabled", "cold_s", "cold_it", "dual_s", "dual_it", "F"});
  double cold_seconds = 0.0;
  double dual_seconds = 0.0;
  long long cold_iterations = 0;
  long long dual_iterations = 0;
  bool objectives_match = true;
  LpBasis warm;
  DiGraph g = base;
  // Past ~5 dead arcs (at this scale) some pair loses every disjoint
  // candidate and F collapses to zero (the LP goes trivial), so the sweep
  // stays in the regime the paper plots: schedules surviving the failures.
  for (const int disabled : {0, 1, 2, 3, 4}) {
    while (true) {
      int hit = 0;
      for (const Edge& e : g.edges()) hit += e.capacity < 1e-3 ? 1 : 0;
      if (hit >= disabled) break;
      g.set_capacity(static_cast<EdgeId>(rng.next_below(
                         static_cast<std::uint64_t>(g.num_edges()))),
                     1e-6);
    }
    const auto cold = solve_path_mcf_exact(g, candidates);
    const auto dual =
        solve_path_mcf_exact(g, candidates, {}, &warm, LpWarmMode::kDual);
    cold_seconds += cold.solve_seconds;
    dual_seconds += dual.solve_seconds;
    cold_iterations += cold.lp_iterations;
    dual_iterations += dual.lp_iterations;
    if (std::abs(cold.concurrent_flow - dual.concurrent_flow) > 1e-6) {
      objectives_match = false;
    }
    table.row()
        .cell(static_cast<long long>(disabled))
        .cell(cold.solve_seconds, 4)
        .cell(cold.lp_iterations)
        .cell(dual.solve_seconds, 4)
        .cell(dual.lp_iterations)
        .cell(dual.concurrent_flow, 4);
  }
  table.print(std::cout);
  std::cout << "totals: cold " << cold_seconds << "s/" << cold_iterations
            << " it, dual-warm " << dual_seconds << "s/" << dual_iterations
            << " it, objectives "
            << (objectives_match ? "match" : "MISMATCH") << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Fig. 9: GenKautz(81, d=8) with disabled links, "
               "normalized all-to-all time ===\n\n";
  const DiGraph base = make_generalized_kautz(81, 8);
  std::cout << base.summary() << "\n\n";
  Table table({"disabled", "LinkMCF", "pMCF-disjoint", "SSSP",
               "ILP-disjoint(10%)"});
  Rng rng(4242);
  for (const int disabled : {0, 10, 20, 30, 40, 50, 60}) {
    const DiGraph g =
        disabled == 0 ? base : disable_random_arcs(base, disabled, rng);
    const auto nodes = all_nodes(g);

    FleischerOptions tight;
    tight.epsilon = 0.02;
    const double f_grouped = fleischer_grouped(g, nodes, tight).concurrent_flow;

    FleischerOptions path_eps;
    path_eps.epsilon = 0.03;
    const PathSet disjoint = build_disjoint_path_set(g, nodes);
    const double f_pmcf = fleischer_paths(g, disjoint, path_eps).concurrent_flow;
    // Normalize by the best feasible flow found (the true optimum dominates
    // both approximations), keeping ratios >= ~1.
    const double t_mcf = 1.0 / std::max(f_grouped, f_pmcf);
    const double t_pmcf = 1.0 / f_pmcf;

    const double t_sssp = sssp_routes(g, nodes).max_link_load(g);

    IlpOptions ilp;
    ilp.time_limit_s = 15.0;
    ilp.tolerance = 0.10;
    ilp.lower_bound = t_mcf;
    const double t_ilp = ilp_single_path(g, disjoint, ilp).max_load;

    table.row()
        .cell(static_cast<long long>(disabled))
        .cell(1.0, 3)
        .cell(t_pmcf / t_mcf, 3)
        .cell(t_sssp / t_mcf, 3)
        .cell(t_ilp / t_mcf, 3);
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: MCF/pMCF stay near 1.0 as links fail; SSSP"
               " degrades to ~1.4-1.8x; ILP-disjoint(10%) tracks MCF but"
               " cannot scale in N.\n";
  exact_resolve_sweep();
  return 0;
}
