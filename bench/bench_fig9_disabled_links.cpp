// Fig. 9 — GenKautz N=81 d=8 (648 arcs) with 0..60 randomly disabled links;
// all-to-all time normalized by link-based MCF.
//
// Schemes: link MCF (normalizer), pMCF-disjoint, SSSP, ILP-disjoint at 10%
// tolerance — exactly the Fig. 9 line-up.
#include "bench_util.hpp"

#include <algorithm>

#include "baselines/ilp_disjoint.hpp"
#include "baselines/sssp.hpp"
#include "mcf/fleischer.hpp"
#include "mcf/path_mcf.hpp"

using namespace a2a;
using namespace a2a::bench;

int main() {
  std::cout << "=== Fig. 9: GenKautz(81, d=8) with disabled links, "
               "normalized all-to-all time ===\n\n";
  const DiGraph base = make_generalized_kautz(81, 8);
  std::cout << base.summary() << "\n\n";
  Table table({"disabled", "LinkMCF", "pMCF-disjoint", "SSSP",
               "ILP-disjoint(10%)"});
  Rng rng(4242);
  for (const int disabled : {0, 10, 20, 30, 40, 50, 60}) {
    const DiGraph g =
        disabled == 0 ? base : disable_random_arcs(base, disabled, rng);
    const auto nodes = all_nodes(g);

    FleischerOptions tight;
    tight.epsilon = 0.02;
    const double f_grouped = fleischer_grouped(g, nodes, tight).concurrent_flow;

    FleischerOptions path_eps;
    path_eps.epsilon = 0.03;
    const PathSet disjoint = build_disjoint_path_set(g, nodes);
    const double f_pmcf = fleischer_paths(g, disjoint, path_eps).concurrent_flow;
    // Normalize by the best feasible flow found (the true optimum dominates
    // both approximations), keeping ratios >= ~1.
    const double t_mcf = 1.0 / std::max(f_grouped, f_pmcf);
    const double t_pmcf = 1.0 / f_pmcf;

    const double t_sssp = sssp_routes(g, nodes).max_link_load(g);

    IlpOptions ilp;
    ilp.time_limit_s = 15.0;
    ilp.tolerance = 0.10;
    ilp.lower_bound = t_mcf;
    const double t_ilp = ilp_single_path(g, disjoint, ilp).max_load;

    table.row()
        .cell(static_cast<long long>(disabled))
        .cell(1.0, 3)
        .cell(t_pmcf / t_mcf, 3)
        .cell(t_sssp / t_mcf, 3)
        .cell(t_ilp / t_mcf, 3);
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: MCF/pMCF stay near 1.0 as links fail; SSSP"
               " degrades to ~1.4-1.8x; ILP-disjoint(10%) tracks MCF but"
               " cannot scale in N.\n";
  return 0;
}
