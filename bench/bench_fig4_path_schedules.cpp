// Fig. 4 — Throughput of route-based (path) all-to-all schedules vs buffer
// size on the cut-through NIC-forwarding fabric (Cerio/OMPI model).
//
// Schemes per the paper: MCF-extP (ours), ILP-disjoint, EwSP, SSSP, DOR
// (torus only), and the native p2p all-to-all (NCCL /G on N=8, OMPI-alg0 /C
// on the torus). Upper bound = (N-1)*F*b.
#include "bench_util.hpp"

#include "baselines/dor.hpp"
#include "baselines/ewsp.hpp"
#include "baselines/ilp_disjoint.hpp"
#include "baselines/native_p2p.hpp"
#include "baselines/sssp.hpp"
#include "mcf/path_mcf.hpp"
#include "schedule/validate.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

struct Scheme {
  std::string name;
  PathSchedule schedule;
};

std::vector<Scheme> build_schemes(const DiGraph& g,
                                  const std::vector<int>* torus_dims) {
  const auto nodes = all_nodes(g);
  std::vector<Scheme> out;

  DecomposedOptions mcf;
  mcf.master = g.num_nodes() <= 16 ? MasterMode::kExactLp : MasterMode::kFptas;
  mcf.fptas_epsilon = 0.02;
  const auto flows = solve_decomposed_mcf(g, nodes, mcf);
  out.push_back(
      {"MCF-extP", compile_path_schedule(g, paths_from_link_flows(g, flows), coarse_chunking())});

  const PathSet disjoint = build_disjoint_path_set(g, nodes);
  IlpOptions ilp;
  ilp.lower_bound = 1.0 / flows.concurrent_flow;
  ilp.time_limit_s = 15.0;
  ilp.tolerance = 0.05;
  const auto ilp_result = ilp_single_path(g, disjoint, ilp);
  out.push_back({"ILP-disjoint",
                 single_route_schedule(g, ilp_result.plan.commodities,
                                       ilp_result.plan.routes)});

  const PathSet ewsp = ewsp_path_set(g, nodes, 24);
  std::vector<std::vector<double>> equal;
  for (const auto& cands : ewsp.candidates) equal.emplace_back(cands.size(), 1.0);
  out.push_back({"EwSP", compile_path_schedule(g, ewsp, equal)});

  const auto sssp = sssp_routes(g, nodes);
  out.push_back({"SSSP", single_route_schedule(g, sssp.commodities, sssp.routes)});

  if (torus_dims != nullptr) {
    const auto dor = dor_routes(g, *torus_dims, true);
    out.push_back({"DOR", single_route_schedule(g, dor.commodities, dor.routes)});
  }

  const auto native = native_p2p_routes(g, nodes);
  out.push_back({"native-p2p",
                 single_route_schedule(g, native.commodities, native.routes)});
  return out;
}

void run_topology(const std::string& name, const DiGraph& g,
                  const std::vector<int>* torus_dims, Table& table) {
  const int n = g.num_nodes();
  const Fabric fabric = hpc_cerio_fabric();
  auto schemes = build_schemes(g, torus_dims);
  // Upper bound from the first scheme's load (MCF): 1/maxload * (N-1) * b.
  const double f = 1.0 / schemes[0].schedule.max_link_load(g);
  for (auto& scheme : schemes) {
    A2A_REQUIRE(validate_path_schedule(g, scheme.schedule, all_nodes(g)).ok,
                scheme.name, " failed validation");
  }
  for (const double buf : buffer_sweep(17, 32)) {
    const double shard = buf / n;
    table.row().cell(name).cell(human_bytes(buf)).cell(
        (n - 1) * f * fabric.link_GBps, 2);
    for (auto& scheme : schemes) {
      const auto r = simulate_path_schedule(g, scheme.schedule, shard, n, fabric);
      table.cell(r.algo_throughput_GBps, 2);
    }
    if (torus_dims == nullptr) table.cell("-");
  }
}

}  // namespace

int main() {
  std::cout << "=== Fig. 4: path-based all-to-all throughput (GB/s) ===\n\n";
  Table table({"Topology", "Buffer", "UB", "MCF-extP", "ILP-disjoint", "EwSP",
               "SSSP", "DOR", "native"});
  // Column order note: for N=8 topologies DOR is undefined; the native
  // column then appears in the DOR slot and the last column is '-'.
  run_topology("K4,4 (N=8)", make_complete_bipartite(4, 4), nullptr, table);
  run_topology("Hypercube (N=8)", make_hypercube(3), nullptr, table);
  run_topology("TwistedHC (N=8)", make_twisted_hypercube(3), nullptr, table);
  const std::vector<int> dims{3, 3, 3};
  run_topology("3D Torus (N=27)", make_torus(dims), &dims, table);
  table.print(std::cout);
  std::cout << "\nPaper shape: MCF-extP tracks the bound; DOR/ILP-disjoint are"
               " strong on the torus; SSSP >50% worse at large buffers;"
               " native p2p up to 2.3x worse on K4,4.\n";
  return 0;
}
