// Weighted-demand & collective-lowering bench: synthesis cost and simulated
// completion as the workload departs from uniform all-to-all.
//
// Sweeps GenKautz(27,4) (exact master) and GenKautz(64,4) (FPTAS master —
// N=64 is past the exact-master limit) over Zipf demand skews
// s in {0, 0.6, 1.2} plus the lowered collectives (reduce-scatter,
// all-gather, allreduce). Every schedule is validated against its effective
// demand matrix before timing counts.
//
//   bench_collectives [--smoke] [--json PATH]
//
// --smoke is the CI gate: GenKautz(27,4) only, and it additionally asserts
// the weight-1 contract — a zipf:0 workload (non-default spec, unit weights)
// must reproduce the default uniform pipeline byte-for-byte.
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "collectives/collective.hpp"
#include "core/api.hpp"
#include "graph/topologies.hpp"
#include "runtime/ct_simulator.hpp"
#include "schedule/validate.hpp"
#include "schedule/xml_io.hpp"

namespace a2a {
namespace {

using bench::timed;

// Half a coarse-chunking grid cell (1/12 of a shard) plus slack: the bench
// compiles on the N=27-scale grid, so snapped route weights can sit up to
// 1/24 from the real-valued demand.
constexpr double kCoarseDemandTol = 4.5e-2;

struct WorkloadCase {
  std::string label;
  WorkloadSpec workload;
};

std::vector<WorkloadCase> workload_cases(bool include_collectives) {
  std::vector<WorkloadCase> cases;
  for (const double s : {0.0, 0.6, 1.2}) {
    WorkloadCase c;
    std::ostringstream label;
    label << "a2a/zipf:" << s;
    c.label = label.str();
    c.workload.demand.kind = DemandSpec::Kind::kZipf;
    c.workload.demand.zipf_s = s;
    cases.push_back(std::move(c));
  }
  if (include_collectives) {
    for (const CollectiveKind kind :
         {CollectiveKind::kReduceScatter, CollectiveKind::kAllGather,
          CollectiveKind::kAllReduce}) {
      WorkloadCase c;
      c.label = std::string(collective_name(kind)) + "/uniform";
      c.workload.collective = kind;
      cases.push_back(std::move(c));
    }
    WorkloadCase skewed_rs;
    skewed_rs.label = "rs/zipf:1.2";
    skewed_rs.workload.collective = CollectiveKind::kReduceScatter;
    skewed_rs.workload.demand.kind = DemandSpec::Kind::kZipf;
    skewed_rs.workload.demand.zipf_s = 1.2;
    cases.push_back(std::move(skewed_rs));
  }
  return cases;
}

struct CaseResult {
  std::string label;
  double synth_s = 0.0;
  double concurrent_flow = 0.0;
  double total_demand = 0.0;
  bool valid = false;
  double sim_s = 0.0;
  double algo_GBps = 0.0;
  long long num_flows = 0;
};

CaseResult run_case(const DiGraph& g, const Fabric& fabric,
                    const WorkloadCase& wc) {
  ToolchainOptions options;
  options.chunking = bench::coarse_chunking();
  options.workload = wc.workload;
  CaseResult out;
  out.label = wc.label;
  GeneratedSchedule result;
  out.synth_s = timed([&] { result = generate_schedule(g, fabric, options); });
  out.concurrent_flow = result.concurrent_flow;
  const int n = static_cast<int>(result.terminals.size());
  const DemandMatrix demand = effective_demand(options.workload, n);
  out.total_demand = demand.total();
  if (result.path.has_value()) {
    out.valid = validate_path_schedule(result.schedule_graph, *result.path,
                                       result.terminals, &demand,
                                       kCoarseDemandTol)
                    .ok;
    const CtSimResult sim =
        simulate_path_schedule(g, *result.path, 1 << 20, n, fabric);
    out.sim_s = sim.seconds;
    out.algo_GBps = sim.algo_throughput_GBps;
    out.num_flows = sim.num_flows;
  } else if (result.link.has_value()) {
    out.valid = validate_link_schedule(result.schedule_graph, *result.link,
                                       result.terminals, &demand,
                                       kCoarseDemandTol)
                    .ok;
  }
  return out;
}

void print_leg(const std::string& title, const std::vector<CaseResult>& rows) {
  std::cout << "\n--- " << title << " ---\n";
  Table table({"workload", "synth_s", "F", "demand", "valid", "sim_ms",
               "algo_GBps", "flows"});
  for (const CaseResult& r : rows) {
    table.row()
        .cell(r.label)
        .cell(r.synth_s, 3)
        .cell(r.concurrent_flow, 4)
        .cell(r.total_demand, 1)
        .cell(r.valid ? "yes" : "NO")
        .cell(r.sim_s * 1e3, 3)
        .cell(r.algo_GBps, 2)
        .cell(r.num_flows);
  }
  table.print(std::cout);
}

void leg_json(std::ostringstream& js, const std::vector<CaseResult>& rows) {
  js << "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CaseResult& r = rows[i];
    js << "{\"workload\": \"" << r.label << "\", \"synth_seconds\": "
       << r.synth_s << ", \"concurrent_flow\": " << r.concurrent_flow
       << ", \"total_demand\": " << r.total_demand << ", \"valid\": "
       << (r.valid ? "true" : "false") << ", \"sim_seconds\": " << r.sim_s
       << ", \"algo_GBps\": " << r.algo_GBps << ", \"num_flows\": "
       << r.num_flows << "}" << (i + 1 < rows.size() ? ", " : "");
  }
  js << "]";
}

/// The smoke gate's weight-1 contract: zipf:0 (a non-default workload that
/// lowers to unit weights) must reproduce the default pipeline bit-for-bit.
bool weight_one_matches_uniform(const DiGraph& g, const Fabric& fabric) {
  ToolchainOptions base;
  base.chunking = bench::coarse_chunking();
  ToolchainOptions unit = base;
  unit.workload.demand.kind = DemandSpec::Kind::kZipf;
  unit.workload.demand.zipf_s = 0.0;
  const GeneratedSchedule a = generate_schedule(g, fabric, base);
  const GeneratedSchedule b = generate_schedule(g, fabric, unit);
  if (a.concurrent_flow != b.concurrent_flow) return false;
  if (a.path.has_value() != b.path.has_value()) return false;
  if (a.path.has_value()) {
    return path_schedule_to_xml(a.schedule_graph, *a.path) ==
           path_schedule_to_xml(b.schedule_graph, *b.path);
  }
  if (a.link.has_value() != b.link.has_value()) return false;
  return !a.link.has_value() ||
         link_schedule_to_xml(*a.link) == link_schedule_to_xml(*b.link);
}

}  // namespace
}  // namespace a2a

int main(int argc, char** argv) {
  using namespace a2a;
  bool smoke = false;
  std::string json_path = "BENCH_collectives.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  std::cout << "=== Collectives: synthesis + completion vs demand skew ===\n";
  const Fabric fabric = hpc_cerio_fabric();
  bool failed = false;

  // ---- leg 1: GenKautz(27,4), exact master ------------------------------
  const DiGraph g27 = make_generalized_kautz(27, 4);
  std::cout << "\n" << g27.summary() << "\n";
  std::vector<CaseResult> rows27;
  {
    std::vector<WorkloadCase> cases = workload_cases(/*include_collectives=*/true);
    if (smoke) {
      // CI subset: one skewed all-to-all, one lowered collective.
      std::vector<WorkloadCase> subset;
      for (WorkloadCase& c : cases) {
        if (c.label == "a2a/zipf:1.2" || c.label == "rs/uniform") {
          subset.push_back(std::move(c));
        }
      }
      cases = std::move(subset);
    }
    for (const WorkloadCase& wc : cases) {
      rows27.push_back(run_case(g27, fabric, wc));
      if (!rows27.back().valid) {
        std::cerr << "FAIL: " << rows27.back().label
                  << " did not validate against its demand matrix\n";
        failed = true;
      }
      if (rows27.back().concurrent_flow <= 0.0) {
        std::cerr << "FAIL: " << rows27.back().label << " has F <= 0\n";
        failed = true;
      }
    }
  }
  print_leg("GenKautz(27,4)", rows27);

  // Weight-1 golden gate (always run: it is the cheap half of the contract).
  const bool unit_ok = weight_one_matches_uniform(g27, fabric);
  std::cout << "\nweight-1 byte-identity vs uniform: "
            << (unit_ok ? "ok" : "MISMATCH") << "\n";
  if (!unit_ok) {
    std::cerr << "FAIL: zipf:0 workload diverged from the uniform pipeline\n";
    failed = true;
  }

  // ---- leg 2: GenKautz(64,4), FPTAS master (full runs only) -------------
  std::vector<CaseResult> rows64;
  if (!smoke) {
    const DiGraph g64 = make_generalized_kautz(64, 4);
    std::cout << "\n" << g64.summary() << "\n";
    for (const WorkloadCase& wc : workload_cases(/*include_collectives=*/false)) {
      rows64.push_back(run_case(g64, fabric, wc));
      if (!rows64.back().valid) {
        std::cerr << "FAIL: N=64 " << rows64.back().label
                  << " did not validate against its demand matrix\n";
        failed = true;
      }
    }
    print_leg("GenKautz(64,4)", rows64);
  }

  // ---- JSON record ------------------------------------------------------
  if (!json_path.empty()) {
    std::ostringstream js;
    js << "{\n  \"benchmark\": \"bench_collectives\",\n  \"mode\": \""
       << (smoke ? "smoke" : "full")
       << "\",\n  \"weight_one_byte_identical\": "
       << (unit_ok ? "true" : "false") << ",\n  \"genkautz27\": ";
    leg_json(js, rows27);
    if (!rows64.empty()) {
      js << ",\n  \"genkautz64\": ";
      leg_json(js, rows64);
    }
    js << ",\n  \"metrics\": " << bench::metrics_snapshot_json() << "\n}\n";
    bench::append_bench_record(json_path, js.str());
  }

  if (failed) return 1;
  std::cout << "\nAll collective gates passed.\n";
  return 0;
}
