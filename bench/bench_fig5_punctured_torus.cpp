// Fig. 5 — Path-based throughput on punctured 3x3x3 tori.
//
// 10 random instances each of edge-punctured (3 bidirectional links removed)
// and node-punctured (3 nodes removed) tori; MCF-extP vs ILP-disjoint vs
// SSSP; min/avg/max envelope over instances, as the paper plots.
#include "bench_util.hpp"

#include <map>

#include "baselines/ilp_disjoint.hpp"
#include "baselines/sssp.hpp"
#include "mcf/path_mcf.hpp"
#include "schedule/validate.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

struct Envelope {
  double min = 1e30, max = 0, sum = 0;
  int count = 0;
  void add(double v) {
    min = std::min(min, v);
    max = std::max(max, v);
    sum += v;
    ++count;
  }
  [[nodiscard]] double avg() const { return sum / count; }
};

void run_family(const std::string& family, bool puncture_nodes_mode,
                Table& table) {
  const DiGraph base = make_torus({3, 3, 3});
  const Fabric fabric = hpc_cerio_fabric();
  const auto buffers = buffer_sweep(17, 33, 4);
  // scheme -> buffer index -> envelope
  std::map<std::string, std::vector<Envelope>> envelopes;
  for (const auto& name : {"MCF-extP", "ILP-disjoint", "SSSP"}) {
    envelopes[name].resize(buffers.size());
  }
  for (int instance = 0; instance < 10; ++instance) {
    Rng rng(1000 + static_cast<std::uint64_t>(instance));
    const DiGraph g = puncture_nodes_mode ? puncture_nodes(base, 3, rng)
                                          : puncture_edges(base, 3, rng);
    const int n = g.num_nodes();
    const auto nodes = all_nodes(g);

    DecomposedOptions mcf;
    mcf.master = MasterMode::kFptas;
    mcf.fptas_epsilon = 0.03;
    const auto flows = solve_decomposed_mcf(g, nodes, mcf);
    const PathSchedule mcf_sched =
        compile_path_schedule(g, paths_from_link_flows(g, flows), coarse_chunking());

    const PathSet disjoint = build_disjoint_path_set(g, nodes);
    IlpOptions ilp;
    ilp.lower_bound = 1.0 / flows.concurrent_flow;
    ilp.tolerance = 0.1;
    ilp.time_limit_s = 8.0;
    const auto ilp_result = ilp_single_path(g, disjoint, ilp);
    const PathSchedule ilp_sched = single_route_schedule(
        g, ilp_result.plan.commodities, ilp_result.plan.routes);

    const auto sssp = sssp_routes(g, nodes);
    const PathSchedule sssp_sched =
        single_route_schedule(g, sssp.commodities, sssp.routes);

    for (std::size_t b = 0; b < buffers.size(); ++b) {
      const double shard = buffers[b] / n;
      envelopes["MCF-extP"][b].add(
          simulate_path_schedule(g, mcf_sched, shard, n, fabric).algo_throughput_GBps);
      envelopes["ILP-disjoint"][b].add(
          simulate_path_schedule(g, ilp_sched, shard, n, fabric).algo_throughput_GBps);
      envelopes["SSSP"][b].add(
          simulate_path_schedule(g, sssp_sched, shard, n, fabric).algo_throughput_GBps);
    }
  }
  for (std::size_t b = 0; b < buffers.size(); ++b) {
    for (const auto& name : {"MCF-extP", "ILP-disjoint", "SSSP"}) {
      const Envelope& env = envelopes[name][b];
      table.row()
          .cell(family)
          .cell(human_bytes(buffers[b]))
          .cell(name)
          .cell(env.min, 2)
          .cell(env.avg(), 2)
          .cell(env.max, 2);
    }
  }
}

}  // namespace

int main() {
  std::cout << "=== Fig. 5: punctured 3D torus throughput, 10 instances "
               "(GB/s) ===\n\n";
  Table table({"Family", "Buffer", "Scheme", "min", "avg", "max"});
  run_family("edge-punctured", false, table);
  run_family("node-punctured", true, table);
  table.print(std::cout);
  std::cout << "\nPaper shape: MCF-extP ~ ILP-disjoint, both well above SSSP"
               " (~30% lower max link load).\n";
  return 0;
}
