// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// figure reproductions: BFS/Dijkstra/widest-path, LU factorization, the
// simplex on the master LP, one Fleischer phase, and schedule compilation.
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "graph/algorithms.hpp"
#include "graph/topologies.hpp"
#include "lp/lu.hpp"
#include "mcf/concurrent_flow.hpp"
#include "mcf/extraction.hpp"
#include "mcf/fleischer.hpp"

namespace {

using namespace a2a;

void BM_BfsDistances(benchmark::State& state) {
  const DiGraph g = make_generalized_kautz(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(g, 0));
  }
}
BENCHMARK(BM_BfsDistances)->Arg(64)->Arg(256)->Arg(1024);

void BM_DijkstraTree(benchmark::State& state) {
  const DiGraph g = make_generalized_kautz(static_cast<int>(state.range(0)), 4);
  std::vector<double> length(static_cast<std::size_t>(g.num_edges()), 1.0);
  Rng rng(1);
  for (auto& l : length) l = 0.5 + rng.next_double();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra_tree(g, 0, length));
  }
}
BENCHMARK(BM_DijkstraTree)->Arg(64)->Arg(256)->Arg(1024);

void BM_WidestPath(benchmark::State& state) {
  const DiGraph g = make_torus({8, 8});
  std::vector<double> width(static_cast<std::size_t>(g.num_edges()));
  Rng rng(2);
  for (auto& w : width) w = rng.next_double();
  for (auto _ : state) {
    benchmark::DoNotOptimize(widest_path(g, 0, 27, width));
  }
}
BENCHMARK(BM_WidestPath);

void BM_EdgeDisjointPaths(benchmark::State& state) {
  const DiGraph g = make_generalized_kautz(81, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(edge_disjoint_paths(g, 0, 40));
  }
}
BENCHMARK(BM_EdgeDisjointPaths);

void BM_LuFactorize(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next_double() - 0.5;
    a(i, i) += 4.0;
  }
  for (auto _ : state) {
    Matrix copy = a;
    LuFactorization lu(std::move(copy));
    benchmark::DoNotOptimize(lu.size());
  }
}
BENCHMARK(BM_LuFactorize)->Arg(64)->Arg(256)->Arg(512);

void BM_MasterLp(benchmark::State& state) {
  const DiGraph g = make_generalized_kautz(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_master_lp(g, all_nodes(g)));
  }
}
BENCHMARK(BM_MasterLp)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_FleischerGrouped(benchmark::State& state) {
  const DiGraph g = make_generalized_kautz(static_cast<int>(state.range(0)), 4);
  FleischerOptions options;
  options.epsilon = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleischer_grouped(g, all_nodes(g), options));
  }
}
BENCHMARK(BM_FleischerGrouped)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_CancelCycles(benchmark::State& state) {
  const DiGraph g = make_torus({6, 6});
  Rng rng(4);
  std::vector<double> flow(static_cast<std::size_t>(g.num_edges()));
  for (auto& f : flow) f = rng.next_double();
  for (auto _ : state) {
    auto copy = flow;
    cancel_cycles(g, copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_CancelCycles);

}  // namespace
