// LP-solver benchmark: sparse revised simplex (solve_lp) vs the dense
// reference (solve_lp_dense) on the Fig. 7 algorithm-runtime LPs — with the
// sparse solver measured in three configurations: the PR 2/3 "legacy" setup
// (product-form eta file, no presolve, exact ratio tests), Forrest–Tomlin
// factor updates alone, and the full default (FT + presolve + Harris +
// partial pricing) — plus the warm-start Fig. 9-style disabled-link sweep
// comparing cold starts, primal warm starts (feasibility restoration), and
// DUAL warm starts (the dual simplex iterating directly on the
// still-dual-feasible basis).
//
// Usage:
//   bench_lp [--smoke] [--json PATH]
//
// --smoke runs a reduced set and exits nonzero when (a) any two solver legs
// disagree on an objective beyond 1e-6 (dense vs eta vs FT vs FT+presolve —
// numeric drift in the new legs fails CI, not just the dual one), (b) the
// sparse solver fails to beat the dense one on the largest smoke LP, (c) the
// FT+presolve default loses to the legacy eta configuration on that LP,
// (d) the warm-started sweep needs more simplex iterations than cold
// starts, or (e) the dual-warm sweep changes an objective or needs more
// iterations than cold starts — so solver regressions fail CI loudly
// instead of rotting silently. --json writes the measurements as a
// BENCH_lp.json trajectory point.
#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "graph/algorithms.hpp"
#include "mcf/path_mcf.hpp"
#include "mcf/timestepped.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

/// The PR 2/PR 3 solver configuration, kept as the "before" side of the
/// Forrest–Tomlin / presolve / Harris upgrade.
SimplexOptions legacy_options() {
  SimplexOptions o;
  o.basis_update = LpBasisUpdate::kEta;
  o.presolve = false;
  o.harris_ratio = false;
  o.partial_pricing_threshold = 0;
  return o;
}

/// Forrest–Tomlin updates isolated: presolve and the ratio-test/pricing
/// changes disabled, so the ft column measures the factor-update win alone.
SimplexOptions ft_only_options() {
  SimplexOptions o = legacy_options();
  o.basis_update = LpBasisUpdate::kForrestTomlin;
  return o;
}

struct Comparison {
  std::string name;
  double dense_seconds = 0.0;
  double legacy_seconds = 0.0;  ///< eta file, no presolve/Harris.
  double ft_seconds = 0.0;      ///< Forrest–Tomlin alone.
  double sparse_seconds = 0.0;  ///< full default: FT + presolve + Harris.
  double dense_objective = 0.0;
  double legacy_objective = 0.0;
  double ft_objective = 0.0;
  double sparse_objective = 0.0;
  long long dense_iterations = 0;
  long long legacy_iterations = 0;
  long long ft_iterations = 0;
  long long sparse_iterations = 0;

  [[nodiscard]] double speedup() const {
    return sparse_seconds > 0.0 ? dense_seconds / sparse_seconds : 0.0;
  }
  /// The tentpole number: FT + presolve + Harris vs the PR 3 configuration.
  [[nodiscard]] double ft_presolve_speedup() const {
    return sparse_seconds > 0.0 ? legacy_seconds / sparse_seconds : 0.0;
  }
  [[nodiscard]] bool objectives_match() const {
    const double tol = 1e-6 * std::max(1.0, std::abs(dense_objective));
    return std::abs(dense_objective - legacy_objective) <= tol &&
           std::abs(dense_objective - ft_objective) <= tol &&
           std::abs(dense_objective - sparse_objective) <= tol;
  }
};

Comparison compare(const std::string& name, const LpModel& model) {
  Comparison c;
  c.name = name;
  const LpSolution dense = solve_lp_dense(model);
  c.dense_seconds = dense.solve_seconds;
  c.dense_objective = dense.objective;
  c.dense_iterations = dense.iterations;
  const LpSolution legacy = solve_lp(model, legacy_options());
  c.legacy_seconds = legacy.solve_seconds;
  c.legacy_objective = legacy.objective;
  c.legacy_iterations = legacy.iterations;
  const LpSolution ft = solve_lp(model, ft_only_options());
  c.ft_seconds = ft.solve_seconds;
  c.ft_objective = ft.objective;
  c.ft_iterations = ft.iterations;
  const LpSolution sparse = solve_lp(model);
  c.sparse_seconds = sparse.solve_seconds;
  c.sparse_objective = sparse.objective;
  c.sparse_iterations = sparse.iterations;
  return c;
}

struct WarmSweep {
  int scenarios = 0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;   ///< primal warm starts (restoration).
  double dual_seconds = 0.0;   ///< dual warm starts.
  long long cold_iterations = 0;
  long long warm_iterations = 0;
  long long dual_iterations = 0;
  bool objectives_match = true;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  std::cout << "=== bench_lp: sparse revised simplex vs dense reference ===\n\n";
  std::vector<Comparison> comparisons;

  // ---- Fig. 7 runtime LPs: full link MCF on GenKautz(d=4) -----------------
  for (const int n : smoke ? std::vector<int>{8, 10} : std::vector<int>{8, 10, 12}) {
    const DiGraph g = make_generalized_kautz(n, 4);
    const LpModel model = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
    comparisons.push_back(
        compare("link_mcf_genkautz" + std::to_string(n), model));
    std::cout << "  " << comparisons.back().name << ": "
              << comparisons.back().speedup() << "x\n";
  }

  // ---- tsMCF LPs (the exact small-fabric branch of Fig. 1) ----------------
  for (const int n : smoke ? std::vector<int>{8} : std::vector<int>{8, 10}) {
    const DiGraph g = n == 8 ? make_hypercube(3) : make_generalized_kautz(n, 4);
    const int steps = diameter(g) + 1;
    const LpModel model =
        build_tsmcf_model(g, steps, TerminalPairs(all_nodes(g)));
    comparisons.push_back(compare("tsmcf_n" + std::to_string(n), model));
    std::cout << "  " << comparisons.back().name << ": "
              << comparisons.back().speedup() << "x\n";
  }

  // ---- Fig. 9-style disabled-link sweep with warm starts ------------------
  WarmSweep sweep;
  {
    const int n = smoke ? 12 : 27;
    const DiGraph base = make_generalized_kautz(n, 4);
    const auto nodes = all_nodes(base);
    const PathSet candidates = build_disjoint_path_set(base, nodes);
    Rng rng(4242);
    std::vector<DiGraph> scenarios{base};
    for (int k = 1; k <= (smoke ? 3 : 8); ++k) {
      // "Disable" k random links by collapsing their capacity: the LP keeps
      // its exact shape, which is what makes warm starts across the sweep
      // valid (the Fig. 9 bench itself removes arcs and rebuilds).
      DiGraph g = base;
      for (int hit = 0; hit < k; ++hit) {
        const EdgeId e = static_cast<EdgeId>(
            rng.next_below(static_cast<std::uint64_t>(g.num_edges())));
        g.set_capacity(e, 1e-6);
      }
      scenarios.push_back(std::move(g));
    }
    sweep.scenarios = static_cast<int>(scenarios.size());
    LpBasis warm_primal;
    LpBasis warm_dual;
    for (const DiGraph& g : scenarios) {
      const auto cold = solve_path_mcf_exact(g, candidates);
      const auto warm_sol = solve_path_mcf_exact(g, candidates, {},
                                                 &warm_primal,
                                                 LpWarmMode::kPrimal);
      const auto dual_sol = solve_path_mcf_exact(g, candidates, {},
                                                 &warm_dual,
                                                 LpWarmMode::kDual);
      sweep.cold_seconds += cold.solve_seconds;
      sweep.warm_seconds += warm_sol.solve_seconds;
      sweep.dual_seconds += dual_sol.solve_seconds;
      sweep.cold_iterations += cold.lp_iterations;
      sweep.warm_iterations += warm_sol.lp_iterations;
      sweep.dual_iterations += dual_sol.lp_iterations;
      if (std::abs(cold.concurrent_flow - warm_sol.concurrent_flow) > 1e-6 ||
          std::abs(cold.concurrent_flow - dual_sol.concurrent_flow) > 1e-6) {
        sweep.objectives_match = false;
      }
    }
    std::cout << "  fig9_warm_sweep(" << sweep.scenarios << " scenarios): cold "
              << sweep.cold_iterations << " it -> primal-warm "
              << sweep.warm_iterations << " it -> dual-warm "
              << sweep.dual_iterations << " it\n\n";
  }

  // ---- report -------------------------------------------------------------
  Table table({"LP", "dense_s", "eta_s", "ft_s", "ft+pre_s", "vs_dense",
               "vs_eta", "it", "obj_match"});
  for (const auto& c : comparisons) {
    table.row()
        .cell(c.name)
        .cell(c.dense_seconds, 4)
        .cell(c.legacy_seconds, 4)
        .cell(c.ft_seconds, 4)
        .cell(c.sparse_seconds, 4)
        .cell(c.speedup(), 2)
        .cell(c.ft_presolve_speedup(), 2)
        .cell(c.sparse_iterations)
        .cell(c.objectives_match() ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << "\nFig. 9-style warm sweep (" << sweep.scenarios
            << " scenarios): cold " << sweep.cold_seconds << "s/"
            << sweep.cold_iterations << " it, primal-warm "
            << sweep.warm_seconds << "s/" << sweep.warm_iterations
            << " it, dual-warm " << sweep.dual_seconds << "s/"
            << sweep.dual_iterations << " it, objectives "
            << (sweep.objectives_match ? "match" : "MISMATCH") << "\n";

  if (!json_path.empty()) {
    std::ostringstream js;
    js << "{\n  \"benchmark\": \"bench_lp\",\n  \"mode\": \""
       << (smoke ? "smoke" : "full") << "\",\n  \"comparisons\": [\n";
    // (object is appended into the trajectory array below)
    for (std::size_t i = 0; i < comparisons.size(); ++i) {
      const auto& c = comparisons[i];
      js << "    {\"lp\": \"" << c.name << "\", \"dense_seconds\": "
         << c.dense_seconds << ", \"eta_seconds\": " << c.legacy_seconds
         << ", \"ft_seconds\": " << c.ft_seconds
         << ", \"sparse_seconds\": " << c.sparse_seconds
         << ", \"speedup\": " << c.speedup()
         << ", \"ft_presolve_speedup\": " << c.ft_presolve_speedup()
         << ", \"dense_iterations\": " << c.dense_iterations
         << ", \"eta_iterations\": " << c.legacy_iterations
         << ", \"ft_iterations\": " << c.ft_iterations
         << ", \"sparse_iterations\": " << c.sparse_iterations
         << ", \"objective\": " << c.sparse_objective << "}"
         << (i + 1 < comparisons.size() ? ",\n" : "\n");
    }
    js << "  ],\n  \"fig9_warm_sweep\": {\"scenarios\": " << sweep.scenarios
       << ", \"cold_seconds\": " << sweep.cold_seconds
       << ", \"warm_seconds\": " << sweep.warm_seconds
       << ", \"dual_seconds\": " << sweep.dual_seconds
       << ", \"cold_iterations\": " << sweep.cold_iterations
       << ", \"warm_iterations\": " << sweep.warm_iterations
       << ", \"dual_iterations\": " << sweep.dual_iterations
       << ", \"objectives_match\": " << (sweep.objectives_match ? "true" : "false")
       << "},\n  \"metrics\": " << metrics_snapshot_json() << "\n}\n";
    append_bench_record(json_path, js.str());
  }

  // ---- regression gate ----------------------------------------------------
  bool failed = false;
  for (const auto& c : comparisons) {
    if (!c.objectives_match()) {
      std::cerr << "FAIL: objective mismatch on " << c.name << ": dense "
                << c.dense_objective << " vs sparse " << c.sparse_objective
                << "\n";
      failed = true;
    }
  }
  if (!sweep.objectives_match) {
    std::cerr << "FAIL: warm-started sweep changed an objective\n";
    failed = true;
  }
  if (sweep.warm_iterations > sweep.cold_iterations) {
    std::cerr << "FAIL: warm starts took more simplex iterations ("
              << sweep.warm_iterations << ") than cold starts ("
              << sweep.cold_iterations << ")\n";
    failed = true;
  }
  if (sweep.dual_iterations > sweep.cold_iterations) {
    std::cerr << "FAIL: dual warm starts took more simplex iterations ("
              << sweep.dual_iterations << ") than cold starts ("
              << sweep.cold_iterations << ")\n";
    failed = true;
  }
  if (smoke) {
    // Perf gate on the slowest dense LP measured: the sparse solver must
    // win decisively there (it wins by >5x in practice; 1.5x absorbs CI
    // noise), and the FT+presolve default must not LOSE to the legacy eta
    // configuration (it wins by >1.3x on the large LPs; 0.9x absorbs noise
    // on the small smoke sizes).
    const auto big = std::max_element(
        comparisons.begin(), comparisons.end(),
        [](const Comparison& a, const Comparison& b) {
          return a.dense_seconds < b.dense_seconds;
        });
    if (big != comparisons.end() && big->speedup() < 1.5) {
      std::cerr << "FAIL: sparse speedup " << big->speedup()
                << "x below the 1.5x smoke floor on " << big->name << "\n";
      failed = true;
    }
    if (big != comparisons.end() && big->ft_presolve_speedup() < 0.9) {
      std::cerr << "FAIL: FT+presolve speedup " << big->ft_presolve_speedup()
                << "x below the 0.9x smoke floor on " << big->name << "\n";
      failed = true;
    }
  }
  if (smoke && obs::compiled_in()) {
    // Observability overhead gate: with metrics enabled, a smoke LP must
    // solve within 3% of the runtime-disabled path (plus a 20 ms absolute
    // floor so timer noise on sub-millisecond solves cannot trip the gate).
    // Min-of-reps on both sides filters scheduler jitter.
    const DiGraph g = make_generalized_kautz(10, 4);
    const LpModel model = build_link_mcf_model(g, TerminalPairs(all_nodes(g)));
    const auto min_solve_seconds = [&](int reps) {
      double best = 1e30;
      for (int r = 0; r < reps; ++r) {
        best = std::min(best, solve_lp(model).solve_seconds);
      }
      return best;
    };
    (void)min_solve_seconds(1);  // warm code and allocator before either leg
    obs::set_metrics_enabled(false);
    const double disabled_min = min_solve_seconds(5);
    obs::set_metrics_enabled(true);
    const double enabled_min = min_solve_seconds(5);
    const double limit = std::max(disabled_min * 1.03, disabled_min + 0.02);
    std::cout << "metrics overhead: disabled " << disabled_min
              << "s, enabled " << enabled_min << "s (limit " << limit
              << "s)\n";
    if (enabled_min > limit) {
      std::cerr << "FAIL: metrics-enabled solve (" << enabled_min
                << "s) exceeds the overhead limit (" << limit << "s)\n";
      failed = true;
    }
  }
  if (failed) return 1;
  std::cout << (smoke ? "\nsmoke OK\n" : "\nok\n");
  return 0;
}
