// Schedule service harness — latency and coalescing under mixed traffic.
//
//   bench_service [--smoke] [--json PATH]
//
// Drives the layered service (broker + admission, no HTTP in the loop) on
// GenKautz(27, d=4) and measures the three behaviours the service exists
// for:
//
//   * zero-copy hit path: repeated serves of a warm fingerprint — the reply
//     is an ArtifactView over the cache's mmap/heap bytes, never a decode.
//   * request coalescing: K threads issue the SAME fresh fingerprint at a
//     barrier; the LP/MCF pipeline must run exactly once.
//   * mixed traffic: W workers over a warm working set with unique misses
//     and one shared "dedup" miss interleaved — outcomes, per-class
//     latency, and served-throughput under contention.
//
// --smoke gates the service SLOs for CI: hit p50 < 1 ms, K identical
// concurrent misses collapse to exactly one synthesis, and zero requests
// dropped while schedulable (no deadline, queue not full => everything must
// be kServed). Appends a record to BENCH_service.json.
#include "bench_util.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/api.hpp"
#include "core/schedule_cache.hpp"
#include "service/admission.hpp"
#include "service/broker.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("a2a_bench_service_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

struct LatStats {
  std::vector<double> seconds;

  void add(double s) { seconds.push_back(s); }
  [[nodiscard]] double percentile(double p) const {
    if (seconds.empty()) return 0.0;
    std::vector<double> sorted = seconds;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  }
  [[nodiscard]] double mean() const {
    if (seconds.empty()) return 0.0;
    double sum = 0.0;
    for (const double s : seconds) sum += s;
    return sum / static_cast<double>(seconds.size());
  }
  [[nodiscard]] double max() const {
    return seconds.empty() ? 0.0
                           : *std::max_element(seconds.begin(), seconds.end());
  }
};

std::string format_seconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  }
  return buf;
}

/// Mints a fingerprint this process has not used: path_diversity_threshold
/// is fingerprint-relevant but, at values far above GenKautz(27,4)'s actual
/// diversity, never flips the Fig. 1 branch — same schedule, fresh
/// identity (the test suites use the same trick).
ToolchainOptions fresh_options() {
  static std::atomic<long long> next{10'000'000};
  ToolchainOptions options;
  options.path_diversity_threshold = next.fetch_add(1);
  return options;
}

void lat_json(std::ostringstream& js, const char* name, const LatStats& st) {
  js << "\"" << name << "\": {\"count\": " << st.seconds.size()
     << ", \"mean_s\": " << st.mean() << ", \"p50_s\": " << st.percentile(0.5)
     << ", \"p99_s\": " << st.percentile(0.99) << ", \"max_s\": " << st.max()
     << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  std::cout << "=== Schedule service: zero-copy hits, coalescing, mixed "
               "traffic ===\n";

  TempDir dir;
  ScheduleCacheOptions cache_options;
  cache_options.disk_dir = (dir.path / "cache").string();
  ScheduleCache cache(std::move(cache_options));
  ThreadPool pool(4);
  service::ScheduleBroker broker(&cache, &pool);
  service::AdmissionQueue admission(&broker);

  const DiGraph g27 = make_generalized_kautz(27, 4);
  const Fabric fabric = hpc_cerio_fabric();
  std::cout << "\n" << g27.summary() << "\n";

  // ---- leg 1: cold synthesis + zero-copy hit path -------------------------
  const ToolchainOptions warm_options = fresh_options();
  const auto cold = admission.serve(g27, fabric, warm_options);
  if (cold.outcome != service::ServiceOutcome::kServed) {
    std::cerr << "FAIL: cold synthesis not served: " << cold.error << "\n";
    return 1;
  }
  std::cout << "cold miss (leader synthesis): "
            << format_seconds(cold.total_seconds) << ", artifact "
            << cold.view.envelope.size() << " bytes\n";
  const double cold_synth_s = cold.total_seconds;

  LatStats hit_path;
  const int hit_reps = smoke ? 200 : 2000;
  bool hit_path_clean = true;
  for (int i = 0; i < hit_reps; ++i) {
    const auto reply = admission.serve(g27, fabric, warm_options);
    if (reply.outcome != service::ServiceOutcome::kServed || !reply.hit) {
      hit_path_clean = false;
      continue;
    }
    hit_path.add(reply.total_seconds);
  }
  std::cout << "zero-copy hit path: p50 "
            << format_seconds(hit_path.percentile(0.5)) << ", p99 "
            << format_seconds(hit_path.percentile(0.99)) << " over "
            << hit_path.seconds.size() << " reps\n";

  // ---- leg 2: K identical concurrent misses -> ONE synthesis --------------
  const int kCoalesce = 8;
  const ToolchainOptions dedup_options = fresh_options();
  const std::uint64_t runs_before = pipeline_invocations();
  std::vector<service::ServiceReply> coalesce_replies(kCoalesce);
  {
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(kCoalesce);
    for (int t = 0; t < kCoalesce; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < kCoalesce) std::this_thread::yield();
        coalesce_replies[static_cast<std::size_t>(t)] =
            admission.serve(g27, fabric, dedup_options);
      });
    }
    for (auto& th : threads) th.join();
  }
  const std::uint64_t coalesce_runs = pipeline_invocations() - runs_before;
  int coalesced_waiters = 0;
  int coalesce_served = 0;
  for (const auto& r : coalesce_replies) {
    if (r.outcome == service::ServiceOutcome::kServed) ++coalesce_served;
    if (r.coalesced) ++coalesced_waiters;
  }
  std::cout << kCoalesce << " concurrent identical misses: " << coalesce_runs
            << " pipeline run(s), " << coalesced_waiters
            << " coalesced waiter(s), " << coalesce_served << "/" << kCoalesce
            << " served\n";

  // ---- leg 3: mixed hit/miss/dedup traffic --------------------------------
  // Warm working set the hit traffic rotates over; each worker also carries
  // one unique miss (staggered) and every worker races one shared dedup
  // fingerprint at the same iteration.
  const int workers = smoke ? 4 : 8;
  const int reps_per_worker = smoke ? 150 : 600;
  const int warm_count = smoke ? 2 : 4;
  std::vector<ToolchainOptions> warm_set;
  warm_set.push_back(warm_options);
  for (int i = 1; i < warm_count; ++i) {
    warm_set.push_back(fresh_options());
    const auto warm = admission.serve(g27, fabric, warm_set.back());
    if (warm.outcome != service::ServiceOutcome::kServed) {
      std::cerr << "FAIL: warm-set synthesis not served: " << warm.error
                << "\n";
      return 1;
    }
  }
  std::vector<ToolchainOptions> unique_miss(workers);
  for (auto& options : unique_miss) options = fresh_options();
  const ToolchainOptions shared_miss = fresh_options();

  const std::uint64_t mixed_runs_before = pipeline_invocations();
  std::mutex stats_mutex;
  LatStats mixed_hit, mixed_miss, mixed_coalesced;
  std::atomic<int> served{0}, rejected{0}, shed{0}, failed{0};
  std::atomic<int> mixed_ready{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const double stream_t0 = now_seconds();
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      mixed_ready.fetch_add(1);
      while (mixed_ready.load() < workers) std::this_thread::yield();
      for (int i = 0; i < reps_per_worker; ++i) {
        // Unique miss staggered per worker; shared dedup miss at the same
        // iteration on every worker; warm-set hits otherwise.
        const ToolchainOptions* options;
        if (i == reps_per_worker / 4 + w) {
          options = &unique_miss[static_cast<std::size_t>(w)];
        } else if (i == reps_per_worker / 2) {
          options = &shared_miss;
        } else {
          options = &warm_set[static_cast<std::size_t>(
              (w + i) % warm_set.size())];
        }
        const auto reply = admission.serve(g27, fabric, *options);
        switch (reply.outcome) {
          case service::ServiceOutcome::kServed: served.fetch_add(1); break;
          case service::ServiceOutcome::kRejectedQueueFull:
            rejected.fetch_add(1);
            break;
          case service::ServiceOutcome::kShedDeadline: shed.fetch_add(1); break;
          case service::ServiceOutcome::kFailed: failed.fetch_add(1); break;
        }
        if (reply.outcome == service::ServiceOutcome::kServed) {
          std::lock_guard<std::mutex> lock(stats_mutex);
          if (reply.hit) mixed_hit.add(reply.total_seconds);
          else if (reply.coalesced) mixed_coalesced.add(reply.total_seconds);
          else mixed_miss.add(reply.total_seconds);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const double stream_s = now_seconds() - stream_t0;
  const std::uint64_t mixed_runs = pipeline_invocations() - mixed_runs_before;
  const int total_requests = workers * reps_per_worker;
  const double throughput = static_cast<double>(served.load()) / stream_s;

  std::cout << "\n--- mixed traffic: " << workers << " workers x "
            << reps_per_worker << " requests ---\n";
  Table table({"class", "count", "mean", "p50", "p99", "max"});
  const struct { const char* name; const LatStats* st; } rows[] = {
      {"hit", &mixed_hit}, {"miss", &mixed_miss},
      {"coalesced", &mixed_coalesced}};
  for (const auto& row : rows) {
    table.row()
        .cell(row.name)
        .cell(static_cast<long long>(row.st->seconds.size()))
        .cell(format_seconds(row.st->mean()))
        .cell(format_seconds(row.st->percentile(0.5)))
        .cell(format_seconds(row.st->percentile(0.99)))
        .cell(format_seconds(row.st->max()));
  }
  table.print(std::cout);
  std::cout << "served " << served.load() << "/" << total_requests
            << ", rejected " << rejected.load() << ", shed " << shed.load()
            << ", failed " << failed.load() << ", pipeline runs " << mixed_runs
            << ", wall " << format_seconds(stream_s) << ", "
            << static_cast<long long>(throughput) << " served/s\n";

  // ---- JSON record --------------------------------------------------------
  if (!json_path.empty()) {
    std::ostringstream js;
    js << "{\n  \"benchmark\": \"bench_service\",\n  \"mode\": \""
       << (smoke ? "smoke" : "full")
       << "\",\n  \"topology\": \"genkautz27_d4\",\n  \"cold_synth_s\": "
       << cold_synth_s << ",\n  ";
    lat_json(js, "hit_path", hit_path);
    js << ",\n  \"coalesce\": {\"threads\": " << kCoalesce
       << ", \"pipeline_runs\": " << coalesce_runs
       << ", \"coalesced_waiters\": " << coalesced_waiters
       << ", \"served\": " << coalesce_served << "},\n  \"mixed\": {"
       << "\"workers\": " << workers << ", \"requests\": " << total_requests
       << ", \"served\": " << served.load()
       << ", \"rejected_queue_full\": " << rejected.load()
       << ", \"shed_deadline\": " << shed.load()
       << ", \"failed\": " << failed.load()
       << ", \"pipeline_runs\": " << mixed_runs
       << ", \"wall_s\": " << stream_s
       << ", \"served_per_s\": " << throughput << ",\n    ";
    lat_json(js, "hit", mixed_hit);
    js << ",\n    ";
    lat_json(js, "miss", mixed_miss);
    js << ",\n    ";
    lat_json(js, "coalesced", mixed_coalesced);
    js << "\n  },\n  \"metrics\": " << metrics_snapshot_json() << "\n}\n";
    append_bench_record(json_path, js.str());
  }

  // ---- service gates ------------------------------------------------------
  bool gate_failed = false;
  if (!hit_path_clean || hit_path.seconds.empty() ||
      hit_path.percentile(0.5) >= 1e-3) {
    std::cerr << "FAIL: zero-copy hit path p50 "
              << (hit_path.seconds.empty()
                      ? std::string("(no hits)")
                      : std::to_string(hit_path.percentile(0.5) * 1e3) + " ms")
              << " — expected every rep served as a hit with p50 < 1 ms\n";
    gate_failed = true;
  }
  if (coalesce_runs != 1 || coalesce_served != kCoalesce) {
    std::cerr << "FAIL: " << kCoalesce << " identical concurrent misses ran "
              << coalesce_runs << " pipeline run(s) and served "
              << coalesce_served << " — expected exactly 1 run, all served\n";
    gate_failed = true;
  }
  if (served.load() != total_requests) {
    std::cerr << "FAIL: " << (total_requests - served.load()) << "/"
              << total_requests << " schedulable requests dropped (rejected "
              << rejected.load() << ", shed " << shed.load() << ", failed "
              << failed.load() << ") — no deadline was set and the queue "
              << "bound exceeds the worker count, so all must be served\n";
    gate_failed = true;
  }
  if (gate_failed) return 1;
  std::cout << "\nAll service gates passed.\n";
  return 0;
}
