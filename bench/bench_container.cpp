// SchedBin container study — size and (de)serialization throughput vs the
// §4 XML dialect across the Fig. 10 topology families, the v2 dict codec vs
// rle/delta on Fig. 3/4-style schedules, mmap chunk reads vs whole-file
// slurps, plus the schedule cache's effect on repeat generate_schedule()
// calls.
//
//   bench_container                 full sweep
//   bench_container --smoke         one small case + hard assertions (CI
//                                   gate): dict beats rle/delta on the path
//                                   schedule, and an mmap single-chunk read
//                                   touches a fraction of the file. Nonzero
//                                   exit on violation.
//   bench_container --json PATH     append a BENCH_container.json trajectory
//                                   record (headline ratios + the metrics
//                                   registry snapshot for the run).
#include "bench_util.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/thread_pool.hpp"
#include "container/schedbin.hpp"
#include "core/api.hpp"
#include "core/schedule_cache.hpp"
#include "schedule/xml_io.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

struct Case {
  std::string name;
  DiGraph graph;
};

std::vector<Case> fig10_cases(bool smoke) {
  Rng rng(1);
  std::vector<Case> cases;
  cases.push_back({"GenKautz(16,4)", make_generalized_kautz(16, 4)});
  if (smoke) return cases;
  cases.push_back({"GenKautz(32,4)", make_generalized_kautz(32, 4)});
  cases.push_back({"GenKautz(64,4)", make_generalized_kautz(64, 4)});
  cases.push_back({"Torus2D(36)", make_torus_2d(36)});
  cases.push_back({"Xpander(4,8)", make_xpander(4, 8, rng)});
  cases.push_back({"RandReg(32,4)", make_random_regular(32, 4, rng)});
  return cases;
}

/// Median-of-reps seconds for a callable, adaptively repeated so fast
/// serializers get stable numbers.
template <typename Fn>
double best_time(Fn&& fn) {
  double best = 1e30;
  double total = 0.0;
  for (int rep = 0; rep < 20 && (rep < 3 || total < 0.2); ++rep) {
    const double t = timed(fn);
    best = std::min(best, t);
    total += t;
  }
  return best;
}

double mbps(std::size_t bytes, double seconds) {
  return static_cast<double>(bytes) / 1e6 / seconds;
}

struct TempFile {
  std::filesystem::path path;
  explicit TempFile(const std::string& stem) {
    path = std::filesystem::temp_directory_path() /
           (stem + "_" + std::to_string(::getpid()) + ".schedbin");
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  void write(std::string_view bytes) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
};

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  ThreadPool pool;
  ToolchainOptions toolchain;
  toolchain.chunking = coarse_chunking();
  const Fabric fabric = hpc_cerio_fabric();
  int failures = 0;

  std::cout << "=== SchedBin vs XML: size across the Fig. 10 topology sweep "
               "===\n\n";
  Table sizes({"topology", "routes", "xml KB", "raw KB", "rle KB", "delta KB",
               "dict KB", "xml/delta", "delta/dict"});
  Table speeds({"topology", "xml enc MB/s", "xml dec MB/s", "bin enc MB/s",
                "bin dec MB/s", "bin enc(mt) MB/s", "bin dec(mt) MB/s"});

  double worst_ratio = 1e30;
  double worst_dict_gain = 1e30;
  std::string mmap_blob;  // largest delta container, reused below
  for (Case& c : fig10_cases(smoke)) {
    const GeneratedSchedule generated =
        generate_schedule(c.graph, fabric, toolchain);
    const PathSchedule& sched = *generated.path;
    const DiGraph& g = generated.schedule_graph;

    const std::string xml = path_schedule_to_xml(g, sched);
    std::string by_codec[4];
    for (const SchedBinCodec codec :
         {SchedBinCodec::kRaw, SchedBinCodec::kRle, SchedBinCodec::kDelta,
          SchedBinCodec::kDict}) {
      SchedBinOptions options;
      options.codec = codec;
      // Small chunks so the frame dictionary proves itself ACROSS chunks
      // and the mmap section below has chunks to pick from.
      options.chunk_words = 4096;
      by_codec[static_cast<int>(codec)] = path_schedule_to_schedbin(g, sched, options);
    }
    const std::string& delta = by_codec[static_cast<int>(SchedBinCodec::kDelta)];
    const std::string& dict = by_codec[static_cast<int>(SchedBinCodec::kDict)];
    {
      // The mmap section wants plenty of chunks even for the small smoke
      // case, so a single-chunk read is a small fraction of the file.
      SchedBinOptions mm;
      mm.codec = SchedBinCodec::kDelta;
      mm.chunk_words = 256;
      mmap_blob = path_schedule_to_schedbin(g, sched, mm);
    }
    const double ratio =
        static_cast<double>(xml.size()) / static_cast<double>(delta.size());
    const double dict_gain =
        static_cast<double>(delta.size()) / static_cast<double>(dict.size());
    worst_ratio = std::min(worst_ratio, ratio);
    worst_dict_gain = std::min(worst_dict_gain, dict_gain);
    if (dict.size() >= by_codec[1].size() || dict.size() >= delta.size()) {
      std::cout << "FAIL: dict (" << dict.size() << " B) does not beat rle ("
                << by_codec[1].size() << " B) / delta (" << delta.size()
                << " B) on " << c.name << "\n";
      ++failures;
    }
    sizes.row()
        .cell(c.name)
        .cell(static_cast<long long>(sched.entries.size()))
        .cell(static_cast<double>(xml.size()) / 1024.0, 1)
        .cell(static_cast<double>(by_codec[0].size()) / 1024.0, 1)
        .cell(static_cast<double>(by_codec[1].size()) / 1024.0, 1)
        .cell(static_cast<double>(delta.size()) / 1024.0, 1)
        .cell(static_cast<double>(dict.size()) / 1024.0, 1)
        .cell(ratio, 1)
        .cell(dict_gain, 2);

    SchedBinOptions serial;
    serial.codec = SchedBinCodec::kDelta;
    SchedBinOptions threaded = serial;
    threaded.chunk_words = 4096;  // enough chunks to spread across the pool
    threaded.pool = &pool;
    const double xml_enc = best_time([&] { (void)path_schedule_to_xml(g, sched); });
    const double xml_dec = best_time([&] { (void)path_schedule_from_xml(g, xml); });
    const double bin_enc =
        best_time([&] { (void)path_schedule_to_schedbin(g, sched, serial); });
    const double bin_dec =
        best_time([&] { (void)path_schedule_from_schedbin(g, delta); });
    const double bin_enc_mt =
        best_time([&] { (void)path_schedule_to_schedbin(g, sched, threaded); });
    const std::string delta_mt = path_schedule_to_schedbin(g, sched, threaded);
    const double bin_dec_mt = best_time(
        [&] { (void)path_schedule_from_schedbin(g, delta_mt, &pool); });
    // Throughput normalized by the logical payload (the XML byte count), so
    // the columns compare end-to-end schedule (de)serialization rates.
    speeds.row()
        .cell(c.name)
        .cell(mbps(xml.size(), xml_enc), 1)
        .cell(mbps(xml.size(), xml_dec), 1)
        .cell(mbps(xml.size(), bin_enc), 1)
        .cell(mbps(xml.size(), bin_dec), 1)
        .cell(mbps(xml.size(), bin_enc_mt), 1)
        .cell(mbps(xml.size(), bin_dec_mt), 1);
  }
  sizes.print(std::cout);
  std::cout << "\nworst xml/delta compression ratio: " << worst_ratio
            << (worst_ratio >= 5.0 ? "  (meets the >=5x target)" : "  (BELOW 5x!)")
            << "\nworst delta/dict gain: " << worst_dict_gain
            << (worst_dict_gain > 1.0 ? "  (dict wins everywhere)"
                                      : "  (DICT LOSES!)")
            << "\n\n=== schedule (de)serialization throughput (logical MB/s) "
               "===\n\n";
  speeds.print(std::cout);

  std::cout << "\n=== mmap chunk reads vs whole-file slurp ===\n\n";
  {
    const TempFile file("a2a_bench_mmap");
    file.write(mmap_blob);
    const double slurp_s = best_time([&] {
      const std::string bytes = slurp(file.path);
      (void)schedbin_inspect(bytes);
    });
    const double open_s = best_time(
        [&] { (void)SchedBinReader::open_file(file.path.string()); });
    const SchedBinReader reader = SchedBinReader::open_file(file.path.string());
    std::vector<std::int64_t> chunk;
    const std::uint32_t mid = reader.num_chunks() / 2;
    const double one_chunk_s = best_time([&] {
      const SchedBinReader r = SchedBinReader::open_file(file.path.string());
      std::vector<std::int64_t> local;
      r.decode_chunk(mid, local);
    });
    SchedBinReader counted = SchedBinReader::open_file(file.path.string());
    counted.decode_chunk(mid, chunk);
    Table mmap_table({"operation", "time us", "bytes touched", "of file"});
    const auto pct = [&](std::size_t n) {
      return 100.0 * static_cast<double>(n) /
             static_cast<double>(mmap_blob.size());
    };
    mmap_table.row()
        .cell("slurp + validate all")
        .cell(slurp_s * 1e6, 1)
        .cell(static_cast<long long>(mmap_blob.size()))
        .cell(100.0, 1);
    mmap_table.row()
        .cell("mmap open (hdr+trailer)")
        .cell(open_s * 1e6, 1)
        .cell(static_cast<long long>(
            SchedBinReader::open_file(file.path.string()).bytes_read()))
        .cell(pct(SchedBinReader::open_file(file.path.string()).bytes_read()), 1);
    mmap_table.row()
        .cell("mmap open + 1 chunk")
        .cell(one_chunk_s * 1e6, 1)
        .cell(static_cast<long long>(counted.bytes_read()))
        .cell(pct(counted.bytes_read()), 1);
    mmap_table.print(std::cout);
    if (counted.bytes_read() * 2 >= mmap_blob.size()) {
      std::cout << "FAIL: single-chunk mmap read touched "
                << counted.bytes_read() << " of " << mmap_blob.size()
                << " bytes\n";
      ++failures;
    }
  }

  std::cout << "\n=== ScheduleCache: repeat generate_schedule() cost ===\n\n";
  Table cache_table({"topology", "pipeline s", "cached s", "speedup"});
  ScheduleCache cache;
  for (Case& c : fig10_cases(smoke)) {
    if (c.graph.num_nodes() > 32) continue;  // keep the demo quick
    const double cold = timed(
        [&] { (void)generate_schedule(c.graph, fabric, toolchain, &cache); });
    const double warm = best_time(
        [&] { (void)generate_schedule(c.graph, fabric, toolchain, &cache); });
    cache_table.row().cell(c.name).cell(cold, 3).cell(warm, 6).cell(cold / warm, 0);
  }
  cache_table.print(std::cout);
  std::cout << "\ncache stats: " << cache.stats().hits() << " hits, "
            << cache.stats().misses << " misses ("
            << cache.memory_bytes() / 1024 << " KiB resident)\n";

  if (!json_path.empty()) {
    std::ostringstream js;
    js << "{\n  \"benchmark\": \"bench_container\",\n  \"mode\": \""
       << (smoke ? "smoke" : "full")
       << "\",\n  \"worst_xml_delta_ratio\": " << worst_ratio
       << ",\n  \"worst_delta_dict_gain\": " << worst_dict_gain
       << ",\n  \"cache_hits\": " << cache.stats().hits()
       << ",\n  \"cache_misses\": " << cache.stats().misses
       << ",\n  \"failures\": " << failures
       << ",\n  \"metrics\": " << metrics_snapshot_json() << "\n}\n";
    append_bench_record(json_path, js.str());
  }

  if (smoke) {
    std::cout << (failures == 0 ? "\nSMOKE OK\n" : "\nSMOKE FAILED\n");
  }
  return failures == 0 ? 0 : 1;
}
