// SchedBin container study — size and (de)serialization throughput vs the
// §4 XML dialect across the Fig. 10 topology families, plus the schedule
// cache's effect on repeat generate_schedule() calls.
#include "bench_util.hpp"

#include "common/thread_pool.hpp"
#include "container/schedbin.hpp"
#include "core/api.hpp"
#include "core/schedule_cache.hpp"
#include "schedule/xml_io.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

struct Case {
  std::string name;
  DiGraph graph;
};

std::vector<Case> fig10_cases() {
  Rng rng(1);
  std::vector<Case> cases;
  cases.push_back({"GenKautz(16,4)", make_generalized_kautz(16, 4)});
  cases.push_back({"GenKautz(32,4)", make_generalized_kautz(32, 4)});
  cases.push_back({"GenKautz(64,4)", make_generalized_kautz(64, 4)});
  cases.push_back({"Torus2D(36)", make_torus_2d(36)});
  cases.push_back({"Xpander(4,8)", make_xpander(4, 8, rng)});
  cases.push_back({"RandReg(32,4)", make_random_regular(32, 4, rng)});
  return cases;
}

/// Median-of-reps seconds for a callable, adaptively repeated so fast
/// serializers get stable numbers.
template <typename Fn>
double best_time(Fn&& fn) {
  double best = 1e30;
  double total = 0.0;
  for (int rep = 0; rep < 20 && (rep < 3 || total < 0.2); ++rep) {
    const double t = timed(fn);
    best = std::min(best, t);
    total += t;
  }
  return best;
}

double mbps(std::size_t bytes, double seconds) {
  return static_cast<double>(bytes) / 1e6 / seconds;
}

}  // namespace

int main() {
  ThreadPool pool;
  ToolchainOptions toolchain;
  toolchain.chunking = coarse_chunking();
  const Fabric fabric = hpc_cerio_fabric();

  std::cout << "=== SchedBin vs XML: size across the Fig. 10 topology sweep "
               "===\n\n";
  Table sizes({"topology", "routes", "xml KB", "raw KB", "rle KB", "delta KB",
               "xml/delta"});
  Table speeds({"topology", "xml enc MB/s", "xml dec MB/s", "bin enc MB/s",
                "bin dec MB/s", "bin enc(mt) MB/s", "bin dec(mt) MB/s"});

  double worst_ratio = 1e30;
  for (Case& c : fig10_cases()) {
    const GeneratedSchedule generated =
        generate_schedule(c.graph, fabric, toolchain);
    const PathSchedule& sched = *generated.path;
    const DiGraph& g = generated.schedule_graph;

    const std::string xml = path_schedule_to_xml(g, sched);
    std::string by_codec[3];
    for (const SchedBinCodec codec :
         {SchedBinCodec::kRaw, SchedBinCodec::kRle, SchedBinCodec::kDelta}) {
      SchedBinOptions options;
      options.codec = codec;
      by_codec[static_cast<int>(codec)] = path_schedule_to_schedbin(g, sched, options);
    }
    const std::string& delta = by_codec[static_cast<int>(SchedBinCodec::kDelta)];
    const double ratio =
        static_cast<double>(xml.size()) / static_cast<double>(delta.size());
    worst_ratio = std::min(worst_ratio, ratio);
    sizes.row()
        .cell(c.name)
        .cell(static_cast<long long>(sched.entries.size()))
        .cell(static_cast<double>(xml.size()) / 1024.0, 1)
        .cell(static_cast<double>(by_codec[0].size()) / 1024.0, 1)
        .cell(static_cast<double>(by_codec[1].size()) / 1024.0, 1)
        .cell(static_cast<double>(delta.size()) / 1024.0, 1)
        .cell(ratio, 1);

    SchedBinOptions serial;
    serial.codec = SchedBinCodec::kDelta;
    SchedBinOptions threaded = serial;
    threaded.chunk_words = 4096;  // enough chunks to spread across the pool
    threaded.pool = &pool;
    const double xml_enc = best_time([&] { (void)path_schedule_to_xml(g, sched); });
    const double xml_dec = best_time([&] { (void)path_schedule_from_xml(g, xml); });
    const double bin_enc =
        best_time([&] { (void)path_schedule_to_schedbin(g, sched, serial); });
    const double bin_dec =
        best_time([&] { (void)path_schedule_from_schedbin(g, delta); });
    const double bin_enc_mt =
        best_time([&] { (void)path_schedule_to_schedbin(g, sched, threaded); });
    const std::string delta_mt = path_schedule_to_schedbin(g, sched, threaded);
    const double bin_dec_mt = best_time(
        [&] { (void)path_schedule_from_schedbin(g, delta_mt, &pool); });
    // Throughput normalized by the logical payload (the XML byte count), so
    // the columns compare end-to-end schedule (de)serialization rates.
    speeds.row()
        .cell(c.name)
        .cell(mbps(xml.size(), xml_enc), 1)
        .cell(mbps(xml.size(), xml_dec), 1)
        .cell(mbps(xml.size(), bin_enc), 1)
        .cell(mbps(xml.size(), bin_dec), 1)
        .cell(mbps(xml.size(), bin_enc_mt), 1)
        .cell(mbps(xml.size(), bin_dec_mt), 1);
  }
  sizes.print(std::cout);
  std::cout << "\nworst xml/delta compression ratio: " << worst_ratio
            << (worst_ratio >= 5.0 ? "  (meets the >=5x target)" : "  (BELOW 5x!)")
            << "\n\n=== schedule (de)serialization throughput (logical MB/s) "
               "===\n\n";
  speeds.print(std::cout);

  std::cout << "\n=== ScheduleCache: repeat generate_schedule() cost ===\n\n";
  Table cache_table({"topology", "pipeline s", "cached s", "speedup"});
  ScheduleCache cache;
  for (Case& c : fig10_cases()) {
    if (c.graph.num_nodes() > 32) continue;  // keep the demo quick
    const double cold = timed(
        [&] { (void)generate_schedule(c.graph, fabric, toolchain, &cache); });
    const double warm = best_time(
        [&] { (void)generate_schedule(c.graph, fabric, toolchain, &cache); });
    cache_table.row().cell(c.name).cell(cold, 3).cell(warm, 6).cell(cold / warm, 0);
  }
  cache_table.print(std::cout);
  std::cout << "\ncache stats: " << cache.stats().hits() << " hits, "
            << cache.stats().misses << " misses\n";
  return 0;
}
