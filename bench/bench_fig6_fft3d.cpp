// Fig. 6 — 3D FFT time (27 processes, 32 threads each) on the 3x3x3 torus
// and an edge-punctured torus, for grid widths 729 and 1296.
//
// Per the paper's slab decomposition, each bar splits into (1) 2D FFTs +
// pack, (2) all-to-all, (3) unpack + 1D FFTs. Compute bands are calibrated
// from a real sample FFT; the all-to-all band is the cut-through simulator
// running each scheme's path schedule on 229.6 MB (729) / 1.29 GB (1296)
// per-rank buffers.
#include "bench_util.hpp"

#include "baselines/dor.hpp"
#include "baselines/ewsp.hpp"
#include "baselines/ilp_disjoint.hpp"
#include "baselines/native_p2p.hpp"
#include "baselines/sssp.hpp"
#include "mcf/path_mcf.hpp"
#include "workloads/fft3d.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

std::vector<std::pair<std::string, PathSchedule>> build_schemes(
    const DiGraph& g, bool torus_dor) {
  const auto nodes = all_nodes(g);
  std::vector<std::pair<std::string, PathSchedule>> out;

  const PathSet ewsp = ewsp_path_set(g, nodes, 24);
  std::vector<std::vector<double>> equal;
  for (const auto& cands : ewsp.candidates) equal.emplace_back(cands.size(), 1.0);
  out.emplace_back("EwSP", compile_path_schedule(g, ewsp, equal));

  const auto native = native_p2p_routes(g, nodes);
  out.emplace_back("OMPI",
                   single_route_schedule(g, native.commodities, native.routes));

  if (torus_dor) {
    const auto dor = dor_routes(g, {3, 3, 3}, true);
    out.emplace_back("DOR",
                     single_route_schedule(g, dor.commodities, dor.routes));
  }

  const auto sssp = sssp_routes(g, nodes);
  out.emplace_back("SSSP",
                   single_route_schedule(g, sssp.commodities, sssp.routes));

  DecomposedOptions mcf;
  mcf.master = MasterMode::kFptas;
  mcf.fptas_epsilon = 0.03;
  const auto flows = solve_decomposed_mcf(g, nodes, mcf);
  out.emplace_back("MCF-extP",
                   compile_path_schedule(g, paths_from_link_flows(g, flows), coarse_chunking()));

  const PathSet disjoint = build_disjoint_path_set(g, nodes);
  IlpOptions ilp;
  ilp.lower_bound = 1.0 / flows.concurrent_flow;
  ilp.tolerance = 0.1;
  ilp.time_limit_s = 8.0;
  const auto ilp_result = ilp_single_path(g, disjoint, ilp);
  out.emplace_back("ILP-disjoint",
                   single_route_schedule(g, ilp_result.plan.commodities,
                                         ilp_result.plan.routes));
  return out;
}

void run_case(const std::string& label, const DiGraph& g, bool torus_dor,
              Table& table) {
  const Fabric fabric = hpc_cerio_fabric();
  const int n = g.num_nodes();
  for (auto& [name, sched] : build_schemes(g, torus_dor)) {
    for (const int grid : {729, 1296}) {
      const auto breakdown = model_fft3d_time(
          grid, n, 32,
          [&](double buffer_bytes) {
            return simulate_path_schedule(g, sched, buffer_bytes / n, n, fabric)
                .seconds;
          },
          48);
      table.row()
          .cell(label)
          .cell(static_cast<long long>(grid))
          .cell(name)
          .cell(breakdown.fft2d_pack_s, 4)
          .cell(breakdown.alltoall_s, 4)
          .cell(breakdown.unpack_fft1d_s, 4)
          .cell(breakdown.total(), 4);
    }
  }
}

}  // namespace

int main() {
  std::cout << "=== Fig. 6: 3D FFT times (N=27 ranks, 32 threads each; "
               "seconds) ===\n\n";
  Table table({"Topology", "Grid", "Scheme", "2D-FFT+pack", "all-to-all",
               "unpack+1D-FFT", "total"});
  run_case("3D Torus", make_torus({3, 3, 3}), true, table);
  Rng rng(2024);
  run_case("edge-punctured", puncture_edges(make_torus({3, 3, 3}), 3, rng),
           false, table);
  table.print(std::cout);
  std::cout << "\nPaper shape: MCF-extP cuts total FFT time up to ~20% vs"
               " SSSP (14.9% on the punctured torus); compute bands are"
               " schedule-independent.\n";
  return 0;
}
