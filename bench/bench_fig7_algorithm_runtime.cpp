// Fig. 7 — Algorithm runtime scaling on generalized Kautz graphs (d=4).
//
// Schemes: MCF-original (full link LP), MCF-decomp (master + parallel
// children + widest-path extraction) with the master/child/widest breakdown,
// the Karakostas-style FPTAS at eps=0.05, ILP-disjoint, SCCL-like, and
// TACCL-like. N is scaled to what the dense simplex supports (see
// EXPERIMENTS.md); the relative trends — original explodes, decomposition
// stays polynomial and orders of magnitude faster, SCCL dies at toy sizes,
// TACCL/ILP fall over at tens of nodes — are the figure's content.
#include "bench_util.hpp"

#include "baselines/ilp_disjoint.hpp"
#include "baselines/sccl_like.hpp"
#include "baselines/taccl_like.hpp"
#include "mcf/bounds.hpp"
#include "mcf/fleischer.hpp"
#include "mcf/path_mcf.hpp"

using namespace a2a;
using namespace a2a::bench;

int main() {
  std::cout << "=== Fig. 7: schedule-generation runtime on GenKautz(d=4) "
               "(seconds) ===\n\n";
  Table table({"Algorithm", "N", "runtime_s", "note"});

  // MCF-original: the O(N^3)-variable LP.
  for (const int n : {8, 10, 12}) {
    const DiGraph g = make_generalized_kautz(n, 4);
    double f = 0;
    const double secs = timed([&] {
      f = solve_link_mcf_exact(g, all_nodes(g)).concurrent_flow;
    });
    table.row().cell("MCF-original").cell(static_cast<long long>(n)).cell(secs, 3).cell(
        "F=" + std::to_string(f).substr(0, 6));
  }
  table.row().cell("MCF-original").cell(16LL).cell("-").cell(
      "dense simplex exceeds budget (paper: MOSEK fails N>100)");

  // MCF-decomp, exact master tier, with the stage breakdown.
  for (const int n : {8, 16, 24, 32}) {
    const DiGraph g = make_generalized_kautz(n, 4);
    DecomposedOptions options;
    options.master = MasterMode::kExactLp;
    DecomposedTiming timing;
    LinkFlowSolution flows;
    const double secs = timed(
        [&] { flows = solve_decomposed_mcf(g, all_nodes(g), options, &timing); });
    double widest = 0;
    const double wsecs =
        timed([&] { (void)paths_from_link_flows(g, flows); });
    widest = wsecs;
    table.row()
        .cell("MCF-decomp(exact)")
        .cell(static_cast<long long>(n))
        .cell(secs + widest, 3)
        .cell("master=" + std::to_string(timing.master_seconds).substr(0, 5) +
              " child=" + std::to_string(timing.child_seconds).substr(0, 5) +
              " widest=" + std::to_string(widest).substr(0, 5));
  }

  // MCF-decomp with the FPTAS master (the large-N production tier).
  for (const int n : {48, 96, 144, 216}) {
    const DiGraph g = make_generalized_kautz(n, 4);
    DecomposedOptions options;
    options.master = MasterMode::kFptas;
    options.fptas_epsilon = 0.03;
    DecomposedTiming timing;
    const double secs = timed(
        [&] { (void)solve_decomposed_mcf(g, all_nodes(g), options, &timing); });
    table.row()
        .cell("MCF-decomp(fptas)")
        .cell(static_cast<long long>(n))
        .cell(secs, 3)
        .cell("master=" + std::to_string(timing.master_seconds).substr(0, 5) +
              " child=" + std::to_string(timing.child_seconds).substr(0, 5));
  }

  // Karakostas-style FPTAS baseline at eps=0.05 (value only, no schedule).
  for (const int n : {16, 48, 96, 144}) {
    const DiGraph g = make_generalized_kautz(n, 4);
    FleischerOptions options;
    options.epsilon = 0.05;
    const double secs =
        timed([&] { (void)fleischer_grouped(g, all_nodes(g), options); });
    table.row().cell("FPTAS(5%)").cell(static_cast<long long>(n)).cell(secs, 3).cell("");
  }

  // ILP-disjoint: NP-hard single-path selection.
  for (const int n : {8, 16, 24, 32}) {
    const DiGraph g = make_generalized_kautz(n, 4);
    const PathSet set = build_disjoint_path_set(g, all_nodes(g));
    IlpOptions options;
    options.time_limit_s = 30.0;
    options.tolerance = 0.10;
    options.restarts = 64;  // proof-or-burn-the-budget, like a real B&B
    options.lower_bound = alltoall_time_lower_bound(g);
    IlpResult result;
    const double secs = timed([&] { result = ilp_single_path(g, set, options); });
    table.row()
        .cell("ILP-disjoint")
        .cell(static_cast<long long>(n))
        .cell(secs, 3)
        .cell(result.proved_optimal
                  ? "proved within 10%"
                  : "UNPROVEN, gap " +
                        std::to_string(result.max_load / options.lower_bound)
                            .substr(0, 4) + "x");
  }

  // SCCL-like exhaustive synthesis.
  for (const int n : {4, 6, 8, 16}) {
    const DiGraph g = make_generalized_kautz(n, n <= 6 ? 2 : 4);
    ScclOptions options;
    options.time_limit_s = 10.0;
    options.branch_factor = 16;  // minimality proof requires wide branching
    ScclResult result;
    const double secs = timed([&] { result = sccl_synthesize(g, options); });
    table.row()
        .cell("SCCL-like")
        .cell(static_cast<long long>(n))
        .cell(secs, 3)
        .cell(result.schedule.has_value()
                  ? std::to_string(result.steps) + " steps"
                  : "TIMEOUT");
  }

  // TACCL-like heuristic.
  for (const int n : {8, 16, 32}) {
    const DiGraph g = make_generalized_kautz(n, 4);
    TacclOptions options;
    options.rollouts = 8;
    options.time_limit_s = 60.0;
    const double secs = timed([&] { (void)taccl_synthesize(g, options); });
    table.row().cell("TACCL-like").cell(static_cast<long long>(n)).cell(secs, 3).cell("");
  }

  table.print(std::cout);
  std::cout << "\nPaper shape: decomposition is orders of magnitude faster"
               " than the original LP and scales polynomially; the master"
               " dominates its runtime; SCCL times out at toy sizes; FPTAS"
               " scales but is slower than decomposed MCF per unit quality.\n";
  return 0;
}
