// Ablations for the design choices DESIGN.md calls out:
//   1. child LP (eqs. 10-14) vs combinatorial flow-decomposition children;
//   2. exact-LP master vs FPTAS master at several epsilons;
//   3. pMCF candidate sets: link-disjoint vs shortest;
//   4. unroller slots-per-link (schedule depth vs step weight);
//   5. simplex refactorization interval.
#include "bench_util.hpp"

#include "lp/simplex.hpp"
#include "schedule/rounds.hpp"
#include "mcf/fleischer.hpp"
#include "mcf/path_mcf.hpp"

using namespace a2a;
using namespace a2a::bench;

int main() {
  std::cout << "=== Ablation 1: child LP vs combinatorial split ===\n\n";
  {
    Table t({"Graph", "child", "F", "child stage s"});
    for (const int n : {12, 16, 20}) {
      const DiGraph g = make_generalized_kautz(n, 3);
      for (const auto child : {ChildMode::kLp, ChildMode::kCombinatorial}) {
        DecomposedOptions options;
        options.master = MasterMode::kExactLp;
        options.child = child;
        DecomposedTiming timing;
        const auto sol = solve_decomposed_mcf(g, all_nodes(g), options, &timing);
        t.row()
            .cell(g.summary())
            .cell(child == ChildMode::kLp ? "LP" : "combinatorial")
            .cell(sol.concurrent_flow, 4)
            .cell(timing.child_seconds, 3);
      }
    }
    t.print(std::cout);
  }

  std::cout << "\n=== Ablation 2: master tier (3x3x3 torus, F* = 1/9) ===\n\n";
  {
    Table t({"master", "F", "seconds"});
    const DiGraph g = make_torus({3, 3, 3});
    {
      DecomposedOptions options;
      options.master = MasterMode::kExactLp;
      DecomposedTiming timing;
      const auto sol = solve_decomposed_mcf(g, all_nodes(g), options, &timing);
      t.row().cell("exact LP").cell(sol.concurrent_flow, 5).cell(
          timing.master_seconds, 3);
    }
    for (const double eps : {0.1, 0.05, 0.02}) {
      DecomposedOptions options;
      options.master = MasterMode::kFptas;
      options.fptas_epsilon = eps;
      DecomposedTiming timing;
      const auto sol = solve_decomposed_mcf(g, all_nodes(g), options, &timing);
      t.row()
          .cell("FPTAS eps=" + std::to_string(eps).substr(0, 4))
          .cell(sol.concurrent_flow, 5)
          .cell(timing.master_seconds, 3);
    }
    t.print(std::cout);
  }

  std::cout << "\n=== Ablation 3: pMCF candidate sets (GenKautz 32, d=4) ===\n\n";
  {
    Table t({"candidates", "paths/pair", "F", "seconds"});
    const DiGraph g = make_generalized_kautz(32, 4);
    const auto nodes = all_nodes(g);
    FleischerOptions eps;
    eps.epsilon = 0.03;
    {
      const PathSet set = build_disjoint_path_set(g, nodes);
      double per_pair = 0;
      for (const auto& c : set.candidates) per_pair += static_cast<double>(c.size());
      PathFlowSolution sol;
      const double secs = timed([&] { sol = fleischer_paths(g, set, eps); });
      t.row()
          .cell("link-disjoint")
          .cell(per_pair / static_cast<double>(set.candidates.size()), 2)
          .cell(sol.concurrent_flow, 4)
          .cell(secs, 3);
    }
    {
      const PathSet set = build_shortest_path_set(g, nodes, 16);
      double per_pair = 0;
      for (const auto& c : set.candidates) per_pair += static_cast<double>(c.size());
      PathFlowSolution sol;
      const double secs = timed([&] { sol = fleischer_paths(g, set, eps); });
      t.row()
          .cell("all-shortest")
          .cell(per_pair / static_cast<double>(set.candidates.size()), 2)
          .cell(sol.concurrent_flow, 4)
          .cell(secs, 3);
    }
    t.print(std::cout);
  }

  std::cout << "\n=== Ablation 4: unroller slots per link (Q3) ===\n\n";
  {
    Table t({"slots", "steps", "sim GB/s @64MB", "sim GB/s @64KB"});
    const DiGraph g = make_hypercube(3);
    const auto flows = solve_decomposed_mcf(g, all_nodes(g));
    const auto paths = paths_from_link_flows(g, flows);
    const Fabric fabric = gpu_mscl_fabric();
    for (const int slots : {1, 2, 4}) {
      UnrollOptions uo;
      uo.slots_per_link = slots;
      const LinkSchedule sched = unroll_rate_schedule(g, paths, uo);
      const auto big = simulate_link_schedule(g, sched, 64e6 / 8, 8, fabric);
      const auto small = simulate_link_schedule(g, sched, 64e3 / 8, 8, fabric);
      t.row()
          .cell(static_cast<long long>(slots))
          .cell(static_cast<long long>(sched.num_steps))
          .cell(big.algo_throughput_GBps, 2)
          .cell(small.algo_throughput_GBps, 3);
    }
    t.print(std::cout);
  }

  std::cout << "\n=== Ablation 5: simplex refactorization interval "
               "(GenKautz 10 d=3, full MCF) ===\n\n";
  {
    Table t({"interval", "seconds", "iterations"});
    const DiGraph g = make_generalized_kautz(10, 3);
    for (const int interval : {500, 4000}) {
      SimplexOptions lp;
      lp.refactor_interval = interval;
      LinkFlowSolution sol;
      const double secs =
          timed([&] { sol = solve_link_mcf_exact(g, all_nodes(g), lp); });
      t.row()
          .cell(static_cast<long long>(interval))
          .cell(secs, 3)
          .cell(sol.lp_iterations);
    }
    t.print(std::cout);
  }
  std::cout << "\n=== Ablation 6: round partitioning under QP contention "
               "(3x3x3 torus, 512MB buffer) ===\n\n";
  {
    // The §5.5 injection-rate fix: split the routed schedule across rounds
    // so fewer QPs are concurrently active.
    Table t({"rounds", "peak QPs", "seconds", "GB/s"});
    const DiGraph g = make_torus({3, 3, 3});
    DecomposedOptions options;
    options.master = MasterMode::kFptas;
    options.fptas_epsilon = 0.05;
    const auto flows = solve_decomposed_mcf(g, all_nodes(g), options);
    const PathSchedule sched =
        compile_path_schedule(g, paths_from_link_flows(g, flows), coarse_chunking());
    Fabric fabric = hpc_cerio_fabric();
    fabric.qp_knee = 256;
    fabric.qp_penalty = 0.25;  // a contention-dominated fabric
    for (const int rounds : {1, 2, 4, 8}) {
      const auto rounded = partition_into_rounds(sched, rounds);
      const auto r = simulate_rounded_schedule(g, rounded, 512e6 / 27, 27, fabric);
      t.row()
          .cell(static_cast<long long>(rounds))
          .cell(r.peak_concurrent_flows)
          .cell(r.seconds, 4)
          .cell(r.algo_throughput_GBps, 2);
    }
    t.print(std::cout);
  }
  return 0;
}
