// Fig. 8 — All-to-all time of path-based schemes on GenKautz(d=4),
// normalized by link-based MCF.
//
// Schemes: link MCF (normalizer), pMCF-disjoint, pMCF-shortest, EwSP, SSSP,
// ILP-disjoint, ILP-shortest. "All-to-all time" = max capacity-normalized
// link load = 1/F, exactly as defined in §5.3.
#include "bench_util.hpp"

#include <algorithm>

#include "baselines/ewsp.hpp"
#include "baselines/ilp_disjoint.hpp"
#include "baselines/sssp.hpp"
#include "mcf/fleischer.hpp"
#include "mcf/path_mcf.hpp"

using namespace a2a;
using namespace a2a::bench;

int main() {
  std::cout << "=== Fig. 8: all-to-all time normalized by link-MCF, "
               "GenKautz(d=4) ===\n\n";
  Table table({"N", "LinkMCF", "pMCF-disjoint", "pMCF-shortest", "EwSP",
               "SSSP", "ILP-disjoint", "ILP-shortest"});
  for (const int n : {24, 48, 72, 96, 144}) {
    const DiGraph g = make_generalized_kautz(n, 4);
    const auto nodes = all_nodes(g);

    FleischerOptions tight;
    tight.epsilon = 0.02;
    const double f_grouped = fleischer_grouped(g, nodes, tight).concurrent_flow;

    FleischerOptions path_eps;
    path_eps.epsilon = 0.03;
    const PathSet disjoint = build_disjoint_path_set(g, nodes);
    const double f_pmcf_disjoint =
        fleischer_paths(g, disjoint, path_eps).concurrent_flow;
    // The true link-MCF optimum dominates every feasible flow either solver
    // finds; normalize by the best of them so ratios stay >= ~1.
    const double t_mcf = 1.0 / std::max(f_grouped, f_pmcf_disjoint);
    const double t_pmcf_disjoint = 1.0 / f_pmcf_disjoint;
    const PathSet shortest = build_shortest_path_set(g, nodes, 16);
    const double t_pmcf_shortest =
        1.0 / fleischer_paths(g, shortest, path_eps).concurrent_flow;

    const double t_ewsp = ewsp_max_link_load(g, nodes);
    const double t_sssp = sssp_routes(g, nodes).max_link_load(g);

    IlpOptions ilp;
    ilp.time_limit_s = 10.0;
    ilp.tolerance = 0.05;
    ilp.lower_bound = t_mcf;
    const double t_ilp_disjoint = ilp_single_path(g, disjoint, ilp).max_load;
    const double t_ilp_shortest = ilp_single_path(g, shortest, ilp).max_load;

    table.row()
        .cell(static_cast<long long>(n))
        .cell(1.0, 3)
        .cell(t_pmcf_disjoint / t_mcf, 3)
        .cell(t_pmcf_shortest / t_mcf, 3)
        .cell(t_ewsp / t_mcf, 3)
        .cell(t_sssp / t_mcf, 3)
        .cell(t_ilp_disjoint / t_mcf, 3)
        .cell(t_ilp_shortest / t_mcf, 3);
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: pMCF-disjoint ~1.0x; EwSP/SSSP up to ~1.6-2x;"
               " pMCF-shortest suboptimal on expanders; ILP between.\n";
  return 0;
}
