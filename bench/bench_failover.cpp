// Fault-injection harness — time-to-valid-schedule under the failover ladder.
//
//   bench_failover [--smoke] [--json PATH] [--large]
//
// Drives a random stream of link/node failures and restorations over the
// Fig. 9 fabrics and measures, per ladder rung, how long reschedule() takes
// to produce a schedule that VALIDATES against the degraded topology:
//
//   * GenKautz(27, d=4): exact-baseline manager, single-link domain
//     precomputed, then the event stream (hits, dual-warm re-solves, and —
//     under the deadline — FPTAS/degraded rungs).
//   * GenKautz(81, d=8) [--large / full mode]: FPTAS-baseline manager (the
//     exact master LP is minutes at this scale), no precompute — exercises
//     the cold half of the ladder at production size.
//
// --smoke gates the robustness contract for CI: every served schedule must
// validate, the precomputed-hit path must serve under 1 ms (median), and
// the deadline may be overshot by at most the validation cost (plus
// scheduling noise). Appends a record to BENCH_failover.json.
#include "bench_util.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>

#include "failover/manager.hpp"
#include "graph/algorithms.hpp"
#include "schedule/validate.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

struct RungStats {
  std::vector<double> seconds;

  void add(double s) { seconds.push_back(s); }
  [[nodiscard]] double mean() const {
    if (seconds.empty()) return 0.0;
    double sum = 0.0;
    for (const double s : seconds) sum += s;
    return sum / static_cast<double>(seconds.size());
  }
  [[nodiscard]] double percentile(double p) const {
    if (seconds.empty()) return 0.0;
    std::vector<double> sorted = seconds;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  }
  [[nodiscard]] double min() const {
    return seconds.empty() ? 0.0
                           : *std::min_element(seconds.begin(), seconds.end());
  }
  [[nodiscard]] double max() const {
    return seconds.empty() ? 0.0
                           : *std::max_element(seconds.begin(), seconds.end());
  }
};

struct StreamResult {
  RungStats per_rung[4];
  int served = 0;
  int invalid_served = 0;
  int deadline_violations = 0;
  int skipped_disconnected = 0;
};

/// Random failure/restoration stream against one manager. Events that would
/// leave the surviving terminals disconnected are skipped (no all-to-all
/// exists there — the unschedulable path is covered by tests).
StreamResult drive_event_stream(FailoverManager& mgr, const DiGraph& g,
                                int events, double deadline, Rng& rng) {
  StreamResult out;
  std::set<EdgeId> down_edges;
  std::set<NodeId> down_nodes;
  for (int event = 0; event < events; ++event) {
    const int kind = rng.next_int(0, 10);
    if (kind < 5) {
      down_edges.insert(rng.next_int(0, g.num_edges()));
    } else if (kind < 7 && down_nodes.empty()) {
      down_nodes.insert(rng.next_int(0, g.num_nodes()));
    } else if (!down_edges.empty()) {
      down_edges.erase(down_edges.begin());
    } else {
      down_nodes.clear();
    }

    FailureSignature sig;
    sig.edges.assign(down_edges.begin(), down_edges.end());
    sig.nodes.assign(down_nodes.begin(), down_nodes.end());
    sig.normalize();

    std::vector<NodeId> survivors;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (down_nodes.count(n) == 0) survivors.push_back(n);
    }
    const DiGraph degraded = degraded_topology(g, sig);
    if (survivors.size() < 2 ||
        !terminals_mutually_reachable(degraded, survivors)) {
      ++out.skipped_disconnected;
      continue;
    }

    const FailoverResult r = mgr.reschedule(sig, deadline);
    ++out.served;
    out.per_rung[static_cast<int>(r.rung)].add(r.elapsed_s);
    // Re-validate independently: the bench trusts nothing the ladder says.
    const bool valid =
        r.schedule.path.has_value() &&
        validate_path_schedule(degraded, *r.schedule.path, r.schedule.terminals)
            .ok;
    if (!valid) ++out.invalid_served;
    if (r.elapsed_s > deadline + r.validate_s + 0.25) ++out.deadline_violations;
  }
  return out;
}

const char* kRungNames[4] = {"hit", "dual_warm_exact", "fptas", "degraded"};

std::string format_seconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  }
  return buf;
}

void print_stream(const char* label, const StreamResult& s) {
  std::cout << "\n--- " << label << " ---\n";
  Table table({"rung", "count", "mean", "min", "p50", "p99", "max"});
  for (int rung = 0; rung < 4; ++rung) {
    const RungStats& st = s.per_rung[rung];
    table.row()
        .cell(kRungNames[rung])
        .cell(static_cast<long long>(st.seconds.size()))
        .cell(format_seconds(st.mean()))
        .cell(format_seconds(st.min()))
        .cell(format_seconds(st.percentile(0.5)))
        .cell(format_seconds(st.percentile(0.99)))
        .cell(format_seconds(st.max()));
  }
  table.print(std::cout);
  std::cout << "served " << s.served << ", invalid " << s.invalid_served
            << ", deadline violations " << s.deadline_violations
            << ", skipped (disconnected) " << s.skipped_disconnected << "\n";
}

void stream_json(std::ostringstream& js, const StreamResult& s) {
  js << "{\"served\": " << s.served << ", \"invalid_served\": "
     << s.invalid_served << ", \"deadline_violations\": "
     << s.deadline_violations << ", \"skipped_disconnected\": "
     << s.skipped_disconnected << ", \"rungs\": {";
  for (int rung = 0; rung < 4; ++rung) {
    const RungStats& st = s.per_rung[rung];
    js << "\"" << kRungNames[rung] << "\": {\"count\": " << st.seconds.size()
       << ", \"mean_s\": " << st.mean() << ", \"min_s\": " << st.min()
       << ", \"p50_s\": " << st.percentile(0.5)
       << ", \"p99_s\": " << st.percentile(0.99)
       << ", \"max_s\": " << st.max() << "}" << (rung + 1 < 4 ? ", " : "");
  }
  js << "}}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool large = false;
  std::string json_path = "BENCH_failover.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--large") == 0) large = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  std::cout << "=== Failover: time-to-valid-schedule under fault injection ===\n";

  // ---- leg 1: GenKautz(27, d=4), exact baseline + precomputed library ----
  const DiGraph g27 = make_generalized_kautz(27, 4);
  std::cout << "\n" << g27.summary() << "\n";
  FailoverOptions opts27;
  opts27.domain.single_nodes = !smoke;
  opts27.domain.top_k_link_pairs = smoke ? 0 : 8;
  opts27.domain.spectral_iters = 64;
  std::unique_ptr<FailoverManager> mgr27;
  const double init_s = timed([&] {
    mgr27 = std::make_unique<FailoverManager>(g27, hpc_cerio_fabric(), opts27);
  });
  std::cout << "healthy exact baseline: F = "
            << mgr27->healthy_schedule().concurrent_flow << " in "
            << format_seconds(init_s) << "\n";

  std::vector<FailureSignature> domain = mgr27->enumerate_domain();
  if (smoke) domain.resize(std::min<std::size_t>(domain.size(), 24));
  PrecomputeReport pre;
  const double precompute_s = timed([&] { pre = mgr27->precompute(domain); });
  std::cout << "precompute: " << pre.stored << "/" << pre.attempted
            << " stored (" << pre.skipped_disconnected << " disconnected, "
            << pre.failed << " failed) in " << format_seconds(precompute_s)
            << "\n";

  // Pure hit-path latency: a precomputed single-link signature, repeatedly.
  RungStats hit_path;
  {
    FailureSignature probe;
    for (const FailureSignature& sig : domain) {
      if (sig.nodes.empty() && sig.edges.size() == 1) {
        const FailoverResult r = mgr27->reschedule(sig, 1.0);
        if (r.rung == FailoverRung::kPrecomputedHit) {
          probe = sig;
          break;
        }
      }
    }
    const int reps = smoke ? 50 : 200;
    for (int i = 0; i < reps; ++i) {
      const FailoverResult r = mgr27->reschedule(probe, 1.0);
      if (r.rung == FailoverRung::kPrecomputedHit) hit_path.add(r.elapsed_s);
    }
  }
  std::cout << "precomputed-hit path: p50 "
            << format_seconds(hit_path.percentile(0.5)) << ", p99 "
            << format_seconds(hit_path.percentile(0.99)) << " over "
            << hit_path.seconds.size() << " reps\n";

  Rng rng(90210);
  const double deadline27 = 0.25;
  const StreamResult s27 = drive_event_stream(
      *mgr27, g27, smoke ? 16 : 48, deadline27, rng);
  print_stream("GenKautz(27,4) event stream, deadline 250 ms", s27);

  // ---- leg 2: GenKautz(81, d=8), FPTAS baseline, cold ladder -------------
  StreamResult s81;
  bool ran_large = false;
  if (large || !smoke) {
    const DiGraph g81 = make_generalized_kautz(81, 8);
    std::cout << "\n" << g81.summary() << "\n";
    FailoverOptions opts81;
    opts81.exact_healthy = false;  // exact master LP is minutes at N=81.
    opts81.domain.single_nodes = false;
    opts81.domain.top_k_link_pairs = 0;
    std::unique_ptr<FailoverManager> mgr81;
    const double init81_s = timed([&] {
      mgr81 = std::make_unique<FailoverManager>(g81, hpc_cerio_fabric(), opts81);
    });
    std::cout << "healthy FPTAS baseline: F = "
              << mgr81->healthy_schedule().concurrent_flow << " in "
              << format_seconds(init81_s) << "\n";
    Rng rng81(424242);
    s81 = drive_event_stream(*mgr81, g81, smoke ? 4 : 12, 1.0, rng81);
    print_stream("GenKautz(81,8) event stream, deadline 1 s", s81);
    ran_large = true;
  }

  // ---- JSON record --------------------------------------------------------
  if (!json_path.empty()) {
    std::ostringstream js;
    js << "{\n  \"benchmark\": \"bench_failover\",\n  \"mode\": \""
       << (smoke ? "smoke" : "full") << "\",\n  \"genkautz27\": {\n"
       << "    \"init_seconds\": " << init_s
       << ",\n    \"precompute\": {\"attempted\": " << pre.attempted
       << ", \"stored\": " << pre.stored
       << ", \"skipped_disconnected\": " << pre.skipped_disconnected
       << ", \"failed\": " << pre.failed
       << ", \"seconds\": " << pre.seconds << "},\n"
       << "    \"hit_path_p50_s\": " << hit_path.percentile(0.5)
       << ",\n    \"hit_path_p99_s\": " << hit_path.percentile(0.99)
       << ",\n    \"deadline_s\": " << deadline27 << ",\n    \"stream\": ";
    stream_json(js, s27);
    js << "\n  }";
    if (ran_large) {
      js << ",\n  \"genkautz81\": {\"deadline_s\": 1.0, \"stream\": ";
      stream_json(js, s81);
      js << "}";
    }
    js << ",\n  \"metrics\": " << metrics_snapshot_json() << "\n}\n";
    append_bench_record(json_path, js.str());
    std::cout << "\nappended record to " << json_path << "\n";
  }

  // ---- robustness gates ---------------------------------------------------
  bool failed = false;
  const int invalid = s27.invalid_served + s81.invalid_served;
  if (invalid > 0) {
    std::cerr << "FAIL: " << invalid << " served schedule(s) did not validate "
              << "against the degraded topology\n";
    failed = true;
  }
  const int violations = s27.deadline_violations + s81.deadline_violations;
  if (violations > 0) {
    std::cerr << "FAIL: " << violations << " reschedule(s) overshot the "
              << "deadline by more than the validation cost\n";
    failed = true;
  }
  if (hit_path.seconds.empty() || hit_path.percentile(0.5) >= 1e-3) {
    std::cerr << "FAIL: precomputed-hit path p50 "
              << (hit_path.seconds.empty()
                      ? std::string("(no hits)")
                      : std::to_string(hit_path.percentile(0.5) * 1e3) + " ms")
              << " — expected < 1 ms\n";
    failed = true;
  }
  if (failed) return 1;
  std::cout << "\nAll failover gates passed.\n";
  return 0;
}
