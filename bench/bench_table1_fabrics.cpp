// Table 1 — HPC vs ML accelerator fabrics.
//
// Prints the qualitative comparison the paper tabulates, then demonstrates
// it quantitatively: the same topology (3x3x3 torus, Cerio constants) run
// with a link-based schedule under the ML model (no NIC forwarding, host
// bottleneck) vs a path-based schedule under the HPC model (NIC forwarding
// exploits the extra 150 vs 100 Gbps).
#include "bench_util.hpp"

#include "graph/augment.hpp"
#include "mcf/fleischer.hpp"

using namespace a2a;
using namespace a2a::bench;

int main() {
  std::cout << "=== Table 1: HPC vs ML accelerator fabrics ===\n\n";
  Table table({"Property", "HPC (Cerio+OMPI)", "ML (CPU/GPU CCL)"});
  table.row().cell("Schedules").cell("Path-based").cell("Link-based");
  table.row().cell("Topology focus").cell("Bisection bandwidth").cell("Node bandwidth");
  table.row().cell("Flow control").cell("Cut-through").cell("Store-and-forward");
  table.row().cell("Injection BW").cell("B = 100 Gbps").cell("B = 100 Gbps");
  table.row().cell("Forwarding BW").cell(">= B (d*b = 150 Gbps)").cell("B (through host)");
  table.print(std::cout);

  std::cout << "\n--- Measured consequence on the 27-node 3x3x3 torus ---\n";
  const DiGraph torus = make_torus({3, 3, 3});
  const Fabric ml = cpu_oneccl_fabric();
  const Fabric hpc = hpc_cerio_fabric();

  DecomposedOptions mcf;
  mcf.master = MasterMode::kFptas;
  mcf.fptas_epsilon = 0.03;

  // ML model: host bottleneck forces the Fig. 2 augmentation; F -> 2/27.
  const AugmentedGraph aug =
      augment_host_bottleneck(torus, ml.injection_GBps / ml.link_GBps);
  std::vector<NodeId> hosts;
  for (NodeId u = 0; u < 27; ++u) hosts.push_back(aug.host(u));
  const auto link_flows = solve_decomposed_mcf(aug.graph, hosts, mcf);
  UnrollOptions unroll;
  unroll.chunking.max_denominator = 24;
  unroll.slots_per_link = 16;  // few heavy steps: lower sync floor at mid buffers  // keep chunk/QP counts fabric-realistic
  const LinkSchedule link_sched = unroll_rate_schedule(
      aug.graph, paths_from_link_flows(aug.graph, link_flows), unroll);

  // HPC model: NIC forwarding, plain torus; F -> 1/9 (57% higher, §5.2).
  const auto path_flows = solve_decomposed_mcf(torus, all_nodes(torus), mcf);
  ChunkingOptions coarse;
  coarse.max_denominator = 24;
  const PathSchedule path_sched = compile_path_schedule(
      torus, paths_from_link_flows(torus, path_flows), coarse);

  Table results({"Fabric", "Schedule", "F (concurrent rate)",
                 "UB = (N-1)*F*b GB/s", "Sim GB/s @ 256MB buffer"});
  const double buf = 256e6;
  const auto ml_sim =
      simulate_link_schedule(aug.graph, link_sched, buf / 27, 27, ml);
  results.row()
      .cell("ML (no NIC fwd)")
      .cell("link/tsMCF")
      .cell(link_flows.concurrent_flow, 4)
      .cell(26 * link_flows.concurrent_flow * ml.link_GBps, 2)
      .cell(ml_sim.algo_throughput_GBps, 2);
  const auto hpc_sim = simulate_path_schedule(torus, path_sched, buf / 27, 27, hpc);
  results.row()
      .cell("HPC (NIC fwd)")
      .cell("path/MCF-extP")
      .cell(path_flows.concurrent_flow, 4)
      .cell(26 * path_flows.concurrent_flow * hpc.link_GBps, 2)
      .cell(hpc_sim.algo_throughput_GBps, 2);
  results.print(std::cout);
  std::cout << "\nPaper anchor: bottlenecked F = 2/27 = 0.0741 -> 6.01 GB/s UB;"
               " unbottlenecked F = 1/9 = 0.1111 (57% higher).\n";
  return 0;
}
