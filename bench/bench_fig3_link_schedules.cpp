// Fig. 3 — Throughput of link-based all-to-all schedules vs buffer size.
//
// Topologies and runtimes as in the paper: complete bipartite K4,4 (N=8,
// /G), 3D hypercube (N=8, /G), 3D twisted hypercube (N=8, /G) on the GPU
// fabric model, and the 3x3x3 torus (N=27, /C) on the CPU fabric with the
// 100 Gbps host bottleneck (Fig. 2 augmentation, F = 2/27, UB = 6.01 GB/s).
// Schemes: tsMCF (ours), TACCL-like heuristic, SCCL-like synthesis (times
// out beyond toy sizes), and the analytic upper bound (N-1)*F*b.
#include "bench_util.hpp"

#include "graph/algorithms.hpp"

#include "baselines/sccl_like.hpp"
#include "baselines/taccl_like.hpp"
#include "graph/augment.hpp"
#include "mcf/timestepped.hpp"
#include "schedule/validate.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

void sweep_rows(Table& table, const std::string& name, const DiGraph& g,
                int n_terminals, const Fabric& fabric, double upper_bound,
                const LinkSchedule& mcf_sched, const std::string& sccl_note,
                const LinkSchedule* taccl_sched) {
  for (const double buf : buffer_sweep(13, 28)) {
    const double shard = buf / n_terminals;
    const auto r_mcf =
        simulate_link_schedule(g, mcf_sched, shard, n_terminals, fabric);
    table.row()
        .cell(name)
        .cell(human_bytes(buf))
        .cell(upper_bound, 2)
        .cell(r_mcf.algo_throughput_GBps, 2)
        .cell(sccl_note);
    if (taccl_sched != nullptr) {
      const auto r_taccl =
          simulate_link_schedule(g, *taccl_sched, shard, n_terminals, fabric);
      table.cell(r_taccl.algo_throughput_GBps, 2);
    } else {
      table.cell("n/a");
    }
  }
}

void run_small_topology(const std::string& name, const DiGraph& g,
                        const Fabric& fabric, Table& table) {
  const auto nodes = all_nodes(g);
  const int n = g.num_nodes();
  const auto ts = solve_tsmcf_exact(g, diameter(g) + 1, nodes);
  const LinkSchedule mcf_sched = compile_tsmcf_schedule(g, ts);
  A2A_REQUIRE(validate_link_schedule(g, mcf_sched, nodes).ok,
              "tsMCF schedule failed validation");
  const double f = 1.0 / ts.total_utilization;

  TacclOptions taccl_options;
  taccl_options.rollouts = 12;
  const auto taccl = taccl_synthesize(g, taccl_options);

  ScclOptions sccl_options;
  sccl_options.time_limit_s = 2.0;
  const auto sccl = sccl_synthesize(g, sccl_options);
  const std::string sccl_note =
      sccl.schedule.has_value()
          ? std::to_string(sccl.steps) + " steps"
          : "timeout";

  sweep_rows(table, name, g, n, fabric, (n - 1) * f * fabric.link_GBps,
             mcf_sched, sccl_note, &taccl.schedule);
}

void run_bottlenecked_torus(Table& table) {
  // 27-node torus, oneCCL runtime, 100 Gbps host < 150 Gbps NIC: Fig. 2
  // augmentation, scalable rate-MCF + pipelined unroll (the exact tsMCF LP
  // is beyond the dense simplex at N=27; see DESIGN.md).
  const DiGraph torus = make_torus({3, 3, 3});
  const Fabric fabric = cpu_oneccl_fabric();
  const AugmentedGraph aug =
      augment_host_bottleneck(torus, fabric.injection_GBps / fabric.link_GBps);
  std::vector<NodeId> hosts;
  for (NodeId u = 0; u < 27; ++u) hosts.push_back(aug.host(u));
  DecomposedOptions mcf;
  mcf.master = MasterMode::kFptas;
  mcf.fptas_epsilon = 0.02;
  const auto flows = solve_decomposed_mcf(aug.graph, hosts, mcf);
  UnrollOptions unroll;
  unroll.chunking.max_denominator = 24;
  unroll.slots_per_link = 16;  // few heavy steps: lower sync floor at mid buffers
  const LinkSchedule sched = unroll_rate_schedule(
      aug.graph, paths_from_link_flows(aug.graph, flows), unroll);
  A2A_REQUIRE(validate_link_schedule(aug.graph, sched, hosts).ok,
              "augmented schedule failed validation");
  const double ub = 26 * (2.0 / 27.0) * fabric.link_GBps;  // 6.01 GB/s (§5.2)
  sweep_rows(table, "3D Torus (N=27)/C", aug.graph, 27, fabric, ub, sched,
             "timeout", nullptr);
  TacclOptions taccl_options;
  taccl_options.rollouts = 2;
  taccl_options.time_limit_s = 20.0;
  const auto taccl = taccl_synthesize(aug.graph, taccl_options);
  const double buf = std::pow(2.0, 28);
  const auto r = simulate_link_schedule(aug.graph, taccl.schedule, buf / 27, 27,
                                        fabric);
  std::cout << "(TACCL-like on torus/C at 256MB: " << r.algo_throughput_GBps
            << " GB/s vs tsMCF "
            << simulate_link_schedule(aug.graph, sched, buf / 27, 27, fabric)
                   .algo_throughput_GBps
            << " GB/s)\n";
}

}  // namespace

int main() {
  std::cout << "=== Fig. 3: link-based all-to-all throughput (GB/s) ===\n\n";
  Table table({"Topology", "Buffer", "UpperBound", "tsMCF", "SCCL", "TACCL"});
  run_small_topology("K4,4 (N=8)/G", make_complete_bipartite(4, 4),
                     gpu_mscl_fabric(), table);
  run_small_topology("Hypercube (N=8)/G", make_hypercube(3), gpu_mscl_fabric(),
                     table);
  run_small_topology("TwistedHC (N=8)/G", make_twisted_hypercube(3),
                     gpu_mscl_fabric(), table);
  run_bottlenecked_torus(table);
  table.print(std::cout);
  std::cout << "\nPaper shape: tsMCF tracks the upper bound at large buffers;"
               " TACCL lags (22% on the hypercube, up to 1.6x on the torus);"
               " SCCL only terminates on toy instances.\n";
  return 0;
}
