// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cctype>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "graph/topologies.hpp"
#include "mcf/decomposed.hpp"
#include "obs/metrics.hpp"
#include "runtime/ct_simulator.hpp"
#include "runtime/sf_simulator.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/compile_path.hpp"

namespace a2a::bench {

/// Coarse chunking for N=27-scale path schedules: bounds chunks/shard (and
/// QPs) at fabric-realistic counts, as the §4 Cerio lowering does.
inline ChunkingOptions coarse_chunking() {
  ChunkingOptions options;
  options.max_denominator = 12;
  options.min_fraction = 1e-3;
  return options;
}

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times a callable, returning seconds.
template <typename Fn>
double timed(Fn&& fn) {
  const double t0 = now_seconds();
  fn();
  return now_seconds() - t0;
}

/// Buffer-size sweep matching the paper's x-axes (per-node buffer bytes).
inline std::vector<double> buffer_sweep(int lo_pow, int hi_pow, int step = 3) {
  std::vector<double> out;
  for (int p = lo_pow; p <= hi_pow; p += step) {
    out.push_back(std::pow(2.0, p));
  }
  return out;
}

inline std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 3) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%s", bytes, units[u]);
  return buf;
}

/// The global metrics registry as an embeddable JSON value (a flat object,
/// no trailing newline) so BENCH_*.json records carry the run's telemetry.
/// One shared implementation with the schedserved /metrics endpoint and
/// `schedgen --metrics`.
inline std::string metrics_snapshot_json() { return obs::metrics_json(); }

/// Appends one JSON object `record` to the trajectory array at `json_path`.
/// BENCH_*.json files are histories — an array of run records, one appended
/// per invocation — so this splices into an existing array rather than
/// truncating it. A legacy bare-object file is migrated as the array's first
/// record; anything else at the path is replaced by a fresh array.
inline void append_bench_record(const std::string& json_path,
                                std::string record) {
  while (!record.empty() && record.back() == '\n') record.pop_back();
  std::string existing;
  {
    std::ifstream in(json_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    existing = buf.str();
  }
  while (!existing.empty() &&
         std::isspace(static_cast<unsigned char>(existing.back()))) {
    existing.pop_back();
  }
  std::string out_text;
  if (!existing.empty() && existing.front() == '{' && existing.back() == '}') {
    out_text = "[\n" + existing + ",\n" + record + "\n]\n";
  } else if (!existing.empty() && existing.front() == '[' &&
             existing.back() == ']') {
    existing.pop_back();
    while (!existing.empty() &&
           std::isspace(static_cast<unsigned char>(existing.back()))) {
      existing.pop_back();
    }
    // "[]" (an emptied history) splices to a leading comma; treat any array
    // with no last record to attach to as a fresh file instead.
    if (existing.size() > 1 && existing.back() == '}') {
      out_text = existing + ",\n" + record + "\n]\n";
    } else {
      out_text = "[\n" + record + "\n]\n";
    }
  } else {
    out_text = "[\n" + record + "\n]\n";
  }
  std::ofstream(json_path) << out_text;
  std::cout << "appended to " << json_path << "\n";
}

/// Builds a PathSchedule from single routes (one per commodity).
inline PathSchedule single_route_schedule(const DiGraph& g,
                                          const std::vector<std::pair<NodeId, NodeId>>& commodities,
                                          const std::vector<Path>& routes) {
  std::vector<CommodityPaths> cps;
  cps.reserve(commodities.size());
  for (std::size_t k = 0; k < commodities.size(); ++k) {
    CommodityPaths cp;
    cp.src = commodities[k].first;
    cp.dst = commodities[k].second;
    cp.paths.push_back(WeightedPath{routes[k], 1.0});
    cps.push_back(std::move(cp));
  }
  return compile_path_schedule(g, cps);
}

}  // namespace a2a::bench
