// Fig. 10 — Topology study.
//
// Left: GenKautz(d=4) all-to-all time (1/F) vs the Theorem-1 lower bound as
// N grows. Right: GenKautz vs 2D-tori, Xpander, and random regular graphs
// (all d=4), normalized by the lower bound.
#include "bench_util.hpp"

#include "mcf/bounds.hpp"
#include "mcf/fleischer.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

double alltoall_time(const DiGraph& g, double eps) {
  FleischerOptions options;
  options.epsilon = eps;
  return 1.0 / fleischer_grouped(g, all_nodes(g), options).concurrent_flow;
}

}  // namespace

int main() {
  std::cout << "=== Fig. 10 (left): GenKautz(d=4) vs Theorem-1 lower bound "
               "===\n\n";
  Table left({"N", "GenKautz time", "lower bound", "ratio"});
  for (const int n : {16, 32, 64, 128, 256}) {
    const DiGraph g = make_generalized_kautz(n, 4);
    const double t = alltoall_time(g, n <= 64 ? 0.03 : 0.05);
    const double lb = regular_graph_time_bound(n, 4);
    left.row()
        .cell(static_cast<long long>(n))
        .cell(t, 2)
        .cell(lb, 2)
        .cell(t / lb, 3);
  }
  left.print(std::cout);

  std::cout << "\n=== Fig. 10 (right): expanders and tori normalized by the "
               "bound (d=4) ===\n\n";
  Table right({"N", "GenKautz", "2D-Tori", "Xpander", "RandomRegular"});
  Rng rng(10101);
  for (const int n : {25, 64, 100, 144, 196}) {
    const double lb = regular_graph_time_bound(n, 4);
    const double eps = n <= 64 ? 0.03 : 0.05;
    const double gk = alltoall_time(make_generalized_kautz(n, 4), eps) / lb;
    const double torus = alltoall_time(make_torus_2d(n), eps) / lb;
    const int lift = n / 5;  // Xpander: (d+1) * lift nodes with d = 4
    const double xp = alltoall_time(make_xpander(4, lift, rng), eps) /
                      regular_graph_time_bound(5 * lift, 4);
    const double rr = alltoall_time(make_random_regular(n, 4, rng), eps) / lb;
    right.row()
        .cell(static_cast<long long>(n))
        .cell(gk, 3)
        .cell(torus, 3)
        .cell(xp, 3)
        .cell(rr, 3);
  }
  right.print(std::cout);
  std::cout << "\nPaper shape: GenKautz approaches the bound (ratio -> ~1 for"
               " large N) and beats Xpander/random-regular by ~10% and"
               " 2D-tori by ~2.4x at large N.\n";
  return 0;
}
