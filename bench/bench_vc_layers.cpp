// §5.5 — virtual-channel layers needed for deadlock freedom.
//
// Reproduces the reported result: LASH-sequential needs no more than 4
// layers across all the algorithms (MCF, ILP, EwSP, SSSP, DOR) and
// topologies evaluated, and needs the fewest layers among the orderings.
#include "bench_util.hpp"

#include "baselines/dor.hpp"
#include "baselines/ewsp.hpp"
#include "baselines/ilp_disjoint.hpp"
#include "baselines/sssp.hpp"
#include "mcf/path_mcf.hpp"
#include "runtime/vc.hpp"

using namespace a2a;
using namespace a2a::bench;

namespace {

std::vector<Path> mcf_routes(const DiGraph& g) {
  DecomposedOptions options;
  options.master = MasterMode::kFptas;
  options.fptas_epsilon = 0.05;
  const auto flows = solve_decomposed_mcf(g, all_nodes(g), options);
  std::vector<Path> routes;
  for (const auto& cp : paths_from_link_flows(g, flows)) {
    for (const auto& wp : cp.paths) routes.push_back(wp.path);
  }
  return routes;
}

std::vector<Path> ewsp_routes(const DiGraph& g) {
  std::vector<Path> routes;
  for (const auto& cands : ewsp_path_set(g, all_nodes(g), 8).candidates) {
    for (const auto& p : cands) routes.push_back(p);
  }
  return routes;
}

std::vector<Path> ilp_routes(const DiGraph& g) {
  const PathSet set = build_disjoint_path_set(g, all_nodes(g));
  IlpOptions options;
  options.time_limit_s = 5.0;
  options.tolerance = 0.1;
  return ilp_single_path(g, set, options).plan.routes;
}

}  // namespace

int main() {
  std::cout << "=== VC layers (LASH variants) for deadlock freedom ===\n\n";
  Table table({"Topology", "Routes", "LASH", "LASH-sequential", "DF-SSSP-order"});
  struct Case {
    std::string name;
    DiGraph graph;
    bool is_torus;
  };
  std::vector<Case> cases;
  cases.push_back({"3x3x3 torus", make_torus({3, 3, 3}), true});
  cases.push_back({"hypercube Q3", make_hypercube(3), false});
  cases.push_back({"K4,4", make_complete_bipartite(4, 4), false});
  cases.push_back({"GenKautz(27,4)", make_generalized_kautz(27, 4), false});

  for (const auto& c : cases) {
    std::vector<std::pair<std::string, std::vector<Path>>> algos;
    algos.emplace_back("MCF-extP", mcf_routes(c.graph));
    algos.emplace_back("SSSP", sssp_routes(c.graph, all_nodes(c.graph)).routes);
    algos.emplace_back("EwSP", ewsp_routes(c.graph));
    algos.emplace_back("ILP-disjoint", ilp_routes(c.graph));
    if (c.is_torus) {
      algos.emplace_back("DOR", dor_routes(c.graph, {3, 3, 3}, true).routes);
    }
    for (const auto& [name, routes] : algos) {
      const int plain =
          assign_layers(c.graph, routes, VcOrdering::kInputOrder).num_layers;
      const int seq =
          assign_layers(c.graph, routes, VcOrdering::kShortestFirst).num_layers;
      const int dfsssp =
          assign_layers(c.graph, routes, VcOrdering::kSourceGrouped).num_layers;
      table.row()
          .cell(c.name + " / " + name)
          .cell(static_cast<long long>(routes.size()))
          .cell(static_cast<long long>(plain))
          .cell(static_cast<long long>(seq))
          .cell(static_cast<long long>(dfsssp));
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper anchor: LASH-sequential required no more than 4"
               " layers across all algorithms and topologies evaluated.\n";
  return 0;
}
