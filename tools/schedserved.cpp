// a2a-schedserved — the schedule service daemon: the layered counterpart to
// schedgen's one-shot pipeline. Serves schedules over loopback HTTP with
// request coalescing, deadline admission and zero-copy artifact hits.
//
//   schedserved --cache-dir /var/cache/a2a --port 8787
//   schedserved --port 0 --port-file /tmp/a2a.port   # ephemeral port
//   curl "http://127.0.0.1:8787/schedule?topology=genkautz&nodes=27&degree=4"
//   curl http://127.0.0.1:8787/metrics
//   curl -X POST http://127.0.0.1:8787/shutdown
//
// Construction/destruction order is the service's lifetime rule: the cache
// outlives the pool (background refreshes touch it from pool workers), the
// pool outlives the broker's queued tasks (its destructor drains), and the
// server is torn down first so no request races a dying layer.
//
// Exits 0 on a clean shutdown (signal or POST /shutdown).
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/schedule_cache.hpp"
#include "service/admission.hpp"
#include "service/broker.hpp"
#include "service/server.hpp"

namespace {

using namespace a2a;

struct Args {
  std::uint16_t port = 8787;
  std::string port_file;
  std::string cache_dir;
  std::string trace_dir;
  unsigned threads = 4;
  std::size_t max_pending = 64;
  double default_deadline_ms = 0.0;
  double refresh_age_s = 300.0;
};

void usage() {
  std::cerr <<
      "usage: schedserved [options]\n"
      "  --port P          TCP port on 127.0.0.1 (0 = ephemeral; default 8787)\n"
      "  --port-file FILE  write the bound port here once listening\n"
      "  --cache-dir DIR   two-tier schedule cache directory (strongly\n"
      "                    recommended: without it every restart recompiles)\n"
      "  --trace-dir DIR   enable per-request tracing (trace=1) into DIR\n"
      "  --threads N       connection worker threads (default 4)\n"
      "  --max-pending N   misses in service at once before 429 (default 64)\n"
      "  --deadline-ms M   default deadline for requests that carry none\n"
      "                    (default: none)\n"
      "  --refresh-age S   revalidate hot artifacts older than S seconds in\n"
      "                    the background (default 300)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (flag == "--port") {
        args.port = static_cast<std::uint16_t>(std::stoi(value()));
      }
      else if (flag == "--port-file") args.port_file = value();
      else if (flag == "--cache-dir") args.cache_dir = value();
      else if (flag == "--trace-dir") args.trace_dir = value();
      else if (flag == "--threads") {
        args.threads = static_cast<unsigned>(std::stoul(value()));
      }
      else if (flag == "--max-pending") {
        args.max_pending = static_cast<std::size_t>(std::stoul(value()));
      }
      else if (flag == "--deadline-ms") {
        args.default_deadline_ms = std::stod(value());
      }
      else if (flag == "--refresh-age") args.refresh_age_s = std::stod(value());
      else if (flag == "--help" || flag == "-h") {
        usage();
        return 0;
      } else {
        std::cerr << "unknown flag: " << flag << "\n";
        usage();
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "bad value for " << flag << ": " << e.what() << "\n";
      return 2;
    }
  }

  // Block the termination signals before any thread exists so every thread
  // inherits the mask; main() collects them below with sigwait.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  try {
    std::optional<ScheduleCache> cache;
    if (!args.cache_dir.empty()) {
      ScheduleCacheOptions cache_options;
      cache_options.disk_dir = args.cache_dir;
      cache.emplace(std::move(cache_options));
    }
    ThreadPool pool;
    service::BrokerOptions broker_options;
    broker_options.refresh_age_s = args.refresh_age_s;
    service::ScheduleBroker broker(cache ? &*cache : nullptr, &pool,
                                   broker_options);
    service::AdmissionOptions admission_options;
    admission_options.max_pending = args.max_pending;
    admission_options.default_deadline_ms = args.default_deadline_ms;
    service::AdmissionQueue admission(&broker, admission_options);
    service::ServerOptions server_options;
    server_options.port = args.port;
    server_options.threads = args.threads;
    server_options.trace_dir = args.trace_dir;
    service::ScheduleServer server(&admission, server_options);
    server.start();

    if (!args.port_file.empty()) {
      std::ofstream out(args.port_file, std::ios::binary);
      A2A_REQUIRE(out.good(), "cannot open port file: ", args.port_file);
      out << server.port() << "\n";
      A2A_REQUIRE(out.good(), "short write to port file: ", args.port_file);
    }
    std::cerr << "schedserved: listening on 127.0.0.1:" << server.port()
              << (cache ? " (cache: " + args.cache_dir + ")" : " (no cache)")
              << "\n";

    // Two shutdown paths converge on sigwait: a signal arrives directly, or
    // POST /shutdown wakes the watcher thread, which re-raises SIGTERM.
    std::thread shutdown_watcher([&server] {
      server.wait_shutdown();
      // Process-directed (NOT raise(): that thread-directs the signal at
      // the watcher, where it stays blocked forever) so main's sigwait
      // collects it.
      ::kill(::getpid(), SIGTERM);
    });
    int sig = 0;
    sigwait(&sigs, &sig);
    std::cerr << "schedserved: shutting down ("
              << (sig == SIGINT ? "SIGINT" : "SIGTERM") << ")\n";
    server.stop();  // unblocks the watcher if a signal beat /shutdown.
    shutdown_watcher.join();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
