// a2a-schedgen — the command-line front end an operator would actually run:
// build a topology, pick a fabric, synthesize the all-to-all schedule, and
// emit the §4 XML (plus a human-readable report) to stdout or a file.
//
//   schedgen --topology torus3d --dims 3x3x3 --fabric cerio -o sched.xml
//   schedgen --topology genkautz --nodes 64 --degree 4 --fabric gpu
//   schedgen --topology hypercube --dim 3 --fabric oneccl --report-only
//
// Exit code 0 on success; diagnostics on stderr.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "core/api.hpp"
#include "graph/topologies.hpp"
#include "schedule/stats.hpp"
#include "schedule/validate.hpp"
#include "schedule/xml_io.hpp"

namespace {

using namespace a2a;

struct Args {
  std::string topology = "torus3d";
  std::string dims = "3x3x3";
  int nodes = 64;
  int degree = 4;
  int dim = 3;
  std::uint64_t seed = 1;
  std::string fabric = "cerio";
  std::string output;
  bool report_only = false;
};

void usage() {
  std::cerr <<
      "usage: schedgen [options]\n"
      "  --topology NAME   torus3d|torus2d|hypercube|twisted|bipartite|ring|\n"
      "                    genkautz|debruijn|xpander|randomregular|dragonfly\n"
      "  --dims AxBxC      torus dimensions (torus3d)\n"
      "  --nodes N         node count (genkautz/torus2d/randomregular/ring)\n"
      "  --degree D        degree (genkautz/randomregular/xpander)\n"
      "  --dim K           dimension (hypercube/twisted/debruijn)\n"
      "  --seed S          RNG seed for randomized families\n"
      "  --fabric NAME     cerio|gpu|oneccl\n"
      "  --output FILE     write schedule XML here (default: stdout)\n"
      "  --report-only     print the report, skip the XML\n";
}

DiGraph build_topology(const Args& args) {
  Rng rng(args.seed);
  if (args.topology == "torus3d") {
    std::vector<int> dims;
    std::stringstream ss(args.dims);
    std::string token;
    while (std::getline(ss, token, 'x')) dims.push_back(std::stoi(token));
    return make_torus(dims);
  }
  if (args.topology == "torus2d") return make_torus_2d(args.nodes);
  if (args.topology == "hypercube") return make_hypercube(args.dim);
  if (args.topology == "twisted") return make_twisted_hypercube(args.dim);
  if (args.topology == "bipartite") {
    return make_complete_bipartite(args.nodes / 2, args.nodes - args.nodes / 2);
  }
  if (args.topology == "ring") return make_ring(args.nodes);
  if (args.topology == "genkautz") return make_generalized_kautz(args.nodes, args.degree);
  if (args.topology == "debruijn") return make_de_bruijn(2, args.dim);
  if (args.topology == "xpander") {
    return make_xpander(args.degree, args.nodes / (args.degree + 1), rng);
  }
  if (args.topology == "randomregular") {
    return make_random_regular(args.nodes, args.degree, rng);
  }
  if (args.topology == "dragonfly") {
    return make_dragonfly(args.degree + 1, args.degree, 1);
  }
  throw InvalidArgument("unknown topology: " + args.topology);
}

Fabric build_fabric(const std::string& name) {
  if (name == "cerio") return hpc_cerio_fabric();
  if (name == "gpu") return gpu_mscl_fabric();
  if (name == "oneccl") return cpu_oneccl_fabric();
  throw InvalidArgument("unknown fabric: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--topology") args.topology = value();
    else if (flag == "--dims") args.dims = value();
    else if (flag == "--nodes") args.nodes = std::stoi(value());
    else if (flag == "--degree") args.degree = std::stoi(value());
    else if (flag == "--dim") args.dim = std::stoi(value());
    else if (flag == "--seed") args.seed = std::stoull(value());
    else if (flag == "--fabric") args.fabric = value();
    else if (flag == "--output" || flag == "-o") args.output = value();
    else if (flag == "--report-only") args.report_only = true;
    else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      usage();
      return 2;
    }
  }

  try {
    const DiGraph topo = build_topology(args);
    const Fabric fabric = build_fabric(args.fabric);
    std::cerr << "topology: " << topo.summary() << ", fabric: " << fabric.name
              << "\n";
    const GeneratedSchedule result = generate_schedule(topo, fabric);
    std::cerr << "pipeline: " << result.notes << "\n";
    std::cerr << "concurrent rate F = " << result.concurrent_flow
              << " (throughput bound "
              << (result.terminals.size() - 1) * result.concurrent_flow *
                     fabric.link_GBps
              << " GB/s)\n";

    std::string xml;
    if (result.path.has_value()) {
      const auto validation = validate_path_schedule(
          result.schedule_graph, *result.path, result.terminals);
      A2A_REQUIRE(validation.ok, "generated schedule failed validation");
      const auto stats = analyze_path_schedule(result.schedule_graph, *result.path);
      std::cerr << "routes: " << stats.num_routes << ", chunks/QPs: "
                << stats.num_chunks << ", avg hops: " << stats.avg_hops
                << ", VC layers: " << stats.vc_layers << "\n";
      xml = path_schedule_to_xml(result.schedule_graph, *result.path);
    } else {
      const auto validation = validate_link_schedule(
          result.schedule_graph, *result.link, result.terminals);
      A2A_REQUIRE(validation.ok, "generated schedule failed validation");
      const auto stats = analyze_link_schedule(result.schedule_graph, *result.link);
      std::cerr << "steps: " << stats.num_steps << ", transfers: "
                << stats.num_transfers << ", peak scratch/rank: "
                << stats.peak_scratch_per_rank << " shards\n";
      xml = link_schedule_to_xml(*result.link);
    }
    if (args.report_only) return 0;
    if (args.output.empty()) {
      std::cout << xml;
    } else {
      std::ofstream out(args.output);
      A2A_REQUIRE(out.good(), "cannot open output file: ", args.output);
      out << xml;
      std::cerr << "wrote " << xml.size() << " bytes to " << args.output << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
