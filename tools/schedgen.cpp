// a2a-schedgen — the command-line front end an operator would actually run:
// build a topology, pick a fabric, synthesize the all-to-all schedule, and
// emit the §4 XML or a SchedBin binary artifact (plus a human-readable
// report) to stdout or a file.
//
//   schedgen --topology torus3d --dims 3x3x3 --fabric cerio -o sched.xml
//   schedgen --topology genkautz --nodes 64 --degree 4 --fabric gpu
//   schedgen --topology hypercube --dim 3 --fabric oneccl --report-only
//   schedgen --topology ring --nodes 8 --format schedbin -o sched.schedbin
//   schedgen --topology ring --nodes 8 --cache-dir /var/cache/a2a -o s.xml
//   schedgen --topology ring --nodes 8 --convert sched.xml sched.schedbin
//   schedgen --format schedbin --codec dict --convert in.schedbin out.schedbin
//   schedgen --inspect sched.schedbin [--mmap]
//   schedgen --topology genkautz --nodes 27 --failure-domain /var/lib/a2a/fo
//   schedgen --topology genkautz --nodes 27 --inject e12,e40 --deadline-ms 250
//
// Repeat invocations with --cache-dir are served from the on-disk schedule
// cache and skip the LP/MCF pipeline entirely.
//
// Exit code 0 on success; diagnostics on stderr.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "common/mmap_file.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "container/schedbin.hpp"
#include "core/api.hpp"
#include "core/schedule_cache.hpp"
#include "failover/manager.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/request.hpp"
#include "schedule/stats.hpp"
#include "schedule/validate.hpp"
#include "schedule/xml_io.hpp"

namespace {

using namespace a2a;

struct Args {
  std::string topology = "torus3d";
  std::string dims = "3x3x3";
  int nodes = 64;
  int degree = 4;
  int dim = 3;
  std::uint64_t seed = 1;
  std::string fabric = "cerio";
  std::string output;
  std::string format = "xml";  // xml | schedbin
  std::string codec = "delta";
  std::string cache_dir;
  std::string convert_in;
  std::string convert_out;
  std::string inspect;
  std::string trace_file;
  std::string metrics_file;
  std::string failure_domain_dir;
  std::string inject;
  std::string collective = "a2a";
  std::string demand = "uniform";
  double deadline_ms = 250.0;
  bool stats = false;
  bool report_only = false;
  bool mmap = false;
  bool schedbin_v1 = false;
};

void usage() {
  std::cerr <<
      "usage: schedgen [options]\n"
      "  --topology NAME   torus3d|torus2d|hypercube|twisted|bipartite|ring|\n"
      "                    genkautz|debruijn|xpander|randomregular|dragonfly\n"
      "  --dims AxBxC      torus dimensions (torus3d)\n"
      "  --nodes N         node count (genkautz/torus2d/randomregular/ring)\n"
      "  --degree D        degree (genkautz/randomregular/xpander)\n"
      "  --dim K           dimension (hypercube/twisted/debruijn)\n"
      "  --seed S          RNG seed for randomized families\n"
      "  --fabric NAME     cerio|gpu|oneccl\n"
      "  --collective NAME a2a|rs|ag|allreduce (default: a2a)\n"
      "  --demand SPEC     uniform|zipf:<s>|perm[:<seed>]|block:<k>\n"
      "                    (default: uniform)\n"
      "  --output FILE     write the schedule here (default: stdout)\n"
      "  --format FMT      xml|schedbin (default: xml)\n"
      "  --codec NAME      schedbin codec: raw|rle|delta|dict (default: delta)\n"
      "  --schedbin-v1     write SchedBin format v1 (no trailer/dict/metadata)\n"
      "  --cache-dir DIR   serve repeat requests from a schedule cache here\n"
      "  --convert IN OUT  convert between formats. xml<->schedbin is inferred\n"
      "                    from content (path schedules need the topology\n"
      "                    flags); a schedbin input with --format schedbin is\n"
      "                    transcoded losslessly to the requested codec/\n"
      "                    version, carrying the frame metadata through\n"
      "  --inspect FILE    print a SchedBin container's header, metadata and\n"
      "                    chunk directory, then exit\n"
      "  --mmap            read --inspect/--convert input via mmap instead\n"
      "                    of slurping (--inspect reports the bytes read)\n"
      "  --failure-domain DIR  enumerate the topology's failure domain\n"
      "                    (every single link/node + spectral top-k link\n"
      "                    pairs), batch-synthesize fallback schedules, and\n"
      "                    store them in the library at DIR, then exit\n"
      "  --inject SPEC     online re-scheduling drill: fail the links/nodes\n"
      "                    of SPEC (e.g. e12,e40,n3), run the failover\n"
      "                    ladder under --deadline-ms, report the rung and\n"
      "                    timing, and emit the degraded schedule. With\n"
      "                    --cache-dir (or a prior --failure-domain DIR as\n"
      "                    --cache-dir) precomputed fallbacks are served\n"
      "  --deadline-ms M   wall-clock budget for --inject (default 250)\n"
      "  --trace FILE      record a Chrome trace_event JSON of this run\n"
      "                    (open in chrome://tracing or Perfetto)\n"
      "  --metrics FILE    write the metrics registry as flat JSON on exit\n"
      "  --stats           print a human-readable metrics table on exit\n"
      "  --report-only     print the report, skip the schedule output\n";
}

/// Topology/fabric construction is shared with the schedule service
/// (schedserved's query strings and these flags resolve through the same
/// builders, so both produce the same fingerprints).
DiGraph build_topology(const Args& args) {
  service::TopologySpec spec;
  spec.topology = args.topology;
  spec.dims = args.dims;
  spec.nodes = args.nodes;
  spec.degree = args.degree;
  spec.dim = args.dim;
  spec.seed = args.seed;
  return service::build_topology(spec);
}

Fabric build_fabric(const std::string& name) {
  return service::build_fabric(name);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  A2A_REQUIRE(in.good(), "cannot open input file: ", path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_output(const std::string& payload, const std::string& path) {
  if (path.empty()) {
    std::cout << payload;
    return;
  }
  std::ofstream out(path, std::ios::binary);
  A2A_REQUIRE(out.good(), "cannot open output file: ", path);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  A2A_REQUIRE(out.good(), "short write to output file: ", path);
  std::cerr << "wrote " << payload.size() << " bytes to " << path << "\n";
}

bool is_schedbin(std::string_view bytes) {
  return bytes.size() >= sizeof(kSchedBinMagic) &&
         std::memcmp(bytes.data(), kSchedBinMagic, sizeof(kSchedBinMagic)) == 0;
}

SchedBinOptions bin_options_from(const Args& args, ThreadPool* pool) {
  SchedBinOptions options;
  options.codec = codec_from_name(args.codec);
  options.version = args.schedbin_v1 ? kSchedBinVersion1 : kSchedBinVersion2;
  options.pool = pool;
  return options;
}

/// Escapes control bytes for terminal output: trailer metadata is untrusted
/// container content, and printing it raw would let a hostile frame inject
/// escape sequences into the operator's terminal.
std::string printable(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const unsigned char c : s) {
    if (c >= 0x20 && c != 0x7F) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[5];
      std::snprintf(buf, sizeof buf, "\\x%02X", c);
      out += buf;
    }
  }
  return out;
}

void print_info(const SchedBinInfo& info) {
  std::cout << "schedbin v" << info.version << " "
            << (info.kind == SchedBinKind::kLink ? "link" : "path")
            << " schedule, codec=" << codec_name(info.codec)
            << "\n  nodes:   " << info.num_nodes;
  if (info.kind == SchedBinKind::kLink) {
    std::cout << "\n  steps:   " << info.num_steps;
  } else {
    std::cout << "\n  chunk_unit: " << info.chunk_unit;
  }
  std::cout << "\n  records: " << info.record_count
            << "\n  words:   " << info.word_count << " (" << info.num_chunks
            << " chunks of " << info.chunk_words << ")"
            << "\n  bytes:   " << info.total_bytes << " total, "
            << info.payload_bytes << " payload ("
            << (info.word_count == 0
                    ? 0.0
                    : static_cast<double>(info.payload_bytes) /
                          (static_cast<double>(info.word_count) * 8) * 100.0)
            << "% of raw words)";
  if (info.version >= kSchedBinVersion2) {
    std::cout << "\n  trailer: " << info.trailer_bytes << " bytes, dict "
              << info.dict_words << " words, " << info.metadata.size()
              << " metadata pairs";
    for (const auto& [key, value] : info.metadata) {
      std::cout << "\n    " << printable(key) << " = " << printable(value);
    }
  }
  std::cout << "\n";
}

void print_directory(const SchedBinReader& reader) {
  std::cout << "  directory:\n";
  for (std::uint32_t c = 0; c < reader.num_chunks(); ++c) {
    const auto entry = reader.chunk_entry(c);
    std::cout << "    chunk " << c << ": offset " << entry.offset << ", "
              << entry.size << " bytes, " << reader.chunk_word_count(c)
              << " words, codec " << codec_name(entry.codec) << ", crc32 "
              << std::hex << entry.crc32 << std::dec << "\n";
  }
}

/// Per-codec rollup of the chunk directory: how each chunk was actually
/// encoded (dict containers fall back per chunk when the dictionary loses)
/// and how many bytes each codec is responsible for once decoded.
void print_codec_summary(const SchedBinReader& reader) {
  const SchedBinInfo info = reader.info();
  std::uint64_t chunks_by_codec[4] = {};
  std::uint64_t stored_by_codec[4] = {};
  std::uint64_t decoded_by_codec[4] = {};
  std::uint64_t fallbacks = 0;
  for (std::uint32_t c = 0; c < reader.num_chunks(); ++c) {
    const auto entry = reader.chunk_entry(c);
    const auto i = static_cast<std::size_t>(entry.codec);
    chunks_by_codec[i] += 1;
    stored_by_codec[i] += entry.size;
    decoded_by_codec[i] += static_cast<std::uint64_t>(reader.chunk_word_count(c)) * 8;
    if (entry.codec != info.codec) ++fallbacks;
  }
  std::cout << "  codec summary:\n";
  for (std::size_t i = 0; i < 4; ++i) {
    if (chunks_by_codec[i] == 0) continue;
    std::cout << "    " << codec_name(static_cast<SchedBinCodec>(i)) << ": "
              << chunks_by_codec[i] << " chunks, " << stored_by_codec[i]
              << " bytes stored, " << decoded_by_codec[i]
              << " bytes decoded\n";
  }
  std::cout << "    fallbacks from " << codec_name(info.codec) << ": "
            << fallbacks << " of " << reader.num_chunks() << " chunks\n";
}

int run_inspect(const Args& args) {
  if (args.mmap) {
    // Zero-copy path: header + trailer only, no chunk CRC sweep. The
    // bytes-read line demonstrates how little of the file a directory
    // lookup touches.
    const SchedBinReader reader = SchedBinReader::open_file(args.inspect);
    print_info(reader.info());
    print_directory(reader);
    print_codec_summary(reader);
    std::cerr << "mmap: read " << reader.bytes_read() << " of "
              << reader.total_bytes() << " bytes\n";
    return 0;
  }
  const std::string bytes = read_file(args.inspect);
  print_info(schedbin_inspect(bytes));  // validates every chunk CRC
  const SchedBinReader reader = SchedBinReader::from_bytes(bytes);
  print_directory(reader);
  print_codec_summary(reader);
  return 0;
}

/// Format conversion. xml<->schedbin direction is inferred from the input
/// content (path schedules resolve their routes against the topology built
/// from the usual flags); a schedbin input with --format schedbin is
/// transcoded to the requested codec/version without touching the word
/// stream, carrying the source frame's metadata through losslessly instead
/// of re-deriving provenance from this invocation.
int run_convert(const Args& args) {
  std::optional<MmapFile> map;
  std::string buf;
  std::string_view input;
  if (args.mmap) {
    map.emplace(args.convert_in);
    input = map->view();
  } else {
    buf = read_file(args.convert_in);
    input = buf;
  }
  ThreadPool pool;
  std::string output;
  if (is_schedbin(input)) {
    if (args.format == "schedbin") {
      output = schedbin_convert(input, bin_options_from(args, &pool));
      std::cerr << "schedbin -> schedbin (" << args.codec << ", v"
                << (args.schedbin_v1 ? 1 : 2)
                << (args.schedbin_v1 ? ", metadata dropped — v1 cannot carry it"
                                     : ", metadata preserved")
                << ")\n";
    } else {
      const SchedBinInfo info = schedbin_inspect(input);
      if (info.kind == SchedBinKind::kLink) {
        output = link_schedule_to_xml(link_schedule_from_schedbin(input, &pool));
      } else {
        const DiGraph g = build_topology(args);
        output =
            path_schedule_to_xml(g, path_schedule_from_schedbin(g, input, &pool));
      }
      std::cerr << "schedbin -> xml\n";
    }
  } else {
    const SchedBinOptions options = bin_options_from(args, &pool);
    // Peek at the XML root to pick the dialect.
    if (input.find("<linkschedule") != std::string::npos) {
      output = link_schedule_to_schedbin(link_schedule_from_xml(std::string(input)),
                                         options);
    } else if (input.find("<pathschedule") != std::string::npos) {
      const DiGraph g = build_topology(args);
      output = path_schedule_to_schedbin(
          g, path_schedule_from_xml(g, std::string(input)), options);
    } else {
      throw InvalidArgument("input is neither SchedBin nor a schedule XML: " +
                            args.convert_in);
    }
    std::cerr << "xml -> schedbin (" << args.codec << ")\n";
  }
  write_output(output, args.convert_out);
  return 0;
}

/// --failure-domain DIR: the offline half of failover. Builds the healthy
/// baseline, enumerates the failure domain, batch-synthesizes fallback
/// schedules across the thread pool, and leaves them in the
/// content-addressed library at DIR for --inject (or a production manager)
/// to serve in microseconds.
int run_failure_domain(const Args& args) {
  const DiGraph topo = build_topology(args);
  const Fabric fabric = build_fabric(args.fabric);
  std::cerr << "topology: " << topo.summary() << ", fabric: " << fabric.name
            << "\n";
  FailoverOptions options;
  options.library_dir = args.failure_domain_dir;
  FailoverManager mgr(topo, fabric, options);
  std::cerr << "healthy baseline: F = "
            << mgr.healthy_schedule().concurrent_flow << "\n";
  const std::vector<FailureSignature> domain = mgr.enumerate_domain();
  const PrecomputeReport report = mgr.precompute(domain);
  const ScheduleCacheStats stats = mgr.library().stats();
  Table table({"domain", "stored", "disconnected", "failed", "seconds"});
  table.row()
      .cell(static_cast<long long>(report.attempted))
      .cell(static_cast<long long>(report.stored))
      .cell(static_cast<long long>(report.skipped_disconnected))
      .cell(static_cast<long long>(report.failed))
      .cell(report.seconds, 3);
  table.print(std::cerr);
  std::cerr << "library: " << mgr.library().disk_object_count()
            << " artifacts on disk, " << stats.disk_dedups
            << " deduplicated inserts\n";
  return report.failed == 0 ? 0 : 1;
}

/// --inject SPEC: the online half. Parses the failure signature, runs the
/// reschedule ladder under the deadline, reports which rung served and how
/// long it took, and emits the degraded schedule through the normal output
/// machinery.
int run_inject(const Args& args, ThreadPool& pool) {
  const DiGraph topo = build_topology(args);
  const Fabric fabric = build_fabric(args.fabric);
  const FailureSignature sig = FailureSignature::parse(args.inject, topo);
  std::cerr << "topology: " << topo.summary() << ", fabric: " << fabric.name
            << "\ninjecting: " << sig.to_string() << ", deadline "
            << args.deadline_ms << " ms\n";
  FailoverOptions options;
  options.library_dir = !args.cache_dir.empty() ? args.cache_dir
                                                : args.failure_domain_dir;
  FailoverManager mgr(topo, fabric, options);
  const FailoverResult result =
      mgr.reschedule(sig, args.deadline_ms / 1000.0);
  std::cerr << "served by: " << to_string(result.rung) << " in "
            << result.elapsed_s * 1e3 << " ms (validation "
            << result.validate_s * 1e3 << " ms), F = "
            << result.schedule.concurrent_flow
            << (result.validated ? "" : " [NOT VALIDATED]") << "\n";
  if (!result.notes.empty()) std::cerr << "notes: " << result.notes << "\n";
  if (!result.validated) return 1;
  if (args.report_only || !result.schedule.path.has_value()) return 0;
  const std::string payload =
      args.format == "xml"
          ? path_schedule_to_xml(result.schedule.schedule_graph,
                                 *result.schedule.path)
          : path_schedule_to_schedbin(result.schedule.schedule_graph,
                                      *result.schedule.path,
                                      bin_options_from(args, &pool));
  write_output(payload, args.output);
  return 0;
}

void write_text_file(const std::string& payload, const std::string& path,
                     const char* what) {
  std::ofstream out(path, std::ios::binary);
  A2A_REQUIRE(out.good(), "cannot open ", what, " file: ", path);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  A2A_REQUIRE(out.good(), "short write to ", what, " file: ", path);
  std::cerr << what << ": wrote " << payload.size() << " bytes to " << path
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--topology") args.topology = value();
    else if (flag == "--dims") args.dims = value();
    else if (flag == "--nodes") args.nodes = std::stoi(value());
    else if (flag == "--degree") args.degree = std::stoi(value());
    else if (flag == "--dim") args.dim = std::stoi(value());
    else if (flag == "--seed") args.seed = std::stoull(value());
    else if (flag == "--fabric") args.fabric = value();
    else if (flag == "--collective") args.collective = value();
    else if (flag == "--demand") args.demand = value();
    else if (flag == "--output" || flag == "-o") args.output = value();
    else if (flag == "--format") args.format = value();
    else if (flag == "--codec") args.codec = value();
    else if (flag == "--cache-dir") args.cache_dir = value();
    else if (flag == "--convert") {
      args.convert_in = value();
      args.convert_out = value();
    }
    else if (flag == "--inspect") args.inspect = value();
    else if (flag == "--failure-domain") args.failure_domain_dir = value();
    else if (flag == "--inject") args.inject = value();
    else if (flag == "--deadline-ms") args.deadline_ms = std::stod(value());
    else if (flag == "--trace") args.trace_file = value();
    else if (flag == "--metrics") args.metrics_file = value();
    else if (flag == "--stats") args.stats = true;
    else if (flag == "--mmap") args.mmap = true;
    else if (flag == "--schedbin-v1") args.schedbin_v1 = true;
    else if (flag == "--report-only") args.report_only = true;
    else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      usage();
      return 2;
    }
  }

  try {
    (void)codec_from_name(args.codec);  // reject bad --codec before any work
    if ((!args.trace_file.empty() || !args.metrics_file.empty() || args.stats) &&
        !obs::compiled_in()) {
      std::cerr << "note: observability compiled out (A2A_OBS=0); trace and "
                   "metrics output will be empty\n";
    }
    // The trace session spans the whole invocation (generate, validate,
    // encode, cache, convert — whatever this run does); the flush below runs
    // on every successful exit path.
    std::optional<obs::TraceSession> session;
    if (!args.trace_file.empty()) session.emplace();
    const auto finish_observability = [&] {
      if (session) {
        session->stop();
        write_text_file(session->chrome_json(), args.trace_file, "trace");
        if (session->dropped() > 0) {
          std::cerr << "trace: " << session->dropped()
                    << " events dropped (ring buffers full)\n";
        }
      }
      if (!args.metrics_file.empty()) {
        // Same export the schedserved /metrics endpoint serves.
        obs::write_metrics_json(args.metrics_file);
        std::cerr << "metrics: wrote " << args.metrics_file << "\n";
      }
      // --stats on stderr: stdout may be carrying the schedule payload.
      if (args.stats) obs::print_metrics_table(std::cerr);
    };
    if (!args.inspect.empty()) {
      const int rc = run_inspect(args);
      finish_observability();
      return rc;
    }
    if (!args.convert_in.empty()) {
      const int rc = run_convert(args);
      finish_observability();
      return rc;
    }
    if (!args.inject.empty()) {
      ThreadPool pool;
      const int rc = run_inject(args, pool);
      finish_observability();
      return rc;
    }
    if (!args.failure_domain_dir.empty()) {
      const int rc = run_failure_domain(args);
      finish_observability();
      return rc;
    }
    A2A_REQUIRE(args.format == "xml" || args.format == "schedbin",
                "unknown --format: ", args.format);

    const DiGraph topo = build_topology(args);
    const Fabric fabric = build_fabric(args.fabric);
    ToolchainOptions options;
    options.workload.collective = collective_from_name(args.collective);
    options.workload.demand = DemandSpec::parse(args.demand);
    std::cerr << "topology: " << topo.summary() << ", fabric: " << fabric.name
              << ", workload: " << options.workload.to_string() << "\n";

    std::optional<ScheduleCache> cache;
    if (!args.cache_dir.empty()) {
      ScheduleCacheOptions cache_options;
      cache_options.disk_dir = args.cache_dir;
      cache_options.schedbin.codec = codec_from_name(args.codec);
      cache.emplace(std::move(cache_options));
    }
    const GeneratedSchedule result =
        generate_schedule(topo, fabric, options, cache ? &*cache : nullptr);
    std::cerr << "pipeline: " << result.notes
              << (result.from_cache ? " [served from cache]" : "") << "\n";
    std::cerr << "concurrent rate F = " << result.concurrent_flow
              << " (throughput bound "
              << (result.terminals.size() - 1) * result.concurrent_flow *
                     fabric.link_GBps
              << " GB/s)\n";

    ThreadPool pool;
    SchedBinOptions bin_options = bin_options_from(args, &pool);
    if (!args.schedbin_v1) {
      // Provenance stamps carried in the v2 trailer; --convert transcodes
      // preserve them instead of re-deriving from the converting process.
      bin_options.metadata = {
          {"generator", "a2a-schedgen"},
          {"topology", args.topology},
          {"fabric", args.fabric},
          {"pipeline_invocation", std::to_string(pipeline_invocations())},
      };
    }

    // Validate against the workload's demand matrix (sized to the pipeline's
    // terminal set — hosts when augmentation ran); nullptr keeps the exact
    // unit-demand contract for the default workload.
    std::optional<DemandMatrix> demand_check;
    if (!options.workload.is_default()) {
      demand_check = effective_demand(
          options.workload, static_cast<int>(result.terminals.size()));
    }
    const DemandMatrix* demand_ptr =
        demand_check.has_value() ? &*demand_check : nullptr;

    std::string payload;
    if (result.path.has_value()) {
      const auto validation = [&] {
        A2A_TRACE_SPAN("stage.validate", "path schedule");
        return validate_path_schedule(result.schedule_graph, *result.path,
                                      result.terminals, demand_ptr);
      }();
      A2A_REQUIRE(validation.ok, "generated schedule failed validation");
      const auto stats = analyze_path_schedule(result.schedule_graph, *result.path);
      std::cerr << "routes: " << stats.num_routes << ", chunks/QPs: "
                << stats.num_chunks << ", avg hops: " << stats.avg_hops
                << ", VC layers: " << stats.vc_layers << "\n";
      payload = args.format == "xml"
                    ? path_schedule_to_xml(result.schedule_graph, *result.path)
                    : path_schedule_to_schedbin(result.schedule_graph,
                                                *result.path, bin_options);
    } else {
      const auto validation = [&] {
        A2A_TRACE_SPAN("stage.validate", "link schedule");
        return validate_link_schedule(result.schedule_graph, *result.link,
                                      result.terminals, demand_ptr);
      }();
      A2A_REQUIRE(validation.ok, "generated schedule failed validation");
      const auto stats = analyze_link_schedule(result.schedule_graph, *result.link);
      std::cerr << "steps: " << stats.num_steps << ", transfers: "
                << stats.num_transfers << ", peak scratch/rank: "
                << stats.peak_scratch_per_rank << " shards\n";
      payload = args.format == "xml"
                    ? link_schedule_to_xml(*result.link)
                    : link_schedule_to_schedbin(*result.link, bin_options);
    }
    if (!args.report_only) write_output(payload, args.output);
    finish_observability();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
