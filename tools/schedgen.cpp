// a2a-schedgen — the command-line front end an operator would actually run:
// build a topology, pick a fabric, synthesize the all-to-all schedule, and
// emit the §4 XML or a SchedBin binary artifact (plus a human-readable
// report) to stdout or a file.
//
//   schedgen --topology torus3d --dims 3x3x3 --fabric cerio -o sched.xml
//   schedgen --topology genkautz --nodes 64 --degree 4 --fabric gpu
//   schedgen --topology hypercube --dim 3 --fabric oneccl --report-only
//   schedgen --topology ring --nodes 8 --format schedbin -o sched.schedbin
//   schedgen --topology ring --nodes 8 --cache-dir /var/cache/a2a -o s.xml
//   schedgen --topology ring --nodes 8 --convert sched.xml sched.schedbin
//   schedgen --format schedbin --codec dict --convert in.schedbin out.schedbin
//   schedgen --inspect sched.schedbin [--mmap]
//
// Repeat invocations with --cache-dir are served from the on-disk schedule
// cache and skip the LP/MCF pipeline entirely.
//
// Exit code 0 on success; diagnostics on stderr.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "common/mmap_file.hpp"
#include "common/thread_pool.hpp"
#include "container/schedbin.hpp"
#include "core/api.hpp"
#include "core/schedule_cache.hpp"
#include "graph/topologies.hpp"
#include "schedule/stats.hpp"
#include "schedule/validate.hpp"
#include "schedule/xml_io.hpp"

namespace {

using namespace a2a;

struct Args {
  std::string topology = "torus3d";
  std::string dims = "3x3x3";
  int nodes = 64;
  int degree = 4;
  int dim = 3;
  std::uint64_t seed = 1;
  std::string fabric = "cerio";
  std::string output;
  std::string format = "xml";  // xml | schedbin
  std::string codec = "delta";
  std::string cache_dir;
  std::string convert_in;
  std::string convert_out;
  std::string inspect;
  bool report_only = false;
  bool mmap = false;
  bool schedbin_v1 = false;
};

void usage() {
  std::cerr <<
      "usage: schedgen [options]\n"
      "  --topology NAME   torus3d|torus2d|hypercube|twisted|bipartite|ring|\n"
      "                    genkautz|debruijn|xpander|randomregular|dragonfly\n"
      "  --dims AxBxC      torus dimensions (torus3d)\n"
      "  --nodes N         node count (genkautz/torus2d/randomregular/ring)\n"
      "  --degree D        degree (genkautz/randomregular/xpander)\n"
      "  --dim K           dimension (hypercube/twisted/debruijn)\n"
      "  --seed S          RNG seed for randomized families\n"
      "  --fabric NAME     cerio|gpu|oneccl\n"
      "  --output FILE     write the schedule here (default: stdout)\n"
      "  --format FMT      xml|schedbin (default: xml)\n"
      "  --codec NAME      schedbin codec: raw|rle|delta|dict (default: delta)\n"
      "  --schedbin-v1     write SchedBin format v1 (no trailer/dict/metadata)\n"
      "  --cache-dir DIR   serve repeat requests from a schedule cache here\n"
      "  --convert IN OUT  convert between formats. xml<->schedbin is inferred\n"
      "                    from content (path schedules need the topology\n"
      "                    flags); a schedbin input with --format schedbin is\n"
      "                    transcoded losslessly to the requested codec/\n"
      "                    version, carrying the frame metadata through\n"
      "  --inspect FILE    print a SchedBin container's header, metadata and\n"
      "                    chunk directory, then exit\n"
      "  --mmap            read --inspect/--convert input via mmap instead\n"
      "                    of slurping (--inspect reports the bytes read)\n"
      "  --report-only     print the report, skip the schedule output\n";
}

DiGraph build_topology(const Args& args) {
  Rng rng(args.seed);
  if (args.topology == "torus3d") {
    std::vector<int> dims;
    std::stringstream ss(args.dims);
    std::string token;
    while (std::getline(ss, token, 'x')) dims.push_back(std::stoi(token));
    return make_torus(dims);
  }
  if (args.topology == "torus2d") return make_torus_2d(args.nodes);
  if (args.topology == "hypercube") return make_hypercube(args.dim);
  if (args.topology == "twisted") return make_twisted_hypercube(args.dim);
  if (args.topology == "bipartite") {
    return make_complete_bipartite(args.nodes / 2, args.nodes - args.nodes / 2);
  }
  if (args.topology == "ring") return make_ring(args.nodes);
  if (args.topology == "genkautz") return make_generalized_kautz(args.nodes, args.degree);
  if (args.topology == "debruijn") return make_de_bruijn(2, args.dim);
  if (args.topology == "xpander") {
    return make_xpander(args.degree, args.nodes / (args.degree + 1), rng);
  }
  if (args.topology == "randomregular") {
    return make_random_regular(args.nodes, args.degree, rng);
  }
  if (args.topology == "dragonfly") {
    return make_dragonfly(args.degree + 1, args.degree, 1);
  }
  throw InvalidArgument("unknown topology: " + args.topology);
}

Fabric build_fabric(const std::string& name) {
  if (name == "cerio") return hpc_cerio_fabric();
  if (name == "gpu") return gpu_mscl_fabric();
  if (name == "oneccl") return cpu_oneccl_fabric();
  throw InvalidArgument("unknown fabric: " + name);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  A2A_REQUIRE(in.good(), "cannot open input file: ", path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_output(const std::string& payload, const std::string& path) {
  if (path.empty()) {
    std::cout << payload;
    return;
  }
  std::ofstream out(path, std::ios::binary);
  A2A_REQUIRE(out.good(), "cannot open output file: ", path);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  A2A_REQUIRE(out.good(), "short write to output file: ", path);
  std::cerr << "wrote " << payload.size() << " bytes to " << path << "\n";
}

bool is_schedbin(std::string_view bytes) {
  return bytes.size() >= sizeof(kSchedBinMagic) &&
         std::memcmp(bytes.data(), kSchedBinMagic, sizeof(kSchedBinMagic)) == 0;
}

SchedBinOptions bin_options_from(const Args& args, ThreadPool* pool) {
  SchedBinOptions options;
  options.codec = codec_from_name(args.codec);
  options.version = args.schedbin_v1 ? kSchedBinVersion1 : kSchedBinVersion2;
  options.pool = pool;
  return options;
}

/// Escapes control bytes for terminal output: trailer metadata is untrusted
/// container content, and printing it raw would let a hostile frame inject
/// escape sequences into the operator's terminal.
std::string printable(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const unsigned char c : s) {
    if (c >= 0x20 && c != 0x7F) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[5];
      std::snprintf(buf, sizeof buf, "\\x%02X", c);
      out += buf;
    }
  }
  return out;
}

void print_info(const SchedBinInfo& info) {
  std::cout << "schedbin v" << info.version << " "
            << (info.kind == SchedBinKind::kLink ? "link" : "path")
            << " schedule, codec=" << codec_name(info.codec)
            << "\n  nodes:   " << info.num_nodes;
  if (info.kind == SchedBinKind::kLink) {
    std::cout << "\n  steps:   " << info.num_steps;
  } else {
    std::cout << "\n  chunk_unit: " << info.chunk_unit;
  }
  std::cout << "\n  records: " << info.record_count
            << "\n  words:   " << info.word_count << " (" << info.num_chunks
            << " chunks of " << info.chunk_words << ")"
            << "\n  bytes:   " << info.total_bytes << " total, "
            << info.payload_bytes << " payload ("
            << (info.word_count == 0
                    ? 0.0
                    : static_cast<double>(info.payload_bytes) /
                          (static_cast<double>(info.word_count) * 8) * 100.0)
            << "% of raw words)";
  if (info.version >= kSchedBinVersion2) {
    std::cout << "\n  trailer: " << info.trailer_bytes << " bytes, dict "
              << info.dict_words << " words, " << info.metadata.size()
              << " metadata pairs";
    for (const auto& [key, value] : info.metadata) {
      std::cout << "\n    " << printable(key) << " = " << printable(value);
    }
  }
  std::cout << "\n";
}

void print_directory(const SchedBinReader& reader) {
  std::cout << "  directory:\n";
  for (std::uint32_t c = 0; c < reader.num_chunks(); ++c) {
    const auto entry = reader.chunk_entry(c);
    std::cout << "    chunk " << c << ": offset " << entry.offset << ", "
              << entry.size << " bytes, " << reader.chunk_word_count(c)
              << " words, codec " << codec_name(entry.codec) << ", crc32 "
              << std::hex << entry.crc32 << std::dec << "\n";
  }
}

int run_inspect(const Args& args) {
  if (args.mmap) {
    // Zero-copy path: header + trailer only, no chunk CRC sweep. The
    // bytes-read line demonstrates how little of the file a directory
    // lookup touches.
    const SchedBinReader reader = SchedBinReader::open_file(args.inspect);
    print_info(reader.info());
    print_directory(reader);
    std::cerr << "mmap: read " << reader.bytes_read() << " of "
              << reader.total_bytes() << " bytes\n";
    return 0;
  }
  const std::string bytes = read_file(args.inspect);
  print_info(schedbin_inspect(bytes));  // validates every chunk CRC
  print_directory(SchedBinReader::from_bytes(bytes));
  return 0;
}

/// Format conversion. xml<->schedbin direction is inferred from the input
/// content (path schedules resolve their routes against the topology built
/// from the usual flags); a schedbin input with --format schedbin is
/// transcoded to the requested codec/version without touching the word
/// stream, carrying the source frame's metadata through losslessly instead
/// of re-deriving provenance from this invocation.
int run_convert(const Args& args) {
  std::optional<MmapFile> map;
  std::string buf;
  std::string_view input;
  if (args.mmap) {
    map.emplace(args.convert_in);
    input = map->view();
  } else {
    buf = read_file(args.convert_in);
    input = buf;
  }
  ThreadPool pool;
  std::string output;
  if (is_schedbin(input)) {
    if (args.format == "schedbin") {
      output = schedbin_convert(input, bin_options_from(args, &pool));
      std::cerr << "schedbin -> schedbin (" << args.codec << ", v"
                << (args.schedbin_v1 ? 1 : 2)
                << (args.schedbin_v1 ? ", metadata dropped — v1 cannot carry it"
                                     : ", metadata preserved")
                << ")\n";
    } else {
      const SchedBinInfo info = schedbin_inspect(input);
      if (info.kind == SchedBinKind::kLink) {
        output = link_schedule_to_xml(link_schedule_from_schedbin(input, &pool));
      } else {
        const DiGraph g = build_topology(args);
        output =
            path_schedule_to_xml(g, path_schedule_from_schedbin(g, input, &pool));
      }
      std::cerr << "schedbin -> xml\n";
    }
  } else {
    const SchedBinOptions options = bin_options_from(args, &pool);
    // Peek at the XML root to pick the dialect.
    if (input.find("<linkschedule") != std::string::npos) {
      output = link_schedule_to_schedbin(link_schedule_from_xml(std::string(input)),
                                         options);
    } else if (input.find("<pathschedule") != std::string::npos) {
      const DiGraph g = build_topology(args);
      output = path_schedule_to_schedbin(
          g, path_schedule_from_xml(g, std::string(input)), options);
    } else {
      throw InvalidArgument("input is neither SchedBin nor a schedule XML: " +
                            args.convert_in);
    }
    std::cerr << "xml -> schedbin (" << args.codec << ")\n";
  }
  write_output(output, args.convert_out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--topology") args.topology = value();
    else if (flag == "--dims") args.dims = value();
    else if (flag == "--nodes") args.nodes = std::stoi(value());
    else if (flag == "--degree") args.degree = std::stoi(value());
    else if (flag == "--dim") args.dim = std::stoi(value());
    else if (flag == "--seed") args.seed = std::stoull(value());
    else if (flag == "--fabric") args.fabric = value();
    else if (flag == "--output" || flag == "-o") args.output = value();
    else if (flag == "--format") args.format = value();
    else if (flag == "--codec") args.codec = value();
    else if (flag == "--cache-dir") args.cache_dir = value();
    else if (flag == "--convert") {
      args.convert_in = value();
      args.convert_out = value();
    }
    else if (flag == "--inspect") args.inspect = value();
    else if (flag == "--mmap") args.mmap = true;
    else if (flag == "--schedbin-v1") args.schedbin_v1 = true;
    else if (flag == "--report-only") args.report_only = true;
    else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      usage();
      return 2;
    }
  }

  try {
    (void)codec_from_name(args.codec);  // reject bad --codec before any work
    if (!args.inspect.empty()) return run_inspect(args);
    if (!args.convert_in.empty()) return run_convert(args);
    A2A_REQUIRE(args.format == "xml" || args.format == "schedbin",
                "unknown --format: ", args.format);

    const DiGraph topo = build_topology(args);
    const Fabric fabric = build_fabric(args.fabric);
    std::cerr << "topology: " << topo.summary() << ", fabric: " << fabric.name
              << "\n";

    std::optional<ScheduleCache> cache;
    if (!args.cache_dir.empty()) {
      ScheduleCacheOptions cache_options;
      cache_options.disk_dir = args.cache_dir;
      cache_options.schedbin.codec = codec_from_name(args.codec);
      cache.emplace(std::move(cache_options));
    }
    const GeneratedSchedule result =
        generate_schedule(topo, fabric, {}, cache ? &*cache : nullptr);
    std::cerr << "pipeline: " << result.notes
              << (result.from_cache ? " [served from cache]" : "") << "\n";
    std::cerr << "concurrent rate F = " << result.concurrent_flow
              << " (throughput bound "
              << (result.terminals.size() - 1) * result.concurrent_flow *
                     fabric.link_GBps
              << " GB/s)\n";

    ThreadPool pool;
    SchedBinOptions bin_options = bin_options_from(args, &pool);
    if (!args.schedbin_v1) {
      // Provenance stamps carried in the v2 trailer; --convert transcodes
      // preserve them instead of re-deriving from the converting process.
      bin_options.metadata = {
          {"generator", "a2a-schedgen"},
          {"topology", args.topology},
          {"fabric", args.fabric},
          {"pipeline_invocation", std::to_string(pipeline_invocations())},
      };
    }

    std::string payload;
    if (result.path.has_value()) {
      const auto validation = validate_path_schedule(
          result.schedule_graph, *result.path, result.terminals);
      A2A_REQUIRE(validation.ok, "generated schedule failed validation");
      const auto stats = analyze_path_schedule(result.schedule_graph, *result.path);
      std::cerr << "routes: " << stats.num_routes << ", chunks/QPs: "
                << stats.num_chunks << ", avg hops: " << stats.avg_hops
                << ", VC layers: " << stats.vc_layers << "\n";
      payload = args.format == "xml"
                    ? path_schedule_to_xml(result.schedule_graph, *result.path)
                    : path_schedule_to_schedbin(result.schedule_graph,
                                                *result.path, bin_options);
    } else {
      const auto validation = validate_link_schedule(
          result.schedule_graph, *result.link, result.terminals);
      A2A_REQUIRE(validation.ok, "generated schedule failed validation");
      const auto stats = analyze_link_schedule(result.schedule_graph, *result.link);
      std::cerr << "steps: " << stats.num_steps << ", transfers: "
                << stats.num_transfers << ", peak scratch/rank: "
                << stats.peak_scratch_per_rank << " shards\n";
      payload = args.format == "xml"
                    ? link_schedule_to_xml(*result.link)
                    : link_schedule_to_schedbin(*result.link, bin_options);
    }
    if (args.report_only) return 0;
    write_output(payload, args.output);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
