// DLRM-style embedding-exchange workload (§1 motivation).
//
// In model-parallel DLRM every rank owns a slice of the embedding tables;
// each batch triggers an all-to-all exchanging looked-up embedding vectors.
// This module sizes that collective and evaluates a schedule's step time and
// the resulting lookups/second.
#pragma once

#include <functional>

namespace a2a {

struct DlrmConfig {
  int ranks = 8;
  int batch_size = 4096;          ///< samples per global batch.
  int embedding_dim = 128;        ///< floats per embedding vector.
  int tables_per_rank = 4;        ///< embedding tables sharded per rank.
  int lookups_per_table = 1;      ///< pooled lookups per sample per table.
};

/// Per-rank all-to-all shard size in bytes for one batch: every rank sends
/// each other rank the embedding vectors it looked up on that rank's tables.
[[nodiscard]] double dlrm_shard_bytes(const DlrmConfig& config);

struct DlrmReport {
  double shard_bytes = 0.0;
  double alltoall_s = 0.0;
  double batches_per_second = 0.0;
};

/// Evaluates a schedule (via its simulator callback: shard bytes -> seconds
/// for the collective) on the DLRM exchange. Two all-to-alls per batch
/// (forward + backward).
[[nodiscard]] DlrmReport evaluate_dlrm(const DlrmConfig& config,
                                       const std::function<double(double)>& alltoall_seconds);

}  // namespace a2a
