#include "workloads/fft3d.hpp"

#include <chrono>
#include <cmath>

#include "common/error.hpp"

namespace a2a {

std::vector<Complex> run_fft3d_local(std::vector<Complex> grid, int n,
                                     int ranks) {
  A2A_REQUIRE(n % ranks == 0, "slab decomposition needs ranks | n");
  A2A_REQUIRE(grid.size() == static_cast<std::size_t>(n) * n * n,
              "grid size mismatch");
  const int planes = n / ranks;  // z-planes per rank
  std::vector<Complex> scratch(static_cast<std::size_t>(n));

  // Phase 1 (per rank, over its z-planes): 2D FFT in x and y, then pack the
  // plane into per-destination slices along x.
  auto at = [&](int x, int y, int z) -> Complex& {
    return grid[(static_cast<std::size_t>(z) * n + y) * n + x];
  };
  std::vector<Complex> line(static_cast<std::size_t>(n));
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {  // x-lines
      for (int x = 0; x < n; ++x) line[static_cast<std::size_t>(x)] = at(x, y, z);
      fft(line);
      for (int x = 0; x < n; ++x) at(x, y, z) = line[static_cast<std::size_t>(x)];
    }
    for (int x = 0; x < n; ++x) {  // y-lines
      for (int y = 0; y < n; ++y) line[static_cast<std::size_t>(y)] = at(x, y, z);
      fft(line);
      for (int y = 0; y < n; ++y) at(x, y, z) = line[static_cast<std::size_t>(y)];
    }
  }

  // Phase 2: all-to-all. Rank r holds z in [r*planes, ...); after the
  // exchange rank r holds x-slab [r*xs, ...) with full z extent. We move the
  // data through explicit per-(sender, receiver) message buffers to mirror
  // the collective's shards.
  const int xs = n / ranks;  // x-columns per rank after transpose
  std::vector<std::vector<Complex>> messages(
      static_cast<std::size_t>(ranks) * static_cast<std::size_t>(ranks));
  for (int sender = 0; sender < ranks; ++sender) {
    for (int receiver = 0; receiver < ranks; ++receiver) {
      auto& msg = messages[static_cast<std::size_t>(sender) * ranks + receiver];
      msg.reserve(static_cast<std::size_t>(planes) * xs * n);
      for (int z = sender * planes; z < (sender + 1) * planes; ++z) {
        for (int y = 0; y < n; ++y) {
          for (int x = receiver * xs; x < (receiver + 1) * xs; ++x) {
            msg.push_back(at(x, y, z));
          }
        }
      }
    }
  }
  // Phase 3 (per rank, over its x-slab): unpack and 1D FFT along z.
  std::vector<Complex> out(grid.size());
  auto out_at = [&](int x, int y, int z) -> Complex& {
    return out[(static_cast<std::size_t>(z) * n + y) * n + x];
  };
  for (int receiver = 0; receiver < ranks; ++receiver) {
    for (int sender = 0; sender < ranks; ++sender) {
      const auto& msg = messages[static_cast<std::size_t>(sender) * ranks + receiver];
      std::size_t i = 0;
      for (int z = sender * planes; z < (sender + 1) * planes; ++z) {
        for (int y = 0; y < n; ++y) {
          for (int x = receiver * xs; x < (receiver + 1) * xs; ++x) {
            out_at(x, y, z) = msg[i++];
          }
        }
      }
    }
    for (int x = receiver * xs; x < (receiver + 1) * xs; ++x) {
      for (int y = 0; y < n; ++y) {
        for (int z = 0; z < n; ++z) line[static_cast<std::size_t>(z)] = out_at(x, y, z);
        fft(line);
        for (int z = 0; z < n; ++z) out_at(x, y, z) = line[static_cast<std::size_t>(z)];
      }
    }
  }
  (void)scratch;
  return out;
}

double fft3d_alltoall_buffer_bytes(int n, int ranks) {
  // complex<double> grid redistributed once: every rank ships its n^3/N
  // elements (16 bytes each).
  return 16.0 * std::pow(static_cast<double>(n), 3) / ranks;
}

Fft3dTimeBreakdown model_fft3d_time(
    int n, int ranks, int threads_per_rank,
    const std::function<double(double)>& alltoall_seconds, int sample_n) {
  A2A_REQUIRE(n >= 2 && ranks >= 1 && threads_per_rank >= 1, "bad parameters");
  // Calibrate: time a real sample_n^3 FFT once.
  static thread_local int cached_n = 0;
  static thread_local double cached_seconds = 0.0;
  if (cached_n != sample_n) {
    std::vector<Complex> grid(static_cast<std::size_t>(sample_n) * sample_n *
                              sample_n);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      grid[i] = Complex(static_cast<double>(i % 97), 0.0);
    }
    const auto t0 = std::chrono::steady_clock::now();
    fft_3d(grid, sample_n, sample_n, sample_n);
    cached_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    cached_n = sample_n;
  }
  const double scale =
      (std::pow(static_cast<double>(n), 3) * std::log2(static_cast<double>(n))) /
      (std::pow(static_cast<double>(sample_n), 3) *
       std::log2(static_cast<double>(sample_n)));
  const double total_compute =
      cached_seconds * scale / ranks / threads_per_rank;

  Fft3dTimeBreakdown out;
  out.fft2d_pack_s = total_compute * (2.0 / 3.0);
  out.unpack_fft1d_s = total_compute * (1.0 / 3.0);
  out.alltoall_s = alltoall_seconds(fft3d_alltoall_buffer_bytes(n, ranks));
  return out;
}

}  // namespace a2a
