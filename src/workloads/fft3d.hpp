// Distributed 3D FFT with slab decomposition — the §5.2 workload (Fig. 6).
//
// Each of N ranks owns nz/N planes. Three phases per the paper: (1) local
// 2D FFTs + pack, (2) all-to-all, (3) unpack + local 1D FFTs. Two entry
// points:
//  * run_fft3d_local: executes the distributed algorithm in-memory (exact,
//    used by tests to prove the decomposition computes the same transform
//    as a single-node 3D FFT);
//  * model_fft3d_time: Fig. 6's timing model — compute bands measured by
//    actually running sample FFTs, the all-to-all band supplied by any of
//    the schedule simulators.
#pragma once

#include <functional>
#include <vector>

#include "workloads/fft.hpp"

namespace a2a {

/// Exact distributed 3D FFT (slab decomposition over `ranks`); grid is
/// n*n*n with x fastest. Requires n % ranks == 0. Returns the transform.
[[nodiscard]] std::vector<Complex> run_fft3d_local(std::vector<Complex> grid,
                                                   int n, int ranks);

/// Per-rank all-to-all buffer size (bytes) of the slab transpose for an
/// n^3 complex-double grid on `ranks` ranks.
[[nodiscard]] double fft3d_alltoall_buffer_bytes(int n, int ranks);

struct Fft3dTimeBreakdown {
  double fft2d_pack_s = 0.0;
  double alltoall_s = 0.0;
  double unpack_fft1d_s = 0.0;
  [[nodiscard]] double total() const {
    return fft2d_pack_s + alltoall_s + unpack_fft1d_s;
  }
};

/// Models the distributed 3D FFT time. `alltoall_seconds(total_bytes)` must
/// return the collective's completion time for the given per-rank buffer
/// size (plug in any schedule simulator). Compute bands are calibrated by
/// running real FFTs on a `sample_n`-sized grid and scaling by n^3 log n /
/// threads.
[[nodiscard]] Fft3dTimeBreakdown model_fft3d_time(
    int n, int ranks, int threads_per_rank,
    const std::function<double(double)>& alltoall_seconds, int sample_n = 64);

}  // namespace a2a
