// Mixed-radix complex FFT — the compute kernel behind the §5.2 3D FFT
// workload (the paper uses FFTW; we implement Cooley–Tukey for radices
// 2, 3, 5 with a naive-DFT fallback for other prime factors).
#pragma once

#include <complex>
#include <vector>

namespace a2a {

using Complex = std::complex<double>;

/// In-place forward DFT of `data` (any length whose prime factors are
/// handled recursively; non-{2,3,5} primes fall back to O(p^2) per factor).
void fft(std::vector<Complex>& data);

/// In-place inverse DFT (unscaled forward conjugate trick, then 1/n).
void ifft(std::vector<Complex>& data);

/// Reference O(n^2) DFT for testing.
[[nodiscard]] std::vector<Complex> naive_dft(const std::vector<Complex>& data);

/// 3D FFT of a dense nx*ny*nz grid (x fastest), single node.
void fft_3d(std::vector<Complex>& grid, int nx, int ny, int nz);

}  // namespace a2a
