#include "workloads/dlrm.hpp"

#include "common/error.hpp"

namespace a2a {

double dlrm_shard_bytes(const DlrmConfig& config) {
  A2A_REQUIRE(config.ranks >= 2, "DLRM exchange needs >= 2 ranks");
  // Each sample needs `tables_per_rank * lookups_per_table` vectors from
  // every rank; with the batch sharded evenly, rank i sends rank j the
  // vectors for j's batch slice looked up in i's tables.
  const double samples_per_rank =
      static_cast<double>(config.batch_size) / config.ranks;
  return samples_per_rank * config.tables_per_rank * config.lookups_per_table *
         config.embedding_dim * 4.0;  // float32
}

DlrmReport evaluate_dlrm(const DlrmConfig& config,
                         const std::function<double(double)>& alltoall_seconds) {
  DlrmReport report;
  report.shard_bytes = dlrm_shard_bytes(config);
  report.alltoall_s = alltoall_seconds(report.shard_bytes);
  // Forward activations + backward gradients: two exchanges per batch.
  report.batches_per_second = 1.0 / (2.0 * report.alltoall_s);
  return report;
}

}  // namespace a2a
