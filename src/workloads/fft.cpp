#include "workloads/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace a2a {

namespace {

/// Recursive mixed-radix Cooley–Tukey: n = r * m splits into r interleaved
/// sub-DFTs of size m followed by twiddled butterflies of radix r.
void fft_rec(Complex* data, int n, int stride, Complex* scratch) {
  if (n == 1) return;
  int radix = n;  // prime fallback: one naive stage
  for (const int r : {2, 3, 5}) {
    if (n % r == 0) {
      radix = r;
      break;
    }
  }
  const int m = n / radix;
  // Sub-DFTs over decimated inputs.
  for (int r = 0; r < radix; ++r) {
    fft_rec(data + r * stride, m, stride * radix, scratch);
  }
  // Combine with twiddles into scratch, then copy back.
  const double base = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (int k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    const int km = k % m;
    for (int r = 0; r < radix; ++r) {
      // Element r of decimation, index km within its sub-DFT.
      const Complex v = data[(km * radix + r) * stride];
      const double angle = base * static_cast<double>((k * r) % n);
      acc += v * Complex(std::cos(angle), std::sin(angle));
    }
    scratch[k] = acc;
  }
  for (int k = 0; k < n; ++k) data[k * stride] = scratch[k];
}

}  // namespace

void fft(std::vector<Complex>& data) {
  if (data.size() <= 1) return;
  std::vector<Complex> scratch(data.size());
  fft_rec(data.data(), static_cast<int>(data.size()), 1, scratch.data());
}

void ifft(std::vector<Complex>& data) {
  for (auto& v : data) v = std::conj(v);
  fft(data);
  const double inv = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v = std::conj(v) * inv;
}

std::vector<Complex> naive_dft(const std::vector<Complex>& data) {
  const int n = static_cast<int>(data.size());
  std::vector<Complex> out(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (int j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi * k * j / n;
      acc += data[static_cast<std::size_t>(j)] *
             Complex(std::cos(angle), std::sin(angle));
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
  return out;
}

void fft_3d(std::vector<Complex>& grid, int nx, int ny, int nz) {
  A2A_REQUIRE(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                      static_cast<std::size_t>(nz) ==
                  grid.size(),
              "grid size mismatch");
  std::vector<Complex> line;
  // X lines (contiguous).
  std::vector<Complex> scratch(static_cast<std::size_t>(std::max({nx, ny, nz})));
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      Complex* base = grid.data() + (static_cast<std::size_t>(z) * ny + y) * nx;
      fft_rec(base, nx, 1, scratch.data());
    }
  }
  // Y lines (stride nx).
  for (int z = 0; z < nz; ++z) {
    for (int x = 0; x < nx; ++x) {
      Complex* base = grid.data() + static_cast<std::size_t>(z) * ny * nx + x;
      fft_rec(base, ny, nx, scratch.data());
    }
  }
  // Z lines (stride nx*ny).
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      Complex* base = grid.data() + static_cast<std::size_t>(y) * nx + x;
      fft_rec(base, nz, nx * ny, scratch.data());
    }
  }
}

}  // namespace a2a
