// Pluggable word codecs for the SchedBin container.
//
// A schedule is flattened into a column-major stream of int64 "words"
// (src column, dst column, step column, ...). Transfer records are highly
// repetitive — sorted src columns are long runs, step columns are almost
// monotone — so run-length and delta coding shrink them dramatically. The
// dict codec adds a per-frame dictionary of repeated words (route weights,
// rational denominators, hot node ids recur across chunks) so that a
// repeated 8-to-10-byte value costs 1–3 bytes per occurrence. Each codec
// maps a span of words to bytes and back; chunking, checksumming and
// threading live one layer up in schedbin.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace a2a {

enum class SchedBinCodec : std::uint8_t {
  kRaw = 0,    ///< little-endian 8 bytes per word.
  kRle = 1,    ///< (zigzag-varint value, varint run-length) pairs.
  kDelta = 2,  ///< zigzag-varint of successive differences.
  kDict = 3,   ///< per-frame dictionary tokens + runs (v2 frames only).
};

/// Hard ceiling on dictionary entries. Tokens stay <= 3 varint bytes and a
/// hostile trailer cannot demand an unbounded dictionary allocation.
inline constexpr std::size_t kSchedBinMaxDictEntries = 65535;

[[nodiscard]] const char* codec_name(SchedBinCodec codec);

/// Parses "raw" | "rle" | "delta" | "dict". Throws InvalidArgument on
/// anything else.
[[nodiscard]] SchedBinCodec codec_from_name(const std::string& name);

/// Non-owning view of a frame dictionary: distinct words, most frequent
/// first so the hottest words get 1-byte tokens.
struct DictView {
  const std::int64_t* words = nullptr;
  std::size_t size = 0;
};

/// Builds the frame dictionary for the dict codec: every word occurring at
/// least twice in [words, words + count), ordered by (frequency desc, value
/// asc) for determinism, truncated to `max_entries`.
[[nodiscard]] std::vector<std::int64_t> build_dictionary(
    const std::int64_t* words, std::size_t count,
    std::size_t max_entries = kSchedBinMaxDictEntries);

/// Reusable dict-codec encoder: owns the value -> token index built from a
/// dictionary once per frame and shared across every chunk's encode.
class DictEncoder {
 public:
  explicit DictEncoder(DictView dict);

  /// Appends the dict encoding of `count` words to `out`. Wire format is a
  /// sequence of (token, run) ops: token 0 = literal (svarint value
  /// follows), token t >= 1 = dictionary word t-1; then uvarint run >= 1.
  void encode(const std::int64_t* words, std::size_t count,
              std::string& out) const;

 private:
  std::vector<std::pair<std::int64_t, std::uint32_t>> index_;  // sorted by value
};

/// Decodes exactly `count` words of dict-codec payload. Tokens beyond the
/// dictionary and runs overflowing the chunk are errors, not overruns.
void decode_words_dict(DictView dict, const char* data, std::size_t size,
                       std::int64_t* out, std::size_t count);

/// Compresses `count` words into `out` (appended). kDict is rejected here:
/// it needs a frame dictionary — use DictEncoder.
void encode_words(SchedBinCodec codec, const std::int64_t* words,
                  std::size_t count, std::string& out);

/// Decompresses exactly `count` words from data[0, size) into `out`.
/// Throws InvalidArgument when the payload is malformed or does not contain
/// exactly `count` words. Output growth is clamped to the declared decoded
/// size: no decoder ever writes past out[count), whatever the payload
/// claims (an rle run overflowing the chunk is an error, not an overrun),
/// so `count` — not attacker-controlled frame contents — bounds the
/// allocation a caller must provision. Callers sizing `count` from an
/// untrusted header must validate it first (see schedbin.cpp's decode
/// budget and per-chunk minimum-payload clamps). kDict is rejected here:
/// use decode_words_dict with the frame dictionary.
void decode_words(SchedBinCodec codec, const char* data, std::size_t size,
                  std::int64_t* out, std::size_t count);

}  // namespace a2a
