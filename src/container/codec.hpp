// Pluggable word codecs for the SchedBin container.
//
// A schedule is flattened into a column-major stream of int64 "words"
// (src column, dst column, step column, ...). Transfer records are highly
// repetitive — sorted src columns are long runs, step columns are almost
// monotone — so run-length and delta coding shrink them dramatically. Each
// codec maps a span of words to bytes and back; chunking, checksumming and
// threading live one layer up in schedbin.cpp.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace a2a {

enum class SchedBinCodec : std::uint8_t {
  kRaw = 0,    ///< little-endian 8 bytes per word.
  kRle = 1,    ///< (zigzag-varint value, varint run-length) pairs.
  kDelta = 2,  ///< zigzag-varint of successive differences.
};

[[nodiscard]] const char* codec_name(SchedBinCodec codec);

/// Parses "raw" | "rle" | "delta". Throws InvalidArgument on anything else.
[[nodiscard]] SchedBinCodec codec_from_name(const std::string& name);

/// Compresses `count` words into `out` (appended).
void encode_words(SchedBinCodec codec, const std::int64_t* words,
                  std::size_t count, std::string& out);

/// Decompresses exactly `count` words from data[0, size) into `out`.
/// Throws InvalidArgument when the payload is malformed or does not contain
/// exactly `count` words. Output growth is clamped to the declared decoded
/// size: no decoder ever writes past out[count), whatever the payload
/// claims (an rle run overflowing the chunk is an error, not an overrun),
/// so `count` — not attacker-controlled frame contents — bounds the
/// allocation a caller must provision. Callers sizing `count` from an
/// untrusted header must validate it first (see schedbin.cpp's decode
/// budget and per-chunk minimum-payload clamps).
void decode_words(SchedBinCodec codec, const char* data, std::size_t size,
                  std::int64_t* out, std::size_t count);

}  // namespace a2a
