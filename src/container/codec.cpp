#include "container/codec.hpp"

#include "common/binio.hpp"
#include "common/varint.hpp"

namespace a2a {

const char* codec_name(SchedBinCodec codec) {
  switch (codec) {
    case SchedBinCodec::kRaw: return "raw";
    case SchedBinCodec::kRle: return "rle";
    case SchedBinCodec::kDelta: return "delta";
  }
  throw InvalidArgument("unknown SchedBin codec id " +
                        std::to_string(static_cast<int>(codec)));
}

SchedBinCodec codec_from_name(const std::string& name) {
  if (name == "raw") return SchedBinCodec::kRaw;
  if (name == "rle") return SchedBinCodec::kRle;
  if (name == "delta") return SchedBinCodec::kDelta;
  throw InvalidArgument("unknown SchedBin codec name: " + name);
}

namespace {

void encode_raw(const std::int64_t* words, std::size_t count,
                std::string& out) {
  out.reserve(out.size() + count * 8);
  for (std::size_t i = 0; i < count; ++i) {
    binio::put_i64(out, words[i]);
  }
}

void decode_raw(const char* data, std::size_t size, std::int64_t* out,
                std::size_t count) {
  // Compare via division: `count * 8` could wrap for a hostile count near
  // SIZE_MAX, turning a mismatch into a false pass.
  A2A_REQUIRE(size % 8 == 0 && size / 8 == count,
              "raw chunk size mismatch: ", size, " bytes for ", count,
              " words");
  const std::string_view bytes(data, size);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::int64_t>(binio::get_uint(bytes, i * 8, 8));
  }
}

void encode_rle(const std::int64_t* words, std::size_t count,
                std::string& out) {
  std::size_t i = 0;
  while (i < count) {
    const std::int64_t value = words[i];
    std::size_t run = 1;
    while (i + run < count && words[i + run] == value) ++run;
    append_svarint(out, value);
    append_uvarint(out, run);
    i += run;
  }
}

void decode_rle(const char* data, std::size_t size, std::int64_t* out,
                std::size_t count) {
  std::size_t pos = 0;
  std::size_t produced = 0;
  while (produced < count) {
    const std::int64_t value = read_svarint(data, size, pos);
    const std::uint64_t run = read_uvarint(data, size, pos);
    A2A_REQUIRE(run > 0 && run <= count - produced,
                "rle run overflows chunk: run=", run, " produced=", produced,
                " count=", count);
    for (std::uint64_t r = 0; r < run; ++r) out[produced++] = value;
  }
  A2A_REQUIRE(pos == size, "trailing bytes after rle payload");
}

void encode_delta(const std::int64_t* words, std::size_t count,
                  std::string& out) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // Wrapping subtraction: delta coding must round-trip arbitrary int64
    // (e.g. bit-cast doubles) without signed overflow UB.
    const auto delta = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(words[i]) - static_cast<std::uint64_t>(prev));
    append_svarint(out, delta);
    prev = words[i];
  }
}

void decode_delta(const char* data, std::size_t size, std::int64_t* out,
                  std::size_t count) {
  std::size_t pos = 0;
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t delta = read_svarint(data, size, pos);
    prev = static_cast<std::int64_t>(static_cast<std::uint64_t>(prev) +
                                     static_cast<std::uint64_t>(delta));
    out[i] = prev;
  }
  A2A_REQUIRE(pos == size, "trailing bytes after delta payload");
}

}  // namespace

void encode_words(SchedBinCodec codec, const std::int64_t* words,
                  std::size_t count, std::string& out) {
  switch (codec) {
    case SchedBinCodec::kRaw: encode_raw(words, count, out); return;
    case SchedBinCodec::kRle: encode_rle(words, count, out); return;
    case SchedBinCodec::kDelta: encode_delta(words, count, out); return;
  }
  throw InvalidArgument("unknown SchedBin codec id " +
                        std::to_string(static_cast<int>(codec)));
}

void decode_words(SchedBinCodec codec, const char* data, std::size_t size,
                  std::int64_t* out, std::size_t count) {
  switch (codec) {
    case SchedBinCodec::kRaw: decode_raw(data, size, out, count); return;
    case SchedBinCodec::kRle: decode_rle(data, size, out, count); return;
    case SchedBinCodec::kDelta: decode_delta(data, size, out, count); return;
  }
  throw InvalidArgument("unknown SchedBin codec id " +
                        std::to_string(static_cast<int>(codec)));
}

}  // namespace a2a
