#include "container/codec.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/binio.hpp"
#include "common/varint.hpp"

namespace a2a {

const char* codec_name(SchedBinCodec codec) {
  switch (codec) {
    case SchedBinCodec::kRaw: return "raw";
    case SchedBinCodec::kRle: return "rle";
    case SchedBinCodec::kDelta: return "delta";
    case SchedBinCodec::kDict: return "dict";
  }
  throw InvalidArgument("unknown SchedBin codec id " +
                        std::to_string(static_cast<int>(codec)));
}

SchedBinCodec codec_from_name(const std::string& name) {
  if (name == "raw") return SchedBinCodec::kRaw;
  if (name == "rle") return SchedBinCodec::kRle;
  if (name == "delta") return SchedBinCodec::kDelta;
  if (name == "dict") return SchedBinCodec::kDict;
  throw InvalidArgument("unknown SchedBin codec name: " + name);
}

namespace {

void encode_raw(const std::int64_t* words, std::size_t count,
                std::string& out) {
  out.reserve(out.size() + count * 8);
  for (std::size_t i = 0; i < count; ++i) {
    binio::put_i64(out, words[i]);
  }
}

void decode_raw(const char* data, std::size_t size, std::int64_t* out,
                std::size_t count) {
  // Compare via division: `count * 8` could wrap for a hostile count near
  // SIZE_MAX, turning a mismatch into a false pass.
  A2A_REQUIRE(size % 8 == 0 && size / 8 == count,
              "raw chunk size mismatch: ", size, " bytes for ", count,
              " words");
  const std::string_view bytes(data, size);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::int64_t>(binio::get_uint(bytes, i * 8, 8));
  }
}

void encode_rle(const std::int64_t* words, std::size_t count,
                std::string& out) {
  std::size_t i = 0;
  while (i < count) {
    const std::int64_t value = words[i];
    std::size_t run = 1;
    while (i + run < count && words[i + run] == value) ++run;
    append_svarint(out, value);
    append_uvarint(out, run);
    i += run;
  }
}

void decode_rle(const char* data, std::size_t size, std::int64_t* out,
                std::size_t count) {
  std::size_t pos = 0;
  std::size_t produced = 0;
  while (produced < count) {
    const std::int64_t value = read_svarint(data, size, pos);
    const std::uint64_t run = read_uvarint(data, size, pos);
    A2A_REQUIRE(run > 0 && run <= count - produced,
                "rle run overflows chunk: run=", run, " produced=", produced,
                " count=", count);
    for (std::uint64_t r = 0; r < run; ++r) out[produced++] = value;
  }
  A2A_REQUIRE(pos == size, "trailing bytes after rle payload");
}

void encode_delta(const std::int64_t* words, std::size_t count,
                  std::string& out) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // Wrapping subtraction: delta coding must round-trip arbitrary int64
    // (e.g. bit-cast doubles) without signed overflow UB.
    const auto delta = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(words[i]) - static_cast<std::uint64_t>(prev));
    append_svarint(out, delta);
    prev = words[i];
  }
}

void decode_delta(const char* data, std::size_t size, std::int64_t* out,
                  std::size_t count) {
  std::size_t pos = 0;
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t delta = read_svarint(data, size, pos);
    prev = static_cast<std::int64_t>(static_cast<std::uint64_t>(prev) +
                                     static_cast<std::uint64_t>(delta));
    out[i] = prev;
  }
  A2A_REQUIRE(pos == size, "trailing bytes after delta payload");
}

}  // namespace

std::vector<std::int64_t> build_dictionary(const std::int64_t* words,
                                           std::size_t count,
                                           std::size_t max_entries) {
  std::unordered_map<std::int64_t, std::uint64_t> freq;
  freq.reserve(count / 4 + 16);
  std::size_t i = 0;
  while (i < count) {
    // A run counts once: the run-length field already collapses it, so a
    // word earns a dictionary slot by recurring across the frame, not by
    // sitting in one long run (which rle/delta handle for free).
    std::size_t run = 1;
    while (i + run < count && words[i + run] == words[i]) ++run;
    ++freq[words[i]];
    i += run;
  }
  std::vector<std::pair<std::int64_t, std::uint64_t>> repeated;
  repeated.reserve(freq.size());
  for (const auto& [value, n] : freq) {
    if (n >= 2) repeated.push_back({value, n});
  }
  std::sort(repeated.begin(), repeated.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (repeated.size() > max_entries) repeated.resize(max_entries);
  std::vector<std::int64_t> dict;
  dict.reserve(repeated.size());
  for (const auto& [value, n] : repeated) dict.push_back(value);
  return dict;
}

DictEncoder::DictEncoder(DictView dict) {
  A2A_REQUIRE(dict.size <= kSchedBinMaxDictEntries, "dictionary with ",
              dict.size, " entries above the ", kSchedBinMaxDictEntries,
              " ceiling");
  index_.reserve(dict.size);
  for (std::size_t i = 0; i < dict.size; ++i) {
    index_.push_back({dict.words[i], static_cast<std::uint32_t>(i)});
  }
  std::sort(index_.begin(), index_.end());
}

void DictEncoder::encode(const std::int64_t* words, std::size_t count,
                         std::string& out) const {
  std::size_t i = 0;
  while (i < count) {
    const std::int64_t value = words[i];
    std::size_t run = 1;
    while (i + run < count && words[i + run] == value) ++run;
    const auto it = std::lower_bound(
        index_.begin(), index_.end(), std::pair<std::int64_t, std::uint32_t>{value, 0},
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it != index_.end() && it->first == value) {
      append_uvarint(out, static_cast<std::uint64_t>(it->second) + 1);
    } else {
      append_uvarint(out, 0);
      append_svarint(out, value);
    }
    append_uvarint(out, run);
    i += run;
  }
}

void decode_words_dict(DictView dict, const char* data, std::size_t size,
                       std::int64_t* out, std::size_t count) {
  std::size_t pos = 0;
  std::size_t produced = 0;
  while (produced < count) {
    const std::uint64_t token = read_uvarint(data, size, pos);
    std::int64_t value;
    if (token == 0) {
      value = read_svarint(data, size, pos);
    } else {
      A2A_REQUIRE(token <= dict.size, "dict token ", token,
                  " beyond the ", dict.size, "-entry frame dictionary");
      value = dict.words[token - 1];
    }
    const std::uint64_t run = read_uvarint(data, size, pos);
    A2A_REQUIRE(run > 0 && run <= count - produced,
                "dict run overflows chunk: run=", run, " produced=", produced,
                " count=", count);
    for (std::uint64_t r = 0; r < run; ++r) out[produced++] = value;
  }
  A2A_REQUIRE(pos == size, "trailing bytes after dict payload");
}

void encode_words(SchedBinCodec codec, const std::int64_t* words,
                  std::size_t count, std::string& out) {
  switch (codec) {
    case SchedBinCodec::kRaw: encode_raw(words, count, out); return;
    case SchedBinCodec::kRle: encode_rle(words, count, out); return;
    case SchedBinCodec::kDelta: encode_delta(words, count, out); return;
    case SchedBinCodec::kDict:
      throw InvalidArgument("dict codec needs a frame dictionary — use DictEncoder");
  }
  throw InvalidArgument("unknown SchedBin codec id " +
                        std::to_string(static_cast<int>(codec)));
}

void decode_words(SchedBinCodec codec, const char* data, std::size_t size,
                  std::int64_t* out, std::size_t count) {
  switch (codec) {
    case SchedBinCodec::kRaw: decode_raw(data, size, out, count); return;
    case SchedBinCodec::kRle: decode_rle(data, size, out, count); return;
    case SchedBinCodec::kDelta: decode_delta(data, size, out, count); return;
    case SchedBinCodec::kDict:
      throw InvalidArgument(
          "dict codec needs a frame dictionary — use decode_words_dict");
  }
  throw InvalidArgument("unknown SchedBin codec id " +
                        std::to_string(static_cast<int>(codec)));
}

}  // namespace a2a
