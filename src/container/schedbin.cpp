#include "container/schedbin.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/binio.hpp"
#include "common/crc32.hpp"
#include "common/mmap_file.hpp"
#include "common/thread_pool.hpp"
#include "common/varint.hpp"
#include "container/columnar.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace a2a {

namespace {

using binio::get_uint;
using binio::put_u16;
using binio::put_u32;
using binio::put_u64;

constexpr std::size_t kHeaderBytes = 56;
constexpr std::size_t kDirEntryBytesV1 = 8;
constexpr std::size_t kDirEntryBytesV2 = 17;  // u64 offset, u32 size, u32 crc, u8 codec
constexpr std::size_t kFooterBytes = 24;

/// Generous ceiling on payload words (8 TiB raw): headers claiming more are
/// corrupt, and rejecting them here keeps the error contract (InvalidArgument,
/// not std::length_error from a wild vector allocation).
constexpr std::uint64_t kMaxWordCount = 1ULL << 40;

std::size_t chunk_count(std::uint64_t word_count, std::uint32_t chunk_words) {
  // word_count is validated <= kMaxWordCount before use, so no overflow.
  return static_cast<std::size_t>((word_count + chunk_words - 1) / chunk_words);
}

/// Least bytes `words` payload words can occupy under `codec`; anything
/// smaller cannot be a valid chunk, so a header demanding a large decode
/// from a tiny payload is rejected before any decode buffer is sized.
std::size_t min_encoded_bytes(SchedBinCodec codec, std::size_t words) {
  switch (codec) {
    case SchedBinCodec::kRaw: return words * 8;       // exact, checked below
    case SchedBinCodec::kDelta: return words;         // >= 1 byte per svarint
    case SchedBinCodec::kRle: return words > 0 ? 2 : 0;  // >= one (value, run)
    case SchedBinCodec::kDict: return words > 0 ? 2 : 0; // >= one (token, run)
  }
  return 0;
}

void check_metadata_limits(const SchedBinMetadata& metadata) {
  A2A_REQUIRE(metadata.size() <= kSchedBinMaxMetaPairs, "SchedBin metadata has ",
              metadata.size(), " pairs, above the ", kSchedBinMaxMetaPairs,
              " ceiling");
  for (const auto& [key, value] : metadata) {
    A2A_REQUIRE(!key.empty() && key.size() <= kSchedBinMaxMetaKeyBytes,
                "SchedBin metadata key of ", key.size(),
                " bytes (must be 1..", kSchedBinMaxMetaKeyBytes, ")");
    A2A_REQUIRE(value.size() <= kSchedBinMaxMetaValueBytes,
                "SchedBin metadata value of ", value.size(),
                " bytes, above the ", kSchedBinMaxMetaValueBytes, " ceiling");
  }
}

void append_header(std::string& out, SchedBinKind kind, std::uint16_t version,
                   SchedBinCodec codec, int num_nodes, int num_steps,
                   const Rational& chunk_unit, std::uint64_t record_count,
                   std::uint64_t word_count, std::uint32_t chunk_words,
                   std::uint32_t num_chunks) {
  out.append(kSchedBinMagic, sizeof(kSchedBinMagic));
  put_u16(out, version);
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(codec));
  put_u32(out, static_cast<std::uint32_t>(num_nodes));
  put_u32(out, static_cast<std::uint32_t>(num_steps));
  put_u64(out, record_count);
  put_u64(out, word_count);
  put_u64(out, static_cast<std::uint64_t>(chunk_unit.num()));
  put_u64(out, static_cast<std::uint64_t>(chunk_unit.den()));
  put_u32(out, chunk_words);
  put_u32(out, num_chunks);
}

std::string encode_container(SchedBinKind kind, int num_nodes, int num_steps,
                             const Rational& chunk_unit,
                             std::uint64_t record_count,
                             const std::vector<std::int64_t>& words,
                             const SchedBinOptions& options) {
  A2A_REQUIRE(options.version == kSchedBinVersion1 ||
                  options.version == kSchedBinVersion2,
              "unsupported SchedBin write version ", options.version);
  A2A_REQUIRE(options.chunk_words > 0, "chunk_words must be positive");
  A2A_REQUIRE(options.chunk_words <= kSchedBinMaxChunkWords,
              "chunk_words ", options.chunk_words, " above the ",
              kSchedBinMaxChunkWords, " ceiling");
  (void)codec_name(options.codec);  // validates the codec id.
  const bool v2 = options.version == kSchedBinVersion2;
  A2A_REQUIRE(v2 || options.codec != SchedBinCodec::kDict,
              "the dict codec needs a v2 frame (v1 has no dictionary trailer)");
  A2A_REQUIRE(v2 || options.metadata.empty(),
              "v1 frames cannot carry metadata — write version 2");
  check_metadata_limits(options.metadata);
  const std::size_t chunks = chunk_count(words.size(), options.chunk_words);
  obs::TraceSpan span("stage.encode",
                      std::string(codec_name(options.codec)) + ", " +
                          std::to_string(chunks) + " chunks");
  const auto encode_start = std::chrono::steady_clock::now();
  A2A_COUNTER("schedbin.encode.calls").inc();
  A2A_COUNTER("schedbin.encode.raw_bytes").add(words.size() * 8);
  const auto finish_encode_metrics = [&](const std::string& frame) {
    A2A_COUNTER("schedbin.encode.encoded_bytes").add(frame.size());
    A2A_HISTOGRAM("schedbin.encode.seconds")
        .observe_seconds(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - encode_start)
                             .count());
  };

  // The dict codec builds one dictionary over the whole frame, then every
  // chunk keeps the smallest of its dict/rle/delta/raw encodings (per-chunk
  // fallback: a chunk of monotone or run-only data should not pay dict
  // token overhead just because the frame has a dictionary).
  std::vector<std::int64_t> dict;
  std::unique_ptr<DictEncoder> dict_encoder;
  if (options.codec == SchedBinCodec::kDict) {
    dict = build_dictionary(words.data(), words.size());
    dict_encoder =
        std::make_unique<DictEncoder>(DictView{dict.data(), dict.size()});
  }

  // Compress every chunk independently (parallel when a pool is supplied).
  std::vector<std::string> payloads(chunks);
  std::vector<SchedBinCodec> chunk_codecs(chunks, options.codec);
  const auto compress_one = [&](std::size_t c) {
    const std::size_t lo = c * options.chunk_words;
    const std::size_t hi = std::min(words.size(), lo + options.chunk_words);
    const std::int64_t* span = words.data() + lo;
    const std::size_t count = hi - lo;
    if (options.codec != SchedBinCodec::kDict) {
      encode_words(options.codec, span, count, payloads[c]);
      return;
    }
    std::string best;
    SchedBinCodec best_codec = SchedBinCodec::kDict;
    if (!dict.empty()) dict_encoder->encode(span, count, best);
    for (const SchedBinCodec alt :
         {SchedBinCodec::kRle, SchedBinCodec::kDelta, SchedBinCodec::kRaw}) {
      std::string candidate;
      encode_words(alt, span, count, candidate);
      if (best_codec == SchedBinCodec::kDict && dict.empty()) {
        best = std::move(candidate);  // no dictionary: first alt seeds best
        best_codec = alt;
      } else if (candidate.size() < best.size()) {
        best = std::move(candidate);
        best_codec = alt;
      }
    }
    payloads[c] = std::move(best);
    chunk_codecs[c] = best_codec;
  };
  if (options.pool != nullptr && chunks > 1) {
    options.pool->parallel_for(chunks, compress_one);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) compress_one(c);
  }

  if (options.codec == SchedBinCodec::kDict) {
    // Per-codec chunk tally, aggregated AFTER the parallel loop (the lambda
    // runs on pool workers; scanning the result array here keeps the hot
    // loop free of shared counters).
    std::size_t by_codec[4] = {0, 0, 0, 0};
    for (const SchedBinCodec c : chunk_codecs) {
      ++by_codec[static_cast<std::size_t>(c)];
    }
    std::size_t fallbacks = 0;
    for (const SchedBinCodec alt :
         {SchedBinCodec::kRaw, SchedBinCodec::kRle, SchedBinCodec::kDelta}) {
      const std::size_t n = by_codec[static_cast<std::size_t>(alt)];
      fallbacks += n;
      obs::MetricsRegistry::global()
          .counter(std::string("schedbin.encode.chunks.") + codec_name(alt))
          .add(n);
    }
    obs::MetricsRegistry::global()
        .counter("schedbin.encode.chunks.dict")
        .add(by_codec[static_cast<std::size_t>(SchedBinCodec::kDict)]);
    A2A_COUNTER("schedbin.encode.chunk_fallbacks").add(fallbacks);
    if (fallbacks > 0) {
      span.annotate(std::to_string(fallbacks) + " chunk codec fallbacks");
    }
  }

  std::size_t payload_bytes = 0;
  for (const std::string& p : payloads) payload_bytes += p.size();

  std::string out;
  if (!v2) {
    out.reserve(kHeaderBytes + chunks * kDirEntryBytesV1 + payload_bytes);
    append_header(out, kind, kSchedBinVersion1, options.codec, num_nodes,
                  num_steps, chunk_unit, record_count, words.size(),
                  options.chunk_words, static_cast<std::uint32_t>(chunks));
    for (const std::string& p : payloads) {
      put_u32(out, static_cast<std::uint32_t>(p.size()));
      put_u32(out, crc32(p.data(), p.size()));
    }
    for (const std::string& p : payloads) out.append(p);
    finish_encode_metrics(out);
    return out;
  }

  out.reserve(kHeaderBytes + payload_bytes + chunks * kDirEntryBytesV2 +
              dict.size() * 4 + kFooterBytes + 64);
  append_header(out, kind, kSchedBinVersion2, options.codec, num_nodes,
                num_steps, chunk_unit, record_count, words.size(),
                options.chunk_words, static_cast<std::uint32_t>(chunks));
  for (const std::string& p : payloads) out.append(p);

  const std::size_t trailer_offset = out.size();
  std::string trailer;
  append_uvarint(trailer, dict.size());
  for (const std::int64_t w : dict) append_svarint(trailer, w);
  append_uvarint(trailer, options.metadata.size());
  for (const auto& [key, value] : options.metadata) {
    append_uvarint(trailer, key.size());
    trailer.append(key);
    append_uvarint(trailer, value.size());
    trailer.append(value);
  }
  std::size_t offset = kHeaderBytes;
  for (std::size_t c = 0; c < chunks; ++c) {
    put_u64(trailer, offset);
    put_u32(trailer, static_cast<std::uint32_t>(payloads[c].size()));
    put_u32(trailer, crc32(payloads[c].data(), payloads[c].size()));
    trailer.push_back(static_cast<char>(chunk_codecs[c]));
    offset += payloads[c].size();
  }
  out.append(trailer);

  put_u64(out, trailer_offset);
  put_u32(out, static_cast<std::uint32_t>(trailer.size()));
  put_u32(out, crc32(trailer.data(), trailer.size()));
  put_u32(out, crc32(out.data(), kHeaderBytes));
  out.append(kSchedBinTrailerMagic, sizeof(kSchedBinTrailerMagic));
  finish_encode_metrics(out);
  return out;
}

struct ParsedContainer {
  SchedBinInfo info;
  /// Byte offset of each chunk's payload within the container.
  std::vector<std::size_t> chunk_offsets;
  std::vector<std::uint32_t> chunk_sizes;
  std::vector<std::uint32_t> chunk_crcs;
  std::vector<SchedBinCodec> chunk_codecs;
  std::vector<std::int64_t> dict;  ///< v2 frame dictionary.
};

/// Validates one directory entry's declared payload size against the
/// codec's best possible compression, ahead of any decode allocation.
void check_chunk_floor(const SchedBinInfo& info, std::size_t c,
                       SchedBinCodec codec, std::uint32_t size) {
  const std::size_t lo_word = c * info.chunk_words;
  const std::size_t hi_word = std::min<std::size_t>(
      static_cast<std::size_t>(info.word_count), lo_word + info.chunk_words);
  const std::size_t declared = hi_word - lo_word;
  const std::size_t floor_bytes = min_encoded_bytes(codec, declared);
  A2A_REQUIRE(size >= floor_bytes,
              "SchedBin chunk ", c, " declares ", declared,
              " decoded words but holds only ", size,
              " payload bytes (needs >= ", floor_bytes, ")");
  if (codec == SchedBinCodec::kRaw) {
    A2A_REQUIRE(size == floor_bytes, "SchedBin raw chunk ", c, " holds ",
                size, " bytes for ", declared, " words");
  }
}

/// Parses and validates the fixed 56-byte header shared by v1 and v2.
void parse_header(std::string_view bytes, SchedBinInfo& info,
                  std::uint64_t max_decoded_bytes) {
  A2A_REQUIRE(std::memcmp(bytes.data(), kSchedBinMagic,
                          sizeof(kSchedBinMagic)) == 0,
              "bad SchedBin magic");
  info.version = static_cast<std::uint16_t>(get_uint(bytes, 4, 2));
  // Version gates everything else: a future-version frame may repurpose
  // any later field, and must fail as "unsupported version", not as a
  // misleading corruption diagnostic from a v1/v2-semantics check.
  A2A_REQUIRE(info.version == kSchedBinVersion1 ||
                  info.version == kSchedBinVersion2,
              "unsupported SchedBin version ", info.version);
  const auto kind = static_cast<std::uint8_t>(bytes[6]);
  A2A_REQUIRE(kind == static_cast<std::uint8_t>(SchedBinKind::kLink) ||
                  kind == static_cast<std::uint8_t>(SchedBinKind::kPath),
              "unknown SchedBin kind ", int(kind));
  info.kind = static_cast<SchedBinKind>(kind);
  info.codec = static_cast<SchedBinCodec>(bytes[7]);
  (void)codec_name(info.codec);
  info.num_nodes = static_cast<int>(get_uint(bytes, 8, 4));
  info.num_steps = static_cast<int>(get_uint(bytes, 12, 4));
  info.record_count = get_uint(bytes, 16, 8);
  info.word_count = get_uint(bytes, 24, 8);
  const auto cu_num = static_cast<std::int64_t>(get_uint(bytes, 32, 8));
  const auto cu_den = static_cast<std::int64_t>(get_uint(bytes, 40, 8));
  A2A_REQUIRE(cu_den != 0, "SchedBin chunk_unit with zero denominator");
  info.chunk_unit = Rational(cu_num, cu_den);
  info.chunk_words = static_cast<std::uint32_t>(get_uint(bytes, 48, 4));
  info.num_chunks = static_cast<std::uint32_t>(get_uint(bytes, 52, 4));
  A2A_REQUIRE(info.chunk_words > 0, "SchedBin chunk_words is zero");
  A2A_REQUIRE(info.chunk_words <= kSchedBinMaxChunkWords,
              "SchedBin chunk_words ", info.chunk_words, " above the ",
              kSchedBinMaxChunkWords, " ceiling");
  A2A_REQUIRE(info.word_count <= kMaxWordCount,
              "SchedBin word count ", info.word_count, " is implausibly large");
  A2A_REQUIRE(info.word_count * 8 <= max_decoded_bytes,
              "SchedBin decoded payload would be ", info.word_count * 8,
              " bytes, above the ", max_decoded_bytes,
              "-byte decode budget — refusing to allocate");
  A2A_REQUIRE(info.num_chunks == chunk_count(info.word_count, info.chunk_words),
              "SchedBin chunk count ", info.num_chunks,
              " inconsistent with word count ", info.word_count);
}

void parse_v1_body(std::string_view bytes, ParsedContainer& pc) {
  SchedBinInfo& info = pc.info;
  A2A_REQUIRE(info.codec != SchedBinCodec::kDict,
              "v1 SchedBin frame claims the dict codec (needs a v2 trailer)");
  const std::size_t dir_end =
      kHeaderBytes + static_cast<std::size_t>(info.num_chunks) * kDirEntryBytesV1;
  A2A_REQUIRE(bytes.size() >= dir_end, "SchedBin directory truncated");
  std::size_t offset = dir_end;
  pc.chunk_offsets.reserve(info.num_chunks);
  pc.chunk_sizes.reserve(info.num_chunks);
  pc.chunk_crcs.reserve(info.num_chunks);
  for (std::uint32_t c = 0; c < info.num_chunks; ++c) {
    const std::size_t entry = kHeaderBytes + c * kDirEntryBytesV1;
    const auto size = static_cast<std::uint32_t>(get_uint(bytes, entry, 4));
    // Growth clamp: the chunk's declared decoded size must be reachable
    // from its payload under the codec's best possible compression (raw is
    // byte-exact, delta >= 1 byte/word, rle >= one run). A directory entry
    // that breaks this is corrupt, and failing here keeps the error ahead
    // of both the payload allocation and the per-chunk decoders.
    check_chunk_floor(info, c, info.codec, size);
    pc.chunk_offsets.push_back(offset);
    pc.chunk_sizes.push_back(size);
    pc.chunk_crcs.push_back(static_cast<std::uint32_t>(get_uint(bytes, entry + 4, 4)));
    offset += size;
    info.payload_bytes += size;
  }
  A2A_REQUIRE(offset == bytes.size(), "SchedBin payload size mismatch: ",
              offset, " expected vs ", bytes.size(), " actual");
  pc.chunk_codecs.assign(info.num_chunks, info.codec);
}

void parse_v2_body(std::string_view bytes, ParsedContainer& pc) {
  SchedBinInfo& info = pc.info;
  A2A_REQUIRE(bytes.size() >= kHeaderBytes + kFooterBytes,
              "SchedBin v2 blob too small for a footer: ", bytes.size(),
              " bytes");
  A2A_REQUIRE(std::memcmp(bytes.data() + bytes.size() - 4,
                          kSchedBinTrailerMagic, 4) == 0,
              "bad SchedBin trailer magic");
  const std::size_t footer = bytes.size() - kFooterBytes;
  const std::uint64_t trailer_offset = get_uint(bytes, footer, 8);
  const auto trailer_bytes =
      static_cast<std::size_t>(get_uint(bytes, footer + 8, 4));
  const auto trailer_crc =
      static_cast<std::uint32_t>(get_uint(bytes, footer + 12, 4));
  const auto header_crc =
      static_cast<std::uint32_t>(get_uint(bytes, footer + 16, 4));
  A2A_REQUIRE(crc32(bytes.data(), kHeaderBytes) == header_crc,
              "SchedBin header failed CRC check");
  // Bound the offset before any arithmetic: a forged 64-bit offset near
  // 2^64 would wrap the sum below into a false pass and send substr() past
  // the container.
  A2A_REQUIRE(trailer_offset >= kHeaderBytes && trailer_offset <= bytes.size(),
              "SchedBin trailer offset ", trailer_offset, " out of range");
  A2A_REQUIRE(trailer_offset + trailer_bytes + kFooterBytes == bytes.size(),
              "SchedBin trailer geometry inconsistent: offset=", trailer_offset,
              " bytes=", trailer_bytes, " total=", bytes.size());
  const std::string_view trailer =
      bytes.substr(static_cast<std::size_t>(trailer_offset), trailer_bytes);
  A2A_REQUIRE(crc32(trailer.data(), trailer.size()) == trailer_crc,
              "SchedBin trailer failed CRC check");
  info.trailer_bytes = trailer_bytes;

  std::size_t pos = 0;
  const std::uint64_t dict_count =
      read_uvarint(trailer.data(), trailer.size(), pos);
  A2A_REQUIRE(dict_count <= kSchedBinMaxDictEntries,
              "SchedBin dictionary claims ", dict_count, " entries, above the ",
              kSchedBinMaxDictEntries, " ceiling");
  pc.dict.reserve(static_cast<std::size_t>(dict_count));
  for (std::uint64_t i = 0; i < dict_count; ++i) {
    pc.dict.push_back(read_svarint(trailer.data(), trailer.size(), pos));
  }
  info.dict_words = pc.dict.size();
  A2A_REQUIRE(info.codec == SchedBinCodec::kDict || pc.dict.empty(),
              "SchedBin frame carries a dictionary but is not dict-coded");

  const std::uint64_t meta_pairs =
      read_uvarint(trailer.data(), trailer.size(), pos);
  A2A_REQUIRE(meta_pairs <= kSchedBinMaxMetaPairs, "SchedBin metadata claims ",
              meta_pairs, " pairs, above the ", kSchedBinMaxMetaPairs,
              " ceiling");
  for (std::uint64_t i = 0; i < meta_pairs; ++i) {
    const std::uint64_t klen = read_uvarint(trailer.data(), trailer.size(), pos);
    A2A_REQUIRE(klen >= 1 && klen <= kSchedBinMaxMetaKeyBytes &&
                    klen <= trailer.size() - pos,
                "SchedBin metadata key length ", klen, " out of range");
    std::string key(trailer.substr(pos, static_cast<std::size_t>(klen)));
    pos += static_cast<std::size_t>(klen);
    const std::uint64_t vlen = read_uvarint(trailer.data(), trailer.size(), pos);
    A2A_REQUIRE(vlen <= kSchedBinMaxMetaValueBytes &&
                    vlen <= trailer.size() - pos,
                "SchedBin metadata value length ", vlen, " out of range");
    std::string value(trailer.substr(pos, static_cast<std::size_t>(vlen)));
    pos += static_cast<std::size_t>(vlen);
    info.metadata.emplace_back(std::move(key), std::move(value));
  }

  A2A_REQUIRE(trailer.size() - pos ==
                  static_cast<std::size_t>(info.num_chunks) * kDirEntryBytesV2,
              "SchedBin chunk directory truncated: ", trailer.size() - pos,
              " bytes for ", info.num_chunks, " chunks");
  pc.chunk_offsets.reserve(info.num_chunks);
  pc.chunk_sizes.reserve(info.num_chunks);
  pc.chunk_crcs.reserve(info.num_chunks);
  pc.chunk_codecs.reserve(info.num_chunks);
  std::size_t expected_offset = kHeaderBytes;
  for (std::uint32_t c = 0; c < info.num_chunks; ++c) {
    const std::uint64_t offset = get_uint(trailer, pos, 8);
    const auto size = static_cast<std::uint32_t>(get_uint(trailer, pos + 8, 4));
    const auto crc = static_cast<std::uint32_t>(get_uint(trailer, pos + 12, 4));
    const auto codec = static_cast<SchedBinCodec>(
        static_cast<unsigned char>(trailer[pos + 16]));
    pos += kDirEntryBytesV2;
    (void)codec_name(codec);
    // A dict frame's chunks may individually fall back to any codec; under
    // any other frame codec the directory must agree with the header.
    A2A_REQUIRE(info.codec == SchedBinCodec::kDict || codec == info.codec,
                "SchedBin chunk ", c, " codec ", codec_name(codec),
                " disagrees with frame codec ", codec_name(info.codec));
    A2A_REQUIRE(offset == expected_offset,
                "SchedBin chunk ", c, " offset ", offset,
                " breaks payload contiguity (expected ", expected_offset, ")");
    check_chunk_floor(info, c, codec, size);
    pc.chunk_offsets.push_back(static_cast<std::size_t>(offset));
    pc.chunk_sizes.push_back(size);
    pc.chunk_crcs.push_back(crc);
    pc.chunk_codecs.push_back(codec);
    expected_offset += size;
    info.payload_bytes += size;
  }
  A2A_REQUIRE(expected_offset == trailer_offset,
              "SchedBin payload size mismatch: chunks end at ", expected_offset,
              " but the trailer starts at ", trailer_offset);
}

ParsedContainer parse_container(std::string_view bytes,
                                std::uint64_t max_decoded_bytes) {
  A2A_REQUIRE(bytes.size() >= kHeaderBytes,
              "SchedBin blob too small: ", bytes.size(), " bytes");
  ParsedContainer pc;
  parse_header(bytes, pc.info, max_decoded_bytes);
  if (pc.info.version == kSchedBinVersion1) {
    parse_v1_body(bytes, pc);
  } else {
    parse_v2_body(bytes, pc);  // parse_header admits only v1/v2
  }
  pc.info.total_bytes = bytes.size();
  return pc;
}

/// CRC-checks and decodes chunk `c` of a parsed container into
/// words[lo, hi). The only bytes touched are the chunk's own payload.
void decode_chunk_at(std::string_view bytes, const ParsedContainer& pc,
                     std::size_t c, std::int64_t* out) {
  const SchedBinInfo& info = pc.info;
  const char* data = bytes.data() + pc.chunk_offsets[c];
  const std::size_t size = pc.chunk_sizes[c];
  A2A_REQUIRE(crc32(data, size) == pc.chunk_crcs[c],
              "SchedBin chunk ", c, " failed CRC check");
  const std::size_t lo = c * info.chunk_words;
  const std::size_t hi =
      std::min<std::size_t>(info.word_count, lo + info.chunk_words);
  if (pc.chunk_codecs[c] == SchedBinCodec::kDict) {
    decode_words_dict(DictView{pc.dict.data(), pc.dict.size()}, data, size,
                      out, hi - lo);
  } else {
    decode_words(pc.chunk_codecs[c], data, size, out, hi - lo);
  }
}

std::vector<std::int64_t> decode_payload(std::string_view bytes,
                                         const ParsedContainer& pc,
                                         ThreadPool* pool) {
  const SchedBinInfo& info = pc.info;
  A2A_TRACE_SPAN("schedbin.decode",
                 std::to_string(info.num_chunks) + " chunks");
  const auto decode_start = std::chrono::steady_clock::now();
  std::vector<std::int64_t> words(info.word_count);
  const auto decode_one = [&](std::size_t c) {
    decode_chunk_at(bytes, pc, c, words.data() + c * info.chunk_words);
  };
  if (pool != nullptr && info.num_chunks > 1) {
    pool->parallel_for(info.num_chunks, decode_one);
  } else {
    for (std::size_t c = 0; c < info.num_chunks; ++c) decode_one(c);
  }
  A2A_COUNTER("schedbin.decode.calls").inc();
  A2A_COUNTER("schedbin.decode.payload_bytes").add(info.payload_bytes);
  A2A_COUNTER("schedbin.decode.decoded_bytes").add(info.word_count * 8);
  A2A_HISTOGRAM("schedbin.decode.seconds")
      .observe_seconds(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - decode_start)
                           .count());
  return words;
}

}  // namespace

std::string link_schedule_to_schedbin(const LinkSchedule& schedule,
                                      const SchedBinOptions& options) {
  return encode_container(SchedBinKind::kLink, schedule.num_nodes,
                          schedule.num_steps, Rational(0),
                          schedule.transfers.size(),
                          link_schedule_to_words(schedule), options);
}

LinkSchedule link_schedule_from_schedbin(std::string_view bytes,
                                         ThreadPool* pool,
                                         std::uint64_t max_decoded_bytes) {
  const ParsedContainer pc = parse_container(bytes, max_decoded_bytes);
  A2A_REQUIRE(pc.info.kind == SchedBinKind::kLink,
              "not a link-schedule SchedBin");
  const std::vector<std::int64_t> words = decode_payload(bytes, pc, pool);
  return link_schedule_from_words(words, pc.info.num_nodes, pc.info.num_steps,
                                  static_cast<std::size_t>(pc.info.record_count));
}

std::string path_schedule_to_schedbin(const DiGraph& g,
                                      const PathSchedule& schedule,
                                      const SchedBinOptions& options) {
  return encode_container(SchedBinKind::kPath, schedule.num_nodes, 0,
                          schedule.chunk_unit, schedule.entries.size(),
                          path_schedule_to_words(g, schedule), options);
}

PathSchedule path_schedule_from_schedbin(const DiGraph& g,
                                         std::string_view bytes,
                                         ThreadPool* pool,
                                         std::uint64_t max_decoded_bytes) {
  const ParsedContainer pc = parse_container(bytes, max_decoded_bytes);
  A2A_REQUIRE(pc.info.kind == SchedBinKind::kPath,
              "not a path-schedule SchedBin");
  const std::vector<std::int64_t> words = decode_payload(bytes, pc, pool);
  return path_schedule_from_words(g, words, pc.info.num_nodes,
                                  pc.info.chunk_unit,
                                  static_cast<std::size_t>(pc.info.record_count));
}

SchedBinInfo schedbin_inspect(std::string_view bytes,
                              std::uint64_t max_decoded_bytes) {
  const ParsedContainer pc = parse_container(bytes, max_decoded_bytes);
  for (std::uint32_t c = 0; c < pc.info.num_chunks; ++c) {
    A2A_REQUIRE(crc32(bytes.data() + pc.chunk_offsets[c], pc.chunk_sizes[c]) ==
                    pc.chunk_crcs[c],
                "SchedBin chunk ", c, " failed CRC check");
  }
  return pc.info;
}

std::string schedbin_convert(std::string_view bytes, SchedBinOptions options,
                             std::uint64_t max_decoded_bytes) {
  const ParsedContainer pc = parse_container(bytes, max_decoded_bytes);
  const std::vector<std::int64_t> words =
      decode_payload(bytes, pc, options.pool);
  // Frame metadata rides along unless the caller stamps its own; v1 targets
  // cannot carry any, so conversion down-level drops it by design.
  if (options.metadata.empty() && options.version == kSchedBinVersion2) {
    options.metadata = pc.info.metadata;
  }
  return encode_container(pc.info.kind, pc.info.num_nodes, pc.info.num_steps,
                          pc.info.chunk_unit, pc.info.record_count, words,
                          options);
}

// ------------------------------------------------------------- the reader ---

struct SchedBinReader::Impl {
  MmapFile map;             ///< holds the mapping for open_file readers.
  std::string_view bytes;   ///< the container (mapped or caller-owned).
  ParsedContainer pc;
  std::size_t overhead_bytes = 0;  ///< header + directory/trailer + footer.
  mutable std::atomic<std::size_t> payload_read{0};
};

SchedBinReader::SchedBinReader(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
SchedBinReader::~SchedBinReader() = default;
SchedBinReader::SchedBinReader(SchedBinReader&&) noexcept = default;
SchedBinReader& SchedBinReader::operator=(SchedBinReader&&) noexcept = default;

namespace {

std::size_t reader_overhead(const SchedBinInfo& info) {
  if (info.version == kSchedBinVersion1) {
    return kHeaderBytes +
           static_cast<std::size_t>(info.num_chunks) * kDirEntryBytesV1;
  }
  return kHeaderBytes + info.trailer_bytes + kFooterBytes;
}

}  // namespace

SchedBinReader SchedBinReader::open_file(const std::string& path,
                                         std::uint64_t max_decoded_bytes) {
  auto impl = std::make_unique<Impl>();
  impl->map = MmapFile(path);
  impl->bytes = impl->map.view();
  impl->pc = parse_container(impl->bytes, max_decoded_bytes);
  impl->overhead_bytes = reader_overhead(impl->pc.info);
  return SchedBinReader(std::move(impl));
}

SchedBinReader SchedBinReader::from_bytes(std::string_view bytes,
                                          std::uint64_t max_decoded_bytes) {
  auto impl = std::make_unique<Impl>();
  impl->bytes = bytes;
  impl->pc = parse_container(bytes, max_decoded_bytes);
  impl->overhead_bytes = reader_overhead(impl->pc.info);
  return SchedBinReader(std::move(impl));
}

const SchedBinInfo& SchedBinReader::info() const { return impl_->pc.info; }

std::uint32_t SchedBinReader::num_chunks() const {
  return impl_->pc.info.num_chunks;
}

std::size_t SchedBinReader::chunk_word_count(std::uint32_t c) const {
  const SchedBinInfo& info = impl_->pc.info;
  A2A_REQUIRE(c < info.num_chunks, "chunk ", c, " out of range (",
              info.num_chunks, " chunks)");
  const std::size_t lo = static_cast<std::size_t>(c) * info.chunk_words;
  return std::min<std::size_t>(static_cast<std::size_t>(info.word_count),
                               lo + info.chunk_words) -
         lo;
}

SchedBinReader::ChunkEntry SchedBinReader::chunk_entry(std::uint32_t c) const {
  A2A_REQUIRE(c < impl_->pc.info.num_chunks, "chunk ", c, " out of range (",
              impl_->pc.info.num_chunks, " chunks)");
  return {impl_->pc.chunk_offsets[c], impl_->pc.chunk_sizes[c],
          impl_->pc.chunk_crcs[c], impl_->pc.chunk_codecs[c]};
}

std::size_t SchedBinReader::decode_chunk(std::uint32_t c,
                                         std::vector<std::int64_t>& out) const {
  const std::size_t count = chunk_word_count(c);
  out.resize(count);
  decode_chunk_at(impl_->bytes, impl_->pc, c, out.data());
  impl_->payload_read.fetch_add(impl_->pc.chunk_sizes[c],
                                std::memory_order_relaxed);
  return count;
}

std::vector<std::int64_t> SchedBinReader::decode_all(ThreadPool* pool) const {
  std::vector<std::int64_t> words = decode_payload(impl_->bytes, impl_->pc, pool);
  impl_->payload_read.fetch_add(impl_->pc.info.payload_bytes,
                                std::memory_order_relaxed);
  return words;
}

LinkSchedule SchedBinReader::read_link(ThreadPool* pool) const {
  const SchedBinInfo& info = impl_->pc.info;
  A2A_REQUIRE(info.kind == SchedBinKind::kLink, "not a link-schedule SchedBin");
  return link_schedule_from_words(decode_all(pool), info.num_nodes,
                                  info.num_steps,
                                  static_cast<std::size_t>(info.record_count));
}

PathSchedule SchedBinReader::read_path(const DiGraph& g,
                                       ThreadPool* pool) const {
  const SchedBinInfo& info = impl_->pc.info;
  A2A_REQUIRE(info.kind == SchedBinKind::kPath, "not a path-schedule SchedBin");
  return path_schedule_from_words(g, decode_all(pool), info.num_nodes,
                                  info.chunk_unit,
                                  static_cast<std::size_t>(info.record_count));
}

std::size_t SchedBinReader::bytes_read() const {
  return impl_->overhead_bytes +
         impl_->payload_read.load(std::memory_order_relaxed);
}

std::size_t SchedBinReader::total_bytes() const { return impl_->bytes.size(); }

}  // namespace a2a
