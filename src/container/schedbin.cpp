#include "container/schedbin.hpp"

#include <cstring>
#include <vector>

#include "common/binio.hpp"
#include "common/crc32.hpp"
#include "common/thread_pool.hpp"
#include "container/columnar.hpp"

namespace a2a {

namespace {

using binio::get_uint;
using binio::put_u16;
using binio::put_u32;
using binio::put_u64;

constexpr std::size_t kHeaderBytes = 56;
constexpr std::size_t kDirEntryBytes = 8;

/// Generous ceiling on payload words (8 TiB raw): headers claiming more are
/// corrupt, and rejecting them here keeps the error contract (InvalidArgument,
/// not std::length_error from a wild vector allocation).
constexpr std::uint64_t kMaxWordCount = 1ULL << 40;

std::size_t chunk_count(std::uint64_t word_count, std::uint32_t chunk_words) {
  // word_count is validated <= kMaxWordCount before use, so no overflow.
  return static_cast<std::size_t>((word_count + chunk_words - 1) / chunk_words);
}

std::string encode_container(SchedBinKind kind, int num_nodes, int num_steps,
                             const Rational& chunk_unit,
                             std::uint64_t record_count,
                             const std::vector<std::int64_t>& words,
                             const SchedBinOptions& options) {
  A2A_REQUIRE(options.chunk_words > 0, "chunk_words must be positive");
  A2A_REQUIRE(options.chunk_words <= kSchedBinMaxChunkWords,
              "chunk_words ", options.chunk_words, " above the ",
              kSchedBinMaxChunkWords, " ceiling");
  (void)codec_name(options.codec);  // validates the codec id.
  const std::size_t chunks = chunk_count(words.size(), options.chunk_words);

  // Compress every chunk independently (parallel when a pool is supplied).
  std::vector<std::string> payloads(chunks);
  const auto compress_one = [&](std::size_t c) {
    const std::size_t lo = c * options.chunk_words;
    const std::size_t hi = std::min(words.size(), lo + options.chunk_words);
    encode_words(options.codec, words.data() + lo, hi - lo, payloads[c]);
  };
  if (options.pool != nullptr && chunks > 1) {
    options.pool->parallel_for(chunks, compress_one);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) compress_one(c);
  }

  std::string out;
  std::size_t payload_bytes = 0;
  for (const std::string& p : payloads) payload_bytes += p.size();
  out.reserve(kHeaderBytes + chunks * kDirEntryBytes + payload_bytes);

  out.append(kSchedBinMagic, sizeof(kSchedBinMagic));
  put_u16(out, kSchedBinVersion);
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(options.codec));
  put_u32(out, static_cast<std::uint32_t>(num_nodes));
  put_u32(out, static_cast<std::uint32_t>(num_steps));
  put_u64(out, record_count);
  put_u64(out, words.size());
  put_u64(out, static_cast<std::uint64_t>(chunk_unit.num()));
  put_u64(out, static_cast<std::uint64_t>(chunk_unit.den()));
  put_u32(out, options.chunk_words);
  put_u32(out, static_cast<std::uint32_t>(chunks));
  for (const std::string& p : payloads) {
    put_u32(out, static_cast<std::uint32_t>(p.size()));
    put_u32(out, crc32(p.data(), p.size()));
  }
  for (const std::string& p : payloads) out.append(p);
  return out;
}

struct ParsedContainer {
  SchedBinInfo info;
  /// Byte offset of each chunk's payload within the container.
  std::vector<std::size_t> chunk_offsets;
  std::vector<std::uint32_t> chunk_sizes;
  std::vector<std::uint32_t> chunk_crcs;
};

/// Least bytes `words` payload words can occupy under `codec`; anything
/// smaller cannot be a valid chunk, so a header demanding a large decode
/// from a tiny payload is rejected before any decode buffer is sized.
std::size_t min_encoded_bytes(SchedBinCodec codec, std::size_t words) {
  switch (codec) {
    case SchedBinCodec::kRaw: return words * 8;       // exact, checked below
    case SchedBinCodec::kDelta: return words;         // >= 1 byte per svarint
    case SchedBinCodec::kRle: return words > 0 ? 2 : 0;  // >= one (value, run)
  }
  return 0;
}

ParsedContainer parse_container(std::string_view bytes,
                                std::uint64_t max_decoded_bytes) {
  A2A_REQUIRE(bytes.size() >= kHeaderBytes,
              "SchedBin blob too small: ", bytes.size(), " bytes");
  A2A_REQUIRE(std::memcmp(bytes.data(), kSchedBinMagic,
                          sizeof(kSchedBinMagic)) == 0,
              "bad SchedBin magic");
  ParsedContainer pc;
  SchedBinInfo& info = pc.info;
  info.version = static_cast<std::uint16_t>(get_uint(bytes, 4, 2));
  A2A_REQUIRE(info.version == kSchedBinVersion, "unsupported SchedBin version ",
              info.version);
  const auto kind = static_cast<std::uint8_t>(bytes[6]);
  A2A_REQUIRE(kind == static_cast<std::uint8_t>(SchedBinKind::kLink) ||
                  kind == static_cast<std::uint8_t>(SchedBinKind::kPath),
              "unknown SchedBin kind ", int(kind));
  info.kind = static_cast<SchedBinKind>(kind);
  info.codec = static_cast<SchedBinCodec>(bytes[7]);
  (void)codec_name(info.codec);
  info.num_nodes = static_cast<int>(get_uint(bytes, 8, 4));
  info.num_steps = static_cast<int>(get_uint(bytes, 12, 4));
  info.record_count = get_uint(bytes, 16, 8);
  info.word_count = get_uint(bytes, 24, 8);
  const auto cu_num = static_cast<std::int64_t>(get_uint(bytes, 32, 8));
  const auto cu_den = static_cast<std::int64_t>(get_uint(bytes, 40, 8));
  A2A_REQUIRE(cu_den != 0, "SchedBin chunk_unit with zero denominator");
  info.chunk_unit = Rational(cu_num, cu_den);
  info.chunk_words = static_cast<std::uint32_t>(get_uint(bytes, 48, 4));
  info.num_chunks = static_cast<std::uint32_t>(get_uint(bytes, 52, 4));
  A2A_REQUIRE(info.chunk_words > 0, "SchedBin chunk_words is zero");
  A2A_REQUIRE(info.chunk_words <= kSchedBinMaxChunkWords,
              "SchedBin chunk_words ", info.chunk_words, " above the ",
              kSchedBinMaxChunkWords, " ceiling");
  A2A_REQUIRE(info.word_count <= kMaxWordCount,
              "SchedBin word count ", info.word_count, " is implausibly large");
  A2A_REQUIRE(info.word_count * 8 <= max_decoded_bytes,
              "SchedBin decoded payload would be ", info.word_count * 8,
              " bytes, above the ", max_decoded_bytes,
              "-byte decode budget — refusing to allocate");
  A2A_REQUIRE(info.num_chunks == chunk_count(info.word_count, info.chunk_words),
              "SchedBin chunk count ", info.num_chunks,
              " inconsistent with word count ", info.word_count);

  const std::size_t dir_end =
      kHeaderBytes + static_cast<std::size_t>(info.num_chunks) * kDirEntryBytes;
  A2A_REQUIRE(bytes.size() >= dir_end, "SchedBin directory truncated");
  std::size_t offset = dir_end;
  pc.chunk_offsets.reserve(info.num_chunks);
  pc.chunk_sizes.reserve(info.num_chunks);
  pc.chunk_crcs.reserve(info.num_chunks);
  for (std::uint32_t c = 0; c < info.num_chunks; ++c) {
    const std::size_t entry = kHeaderBytes + c * kDirEntryBytes;
    const auto size = static_cast<std::uint32_t>(get_uint(bytes, entry, 4));
    // Growth clamp: the chunk's declared decoded size must be reachable
    // from its payload under the codec's best possible compression (raw is
    // byte-exact, delta >= 1 byte/word, rle >= one run). A directory entry
    // that breaks this is corrupt, and failing here keeps the error ahead
    // of both the payload allocation and the per-chunk decoders.
    const std::size_t lo_word = static_cast<std::size_t>(c) * info.chunk_words;
    const std::size_t hi_word = std::min<std::size_t>(
        static_cast<std::size_t>(info.word_count), lo_word + info.chunk_words);
    const std::size_t declared = hi_word - lo_word;
    const std::size_t floor_bytes = min_encoded_bytes(info.codec, declared);
    A2A_REQUIRE(size >= floor_bytes,
                "SchedBin chunk ", c, " declares ", declared,
                " decoded words but holds only ", size,
                " payload bytes (needs >= ", floor_bytes, ")");
    if (info.codec == SchedBinCodec::kRaw) {
      A2A_REQUIRE(size == floor_bytes, "SchedBin raw chunk ", c, " holds ",
                  size, " bytes for ", declared, " words");
    }
    pc.chunk_offsets.push_back(offset);
    pc.chunk_sizes.push_back(size);
    pc.chunk_crcs.push_back(static_cast<std::uint32_t>(get_uint(bytes, entry + 4, 4)));
    offset += size;
    info.payload_bytes += size;
  }
  A2A_REQUIRE(offset == bytes.size(), "SchedBin payload size mismatch: ",
              offset, " expected vs ", bytes.size(), " actual");
  info.total_bytes = bytes.size();
  return pc;
}

std::vector<std::int64_t> decode_payload(std::string_view bytes,
                                         const ParsedContainer& pc,
                                         ThreadPool* pool) {
  const SchedBinInfo& info = pc.info;
  std::vector<std::int64_t> words(info.word_count);
  const auto decode_one = [&](std::size_t c) {
    const char* data = bytes.data() + pc.chunk_offsets[c];
    const std::size_t size = pc.chunk_sizes[c];
    A2A_REQUIRE(crc32(data, size) == pc.chunk_crcs[c],
                "SchedBin chunk ", c, " failed CRC check");
    const std::size_t lo = c * info.chunk_words;
    const std::size_t hi =
        std::min<std::size_t>(info.word_count, lo + info.chunk_words);
    decode_words(info.codec, data, size, words.data() + lo, hi - lo);
  };
  if (pool != nullptr && info.num_chunks > 1) {
    pool->parallel_for(info.num_chunks, decode_one);
  } else {
    for (std::size_t c = 0; c < info.num_chunks; ++c) decode_one(c);
  }
  return words;
}

}  // namespace

std::string link_schedule_to_schedbin(const LinkSchedule& schedule,
                                      const SchedBinOptions& options) {
  return encode_container(SchedBinKind::kLink, schedule.num_nodes,
                          schedule.num_steps, Rational(0),
                          schedule.transfers.size(),
                          link_schedule_to_words(schedule), options);
}

LinkSchedule link_schedule_from_schedbin(std::string_view bytes,
                                         ThreadPool* pool,
                                         std::uint64_t max_decoded_bytes) {
  const ParsedContainer pc = parse_container(bytes, max_decoded_bytes);
  A2A_REQUIRE(pc.info.kind == SchedBinKind::kLink,
              "not a link-schedule SchedBin");
  const std::vector<std::int64_t> words = decode_payload(bytes, pc, pool);
  return link_schedule_from_words(words, pc.info.num_nodes, pc.info.num_steps,
                                  static_cast<std::size_t>(pc.info.record_count));
}

std::string path_schedule_to_schedbin(const DiGraph& g,
                                      const PathSchedule& schedule,
                                      const SchedBinOptions& options) {
  return encode_container(SchedBinKind::kPath, schedule.num_nodes, 0,
                          schedule.chunk_unit, schedule.entries.size(),
                          path_schedule_to_words(g, schedule), options);
}

PathSchedule path_schedule_from_schedbin(const DiGraph& g,
                                         std::string_view bytes,
                                         ThreadPool* pool,
                                         std::uint64_t max_decoded_bytes) {
  const ParsedContainer pc = parse_container(bytes, max_decoded_bytes);
  A2A_REQUIRE(pc.info.kind == SchedBinKind::kPath,
              "not a path-schedule SchedBin");
  const std::vector<std::int64_t> words = decode_payload(bytes, pc, pool);
  return path_schedule_from_words(g, words, pc.info.num_nodes,
                                  pc.info.chunk_unit,
                                  static_cast<std::size_t>(pc.info.record_count));
}

SchedBinInfo schedbin_inspect(std::string_view bytes,
                              std::uint64_t max_decoded_bytes) {
  const ParsedContainer pc = parse_container(bytes, max_decoded_bytes);
  for (std::uint32_t c = 0; c < pc.info.num_chunks; ++c) {
    A2A_REQUIRE(crc32(bytes.data() + pc.chunk_offsets[c], pc.chunk_sizes[c]) ==
                    pc.chunk_crcs[c],
                "SchedBin chunk ", c, " failed CRC check");
  }
  return pc.info;
}

}  // namespace a2a
