// Columnar flattening of schedules for the SchedBin container.
//
// SchedBin codecs operate on a flat stream of int64 words. A schedule is
// laid out column-major — all src values, then all dst values, ... — so that
// delta and run-length coding see the per-column regularity (compile order
// groups transfers by step and source) instead of interleaved noise.
//
// Link layout (9 columns × T transfers):
//   src | dst | lo_num | lo_den | hi_num | hi_den | from | to | step
//
// Path layout (6 columns × R routes, then the ragged node lists):
//   src | dst | weight_bits | num_chunks | layer | path_len
//   followed by the concatenation of every route's node sequence
//   (path_len nodes each, including endpoints; 0 for an empty path).
//
// weight_bits is the IEEE-754 bit pattern of RouteEntry::weight, so path
// schedules round-trip bit-exactly (unlike the XML dialect, which snaps
// weights to bounded-denominator rationals).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "schedule/schedule.hpp"

namespace a2a {

inline constexpr std::size_t kLinkColumns = 9;
inline constexpr std::size_t kPathColumns = 6;

[[nodiscard]] std::vector<std::int64_t> link_schedule_to_words(
    const LinkSchedule& schedule);

/// Rebuilds a LinkSchedule from `record_count` transfers flattened by
/// link_schedule_to_words. num_nodes/num_steps come from the container
/// header. Throws InvalidArgument when the word count does not match.
[[nodiscard]] LinkSchedule link_schedule_from_words(
    const std::vector<std::int64_t>& words, int num_nodes, int num_steps,
    std::size_t record_count);

[[nodiscard]] std::vector<std::int64_t> path_schedule_to_words(
    const DiGraph& g, const PathSchedule& schedule);

/// Rebuilds a PathSchedule against `g` (route node sequences are resolved
/// back to edge ids, rejecting non-edges like the XML reader does).
[[nodiscard]] PathSchedule path_schedule_from_words(
    const DiGraph& g, const std::vector<std::int64_t>& words, int num_nodes,
    const Rational& chunk_unit, std::size_t record_count);

}  // namespace a2a
