#include "container/columnar.hpp"

#include <bit>

#include "graph/paths.hpp"

namespace a2a {

std::vector<std::int64_t> link_schedule_to_words(const LinkSchedule& schedule) {
  const std::size_t t = schedule.transfers.size();
  std::vector<std::int64_t> words(kLinkColumns * t);
  for (std::size_t i = 0; i < t; ++i) {
    const Transfer& tr = schedule.transfers[i];
    words[0 * t + i] = tr.chunk.src;
    words[1 * t + i] = tr.chunk.dst;
    words[2 * t + i] = tr.chunk.lo.num();
    words[3 * t + i] = tr.chunk.lo.den();
    words[4 * t + i] = tr.chunk.hi.num();
    words[5 * t + i] = tr.chunk.hi.den();
    words[6 * t + i] = tr.from;
    words[7 * t + i] = tr.to;
    words[8 * t + i] = tr.step;
  }
  return words;
}

LinkSchedule link_schedule_from_words(const std::vector<std::int64_t>& words,
                                      int num_nodes, int num_steps,
                                      std::size_t record_count) {
  // Divide, don't multiply: `kLinkColumns * record_count` wraps for a
  // hostile 64-bit record count, turning a mismatch into a false pass (and
  // the resize below into a wild allocation).
  A2A_REQUIRE(record_count <= words.size() / kLinkColumns &&
                  words.size() == kLinkColumns * record_count,
              "link word stream has ", words.size(), " words for ",
              record_count, " records");
  LinkSchedule out;
  out.num_nodes = num_nodes;
  out.num_steps = num_steps;
  out.transfers.resize(record_count);
  const std::size_t t = record_count;
  for (std::size_t i = 0; i < t; ++i) {
    Transfer& tr = out.transfers[i];
    tr.chunk.src = static_cast<NodeId>(words[0 * t + i]);
    tr.chunk.dst = static_cast<NodeId>(words[1 * t + i]);
    tr.chunk.lo = Rational(words[2 * t + i], words[3 * t + i]);
    tr.chunk.hi = Rational(words[4 * t + i], words[5 * t + i]);
    tr.from = static_cast<NodeId>(words[6 * t + i]);
    tr.to = static_cast<NodeId>(words[7 * t + i]);
    tr.step = static_cast<int>(words[8 * t + i]);
  }
  return out;
}

std::vector<std::int64_t> path_schedule_to_words(const DiGraph& g,
                                                 const PathSchedule& schedule) {
  const std::size_t r = schedule.entries.size();
  std::vector<std::int64_t> words(kPathColumns * r);
  std::vector<std::int64_t> nodes;
  for (std::size_t i = 0; i < r; ++i) {
    const RouteEntry& e = schedule.entries[i];
    const std::vector<NodeId> seq =
        e.path.empty() ? std::vector<NodeId>{} : path_nodes(g, e.path);
    words[0 * r + i] = e.src;
    words[1 * r + i] = e.dst;
    words[2 * r + i] =
        static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(e.weight));
    words[3 * r + i] = e.num_chunks;
    words[4 * r + i] = e.layer;
    words[5 * r + i] = static_cast<std::int64_t>(seq.size());
    nodes.insert(nodes.end(), seq.begin(), seq.end());
  }
  words.insert(words.end(), nodes.begin(), nodes.end());
  return words;
}

PathSchedule path_schedule_from_words(const DiGraph& g,
                                      const std::vector<std::int64_t>& words,
                                      int num_nodes, const Rational& chunk_unit,
                                      std::size_t record_count) {
  // Divide, don't multiply: see link_schedule_from_words.
  A2A_REQUIRE(record_count <= words.size() / kPathColumns,
              "path word stream has ", words.size(), " words for ",
              record_count, " records");
  PathSchedule out;
  out.num_nodes = num_nodes;
  out.chunk_unit = chunk_unit;
  out.entries.resize(record_count);
  const std::size_t r = record_count;
  std::size_t node_pos = kPathColumns * r;
  for (std::size_t i = 0; i < r; ++i) {
    RouteEntry& e = out.entries[i];
    e.src = static_cast<NodeId>(words[0 * r + i]);
    e.dst = static_cast<NodeId>(words[1 * r + i]);
    e.weight = std::bit_cast<double>(
        static_cast<std::uint64_t>(words[2 * r + i]));
    e.num_chunks = static_cast<int>(words[3 * r + i]);
    e.layer = static_cast<int>(words[4 * r + i]);
    const std::int64_t len = words[5 * r + i];
    // Compare against the remaining words, not node_pos + len: a hostile
    // 64-bit len would wrap that sum into a false pass and walk the reads
    // off the end of the stream.
    A2A_REQUIRE(len >= 0 && static_cast<std::uint64_t>(len) <=
                                words.size() - node_pos,
                "route node list overruns word stream (len=", len, ")");
    A2A_REQUIRE(len != 1, "route with a single node is not a path");
    for (std::int64_t j = 0; j + 1 < len; ++j) {
      const std::int64_t uw = words[node_pos + static_cast<std::size_t>(j)];
      const std::int64_t vw = words[node_pos + static_cast<std::size_t>(j) + 1];
      // Validate on the raw words before narrowing: a 2^40 node id would
      // otherwise wrap into range and index the adjacency lists wild.
      A2A_REQUIRE(uw >= 0 && uw < g.num_nodes() && vw >= 0 &&
                      vw < g.num_nodes(),
                  "route node out of range (", uw, ",", vw, ") for ",
                  g.num_nodes(), " nodes");
      const EdgeId edge =
          g.find_edge(static_cast<NodeId>(uw), static_cast<NodeId>(vw));
      A2A_REQUIRE(edge >= 0, "route uses non-edge (", uw, ",", vw, ")");
      e.path.push_back(edge);
    }
    node_pos += static_cast<std::size_t>(len);
  }
  A2A_REQUIRE(node_pos == words.size(),
              "trailing words after last route node list");
  return out;
}

}  // namespace a2a
