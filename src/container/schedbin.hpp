// SchedBin — a chunked, integrity-checked binary container for schedules.
//
// The XML dialects of §4 are the lowering interchange format, but at
// production scale (many topologies × fabrics × chunking grids, served to
// many consumers) they are too large and too slow to parse. SchedBin stores
// the same schedules as a compact little-endian artifact, modeled on the
// chunked-frame design of Blosc2: a fixed header and independently
// compressed chunks that can be (de)compressed in parallel and are each
// guarded by a CRC-32.
//
// Format v1 layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "SBIN"
//   4       2     version (1)
//   6       1     kind           (1 = link schedule, 2 = path schedule)
//   7       1     codec id       (see SchedBinCodec)
//   8       4     num_nodes
//   12      4     num_steps      (link) / 0 (path)
//   16      8     record_count   (transfers / route entries)
//   24      8     word_count     (total int64 words in the payload stream)
//   32      8     chunk_unit num (path) / 0 (link)
//   40      8     chunk_unit den (path) / 1 (link)
//   48      4     chunk_words    (words per chunk; last chunk may be short)
//   52      4     num_chunks
//   56      -     directory: num_chunks × { u32 compressed_bytes, u32 crc32 }
//   ...     -     compressed chunk payloads, concatenated in order
//
// Format v2 moves the chunk directory into a CRC-guarded *trailer* with
// absolute offsets (Blosc2 cframe style), so a reader can open a file,
// validate the trailer, and decode individual chunks on demand — the mmap
// read path touches only the header page, the trailer pages and the pages
// of the chunks it decodes. v2 also adds a per-frame dictionary (the dict
// codec), per-chunk codec ids (dict falls back per chunk to rle/delta/raw
// when it loses), and free-form metadata key/value pairs that survive codec
// conversion:
//
//   [0, 56)   header: v1 field layout with version = 2
//   [56, ...) compressed chunk payloads, concatenated in order
//   trailer:  dict block  — uvarint count, count × svarint word
//             meta block  — uvarint pairs, pairs × { uvarint klen, key,
//                           uvarint vlen, value }
//             directory   — num_chunks × { u64 absolute_offset,
//                           u32 compressed_bytes, u32 crc32, u8 codec }
//   footer (24 bytes):
//             u64 trailer_offset   (absolute start of the trailer)
//             u32 trailer_bytes    (dict + meta + directory)
//             u32 trailer_crc32
//             u32 header_crc32     (over bytes [0, 56))
//             magic "SBTR"
//
// The payload stream is the columnar flattening of columnar.hpp. Chunks are
// fixed word-count slices of that stream, so decode offsets are computable
// from the directory alone and every chunk decodes independently — the
// multithreaded path hands one chunk per thread-pool task.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "container/codec.hpp"
#include "graph/digraph.hpp"
#include "schedule/schedule.hpp"

namespace a2a {

class ThreadPool;

inline constexpr char kSchedBinMagic[4] = {'S', 'B', 'I', 'N'};
inline constexpr char kSchedBinTrailerMagic[4] = {'S', 'B', 'T', 'R'};
inline constexpr std::uint16_t kSchedBinVersion1 = 1;
inline constexpr std::uint16_t kSchedBinVersion2 = 2;

enum class SchedBinKind : std::uint8_t { kLink = 1, kPath = 2 };

/// Hard ceiling on words per chunk (128 MiB raw). Far above any schedule the
/// toolchain emits; headers claiming more are corrupt or hostile, and
/// rejecting them bounds the per-chunk decode buffers a blob can demand.
inline constexpr std::uint32_t kSchedBinMaxChunkWords = 1u << 24;

/// Default ceiling on the DECODED payload size (1 GiB) the readers will
/// allocate for one container. The v1 word count is a header field that is
/// not covered by any CRC (v2 CRCs the header, but a forged frame can CRC
/// its own lies), so without this clamp a small hostile blob could declare
/// a multi-terabyte payload and drive the decoder into a wild allocation
/// before any chunk is even touched. Callers with genuinely larger
/// artifacts pass an explicit budget.
inline constexpr std::uint64_t kSchedBinDefaultDecodeBudget = 1ULL << 30;

/// Ceilings on v2 trailer metadata: enough for provenance stamps, small
/// enough that a forged trailer cannot demand unbounded string allocations.
inline constexpr std::size_t kSchedBinMaxMetaPairs = 64;
inline constexpr std::size_t kSchedBinMaxMetaKeyBytes = 256;
inline constexpr std::size_t kSchedBinMaxMetaValueBytes = 4096;

using SchedBinMetadata = std::vector<std::pair<std::string, std::string>>;

struct SchedBinOptions {
  SchedBinCodec codec = SchedBinCodec::kDelta;
  /// Container format version to write. v2 (trailer directory, dict codec,
  /// metadata, mmap chunk reads) is the default; v1 is kept for fleets with
  /// older readers and writes byte-identical frames to PR 1.
  std::uint16_t version = kSchedBinVersion2;
  /// Words per chunk. The default (64Ki words = 512 KiB raw) keeps chunk
  /// count low for small schedules while giving large ones enough chunks to
  /// saturate the pool.
  std::uint32_t chunk_words = 64 * 1024;
  /// Optional pool for parallel per-chunk compression; serial when null.
  ThreadPool* pool = nullptr;
  /// Free-form provenance stamps written into the v2 trailer (v1 frames
  /// cannot carry metadata; writing v1 with metadata is an error).
  SchedBinMetadata metadata;
};

/// Parsed header + derived facts, for tooling (`schedgen --inspect`) and
/// cache validation without a full decode.
struct SchedBinInfo {
  std::uint16_t version = 0;
  SchedBinKind kind = SchedBinKind::kLink;
  SchedBinCodec codec = SchedBinCodec::kRaw;
  int num_nodes = 0;
  int num_steps = 0;          ///< link only.
  Rational chunk_unit{0};     ///< path only.
  std::uint64_t record_count = 0;
  std::uint64_t word_count = 0;
  std::uint32_t chunk_words = 0;
  std::uint32_t num_chunks = 0;
  std::size_t total_bytes = 0;       ///< whole container.
  std::size_t payload_bytes = 0;     ///< compressed chunks only.
  std::size_t trailer_bytes = 0;     ///< v2 trailer section (0 for v1).
  std::size_t dict_words = 0;        ///< frame dictionary entries (v2).
  SchedBinMetadata metadata;         ///< v2 trailer metadata (empty for v1).
};

[[nodiscard]] std::string link_schedule_to_schedbin(
    const LinkSchedule& schedule, const SchedBinOptions& options = {});

[[nodiscard]] LinkSchedule link_schedule_from_schedbin(
    std::string_view bytes, ThreadPool* pool = nullptr,
    std::uint64_t max_decoded_bytes = kSchedBinDefaultDecodeBudget);

[[nodiscard]] std::string path_schedule_to_schedbin(
    const DiGraph& g, const PathSchedule& schedule,
    const SchedBinOptions& options = {});

[[nodiscard]] PathSchedule path_schedule_from_schedbin(
    const DiGraph& g, std::string_view bytes, ThreadPool* pool = nullptr,
    std::uint64_t max_decoded_bytes = kSchedBinDefaultDecodeBudget);

/// Validates magic/version/structure and every chunk CRC without decoding.
/// Throws InvalidArgument on any corruption.
[[nodiscard]] SchedBinInfo schedbin_inspect(
    std::string_view bytes,
    std::uint64_t max_decoded_bytes = kSchedBinDefaultDecodeBudget);

/// Losslessly re-encodes a container under new codec/version/chunking:
/// decodes the payload word stream and re-frames it, copying every header
/// field (kind, nodes, steps, chunk_unit, record count) from the source.
/// Source metadata is carried through unless `options.metadata` is
/// non-empty (explicit stamps win); converting to v1 silently drops it —
/// v1 frames cannot carry metadata by design. Works on both schedule kinds
/// without a topology: the word stream is transcoded as-is.
[[nodiscard]] std::string schedbin_convert(
    std::string_view bytes, SchedBinOptions options,
    std::uint64_t max_decoded_bytes = kSchedBinDefaultDecodeBudget);

/// Zero-copy random-access reader over a SchedBin container (v1 or v2).
/// Opening parses and validates the header + directory (and v2 trailer)
/// only; chunk payloads are CRC-checked and decoded on demand, so an
/// mmap-backed reader touches just the pages of the chunks it serves.
/// bytes_read() exposes how many container bytes were actually consumed —
/// tests assert single-chunk decodes stay far below the file size.
class SchedBinReader {
 public:
  /// mmap-backed reader. The mapping lives as long as the reader.
  [[nodiscard]] static SchedBinReader open_file(
      const std::string& path,
      std::uint64_t max_decoded_bytes = kSchedBinDefaultDecodeBudget);

  /// Non-owning reader over caller-held bytes (must outlive the reader).
  [[nodiscard]] static SchedBinReader from_bytes(
      std::string_view bytes,
      std::uint64_t max_decoded_bytes = kSchedBinDefaultDecodeBudget);

  ~SchedBinReader();
  SchedBinReader(SchedBinReader&&) noexcept;
  SchedBinReader& operator=(SchedBinReader&&) noexcept;
  SchedBinReader(const SchedBinReader&) = delete;
  SchedBinReader& operator=(const SchedBinReader&) = delete;

  [[nodiscard]] const SchedBinInfo& info() const;
  [[nodiscard]] std::uint32_t num_chunks() const;

  /// Words chunk `c` decodes to (the last chunk may be short).
  [[nodiscard]] std::size_t chunk_word_count(std::uint32_t c) const;

  struct ChunkEntry {
    std::size_t offset = 0;  ///< absolute byte offset in the container.
    std::uint32_t size = 0;
    std::uint32_t crc32 = 0;
    SchedBinCodec codec = SchedBinCodec::kRaw;
  };
  [[nodiscard]] ChunkEntry chunk_entry(std::uint32_t c) const;

  /// CRC-checks and decodes chunk `c` into `out` (resized to the chunk's
  /// word count). Returns the word count. Only this chunk's payload bytes
  /// are touched.
  std::size_t decode_chunk(std::uint32_t c, std::vector<std::int64_t>& out) const;

  /// Decodes the whole payload (parallel per chunk when a pool is given).
  [[nodiscard]] std::vector<std::int64_t> decode_all(
      ThreadPool* pool = nullptr) const;

  [[nodiscard]] LinkSchedule read_link(ThreadPool* pool = nullptr) const;
  [[nodiscard]] PathSchedule read_path(const DiGraph& g,
                                       ThreadPool* pool = nullptr) const;

  /// Container bytes consumed so far: the header/directory/trailer overhead
  /// plus every chunk payload decoded through this reader.
  [[nodiscard]] std::size_t bytes_read() const;
  [[nodiscard]] std::size_t total_bytes() const;

 private:
  struct Impl;
  explicit SchedBinReader(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace a2a
