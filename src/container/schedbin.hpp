// SchedBin — a chunked, integrity-checked binary container for schedules.
//
// The XML dialects of §4 are the lowering interchange format, but at
// production scale (many topologies × fabrics × chunking grids, served to
// many consumers) they are too large and too slow to parse. SchedBin stores
// the same schedules as a compact little-endian artifact, modeled on the
// chunked-frame design of Blosc2: a fixed header, a chunk directory, and
// independently compressed chunks that can be (de)compressed in parallel
// and are each guarded by a CRC-32.
//
// Layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "SBIN"
//   4       2     version (currently 1)
//   6       1     kind           (1 = link schedule, 2 = path schedule)
//   7       1     codec id       (see SchedBinCodec)
//   8       4     num_nodes
//   12      4     num_steps      (link) / 0 (path)
//   16      8     record_count   (transfers / route entries)
//   24      8     word_count     (total int64 words in the payload stream)
//   32      8     chunk_unit num (path) / 0 (link)
//   40      8     chunk_unit den (path) / 1 (link)
//   48      4     chunk_words    (words per chunk; last chunk may be short)
//   52      4     num_chunks
//   56      -     directory: num_chunks × { u32 compressed_bytes, u32 crc32 }
//   ...     -     compressed chunk payloads, concatenated in order
//
// The payload stream is the columnar flattening of columnar.hpp. Chunks are
// fixed word-count slices of that stream, so decode offsets are computable
// from the directory alone and every chunk decodes independently — the
// multithreaded path hands one chunk per thread-pool task.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "container/codec.hpp"
#include "graph/digraph.hpp"
#include "schedule/schedule.hpp"

namespace a2a {

class ThreadPool;

inline constexpr char kSchedBinMagic[4] = {'S', 'B', 'I', 'N'};
inline constexpr std::uint16_t kSchedBinVersion = 1;

enum class SchedBinKind : std::uint8_t { kLink = 1, kPath = 2 };

/// Hard ceiling on words per chunk (128 MiB raw). Far above any schedule the
/// toolchain emits; headers claiming more are corrupt or hostile, and
/// rejecting them bounds the per-chunk decode buffers a blob can demand.
inline constexpr std::uint32_t kSchedBinMaxChunkWords = 1u << 24;

/// Default ceiling on the DECODED payload size (1 GiB) the readers will
/// allocate for one container. The word count is a header field that is not
/// covered by any CRC, so without this clamp a small hostile blob could
/// declare a multi-terabyte payload and drive the decoder into a wild
/// allocation before any chunk is even touched. Callers with genuinely
/// larger artifacts pass an explicit budget.
inline constexpr std::uint64_t kSchedBinDefaultDecodeBudget = 1ULL << 30;

struct SchedBinOptions {
  SchedBinCodec codec = SchedBinCodec::kDelta;
  /// Words per chunk. The default (64Ki words = 512 KiB raw) keeps chunk
  /// count low for small schedules while giving large ones enough chunks to
  /// saturate the pool.
  std::uint32_t chunk_words = 64 * 1024;
  /// Optional pool for parallel per-chunk compression; serial when null.
  ThreadPool* pool = nullptr;
};

/// Parsed header + derived facts, for tooling (`schedgen --inspect`) and
/// cache validation without a full decode.
struct SchedBinInfo {
  std::uint16_t version = 0;
  SchedBinKind kind = SchedBinKind::kLink;
  SchedBinCodec codec = SchedBinCodec::kRaw;
  int num_nodes = 0;
  int num_steps = 0;          ///< link only.
  Rational chunk_unit{0};     ///< path only.
  std::uint64_t record_count = 0;
  std::uint64_t word_count = 0;
  std::uint32_t chunk_words = 0;
  std::uint32_t num_chunks = 0;
  std::size_t total_bytes = 0;       ///< whole container.
  std::size_t payload_bytes = 0;     ///< compressed chunks only.
};

[[nodiscard]] std::string link_schedule_to_schedbin(
    const LinkSchedule& schedule, const SchedBinOptions& options = {});

[[nodiscard]] LinkSchedule link_schedule_from_schedbin(
    std::string_view bytes, ThreadPool* pool = nullptr,
    std::uint64_t max_decoded_bytes = kSchedBinDefaultDecodeBudget);

[[nodiscard]] std::string path_schedule_to_schedbin(
    const DiGraph& g, const PathSchedule& schedule,
    const SchedBinOptions& options = {});

[[nodiscard]] PathSchedule path_schedule_from_schedbin(
    const DiGraph& g, std::string_view bytes, ThreadPool* pool = nullptr,
    std::uint64_t max_decoded_bytes = kSchedBinDefaultDecodeBudget);

/// Validates magic/version/structure and every chunk CRC without decoding.
/// Throws InvalidArgument on any corruption.
[[nodiscard]] SchedBinInfo schedbin_inspect(
    std::string_view bytes,
    std::uint64_t max_decoded_bytes = kSchedBinDefaultDecodeBudget);

}  // namespace a2a
