#include "failover/manager.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "graph/algorithms.hpp"
#include "mcf/path_mcf.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "schedule/compile_path.hpp"
#include "schedule/validate.hpp"

namespace a2a {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Remaining-budget -> epsilon ladder for the FPTAS rung: more time buys a
/// tighter approximation; under pressure a loose epsilon still beats the
/// greedy reroute of the last rung.
double epsilon_for_budget(double remaining_s) {
  if (remaining_s >= 2.0) return 0.03;
  if (remaining_s >= 0.5) return 0.05;
  if (remaining_s >= 0.1) return 0.10;
  return 0.20;
}

}  // namespace

std::string to_string(FailoverRung rung) {
  switch (rung) {
    case FailoverRung::kPrecomputedHit:
      return "precomputed-hit";
    case FailoverRung::kDualWarmExact:
      return "dual-warm-exact";
    case FailoverRung::kFptasAnytime:
      return "fptas-anytime";
    case FailoverRung::kDegradedReroute:
      return "degraded-reroute";
  }
  return "unknown";
}

/// Everything the online rungs share about one degraded fabric: the
/// surviving graph, the healthy->degraded edge remap, and the candidate
/// PathSet in DEGRADED edge ids (healthy candidates that survive, plus a
/// shortest-path reroute for commodities that lost every candidate). Each
/// candidate remembers its healthy (commodity, path) origin so LP weights
/// solved on the healthy-shaped collapsed model can be carried over.
struct FailoverManager::DegradedView {
  FailureSignature sig;
  DiGraph degraded{0};
  std::vector<EdgeId> remap;        ///< healthy edge id -> degraded (-1 dead).
  std::vector<NodeId> survivors;
  bool reachable = false;
  PathSet paths;                    ///< degraded-id candidates per commodity.
  std::vector<int> healthy_commodity;              ///< per view commodity.
  std::vector<std::vector<int>> healthy_candidate; ///< per candidate, -1 = reroute.
  std::vector<std::vector<double>> healthy_seed;   ///< healthy weight, 0 = reroute.
};

FailoverManager::FailoverManager(DiGraph healthy, Fabric fabric,
                                 FailoverOptions options)
    : healthy_(std::move(healthy)),
      fabric_(std::move(fabric)),
      options_(std::move(options)) {
  A2A_REQUIRE(healthy_.num_nodes() >= 2, "failover needs >= 2 nodes");
  A2A_REQUIRE(is_strongly_connected(healthy_),
              "healthy topology must be strongly connected");
  obs::TraceSpan span("failover.init");
  terminals_.resize(static_cast<std::size_t>(healthy_.num_nodes()));
  for (NodeId n = 0; n < healthy_.num_nodes(); ++n) {
    terminals_[static_cast<std::size_t>(n)] = n;
  }
  healthy_paths_ = build_disjoint_path_set(healthy_, terminals_);
  std::vector<std::vector<double>> weights;
  double flow = 0.0;
  if (options_.exact_healthy) {
    const PathMcfSolution sol =
        solve_path_mcf_exact(healthy_, healthy_paths_, options_.lp,
                             &healthy_basis_, LpWarmMode::kAuto);
    weights = sol.weights;
    flow = sol.concurrent_flow;
  } else {
    // FPTAS baseline: no basis to warm from, but ctor cost stays bounded at
    // fabric sizes where the exact master LP is minutes.
    FleischerOptions fo;
    fo.epsilon = options_.healthy_epsilon;
    const PathFlowSolution sol = fleischer_paths(healthy_, healthy_paths_, fo);
    weights = sol.weights;
    flow = sol.concurrent_flow;
  }
  healthy_schedule_.kind = ScheduleKind::kPathPMcf;
  healthy_schedule_.path = compile_path_schedule(healthy_, healthy_paths_,
                                                 weights, options_.chunking);
  healthy_schedule_.concurrent_flow = flow;
  healthy_schedule_.terminals = terminals_;
  healthy_schedule_.schedule_graph = healthy_;
  healthy_schedule_.notes = "failover healthy baseline";
  healthy_weights_ = std::move(weights);
  base_fingerprint_ = schedule_fingerprint(healthy_, fabric_, ToolchainOptions{});

  ScheduleCacheOptions cache;
  cache.max_memory_bytes = options_.cache_memory_bytes;
  cache.disk_dir = options_.library_dir;
  library_ = std::make_unique<ScheduleCache>(cache);
  library_->insert(failover_fingerprint(base_fingerprint_, FailureSignature{}),
                   healthy_schedule_);
}

FailoverManager::~FailoverManager() = default;

std::vector<FailureSignature> FailoverManager::enumerate_domain() const {
  return enumerate_failure_domain(healthy_, options_.domain);
}

FailoverManager::DegradedView FailoverManager::make_view(
    const FailureSignature& sig) const {
  DegradedView view;
  view.sig = sig;
  view.sig.normalize();
  view.degraded = degraded_topology(healthy_, view.sig, &view.remap);
  view.survivors = surviving_terminals(terminals_, view.sig);
  view.reachable = view.survivors.size() >= 2 &&
                   terminals_mutually_reachable(view.degraded, view.survivors);
  if (!view.reachable) return view;

  const std::vector<double> unit(
      static_cast<std::size_t>(view.degraded.num_edges()), 1.0);
  for (std::size_t k = 0; k < healthy_paths_.commodities.size(); ++k) {
    const auto [src, dst] = healthy_paths_.commodities[k];
    if (std::binary_search(view.sig.nodes.begin(), view.sig.nodes.end(), src) ||
        std::binary_search(view.sig.nodes.begin(), view.sig.nodes.end(), dst)) {
      continue;
    }
    std::vector<Path> candidates;
    std::vector<int> origin;
    std::vector<double> seed;
    for (std::size_t p = 0; p < healthy_paths_.candidates[k].size(); ++p) {
      const Path& path = healthy_paths_.candidates[k][p];
      Path remapped;
      remapped.reserve(path.size());
      bool alive = true;
      for (const EdgeId e : path) {
        const EdgeId mapped = view.remap[static_cast<std::size_t>(e)];
        if (mapped < 0) {
          alive = false;
          break;
        }
        remapped.push_back(mapped);
      }
      if (!alive) continue;
      candidates.push_back(std::move(remapped));
      origin.push_back(static_cast<int>(p));
      seed.push_back(healthy_weights_[k][p]);
    }
    if (candidates.empty()) {
      // Every healthy candidate died: reroute over the shortest surviving
      // path (reachability was checked, so one exists).
      auto rerouted = dijkstra_path(view.degraded, src, dst, unit);
      A2A_ASSERT(rerouted.has_value(), "reachable pair without a path");
      candidates.push_back(std::move(*rerouted));
      origin.push_back(-1);
      seed.push_back(0.0);
    }
    view.paths.commodities.emplace_back(src, dst);
    view.paths.candidates.push_back(std::move(candidates));
    view.healthy_commodity.push_back(static_cast<int>(k));
    view.healthy_candidate.push_back(std::move(origin));
    view.healthy_seed.push_back(std::move(seed));
  }
  return view;
}

bool FailoverManager::finish_result(const DegradedView& view,
                                    const std::vector<std::vector<double>>& weights,
                                    FailoverResult& result) const {
  // Defensive repair before compiling: clamp negatives, and give a
  // commodity whose weights all vanished (an expired solve, or the LP
  // starving a collapsed path) its shortest candidate at weight 1 — the
  // compile-side snap renormalizes per commodity anyway.
  std::vector<std::vector<double>> repaired = weights;
  for (std::size_t k = 0; k < repaired.size(); ++k) {
    double total = 0.0;
    for (double& w : repaired[k]) {
      if (w < 0.0 || !std::isfinite(w)) w = 0.0;
      total += w;
    }
    if (total <= options_.min_route_weight) {
      std::size_t best = 0;
      for (std::size_t p = 1; p < view.paths.candidates[k].size(); ++p) {
        if (view.paths.candidates[k][p].size() <
            view.paths.candidates[k][best].size()) {
          best = p;
        }
      }
      std::fill(repaired[k].begin(), repaired[k].end(), 0.0);
      repaired[k][best] = 1.0;
    }
  }
  result.schedule.kind = ScheduleKind::kPathPMcf;
  result.schedule.path =
      compile_path_schedule(view.degraded, view.paths, repaired, options_.chunking);
  result.schedule.concurrent_flow =
      1.0 / max_link_load(view.degraded, view.paths, repaired);
  result.schedule.terminals = view.survivors;
  result.schedule.schedule_graph = view.degraded;
  result.schedule.notes = "failover " + to_string(result.rung) + " for " +
                          view.sig.to_string();

  const auto validate_start = Clock::now();
  const ValidationResult check = validate_path_schedule(
      view.degraded, *result.schedule.path, view.survivors);
  result.validate_s += seconds_since(validate_start);
  result.validated = check.ok;
  if (!check.ok && !check.errors.empty()) {
    result.notes += (result.notes.empty() ? "" : "; ") + check.errors.front();
  }
  return check.ok;
}

bool FailoverManager::exact_resolve(const DegradedView& view, double budget_s,
                                    FailoverResult& result) const {
  result.rung = FailoverRung::kDualWarmExact;
  SimplexOptions lp = options_.lp;
  lp.time_limit_s = budget_s;
  if (view.sig.nodes.empty()) {
    // Link-only failure: the collapsed model has the healthy model's exact
    // shape, so the healthy optimal basis is dual feasible under the
    // capacity perturbation — re-solve dual-warm in a few pivots.
    const DiGraph collapsed =
        collapsed_topology(healthy_, view.sig, options_.collapsed_capacity);
    LpBasis basis = healthy_basis_;
    const PathMcfSolution sol = solve_path_mcf_budgeted(
        collapsed, healthy_paths_, lp, &basis, LpWarmMode::kDual);
    if (sol.status != LpStatus::kOptimal) return false;
    // Carry the healthy-model weights onto the surviving candidates (dead
    // candidates got starved by the collapsed capacity; whatever residue
    // the tolerance left on them is dropped with the candidate).
    std::vector<std::vector<double>> weights(view.paths.candidates.size());
    for (std::size_t c = 0; c < view.paths.candidates.size(); ++c) {
      const int hk = view.healthy_commodity[c];
      weights[c].assign(view.paths.candidates[c].size(), 0.0);
      for (std::size_t p = 0; p < weights[c].size(); ++p) {
        const int hp = view.healthy_candidate[c][p];
        if (hp >= 0) {
          weights[c][p] = sol.weights[static_cast<std::size_t>(hk)]
                                     [static_cast<std::size_t>(hp)];
        }
      }
    }
    return finish_result(view, weights, result);
  }
  // Node failures change the commodity set, so the healthy basis does not
  // transfer; solve the degraded model cold under the same budget.
  const PathMcfSolution sol =
      solve_path_mcf_budgeted(view.degraded, view.paths, lp);
  if (sol.status != LpStatus::kOptimal) return false;
  return finish_result(view, sol.weights, result);
}

FailoverResult FailoverManager::reschedule(const FailureSignature& sig,
                                           double deadline_s) {
  obs::TraceSpan span("failover.reschedule");
  A2A_COUNTER("failover.reschedules").inc();
  const auto start = Clock::now();
  const double deadline =
      deadline_s > 0.0 ? deadline_s : options_.default_deadline_s;

  FailoverResult result;
  result.signature = sig;
  result.signature.normalize();
  span.annotate(result.signature.to_string());
  const std::string fp =
      failover_fingerprint(base_fingerprint_, result.signature);

  auto serve = [&](const char* counter) -> FailoverResult& {
    result.elapsed_s = seconds_since(start);
    obs::MetricsRegistry::global()
        .histogram("failover.time_to_valid." + std::string(counter))
        .observe_seconds(result.elapsed_s);
    A2A_HISTOGRAM("failover.time_to_valid").observe_seconds(result.elapsed_s);
    return result;
  };

  // Rung 1 — precomputed hit. Validation needs only the degraded graph and
  // the survivor list, both cheap; the candidate set is built lazily on a
  // miss so the hit path stays microseconds.
  if (auto hit = library_->lookup(fp); hit.has_value() && hit->path.has_value()) {
    const DiGraph degraded = degraded_topology(healthy_, result.signature);
    const std::vector<NodeId> survivors =
        surviving_terminals(terminals_, result.signature);
    const auto validate_start = Clock::now();
    const ValidationResult check =
        validate_path_schedule(degraded, *hit->path, survivors);
    result.validate_s = seconds_since(validate_start);
    if (check.ok) {
      result.rung = FailoverRung::kPrecomputedHit;
      result.schedule = std::move(*hit);
      result.schedule.from_cache = true;
      result.validated = true;
      A2A_COUNTER("failover.hit").inc();
      return serve("hit");
    }
    // A library entry that no longer validates (e.g. stale topology) is
    // ignored; the online ladder takes over.
    A2A_COUNTER("failover.stale_hits").inc();
  }

  const DegradedView view = make_view(result.signature);
  if (!view.reachable) {
    // No all-to-all schedule exists for this fabric state; report rather
    // than pretend (the caller must shrink the collective or wait out the
    // repair).
    result.rung = FailoverRung::kDegradedReroute;
    result.notes = view.survivors.size() < 2
                       ? "fewer than two surviving terminals"
                       : "surviving terminals disconnected";
    result.schedule.kind = ScheduleKind::kPathPMcf;
    result.schedule.terminals = view.survivors;
    result.schedule.schedule_graph = view.degraded;
    result.schedule.notes = result.notes;
    A2A_COUNTER("failover.unschedulable").inc();
    return serve("unschedulable");
  }

  // Rung 2 — deadline-bounded exact re-solve.
  {
    const double budget =
        (deadline - seconds_since(start)) * options_.exact_budget_fraction;
    if (budget > 1e-4 && exact_resolve(view, budget, result)) {
      library_->insert(fp, result.schedule);
      A2A_COUNTER("failover.exact").inc();
      return serve("exact");
    }
  }

  // Rung 3 — FPTAS anytime, epsilon from the remaining budget. Served only
  // when it validates; never cached (it would shadow a future exact fill).
  {
    const double remaining = deadline - seconds_since(start);
    if (remaining > 1e-4) {
      FleischerOptions fo;
      fo.epsilon = epsilon_for_budget(remaining);
      fo.time_limit_s = remaining * options_.fptas_budget_fraction;
      try {
        const PathFlowSolution sol =
            fleischer_paths(view.degraded, view.paths, fo);
        result.rung = FailoverRung::kFptasAnytime;
        if (finish_result(view, sol.weights, result)) {
          A2A_COUNTER("failover.fptas").inc();
          return serve("fptas");
        }
      } catch (const Error&) {
        // Fall through to the last rung.
      }
    }
  }

  // Rung 4 — degraded reroute: healthy weights on surviving routes,
  // shortest-path reroutes for orphaned commodities. Always serves; the
  // only rung allowed to return validated=false.
  result.rung = FailoverRung::kDegradedReroute;
  const bool ok = finish_result(view, view.healthy_seed, result);
  A2A_COUNTER("failover.degraded").inc();
  if (!ok) A2A_COUNTER("failover.validation_failures").inc();
  return serve("degraded");
}

PrecomputeReport FailoverManager::precompute(
    const std::vector<FailureSignature>& domain) {
  obs::TraceSpan span("failover.precompute");
  const auto start = Clock::now();
  PrecomputeReport report;
  report.attempted = domain.size();
  std::atomic<std::size_t> stored{0}, skipped{0}, failed{0};

  ThreadPool pool(options_.threads);
  pool.parallel_for(domain.size(), [&](std::size_t i) {
    FailureSignature sig = domain[i];
    sig.normalize();
    const DegradedView view = make_view(sig);
    if (!view.reachable) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    FailoverResult result;
    result.signature = sig;
    if (exact_resolve(view, options_.precompute_deadline_s, result)) {
      library_->insert(failover_fingerprint(base_fingerprint_, sig),
                       result.schedule);
      stored.fetch_add(1, std::memory_order_relaxed);
      A2A_COUNTER("failover.precomputed").inc();
    } else {
      failed.fetch_add(1, std::memory_order_relaxed);
    }
  });

  report.stored = stored.load();
  report.skipped_disconnected = skipped.load();
  report.failed = failed.load();
  report.seconds = seconds_since(start);
  return report;
}

}  // namespace a2a
