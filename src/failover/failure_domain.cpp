#include "failover/failure_domain.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/error.hpp"
#include "graph/algorithms.hpp"
#include "graph/spectral.hpp"

namespace a2a {

void FailureSignature::normalize() {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
}

std::string FailureSignature::to_string() const {
  if (empty()) return "healthy";
  std::ostringstream out;
  bool first = true;
  for (const EdgeId e : edges) {
    out << (first ? "" : "+") << 'e' << e;
    first = false;
  }
  for (const NodeId n : nodes) {
    out << (first ? "" : "+") << 'n' << n;
    first = false;
  }
  return out.str();
}

FailureSignature FailureSignature::parse(const std::string& spec,
                                         const DiGraph& g) {
  FailureSignature sig;
  if (spec == "healthy" || spec.empty()) return sig;
  std::string token;
  auto flush = [&] {
    if (token.empty()) return;
    A2A_REQUIRE(token.size() >= 2 && (token[0] == 'e' || token[0] == 'n'),
                "bad failure token '", token, "' (want e<id> or n<id>)");
    int id = -1;
    try {
      std::size_t used = 0;
      id = std::stoi(token.substr(1), &used);
      A2A_REQUIRE(used == token.size() - 1, "bad failure token '", token, "'");
    } catch (const std::logic_error&) {
      throw Error("bad failure token '" + token + "'");
    }
    if (token[0] == 'e') {
      A2A_REQUIRE(id >= 0 && id < g.num_edges(), "edge id ", id,
                  " out of range (graph has ", g.num_edges(), " edges)");
      sig.edges.push_back(id);
    } else {
      A2A_REQUIRE(id >= 0 && id < g.num_nodes(), "node id ", id,
                  " out of range (graph has ", g.num_nodes(), " nodes)");
      sig.nodes.push_back(id);
    }
    token.clear();
  };
  for (const char c : spec) {
    if (c == '+' || c == ',') {
      flush();
    } else {
      token.push_back(c);
    }
  }
  flush();
  sig.normalize();
  return sig;
}

bool operator==(const FailureSignature& a, const FailureSignature& b) {
  return a.edges == b.edges && a.nodes == b.nodes;
}

std::vector<EdgeId> failed_edge_ids(const DiGraph& g,
                                    const FailureSignature& sig) {
  std::vector<EdgeId> dead = sig.edges;
  for (const NodeId n : sig.nodes) {
    A2A_REQUIRE(n >= 0 && n < g.num_nodes(), "failed node ", n, " out of range");
    for (const EdgeId e : g.out_edges(n)) dead.push_back(e);
    for (const EdgeId e : g.in_edges(n)) dead.push_back(e);
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  for (const EdgeId e : dead) {
    A2A_REQUIRE(e >= 0 && e < g.num_edges(), "failed edge ", e, " out of range");
  }
  return dead;
}

DiGraph degraded_topology(const DiGraph& g, const FailureSignature& sig,
                          std::vector<EdgeId>* old_to_new) {
  const std::vector<EdgeId> dead = failed_edge_ids(g, sig);
  if (old_to_new != nullptr) {
    // without_edges keeps surviving edges in id order, so the remap is a
    // running count of kept edges.
    old_to_new->assign(static_cast<std::size_t>(g.num_edges()), -1);
    std::size_t di = 0;
    EdgeId next = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (di < dead.size() && dead[di] == e) {
        ++di;
        continue;
      }
      (*old_to_new)[static_cast<std::size_t>(e)] = next++;
    }
  }
  return g.without_edges(dead);
}

DiGraph collapsed_topology(const DiGraph& g, const FailureSignature& sig,
                           double collapsed_capacity) {
  A2A_REQUIRE(collapsed_capacity > 0.0, "collapsed capacity must be positive");
  DiGraph out = g;
  for (const EdgeId e : failed_edge_ids(g, sig)) {
    out.set_capacity(e, collapsed_capacity);
  }
  return out;
}

std::vector<NodeId> surviving_terminals(const std::vector<NodeId>& terminals,
                                        const FailureSignature& sig) {
  std::vector<NodeId> out;
  out.reserve(terminals.size());
  for (const NodeId t : terminals) {
    if (!std::binary_search(sig.nodes.begin(), sig.nodes.end(), t)) {
      out.push_back(t);
    }
  }
  return out;
}

bool terminals_mutually_reachable(const DiGraph& g,
                                  const std::vector<NodeId>& terminals) {
  for (const NodeId s : terminals) {
    const std::vector<int> dist = bfs_distances(g, s);
    for (const NodeId t : terminals) {
      if (dist[static_cast<std::size_t>(t)] < 0) return false;
    }
  }
  return true;
}

namespace {

/// Residual spectral gap after removing `dead` — the criticality score
/// (lower residual = more critical failure). A removal that disconnects
/// the fabric is maximally critical.
double residual_gap(const DiGraph& g, const std::vector<EdgeId>& dead,
                    int iters) {
  const DiGraph degraded = g.without_edges(dead);
  if (!is_strongly_connected(degraded)) return -1.0;
  return spectral_gap(degraded, iters);
}

}  // namespace

std::vector<FailureSignature> enumerate_failure_domain(
    const DiGraph& g, const FailureDomainOptions& options) {
  std::vector<FailureSignature> domain;
  if (options.single_links) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      FailureSignature sig;
      sig.edges.push_back(e);
      domain.push_back(std::move(sig));
    }
  }
  if (options.single_nodes) {
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      FailureSignature sig;
      sig.nodes.push_back(n);
      domain.push_back(std::move(sig));
    }
  }
  if (options.top_k_link_pairs > 0 && g.num_edges() >= 2) {
    // Pool: the single links whose loss hurts expansion most.
    std::vector<std::pair<double, EdgeId>> scored;
    scored.reserve(static_cast<std::size_t>(g.num_edges()));
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      scored.emplace_back(residual_gap(g, {e}, options.spectral_iters), e);
    }
    std::sort(scored.begin(), scored.end());
    const std::size_t pool = std::min<std::size_t>(
        scored.size(), static_cast<std::size_t>(std::max(options.spectral_pool, 2)));
    // Rank pairs within the pool by joint residual gap.
    struct PairScore {
      double gap;
      EdgeId a, b;
    };
    std::vector<PairScore> pairs;
    for (std::size_t i = 0; i < pool; ++i) {
      for (std::size_t j = i + 1; j < pool; ++j) {
        const EdgeId a = scored[i].second;
        const EdgeId b = scored[j].second;
        pairs.push_back({residual_gap(g, {std::min(a, b), std::max(a, b)},
                                      options.spectral_iters),
                         a, b});
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const PairScore& x, const PairScore& y) { return x.gap < y.gap; });
    const std::size_t keep = std::min<std::size_t>(
        pairs.size(), static_cast<std::size_t>(options.top_k_link_pairs));
    for (std::size_t i = 0; i < keep; ++i) {
      FailureSignature sig;
      sig.edges = {pairs[i].a, pairs[i].b};
      sig.normalize();
      domain.push_back(std::move(sig));
    }
  }
  return domain;
}

namespace {

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string failover_fingerprint(const std::string& base_fingerprint,
                                 const FailureSignature& sig) {
  const std::string canonical = base_fingerprint + "|failover|" + sig.to_string();
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(fnv1a(canonical, 0)),
                static_cast<unsigned long long>(fnv1a(canonical, 0x9e3779b97f4a7c15ULL)));
  return buf;
}

}  // namespace a2a
