// FailoverManager — deadline-bounded online re-scheduling.
//
// The manager owns a healthy fabric's schedule, its optimal LP basis, and a
// library of precomputed fallback schedules (a ScheduleCache, so fallbacks
// share the content-addressed disk tier and survive restarts). When a
// failure arrives, reschedule(signature, deadline) walks a ladder of
// strategies ordered by quality, spending the remaining wall-clock budget
// on each rung and falling through when it expires or fails:
//
//   1. precomputed hit   — library lookup by (healthy fingerprint,
//                          signature); microseconds when the disk tier's
//                          mmap'd SchedBin bytes are warm.
//   2. dual-warm exact   — link failures keep the pMCF LP's shape (capacity
//                          collapse), so the healthy optimal basis is still
//                          dual feasible and a dual-simplex re-solve under
//                          SimplexOptions::time_limit_s is typically a few
//                          pivots. Node failures re-solve cold on the
//                          degraded fabric, same budget. Only an OPTIMAL
//                          outcome is served (and added to the library).
//   3. FPTAS anytime     — Fleischer on the degraded candidate set, epsilon
//                          picked from the remaining budget, phase-boundary
//                          cutoff as a backstop. Approximate but feasible.
//   4. degraded reroute  — the healthy schedule with dead routes dropped
//                          and emptied commodities rerouted over shortest
//                          surviving paths. Never optimal, always instant.
//
// EVERY rung's output is validated against the degraded topology before it
// is served; a rung whose product fails validation falls through, so a
// served-and-validated=false result can only come from the last rung (and
// bumps failover.validation_failures).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "core/schedule_cache.hpp"
#include "failover/failure_domain.hpp"
#include "lp/simplex.hpp"
#include "mcf/fleischer.hpp"
#include "runtime/fabric.hpp"

namespace a2a {

enum class FailoverRung {
  kPrecomputedHit,
  kDualWarmExact,
  kFptasAnytime,
  kDegradedReroute,
};

[[nodiscard]] std::string to_string(FailoverRung rung);

struct FailoverOptions {
  /// Directory of the fallback library's disk tier ("" = in-memory only).
  std::string library_dir;
  std::size_t cache_memory_bytes = 64ULL << 20;
  /// Budget per signature during offline precompute — generous, this is
  /// the half that is allowed to be slow.
  double precompute_deadline_s = 30.0;
  /// Default online deadline when the caller passes none.
  double default_deadline_s = 0.25;
  /// Fraction of the remaining budget rung 2 (exact re-solve) may burn;
  /// the rest is held back so rungs 3-4 plus validation still fit.
  double exact_budget_fraction = 0.6;
  /// Fraction of the remaining budget rung 3 (FPTAS) may burn.
  double fptas_budget_fraction = 0.8;
  /// Capacity assigned to failed edges in the LP-shape-preserving view.
  double collapsed_capacity = 1e-7;
  /// Solve the healthy baseline with the exact pMCF LP (keeps the optimal
  /// basis for dual-warm online re-solves). false switches the baseline to
  /// the FPTAS at `healthy_epsilon` — the right trade at fabric sizes
  /// where the exact master LP is minutes (Fig. 9's N=81): rung 2 then
  /// re-solves cold within its budget instead of dual-warm.
  bool exact_healthy = true;
  double healthy_epsilon = 0.02;
  /// Weight below which a healthy route is considered absent when the
  /// degraded reroute renormalizes (matches the LP's zero clamp).
  double min_route_weight = 1e-9;
  ChunkingOptions chunking{.max_denominator = 24, .min_fraction = 1e-3};
  /// Threads for precompute() (0 = hardware concurrency).
  unsigned threads = 0;
  FailureDomainOptions domain;
  SimplexOptions lp;
};

struct FailoverResult {
  FailureSignature signature;
  FailoverRung rung = FailoverRung::kDegradedReroute;
  GeneratedSchedule schedule;
  /// True when the served schedule passed validate_path_schedule against
  /// the degraded topology. Only the last rung may serve with false.
  bool validated = false;
  double elapsed_s = 0.0;   ///< total time to the served schedule.
  double validate_s = 0.0;  ///< portion spent in the final validation.
  std::string notes;
};

struct PrecomputeReport {
  std::size_t attempted = 0;
  std::size_t stored = 0;
  /// Signatures skipped because the surviving terminals are not mutually
  /// reachable (no all-to-all schedule exists on that degraded fabric).
  std::size_t skipped_disconnected = 0;
  std::size_t failed = 0;
  double seconds = 0.0;
};

class FailoverManager {
 public:
  /// Solves the healthy fabric exactly (pMCF on link-disjoint candidates)
  /// and seeds the library with it. Requires >= 2 nodes and a strongly
  /// connected topology.
  FailoverManager(DiGraph healthy, Fabric fabric, FailoverOptions options = {});
  ~FailoverManager();

  FailoverManager(const FailoverManager&) = delete;
  FailoverManager& operator=(const FailoverManager&) = delete;

  [[nodiscard]] const DiGraph& healthy_topology() const { return healthy_; }
  [[nodiscard]] const GeneratedSchedule& healthy_schedule() const {
    return healthy_schedule_;
  }
  [[nodiscard]] const std::string& base_fingerprint() const {
    return base_fingerprint_;
  }
  [[nodiscard]] ScheduleCache& library() { return *library_; }

  /// enumerate_failure_domain on the healthy topology with this manager's
  /// domain options.
  [[nodiscard]] std::vector<FailureSignature> enumerate_domain() const;

  /// Batch-synthesizes fallback schedules for `domain` across the thread
  /// pool (dual-warm from the healthy basis where the LP shape allows) and
  /// stores the validated results in the library.
  PrecomputeReport precompute(const std::vector<FailureSignature>& domain);

  /// The online entry point: best valid schedule for the degraded fabric
  /// within `deadline_s` (<= 0 uses options.default_deadline_s). The
  /// deadline may be overshot by at most the final validation pass (the
  /// contract bench_failover enforces).
  [[nodiscard]] FailoverResult reschedule(const FailureSignature& sig,
                                          double deadline_s = 0.0);

 private:
  struct DegradedView;  ///< degraded graph + remap + candidates (internal).

  [[nodiscard]] DegradedView make_view(const FailureSignature& sig) const;
  /// Compile weights over the view's candidates, validate, and fill
  /// `result`. Returns validation success.
  bool finish_result(const DegradedView& view,
                     const std::vector<std::vector<double>>& weights,
                     FailoverResult& result) const;
  /// Rung 2 body, shared by reschedule() and precompute().
  [[nodiscard]] bool exact_resolve(const DegradedView& view, double budget_s,
                                   FailoverResult& result) const;

  DiGraph healthy_;
  Fabric fabric_;
  FailoverOptions options_;
  std::vector<NodeId> terminals_;
  PathSet healthy_paths_;
  std::vector<std::vector<double>> healthy_weights_;
  LpBasis healthy_basis_;
  GeneratedSchedule healthy_schedule_;
  std::string base_fingerprint_;
  std::unique_ptr<ScheduleCache> library_;
};

}  // namespace a2a
