// Failure domains — the offline half of deadline-bounded re-scheduling.
//
// A FailureSignature names a set of dead links and nodes. The failure
// domain of a fabric is the signature set worth precomputing fallback
// schedules for: every single-link and single-node failure (the N-1 events
// operators actually see), plus the top-k most *critical* link pairs —
// ranked by how much of the fabric's spectral expansion the pair destroys,
// since an all-to-all schedule's achievable rate tracks the spectral gap
// (§2.3/§5.4) and the pairs that crater it are exactly the ones where the
// naive fallback is worst.
//
// Degraded topologies keep the healthy graph's node ids (failed nodes stay
// as isolated vertices) so signatures, schedules, and validators all speak
// one id space; only edge ids shift, and degraded_topology reports the
// old->new remap. collapsed_topology instead keeps EVERY edge and collapses
// failed capacities to epsilon — the LP shape is unchanged, which is what
// lets an online re-solve dual-warm-start from the healthy optimal basis.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace a2a {

/// A set of failed links and/or nodes, in HEALTHY-graph ids. Canonical form
/// (sorted, deduplicated) is required wherever signatures are compared or
/// fingerprinted; normalize() establishes it.
struct FailureSignature {
  std::vector<EdgeId> edges;
  std::vector<NodeId> nodes;

  void normalize();
  [[nodiscard]] bool empty() const { return edges.empty() && nodes.empty(); }
  /// "healthy" for the empty signature, else e.g. "e3+e17+n2" (canonical
  /// order; stable across runs, safe in filenames and metric annotations).
  [[nodiscard]] std::string to_string() const;
  /// Inverse of to_string, also accepting ','-separated specs as typed on
  /// the schedgen --inject command line ("e12,e40,n3"). Throws Error on a
  /// malformed token or an id out of range for `g`.
  [[nodiscard]] static FailureSignature parse(const std::string& spec,
                                              const DiGraph& g);
};

[[nodiscard]] bool operator==(const FailureSignature& a,
                              const FailureSignature& b);

struct FailureDomainOptions {
  bool single_links = true;   ///< every N-1 link failure.
  bool single_nodes = true;   ///< every N-1 node failure.
  /// Link *pairs* to keep, ranked by spectral criticality. 0 disables the
  /// N-2 tier (the full pair set is O(E^2) — enumerating it all is the
  /// point of ranking).
  int top_k_link_pairs = 8;
  /// Pair candidates are drawn from the `spectral_pool` single links whose
  /// removal hurts the spectral gap most, so scoring is O(pool^2) power
  /// iterations instead of O(E^2).
  int spectral_pool = 16;
  /// Power-iteration count for ranking (accuracy here only orders
  /// candidates; full precision is wasted).
  int spectral_iters = 96;
};

/// Every healthy-graph edge the signature kills: the listed edges plus all
/// arcs incident (either direction) to a failed node. Sorted, deduplicated.
[[nodiscard]] std::vector<EdgeId> failed_edge_ids(const DiGraph& g,
                                                  const FailureSignature& sig);

/// The surviving fabric: failed edges removed, failed nodes left in place
/// as isolated vertices (node ids are preserved — see header comment).
/// `old_to_new`, when non-null, receives the healthy->degraded edge id map
/// (-1 for failed edges); without_edges preserves kept-edge order, so the
/// map is a running count.
[[nodiscard]] DiGraph degraded_topology(const DiGraph& g,
                                        const FailureSignature& sig,
                                        std::vector<EdgeId>* old_to_new = nullptr);

/// LP-shape-preserving view of the failure: every healthy edge kept, failed
/// capacities collapsed to `collapsed_capacity`. A pMCF model built on this
/// graph has identical rows/columns to the healthy model, so the healthy
/// optimal basis stays dual feasible and a dual-simplex re-solve converges
/// in a handful of pivots.
[[nodiscard]] DiGraph collapsed_topology(const DiGraph& g,
                                         const FailureSignature& sig,
                                         double collapsed_capacity = 1e-7);

/// `terminals` minus the signature's failed nodes.
[[nodiscard]] std::vector<NodeId> surviving_terminals(
    const std::vector<NodeId>& terminals, const FailureSignature& sig);

/// True when every ordered pair of `terminals` is connected in `g` — the
/// precondition for any all-to-all schedule to exist on the degraded fabric.
[[nodiscard]] bool terminals_mutually_reachable(const DiGraph& g,
                                                const std::vector<NodeId>& terminals);

/// The precompute worklist: single links, single nodes, spectral top-k
/// pairs per `options`. Signatures are canonical; no duplicates.
[[nodiscard]] std::vector<FailureSignature> enumerate_failure_domain(
    const DiGraph& g, const FailureDomainOptions& options = {});

/// Cache key for a fallback schedule: 32 hex chars over the healthy
/// request's fingerprint plus the canonical signature. The healthy
/// fingerprint already covers topology/fabric/options, so two fabrics never
/// collide and the same fabric's signatures fan out into distinct keys.
[[nodiscard]] std::string failover_fingerprint(const std::string& base_fingerprint,
                                               const FailureSignature& sig);

}  // namespace a2a
