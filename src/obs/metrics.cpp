#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace a2a::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace detail

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Histogram::quantile_ns(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based, ceil) under relaxed snapshots:
  // q=0.5 over 5 observations must pick the 3rd, not the 2nd.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= rank) return bucket_bound_ns(b);
  }
  return bucket_bound_ns(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

// ---- registry ---------------------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  struct Slot {
    MetricKind kind;
    // One live pointer per slot; unique_ptrs keep addresses stable while the
    // map rehashes/rebalances.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::map<std::string, Slot> slots;  ///< ordered: snapshots come out sorted.
};

MetricsRegistry& MetricsRegistry::global() {
  // Leaked singleton: metric references must stay valid through static
  // destruction (worker threads and exit paths may still update them).
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard lock(im.mutex);
  auto [it, inserted] = im.slots.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricKind::kCounter;
    it->second.counter = std::make_unique<Counter>();
  }
  A2A_ASSERT(it->second.kind == MetricKind::kCounter,
             "metric '", name, "' already registered with a different kind");
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard lock(im.mutex);
  auto [it, inserted] = im.slots.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricKind::kGauge;
    it->second.gauge = std::make_unique<Gauge>();
  }
  A2A_ASSERT(it->second.kind == MetricKind::kGauge,
             "metric '", name, "' already registered with a different kind");
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard lock(im.mutex);
  auto [it, inserted] = im.slots.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricKind::kHistogram;
    it->second.histogram = std::make_unique<Histogram>();
  }
  A2A_ASSERT(it->second.kind == MetricKind::kHistogram,
             "metric '", name, "' already registered with a different kind");
  return *it->second.histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  Impl& im = impl();
  std::lock_guard lock(im.mutex);
  std::vector<MetricSample> out;
  out.reserve(im.slots.size());
  for (const auto& [name, slot] : im.slots) {
    MetricSample s;
    s.name = name;
    s.kind = slot.kind;
    switch (slot.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<std::int64_t>(slot.counter->value());
        break;
      case MetricKind::kGauge:
        s.value = slot.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *slot.histogram;
        s.value = static_cast<std::int64_t>(h.count());
        s.sum_ns = h.sum_ns();
        s.p50_ns = h.quantile_ns(0.5);
        s.p99_ns = h.quantile_ns(0.99);
        s.buckets.resize(Histogram::kBuckets);
        int last = -1;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          s.buckets[static_cast<std::size_t>(b)] = h.bucket(b);
          if (s.buckets[static_cast<std::size_t>(b)] != 0) last = b;
        }
        s.buckets.resize(static_cast<std::size_t>(last + 1));
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const std::vector<MetricSample> samples = snapshot();
  std::ostringstream os;
  os << "{";
  bool first = true;
  const auto emit = [&](const std::string& key, std::uint64_t value) {
    if (!first) os << ",";
    first = false;
    os << "\n  \"" << key << "\": " << value;
  };
  for (const MetricSample& s : samples) {
    if (s.kind == MetricKind::kHistogram) {
      emit(s.name + ".count", static_cast<std::uint64_t>(s.value));
      emit(s.name + ".sum_ns", s.sum_ns);
      emit(s.name + ".p50_ns", s.p50_ns);
      emit(s.name + ".p99_ns", s.p99_ns);
    } else if (s.kind == MetricKind::kGauge) {
      if (!first) os << ",";
      first = false;
      os << "\n  \"" << s.name << "\": " << s.value;
    } else {
      emit(s.name, static_cast<std::uint64_t>(s.value));
    }
  }
  os << (first ? "}" : "\n}");
  os << "\n";
  return os.str();
}

std::string metrics_json() {
  std::string json = MetricsRegistry::global().to_json();
  while (!json.empty() &&
         std::isspace(static_cast<unsigned char>(json.back()))) {
    json.pop_back();
  }
  return json;
}

void write_metrics_json(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  A2A_REQUIRE(out.good(), "cannot open metrics file: ", path);
  out << MetricsRegistry::global().to_json();
  A2A_REQUIRE(out.good(), "short write to metrics file: ", path);
}

void print_metrics_table(std::ostream& os) {
  Table table({"metric", "kind", "value", "sum_ms", "p50_ms", "p99_ms"});
  for (const MetricSample& s : MetricsRegistry::global().snapshot()) {
    table.row().cell(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        table.cell("counter").cell(static_cast<long long>(s.value));
        table.cell("-").cell("-").cell("-");
        break;
      case MetricKind::kGauge:
        table.cell("gauge").cell(static_cast<long long>(s.value));
        table.cell("-").cell("-").cell("-");
        break;
      case MetricKind::kHistogram:
        table.cell("histogram").cell(static_cast<long long>(s.value));
        table.cell(static_cast<double>(s.sum_ns) / 1e6, 3);
        table.cell(static_cast<double>(s.p50_ns) / 1e6, 3);
        table.cell(static_cast<double>(s.p99_ns) / 1e6, 3);
        break;
    }
  }
  table.print(os);
}

void MetricsRegistry::reset_all() {
  Impl& im = impl();
  std::lock_guard lock(im.mutex);
  for (auto& [name, slot] : im.slots) {
    switch (slot.kind) {
      case MetricKind::kCounter: slot.counter->reset(); break;
      case MetricKind::kGauge: slot.gauge->reset(); break;
      case MetricKind::kHistogram: slot.histogram->reset(); break;
    }
  }
}

}  // namespace a2a::obs
