#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/error.hpp"

namespace a2a::obs {

namespace trace_detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace trace_detail

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One ring per thread. Writers (the owning thread) and the collector (the
// session thread) synchronize on the per-buffer mutex; it is uncontended on
// the hot path because collection happens once, after recording stops.
struct ThreadRing {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> slots;  ///< grows to kTraceRingCapacity, then wraps.
  std::size_t next = 0;           ///< wrap position once full.
  std::uint64_t dropped = 0;

  void record(TraceEvent ev) {
    std::lock_guard lock(mutex);
    ev.tid = tid;
    if (slots.size() < kTraceRingCapacity) {
      slots.push_back(std::move(ev));
    } else {
      slots[next] = std::move(ev);
      next = (next + 1) % kTraceRingCapacity;
      ++dropped;
    }
  }
};

struct TraceRegistry {
  std::mutex mutex;
  // Rings are leaked (like the metrics registry): a pool worker may record
  // during static destruction, and rings of exited threads must survive
  // until the session collects them.
  std::vector<ThreadRing*> rings;
  std::uint32_t next_tid = 0;
  bool session_active = false;
  std::atomic<std::uint64_t> session_start_ns{0};

  static TraceRegistry& global() {
    static TraceRegistry* instance = new TraceRegistry();
    return *instance;
  }
};

[[maybe_unused]] ThreadRing& this_thread_ring() {
  thread_local ThreadRing* ring = [] {
    auto* r = new ThreadRing();
    TraceRegistry& reg = TraceRegistry::global();
    std::lock_guard lock(reg.mutex);
    r->tid = reg.next_tid++;
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

[[maybe_unused]] thread_local std::uint32_t tls_depth = 0;

[[maybe_unused]] std::uint64_t session_relative_now_ns() {
  const std::uint64_t start =
      TraceRegistry::global().session_start_ns.load(std::memory_order_relaxed);
  const std::uint64_t now = steady_now_ns();
  return now > start ? now - start : 0;
}

void append_json_escaped(std::ostringstream& os, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

}  // namespace

// ---- TraceSpan --------------------------------------------------------------

TraceSpan::TraceSpan(const char* name) : name_(name) {
#if A2A_OBS
  if (tracing_enabled()) {
    active_ = true;
    start_ns_ = session_relative_now_ns();
    ++tls_depth;
  }
#endif
}

TraceSpan::TraceSpan(const char* name, std::string args) : TraceSpan(name) {
  if (active_) args_ = std::move(args);
}

void TraceSpan::annotate(const std::string& text) {
  if (!active_) return;
  if (!args_.empty()) args_ += "; ";
  args_ += text;
}

TraceSpan::~TraceSpan() {
#if A2A_OBS
  if (!active_) return;
  --tls_depth;
  // Spans still open when the session stops are discarded: their duration
  // would be a lie (the window closed mid-span).
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.name = name_;
  ev.args = std::move(args_);
  ev.start_ns = start_ns_;
  const std::uint64_t end_ns = session_relative_now_ns();
  ev.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  ev.depth = tls_depth;
  this_thread_ring().record(std::move(ev));
#endif
}

void trace_instant(const char* name, std::string args) {
#if A2A_OBS
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.args = std::move(args);
  ev.start_ns = session_relative_now_ns();
  ev.depth = tls_depth;
  ev.instant = true;
  this_thread_ring().record(std::move(ev));
#else
  (void)name;
  (void)args;
#endif
}

// ---- TraceSession -----------------------------------------------------------

TraceSession::TraceSession() {
#if A2A_OBS
  TraceRegistry& reg = TraceRegistry::global();
  std::lock_guard lock(reg.mutex);
  A2A_ASSERT(!reg.session_active,
             "a TraceSession is already active; only one tracing window may "
             "be open at a time");
  for (ThreadRing* ring : reg.rings) {
    std::lock_guard ring_lock(ring->mutex);
    ring->slots.clear();
    ring->next = 0;
    ring->dropped = 0;
  }
  reg.session_active = true;
  reg.session_start_ns.store(steady_now_ns(), std::memory_order_relaxed);
  trace_detail::g_tracing_enabled.store(true, std::memory_order_release);
#else
  stopped_ = collected_ = true;
#endif
}

TraceSession::~TraceSession() { stop(); }

void TraceSession::stop() {
#if A2A_OBS
  if (stopped_) return;
  stopped_ = true;
  trace_detail::g_tracing_enabled.store(false, std::memory_order_release);
  TraceRegistry& reg = TraceRegistry::global();
  std::lock_guard lock(reg.mutex);
  reg.session_active = false;
#else
  stopped_ = true;
#endif
}

std::vector<TraceEvent> TraceSession::events() {
  stop();
#if A2A_OBS
  if (!collected_) {
    collected_ = true;
    TraceRegistry& reg = TraceRegistry::global();
    std::lock_guard lock(reg.mutex);
    for (ThreadRing* ring : reg.rings) {
      std::lock_guard ring_lock(ring->mutex);
      dropped_ += ring->dropped;
      // Oldest-first: once the ring wrapped, `next` points at the oldest slot.
      const std::size_t n = ring->slots.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx =
            n < kTraceRingCapacity ? i : (ring->next + i) % n;
        events_.push_back(ring->slots[idx]);
      }
    }
    std::sort(events_.begin(), events_.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.tid != b.tid) return a.tid < b.tid;
                if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                return a.dur_ns > b.dur_ns;  // parents before children.
              });
  }
#endif
  return events_;
}

std::string TraceSession::chrome_json() {
  const std::vector<TraceEvent> evs = events();
  std::ostringstream os;
  // Chrome wants microseconds; emit ns-resolution as a padded decimal so
  // "5 ns" renders 0.005 us, not 0.5.
  const auto emit_us = [&os](std::uint64_t ns) {
    char frac[8];
    std::snprintf(frac, sizeof(frac), "%03u",
                  static_cast<unsigned>(ns % 1000));
    os << (ns / 1000) << "." << frac;
  };
  os << "{\n\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : evs) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"";
    append_json_escaped(os, ev.name);
    os << "\", \"cat\": \"a2a\", \"ph\": \"" << (ev.instant ? "i" : "X")
       << "\", \"ts\": ";
    emit_us(ev.start_ns);
    if (!ev.instant) {
      os << ", \"dur\": ";
      emit_us(ev.dur_ns);
    } else {
      os << ", \"s\": \"t\"";
    }
    os << ", \"pid\": 1, \"tid\": " << ev.tid << ", \"args\": {\"depth\": "
       << ev.depth;
    if (!ev.args.empty()) {
      os << ", \"note\": \"";
      append_json_escaped(os, ev.args);
      os << "\"";
    }
    os << "}}";
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"dropped\": "
     << dropped_ << "}\n}\n";
  return os.str();
}

}  // namespace a2a::obs
