// Metrics registry — named counters, gauges and latency histograms shared by
// every pipeline layer (SimplexCore, ScheduleCache, SchedBin, ThreadPool,
// generate_schedule()).
//
// Design constraints, in order:
//   * hot paths pay nothing they can avoid: every update is a relaxed
//     atomic, and when metrics are runtime-disabled the update degrades to
//     ONE relaxed atomic load (the shared enabled flag) and a branch;
//   * a compile-time kill switch: building with -DA2A_OBS=0 compiles every
//     update to nothing at all, for fleets that want the instrumentation
//     physically absent (the CI builds this config to keep it honest);
//   * registration is thread-safe and references are stable forever, so a
//     call site resolves its metric once (function-local static) and then
//     updates lock-free;
//   * snapshots are consistent enough for monitoring (relaxed loads — a
//     snapshot taken mid-update may be one tick stale, never torn).
//
// The metric-name catalog lives in README.md ("Observability"). Names are
// dot-separated lowercase (`lp.iterations`, `cache.memory_hits`); keep new
// ones in that style so the flat JSON export stays greppable.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef A2A_OBS
#define A2A_OBS 1
#endif

namespace a2a::obs {

/// True when the observability layer was compiled in (A2A_OBS != 0).
[[nodiscard]] constexpr bool compiled_in() {
#if A2A_OBS
  return true;
#else
  return false;
#endif
}

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Runtime master switch (default on). Disabling makes every metric update a
/// single relaxed load; existing values are retained, not cleared.
[[nodiscard]] inline bool metrics_enabled() {
#if A2A_OBS
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}
void set_metrics_enabled(bool enabled);

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n) {
#if A2A_OBS
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void inc() { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed instantaneous value (queue depths, resident bytes).
class Gauge {
 public:
  void set(std::int64_t v) {
#if A2A_OBS
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t n) {
#if A2A_OBS
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void sub(std::int64_t n) { add(-n); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram. Buckets are powers of two in
/// NANOSECONDS: bucket i counts observations in [2^i ns, 2^(i+1) ns), with
/// the first and last buckets absorbing the tails — 32 buckets span <1 ns
/// to >2 s, which covers everything from a counter bump to a Fig. 10 LP.
/// Fixed bounds keep observation to a bit-scan plus one relaxed add and make
/// histograms mergeable across processes without bound negotiation.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  void observe_ns(std::uint64_t ns) {
#if A2A_OBS
    if (!metrics_enabled()) return;
    int b = 0;
    while (b + 1 < kBuckets && (ns >> (b + 1)) != 0) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
#else
    (void)ns;
#endif
  }
  void observe_seconds(double seconds) {
    if (seconds < 0.0) seconds = 0.0;
    observe_ns(static_cast<std::uint64_t>(seconds * 1e9));
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound (exclusive) of bucket i in nanoseconds.
  [[nodiscard]] static std::uint64_t bucket_bound_ns(int i) {
    return 1ULL << (i + 1);
  }
  /// Approximate quantile (q in [0,1]) as the upper bound of the bucket
  /// containing the q-th observation; 0 when empty.
  [[nodiscard]] std::uint64_t quantile_ns(double q) const;
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's relaxed-load snapshot.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;               ///< counter/gauge value; histogram count.
  std::uint64_t sum_ns = 0;             ///< histogram only.
  std::uint64_t p50_ns = 0, p99_ns = 0; ///< histogram only.
  std::vector<std::uint64_t> buckets;   ///< histogram only (trailing zeros trimmed).
};

/// Process-global name -> metric registry. Metrics are created on first use
/// and never destroyed (references remain valid for the process lifetime),
/// so call sites hold a `static Counter&` and update without ever touching
/// the registry lock again. Re-requesting a name with a different kind
/// throws InternalError — names are a flat global namespace.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Relaxed-load snapshot of every registered metric, name-sorted.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Flat JSON object: {"name": value, ...} for counters/gauges;
  /// histograms expand to "<name>.count", "<name>.sum_ns", "<name>.p50_ns",
  /// "<name>.p99_ns". Always a valid JSON document, even when empty.
  [[nodiscard]] std::string to_json() const;

  /// Zeroes every registered metric (names stay registered). For benches and
  /// tests that diff per-run deltas.
  void reset_all();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

// The one snapshot-export implementation every consumer shares — the
// schedserved /metrics endpoint, `schedgen --metrics/--stats`, and the
// bench JSON records all call these instead of hand-rolling export code.

/// The global registry as an embeddable flat JSON value: to_json() with
/// trailing whitespace trimmed, so it splices into larger documents
/// (BENCH_*.json records, HTTP response bodies).
[[nodiscard]] std::string metrics_json();

/// Writes the global registry's flat JSON (newline-terminated) to `path`.
/// Throws on I/O failure.
void write_metrics_json(const std::string& path);

/// Renders the global registry as an aligned human-readable table
/// (histogram times in milliseconds; p50/p99 are bucket upper bounds).
void print_metrics_table(std::ostream& os);

}  // namespace a2a::obs

/// Resolve-once helpers for hot call sites: the registry lock is paid on the
/// first execution only, every later pass is a direct atomic update.
#define A2A_COUNTER(name_literal)                                          \
  ([]() -> ::a2a::obs::Counter& {                                          \
    static ::a2a::obs::Counter& c =                                        \
        ::a2a::obs::MetricsRegistry::global().counter(name_literal);       \
    return c;                                                              \
  }())
#define A2A_GAUGE(name_literal)                                            \
  ([]() -> ::a2a::obs::Gauge& {                                            \
    static ::a2a::obs::Gauge& g =                                          \
        ::a2a::obs::MetricsRegistry::global().gauge(name_literal);         \
    return g;                                                              \
  }())
#define A2A_HISTOGRAM(name_literal)                                        \
  ([]() -> ::a2a::obs::Histogram& {                                        \
    static ::a2a::obs::Histogram& h =                                      \
        ::a2a::obs::MetricsRegistry::global().histogram(name_literal);     \
    return h;                                                              \
  }())
