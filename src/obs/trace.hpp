// Tracing layer — RAII scoped spans recorded into per-thread ring buffers
// and exported as Chrome trace_event JSON (loadable in chrome://tracing and
// Perfetto).
//
// A span is recorded only while a TraceSession is open, so production hot
// paths pay one relaxed atomic load per span when tracing is off (and
// nothing at all under -DA2A_OBS=0). Benches and `schedgen --trace` open a
// session around a run; the exported timeline shows every pipeline stage
// (augment / solve / extract / chunk / compile / validate / encode / cache)
// with thread attribution — decomposed-MCF child LPs appear on their pool
// workers' tracks.
//
// Nesting is positional, the way Chrome's "X" (complete) events define it:
// a span whose [start, start+dur) interval encloses another's on the same
// thread renders as its parent. Each event also carries its lexical depth
// for tests and tooling that want it without interval arithmetic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // A2A_OBS + compiled_in()

namespace a2a::obs {

namespace trace_detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace trace_detail

/// True while a TraceSession is open (the span fast-path check).
[[nodiscard]] inline bool tracing_enabled() {
#if A2A_OBS
  return trace_detail::g_tracing_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// One recorded span (or instant, dur_ns == 0), timestamps relative to the
/// session start.
struct TraceEvent {
  const char* name = "";    ///< static-storage string (span call sites).
  std::string args;         ///< free-form annotation ("" = none).
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< small dense id, assigned per thread.
  std::uint32_t depth = 0;  ///< lexical span nesting depth at record time.
  bool instant = false;
};

/// RAII scoped span. `name` must have static storage duration (string
/// literals at every call site); the optional annotation is copied. Spans
/// constructed while tracing is off record nothing, even if a session opens
/// before they close — a half-observed span would lie about its duration.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const char* name, std::string args);
  ~TraceSpan();

  /// Appends to the span's annotation ("; "-separated). Use for decisions
  /// made mid-span (which Fig. 1 branch, why).
  void annotate(const std::string& text);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::string args_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Zero-duration marker on the current thread's track.
void trace_instant(const char* name, std::string args = {});

/// Capacity of each thread's ring buffer. When a thread records more events
/// than this in one session the OLDEST are overwritten and the drop count is
/// reported in the export metadata.
inline constexpr std::size_t kTraceRingCapacity = 1 << 16;

/// Collector for one tracing window. At most one session may be open at a
/// time (a second concurrent one throws InternalError). Opening clears every
/// thread's ring; stop() (or the destructor) closes the window. The events
/// and the Chrome JSON remain available after stop.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();

  /// Closes the recording window and freezes the event set. Idempotent.
  void stop();

  /// Events recorded in this session (stops the session if still open),
  /// ordered by (tid, start). Ring overflow drops the oldest per thread.
  [[nodiscard]] std::vector<TraceEvent> events();

  /// Chrome trace_event JSON ("traceEvents" array of "X"/"i" events, ts/dur
  /// in microseconds). Loadable as-is in chrome://tracing / Perfetto.
  [[nodiscard]] std::string chrome_json();

  /// Events dropped to ring overflow, summed over threads.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  bool stopped_ = false;
  bool collected_ = false;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace a2a::obs

/// Span convenience: A2A_TRACE_SPAN("stage.solve") declares a scoped span
/// with a unique local name.
#define A2A_OBS_CONCAT2(a, b) a##b
#define A2A_OBS_CONCAT(a, b) A2A_OBS_CONCAT2(a, b)
#define A2A_TRACE_SPAN(...) \
  ::a2a::obs::TraceSpan A2A_OBS_CONCAT(a2a_trace_span_, __LINE__)(__VA_ARGS__)
