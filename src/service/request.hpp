// Request vocabulary of the schedule service — the canonical description of
// "which schedule do you want" shared by the schedserved HTTP transport and
// the schedgen CLI, so a query string and a flag list resolve to the same
// topology, fabric and options (and therefore the same fingerprint).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/api.hpp"
#include "graph/digraph.hpp"
#include "runtime/fabric.hpp"

namespace a2a::service {

/// The topology-construction parameters schedgen has always taken as flags.
/// Which fields matter depends on the family (dims for torus3d, nodes+degree
/// for genkautz, dim for hypercube, ...); the rest are ignored, exactly as
/// the CLI ignores unused flags.
struct TopologySpec {
  std::string topology = "torus3d";
  std::string dims = "3x3x3";
  int nodes = 64;
  int degree = 4;
  int dim = 3;
  std::uint64_t seed = 1;
};

/// Builds the topology a spec describes. Throws InvalidArgument for unknown
/// families or malformed parameters.
[[nodiscard]] DiGraph build_topology(const TopologySpec& spec);

/// Resolves a fabric name (cerio | gpu | oneccl) to its Table 1 model.
[[nodiscard]] Fabric build_fabric(const std::string& name);

/// One schedule request as the service admits it: what to build, which
/// pipeline knobs, and how long the caller is willing to wait.
struct ServiceRequest {
  TopologySpec spec;
  std::string fabric = "cerio";
  ToolchainOptions options;
  /// Wall-clock budget for a miss (queue wait + synthesis). <= 0: no
  /// deadline — the request waits for synthesis however long it takes.
  double deadline_ms = 0.0;
  /// Ask for a Chrome trace of this request (served best-effort: at most
  /// one trace session can be open per process, so concurrent askers race
  /// and losers are served untraced).
  bool trace = false;
};

/// Parses an HTTP query string ("topology=genkautz&nodes=27&degree=4&
/// fabric=cerio&deadline_ms=250") into a ServiceRequest. Accepts
/// percent-escapes and '+' for space. Unknown keys and unparseable values
/// throw InvalidArgument — the transport maps that to 400, distinguishing
/// caller mistakes from pipeline failures.
///
/// Recognized keys: topology, dims, nodes, degree, dim, seed, fabric,
/// deadline_ms, trace, the workload keys collective (a2a | rs | ag |
/// allreduce) and demand (uniform | zipf:<s> | perm[:<seed>] | block:<k>),
/// and the fingerprint-relevant pipeline knobs path_diversity_threshold /
/// exact_tsmcf_limit / vc_max_layers_warn (exposed so tests and benches can
/// mint distinct fingerprints for an otherwise identical topology).
[[nodiscard]] ServiceRequest parse_service_request(std::string_view query);

/// The request's canonical query string (sorted keys, only the recognized
/// set) — parse_service_request(canonical_query(r)) reproduces r. Used by
/// benches to drive the HTTP transport from programmatic requests.
[[nodiscard]] std::string canonical_query(const ServiceRequest& request);

}  // namespace a2a::service
