// AdmissionQueue — the deadline-and-load gate in front of the broker.
//
// Hits are served inline (the broker fast path costs a hash lookup or an
// mmap; queueing one behind a seconds-long synthesis would be absurd).
// Misses are the expensive case, and three policies apply, in order:
//
//   * bounded concurrency: at most max_pending misses are in service at
//     once; request max_pending+1 is rejected immediately (429 at the
//     transport) instead of building an unbounded backlog.
//   * upfront load-shedding: when the caller set a deadline and the EWMA of
//     recent synthesis times already exceeds it, the request is shed NOW —
//     spending seconds of LP time to blow the deadline anyway helps no one,
//     least of all the requests queued behind it.
//   * deadline-bounded synthesis: an admitted miss gets its remaining
//     budget threaded into SimplexOptions::time_limit_s, so the pipeline
//     itself gives up at the deadline (the PR 7 cooperative time-limit
//     machinery), and a coalesced wait is bounded by the same budget.
//
// Every outcome is counted (`service.*`) and latency-histogrammed.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>

#include "core/api.hpp"
#include "core/schedule_cache.hpp"

namespace a2a::service {

class ScheduleBroker;

struct AdmissionOptions {
  /// Max misses in service at once (leaders + coalesced waiters). 0 means
  /// every miss is rejected — a serve-from-cache-only mode.
  std::size_t max_pending = 64;
  /// Deadline applied when a request carries none. <= 0: no deadline.
  double default_deadline_ms = 0.0;
  /// Shed when ewma_synth_seconds > shed_safety * remaining budget. Values
  /// below 1 shed more eagerly; 0 disables upfront shedding (the deadline
  /// still bounds the synthesis itself).
  double shed_safety = 1.0;
};

enum class ServiceOutcome {
  kServed,             ///< artifact bytes attached.
  kRejectedQueueFull,  ///< bounded miss queue at capacity (HTTP 429).
  kShedDeadline,       ///< deadline unmeetable or expired (HTTP 504).
  kFailed,             ///< pipeline/internal failure (HTTP 500).
};

[[nodiscard]] const char* to_string(ServiceOutcome outcome);

struct ServiceReply {
  ServiceOutcome outcome = ServiceOutcome::kFailed;
  ArtifactView view;        ///< valid() only when kServed.
  std::string fingerprint;  ///< always set (computed before admission).
  bool hit = false;
  bool coalesced = false;
  double total_seconds = 0.0;  ///< admission-to-reply wall time.
  std::string error;           ///< human-readable, non-served outcomes.
};

class AdmissionQueue {
 public:
  /// The broker must outlive the queue.
  explicit AdmissionQueue(ScheduleBroker* broker, AdmissionOptions options = {});

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Serves one request on the calling thread (the transport gives each
  /// connection its own thread; a miss occupies it for up to the deadline).
  /// Never throws: every failure becomes an outcome + error string.
  [[nodiscard]] ServiceReply serve(const DiGraph& topology,
                                   const Fabric& fabric,
                                   ToolchainOptions options,
                                   double deadline_ms = 0.0);

  /// Misses currently in service.
  [[nodiscard]] std::size_t pending() const;
  /// EWMA of recent leader synthesis times (0 until the first miss).
  [[nodiscard]] double ewma_synth_seconds() const;

 private:
  ScheduleBroker* broker_;
  AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::size_t pending_ = 0;         ///< guarded by mutex_.
  double ewma_synth_seconds_ = 0.0; ///< guarded by mutex_.
};

}  // namespace a2a::service
