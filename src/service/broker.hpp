// ScheduleBroker — the middle layer of the schedule service, between the
// admission queue and generate_schedule()'s fingerprint-first split.
//
// The broker owns three behaviours the one-shot pipeline never needed:
//
//   * request coalescing: concurrent requests for the same fingerprint
//     collapse into ONE synthesis. The first caller (the leader) runs the
//     LP/MCF pipeline inline; everyone else parks on a shared_future and is
//     handed the same artifact bytes. A leader failure propagates to every
//     waiter and clears the slot so a later request retries.
//   * zero-copy hits: results are held and served as ArtifactViews — the
//     serialized envelope either mmap'd from the cache's disk tier or the
//     exact heap buffer insert() wrote — so the hot path never decodes a
//     schedule, and the transport writes schedbin() bytes straight out.
//     A small LRU of hot views keeps repeat hits free of even the
//     open+mmap syscalls.
//   * background refresh: a hot view that has not been revalidated against
//     the cache for refresh_age_s is re-resolved on the shared ThreadPool
//     (off the request path), so long-lived daemons track cache GC /
//     multi-process rewrites without ever stalling a hit.
//
// Thread-safe; lifetime rule: the ScheduleCache and ThreadPool must outlive
// every background task, i.e. destroy the pool before the cache (the
// broker's own shared state is refcounted, so the broker itself may be
// destroyed while refreshes are still queued).
#pragma once

#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/api.hpp"
#include "core/schedule_cache.hpp"

namespace a2a {
class ThreadPool;
}  // namespace a2a

namespace a2a::service {

struct BrokerOptions {
  /// Entries kept in the in-process hot-view LRU (each pins either an mmap
  /// or the serialized envelope buffer). 0 disables the hot tier: every hit
  /// re-resolves through the cache.
  std::size_t hot_capacity = 64;
  /// Age after which a hot view is revalidated against the cache in the
  /// background. <= 0 disables refresh.
  double refresh_age_s = 300.0;
};

struct BrokerResult {
  ArtifactView view;
  /// Served without running the pipeline (hot tier or cache artifact).
  bool hit = false;
  /// This caller waited on another request's in-flight synthesis.
  bool coalesced = false;
  /// Pipeline wall time (leader only; 0 for hits and coalesced waiters).
  double synth_seconds = 0.0;
};

class ScheduleBroker {
 public:
  /// Both pointers may be null: without a cache every request synthesizes
  /// (still coalesced, still served as bytes); without a pool background
  /// refresh is disabled.
  ScheduleBroker(ScheduleCache* cache, ThreadPool* pool,
                 BrokerOptions options = {});

  ScheduleBroker(const ScheduleBroker&) = delete;
  ScheduleBroker& operator=(const ScheduleBroker&) = delete;

  /// Fast path only: hot tier, then the cache's zero-copy artifact lookup.
  /// Never synthesizes, never blocks on another request. nullopt on miss.
  [[nodiscard]] std::optional<ArtifactView> try_lookup(
      const std::string& fingerprint);

  /// Full path: try_lookup, then coalesced synthesis on miss. `budget_s`
  /// bounds a COALESCED waiter's wait (<= 0: wait forever); the leader's
  /// own synthesis is bounded by whatever deadline the caller threaded into
  /// options.mcf.lp.time_limit_s. Throws SolverError when the wait or the
  /// synthesis exceeds its budget, and rethrows leader failures to every
  /// waiter.
  [[nodiscard]] BrokerResult request(const std::string& fingerprint,
                                     const DiGraph& topology,
                                     const Fabric& fabric,
                                     const ToolchainOptions& options,
                                     double budget_s = 0.0);

  /// Convenience overload computing the fingerprint itself.
  [[nodiscard]] BrokerResult request(const DiGraph& topology,
                                     const Fabric& fabric,
                                     const ToolchainOptions& options = {},
                                     double budget_s = 0.0);

  /// Syntheses currently in flight (leaders running, not yet published).
  [[nodiscard]] std::size_t inflight() const;
  /// Views currently pinned by the hot tier.
  [[nodiscard]] std::size_t hot_size() const;

  /// Shared broker state (defined in broker.cpp); public so the refresh
  /// tasks — which may outlive the broker object — can hold it by
  /// shared_ptr.
  struct State;

 private:
  std::shared_ptr<State> state_;
};

}  // namespace a2a::service
