#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/admission.hpp"
#include "service/request.hpp"

namespace a2a::service {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 1 * 1024 * 1024;

/// Serializes per-request tracing: the process has ONE TraceSession, so the
/// first trace=1 request in flight gets it and concurrent askers are served
/// untraced.
std::mutex g_trace_mutex;

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 504: return "Gateway Timeout";
  }
  return "Unknown";
}

struct Response {
  int status = 500;
  std::string content_type = "text/plain";
  /// Extra headers, each a full "Name: value" line.
  std::vector<std::string> headers;
  /// Exactly one of `body` (owned) or `payload` (borrowed — an
  /// ArtifactView's bytes, alive in the caller's scope) carries the body.
  std::string body;
  std::string_view payload;
  bool close = false;

  [[nodiscard]] std::string_view content() const {
    return payload.empty() ? std::string_view(body) : payload;
  }
};

bool send_response(int fd, const Response& r) {
  std::ostringstream head;
  head << "HTTP/1.1 " << r.status << ' ' << status_text(r.status) << "\r\n"
       << "Content-Type: " << r.content_type << "\r\n"
       << "Content-Length: " << r.content().size() << "\r\n"
       << "Connection: " << (r.close ? "close" : "keep-alive") << "\r\n";
  for (const std::string& h : r.headers) head << h << "\r\n";
  head << "\r\n";
  const std::string header_bytes = head.str();
  if (!send_all(fd, header_bytes.data(), header_bytes.size())) return false;
  // The payload is written straight from the view's storage — on a disk-tier
  // hit these are the artifact's mmap'd pages, never copied into a response
  // buffer (the zero-copy serving path the broker exists for).
  return send_all(fd, r.content().data(), r.content().size());
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

ScheduleServer::ScheduleServer(AdmissionQueue* admission, ServerOptions options)
    : admission_(admission), options_(options) {
  A2A_ASSERT(admission_ != nullptr, "ScheduleServer needs an admission queue");
}

ScheduleServer::~ScheduleServer() { stop(); }

void ScheduleServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  A2A_REQUIRE(listen_fd_ >= 0, "socket() failed: ", std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidArgument("cannot bind 127.0.0.1:" +
                          std::to_string(options_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  if (options_.threads == 0) options_.threads = 1;
  workers_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ScheduleServer::worker_loop() {
  // Workers share the listener: whichever is free accepts the next
  // connection and owns it until it closes (keep-alive included).
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down.
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    A2A_COUNTER("service.connections").inc();
    handle_connection(fd);
    ::close(fd);
  }
}

void ScheduleServer::handle_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = static_cast<long>(options_.recv_timeout_s);
  timeout.tv_usec = static_cast<long>(
      (options_.recv_timeout_s - static_cast<double>(timeout.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!handle_request(fd)) return;
  }
}

bool ScheduleServer::handle_request(int fd) {
  // Read until the end of the header block.
  std::string buf;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;  // peer closed, timeout, or error.
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() > kMaxHeaderBytes) return false;
    header_end = buf.find("\r\n\r\n");
  }

  // Request line + the two headers this server acts on.
  const std::string_view head = std::string_view(buf).substr(0, header_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line = head.substr(
      0, line_end == std::string_view::npos ? head.size() : line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target =
      request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  std::size_t content_length = 0;
  bool connection_close = false;
  {
    std::istringstream headers{std::string(head.substr(
        line_end == std::string_view::npos ? head.size() : line_end))};
    std::string line;
    while (std::getline(headers, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      std::string value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.erase(0, 1);
      if (name == "content-length") {
        try {
          content_length = static_cast<std::size_t>(std::stoull(value));
        } catch (const std::exception&) {
          return false;
        }
      } else if (name == "connection") {
        for (char& c : value) c = static_cast<char>(std::tolower(c));
        connection_close = value == "close";
      }
    }
  }

  // Drain (and ignore) the body — every endpoint is query-addressed.
  if (content_length > kMaxBodyBytes) return false;
  std::size_t have = buf.size() - header_end - 4;
  while (have < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    have += static_cast<std::size_t>(n);
  }

  const std::size_t qmark = target.find('?');
  const std::string_view path = target.substr(0, qmark);
  const std::string_view query =
      qmark == std::string_view::npos ? std::string_view{}
                                      : target.substr(qmark + 1);

  Response response;
  response.close = connection_close;
  // `reply` lives until the response is sent: it owns the ArtifactView the
  // payload view points into.
  ServiceReply reply;

  if (method != "GET" && method != "POST") {
    response.status = 400;
    response.body = "unsupported method\n";
  } else if (path == "/healthz") {
    response.status = 200;
    response.body = "ok\n";
  } else if (path == "/metrics") {
    response.status = 200;
    response.content_type = "application/json";
    response.body = obs::metrics_json() + "\n";
  } else if (path == "/shutdown") {
    response.status = 200;
    response.body = "shutting down\n";
    response.close = true;
    {
      std::lock_guard lock(shutdown_mutex_);
      shutdown_ = true;
    }
    shutdown_cv_.notify_all();
  } else if (path == "/schedule") {
    try {
      const ServiceRequest request = parse_service_request(query);
      const DiGraph topology = build_topology(request.spec);
      const Fabric fabric = build_fabric(request.fabric);

      // Best-effort per-request tracing: first asker in flight wins the
      // process's one session; everyone else proceeds untraced.
      std::unique_lock trace_lock(g_trace_mutex, std::defer_lock);
      std::optional<obs::TraceSession> session;
      const bool want_trace = request.trace && !options_.trace_dir.empty();
      if (want_trace && trace_lock.try_lock()) session.emplace();

      reply = admission_->serve(topology, fabric, request.options,
                                request.deadline_ms);

      if (session) {
        session->stop();
        std::filesystem::create_directories(options_.trace_dir);
        const std::string trace_path =
            options_.trace_dir + "/trace-" + reply.fingerprint + ".json";
        std::ofstream out(trace_path, std::ios::binary);
        out << session->chrome_json();
        response.headers.push_back("X-A2A-Trace: " + trace_path);
      } else if (want_trace) {
        response.headers.emplace_back("X-A2A-Trace: busy");
      }

      response.headers.push_back("X-A2A-Outcome: " +
                                 std::string(to_string(reply.outcome)));
      response.headers.push_back("X-A2A-Fingerprint: " + reply.fingerprint);
      switch (reply.outcome) {
        case ServiceOutcome::kServed:
          response.status = 200;
          response.content_type = "application/octet-stream";
          response.headers.emplace_back(reply.hit ? "X-A2A-Hit: 1"
                                                  : "X-A2A-Hit: 0");
          response.headers.emplace_back(reply.coalesced
                                            ? "X-A2A-Coalesced: 1"
                                            : "X-A2A-Coalesced: 0");
          response.headers.push_back(
              "X-A2A-Flow: " + format_double(reply.view.concurrent_flow));
          response.payload = reply.view.schedbin();
          break;
        case ServiceOutcome::kRejectedQueueFull:
          response.status = 429;
          response.body = reply.error + "\n";
          break;
        case ServiceOutcome::kShedDeadline:
          response.status = 504;
          response.body = reply.error + "\n";
          break;
        case ServiceOutcome::kFailed:
          response.status = 500;
          response.body = reply.error + "\n";
          break;
      }
    } catch (const InvalidArgument& e) {
      response.status = 400;
      response.body = std::string(e.what()) + "\n";
    } catch (const std::exception& e) {
      response.status = 500;
      response.body = std::string(e.what()) + "\n";
    }
  } else {
    response.status = 404;
    response.body = "unknown path\n";
  }

  if (!send_response(fd, response)) return false;
  return !response.close;
}

void ScheduleServer::wait_shutdown() {
  std::unique_lock lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_ || stopping_.load(std::memory_order_relaxed);
  });
}

void ScheduleServer::stop() {
  std::lock_guard stop_lock(stop_mutex_);
  if (listen_fd_ < 0 && workers_.empty()) return;
  stopping_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard lock(shutdown_mutex_);
    shutdown_ = true;
  }
  shutdown_cv_.notify_all();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Wake any worker still parked in accept(): a shutdown listener returns
  // EINVAL on Linux, but poke once per worker anyway — a stray connect is
  // harmless and makes the join prompt on platforms where it does not.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    (void)::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    ::close(fd);
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace a2a::service
