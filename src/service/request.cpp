#include "service/request.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "graph/topologies.hpp"

namespace a2a::service {

DiGraph build_topology(const TopologySpec& spec) {
  Rng rng(spec.seed);
  if (spec.topology == "torus3d") {
    std::vector<int> dims;
    std::stringstream ss(spec.dims);
    std::string token;
    while (std::getline(ss, token, 'x')) dims.push_back(std::stoi(token));
    return make_torus(dims);
  }
  if (spec.topology == "torus2d") return make_torus_2d(spec.nodes);
  if (spec.topology == "hypercube") return make_hypercube(spec.dim);
  if (spec.topology == "twisted") return make_twisted_hypercube(spec.dim);
  if (spec.topology == "bipartite") {
    return make_complete_bipartite(spec.nodes / 2,
                                   spec.nodes - spec.nodes / 2);
  }
  if (spec.topology == "ring") return make_ring(spec.nodes);
  if (spec.topology == "genkautz") {
    return make_generalized_kautz(spec.nodes, spec.degree);
  }
  if (spec.topology == "debruijn") return make_de_bruijn(2, spec.dim);
  if (spec.topology == "xpander") {
    return make_xpander(spec.degree, spec.nodes / (spec.degree + 1), rng);
  }
  if (spec.topology == "randomregular") {
    return make_random_regular(spec.nodes, spec.degree, rng);
  }
  if (spec.topology == "dragonfly") {
    return make_dragonfly(spec.degree + 1, spec.degree, 1);
  }
  throw InvalidArgument("unknown topology: " + spec.topology);
}

Fabric build_fabric(const std::string& name) {
  if (name == "cerio") return hpc_cerio_fabric();
  if (name == "gpu") return gpu_mscl_fabric();
  if (name == "oneccl") return cpu_oneccl_fabric();
  throw InvalidArgument("unknown fabric: " + name);
}

namespace {

/// Percent-decodes one query component ('+' is a space, %XX a byte).
std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size()) {
      const auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      A2A_REQUIRE(hi >= 0 && lo >= 0, "bad percent-escape in query");
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

int parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(value, &used);
    A2A_REQUIRE(used == value.size(), "trailing junk");
    return v;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("bad integer for '" + key + "': " + value);
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    A2A_REQUIRE(used == value.size(), "trailing junk");
    return v;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("bad number for '" + key + "': " + value);
  }
}

}  // namespace

ServiceRequest parse_service_request(std::string_view query) {
  ServiceRequest request;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    pos = amp + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    A2A_REQUIRE(eq != std::string_view::npos,
                "query parameter without '=': ", std::string(pair));
    const std::string key = url_decode(pair.substr(0, eq));
    const std::string value = url_decode(pair.substr(eq + 1));
    if (key == "topology") request.spec.topology = value;
    else if (key == "dims") request.spec.dims = value;
    else if (key == "nodes") request.spec.nodes = parse_int(key, value);
    else if (key == "degree") request.spec.degree = parse_int(key, value);
    else if (key == "dim") request.spec.dim = parse_int(key, value);
    else if (key == "seed") {
      request.spec.seed =
          static_cast<std::uint64_t>(parse_double(key, value));
    }
    else if (key == "fabric") request.fabric = value;
    else if (key == "deadline_ms") {
      request.deadline_ms = parse_double(key, value);
    }
    else if (key == "trace") request.trace = parse_int(key, value) != 0;
    else if (key == "path_diversity_threshold") {
      request.options.path_diversity_threshold = parse_int(key, value);
    }
    else if (key == "exact_tsmcf_limit") {
      request.options.exact_tsmcf_limit = parse_int(key, value);
    }
    else if (key == "vc_max_layers_warn") {
      request.options.vc_max_layers_warn = parse_int(key, value);
    }
    else if (key == "collective") {
      request.options.workload.collective = collective_from_name(value);
    }
    else if (key == "demand") {
      request.options.workload.demand = DemandSpec::parse(value);
    }
    else {
      throw InvalidArgument("unknown query parameter: " + key);
    }
  }
  return request;
}

std::string canonical_query(const ServiceRequest& request) {
  const ServiceRequest defaults;
  std::ostringstream os;
  const char* sep = "";
  const auto emit = [&](const char* key, const std::string& value) {
    os << sep << key << '=' << value;
    sep = "&";
  };
  // Alphabetical, defaults elided — a stable, minimal query.
  if (request.options.workload.collective !=
      defaults.options.workload.collective) {
    emit("collective", collective_name(request.options.workload.collective));
  }
  if (request.deadline_ms != defaults.deadline_ms) {
    emit("deadline_ms", std::to_string(request.deadline_ms));
  }
  if (request.options.workload.demand != defaults.options.workload.demand) {
    emit("demand", request.options.workload.demand.to_string());
  }
  if (request.spec.degree != defaults.spec.degree) {
    emit("degree", std::to_string(request.spec.degree));
  }
  if (request.spec.dim != defaults.spec.dim) {
    emit("dim", std::to_string(request.spec.dim));
  }
  if (request.spec.dims != defaults.spec.dims) emit("dims", request.spec.dims);
  if (request.options.exact_tsmcf_limit != defaults.options.exact_tsmcf_limit) {
    emit("exact_tsmcf_limit",
         std::to_string(request.options.exact_tsmcf_limit));
  }
  if (request.fabric != defaults.fabric) emit("fabric", request.fabric);
  if (request.spec.nodes != defaults.spec.nodes) {
    emit("nodes", std::to_string(request.spec.nodes));
  }
  if (request.options.path_diversity_threshold !=
      defaults.options.path_diversity_threshold) {
    emit("path_diversity_threshold",
         std::to_string(request.options.path_diversity_threshold));
  }
  if (request.spec.seed != defaults.spec.seed) {
    emit("seed", std::to_string(request.spec.seed));
  }
  if (request.spec.topology != defaults.spec.topology) {
    emit("topology", request.spec.topology);
  }
  if (request.trace) emit("trace", "1");
  if (request.options.vc_max_layers_warn !=
      defaults.options.vc_max_layers_warn) {
    emit("vc_max_layers_warn",
         std::to_string(request.options.vc_max_layers_warn));
  }
  return os.str();
}

}  // namespace a2a::service
