// ScheduleServer — the transport layer of the schedule service: a minimal
// HTTP/1.1 loop over a loopback TCP socket, no third-party dependencies.
//
// Endpoints:
//   GET  /schedule?<query>  synthesize/serve a schedule. The query is
//                           parse_service_request()'s vocabulary; the body
//                           of a 200 is the raw SchedBin frame, written
//                           straight from the broker's ArtifactView (the
//                           disk tier's mmap'd pages on a hit — the
//                           zero-copy path end to end). Outcome headers:
//                           X-A2A-Outcome / -Fingerprint / -Hit /
//                           -Coalesced / -Flow.
//   GET  /metrics           the metrics registry as flat JSON
//                           (obs::metrics_json(), shared with schedgen).
//   GET  /healthz           liveness: 200 "ok".
//   POST /shutdown          graceful stop; wait_shutdown() returns.
//
// Status mapping: 200 served, 400 malformed request, 404 unknown path,
// 429 miss queue full, 504 deadline shed, 500 pipeline failure.
//
// Concurrency: `threads` workers block in accept() on the shared listener
// and each runs its connection's keep-alive loop to completion; a miss
// therefore occupies its worker for up to the deadline, and the admission
// queue bounds how many may do so. Per-request tracing (`trace=1`) opens
// the process's single TraceSession if it is free — concurrent askers are
// served untraced (the X-A2A-Trace header says which happened).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace a2a::service {

class AdmissionQueue;

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back via
  /// port()).
  std::uint16_t port = 0;
  /// Connection worker threads (each handles one connection at a time).
  unsigned threads = 4;
  /// Directory for per-request Chrome traces ("" disables trace=1).
  std::string trace_dir;
  /// Keep-alive idle timeout; also bounds how long stop() waits for a
  /// worker parked in recv().
  double recv_timeout_s = 5.0;
};

class ScheduleServer {
 public:
  /// The admission queue must outlive the server.
  explicit ScheduleServer(AdmissionQueue* admission, ServerOptions options = {});
  ~ScheduleServer();  ///< calls stop().

  ScheduleServer(const ScheduleServer&) = delete;
  ScheduleServer& operator=(const ScheduleServer&) = delete;

  /// Binds 127.0.0.1:<port>, listens, spawns the workers. Throws
  /// InvalidArgument when the port cannot be bound.
  void start();
  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks until POST /shutdown arrives or stop() is called.
  void wait_shutdown();
  /// Closes the listener and joins every worker. Idempotent.
  void stop();

 private:
  void worker_loop();
  void handle_connection(int fd);
  /// One request on an open connection; returns false when the connection
  /// should close (error, timeout, Connection: close, shutdown).
  bool handle_request(int fd);

  AdmissionQueue* admission_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;  ///< serializes stop(); never held with the cv's.
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_ = false;  ///< guarded by shutdown_mutex_.
};

}  // namespace a2a::service
