#include "service/broker.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace a2a::service {

using Clock = std::chrono::steady_clock;

struct ScheduleBroker::State {
  ScheduleCache* cache = nullptr;
  ThreadPool* pool = nullptr;
  BrokerOptions options;

  std::mutex mutex;
  struct HotEntry {
    ArtifactView view;
    Clock::time_point validated;
    bool refreshing = false;  ///< a background revalidation is queued.
    std::list<std::string>::iterator lru_it;
  };
  /// Hot-view LRU (MRU-first list + map, same pairing as ScheduleCache's
  /// memory tier). Guarded by mutex.
  std::unordered_map<std::string, HotEntry> hot;
  std::list<std::string> lru;
  /// fingerprint -> the future every coalesced waiter parks on. An entry
  /// exists exactly while a leader is synthesizing. Guarded by mutex.
  std::unordered_map<std::string, std::shared_future<ArtifactView>> inflight;
};

namespace {

/// Installs (or re-validates) a hot view. Caller must NOT hold state.mutex.
void insert_hot(ScheduleBroker::State& state, const std::string& fingerprint,
                const ArtifactView& view) {
  if (state.options.hot_capacity == 0) return;
  std::lock_guard lock(state.mutex);
  auto it = state.hot.find(fingerprint);
  if (it != state.hot.end()) {
    it->second.view = view;
    it->second.validated = Clock::now();
    state.lru.splice(state.lru.begin(), state.lru, it->second.lru_it);
    return;
  }
  state.lru.push_front(fingerprint);
  state.hot.emplace(fingerprint,
                    ScheduleBroker::State::HotEntry{view, Clock::now(), false,
                                                    state.lru.begin()});
  while (state.hot.size() > state.options.hot_capacity) {
    const std::string victim = state.lru.back();
    state.lru.pop_back();
    state.hot.erase(victim);
    A2A_COUNTER("service.hot_evictions").inc();
  }
}

/// Queues a background revalidation of a hot view against the cache.
/// Captures the broker state by shared_ptr, so the task outlives the broker
/// safely; the cache must outlive the pool (documented lifetime rule).
void queue_refresh(const std::shared_ptr<ScheduleBroker::State>& state,
                   const std::string& fingerprint) {
  state->pool->submit([state, fingerprint] {
    std::optional<ArtifactView> fresh;
    try {
      fresh = state->cache->lookup_artifact(fingerprint);
    } catch (const std::exception&) {
      // Treated as "artifact gone"; the entry is dropped below.
    }
    std::lock_guard lock(state->mutex);
    auto it = state->hot.find(fingerprint);
    if (it == state->hot.end()) return;  // evicted while we looked.
    it->second.refreshing = false;
    if (fresh) {
      it->second.view = *fresh;
      it->second.validated = Clock::now();
      A2A_COUNTER("service.refreshes").inc();
    } else {
      // The cache no longer resolves this fingerprint (GC, quarantine):
      // drop the hot view so the next request re-synthesizes instead of
      // serving bytes the rest of the fleet can no longer see.
      state->lru.erase(it->second.lru_it);
      state->hot.erase(it);
      A2A_COUNTER("service.refresh_drops").inc();
    }
  });
}

}  // namespace

ScheduleBroker::ScheduleBroker(ScheduleCache* cache, ThreadPool* pool,
                               BrokerOptions options)
    : state_(std::make_shared<State>()) {
  state_->cache = cache;
  state_->pool = pool;
  state_->options = options;
}

std::optional<ArtifactView> ScheduleBroker::try_lookup(
    const std::string& fingerprint) {
  State& state = *state_;
  {
    std::lock_guard lock(state.mutex);
    auto it = state.hot.find(fingerprint);
    if (it != state.hot.end()) {
      state.lru.splice(state.lru.begin(), state.lru, it->second.lru_it);
      A2A_COUNTER("service.hot_hits").inc();
      const bool stale =
          state.options.refresh_age_s > 0.0 &&
          std::chrono::duration<double>(Clock::now() - it->second.validated)
                  .count() > state.options.refresh_age_s;
      if (stale && !it->second.refreshing && state.pool != nullptr &&
          state.cache != nullptr) {
        it->second.refreshing = true;
        queue_refresh(state_, fingerprint);
      }
      return it->second.view;
    }
  }
  if (state.cache != nullptr) {
    if (auto artifact = state.cache->lookup_artifact(fingerprint)) {
      A2A_COUNTER("service.artifact_hits").inc();
      insert_hot(state, fingerprint, *artifact);
      return artifact;
    }
  }
  return std::nullopt;
}

BrokerResult ScheduleBroker::request(const std::string& fingerprint,
                                     const DiGraph& topology,
                                     const Fabric& fabric,
                                     const ToolchainOptions& options,
                                     double budget_s) {
  A2A_COUNTER("service.requests").inc();
  if (auto view = try_lookup(fingerprint)) {
    return BrokerResult{*view, /*hit=*/true, /*coalesced=*/false, 0.0};
  }
  A2A_COUNTER("service.misses").inc();

  State& state = *state_;
  std::promise<ArtifactView> promise;  // used by the leader only.
  std::shared_future<ArtifactView> future;
  bool leader = false;
  {
    std::lock_guard lock(state.mutex);
    auto it = state.inflight.find(fingerprint);
    if (it != state.inflight.end()) {
      future = it->second;
    } else {
      leader = true;
      future = promise.get_future().share();
      state.inflight.emplace(fingerprint, future);
    }
  }

  if (!leader) {
    // Coalesced waiter. The leader is by construction RUNNING (leadership is
    // claimed inside this function, never while queued), so waiting here can
    // never deadlock a worker pool. The wait is budget-bounded; the leader's
    // own synthesis deadline is whatever the leader threaded into its
    // options, which may differ from ours.
    A2A_COUNTER("service.coalesced").inc();
    A2A_TRACE_SPAN("service.coalesced_wait", fingerprint);
    if (budget_s > 0.0 &&
        future.wait_for(std::chrono::duration<double>(budget_s)) !=
            std::future_status::ready) {
      throw SolverError(
          "schedule service: deadline expired waiting on coalesced "
          "synthesis (time-limit)");
    }
    return BrokerResult{future.get(), /*hit=*/false, /*coalesced=*/true, 0.0};
  }

  // Leader: run the pipeline inline, publish the artifact to every waiter.
  A2A_COUNTER("service.syntheses").inc();
  const auto synth_start = Clock::now();
  try {
    const GeneratedSchedule schedule =
        synthesize_schedule(topology, fabric, options);
    std::shared_ptr<const std::string> bytes =
        state.cache != nullptr
            ? state.cache->insert(fingerprint, schedule)
            : std::make_shared<const std::string>(
                  generated_schedule_to_bytes(schedule));
    ArtifactView view = parse_schedule_envelope(*bytes);
    view.bytes = std::move(bytes);
    insert_hot(state, fingerprint, view);
    promise.set_value(view);
    {
      std::lock_guard lock(state.mutex);
      state.inflight.erase(fingerprint);
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - synth_start).count();
    A2A_HISTOGRAM("service.synth_seconds").observe_seconds(seconds);
    return BrokerResult{std::move(view), /*hit=*/false, /*coalesced=*/false,
                        seconds};
  } catch (...) {
    A2A_COUNTER("service.synth_failures").inc();
    // Erase BEFORE publishing the failure: requests arriving after the
    // erase start a fresh synthesis instead of inheriting this error;
    // waiters already parked get the exception rethrown from get().
    {
      std::lock_guard lock(state.mutex);
      state.inflight.erase(fingerprint);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

BrokerResult ScheduleBroker::request(const DiGraph& topology,
                                     const Fabric& fabric,
                                     const ToolchainOptions& options,
                                     double budget_s) {
  return request(schedule_fingerprint(topology, fabric, options), topology,
                 fabric, options, budget_s);
}

std::size_t ScheduleBroker::inflight() const {
  std::lock_guard lock(state_->mutex);
  return state_->inflight.size();
}

std::size_t ScheduleBroker::hot_size() const {
  std::lock_guard lock(state_->mutex);
  return state_->hot.size();
}

}  // namespace a2a::service
