#include "service/admission.hpp"

#include <chrono>
#include <string_view>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "service/broker.hpp"

namespace a2a::service {

using Clock = std::chrono::steady_clock;

const char* to_string(ServiceOutcome outcome) {
  switch (outcome) {
    case ServiceOutcome::kServed: return "served";
    case ServiceOutcome::kRejectedQueueFull: return "rejected-queue-full";
    case ServiceOutcome::kShedDeadline: return "shed-deadline";
    case ServiceOutcome::kFailed: return "failed";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(ScheduleBroker* broker, AdmissionOptions options)
    : broker_(broker), options_(options) {
  A2A_ASSERT(broker_ != nullptr, "AdmissionQueue needs a broker");
}

ServiceReply AdmissionQueue::serve(const DiGraph& topology,
                                   const Fabric& fabric,
                                   ToolchainOptions options,
                                   double deadline_ms) {
  const auto start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  ServiceReply reply;
  const auto finish = [&](ServiceOutcome outcome, std::string error = {}) {
    reply.outcome = outcome;
    reply.error = std::move(error);
    reply.total_seconds = elapsed();
    A2A_HISTOGRAM("service.request_seconds")
        .observe_seconds(reply.total_seconds);
    return reply;
  };

  if (deadline_ms <= 0.0) deadline_ms = options_.default_deadline_ms;
  const double deadline_s = deadline_ms > 0.0 ? deadline_ms / 1000.0 : 0.0;

  try {
    reply.fingerprint = schedule_fingerprint(topology, fabric, options);

    // Hit fast path — never queued, never sheddable: the lookup is cheaper
    // than the admission bookkeeping itself.
    if (auto view = broker_->try_lookup(reply.fingerprint)) {
      reply.view = *view;
      reply.hit = true;
      A2A_COUNTER("service.served").inc();
      A2A_HISTOGRAM("service.hit_seconds").observe_seconds(elapsed());
      return finish(ServiceOutcome::kServed);
    }

    // Miss: bounded concurrency, then upfront deadline shedding.
    {
      std::lock_guard lock(mutex_);
      if (pending_ >= options_.max_pending) {
        A2A_COUNTER("service.rejected_queue_full").inc();
        return finish(ServiceOutcome::kRejectedQueueFull,
                      "miss queue full (" + std::to_string(pending_) +
                          " in service)");
      }
      if (deadline_s > 0.0 && options_.shed_safety > 0.0 &&
          ewma_synth_seconds_ > options_.shed_safety * deadline_s) {
        A2A_COUNTER("service.shed_deadline").inc();
        return finish(ServiceOutcome::kShedDeadline,
                      "deadline unmeetable: recent syntheses average " +
                          std::to_string(ewma_synth_seconds_) +
                          " s against a " + std::to_string(deadline_s) +
                          " s budget");
      }
      ++pending_;
      A2A_GAUGE("service.pending").add(1);
    }
    struct PendingGuard {
      AdmissionQueue* q;
      ~PendingGuard() {
        std::lock_guard lock(q->mutex_);
        --q->pending_;
        A2A_GAUGE("service.pending").sub(1);
      }
    } pending_guard{this};

    // Thread the remaining budget into the pipeline's cooperative
    // time-limit so the synthesis gives up AT the deadline rather than
    // being abandoned by it. A caller-set tighter limit wins.
    double remaining_s = 0.0;
    if (deadline_s > 0.0) {
      remaining_s = deadline_s - elapsed();
      if (remaining_s <= 0.0) {
        A2A_COUNTER("service.shed_deadline").inc();
        return finish(ServiceOutcome::kShedDeadline, "deadline expired");
      }
      if (options.mcf.lp.time_limit_s <= 0.0 ||
          options.mcf.lp.time_limit_s > remaining_s) {
        options.mcf.lp.time_limit_s = remaining_s;
      }
    }

    const BrokerResult result = broker_->request(
        reply.fingerprint, topology, fabric, options, remaining_s);
    reply.view = result.view;
    reply.hit = result.hit;
    reply.coalesced = result.coalesced;
    if (result.synth_seconds > 0.0) {
      std::lock_guard lock(mutex_);
      ewma_synth_seconds_ =
          ewma_synth_seconds_ == 0.0
              ? result.synth_seconds
              : 0.7 * ewma_synth_seconds_ + 0.3 * result.synth_seconds;
    }
    A2A_COUNTER("service.served").inc();
    A2A_HISTOGRAM("service.miss_seconds").observe_seconds(elapsed());
    return finish(ServiceOutcome::kServed);
  } catch (const SolverError& e) {
    // The cooperative time-limit surfaces as a SolverError naming
    // "time-limit" (LpStatus::kTimeLimit's to_string); with a deadline set
    // that is a shed, not a pipeline failure.
    const bool timed_out =
        std::string_view(e.what()).find("time-limit") != std::string_view::npos;
    if (deadline_s > 0.0 && (timed_out || elapsed() >= deadline_s)) {
      A2A_COUNTER("service.shed_deadline").inc();
      return finish(ServiceOutcome::kShedDeadline, e.what());
    }
    A2A_COUNTER("service.failed").inc();
    return finish(ServiceOutcome::kFailed, e.what());
  } catch (const std::exception& e) {
    A2A_COUNTER("service.failed").inc();
    return finish(ServiceOutcome::kFailed, e.what());
  }
}

std::size_t AdmissionQueue::pending() const {
  std::lock_guard lock(mutex_);
  return pending_;
}

double AdmissionQueue::ewma_synth_seconds() const {
  std::lock_guard lock(mutex_);
  return ewma_synth_seconds_;
}

}  // namespace a2a::service
