// Fixed-size worker pool used to parallelize the N child LPs of the
// decomposed MCF (§3.1.2) and other embarrassingly parallel sweeps.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace a2a {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Exceptions from tasks are captured and the first one
  /// is rethrown on the calling thread; once a task has thrown, workers may
  /// skip iterations that have not started yet (the results would be
  /// discarded by the rethrow anyway).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Enqueues one fire-and-forget task (the service layers' background
  /// refresh / admission work items). Unlike parallel_for there is no
  /// caller to rethrow into, so an escaping exception is swallowed and
  /// counted (`pool.task_exceptions`) — tasks that care report their own
  /// failures through promises or counters. The destructor still drains the
  /// queue before joining, so a submitted task always runs.
  void submit(std::function<void()> fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace a2a
