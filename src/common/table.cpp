#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace a2a {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << v;
    }
    os << '\n';
  };
  print_row(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (const auto w : widths) rule.emplace_back(w, '-');
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace a2a
