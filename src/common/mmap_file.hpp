// Read-only memory-mapped files.
//
// The SchedBin v2 read path opens multi-megabyte schedule artifacts and
// decodes individual chunks on demand; mapping the file means only the
// pages actually touched (header, trailer, the requested chunks) are ever
// read from disk, instead of slurping the whole container per lookup.
// Move-only RAII wrapper; unmapped on destruction.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace a2a {

class MmapFile {
 public:
  MmapFile() = default;
  /// Maps `path` read-only. Throws InvalidArgument when the file cannot be
  /// opened, stat'ed or mapped. Empty files map to an empty view.
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  [[nodiscard]] std::string_view view() const {
    return {static_cast<const char*>(data_), size_};
  }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace a2a
