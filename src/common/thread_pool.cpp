#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace a2a {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Work-stealing via a shared atomic index keeps task-queue overhead at one
  // enqueued closure per worker regardless of `count`.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto remaining = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;

  const std::size_t n_tasks = std::min<std::size_t>(workers_.size(), count);
  remaining->store(n_tasks);

  auto body = [=, &done_mutex, &done_cv, &done] {
    for (;;) {
      const std::size_t i = next->fetch_add(1);
      if (i >= count) break;
      try {
        fn(i);
      } catch (...) {
        bool expected = false;
        if (first_error->compare_exchange_strong(expected, true)) {
          std::lock_guard lock(*error_mutex);
          *error = std::current_exception();
        }
      }
    }
    if (remaining->fetch_sub(1) == 1) {
      std::lock_guard lock(done_mutex);
      done = true;
      done_cv.notify_all();
    }
  };

  {
    std::lock_guard lock(mutex_);
    for (std::size_t t = 0; t < n_tasks; ++t) queue_.push(body);
  }
  cv_.notify_all();

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  if (first_error->load()) std::rethrow_exception(*error);
}

}  // namespace a2a
