#include "common/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>

#include "obs/metrics.hpp"

namespace a2a {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    A2A_GAUGE("pool.queue_depth").sub(1);
    const auto task_start = std::chrono::steady_clock::now();
    task();
    A2A_HISTOGRAM("pool.task_seconds")
        .observe_seconds(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - task_start)
                             .count());
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    queue_.push([fn = std::move(fn)] {
      try {
        fn();
      } catch (...) {
        A2A_COUNTER("pool.task_exceptions").inc();
      }
    });
  }
  A2A_COUNTER("pool.tasks").inc();
  A2A_GAUGE("pool.queue_depth").add(1);
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Work-stealing via a shared atomic index keeps task-queue overhead at one
  // enqueued closure per worker regardless of `count`. All cross-thread
  // coordination lives in one shared block; the exception slot is written
  // AND read under the same mutex, so its publication to the caller never
  // relies on an atomic flag alone (the old scheme wrote the exception_ptr
  // after flipping the flag, leaving a window where the rethrow could read
  // a half-published pointer).
  struct SharedState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    /// Failure hint: lets other workers skip the remaining iterations once
    /// an exception is pending (the caller rethrows, so their results would
    /// be discarded anyway).
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;  ///< guarded by error_mutex.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    bool done = false;  ///< guarded by done_mutex.
  };
  auto state = std::make_shared<SharedState>();

  const std::size_t n_tasks = std::min<std::size_t>(workers_.size(), count);
  state->remaining.store(n_tasks, std::memory_order_relaxed);

  // `fn` is captured by reference: the caller blocks until every body has
  // finished, so it strictly outlives all uses.
  auto body = [state, &fn, count] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      if (state->failed.load(std::memory_order_acquire)) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(state->error_mutex);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_release);
      }
    }
    if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(state->done_mutex);
      state->done = true;
      state->done_cv.notify_all();
    }
  };

  {
    std::lock_guard lock(mutex_);
    for (std::size_t t = 0; t < n_tasks; ++t) queue_.push(body);
  }
  A2A_COUNTER("pool.tasks").add(n_tasks);
  A2A_GAUGE("pool.queue_depth").add(static_cast<std::int64_t>(n_tasks));
  cv_.notify_all();

  {
    std::unique_lock lock(state->done_mutex);
    state->done_cv.wait(lock, [&] { return state->done; });
  }
  std::exception_ptr error;
  {
    std::lock_guard lock(state->error_mutex);
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace a2a
