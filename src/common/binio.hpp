// Little-endian scalar I/O on byte strings.
//
// Shared by the SchedBin container and the schedule-cache disk envelope so
// both speak the same byte order on every host. Header-only: these inline
// to single loads/stores on little-endian targets after optimization.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace a2a::binio {

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>(v >> 8));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<char>(v & 0xFF));
    v >>= 8;
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<char>(v & 0xFF));
    v >>= 8;
  }
}

inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Reads a `width`-byte little-endian unsigned integer at `pos`. The caller
/// is responsible for `pos + width <= bytes.size()` (checked).
[[nodiscard]] inline std::uint64_t get_uint(std::string_view bytes,
                                            std::size_t pos, int width) {
  A2A_REQUIRE(pos + static_cast<std::size_t>(width) <= bytes.size(),
              "truncated binary blob: need ", width, " bytes at offset ", pos);
  std::uint64_t v = 0;
  for (int b = width - 1; b >= 0; --b) {
    v = (v << 8) | static_cast<unsigned char>(bytes[pos + static_cast<std::size_t>(b)]);
  }
  return v;
}

/// Cursor-style reader: reads and advances `pos`.
[[nodiscard]] inline std::uint64_t read_uint(std::string_view bytes,
                                             std::size_t& pos, int width) {
  const std::uint64_t v = get_uint(bytes, pos, width);
  pos += static_cast<std::size_t>(width);
  return v;
}

[[nodiscard]] inline std::int64_t read_i64(std::string_view bytes,
                                           std::size_t& pos) {
  return static_cast<std::int64_t>(read_uint(bytes, pos, 8));
}

}  // namespace a2a::binio
