// Minimal XML document model, writer, and parser.
//
// §4 lowers schedules to MSCCL-style and oneCCL-style XML programs. This is
// a self-contained subset parser (elements, attributes, text; no DTD/CDATA/
// namespaces) sufficient for round-tripping our schedule dialects.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace a2a {

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;

  XmlNode() = default;
  explicit XmlNode(std::string tag) : name(std::move(tag)) {}

  XmlNode& add_child(const std::string& tag) {
    children.push_back(std::make_unique<XmlNode>(tag));
    return *children.back();
  }

  void set_attr(const std::string& key, const std::string& value) {
    attributes[key] = value;
  }
  void set_attr(const std::string& key, long long value) {
    attributes[key] = std::to_string(value);
  }

  [[nodiscard]] const std::string& attr(const std::string& key) const;
  [[nodiscard]] long long attr_int(const std::string& key) const;
  [[nodiscard]] bool has_attr(const std::string& key) const {
    return attributes.count(key) > 0;
  }

  /// All direct children with the given tag name.
  [[nodiscard]] std::vector<const XmlNode*> children_named(
      const std::string& tag) const;
};

/// Serializes `root` with 2-space indentation and XML attribute escaping.
[[nodiscard]] std::string xml_to_string(const XmlNode& root);

/// Parses a document produced by xml_to_string (or hand-written in the same
/// subset). Throws a2a::InvalidArgument on malformed input.
[[nodiscard]] std::unique_ptr<XmlNode> xml_parse(const std::string& text);

}  // namespace a2a
