// Exact rational arithmetic used by the schedule compiler.
//
// §4 of the paper divides each shard into chunks whose size is the highest
// common factor of the (fractional) path weights in the MCF solution. Doing
// that in floating point is fragile, so LP outputs are snapped to rationals
// with bounded denominators and the HCF is computed exactly.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <numeric>
#include <ostream>

#include "common/error.hpp"

namespace a2a {

/// A normalized rational p/q with q > 0 and gcd(|p|, q) == 1.
class Rational {
 public:
  constexpr Rational() = default;
  constexpr Rational(std::int64_t numerator)  // NOLINT implicit: literals
      : num_(numerator), den_(1) {}
  Rational(std::int64_t numerator, std::int64_t denominator)
      : num_(numerator), den_(denominator) {
    A2A_REQUIRE(denominator != 0, "rational with zero denominator");
    normalize();
  }

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }
  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  [[nodiscard]] constexpr bool is_zero() const { return num_ == 0; }

  // Arithmetic cross-multiplies through 128 bits after reducing by gcd, so
  // intermediate products cannot overflow for any pair of normalized
  // operands; only a result that truly exceeds int64 is rejected.
  friend Rational operator+(const Rational& a, const Rational& b) {
    const std::int64_t g = std::gcd(a.den_, b.den_);
    const std::int64_t bg = b.den_ / g;
    return from_wide(Wide(a.num_) * bg + Wide(b.num_) * (a.den_ / g),
                     Wide(a.den_) * bg);
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    const std::int64_t g = std::gcd(a.den_, b.den_);
    const std::int64_t bg = b.den_ / g;
    return from_wide(Wide(a.num_) * bg - Wide(b.num_) * (a.den_ / g),
                     Wide(a.den_) * bg);
  }
  friend Rational operator*(const Rational& a, const Rational& b) {
    // Cross-reduce first: gcd(|a.num|, b.den) and gcd(|b.num|, a.den) divide
    // out, keeping the wide product as small as possible.
    const auto g1 = static_cast<std::int64_t>(
        std::gcd(u_abs(a.num_), static_cast<std::uint64_t>(b.den_)));
    const auto g2 = static_cast<std::int64_t>(
        std::gcd(u_abs(b.num_), static_cast<std::uint64_t>(a.den_)));
    return from_wide(Wide(a.num_ / g1) * (b.num_ / g2),
                     Wide(a.den_ / g2) * (b.den_ / g1));
  }
  friend Rational operator/(const Rational& a, const Rational& b) {
    A2A_REQUIRE(b.num_ != 0, "rational division by zero");
    // Skip the cross-reduction in the one case its gcd exceeds int64 (both
    // numerators INT64_MIN); the 128-bit products still cannot overflow.
    const std::uint64_t g1u = std::gcd(u_abs(a.num_), u_abs(b.num_));
    const std::int64_t g1 =
        g1u > static_cast<std::uint64_t>(INT64_MAX)
            ? 1
            : static_cast<std::int64_t>(g1u);
    const std::int64_t g2 = std::gcd(b.den_, a.den_);
    return from_wide(Wide(a.num_ / g1) * (b.den_ / g2),
                     Wide(a.den_ / g2) * (b.num_ / g1));
  }
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b) {
    const Wide lhs = Wide(a.num_) * b.den_;
    const Wide rhs = Wide(b.num_) * a.den_;
    return lhs < rhs   ? std::strong_ordering::less
           : lhs > rhs ? std::strong_ordering::greater
                       : std::strong_ordering::equal;
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& r) {
    os << r.num_;
    if (r.den_ != 1) os << '/' << r.den_;
    return os;
  }

  /// Greatest common divisor of two non-negative rationals:
  /// gcd(a/b, c/d) = gcd(a·d, c·b) / (b·d).  This is the "highest common
  /// factor" used for chunk sizing in §4.
  [[nodiscard]] static Rational gcd(const Rational& a, const Rational& b) {
    A2A_REQUIRE(a.num_ >= 0 && b.num_ >= 0, "gcd of negative rationals");
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;
    const UWide n = wide_gcd(UWide(a.num_) * UWide(b.den_),
                             UWide(b.num_) * UWide(a.den_));
    return from_wide(Wide(n), Wide(a.den_) * b.den_);
  }

  /// Best rational approximation of x with denominator at most `max_den`,
  /// via continued fractions (Stern–Brocot convergents).
  [[nodiscard]] static Rational approximate(double x,
                                            std::int64_t max_den = 1'000'000);

 private:
  // 128-bit intermediates for overflow-free cross-multiplication. __int128
  // is not std::integral in strict mode, so gcd is hand-rolled.
  using Wide = __int128;
  using UWide = unsigned __int128;

  /// |v| without the INT64_MIN negation UB.
  static constexpr std::uint64_t u_abs(std::int64_t v) {
    return v < 0 ? 0 - static_cast<std::uint64_t>(v)
                 : static_cast<std::uint64_t>(v);
  }

  static constexpr UWide wide_gcd(UWide a, UWide b) {
    while (b != 0) {
      const UWide r = a % b;
      a = b;
      b = r;
    }
    return a;
  }

  /// Normalizes num/den (den != 0) from 128-bit intermediates, rejecting
  /// results whose reduced form does not fit in int64.
  static Rational from_wide(Wide num, Wide den) {
    if (den < 0) {
      num = -num;
      den = -den;
    }
    const bool negative = num < 0;
    UWide un = negative ? UWide(0) - UWide(num) : UWide(num);
    UWide ud = UWide(den);
    const UWide g = wide_gcd(un, ud);
    if (g > 1) {
      un /= g;
      ud /= g;
    }
    constexpr auto kMax = UWide(INT64_MAX);
    A2A_REQUIRE(ud <= kMax && un <= (negative ? kMax + 1 : kMax),
                "rational overflow: reduced value exceeds int64");
    Rational r;
    r.num_ = negative ? (un == kMax + 1 ? INT64_MIN
                                        : -static_cast<std::int64_t>(un))
                      : static_cast<std::int64_t>(un);
    r.den_ = un == 0 ? 1 : static_cast<std::int64_t>(ud);
    return r;
  }

  void normalize() {
    const bool negative = (num_ < 0) != (den_ < 0);
    std::uint64_t un = u_abs(num_);
    std::uint64_t ud = u_abs(den_);
    const std::uint64_t g = std::gcd(un, ud);
    if (g > 1) {
      un /= g;
      ud /= g;
    }
    constexpr auto kMax = static_cast<std::uint64_t>(INT64_MAX);
    A2A_REQUIRE(ud <= kMax && un <= (negative ? kMax + 1 : kMax),
                "rational overflow: reduced value exceeds int64");
    num_ = negative ? (un == kMax + 1 ? INT64_MIN
                                      : -static_cast<std::int64_t>(un))
                    : static_cast<std::int64_t>(un);
    den_ = un == 0 ? 1 : static_cast<std::int64_t>(ud);
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

inline Rational Rational::approximate(double x, std::int64_t max_den) {
  A2A_REQUIRE(std::isfinite(x), "cannot approximate non-finite value");
  const bool negative = x < 0;
  double v = negative ? -x : x;
  // Continued-fraction expansion, tracking convergents h/k.
  std::int64_t h0 = 0, h1 = 1, k0 = 1, k1 = 0;
  double frac = v;
  for (int iter = 0; iter < 64; ++iter) {
    const double floor_part = std::floor(frac);
    if (floor_part > static_cast<double>(INT64_MAX / 2)) break;
    const auto a = static_cast<std::int64_t>(floor_part);
    const std::int64_t h2 = a * h1 + h0;
    const std::int64_t k2 = a * k1 + k0;
    if (k2 > max_den) break;
    h0 = h1;
    h1 = h2;
    k0 = k1;
    k1 = k2;
    const double rem = frac - floor_part;
    if (rem < 1e-12) break;
    frac = 1.0 / rem;
  }
  if (k1 == 0) return Rational(0);
  return Rational(negative ? -h1 : h1, k1);
}

}  // namespace a2a
