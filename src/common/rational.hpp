// Exact rational arithmetic used by the schedule compiler.
//
// §4 of the paper divides each shard into chunks whose size is the highest
// common factor of the (fractional) path weights in the MCF solution. Doing
// that in floating point is fragile, so LP outputs are snapped to rationals
// with bounded denominators and the HCF is computed exactly.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <numeric>
#include <ostream>

#include "common/error.hpp"

namespace a2a {

/// A normalized rational p/q with q > 0 and gcd(|p|, q) == 1.
class Rational {
 public:
  constexpr Rational() = default;
  constexpr Rational(std::int64_t numerator)  // NOLINT implicit: literals
      : num_(numerator), den_(1) {}
  Rational(std::int64_t numerator, std::int64_t denominator)
      : num_(numerator), den_(denominator) {
    A2A_REQUIRE(denominator != 0, "rational with zero denominator");
    normalize();
  }

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }
  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  [[nodiscard]] constexpr bool is_zero() const { return num_ == 0; }

  friend Rational operator+(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_);
  }
  friend Rational operator*(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.num_, a.den_ * b.den_);
  }
  friend Rational operator/(const Rational& a, const Rational& b) {
    A2A_REQUIRE(b.num_ != 0, "rational division by zero");
    return Rational(a.num_ * b.den_, a.den_ * b.num_);
  }
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b) {
    return a.num_ * b.den_ <=> b.num_ * a.den_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& r) {
    os << r.num_;
    if (r.den_ != 1) os << '/' << r.den_;
    return os;
  }

  /// Greatest common divisor of two non-negative rationals:
  /// gcd(a/b, c/d) = gcd(a·d, c·b) / (b·d).  This is the "highest common
  /// factor" used for chunk sizing in §4.
  [[nodiscard]] static Rational gcd(const Rational& a, const Rational& b) {
    A2A_REQUIRE(a.num_ >= 0 && b.num_ >= 0, "gcd of negative rationals");
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;
    const std::int64_t n = std::gcd(a.num_ * b.den_, b.num_ * a.den_);
    return Rational(n, a.den_ * b.den_);
  }

  /// Best rational approximation of x with denominator at most `max_den`,
  /// via continued fractions (Stern–Brocot convergents).
  [[nodiscard]] static Rational approximate(double x,
                                            std::int64_t max_den = 1'000'000);

 private:
  void normalize() {
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

inline Rational Rational::approximate(double x, std::int64_t max_den) {
  A2A_REQUIRE(std::isfinite(x), "cannot approximate non-finite value");
  const bool negative = x < 0;
  double v = negative ? -x : x;
  // Continued-fraction expansion, tracking convergents h/k.
  std::int64_t h0 = 0, h1 = 1, k0 = 1, k1 = 0;
  double frac = v;
  for (int iter = 0; iter < 64; ++iter) {
    const double floor_part = std::floor(frac);
    if (floor_part > static_cast<double>(INT64_MAX / 2)) break;
    const auto a = static_cast<std::int64_t>(floor_part);
    const std::int64_t h2 = a * h1 + h0;
    const std::int64_t k2 = a * k1 + k0;
    if (k2 > max_den) break;
    h0 = h1;
    h1 = h2;
    k0 = k1;
    k1 = k2;
    const double rem = frac - floor_part;
    if (rem < 1e-12) break;
    frac = 1.0 / rem;
  }
  if (k1 == 0) return Rational(0);
  return Rational(negative ? -h1 : h1, k1);
}

}  // namespace a2a
