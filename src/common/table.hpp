// Aligned-column table printer used by the bench harness so every
// table/figure reproduction prints the same row format the paper reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace a2a {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(double value, int precision = 4);
  Table& cell(long long value);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace a2a
