#include "common/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

#include "common/error.hpp"

namespace a2a {

MmapFile::MmapFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  A2A_REQUIRE(fd >= 0, "cannot open file for mmap: ", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw InvalidArgument("cannot stat file for mmap: " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      throw InvalidArgument("mmap failed for: " + path);
    }
    data_ = map;
  }
  // The mapping survives the descriptor.
  ::close(fd);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace a2a
