// Error handling primitives shared by every module.
//
// The library reports contract violations and unrecoverable numerical
// conditions via exceptions derived from a2a::Error so that callers (tests,
// benches, applications) can distinguish library failures from std failures.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace a2a {

/// Base class of all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented contract.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an algorithm reaches a state that indicates a logic bug
/// (e.g. a validated invariant fails mid-run).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Context a solver failure carries so drift-induced singularity reports are
/// actionable: where the run was when it died, not just that it died.
struct SolverErrorContext {
  long long iterations = -1;        ///< simplex iterations completed (-1: unknown).
  long long refactorizations = -1;  ///< basis refactorizations completed.
  const char* phase = "";  ///< "phase1", "primal", "dual", "restore", ...
};

/// Thrown by the LP solver for infeasible/unbounded models when the caller
/// asked for a guaranteed-optimal solution, and for numerical breakdowns
/// (singular basis after drift). The optional context records how far the
/// solve got; what() includes it when present.
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
  SolverError(const std::string& what, const SolverErrorContext& context)
      : Error(with_context(what, context)), context_(context) {}

  [[nodiscard]] const SolverErrorContext& context() const { return context_; }

 private:
  static std::string with_context(const std::string& what,
                                  const SolverErrorContext& context) {
    std::ostringstream os;
    os << what << " [";
    if (*context.phase != '\0') os << "phase=" << context.phase << ", ";
    os << "iterations=" << context.iterations
       << ", refactorizations=" << context.refactorizations << "]";
    return os.str();
  }
  SolverErrorContext context_;
};

namespace detail {
template <typename... Parts>
[[nodiscard]] std::string concat(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

}  // namespace a2a

/// Argument/precondition check. Active in all build types: these guard the
/// public API surface, not hot inner loops.
#define A2A_REQUIRE(cond, ...)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw ::a2a::InvalidArgument(::a2a::detail::concat(                 \
          "precondition failed: ", #cond, " — ", __VA_ARGS__));           \
    }                                                                     \
  } while (0)

/// Internal invariant check for algorithm states that must hold by
/// construction.
#define A2A_ASSERT(cond, ...)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw ::a2a::InternalError(::a2a::detail::concat(                   \
          "invariant failed: ", #cond, " — ", __VA_ARGS__));              \
    }                                                                     \
  } while (0)
