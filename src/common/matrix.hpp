// Dense row-major matrix used by the LP solver's basis kernel.
//
// Deliberately minimal: the simplex implementation needs storage, row
// operations, and matrix-vector products; everything else lives in lp/lu.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace a2a {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] double* row(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const double* row(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// y = A x
  void multiply(const std::vector<double>& x, std::vector<double>& y) const {
    A2A_REQUIRE(x.size() == cols_, "matrix-vector size mismatch");
    y.assign(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const double* a = row(r);
      double acc = 0.0;
      for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
      y[r] = acc;
    }
  }

  /// y = Aᵀ x
  void multiply_transpose(const std::vector<double>& x,
                          std::vector<double>& y) const {
    A2A_REQUIRE(x.size() == rows_, "matrix-vector size mismatch");
    y.assign(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const double* a = row(r);
      const double xr = x[r];
      if (xr == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) y[c] += a[c] * xr;
    }
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace a2a
