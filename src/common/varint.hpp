// LEB128 variable-length integers and ZigZag signed mapping.
//
// The SchedBin delta codec stores successive differences of schedule columns;
// deltas are small signed integers, so ZigZag + LEB128 packs most of them
// into one byte. Header-only: these are one-liner hot loops.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace a2a {

/// ZigZag maps signed to unsigned so small-magnitude values stay small:
/// 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (0 - (u & 1)));
}

/// Appends `v` to `out` as LEB128 (7 value bits per byte, MSB = continue).
inline void append_uvarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Reads a LEB128 value from `data` at `pos`, advancing `pos`. Throws
/// InvalidArgument on truncated or over-long (> 10 byte) encodings.
[[nodiscard]] inline std::uint64_t read_uvarint(const char* data,
                                                std::size_t size,
                                                std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    A2A_REQUIRE(pos < size, "truncated varint");
    A2A_REQUIRE(shift < 64, "varint overflows 64 bits");
    const auto byte = static_cast<unsigned char>(data[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

inline void append_svarint(std::string& out, std::int64_t v) {
  append_uvarint(out, zigzag_encode(v));
}

[[nodiscard]] inline std::int64_t read_svarint(const char* data,
                                               std::size_t size,
                                               std::size_t& pos) {
  return zigzag_decode(read_uvarint(data, size, pos));
}

}  // namespace a2a
