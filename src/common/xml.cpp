#include "common/xml.hpp"

#include <cctype>
#include <sstream>

namespace a2a {

const std::string& XmlNode::attr(const std::string& key) const {
  const auto it = attributes.find(key);
  A2A_REQUIRE(it != attributes.end(),
              "missing XML attribute '", key, "' on <", name, ">");
  return it->second;
}

long long XmlNode::attr_int(const std::string& key) const {
  const std::string& value = attr(key);
  try {
    std::size_t consumed = 0;
    const long long parsed = std::stoll(value, &consumed);
    A2A_REQUIRE(consumed == value.size(), "attribute ", key, "=\"", value,
                "\" on <", name, "> has trailing non-numeric characters");
    return parsed;
  } catch (const std::invalid_argument&) {
    throw InvalidArgument(detail::concat("attribute ", key, "=\"", value,
                                         "\" on <", name,
                                         "> is not an integer"));
  } catch (const std::out_of_range&) {
    throw InvalidArgument(detail::concat("attribute ", key, "=\"", value,
                                         "\" on <", name,
                                         "> overflows long long"));
  }
}

std::vector<const XmlNode*> XmlNode::children_named(
    const std::string& tag) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == tag) out.push_back(c.get());
  }
  return out;
}

namespace {

void escape_into(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '&': os << "&amp;"; break;
      case '<': os << "&lt;"; break;
      case '>': os << "&gt;"; break;
      case '"': os << "&quot;"; break;
      case '\'': os << "&apos;"; break;
      default: os << c;
    }
  }
}

void write_node(std::ostream& os, const XmlNode& node, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  os << indent << '<' << node.name;
  for (const auto& [k, v] : node.attributes) {
    os << ' ' << k << "=\"";
    escape_into(os, v);
    os << '"';
  }
  if (node.children.empty() && node.text.empty()) {
    os << "/>\n";
    return;
  }
  os << '>';
  if (!node.text.empty()) escape_into(os, node.text);
  if (!node.children.empty()) {
    os << '\n';
    for (const auto& c : node.children) write_node(os, *c, depth + 1);
    os << indent;
  }
  os << "</" << node.name << ">\n";
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::unique_ptr<XmlNode> parse() {
    skip_whitespace_and_prolog();
    auto root = parse_element();
    skip_whitespace();
    A2A_REQUIRE(pos_ == text_.size(), "trailing content after XML root");
    return root;
  }

 private:
  [[nodiscard]] char peek() const {
    A2A_REQUIRE(pos_ < text_.size(), "unexpected end of XML input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    A2A_REQUIRE(take() == c, "expected '", std::string(1, c), "' in XML");
  }
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  void skip_whitespace_and_prolog() {
    skip_whitespace();
    while (pos_ + 1 < text_.size() && text_[pos_] == '<' &&
           (text_[pos_ + 1] == '?' || text_[pos_ + 1] == '!')) {
      while (take() != '>') {
      }
      skip_whitespace();
    }
  }
  [[nodiscard]] static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':' || c == '.';
  }
  std::string parse_name() {
    std::string out;
    while (pos_ < text_.size() && is_name_char(text_[pos_])) out += take();
    A2A_REQUIRE(!out.empty(), "empty XML name at offset ", pos_);
    return out;
  }
  std::string parse_quoted() {
    expect('"');
    std::string out;
    while (peek() != '"') out += take();
    expect('"');
    return unescape(out);
  }
  [[nodiscard]] static std::string unescape(const std::string& s) {
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out += s[i];
        continue;
      }
      const auto semi = s.find(';', i);
      A2A_REQUIRE(semi != std::string::npos, "unterminated XML entity");
      const std::string entity = s.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else A2A_REQUIRE(false, "unknown XML entity &", entity, ";");
      i = semi;
    }
    return out;
  }

  std::unique_ptr<XmlNode> parse_element() {
    expect('<');
    auto node = std::make_unique<XmlNode>(parse_name());
    for (;;) {
      skip_whitespace();
      const char c = peek();
      if (c == '/') {
        take();
        expect('>');
        return node;  // self-closing
      }
      if (c == '>') {
        take();
        break;
      }
      const std::string key = parse_name();
      skip_whitespace();
      expect('=');
      skip_whitespace();
      node->attributes[key] = parse_quoted();
    }
    // Content: text and child elements until closing tag.
    std::string text;
    for (;;) {
      if (peek() == '<') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
          take();
          take();
          const std::string closing = parse_name();
          A2A_REQUIRE(closing == node->name, "mismatched closing tag </",
                      closing, "> for <", node->name, ">");
          skip_whitespace();
          expect('>');
          break;
        }
        node->children.push_back(parse_element());
      } else {
        text += take();
      }
    }
    // Keep only non-whitespace text payloads.
    const auto first = text.find_first_not_of(" \t\r\n");
    if (first != std::string::npos) {
      const auto last = text.find_last_not_of(" \t\r\n");
      node->text = unescape(text.substr(first, last - first + 1));
    }
    return node;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string xml_to_string(const XmlNode& root) {
  std::ostringstream os;
  write_node(os, root, 0);
  return os.str();
}

std::unique_ptr<XmlNode> xml_parse(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace a2a
