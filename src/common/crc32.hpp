// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the SchedBin container to integrity-check every compressed chunk:
// a schedule served from the on-disk cache must never silently decode a
// corrupted artifact into a plausible-looking transfer list.
#pragma once

#include <cstddef>
#include <cstdint>

namespace a2a {

/// CRC-32 of `size` bytes starting at `data`, with an optional seed so the
/// checksum can be accumulated across discontiguous buffers:
///   crc = crc32(a); crc = crc32(b, crc);  == crc32(a||b).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

}  // namespace a2a
