// Deterministic pseudo-random number generation.
//
// All stochastic components (random regular graphs, punctured tori, local
// search restarts) take an explicit seed so that every experiment in
// EXPERIMENTS.md is bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace a2a {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Good enough for
/// combinatorial sampling; not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  [[nodiscard]] std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound) using rejection to avoid modulo bias.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    A2A_REQUIRE(bound > 0, "next_below(0)");
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  [[nodiscard]] int next_int(int lo, int hi_exclusive) {
    A2A_REQUIRE(lo < hi_exclusive, "empty integer range");
    return lo + static_cast<int>(
                    next_below(static_cast<std::uint64_t>(hi_exclusive - lo)));
  }

  [[nodiscard]] double next_double() {  // uniform in [0,1)
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace a2a
