// Collective lowering — reduce-scatter, all-gather and allreduce expressed
// as restricted all-to-all demand patterns, so every collective rides the
// existing LP / chunking / compile / validate / cache / serve pipeline.
//
// The lowering works over a per-partition size vector p (derived from the
// demand spec's row means; uniform spec => p == 1):
//   reduce-scatter : rank s ships partition d of its contribution to d,
//                    so D(s,d) = p_d  (column-constant pattern);
//   all-gather     : rank s owns reduced partition s and broadcasts it,
//                    so D(s,d) = p_s  (row-constant pattern);
//   allreduce      : reduce-scatter then all-gather over the same p — the
//                    two stages compose, and the single-schedule view the
//                    service serves is their overlaid traffic D_rs + D_ag
//                    (per-pair bytes of the full composed collective).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "collectives/demand.hpp"

namespace a2a {

enum class CollectiveKind : std::uint8_t {
  kAllToAll = 0,
  kReduceScatter = 1,
  kAllGather = 2,
  kAllReduce = 3,
};

/// Canonical short name (a2a | rs | ag | allreduce).
[[nodiscard]] const char* collective_name(CollectiveKind kind);
/// Accepts the canonical names plus the long aliases reduce-scatter /
/// all-gather / ar / alltoall. Throws InvalidArgument otherwise.
[[nodiscard]] CollectiveKind collective_from_name(std::string_view name);

/// What the caller wants synthesized: which collective, over which demand
/// shape. The default (uniform all-to-all) is the pre-existing behavior and
/// is elided from fingerprints and canonical queries.
struct WorkloadSpec {
  CollectiveKind collective = CollectiveKind::kAllToAll;
  DemandSpec demand;

  [[nodiscard]] bool is_default() const { return *this == WorkloadSpec{}; }
  /// "a2a/uniform", "rs/zipf:1.2", ... — used in notes and reports.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// One lowered stage: an all-to-all-shaped demand to synthesize a schedule
/// for. Stages of one plan execute in order (the all-gather of an allreduce
/// starts only after its reduce-scatter completes).
struct CollectiveStage {
  std::string name;
  DemandMatrix demand;
};

struct CollectivePlan {
  CollectiveKind kind = CollectiveKind::kAllToAll;
  std::vector<CollectiveStage> stages;

  /// False when no stage moves any bytes (n <= 1, or an all-zero demand).
  [[nodiscard]] bool has_traffic() const;
};

/// Lowers a collective over `num_terminals` ranks to its demand stages.
/// n <= 1 yields a plan with no stages — a one-rank collective is a no-op.
[[nodiscard]] CollectivePlan lower_collective(CollectiveKind kind,
                                             int num_terminals,
                                             const DemandSpec& demand = {});

/// The single demand matrix the Fig. 1 pipeline synthesizes for a workload:
/// the lone stage's demand for a2a / rs / ag, and the stage sum (overlaid
/// traffic) for allreduce.
[[nodiscard]] DemandMatrix effective_demand(const WorkloadSpec& workload,
                                            int num_terminals);

}  // namespace a2a
