// Demand matrices — the workload side of the MCF formulations.
//
// Every LP in src/mcf is stated over per-commodity demands d_{s,t}; until
// now the whole toolchain hard-wired d == 1 (uniform all-to-all). A
// DemandMatrix carries one non-negative weight per ordered terminal pair —
// weight w means commodity (s,d) ships w shards — and the named generators
// cover the ROADMAP's scenario-diversity workloads: Zipf rows for MoE
// hot-expert skew, permutations for shift/transpose traffic, block-diagonal
// for co-located tenants. Weight 1 everywhere must reproduce the uniform
// path bit-for-bit (the fuzz_demands golden check), so solvers take an
// optional `const DemandMatrix*` where nullptr means "unit demand" and a
// unit matrix builds the exact same models.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mcf/concurrent_flow.hpp"

namespace a2a {

/// Dense n x n matrix of per-commodity demand weights, indexed by terminal
/// index (not node id — on augmented graphs the terminals are the hosts).
/// The diagonal is identically zero.
class DemandMatrix {
 public:
  DemandMatrix() = default;
  explicit DemandMatrix(int num_terminals, double fill = 0.0);

  /// All off-diagonal weights 1 — the classic all-to-all.
  [[nodiscard]] static DemandMatrix uniform(int num_terminals);
  /// Zipf-skewed rows: source r sends with weight proportional to
  /// (r+1)^-s, normalized so the mean row weight is 1 (total demand equals
  /// uniform's). s == 0 is exactly uniform — the generators agree bit-wise.
  [[nodiscard]] static DemandMatrix zipf(int num_terminals, double s);
  /// One unit-weight commodity per source: i -> (i + 1 + seed mod (n-1))
  /// mod n. A fixed cyclic shift, so every row and column has exactly one
  /// positive entry and n(n-1) - n commodities are degenerate zeros.
  [[nodiscard]] static DemandMatrix permutation(int num_terminals,
                                               std::uint64_t seed = 0);
  /// Contiguous tenant blocks: weight 1 inside a block, 0 across blocks.
  [[nodiscard]] static DemandMatrix block_diagonal(int num_terminals,
                                                   int blocks);

  [[nodiscard]] int num_terminals() const { return n_; }
  [[nodiscard]] double at(int si, int di) const {
    return weights_[static_cast<std::size_t>(si) * static_cast<std::size_t>(n_) +
                    static_cast<std::size_t>(di)];
  }
  void set(int si, int di, double w);

  /// True when every off-diagonal weight is exactly 1.0.
  [[nodiscard]] bool is_uniform_unit() const;
  /// Sum of all weights.
  [[nodiscard]] double total() const;
  /// Commodities with positive weight.
  [[nodiscard]] int num_positive() const;
  [[nodiscard]] double row_sum(int si) const;
  [[nodiscard]] double col_sum(int di) const;

  /// Sparse view: (si, di, weight) of every positive entry.
  struct Entry {
    int src = 0;
    int dst = 0;
    double weight = 0.0;
  };
  [[nodiscard]] std::vector<Entry> positive_entries() const;

 private:
  int n_ = 0;
  std::vector<double> weights_;  ///< row-major n x n, diagonal 0.
};

/// Weight of commodity `k` (in `pairs`'s indexing) under `demand`;
/// nullptr means unit demand. The one lookup every generalized model
/// builder goes through.
[[nodiscard]] inline double demand_weight(const DemandMatrix* demand,
                                          const TerminalPairs& pairs, int k) {
  if (demand == nullptr) return 1.0;
  const auto [si, di] = pairs.terminal_indices(k);
  return demand->at(si, di);
}

/// Parseable description of a demand matrix, sized at instantiation time —
/// what travels through ToolchainOptions, fingerprints, query strings and
/// CLI flags. Grammar: "uniform" | "zipf:<s>" | "perm[:<seed>]" |
/// "block:<k>".
struct DemandSpec {
  enum class Kind : std::uint8_t {
    kUniform = 0,
    kZipf = 1,
    kPermutation = 2,
    kBlockDiagonal = 3,
  };
  Kind kind = Kind::kUniform;
  double zipf_s = 0.0;
  std::uint64_t seed = 0;
  int blocks = 2;

  /// Throws InvalidArgument on malformed specs (the service maps it to 400).
  [[nodiscard]] static DemandSpec parse(std::string_view spec);
  /// Canonical spelling; parse(to_string()) round-trips.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] DemandMatrix instantiate(int num_terminals) const;
  [[nodiscard]] bool is_default() const { return *this == DemandSpec{}; }

  friend bool operator==(const DemandSpec&, const DemandSpec&) = default;
};

}  // namespace a2a
