#include "collectives/demand.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace a2a {

DemandMatrix::DemandMatrix(int num_terminals, double fill) : n_(num_terminals) {
  A2A_REQUIRE(num_terminals >= 0, "negative terminal count");
  A2A_REQUIRE(fill >= 0.0, "negative demand weight");
  weights_.assign(
      static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), fill);
  for (int i = 0; i < n_; ++i) set(i, i, 0.0);
}

void DemandMatrix::set(int si, int di, double w) {
  A2A_REQUIRE(si >= 0 && si < n_ && di >= 0 && di < n_,
              "demand index out of range");
  A2A_REQUIRE(w >= 0.0 && std::isfinite(w), "demand weight must be >= 0");
  A2A_REQUIRE(si != di || w == 0.0, "diagonal demand must be zero");
  weights_[static_cast<std::size_t>(si) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(di)] = w;
}

DemandMatrix DemandMatrix::uniform(int num_terminals) {
  return DemandMatrix(num_terminals, 1.0);
}

DemandMatrix DemandMatrix::zipf(int num_terminals, double s) {
  A2A_REQUIRE(s >= 0.0 && std::isfinite(s), "zipf exponent must be >= 0");
  // s == 0 must reproduce uniform() exactly (every z_r == 1, so the
  // normalization below is 1.0 bit-for-bit); go through the same path.
  DemandMatrix m(num_terminals, 0.0);
  const int n = num_terminals;
  if (n <= 1) return m;
  std::vector<double> z(static_cast<std::size_t>(n));
  double sum = 0.0;
  for (int r = 0; r < n; ++r) {
    z[static_cast<std::size_t>(r)] = std::pow(static_cast<double>(r + 1), -s);
    sum += z[static_cast<std::size_t>(r)];
  }
  for (int r = 0; r < n; ++r) {
    const double w = z[static_cast<std::size_t>(r)] *
                     (static_cast<double>(n) / sum);
    for (int d = 0; d < n; ++d) {
      if (d == r) continue;
      m.set(r, d, w);
    }
  }
  return m;
}

DemandMatrix DemandMatrix::permutation(int num_terminals, std::uint64_t seed) {
  DemandMatrix m(num_terminals, 0.0);
  const int n = num_terminals;
  if (n <= 1) return m;
  const int shift =
      1 + static_cast<int>(seed % static_cast<std::uint64_t>(n - 1));
  for (int i = 0; i < n; ++i) m.set(i, (i + shift) % n, 1.0);
  return m;
}

DemandMatrix DemandMatrix::block_diagonal(int num_terminals, int blocks) {
  A2A_REQUIRE(blocks >= 1, "need >= 1 tenant block");
  DemandMatrix m(num_terminals, 0.0);
  const int n = num_terminals;
  if (n <= 1) return m;
  const int b = std::min(blocks, n);
  // Contiguous blocks of size ceil/floor(n/b).
  for (int i = 0; i < n; ++i) {
    const int bi = i * b / n;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      if (j * b / n == bi) m.set(i, j, 1.0);
    }
  }
  return m;
}

bool DemandMatrix::is_uniform_unit() const {
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (i == j) continue;
      if (at(i, j) != 1.0) return false;
    }
  }
  return n_ >= 2;
}

double DemandMatrix::total() const {
  double t = 0.0;
  for (const double w : weights_) t += w;
  return t;
}

int DemandMatrix::num_positive() const {
  int count = 0;
  for (const double w : weights_) count += w > 0.0 ? 1 : 0;
  return count;
}

double DemandMatrix::row_sum(int si) const {
  double t = 0.0;
  for (int j = 0; j < n_; ++j) t += at(si, j);
  return t;
}

double DemandMatrix::col_sum(int di) const {
  double t = 0.0;
  for (int i = 0; i < n_; ++i) t += at(i, di);
  return t;
}

std::vector<DemandMatrix::Entry> DemandMatrix::positive_entries() const {
  std::vector<Entry> out;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      const double w = at(i, j);
      if (w > 0.0) out.push_back(Entry{i, j, w});
    }
  }
  return out;
}

DemandSpec DemandSpec::parse(std::string_view spec) {
  DemandSpec out;
  const std::size_t colon = spec.find(':');
  const std::string_view head = spec.substr(0, colon);
  const std::string_view arg =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);
  const auto parse_number = [&](const char* what) -> double {
    try {
      std::size_t used = 0;
      const double v = std::stod(std::string(arg), &used);
      A2A_REQUIRE(used == arg.size() && std::isfinite(v), "trailing junk");
      return v;
    } catch (const std::exception&) {
      throw InvalidArgument("bad " + std::string(what) + " in demand spec '" +
                            std::string(spec) + "'");
    }
  };
  if (head == "uniform") {
    A2A_REQUIRE(colon == std::string_view::npos,
                "demand spec 'uniform' takes no argument");
    out.kind = Kind::kUniform;
  } else if (head == "zipf") {
    if (colon == std::string_view::npos) {
      throw InvalidArgument("demand spec 'zipf' needs an exponent: zipf:<s>");
    }
    const double s = parse_number("zipf exponent");
    if (s < 0.0 || s > 8.0) {
      throw InvalidArgument("zipf exponent out of range [0, 8]: " +
                            std::string(arg));
    }
    out.kind = Kind::kZipf;
    out.zipf_s = s;
  } else if (head == "perm") {
    out.kind = Kind::kPermutation;
    if (colon != std::string_view::npos) {
      const double seed = parse_number("permutation seed");
      if (seed < 0.0) {
        throw InvalidArgument("permutation seed must be >= 0");
      }
      out.seed = static_cast<std::uint64_t>(seed);
    }
  } else if (head == "block") {
    if (colon == std::string_view::npos) {
      throw InvalidArgument("demand spec 'block' needs a count: block:<k>");
    }
    const double blocks = parse_number("block count");
    if (blocks < 1.0 || blocks > 1e6 ||
        blocks != std::floor(blocks)) {
      throw InvalidArgument("block count must be a positive integer: " +
                            std::string(arg));
    }
    out.kind = Kind::kBlockDiagonal;
    out.blocks = static_cast<int>(blocks);
  } else {
    throw InvalidArgument("unknown demand spec: " + std::string(spec));
  }
  return out;
}

std::string DemandSpec::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kUniform:
      os << "uniform";
      break;
    case Kind::kZipf:
      os << "zipf:" << zipf_s;
      break;
    case Kind::kPermutation:
      os << "perm";
      if (seed != 0) os << ':' << seed;
      break;
    case Kind::kBlockDiagonal:
      os << "block:" << blocks;
      break;
  }
  return os.str();
}

DemandMatrix DemandSpec::instantiate(int num_terminals) const {
  switch (kind) {
    case Kind::kUniform:
      return DemandMatrix::uniform(num_terminals);
    case Kind::kZipf:
      return DemandMatrix::zipf(num_terminals, zipf_s);
    case Kind::kPermutation:
      return DemandMatrix::permutation(num_terminals, seed);
    case Kind::kBlockDiagonal:
      return DemandMatrix::block_diagonal(num_terminals, blocks);
  }
  throw InvalidArgument("corrupt demand spec kind");
}

}  // namespace a2a
