#include "collectives/collective.hpp"

#include "common/error.hpp"

namespace a2a {

namespace {

/// Per-partition sizes from the spec's row means: for a row-skewed spec
/// (zipf) p_r equals the row weight exactly; for uniform p == 1.
std::vector<double> partition_sizes(const DemandMatrix& m) {
  const int n = m.num_terminals();
  std::vector<double> p(static_cast<std::size_t>(n), 0.0);
  if (n <= 1) return p;
  for (int r = 0; r < n; ++r) {
    p[static_cast<std::size_t>(r)] = m.row_sum(r) / static_cast<double>(n - 1);
  }
  return p;
}

DemandMatrix column_pattern(const std::vector<double>& p) {
  const int n = static_cast<int>(p.size());
  DemandMatrix m(n, 0.0);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      m.set(s, d, p[static_cast<std::size_t>(d)]);
    }
  }
  return m;
}

DemandMatrix row_pattern(const std::vector<double>& p) {
  const int n = static_cast<int>(p.size());
  DemandMatrix m(n, 0.0);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      m.set(s, d, p[static_cast<std::size_t>(s)]);
    }
  }
  return m;
}

}  // namespace

const char* collective_name(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllToAll:
      return "a2a";
    case CollectiveKind::kReduceScatter:
      return "rs";
    case CollectiveKind::kAllGather:
      return "ag";
    case CollectiveKind::kAllReduce:
      return "allreduce";
  }
  return "a2a";
}

CollectiveKind collective_from_name(std::string_view name) {
  if (name == "a2a" || name == "alltoall") return CollectiveKind::kAllToAll;
  if (name == "rs" || name == "reduce-scatter") {
    return CollectiveKind::kReduceScatter;
  }
  if (name == "ag" || name == "all-gather") return CollectiveKind::kAllGather;
  if (name == "allreduce" || name == "ar") return CollectiveKind::kAllReduce;
  throw InvalidArgument("unknown collective: " + std::string(name));
}

std::string WorkloadSpec::to_string() const {
  return std::string(collective_name(collective)) + "/" + demand.to_string();
}

bool CollectivePlan::has_traffic() const {
  for (const CollectiveStage& stage : stages) {
    if (stage.demand.num_positive() > 0) return true;
  }
  return false;
}

CollectivePlan lower_collective(CollectiveKind kind, int num_terminals,
                                const DemandSpec& demand) {
  A2A_REQUIRE(num_terminals >= 0, "negative terminal count");
  CollectivePlan plan;
  plan.kind = kind;
  if (num_terminals <= 1) return plan;  // nothing to communicate
  const DemandMatrix base = demand.instantiate(num_terminals);
  switch (kind) {
    case CollectiveKind::kAllToAll:
      plan.stages.push_back(CollectiveStage{"a2a", base});
      break;
    case CollectiveKind::kReduceScatter:
      plan.stages.push_back(
          CollectiveStage{"reduce-scatter", column_pattern(partition_sizes(base))});
      break;
    case CollectiveKind::kAllGather:
      plan.stages.push_back(
          CollectiveStage{"all-gather", row_pattern(partition_sizes(base))});
      break;
    case CollectiveKind::kAllReduce: {
      const std::vector<double> p = partition_sizes(base);
      plan.stages.push_back(CollectiveStage{"reduce-scatter", column_pattern(p)});
      plan.stages.push_back(CollectiveStage{"all-gather", row_pattern(p)});
      break;
    }
  }
  return plan;
}

DemandMatrix effective_demand(const WorkloadSpec& workload, int num_terminals) {
  const CollectivePlan plan =
      lower_collective(workload.collective, num_terminals, workload.demand);
  DemandMatrix out(num_terminals, 0.0);
  for (const CollectiveStage& stage : plan.stages) {
    for (int s = 0; s < num_terminals; ++s) {
      for (int d = 0; d < num_terminals; ++d) {
        if (s == d) continue;
        const double w = out.at(s, d) + stage.demand.at(s, d);
        out.set(s, d, w);
      }
    }
  }
  return out;
}

}  // namespace a2a
