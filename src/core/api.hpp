// Top-level toolchain API — the Fig. 1 decision flow.
//
// generate_schedule(topology, fabric) produces a ready-to-lower all-to-all
// schedule:
//   * no NIC forwarding            -> link-based schedule (tsMCF semantics):
//       - host-to-NIC bottleneck?  -> Fig. 2 augmentation first
//       - small fabric             -> exact tsMCF LP
//       - otherwise                -> decomposed rate MCF + pipelined unroll
//   * NIC forwarding, low path diversity  -> pMCF on disjoint paths
//   * NIC forwarding, high path diversity -> decomposed MCF + widest-path
//     extraction (MCF-extP), with LASH-sequential VC layers assigned.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "collectives/collective.hpp"
#include "graph/digraph.hpp"
#include "mcf/decomposed.hpp"
#include "runtime/fabric.hpp"
#include "schedule/chunking.hpp"
#include "schedule/schedule.hpp"

namespace a2a {

class ScheduleCache;

enum class ScheduleKind { kLinkTsMcf, kLinkUnrolled, kPathPMcf, kPathExtracted };

struct ToolchainOptions {
  /// Max nodes for which the exact tsMCF LP is attempted. Raised from 10
  /// when the sparse revised simplex replaced the dense solver: GenKautz
  /// N=14 (d=4) tsMCF now solves in ~4s where the dense solver needed that
  /// for N=10 (see BENCH_lp.json).
  int exact_tsmcf_limit = 14;
  /// Fig. 1 "#(s,d) paths large?" threshold: bounded-length path count per
  /// pair above which pMCF is abandoned for MCF-extP.
  long long path_diversity_threshold = 512;
  DecomposedOptions mcf;
  /// §4 chunking for the generated schedule. The default grid (1/24 of a
  /// shard) caps chunks-per-shard — and hence QPs (§5.5) — at counts real
  /// fabrics tolerate, at ≲2% weight-rounding cost; raise max_denominator
  /// for finer fidelity.
  ChunkingOptions chunking{.max_denominator = 24, .min_fraction = 1e-3};
  int vc_max_layers_warn = 4;
  /// Which collective over which demand shape to synthesize. The default
  /// (uniform all-to-all) is the historical behavior; it is elided from
  /// fingerprints so pre-existing cache entries stay valid.
  WorkloadSpec workload{};
};

struct GeneratedSchedule {
  ScheduleKind kind = ScheduleKind::kLinkUnrolled;
  std::optional<LinkSchedule> link;
  std::optional<PathSchedule> path;
  /// The concurrent rate F the schedule was built for; (N-1)*F*b is the
  /// throughput upper bound of §5.2.
  double concurrent_flow = 0.0;
  /// VC layers used (path schedules only).
  int vc_layers = 0;
  /// Terminal ranks (hosts when the Fig. 2 augmentation was applied).
  std::vector<NodeId> terminals;
  /// The graph the schedule addresses (the augmented graph when applicable).
  DiGraph schedule_graph;
  std::string notes;
  /// True when the result was served from a ScheduleCache tier instead of
  /// the LP/MCF pipeline.
  bool from_cache = false;
};

/// End-to-end schedule generation per Fig. 1.
[[nodiscard]] GeneratedSchedule generate_schedule(const DiGraph& topology,
                                                  const Fabric& fabric,
                                                  const ToolchainOptions& options = {});

/// The synthesis half of the fingerprint-first split the service layers
/// build on: runs the Fig. 1 pipeline unconditionally, never consulting a
/// cache. generate_schedule(topology, fabric, options) is this function;
/// the name exists so call sites that already hold a fingerprint (the
/// ScheduleBroker's coalesced miss path) say what they mean.
[[nodiscard]] GeneratedSchedule synthesize_schedule(const DiGraph& topology,
                                                    const Fabric& fabric,
                                                    const ToolchainOptions& options = {});

/// The lookup half: cached schedule for an already-computed fingerprint, or
/// nullopt on miss (or null cache). Decoded-value tier semantics — the
/// zero-copy byte path is ScheduleCache::lookup_artifact().
[[nodiscard]] std::optional<GeneratedSchedule> lookup_schedule(
    ScheduleCache* cache, const std::string& fingerprint);

/// Cache-aware variant, now a thin composition of the fingerprint-first
/// split: schedule_fingerprint() -> lookup_schedule() -> on miss,
/// synthesize_schedule() + ScheduleCache::insert(). With a null cache this
/// is identical to the three-argument overload.
[[nodiscard]] GeneratedSchedule generate_schedule(const DiGraph& topology,
                                                  const Fabric& fabric,
                                                  const ToolchainOptions& options,
                                                  ScheduleCache* cache);

/// Number of times the LP/MCF pipeline actually ran in this process (cache
/// hits do not count). Monotone; used by tests to assert cache bypass.
[[nodiscard]] std::uint64_t pipeline_invocations();

/// Estimates whether the topology's path diversity is "large" (Fig. 1):
/// maximum bounded-length path count over a sample of pairs.
[[nodiscard]] long long estimate_path_diversity(const DiGraph& g, int samples = 16);

}  // namespace a2a
