// Schedule cache — memoizes generate_schedule() results.
//
// Compiling a schedule runs the LP/MCF pipeline, which is seconds-to-minutes
// at Fig. 10 scale; at production scale the same (topology, fabric, options)
// triple is requested over and over by many consumers. The cache keys
// results by a fingerprint of the request's canonical form and serves them
// from two tiers:
//
//   * an in-memory LRU of decoded GeneratedSchedule values, evicted by a
//     decoded-size byte budget (schedules vary by 1000x in size; counting
//     entries lets a handful of Fig. 10 monsters blow the heap), and
//   * an optional on-disk tier of SchedBin-based entry files, so a fleet of
//     processes (or a restarted one) shares compiled artifacts. Disk
//     entries are content-addressed: the artifact file is keyed by a hash
//     of its payload and request fingerprints are small ref files pointing
//     at it, so identical schedules produced under different pipeline
//     invocations (or different request options that happen to compile to
//     the same schedule) share one artifact. A file-size byte budget
//     garbage-collects the oldest artifacts and their refs.
//
// All operations are thread-safe; hit/miss counters expose the behaviour to
// tests and monitoring.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/mmap_file.hpp"
#include "container/schedbin.hpp"
#include "core/api.hpp"

namespace a2a {

struct ScheduleCacheOptions {
  /// Byte budget for the in-memory LRU tier, accounted in decoded schedule
  /// size (see schedule_memory_bytes). 0 disables the memory tier: every
  /// lookup goes to the disk tier (when configured) and nothing is retained
  /// in memory — useful for memory-constrained fleets sharing a disk cache.
  /// An entry larger than the whole budget is never admitted.
  std::size_t max_memory_bytes = 256ULL << 20;
  /// Directory for the on-disk tier ("" disables it). Created on first use;
  /// holds `objects/` (content-addressed artifacts) and `refs/`
  /// (fingerprint -> artifact pointers).
  std::string disk_dir;
  /// Byte budget for the disk tier, accounted in artifact file size
  /// (content-addressed objects AND pre-v2 flat entry files both count).
  /// 0 = unbounded (the disk tier is enabled/disabled by disk_dir alone).
  /// When exceeded after a write, the oldest artifacts and every ref
  /// pointing at them are garbage-collected; an artifact alone larger than
  /// the whole budget is never written.
  std::size_t max_disk_bytes = 0;
  /// Container settings for on-disk entries.
  SchedBinOptions schedbin;
};

struct ScheduleCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t disk_writes = 0;
  /// Inserts whose artifact already existed on disk under another
  /// fingerprint (content-addressed sharing), so no bytes were written.
  std::uint64_t disk_dedups = 0;
  std::uint64_t memory_evictions = 0;
  /// Artifacts removed by the disk byte-budget GC.
  std::uint64_t disk_evictions = 0;
  /// Inserts skipped because the artifact alone exceeds max_disk_bytes
  /// (writing it would be evicted right back — pure churn).
  std::uint64_t disk_oversize_rejections = 0;
  /// Disk artifacts that failed to decode on lookup (truncated write,
  /// bit-rot, foreign bytes). Each is moved into `<disk_dir>/quarantine/`
  /// — preserved for forensics, never served again — its ref dropped, and
  /// the lookup degrades to a miss so the caller re-synthesizes.
  std::uint64_t disk_corrupt = 0;

  [[nodiscard]] std::uint64_t hits() const { return memory_hits + disk_hits; }
};

/// Deterministic estimate of the resident bytes of a decoded schedule
/// (vectors' elements, notes, graph adjacency). This is what the memory
/// tier's byte budget accounts, exposed so callers can size budgets.
[[nodiscard]] std::size_t schedule_memory_bytes(const GeneratedSchedule& s);

/// Fingerprint of a generate_schedule() request: a 128-bit hash (32 hex
/// chars) over the topology's canonical form (node count + sorted edge list
/// with capacities), every fabric field, and every semantically relevant
/// ToolchainOptions field. Thread counts are excluded — they change wall
/// time, not the schedule.
[[nodiscard]] std::string schedule_fingerprint(const DiGraph& topology,
                                               const Fabric& fabric,
                                               const ToolchainOptions& options);

/// A served schedule artifact in its on-disk envelope form, without any
/// decode: the envelope header fields plus the byte range of the inner
/// SchedBin frame. The bytes live either in an mmap'd disk object
/// (`mapping`) or a heap buffer (`bytes`) — exactly one owner is set and
/// `envelope` views into it. This is the zero-copy serving currency of the
/// schedule service: a transport can write schedbin() straight from the
/// page cache to a socket, and the client's SchedBinReader decodes chunks
/// on demand with per-chunk CRCs.
struct ArtifactView {
  std::shared_ptr<const MmapFile> mapping;     ///< disk-tier hits.
  std::shared_ptr<const std::string> bytes;    ///< freshly serialized results.
  std::string_view envelope;                   ///< the whole SBCE envelope.
  std::size_t blob_offset = 0;                 ///< inner SchedBin frame start.
  std::size_t blob_size = 0;
  ScheduleKind kind = ScheduleKind::kLinkUnrolled;
  double concurrent_flow = 0.0;
  int vc_layers = 0;

  [[nodiscard]] std::string_view schedbin() const {
    return envelope.substr(blob_offset, blob_size);
  }
  [[nodiscard]] bool valid() const { return !envelope.empty(); }
};

/// Parses an envelope's metadata fields and locates the inner SchedBin
/// frame WITHOUT decoding the schedule and without the whole-envelope CRC
/// sweep (which would fault every mmap'd page — the opposite of zero-copy).
/// Structural lies (truncated sections, lengths past the end) still throw;
/// payload integrity is the inner frame's job: callers validate its
/// header/trailer CRCs via SchedBinReader and every chunk carries its own
/// CRC-32 checked at decode time. `mapping`/`bytes` of the result are left
/// null — the caller owns the envelope's storage.
[[nodiscard]] ArtifactView parse_schedule_envelope(std::string_view envelope);

class ScheduleCache {
 public:
  explicit ScheduleCache(ScheduleCacheOptions options = {});

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  /// Returns the cached schedule for `fingerprint`, checking memory then
  /// disk. A disk hit is promoted into the memory tier.
  [[nodiscard]] std::optional<GeneratedSchedule> lookup(
      const std::string& fingerprint);

  /// Zero-copy lookup: resolves `fingerprint` to its disk artifact, mmaps
  /// it, validates the inner SchedBin frame's header/trailer (a few pages,
  /// not the whole file) and returns the view — the decoded memory tier is
  /// neither consulted nor populated, so the hot serving path never pays a
  /// decode. A corrupt artifact is quarantined exactly as in lookup() and
  /// the call degrades to a miss. Counts into the same lookup/hit/miss
  /// stats as lookup(). Always a miss when the disk tier is disabled.
  [[nodiscard]] std::optional<ArtifactView> lookup_artifact(
      const std::string& fingerprint);

  /// Stores `schedule` in the memory tier (evicting LRU entries past the
  /// byte budget) and, when a disk_dir is configured, writes (or dedups
  /// against) the content-addressed artifact and its ref file. Returns the
  /// serialized envelope so callers that serve bytes (the ScheduleBroker)
  /// reuse the exact artifact written instead of re-encoding.
  std::shared_ptr<const std::string> insert(const std::string& fingerprint,
                                            const GeneratedSchedule& schedule);

  [[nodiscard]] ScheduleCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  /// Decoded bytes currently held by the memory tier.
  [[nodiscard]] std::size_t memory_bytes() const;
  void clear();  ///< drops the memory tier only; disk entries persist.

  /// Path of the disk artifact a fingerprint currently resolves to (""
  /// when the disk tier is disabled or the fingerprint has no entry).
  [[nodiscard]] std::string entry_path(const std::string& fingerprint) const;
  /// Artifact files the disk tier currently holds (content-addressed
  /// objects plus pre-v2 flat entries) and their total size. Exposed for
  /// tests and monitoring.
  [[nodiscard]] std::size_t disk_object_count() const;
  [[nodiscard]] std::size_t disk_bytes() const;

 private:
  void touch_locked(const std::string& fingerprint);
  void insert_memory_locked(const std::string& fingerprint,
                            const GeneratedSchedule& schedule);
  void evict_over_budget_locked();
  void gc_disk();  ///< enforces max_disk_bytes; caller holds disk_mutex_.

  ScheduleCacheOptions options_;
  mutable std::mutex mutex_;
  /// MRU-first list of fingerprints plus value map (classic LRU pairing).
  std::list<std::string> lru_;
  struct Entry {
    GeneratedSchedule schedule;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> entries_;
  std::size_t memory_bytes_ = 0;
  ScheduleCacheStats stats_;
  /// Serializes disk writes + GC + directory scans (artifact reads stay
  /// lock-free; a read racing a GC deletion degrades to a miss). mutable:
  /// the const observers disk_object_count()/disk_bytes() scan under it —
  /// unprotected they would race a concurrent GC's renames and count
  /// vanished files as size -1.
  mutable std::mutex disk_mutex_;
  /// Running artifact-byte total, seeded by one scan on the first
  /// budgeted insert and maintained incrementally so inserts do not pay an
  /// O(artifacts) directory walk while under budget. Other processes'
  /// writes drift it low; every GC pass rescans and corrects. Guarded by
  /// disk_mutex_. -1 = not yet seeded.
  std::int64_t disk_total_ = -1;
};

/// Serializes a GeneratedSchedule to the cache's disk-entry envelope: a
/// small metadata block (kind, flow, VC layers, terminals, schedule graph,
/// notes) wrapping the SchedBin blob of the schedule, CRC-32 guarded.
/// Exposed for tests and offline tooling.
[[nodiscard]] std::string generated_schedule_to_bytes(
    const GeneratedSchedule& schedule, const SchedBinOptions& options = {});
[[nodiscard]] GeneratedSchedule generated_schedule_from_bytes(
    std::string_view bytes);

/// Content key of an artifact's bytes (32 hex chars), the basename of its
/// object file in the disk tier. Exposed for tests.
[[nodiscard]] std::string schedule_content_key(std::string_view bytes);

}  // namespace a2a
