// Schedule cache — memoizes generate_schedule() results.
//
// Compiling a schedule runs the LP/MCF pipeline, which is seconds-to-minutes
// at Fig. 10 scale; at production scale the same (topology, fabric, options)
// triple is requested over and over by many consumers. The cache keys
// results by a fingerprint of the request's canonical form and serves them
// from two tiers:
//
//   * an in-memory LRU of decoded GeneratedSchedule values, and
//   * an optional on-disk tier of SchedBin-based entry files, so a fleet of
//     processes (or a restarted one) shares compiled artifacts.
//
// All operations are thread-safe; hit/miss counters expose the behaviour to
// tests and monitoring.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "container/schedbin.hpp"
#include "core/api.hpp"

namespace a2a {

struct ScheduleCacheOptions {
  /// Capacity of the in-memory LRU tier. 0 disables the memory tier: every
  /// lookup goes to the disk tier (when configured) and nothing is retained
  /// in memory — useful for memory-constrained fleets sharing a disk cache.
  std::size_t max_entries = 64;
  /// Directory for the on-disk tier ("" disables it). Created on first use.
  std::string disk_dir;
  /// Container settings for on-disk entries.
  SchedBinOptions schedbin;
};

struct ScheduleCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t disk_writes = 0;

  [[nodiscard]] std::uint64_t hits() const { return memory_hits + disk_hits; }
};

/// Fingerprint of a generate_schedule() request: a 128-bit hash (32 hex
/// chars) over the topology's canonical form (node count + sorted edge list
/// with capacities), every fabric field, and every semantically relevant
/// ToolchainOptions field. Thread counts are excluded — they change wall
/// time, not the schedule.
[[nodiscard]] std::string schedule_fingerprint(const DiGraph& topology,
                                               const Fabric& fabric,
                                               const ToolchainOptions& options);

class ScheduleCache {
 public:
  explicit ScheduleCache(ScheduleCacheOptions options = {});

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  /// Returns the cached schedule for `fingerprint`, checking memory then
  /// disk. A disk hit is promoted into the memory tier.
  [[nodiscard]] std::optional<GeneratedSchedule> lookup(
      const std::string& fingerprint);

  /// Stores `schedule` in the memory tier (evicting LRU entries past
  /// capacity) and, when a disk_dir is configured, writes the entry file.
  void insert(const std::string& fingerprint, const GeneratedSchedule& schedule);

  [[nodiscard]] ScheduleCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();  ///< drops the memory tier only; disk entries persist.

  /// Path of the disk entry for a fingerprint ("" when disk tier disabled).
  [[nodiscard]] std::string entry_path(const std::string& fingerprint) const;

 private:
  void touch_locked(const std::string& fingerprint);
  void insert_memory_locked(const std::string& fingerprint,
                            const GeneratedSchedule& schedule);

  ScheduleCacheOptions options_;
  mutable std::mutex mutex_;
  /// MRU-first list of fingerprints plus value map (classic LRU pairing).
  std::list<std::string> lru_;
  struct Entry {
    GeneratedSchedule schedule;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> entries_;
  ScheduleCacheStats stats_;
};

/// Serializes a GeneratedSchedule to the cache's disk-entry envelope: a
/// small metadata block (kind, flow, VC layers, terminals, schedule graph,
/// notes) wrapping the SchedBin blob of the schedule, CRC-32 guarded.
/// Exposed for tests and offline tooling.
[[nodiscard]] std::string generated_schedule_to_bytes(
    const GeneratedSchedule& schedule, const SchedBinOptions& options = {});
[[nodiscard]] GeneratedSchedule generated_schedule_from_bytes(
    std::string_view bytes);

}  // namespace a2a
