#include "core/api.hpp"

#include <algorithm>
#include <atomic>

#include "core/schedule_cache.hpp"
#include "graph/algorithms.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "graph/augment.hpp"
#include "mcf/path_mcf.hpp"
#include "mcf/timestepped.hpp"
#include "runtime/vc.hpp"
#include "schedule/compile_link.hpp"
#include "schedule/compile_path.hpp"

namespace a2a {

namespace {
std::atomic<std::uint64_t> g_pipeline_invocations{0};
}  // namespace

std::uint64_t pipeline_invocations() {
  return g_pipeline_invocations.load(std::memory_order_relaxed);
}

long long estimate_path_diversity(const DiGraph& g, int samples) {
  const int lmax = diameter(g) + 2;
  constexpr long long kCap = 1'000'000;
  long long worst = 0;
  const int n = g.num_nodes();
  for (int i = 0; i < samples; ++i) {
    // Deterministic stratified sample of (s, d) pairs.
    const NodeId s = static_cast<NodeId>((static_cast<long long>(i) * 2654435761LL) % n);
    const NodeId d = static_cast<NodeId>((static_cast<long long>(i) * 40503LL + n / 2) % n);
    if (s == d) continue;
    worst = std::max(worst, count_bounded_paths(g, s, d, lmax, kCap));
    if (worst >= kCap) break;
  }
  return worst;
}

std::optional<GeneratedSchedule> lookup_schedule(ScheduleCache* cache,
                                                 const std::string& fingerprint) {
  if (cache == nullptr) return std::nullopt;
  auto cached = cache->lookup(fingerprint);
  if (cached.has_value()) cached->from_cache = true;
  return cached;
}

GeneratedSchedule generate_schedule(const DiGraph& topology,
                                    const Fabric& fabric,
                                    const ToolchainOptions& options,
                                    ScheduleCache* cache) {
  if (cache == nullptr) return synthesize_schedule(topology, fabric, options);
  const std::string fingerprint =
      schedule_fingerprint(topology, fabric, options);
  if (auto cached = lookup_schedule(cache, fingerprint)) {
    return std::move(*cached);
  }
  GeneratedSchedule result = synthesize_schedule(topology, fabric, options);
  cache->insert(fingerprint, result);
  return result;
}

GeneratedSchedule generate_schedule(const DiGraph& topology,
                                    const Fabric& fabric,
                                    const ToolchainOptions& options) {
  return synthesize_schedule(topology, fabric, options);
}

GeneratedSchedule synthesize_schedule(const DiGraph& topology,
                                      const Fabric& fabric,
                                      const ToolchainOptions& options) {
  g_pipeline_invocations.fetch_add(1, std::memory_order_relaxed);
  A2A_COUNTER("pipeline.runs").inc();
  // The decision-flow annotations on this span record which Fig. 1 branch
  // ran and why, so a trace answers "what did the toolchain decide" without
  // reading this function.
  obs::TraceSpan pipeline_span("pipeline.generate_schedule");
  GeneratedSchedule out;
  const int n = topology.num_nodes();
  const int degree = topology.max_out_degree();
  const double nic_bw = degree * fabric.link_GBps;

  // Non-default workloads lower to a demand matrix over the branch's
  // terminal set (the hosts after augmentation); the default stays on the
  // nullptr fast path so the uniform pipeline is untouched byte-for-byte.
  std::optional<DemandMatrix> demand_storage;
  const auto resolve_demand =
      [&](const std::vector<NodeId>& term) -> const DemandMatrix* {
    if (options.workload.is_default()) return nullptr;
    demand_storage =
        effective_demand(options.workload, static_cast<int>(term.size()));
    if (demand_storage->total() <= 0.0) {
      throw InvalidArgument("workload " + options.workload.to_string() +
                            " lowers to an all-zero demand matrix");
    }
    out.notes += "workload " + options.workload.to_string() + "; ";
    pipeline_span.annotate("workload=" + options.workload.to_string());
    return &*demand_storage;
  };

  if (!fabric.nic_forwarding) {
    // Link-based branch. Model the host bottleneck if injection < d*b.
    pipeline_span.annotate("branch=link (NICs cannot forward)");
    DiGraph graph = topology;
    std::vector<NodeId> terminals = all_nodes(topology);
    if (fabric.injection_GBps < nic_bw) {
      obs::TraceSpan augment_span(
          "stage.augment", "host-bottleneck: injection_GBps < degree*link_GBps");
      const AugmentedGraph aug = augment_host_bottleneck(
          topology, fabric.injection_GBps / fabric.link_GBps);
      graph = aug.graph;
      terminals.resize(static_cast<std::size_t>(aug.num_hosts));
      out.notes += "host-bottleneck augmentation applied; ";
    }
    const DemandMatrix* demand = resolve_demand(terminals);
    if (n <= options.exact_tsmcf_limit) {
      pipeline_span.annotate("solver=exact tsMCF (n <= exact_tsmcf_limit)");
      const int steps = diameter(graph) + 1;
      const TsMcfSolution ts = [&] {
        A2A_TRACE_SPAN("stage.solve", "exact tsMCF LP, " +
                                          std::to_string(steps) + " steps");
        return solve_tsmcf_exact(graph, steps, terminals, options.mcf.lp,
                                 nullptr, LpWarmMode::kAuto, demand);
      }();
      out.kind = ScheduleKind::kLinkTsMcf;
      out.link = [&] {
        A2A_TRACE_SPAN("stage.compile", "tsMCF link schedule");
        return compile_tsmcf_schedule(graph, ts, options.chunking, demand);
      }();
      out.concurrent_flow = 1.0 / ts.total_utilization;
      out.notes += "exact tsMCF LP";
    } else {
      pipeline_span.annotate("solver=decomposed MCF (n > exact_tsmcf_limit)");
      const LinkFlowSolution flows = [&] {
        A2A_TRACE_SPAN("stage.solve", "decomposed MCF");
        return solve_decomposed_mcf(graph, terminals, options.mcf, nullptr,
                                    nullptr, demand);
      }();
      const auto commodity_paths = [&] {
        A2A_TRACE_SPAN("stage.extract", "paths from link flows");
        return paths_from_link_flows(graph, flows, demand);
      }();
      UnrollOptions uo;
      uo.chunking = options.chunking;
      out.kind = ScheduleKind::kLinkUnrolled;
      out.link = [&] {
        A2A_TRACE_SPAN("stage.compile", "pipelined unroll");
        return unroll_rate_schedule(graph, commodity_paths, uo);
      }();
      out.concurrent_flow = flows.concurrent_flow;
      out.notes += "decomposed MCF + pipelined unroll";
    }
    out.terminals = terminals;
    out.schedule_graph = graph;
    return out;
  }

  // Path-based branch.
  pipeline_span.annotate("branch=path (NIC forwarding)");
  const std::vector<NodeId> terminals = all_nodes(topology);
  const DemandMatrix* demand = resolve_demand(terminals);
  const long long diversity = estimate_path_diversity(topology);
  PathSchedule schedule;
  if (diversity <= options.path_diversity_threshold) {
    pipeline_span.annotate("solver=pMCF (path diversity " +
                           std::to_string(diversity) + " <= threshold)");
    const PathSet candidates =
        build_disjoint_path_set(topology, terminals, demand);
    if (n <= options.mcf.exact_master_limit) {
      const PathMcfSolution sol = [&] {
        A2A_TRACE_SPAN("stage.solve", "exact pMCF LP");
        return solve_path_mcf_exact(topology, candidates, options.mcf.lp);
      }();
      schedule = [&] {
        A2A_TRACE_SPAN("stage.compile", "path schedule");
        return compile_path_schedule(topology, candidates, sol.weights,
                                     options.chunking);
      }();
      out.concurrent_flow = sol.concurrent_flow;
    } else {
      pipeline_span.annotate("pMCF master via Fleischer FPTAS (n > "
                             "exact_master_limit)");
      FleischerOptions fo = options.mcf.fptas;
      fo.epsilon = options.mcf.fptas_epsilon;
      const PathFlowSolution sol = [&] {
        A2A_TRACE_SPAN("stage.solve", "Fleischer FPTAS");
        return fleischer_paths(topology, candidates, fo);
      }();
      schedule = [&] {
        A2A_TRACE_SPAN("stage.compile", "path schedule");
        return compile_path_schedule(topology, candidates, sol.weights,
                                     options.chunking);
      }();
      out.concurrent_flow = sol.concurrent_flow;
    }
    out.kind = ScheduleKind::kPathPMcf;
    out.notes += "pMCF on link-disjoint candidates";
  } else {
    pipeline_span.annotate("solver=MCF-extP (path diversity " +
                           std::to_string(diversity) + " > threshold)");
    const LinkFlowSolution flows = [&] {
      A2A_TRACE_SPAN("stage.solve", "decomposed MCF");
      return solve_decomposed_mcf(topology, terminals, options.mcf, nullptr,
                                  nullptr, demand);
    }();
    const auto commodity_paths = [&] {
      A2A_TRACE_SPAN("stage.extract", "widest-path extraction");
      return paths_from_link_flows(topology, flows, demand);
    }();
    schedule = [&] {
      A2A_TRACE_SPAN("stage.compile", "path schedule");
      return compile_path_schedule(topology, commodity_paths, options.chunking);
    }();
    out.concurrent_flow = flows.concurrent_flow;
    out.kind = ScheduleKind::kPathExtracted;
    out.notes += "decomposed MCF + widest-path extraction (MCF-extP)";
  }
  out.vc_layers = assign_layers(topology, schedule, VcOrdering::kShortestFirst);
  if (out.vc_layers > options.vc_max_layers_warn) {
    out.notes += "; WARNING: needs " + std::to_string(out.vc_layers) + " VC layers";
  }
  pipeline_span.annotate("vc_layers=" + std::to_string(out.vc_layers));
  out.path = std::move(schedule);
  out.terminals = terminals;
  out.schedule_graph = topology;
  return out;
}

}  // namespace a2a
