#include "core/schedule_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/binio.hpp"
#include "common/crc32.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace a2a {

namespace {

namespace fs = std::filesystem;

using binio::put_u16;
using binio::put_u32;
using binio::put_u64;
using binio::read_uint;

// ----------------------------------------------------------- fingerprint ---

/// FNV-1a over `data` from an arbitrary seed; two seeds give 128 bits.
std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void feed_u64(std::string& buf, std::uint64_t v) { put_u64(buf, v); }
void feed_i64(std::string& buf, std::int64_t v) {
  put_u64(buf, static_cast<std::uint64_t>(v));
}
void feed_double(std::string& buf, double v) {
  put_u64(buf, std::bit_cast<std::uint64_t>(v));
}
void feed_str(std::string& buf, const std::string& s) {
  feed_u64(buf, s.size());
  buf.append(s);
}

std::string hex128(std::uint64_t a, std::uint64_t b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint64_t v : {a, b}) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(digits[(v >> shift) & 0xF]);
    }
  }
  return out;
}

// ------------------------------------------------------ graph serializers ---

void feed_graph(std::string& buf, const DiGraph& g) {
  feed_u64(buf, static_cast<std::uint64_t>(g.num_nodes()));
  struct CanonEdge {
    NodeId from;
    NodeId to;
    std::uint64_t cap_bits;
    auto operator<=>(const CanonEdge&) const = default;
  };
  std::vector<CanonEdge> canon;
  canon.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const Edge& e : g.edges()) {
    canon.push_back({e.from, e.to, std::bit_cast<std::uint64_t>(e.capacity)});
  }
  std::sort(canon.begin(), canon.end());
  for (const CanonEdge& e : canon) {
    feed_i64(buf, e.from);
    feed_i64(buf, e.to);
    feed_u64(buf, e.cap_bits);
  }
}

void write_graph(std::string& out, const DiGraph& g) {
  put_u32(out, static_cast<std::uint32_t>(g.num_nodes()));
  put_u32(out, static_cast<std::uint32_t>(g.num_edges()));
  for (const Edge& e : g.edges()) {
    put_u32(out, static_cast<std::uint32_t>(e.from));
    put_u32(out, static_cast<std::uint32_t>(e.to));
    put_u64(out, std::bit_cast<std::uint64_t>(e.capacity));
  }
}

DiGraph read_graph(std::string_view bytes, std::size_t& pos) {
  const auto num_nodes = static_cast<int>(read_uint(bytes, pos, 4));
  const auto num_edges = static_cast<std::uint32_t>(read_uint(bytes, pos, 4));
  DiGraph g(num_nodes);
  for (std::uint32_t i = 0; i < num_edges; ++i) {
    const auto from = static_cast<NodeId>(read_uint(bytes, pos, 4));
    const auto to = static_cast<NodeId>(read_uint(bytes, pos, 4));
    const double cap = std::bit_cast<double>(read_uint(bytes, pos, 8));
    g.add_edge(from, to, cap);
  }
  return g;
}

constexpr char kEntryMagic[4] = {'S', 'B', 'C', 'E'};
constexpr std::uint16_t kEntryVersion = 1;

/// Atomic write: unique tmp name per process and write, then rename, so
/// concurrent writers (threads or a fleet of processes) never interleave
/// into one file and readers only ever see complete files.
void write_file_atomic(const std::string& path, std::string_view bytes) {
  static std::atomic<std::uint64_t> write_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(write_seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    A2A_REQUIRE(out.good(), "cannot open cache file for writing: ", tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    A2A_REQUIRE(out.good(), "short write to cache file: ", tmp);
  }
  fs::rename(tmp, path);
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::string schedule_fingerprint(const DiGraph& topology, const Fabric& fabric,
                                 const ToolchainOptions& options) {
  std::string buf;
  buf.reserve(64 + static_cast<std::size_t>(topology.num_edges()) * 24);
  feed_graph(buf, topology);

  feed_str(buf, fabric.name);
  feed_double(buf, fabric.link_GBps);
  feed_double(buf, fabric.injection_GBps);
  feed_u64(buf, fabric.nic_forwarding ? 1 : 0);
  feed_u64(buf, static_cast<std::uint64_t>(fabric.flow_control));
  feed_double(buf, fabric.step_sync_s);
  feed_double(buf, fabric.per_chunk_s);
  feed_double(buf, fabric.hop_latency_s);
  feed_double(buf, fabric.qp_knee);
  feed_double(buf, fabric.qp_penalty);

  feed_i64(buf, options.exact_tsmcf_limit);
  feed_i64(buf, options.path_diversity_threshold);
  feed_u64(buf, static_cast<std::uint64_t>(options.mcf.master));
  feed_u64(buf, static_cast<std::uint64_t>(options.mcf.child));
  feed_i64(buf, options.mcf.exact_master_limit);
  feed_double(buf, options.mcf.fptas_epsilon);
  feed_i64(buf, options.mcf.lp.max_iterations);
  feed_i64(buf, options.mcf.lp.refactor_interval);
  feed_double(buf, options.mcf.lp.feasibility_tol);
  feed_double(buf, options.mcf.lp.optimality_tol);
  feed_double(buf, options.mcf.lp.pivot_tol);
  feed_i64(buf, options.mcf.lp.stall_limit);
  feed_double(buf, options.mcf.fptas.epsilon);
  feed_i64(buf, options.mcf.fptas.max_phases);
  // options.mcf.threads intentionally excluded: it changes wall time only.
  feed_i64(buf, options.chunking.max_denominator);
  feed_double(buf, options.chunking.min_fraction);
  feed_i64(buf, options.vc_max_layers_warn);
  // Fed only when non-default so every fingerprint minted before workloads
  // existed (and every on-disk cache entry stored under one) stays valid.
  if (!options.workload.is_default()) {
    feed_str(buf, options.workload.to_string());
  }

  return hex128(fnv1a(buf, 0), fnv1a(buf, 0x9e3779b97f4a7c15ULL));
}

std::string schedule_content_key(std::string_view bytes) {
  return hex128(fnv1a(bytes, 0x5bd1e995ULL),
                fnv1a(bytes, 0xc2b2ae3d27d4eb4fULL));
}

std::size_t schedule_memory_bytes(const GeneratedSchedule& s) {
  std::size_t bytes = sizeof(GeneratedSchedule);
  if (s.link.has_value()) {
    bytes += sizeof(LinkSchedule) + s.link->transfers.size() * sizeof(Transfer);
  }
  if (s.path.has_value()) {
    bytes += sizeof(PathSchedule) + s.path->entries.size() * sizeof(RouteEntry);
    for (const RouteEntry& e : s.path->entries) {
      bytes += e.path.size() * sizeof(EdgeId);
    }
  }
  bytes += s.terminals.size() * sizeof(NodeId);
  bytes += s.notes.size();
  // Graph adjacency: the edge array plus one EdgeId per direction in the
  // out/in adjacency lists.
  bytes += static_cast<std::size_t>(s.schedule_graph.num_edges()) *
           (sizeof(Edge) + 2 * sizeof(EdgeId));
  return bytes;
}

// ------------------------------------------------------- entry envelope ---

std::string generated_schedule_to_bytes(const GeneratedSchedule& schedule,
                                        const SchedBinOptions& options) {
  std::string out;
  out.append(kEntryMagic, sizeof(kEntryMagic));
  put_u16(out, kEntryVersion);
  out.push_back(static_cast<char>(schedule.kind));
  const bool has_link = schedule.link.has_value();
  const bool has_path = schedule.path.has_value();
  out.push_back(static_cast<char>((has_link ? 1 : 0) | (has_path ? 2 : 0)));
  put_u64(out, std::bit_cast<std::uint64_t>(schedule.concurrent_flow));
  put_u32(out, static_cast<std::uint32_t>(schedule.vc_layers));
  put_u32(out, static_cast<std::uint32_t>(schedule.terminals.size()));
  for (const NodeId t : schedule.terminals) {
    put_u32(out, static_cast<std::uint32_t>(t));
  }
  write_graph(out, schedule.schedule_graph);
  put_u32(out, static_cast<std::uint32_t>(schedule.notes.size()));
  out.append(schedule.notes);

  std::string blob;
  if (has_link) {
    blob = link_schedule_to_schedbin(*schedule.link, options);
  } else if (has_path) {
    blob = path_schedule_to_schedbin(schedule.schedule_graph, *schedule.path,
                                     options);
  }
  put_u64(out, blob.size());
  out.append(blob);
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

ArtifactView parse_schedule_envelope(std::string_view envelope) {
  A2A_REQUIRE(envelope.size() >= sizeof(kEntryMagic) + 2 + 4,
              "cache entry too small: ", envelope.size(), " bytes");
  A2A_REQUIRE(envelope.substr(0, 4) == std::string_view(kEntryMagic, 4),
              "bad cache entry magic");
  std::size_t pos = 4;
  const auto version = static_cast<std::uint16_t>(read_uint(envelope, pos, 2));
  A2A_REQUIRE(version == kEntryVersion, "unsupported cache entry version ",
              version);
  ArtifactView out;
  out.envelope = envelope;
  out.kind = static_cast<ScheduleKind>(read_uint(envelope, pos, 1));
  pos += 1;  // has_link/has_path flags — implied by kind for a view.
  out.concurrent_flow = std::bit_cast<double>(read_uint(envelope, pos, 8));
  out.vc_layers = static_cast<int>(read_uint(envelope, pos, 4));
  const auto num_terminals =
      static_cast<std::uint32_t>(read_uint(envelope, pos, 4));
  A2A_REQUIRE(pos + static_cast<std::size_t>(num_terminals) * 4 <=
                  envelope.size(),
              "cache entry terminals truncated");
  pos += static_cast<std::size_t>(num_terminals) * 4;
  pos += 4;  // graph node count
  const auto num_edges = static_cast<std::uint32_t>(read_uint(envelope, pos, 4));
  A2A_REQUIRE(pos + static_cast<std::size_t>(num_edges) * 16 <= envelope.size(),
              "cache entry graph truncated");
  pos += static_cast<std::size_t>(num_edges) * 16;
  const auto notes_len = static_cast<std::uint32_t>(read_uint(envelope, pos, 4));
  A2A_REQUIRE(pos + notes_len <= envelope.size(), "cache entry notes truncated");
  pos += notes_len;
  const std::uint64_t blob_len = read_uint(envelope, pos, 8);
  A2A_REQUIRE(pos + blob_len + 4 == envelope.size(),
              "cache entry blob length mismatch");
  out.blob_offset = pos;
  out.blob_size = static_cast<std::size_t>(blob_len);
  return out;
}

GeneratedSchedule generated_schedule_from_bytes(std::string_view bytes) {
  A2A_REQUIRE(bytes.size() >= sizeof(kEntryMagic) + 2 + 4,
              "cache entry too small: ", bytes.size(), " bytes");
  A2A_REQUIRE(bytes.substr(0, 4) == std::string_view(kEntryMagic, 4),
              "bad cache entry magic");
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(binio::get_uint(bytes, bytes.size() - 4, 4));
  A2A_REQUIRE(crc32(bytes.data(), bytes.size() - 4) == stored_crc,
              "cache entry failed CRC check");

  std::size_t pos = 4;
  const auto version = static_cast<std::uint16_t>(read_uint(bytes, pos, 2));
  A2A_REQUIRE(version == kEntryVersion, "unsupported cache entry version ",
              version);
  GeneratedSchedule out;
  out.kind = static_cast<ScheduleKind>(read_uint(bytes, pos, 1));
  const auto flags = static_cast<std::uint8_t>(read_uint(bytes, pos, 1));
  out.concurrent_flow = std::bit_cast<double>(read_uint(bytes, pos, 8));
  out.vc_layers = static_cast<int>(read_uint(bytes, pos, 4));
  const auto num_terminals = static_cast<std::uint32_t>(read_uint(bytes, pos, 4));
  out.terminals.reserve(num_terminals);
  for (std::uint32_t i = 0; i < num_terminals; ++i) {
    out.terminals.push_back(static_cast<NodeId>(read_uint(bytes, pos, 4)));
  }
  out.schedule_graph = read_graph(bytes, pos);
  const auto notes_len = static_cast<std::uint32_t>(read_uint(bytes, pos, 4));
  A2A_REQUIRE(pos + notes_len <= bytes.size(), "cache entry notes truncated");
  out.notes.assign(bytes.substr(pos, notes_len));
  pos += notes_len;
  const std::uint64_t blob_len = read_uint(bytes, pos, 8);
  A2A_REQUIRE(pos + blob_len + 4 == bytes.size(),
              "cache entry blob length mismatch");
  const std::string_view blob = bytes.substr(pos, blob_len);
  if (flags & 1) {
    out.link = link_schedule_from_schedbin(blob);
  } else if (flags & 2) {
    out.path = path_schedule_from_schedbin(out.schedule_graph, blob);
  }
  return out;
}

// ------------------------------------------------------------ the cache ---

ScheduleCache::ScheduleCache(ScheduleCacheOptions options)
    : options_(std::move(options)) {}

namespace {

fs::path objects_dir(const std::string& disk_dir) {
  return fs::path(disk_dir) / "objects";
}
fs::path refs_dir(const std::string& disk_dir) {
  return fs::path(disk_dir) / "refs";
}
fs::path object_path(const std::string& disk_dir, const std::string& key) {
  return objects_dir(disk_dir) / (key + ".schedbin");
}
fs::path ref_path(const std::string& disk_dir, const std::string& fingerprint) {
  return refs_dir(disk_dir) / (fingerprint + ".ref");
}
fs::path quarantine_dir(const std::string& disk_dir) {
  return fs::path(disk_dir) / "quarantine";
}

/// Moves a corrupt artifact out of service into `quarantine/` (same
/// filesystem, so a rename — never a copy of possibly-large garbage). The
/// bytes are kept for forensics; the object no longer resolves, so the
/// re-synthesized artifact gets written fresh. Falls back to outright
/// removal when the rename itself fails (e.g. quarantine dir uncreatable).
void quarantine_object(const std::string& disk_dir, const fs::path& path) {
  std::error_code ec;
  fs::create_directories(quarantine_dir(disk_dir), ec);
  fs::rename(path, quarantine_dir(disk_dir) / path.filename(), ec);
  if (ec) fs::remove(path, ec);
}

/// A ref file holds the 32-hex-char content key of its artifact.
std::optional<std::string> resolve_ref(const std::string& disk_dir,
                                       const std::string& fingerprint) {
  auto key = read_file(ref_path(disk_dir, fingerprint));
  if (!key.has_value() || key->size() != 32) return std::nullopt;
  return key;
}

struct DiskArtifact {
  fs::path path;
  std::string key;  ///< object stem; empty for pre-v2 flat entries.
  std::uintmax_t size = 0;
  fs::file_time_type mtime;
};

/// Every finished artifact the disk tier holds: content-addressed objects
/// plus pre-v2 flat `<fingerprint>.schedbin` entries at the top level —
/// both serve lookups, so both must count toward (and be evictable under)
/// the byte budget. In-flight ".tmp.<pid>.<seq>" files are skipped: a peer
/// process's pending write must be neither counted nor evicted out from
/// under its imminent rename.
std::pair<std::vector<DiskArtifact>, std::uintmax_t> scan_artifacts(
    const std::string& disk_dir) {
  std::vector<DiskArtifact> out;
  std::uintmax_t total = 0;
  std::error_code ec;
  // stat errors (a file GC'ed by a peer process mid-scan) skip the entry:
  // file_size(ec) reports uintmax_t(-1) on failure, which would wreck the
  // byte total.
  for (const auto& de : fs::directory_iterator(objects_dir(disk_dir), ec)) {
    if (!de.is_regular_file(ec) || de.path().extension() != ".schedbin") continue;
    const std::uintmax_t size = de.file_size(ec);
    if (ec) continue;
    out.push_back({de.path(), de.path().stem().string(), size,
                   de.last_write_time(ec)});
    total += size;
  }
  for (const auto& de : fs::directory_iterator(fs::path(disk_dir), ec)) {
    if (!de.is_regular_file(ec) || de.path().extension() != ".schedbin") continue;
    const std::uintmax_t size = de.file_size(ec);
    if (ec) continue;
    out.push_back({de.path(), "", size, de.last_write_time(ec)});
    total += size;
  }
  return {std::move(out), total};
}

}  // namespace

namespace {

/// Resolves a fingerprint to its artifact path ("" when absent). `had_ref`
/// reports whether a ref file existed — a ref without its artifact is
/// dangling (the object was GC'ed by another process) and worth cleaning.
std::string resolve_entry(const std::string& disk_dir,
                          const std::string& fingerprint, bool* had_ref) {
  std::error_code ec;
  const auto key = resolve_ref(disk_dir, fingerprint);
  if (had_ref != nullptr) *had_ref = key.has_value();
  if (key.has_value()) {
    const fs::path obj = object_path(disk_dir, *key);
    if (fs::exists(obj, ec)) return obj.string();
  }
  // Pre-v2 disk layout: one file per fingerprint, no sharing.
  const fs::path legacy = fs::path(disk_dir) / (fingerprint + ".schedbin");
  if (fs::exists(legacy, ec)) return legacy.string();
  return {};
}

}  // namespace

std::string ScheduleCache::entry_path(const std::string& fingerprint) const {
  if (options_.disk_dir.empty()) return {};
  return resolve_entry(options_.disk_dir, fingerprint, nullptr);
}

std::optional<GeneratedSchedule> ScheduleCache::lookup(
    const std::string& fingerprint) {
  obs::TraceSpan span("cache.lookup");
  A2A_COUNTER("cache.lookups").inc();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    if (const auto it = entries_.find(fingerprint); it != entries_.end()) {
      ++stats_.memory_hits;
      A2A_COUNTER("cache.memory_hits").inc();
      span.annotate("memory hit");
      touch_locked(fingerprint);
      return it->second.schedule;
    }
  }
  // Disk read + decode happen outside the mutex so slow I/O never blocks
  // other consumers' memory-tier hits.
  if (!options_.disk_dir.empty()) {
    bool had_ref = false;
    const std::string path =
        resolve_entry(options_.disk_dir, fingerprint, &had_ref);
    if (!path.empty()) {
      if (const auto bytes = read_file(path)) {
        // A corrupt disk entry is a miss, not an error: the artifact is
        // quarantined (kept for forensics, never served again), its ref
        // dropped, and the caller re-synthesizes and overwrites it.
        // std::exception, not just Error: a truncated or foreign payload
        // can trip a length_error/bad_alloc in the decoder before the CRC
        // gets a chance to reject it.
        try {
          GeneratedSchedule schedule = generated_schedule_from_bytes(*bytes);
          // Refresh the artifact's age — but only where the GC will ever
          // read it: with an unbounded tier this would be a pointless
          // mtime-write syscall on every hot-path hit.
          if (options_.max_disk_bytes > 0) {
            std::error_code ec;
            fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
          }
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.disk_hits;
          A2A_COUNTER("cache.disk_hits").inc();
          span.annotate("disk hit");
          insert_memory_locked(fingerprint, schedule);
          return schedule;
        } catch (const std::exception&) {
          {
            std::lock_guard<std::mutex> disk_lock(disk_mutex_);
            quarantine_object(options_.disk_dir, path);
          }
          std::error_code ec;
          fs::remove(ref_path(options_.disk_dir, fingerprint), ec);
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.disk_corrupt;
          A2A_COUNTER("cache.disk_corrupt").inc();
          span.annotate("corrupt artifact quarantined");
        }
      }
    } else if (had_ref) {
      // Dangling ref (its artifact was GC'ed by another process): drop it.
      std::error_code ec;
      fs::remove(ref_path(options_.disk_dir, fingerprint), ec);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  A2A_COUNTER("cache.misses").inc();
  span.annotate("miss");
  return std::nullopt;
}

std::optional<ArtifactView> ScheduleCache::lookup_artifact(
    const std::string& fingerprint) {
  obs::TraceSpan span("cache.lookup_artifact");
  A2A_COUNTER("cache.lookups").inc();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
  }
  if (!options_.disk_dir.empty()) {
    bool had_ref = false;
    const std::string path =
        resolve_entry(options_.disk_dir, fingerprint, &had_ref);
    if (!path.empty()) {
      try {
        auto mapping = std::make_shared<const MmapFile>(path);
        ArtifactView view = parse_schedule_envelope(mapping->view());
        // Header/trailer validation of the inner frame touches its first
        // and last pages only; chunk payloads keep their own CRCs for the
        // eventual decoder. An empty blob (a schedule with neither link nor
        // path — never produced, but representable) has nothing to check.
        if (view.blob_size > 0) {
          (void)SchedBinReader::from_bytes(view.schedbin());
        }
        view.mapping = std::move(mapping);
        if (options_.max_disk_bytes > 0) {
          std::error_code ec;
          fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
        }
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.disk_hits;
        A2A_COUNTER("cache.disk_hits").inc();
        span.annotate("disk hit (zero-copy)");
        return view;
      } catch (const std::exception&) {
        std::error_code ec;
        if (!fs::exists(path, ec)) {
          // Not corruption: the object vanished between resolve and mmap
          // (a concurrent GC won the race). Drop the dangling ref and
          // degrade to a clean miss.
          fs::remove(ref_path(options_.disk_dir, fingerprint), ec);
          span.annotate("lost race with disk GC");
        } else {
          // Same corrupt-artifact contract as lookup(): quarantine, drop
          // the ref, degrade to a miss so the caller re-synthesizes.
          {
            std::lock_guard<std::mutex> disk_lock(disk_mutex_);
            quarantine_object(options_.disk_dir, path);
          }
          fs::remove(ref_path(options_.disk_dir, fingerprint), ec);
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.disk_corrupt;
          A2A_COUNTER("cache.disk_corrupt").inc();
          span.annotate("corrupt artifact quarantined");
        }
      }
    } else if (had_ref) {
      std::error_code ec;
      fs::remove(ref_path(options_.disk_dir, fingerprint), ec);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  A2A_COUNTER("cache.misses").inc();
  span.annotate("miss");
  return std::nullopt;
}

std::shared_ptr<const std::string> ScheduleCache::insert(
    const std::string& fingerprint, const GeneratedSchedule& schedule) {
  obs::TraceSpan span("cache.insert");
  A2A_COUNTER("cache.insertions").inc();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.insertions;
    insert_memory_locked(fingerprint, schedule);
  }
  // The envelope is serialized even with the disk tier disabled: callers
  // serving bytes (the broker's miss path) need it either way, and callers
  // that don't simply drop the shared_ptr.
  auto bytes_ptr = std::make_shared<const std::string>(
      generated_schedule_to_bytes(schedule, options_.schedbin));
  const std::string& bytes = *bytes_ptr;
  if (options_.disk_dir.empty()) return bytes_ptr;
  // Serialization and file I/O stay outside the LRU mutex; disk_mutex_
  // serializes writers and the GC within this process, and atomic renames
  // keep a fleet of processes safe.
  if (options_.max_disk_bytes > 0 && bytes.size() > options_.max_disk_bytes) {
    // Larger than the whole budget: writing it would only be GC'ed right
    // back (same never-admit rule as the memory tier), so skip the write
    // and count the rejection for monitoring.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_oversize_rejections;
    A2A_COUNTER("cache.disk_oversize_rejections").inc();
    span.annotate("disk oversize rejection");
    return bytes_ptr;
  }
  const std::string key = schedule_content_key(bytes);
  std::lock_guard<std::mutex> disk_lock(disk_mutex_);
  fs::create_directories(objects_dir(options_.disk_dir));
  fs::create_directories(refs_dir(options_.disk_dir));
  const fs::path obj = object_path(options_.disk_dir, key);
  std::error_code ec;
  bool wrote = false;
  // Content-addressed sharing: another fingerprint (or an earlier pipeline
  // invocation) may already have produced this exact artifact. Verify the
  // bytes before trusting it — a corrupt object would otherwise be
  // poisoned forever, since every recompile-and-reinsert would dedup
  // against the same bad file while every lookup keeps missing on it.
  if (const auto existing = read_file(obj); existing == bytes) {
    fs::last_write_time(obj, fs::file_time_type::clock::now(), ec);
  } else {
    write_file_atomic(obj.string(), bytes);
    wrote = true;
  }
  write_file_atomic(ref_path(options_.disk_dir, fingerprint).string(), key);
  if (options_.max_disk_bytes > 0) {
    // Maintain the running total instead of walking the directory per
    // insert: seed it with one scan, then only GC (which rescans exactly)
    // when the total crosses the budget.
    if (disk_total_ < 0) {
      disk_total_ =
          static_cast<std::int64_t>(scan_artifacts(options_.disk_dir).second);
    } else if (wrote) {
      disk_total_ += static_cast<std::int64_t>(bytes.size());
    }
    if (disk_total_ > static_cast<std::int64_t>(options_.max_disk_bytes)) {
      gc_disk();
    }
  }
  if (disk_total_ >= 0) A2A_GAUGE("cache.disk_bytes").set(disk_total_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (wrote) {
    ++stats_.disk_writes;
    A2A_COUNTER("cache.disk_writes").inc();
  } else {
    ++stats_.disk_dedups;
    A2A_COUNTER("cache.disk_dedups").inc();
    span.annotate("disk dedup");
  }
  return bytes_ptr;
}

void ScheduleCache::gc_disk() {
  // Reap orphaned temp files first: a writer killed between its ofstream
  // write and the rename leaks an artifact-sized ".tmp.<pid>.<seq>" file
  // that scan_artifacts deliberately ignores. Age-gate the reap so a live
  // peer's in-flight write is never yanked from under its rename.
  {
    const auto cutoff =
        fs::file_time_type::clock::now() - std::chrono::hours(1);
    std::error_code ec;
    for (const fs::path& dir :
         {objects_dir(options_.disk_dir), refs_dir(options_.disk_dir),
          fs::path(options_.disk_dir)}) {
      for (const auto& de : fs::directory_iterator(dir, ec)) {
        if (!de.is_regular_file(ec)) continue;
        if (de.path().filename().string().find(".tmp.") == std::string::npos) {
          continue;
        }
        if (de.last_write_time(ec) < cutoff) fs::remove(de.path(), ec);
      }
    }
  }
  auto [artifacts, total] = scan_artifacts(options_.disk_dir);
  disk_total_ = static_cast<std::int64_t>(total);
  if (total <= options_.max_disk_bytes) return;
  // Refcount pass: refs pointing at a victim are removed with it, so a
  // later lookup cleanly misses instead of chasing a dangling pointer.
  // (Pre-v2 flat entries have no refs; removing the file is the eviction.)
  std::error_code ec;
  std::unordered_map<std::string, std::vector<fs::path>> refs_by_key;
  for (const auto& de : fs::directory_iterator(refs_dir(options_.disk_dir), ec)) {
    if (!de.is_regular_file(ec)) continue;
    if (const auto key = read_file(de.path()); key.has_value()) {
      refs_by_key[*key].push_back(de.path());
    }
  }
  std::sort(artifacts.begin(), artifacts.end(),
            [](const DiskArtifact& a, const DiskArtifact& b) {
              return a.mtime < b.mtime;
            });
  std::uint64_t evicted = 0;
  for (const DiskArtifact& victim : artifacts) {
    if (total <= options_.max_disk_bytes) break;
    fs::remove(victim.path, ec);
    if (!victim.key.empty()) {
      for (const fs::path& ref : refs_by_key[victim.key]) fs::remove(ref, ec);
    }
    total -= victim.size;
    ++evicted;
  }
  disk_total_ = static_cast<std::int64_t>(total);
  A2A_COUNTER("cache.gc_runs").inc();
  A2A_COUNTER("cache.disk_evictions").add(evicted);
  A2A_GAUGE("cache.disk_bytes").set(disk_total_);
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.disk_evictions += evicted;
}

std::size_t ScheduleCache::disk_object_count() const {
  if (options_.disk_dir.empty()) return 0;
  std::lock_guard<std::mutex> disk_lock(disk_mutex_);
  return scan_artifacts(options_.disk_dir).first.size();
}

std::size_t ScheduleCache::disk_bytes() const {
  if (options_.disk_dir.empty()) return 0;
  std::lock_guard<std::mutex> disk_lock(disk_mutex_);
  return static_cast<std::size_t>(scan_artifacts(options_.disk_dir).second);
}

ScheduleCacheStats ScheduleCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t ScheduleCache::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memory_bytes_;
}

void ScheduleCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  memory_bytes_ = 0;
  A2A_GAUGE("cache.memory_bytes").set(0);
}

void ScheduleCache::touch_locked(const std::string& fingerprint) {
  const auto it = entries_.find(fingerprint);
  lru_.erase(it->second.lru_it);
  lru_.push_front(fingerprint);
  it->second.lru_it = lru_.begin();
}

void ScheduleCache::insert_memory_locked(const std::string& fingerprint,
                                         const GeneratedSchedule& schedule) {
  // max_memory_bytes == 0 disables the memory tier outright. Without this
  // gate every insert would be admitted and then immediately evicted by the
  // budget sweep below (pure churn), and a zero-budget promote-from-disk
  // would do the same on every disk hit.
  if (options_.max_memory_bytes == 0) return;
  const std::size_t bytes = schedule_memory_bytes(schedule);
  const auto it = entries_.find(fingerprint);
  if (bytes > options_.max_memory_bytes) {
    // Larger than the whole budget: can never be resident. Also drop any
    // smaller stale version so a hit cannot serve outdated data.
    if (it != entries_.end()) {
      memory_bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
      A2A_GAUGE("cache.memory_bytes")
          .set(static_cast<std::int64_t>(memory_bytes_));
    }
    return;
  }
  if (it != entries_.end()) {
    memory_bytes_ -= it->second.bytes;
    it->second.schedule = schedule;
    it->second.bytes = bytes;
    memory_bytes_ += bytes;
    touch_locked(fingerprint);
    evict_over_budget_locked();
    return;
  }
  lru_.push_front(fingerprint);
  entries_.emplace(fingerprint, Entry{schedule, bytes, lru_.begin()});
  memory_bytes_ += bytes;
  evict_over_budget_locked();
}

void ScheduleCache::evict_over_budget_locked() {
  while (memory_bytes_ > options_.max_memory_bytes) {
    const auto it = entries_.find(lru_.back());
    memory_bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.memory_evictions;
    A2A_COUNTER("cache.memory_evictions").inc();
  }
  A2A_GAUGE("cache.memory_bytes")
      .set(static_cast<std::int64_t>(memory_bytes_));
}

}  // namespace a2a
