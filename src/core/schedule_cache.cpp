#include "core/schedule_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <bit>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/binio.hpp"
#include "common/crc32.hpp"

namespace a2a {

namespace {

using binio::put_u16;
using binio::put_u32;
using binio::put_u64;
using binio::read_uint;

// ----------------------------------------------------------- fingerprint ---

/// FNV-1a over `data` from an arbitrary seed; two seeds give 128 bits.
std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void feed_u64(std::string& buf, std::uint64_t v) { put_u64(buf, v); }
void feed_i64(std::string& buf, std::int64_t v) {
  put_u64(buf, static_cast<std::uint64_t>(v));
}
void feed_double(std::string& buf, double v) {
  put_u64(buf, std::bit_cast<std::uint64_t>(v));
}
void feed_str(std::string& buf, const std::string& s) {
  feed_u64(buf, s.size());
  buf.append(s);
}

std::string hex128(std::uint64_t a, std::uint64_t b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint64_t v : {a, b}) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(digits[(v >> shift) & 0xF]);
    }
  }
  return out;
}

// ------------------------------------------------------ graph serializers ---

void feed_graph(std::string& buf, const DiGraph& g) {
  feed_u64(buf, static_cast<std::uint64_t>(g.num_nodes()));
  struct CanonEdge {
    NodeId from;
    NodeId to;
    std::uint64_t cap_bits;
    auto operator<=>(const CanonEdge&) const = default;
  };
  std::vector<CanonEdge> canon;
  canon.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const Edge& e : g.edges()) {
    canon.push_back({e.from, e.to, std::bit_cast<std::uint64_t>(e.capacity)});
  }
  std::sort(canon.begin(), canon.end());
  for (const CanonEdge& e : canon) {
    feed_i64(buf, e.from);
    feed_i64(buf, e.to);
    feed_u64(buf, e.cap_bits);
  }
}

void write_graph(std::string& out, const DiGraph& g) {
  put_u32(out, static_cast<std::uint32_t>(g.num_nodes()));
  put_u32(out, static_cast<std::uint32_t>(g.num_edges()));
  for (const Edge& e : g.edges()) {
    put_u32(out, static_cast<std::uint32_t>(e.from));
    put_u32(out, static_cast<std::uint32_t>(e.to));
    put_u64(out, std::bit_cast<std::uint64_t>(e.capacity));
  }
}

DiGraph read_graph(std::string_view bytes, std::size_t& pos) {
  const auto num_nodes = static_cast<int>(read_uint(bytes, pos, 4));
  const auto num_edges = static_cast<std::uint32_t>(read_uint(bytes, pos, 4));
  DiGraph g(num_nodes);
  for (std::uint32_t i = 0; i < num_edges; ++i) {
    const auto from = static_cast<NodeId>(read_uint(bytes, pos, 4));
    const auto to = static_cast<NodeId>(read_uint(bytes, pos, 4));
    const double cap = std::bit_cast<double>(read_uint(bytes, pos, 8));
    g.add_edge(from, to, cap);
  }
  return g;
}

constexpr char kEntryMagic[4] = {'S', 'B', 'C', 'E'};
constexpr std::uint16_t kEntryVersion = 1;

}  // namespace

std::string schedule_fingerprint(const DiGraph& topology, const Fabric& fabric,
                                 const ToolchainOptions& options) {
  std::string buf;
  buf.reserve(64 + static_cast<std::size_t>(topology.num_edges()) * 24);
  feed_graph(buf, topology);

  feed_str(buf, fabric.name);
  feed_double(buf, fabric.link_GBps);
  feed_double(buf, fabric.injection_GBps);
  feed_u64(buf, fabric.nic_forwarding ? 1 : 0);
  feed_u64(buf, static_cast<std::uint64_t>(fabric.flow_control));
  feed_double(buf, fabric.step_sync_s);
  feed_double(buf, fabric.per_chunk_s);
  feed_double(buf, fabric.hop_latency_s);
  feed_double(buf, fabric.qp_knee);
  feed_double(buf, fabric.qp_penalty);

  feed_i64(buf, options.exact_tsmcf_limit);
  feed_i64(buf, options.path_diversity_threshold);
  feed_u64(buf, static_cast<std::uint64_t>(options.mcf.master));
  feed_u64(buf, static_cast<std::uint64_t>(options.mcf.child));
  feed_i64(buf, options.mcf.exact_master_limit);
  feed_double(buf, options.mcf.fptas_epsilon);
  feed_i64(buf, options.mcf.lp.max_iterations);
  feed_i64(buf, options.mcf.lp.refactor_interval);
  feed_double(buf, options.mcf.lp.feasibility_tol);
  feed_double(buf, options.mcf.lp.optimality_tol);
  feed_double(buf, options.mcf.lp.pivot_tol);
  feed_i64(buf, options.mcf.lp.stall_limit);
  feed_double(buf, options.mcf.fptas.epsilon);
  feed_i64(buf, options.mcf.fptas.max_phases);
  // options.mcf.threads intentionally excluded: it changes wall time only.
  feed_i64(buf, options.chunking.max_denominator);
  feed_double(buf, options.chunking.min_fraction);
  feed_i64(buf, options.vc_max_layers_warn);

  return hex128(fnv1a(buf, 0), fnv1a(buf, 0x9e3779b97f4a7c15ULL));
}

// ------------------------------------------------------- entry envelope ---

std::string generated_schedule_to_bytes(const GeneratedSchedule& schedule,
                                        const SchedBinOptions& options) {
  std::string out;
  out.append(kEntryMagic, sizeof(kEntryMagic));
  put_u16(out, kEntryVersion);
  out.push_back(static_cast<char>(schedule.kind));
  const bool has_link = schedule.link.has_value();
  const bool has_path = schedule.path.has_value();
  out.push_back(static_cast<char>((has_link ? 1 : 0) | (has_path ? 2 : 0)));
  put_u64(out, std::bit_cast<std::uint64_t>(schedule.concurrent_flow));
  put_u32(out, static_cast<std::uint32_t>(schedule.vc_layers));
  put_u32(out, static_cast<std::uint32_t>(schedule.terminals.size()));
  for (const NodeId t : schedule.terminals) {
    put_u32(out, static_cast<std::uint32_t>(t));
  }
  write_graph(out, schedule.schedule_graph);
  put_u32(out, static_cast<std::uint32_t>(schedule.notes.size()));
  out.append(schedule.notes);

  std::string blob;
  if (has_link) {
    blob = link_schedule_to_schedbin(*schedule.link, options);
  } else if (has_path) {
    blob = path_schedule_to_schedbin(schedule.schedule_graph, *schedule.path,
                                     options);
  }
  put_u64(out, blob.size());
  out.append(blob);
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

GeneratedSchedule generated_schedule_from_bytes(std::string_view bytes) {
  A2A_REQUIRE(bytes.size() >= sizeof(kEntryMagic) + 2 + 4,
              "cache entry too small: ", bytes.size(), " bytes");
  A2A_REQUIRE(bytes.substr(0, 4) == std::string_view(kEntryMagic, 4),
              "bad cache entry magic");
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(binio::get_uint(bytes, bytes.size() - 4, 4));
  A2A_REQUIRE(crc32(bytes.data(), bytes.size() - 4) == stored_crc,
              "cache entry failed CRC check");

  std::size_t pos = 4;
  const auto version = static_cast<std::uint16_t>(read_uint(bytes, pos, 2));
  A2A_REQUIRE(version == kEntryVersion, "unsupported cache entry version ",
              version);
  GeneratedSchedule out;
  out.kind = static_cast<ScheduleKind>(read_uint(bytes, pos, 1));
  const auto flags = static_cast<std::uint8_t>(read_uint(bytes, pos, 1));
  out.concurrent_flow = std::bit_cast<double>(read_uint(bytes, pos, 8));
  out.vc_layers = static_cast<int>(read_uint(bytes, pos, 4));
  const auto num_terminals = static_cast<std::uint32_t>(read_uint(bytes, pos, 4));
  out.terminals.reserve(num_terminals);
  for (std::uint32_t i = 0; i < num_terminals; ++i) {
    out.terminals.push_back(static_cast<NodeId>(read_uint(bytes, pos, 4)));
  }
  out.schedule_graph = read_graph(bytes, pos);
  const auto notes_len = static_cast<std::uint32_t>(read_uint(bytes, pos, 4));
  A2A_REQUIRE(pos + notes_len <= bytes.size(), "cache entry notes truncated");
  out.notes.assign(bytes.substr(pos, notes_len));
  pos += notes_len;
  const std::uint64_t blob_len = read_uint(bytes, pos, 8);
  A2A_REQUIRE(pos + blob_len + 4 == bytes.size(),
              "cache entry blob length mismatch");
  const std::string_view blob = bytes.substr(pos, blob_len);
  if (flags & 1) {
    out.link = link_schedule_from_schedbin(blob);
  } else if (flags & 2) {
    out.path = path_schedule_from_schedbin(out.schedule_graph, blob);
  }
  return out;
}

// ------------------------------------------------------------ the cache ---

ScheduleCache::ScheduleCache(ScheduleCacheOptions options)
    : options_(std::move(options)) {}

std::string ScheduleCache::entry_path(const std::string& fingerprint) const {
  if (options_.disk_dir.empty()) return {};
  return (std::filesystem::path(options_.disk_dir) / (fingerprint + ".schedbin"))
      .string();
}

std::optional<GeneratedSchedule> ScheduleCache::lookup(
    const std::string& fingerprint) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    if (const auto it = entries_.find(fingerprint); it != entries_.end()) {
      ++stats_.memory_hits;
      touch_locked(fingerprint);
      return it->second.schedule;
    }
  }
  // Disk read + decode happen outside the mutex so slow I/O never blocks
  // other consumers' memory-tier hits.
  const std::string path = entry_path(fingerprint);
  if (!path.empty()) {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      // A corrupt disk entry is a miss, not an error: the caller recompiles
      // and overwrites it.
      try {
        GeneratedSchedule schedule = generated_schedule_from_bytes(buf.str());
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.disk_hits;
        insert_memory_locked(fingerprint, schedule);
        return schedule;
      } catch (const Error&) {
      }
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  return std::nullopt;
}

void ScheduleCache::insert(const std::string& fingerprint,
                           const GeneratedSchedule& schedule) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.insertions;
    insert_memory_locked(fingerprint, schedule);
  }
  const std::string path = entry_path(fingerprint);
  if (path.empty()) return;
  // Serialization and file I/O stay outside the mutex. The tmp name is
  // unique per process and per write so concurrent writers (threads or a
  // fleet of processes) never interleave into one file; the final rename is
  // atomic, so readers only ever see complete entries.
  std::filesystem::create_directories(options_.disk_dir);
  const std::string bytes =
      generated_schedule_to_bytes(schedule, options_.schedbin);
  static std::atomic<std::uint64_t> write_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(write_seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    A2A_REQUIRE(out.good(), "cannot open cache file for writing: ", tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    A2A_REQUIRE(out.good(), "short write to cache file: ", tmp);
  }
  std::filesystem::rename(tmp, path);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.disk_writes;
}

ScheduleCacheStats ScheduleCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ScheduleCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

void ScheduleCache::touch_locked(const std::string& fingerprint) {
  const auto it = entries_.find(fingerprint);
  lru_.erase(it->second.lru_it);
  lru_.push_front(fingerprint);
  it->second.lru_it = lru_.begin();
}

void ScheduleCache::insert_memory_locked(const std::string& fingerprint,
                                         const GeneratedSchedule& schedule) {
  // max_entries == 0 disables the memory tier outright. Without this gate
  // every insert would be admitted and then immediately evicted by the
  // capacity sweep below (pure churn), and a zero-capacity promote-from-disk
  // would do the same on every disk hit.
  if (options_.max_entries == 0) return;
  if (const auto it = entries_.find(fingerprint); it != entries_.end()) {
    it->second.schedule = schedule;
    touch_locked(fingerprint);
    return;
  }
  lru_.push_front(fingerprint);
  entries_.emplace(fingerprint, Entry{schedule, lru_.begin()});
  while (entries_.size() > options_.max_entries) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace a2a
