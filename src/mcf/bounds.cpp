#include "mcf/bounds.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace a2a {

double alltoall_time_lower_bound(const DiGraph& g) {
  const int n = g.num_nodes();
  A2A_REQUIRE(n >= 2, "bound needs >= 2 nodes");
  double total_capacity = 0.0;
  for (const Edge& e : g.edges()) total_capacity += e.capacity;
  A2A_REQUIRE(total_capacity > 0.0, "graph has no capacity");
  const double aggregate =
      static_cast<double>(total_pairwise_distance(g)) / total_capacity;

  double node_bound = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    double out_cap = 0.0, in_cap = 0.0;
    for (const EdgeId e : g.out_edges(u)) out_cap += g.edge(e).capacity;
    for (const EdgeId e : g.in_edges(u)) in_cap += g.edge(e).capacity;
    A2A_REQUIRE(out_cap > 0.0 && in_cap > 0.0, "isolated node ", u);
    node_bound = std::max(node_bound, (n - 1) / out_cap);
    node_bound = std::max(node_bound, (n - 1) / in_cap);
  }
  return std::max(aggregate, node_bound);
}

double concurrent_flow_upper_bound(const DiGraph& g) {
  return 1.0 / alltoall_time_lower_bound(g);
}

double regular_graph_time_bound(int n, int d) {
  A2A_REQUIRE(n >= 2 && d >= 1, "bound needs n >= 2, d >= 1");
  // Distance sum of the best-case arborescence: d^k nodes at depth k until
  // N nodes are covered.
  long long remaining = n - 1;
  long long level_size = 1;
  long long depth = 1;
  double distance_sum = 0.0;
  while (remaining > 0) {
    level_size = std::min<long long>(level_size * d, remaining);
    distance_sum += static_cast<double>(depth) * static_cast<double>(level_size);
    remaining -= level_size;
    ++depth;
  }
  return distance_sum / static_cast<double>(d);
}

}  // namespace a2a
