#include "mcf/bounds.hpp"

#include <algorithm>

#include "collectives/demand.hpp"
#include "graph/algorithms.hpp"

namespace a2a {

double alltoall_time_lower_bound(const DiGraph& g) {
  const int n = g.num_nodes();
  A2A_REQUIRE(n >= 2, "bound needs >= 2 nodes");
  double total_capacity = 0.0;
  for (const Edge& e : g.edges()) total_capacity += e.capacity;
  A2A_REQUIRE(total_capacity > 0.0, "graph has no capacity");
  const double aggregate =
      static_cast<double>(total_pairwise_distance(g)) / total_capacity;

  double node_bound = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    double out_cap = 0.0, in_cap = 0.0;
    for (const EdgeId e : g.out_edges(u)) out_cap += g.edge(e).capacity;
    for (const EdgeId e : g.in_edges(u)) in_cap += g.edge(e).capacity;
    A2A_REQUIRE(out_cap > 0.0 && in_cap > 0.0, "isolated node ", u);
    node_bound = std::max(node_bound, (n - 1) / out_cap);
    node_bound = std::max(node_bound, (n - 1) / in_cap);
  }
  return std::max(aggregate, node_bound);
}

double concurrent_flow_upper_bound(const DiGraph& g) {
  return 1.0 / alltoall_time_lower_bound(g);
}

double collective_time_lower_bound(const DiGraph& g,
                                   const std::vector<NodeId>& terminals,
                                   const DemandMatrix& demand) {
  const int S = static_cast<int>(terminals.size());
  A2A_REQUIRE(S >= 2, "bound needs >= 2 terminals");
  A2A_REQUIRE(demand.num_terminals() == S,
              "demand matrix size does not match terminal count");
  double total_capacity = 0.0;
  for (const Edge& e : g.edges()) total_capacity += e.capacity;
  A2A_REQUIRE(total_capacity > 0.0, "graph has no capacity");

  double weighted_distance = 0.0;
  for (int si = 0; si < S; ++si) {
    if (demand.row_sum(si) <= 0.0) continue;
    const auto dist = bfs_distances(g, terminals[static_cast<std::size_t>(si)]);
    for (int di = 0; di < S; ++di) {
      const double w = demand.at(si, di);
      if (w <= 0.0) continue;
      const int d =
          dist[static_cast<std::size_t>(terminals[static_cast<std::size_t>(di)])];
      A2A_REQUIRE(d != kUnreachable, "terminal unreachable for demand pair");
      weighted_distance += w * static_cast<double>(d);
    }
  }
  double bound = weighted_distance / total_capacity;

  for (int si = 0; si < S; ++si) {
    const NodeId u = terminals[static_cast<std::size_t>(si)];
    double out_cap = 0.0, in_cap = 0.0;
    for (const EdgeId e : g.out_edges(u)) out_cap += g.edge(e).capacity;
    for (const EdgeId e : g.in_edges(u)) in_cap += g.edge(e).capacity;
    const double row = demand.row_sum(si);
    const double col = demand.col_sum(si);
    if (row > 0.0) {
      A2A_REQUIRE(out_cap > 0.0, "terminal ", u, " has demand but no out capacity");
      bound = std::max(bound, row / out_cap);
    }
    if (col > 0.0) {
      A2A_REQUIRE(in_cap > 0.0, "terminal ", u, " has demand but no in capacity");
      bound = std::max(bound, col / in_cap);
    }
  }
  return bound;
}

double regular_graph_time_bound(int n, int d) {
  A2A_REQUIRE(n >= 2 && d >= 1, "bound needs n >= 2, d >= 1");
  // Distance sum of the best-case arborescence: d^k nodes at depth k until
  // N nodes are covered.
  long long remaining = n - 1;
  long long level_size = 1;
  long long depth = 1;
  double distance_sum = 0.0;
  while (remaining > 0) {
    level_size = std::min<long long>(level_size * d, remaining);
    distance_sum += static_cast<double>(depth) * static_cast<double>(level_size);
    remaining -= level_size;
    ++depth;
  }
  return distance_sum / static_cast<double>(d);
}

}  // namespace a2a
