// Widest-path extraction (MCF-extP, §3.2.1) and flow post-processing.
//
// The widest-path extractor turns per-commodity link flows into weighted
// source routes; the same machinery doubles as the post-processing step of
// §3.1.1 (restoring exact flow conservation) and as the combinatorial child
// solver of the decomposed MCF.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/paths.hpp"
#include "mcf/sparse_flow.hpp"

namespace a2a {

/// One weighted route of a commodity.
struct WeightedPath {
  Path path;
  double weight = 0.0;
};

/// Removes directed cycles from a single-commodity edge-flow vector in place
/// (repeatedly finds a positive-flow cycle and subtracts its bottleneck).
/// Flow values below `tol` are zeroed first.
void cancel_cycles(const DiGraph& g, std::vector<double>& flow,
                   double tol = 1e-9);

/// Greedy widest-path extraction (§3.2.1): repeatedly take the maximum-
/// bottleneck s->t path in the positive-flow subgraph, record it, subtract
/// its rate, until no positive path remains or `target` total weight has
/// been extracted (target < 0 means extract everything).
[[nodiscard]] std::vector<WeightedPath> extract_widest_paths(
    const DiGraph& g, NodeId s, NodeId t, std::vector<double> flow,
    double target = -1.0, double tol = 1e-9);

/// Sparse-flow overload: the decomposed pipeline stores per-commodity flows
/// as (edge, value) supports; extraction densifies once internally.
[[nodiscard]] std::vector<WeightedPath> extract_widest_paths(
    const DiGraph& g, NodeId s, NodeId t, const SparseFlow& flow,
    double target = -1.0, double tol = 1e-9);

/// §3.1.1 post-processing: prunes a per-commodity flow so conservation holds
/// exactly and exactly `amount` is delivered from s to t (extracts paths and
/// re-sums them). Returns the pruned edge-flow vector.
[[nodiscard]] std::vector<double> prune_to_exact_flow(const DiGraph& g,
                                                      NodeId s, NodeId t,
                                                      const std::vector<double>& flow,
                                                      double amount);

/// Max-flow from s to each of `sinks` (capacity `sink_cap` per sink) within
/// per-edge capacities `cap`, via widest-path augmentation. Returns the
/// per-sink delivered amounts and, through `edge_flow_out` (optional), the
/// per-(sink, edge) flows. This is the combinatorial child solver: with
/// cap = the master's per-source flow and sink_cap = F it splits the
/// aggregate into per-destination flows without an LP.
struct MultiSinkFlow {
  std::vector<double> delivered;                    ///< per sink.
  std::vector<std::vector<double>> per_sink_flow;   ///< [sink][edge].
};
[[nodiscard]] MultiSinkFlow split_source_flow(const DiGraph& g, NodeId s,
                                              const std::vector<NodeId>& sinks,
                                              const std::vector<double>& cap,
                                              double sink_cap,
                                              double tol = 1e-9);

/// Per-sink-capacity overload for weighted demands: sink i absorbs at most
/// sink_caps[i] (= w(s, sink_i) · F in the decomposed pipeline). The scalar
/// overload is the uniform special case.
[[nodiscard]] MultiSinkFlow split_source_flow(const DiGraph& g, NodeId s,
                                              const std::vector<NodeId>& sinks,
                                              const std::vector<double>& cap,
                                              const std::vector<double>& sink_caps,
                                              double tol = 1e-9);

}  // namespace a2a
