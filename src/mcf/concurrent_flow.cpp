#include "mcf/concurrent_flow.hpp"

#include <algorithm>

#include "collectives/demand.hpp"

namespace a2a {

TerminalPairs::TerminalPairs(std::vector<NodeId> terminals)
    : terminals_(std::move(terminals)) {}

int TerminalPairs::index(int si, int di) const {
  A2A_REQUIRE(si != di, "commodity with equal endpoints");
  A2A_REQUIRE(si >= 0 && si < num_terminals() && di >= 0 && di < num_terminals(),
              "terminal index out of range");
  return si * (num_terminals() - 1) + (di > si ? di - 1 : di);
}

std::pair<int, int> TerminalPairs::terminal_indices(int idx) const {
  A2A_REQUIRE(idx >= 0 && idx < count(), "commodity index out of range");
  const int si = idx / (num_terminals() - 1);
  int di = idx % (num_terminals() - 1);
  if (di >= si) ++di;
  return {si, di};
}

std::pair<NodeId, NodeId> TerminalPairs::nodes(int idx) const {
  const auto [si, di] = terminal_indices(idx);
  return {terminals_[static_cast<std::size_t>(si)],
          terminals_[static_cast<std::size_t>(di)]};
}

std::vector<double> LinkFlowSolution::total_edge_flow(const DiGraph& g) const {
  std::vector<double> total(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (const auto& commodity : per_commodity) {
    for (std::size_t k = 0; k < commodity.size(); ++k) {
      total[static_cast<std::size_t>(commodity.edges()[k])] += commodity.values()[k];
    }
  }
  return total;
}

std::vector<NodeId> all_nodes(const DiGraph& g) {
  std::vector<NodeId> nodes(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) nodes[static_cast<std::size_t>(u)] = u;
  return nodes;
}

LpModel build_link_mcf_model(const DiGraph& g, const TerminalPairs& pairs,
                             int* f_var_out, const DemandMatrix* demand) {
  if (demand != nullptr) {
    A2A_REQUIRE(demand->num_terminals() == pairs.num_terminals(),
                "demand matrix size does not match terminal count");
  }
  const int E = g.num_edges();
  const int K = pairs.count();
  LpModel model(Sense::kMaximize);
  // Variables: f[(s,d), e] laid out commodity-major, then F last. Flow of a
  // commodity leaving its sink or entering its source is useless circulation
  // and is fixed to zero via bounds; so is every variable of a zero-weight
  // commodity.
  for (int k = 0; k < K; ++k) {
    const auto [s, d] = pairs.nodes(k);
    const bool zero = demand_weight(demand, pairs, k) <= 0.0;
    for (int e = 0; e < E; ++e) {
      const Edge& edge = g.edge(e);
      const bool useless = edge.from == d || edge.to == s;
      model.add_variable(0.0, (useless || zero) ? 0.0 : kInfinity, 0.0);
    }
  }
  const int f_var = model.add_variable(0.0, kInfinity, 1.0);
  if (f_var_out != nullptr) *f_var_out = f_var;
  auto var = [&](int k, int e) { return link_mcf_var(E, k, e); };

  // (2) capacity per edge.
  for (int e = 0; e < E; ++e) {
    const int row = model.add_row(RowType::kLessEqual, g.edge(e).capacity);
    for (int k = 0; k < K; ++k) model.add_coefficient(row, var(k, e), 1.0);
  }
  // (3) relaxed conservation at every u not in {s, d}:  out - in <= 0.
  for (int k = 0; k < K; ++k) {
    const auto [s, d] = pairs.nodes(k);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == s || u == d) continue;
      const int row = model.add_row(RowType::kLessEqual, 0.0);
      for (const EdgeId e : g.out_edges(u)) model.add_coefficient(row, var(k, e), 1.0);
      for (const EdgeId e : g.in_edges(u)) model.add_coefficient(row, var(k, e), -1.0);
    }
    // (4) demand at the sink: in(d) - w_k * F >= 0. A zero-weight commodity
    // keeps its (trivially satisfied) row so the model shape is independent
    // of the weights — only coefficients change.
    const double w = demand_weight(demand, pairs, k);
    const int demand_row = model.add_row(RowType::kGreaterEqual, 0.0);
    for (const EdgeId e : g.in_edges(d)) {
      model.add_coefficient(demand_row, var(k, e), 1.0);
    }
    if (w > 0.0) model.add_coefficient(demand_row, f_var, -w);
  }
  return model;
}

LinkFlowSolution solve_link_mcf_exact(const DiGraph& g,
                                      const std::vector<NodeId>& terminals,
                                      const SimplexOptions& lp, LpBasis* warm,
                                      LpWarmMode warm_mode,
                                      const DemandMatrix* demand) {
  A2A_REQUIRE(terminals.size() >= 2, "need at least two terminals");
  TerminalPairs pairs(terminals);
  const int E = g.num_edges();
  const int K = pairs.count();
  int f_var = -1;
  const LpModel model = build_link_mcf_model(g, pairs, &f_var, demand);
  auto var = [&](int k, int e) { return link_mcf_var(E, k, e); };

  const LpSolution sol = solve_lp_warm(model, lp, warm, warm_mode);
  if (!sol.optimal()) {
    throw SolverError("link MCF LP failed: " + to_string(sol.status));
  }
  LinkFlowSolution out;
  out.pairs = pairs;
  out.concurrent_flow = sol.values[static_cast<std::size_t>(f_var)];
  out.per_commodity.resize(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    auto& flow = out.per_commodity[static_cast<std::size_t>(k)];
    for (int e = 0; e < E; ++e) {
      const double v = sol.values[static_cast<std::size_t>(var(k, e))];
      if (v > 1e-10) flow.push(e, v);
    }
  }
  out.lp_iterations = sol.iterations;
  out.solve_seconds = sol.solve_seconds;
  return out;
}

GroupedFlowSolution solve_master_lp(const DiGraph& g,
                                    const std::vector<NodeId>& terminals,
                                    const SimplexOptions& lp, LpBasis* warm,
                                    LpWarmMode warm_mode,
                                    const DemandMatrix* demand) {
  A2A_REQUIRE(terminals.size() >= 2, "need at least two terminals");
  const int E = g.num_edges();
  const int S = static_cast<int>(terminals.size());
  if (demand != nullptr) {
    A2A_REQUIRE(demand->num_terminals() == S,
                "demand matrix size does not match terminal count");
  }
  std::vector<int> terminal_index(static_cast<std::size_t>(g.num_nodes()), -1);
  for (int s = 0; s < S; ++s) {
    terminal_index[static_cast<std::size_t>(terminals[static_cast<std::size_t>(s)])] = s;
  }

  LpModel model(Sense::kMaximize);
  // Grouped flow back into its own source is useless; fix it to zero.
  for (int s = 0; s < S; ++s) {
    const NodeId src = terminals[static_cast<std::size_t>(s)];
    for (int e = 0; e < E; ++e) {
      const bool useless = g.edge(e).to == src;
      model.add_variable(0.0, useless ? 0.0 : kInfinity, 0.0);
    }
  }
  const int f_var = model.add_variable(0.0, kInfinity, 1.0);
  auto var = [&](int s, int e) { return s * E + e; };

  // (7) capacity per edge.
  for (int e = 0; e < E; ++e) {
    const int row = model.add_row(RowType::kLessEqual, g.edge(e).capacity);
    for (int s = 0; s < S; ++s) model.add_coefficient(row, var(s, e), 1.0);
  }
  // (8) grouped conservation: at terminal u != s, w(s,u)·F + out <= in; at
  // non-terminal forwarders, out <= in.
  for (int s = 0; s < S; ++s) {
    const NodeId src = terminals[static_cast<std::size_t>(s)];
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == src) continue;
      const int row = model.add_row(RowType::kLessEqual, 0.0);
      for (const EdgeId e : g.out_edges(u)) model.add_coefficient(row, var(s, e), 1.0);
      for (const EdgeId e : g.in_edges(u)) model.add_coefficient(row, var(s, e), -1.0);
      const int u_idx = terminal_index[static_cast<std::size_t>(u)];
      if (u_idx >= 0) {
        const double w = demand == nullptr ? 1.0 : demand->at(s, u_idx);
        if (w > 0.0) model.add_coefficient(row, f_var, w);
      }
    }
  }

  const LpSolution sol = solve_lp_warm(model, lp, warm, warm_mode);
  if (!sol.optimal()) {
    throw SolverError("master MCF LP failed: " + to_string(sol.status));
  }
  GroupedFlowSolution out;
  out.terminals = terminals;
  out.concurrent_flow = sol.values[static_cast<std::size_t>(f_var)];
  out.per_source.assign(static_cast<std::size_t>(S),
                        std::vector<double>(static_cast<std::size_t>(E), 0.0));
  for (int s = 0; s < S; ++s) {
    for (int e = 0; e < E; ++e) {
      const double v = sol.values[static_cast<std::size_t>(var(s, e))];
      out.per_source[static_cast<std::size_t>(s)][static_cast<std::size_t>(e)] =
          v > 1e-10 ? v : 0.0;
    }
  }
  out.lp_iterations = sol.iterations;
  out.solve_seconds = sol.solve_seconds;
  return out;
}

std::vector<std::vector<double>> solve_child_lp(
    const DiGraph& g, const std::vector<NodeId>& terminals, int source_index,
    const std::vector<double>& source_flow, double F,
    const SimplexOptions& lp, LpBasis* warm, LpWarmMode warm_mode,
    const DemandMatrix* demand) {
  const int E = g.num_edges();
  const int S = static_cast<int>(terminals.size());
  A2A_REQUIRE(source_index >= 0 && source_index < S, "source index out of range");
  if (demand != nullptr) {
    A2A_REQUIRE(demand->num_terminals() == S,
                "demand matrix size does not match terminal count");
  }
  A2A_REQUIRE(source_flow.size() == static_cast<std::size_t>(E),
              "source flow vector size mismatch");
  const NodeId src = terminals[static_cast<std::size_t>(source_index)];

  LpModel model(Sense::kMinimize);
  // Variables f[(s,d), e] for d over the other terminals; objective (10)
  // minimizes total flow so the solver prunes slack circulation itself.
  std::vector<int> dest_of_slot;
  for (int d = 0; d < S; ++d) {
    if (d == source_index) continue;
    dest_of_slot.push_back(d);
  }
  const int D = static_cast<int>(dest_of_slot.size());
  for (int slot = 0; slot < D; ++slot) {
    for (int e = 0; e < E; ++e) model.add_variable(0.0, kInfinity, 1.0);
  }
  auto var = [&](int slot, int e) { return slot * E + e; };

  // (11) per-edge cap = master's per-source flow.
  for (int e = 0; e < E; ++e) {
    const int row = model.add_row(
        RowType::kLessEqual, source_flow[static_cast<std::size_t>(e)] + 1e-9);
    for (int slot = 0; slot < D; ++slot) model.add_coefficient(row, var(slot, e), 1.0);
  }
  for (int slot = 0; slot < D; ++slot) {
    const NodeId dst = terminals[static_cast<std::size_t>(dest_of_slot[static_cast<std::size_t>(slot)])];
    // (12) conservation at u not in {src, dst}.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == src || u == dst) continue;
      const int row = model.add_row(RowType::kLessEqual, 0.0);
      for (const EdgeId e : g.out_edges(u)) model.add_coefficient(row, var(slot, e), 1.0);
      for (const EdgeId e : g.in_edges(u)) model.add_coefficient(row, var(slot, e), -1.0);
    }
    // (13) demand: in(dst) >= w(s,dst)·F (tiny slack for LP round-off).
    const double w = demand == nullptr
                         ? 1.0
                         : demand->at(source_index,
                                      dest_of_slot[static_cast<std::size_t>(slot)]);
    const int demand_row = model.add_row(RowType::kGreaterEqual, w * F - 1e-9);
    for (const EdgeId e : g.in_edges(dst)) {
      model.add_coefficient(demand_row, var(slot, e), 1.0);
    }
  }

  const LpSolution sol = solve_lp_warm(model, lp, warm, warm_mode);
  if (!sol.optimal()) {
    throw SolverError("child MCF LP failed: " + to_string(sol.status));
  }
  std::vector<std::vector<double>> out(static_cast<std::size_t>(S));
  for (int slot = 0; slot < D; ++slot) {
    auto& flows = out[static_cast<std::size_t>(dest_of_slot[static_cast<std::size_t>(slot)])];
    flows.assign(static_cast<std::size_t>(E), 0.0);
    for (int e = 0; e < E; ++e) {
      const double v = sol.values[static_cast<std::size_t>(var(slot, e))];
      flows[static_cast<std::size_t>(e)] = v > 1e-10 ? v : 0.0;
    }
  }
  return out;
}

}  // namespace a2a
