// Time-stepped MCF (tsMCF) — §3.1.3, eqs. (15)-(20).
//
// For ML-style fabrics where accelerators exchange finite chunks in
// synchronized steps, the fluid MCF is extended to the temporal domain. The
// exact LP is solved on the time-expanded structure and yields, for every
// commodity, edge, and step, the fraction of the shard crossing that edge at
// that step; the objective Σ_t U_t is the completion time in units of
// (shard bytes / link bandwidth), so the optimum equals 1/F of the fluid
// MCF when `steps` is large enough.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "lp/simplex.hpp"
#include "mcf/concurrent_flow.hpp"

namespace a2a {

struct TsMcfSolution {
  int steps = 0;
  /// Σ_t U_t: total per-link time (in shard-transmission units) of the
  /// schedule; the per-step peak utilizations.
  double total_utilization = 0.0;
  std::vector<double> step_utilization;
  TerminalPairs pairs{std::vector<NodeId>{}};
  /// flow[pair][step-1][edge] — fraction of the (s,d) shard crossing `edge`
  /// during that step.
  std::vector<std::vector<std::vector<double>>> flow;
  long long lp_iterations = 0;
  double solve_seconds = 0.0;
};

/// Variable layout of the tsMCF LP: flow of commodity k on edge e during
/// step t (1-based). The single definition shared by the model builder and
/// every consumer of LpSolution::values.
[[nodiscard]] inline int tsmcf_var(int num_edges, int steps, int k, int e,
                                   int t) {
  return (k * num_edges + e) * steps + (t - 1);
}

/// Builds the tsMCF LP (eqs. 15–20) without solving it. Variables follow
/// tsmcf_var() with the per-step peak-utilization variables U_t appended
/// last (`*u_vars`, one per step). Exposed so benchmarks and tests can
/// time/inspect the exact model solve_tsmcf_exact runs. With `demand`,
/// commodity k ships a shard of w_k units (eq. 19 rhs and the per-variable
/// upper bound become w_k; zero-weight commodities are fixed to zero and
/// exempt from the distance feasibility check). A unit matrix builds the
/// identical model to nullptr.
[[nodiscard]] LpModel build_tsmcf_model(const DiGraph& g, int steps,
                                        const TerminalPairs& pairs,
                                        std::vector<int>* u_vars = nullptr,
                                        const DemandMatrix* demand = nullptr);

/// Exact tsMCF. The LP grows as O(K * E * steps) variables, so this is for
/// small fabrics (the paper's N=8/N=27 testbeds; N=27 already requires the
/// decomposed path-unrolled pipeline in schedule/compile_link.hpp).
/// `steps` must be >= diameter(g). A non-null `warm` is used as the LP
/// starting basis when non-empty and receives the final basis, letting
/// repeated solves on the same fabric shape skip phase 1.
[[nodiscard]] TsMcfSolution solve_tsmcf_exact(const DiGraph& g, int steps,
                                              const std::vector<NodeId>& terminals,
                                              const SimplexOptions& lp = {},
                                              LpBasis* warm = nullptr,
                                              LpWarmMode warm_mode = LpWarmMode::kAuto,
                                              const DemandMatrix* demand = nullptr);

}  // namespace a2a
