#include "mcf/timestepped.hpp"

#include "collectives/demand.hpp"
#include "graph/algorithms.hpp"

namespace a2a {

LpModel build_tsmcf_model(const DiGraph& g, int steps,
                          const TerminalPairs& pairs,
                          std::vector<int>* u_vars,
                          const DemandMatrix* demand) {
  A2A_REQUIRE(steps >= 1, "tsMCF needs >= 1 step");
  if (demand != nullptr) {
    A2A_REQUIRE(demand->num_terminals() == pairs.num_terminals(),
                "demand matrix size does not match terminal count");
  }
  const int K = pairs.count();
  const int E = g.num_edges();

  // Reachability pruning: commodity (s,d) flow can cross edge (u,v) at step
  // t only if t >= dist(s,u)+1 and t <= steps - dist(v,d); everything else
  // is fixed at zero via bounds, which shrinks the LP dramatically.
  std::vector<std::vector<int>> dist_from(static_cast<std::size_t>(g.num_nodes()));
  std::vector<std::vector<int>> dist_to(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    dist_from[static_cast<std::size_t>(u)] = bfs_distances(g, u);
    dist_to[static_cast<std::size_t>(u)] = bfs_distances_to(g, u);
  }

  LpModel model(Sense::kMinimize);
  auto var = [&](int k, int e, int t) { return tsmcf_var(E, steps, k, e, t); };
  for (int k = 0; k < K; ++k) {
    const auto [s, d] = pairs.nodes(k);
    const double w = demand_weight(demand, pairs, k);
    if (w > 0.0) {
      A2A_REQUIRE(dist_from[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] <= steps,
                  "steps below the (s,d) distance — schedule infeasible");
    }
    for (int e = 0; e < E; ++e) {
      const Edge& edge = g.edge(e);
      const int earliest =
          dist_from[static_cast<std::size_t>(s)][static_cast<std::size_t>(edge.from)];
      const int tail =
          dist_to[static_cast<std::size_t>(d)][static_cast<std::size_t>(edge.to)];
      for (int t = 1; t <= steps; ++t) {
        const bool useless = w <= 0.0 || edge.to == s || edge.from == d ||
                             earliest == kUnreachable || tail == kUnreachable ||
                             t < earliest + 1 || t > steps - tail;
        model.add_variable(0.0, useless ? 0.0 : w, 0.0);
      }
    }
  }
  // U_t variables, objective (15).
  std::vector<int> u_var(static_cast<std::size_t>(steps));
  for (int t = 1; t <= steps; ++t) {
    u_var[static_cast<std::size_t>(t - 1)] = model.add_variable(0.0, kInfinity, 1.0);
  }

  // (16): per edge and step, total commodity flow <= U_t (scaled by 1/cap
  // for non-unit capacities).
  for (int e = 0; e < E; ++e) {
    const double inv_cap = 1.0 / g.edge(e).capacity;
    for (int t = 1; t <= steps; ++t) {
      const int row = model.add_row(RowType::kLessEqual, 0.0);
      for (int k = 0; k < K; ++k) model.add_coefficient(row, var(k, e, t), inv_cap);
      model.add_coefficient(row, u_var[static_cast<std::size_t>(t - 1)], -1.0);
    }
  }
  for (int k = 0; k < K; ++k) {
    const auto [s, d] = pairs.nodes(k);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == s || u == d) continue;
      // (17): cumulative sends through step t <= cumulative receives
      // through step t-1, for t = 2..steps (t=1 sends are zero by bounds).
      for (int t = 2; t <= steps; ++t) {
        const int row = model.add_row(RowType::kLessEqual, 0.0);
        for (const EdgeId e : g.out_edges(u)) {
          for (int tp = 1; tp <= t; ++tp) model.add_coefficient(row, var(k, e, tp), 1.0);
        }
        for (const EdgeId e : g.in_edges(u)) {
          for (int tp = 1; tp < t; ++tp) model.add_coefficient(row, var(k, e, tp), -1.0);
        }
      }
      // (18): everything received is eventually forwarded.
      const int row = model.add_row(RowType::kEqual, 0.0);
      for (const EdgeId e : g.out_edges(u)) {
        for (int t = 1; t <= steps; ++t) model.add_coefficient(row, var(k, e, t), 1.0);
      }
      for (const EdgeId e : g.in_edges(u)) {
        for (int t = 1; t <= steps; ++t) model.add_coefficient(row, var(k, e, t), -1.0);
      }
    }
    // (19): the full w_k-unit shard leaves s and arrives at d (w_k == 1 for
    // unit demand; zero-weight commodities get trivially satisfied rows so
    // the model shape does not depend on the weights).
    const double w = demand_weight(demand, pairs, k);
    const int src_row = model.add_row(RowType::kEqual, w);
    for (const EdgeId e : g.out_edges(s)) {
      for (int t = 1; t <= steps; ++t) model.add_coefficient(src_row, var(k, e, t), 1.0);
    }
    const int dst_row = model.add_row(RowType::kEqual, w);
    for (const EdgeId e : g.in_edges(d)) {
      for (int t = 1; t <= steps; ++t) model.add_coefficient(dst_row, var(k, e, t), 1.0);
    }
  }
  if (u_vars != nullptr) *u_vars = u_var;
  return model;
}

TsMcfSolution solve_tsmcf_exact(const DiGraph& g, int steps,
                                const std::vector<NodeId>& terminals,
                                const SimplexOptions& lp, LpBasis* warm,
                                LpWarmMode warm_mode,
                                const DemandMatrix* demand) {
  TerminalPairs pairs(terminals);
  const int K = pairs.count();
  const int E = g.num_edges();
  std::vector<int> u_var;
  const LpModel model = build_tsmcf_model(g, steps, pairs, &u_var, demand);
  auto var = [&](int k, int e, int t) { return tsmcf_var(E, steps, k, e, t); };

  const LpSolution sol = solve_lp_warm(model, lp, warm, warm_mode);
  if (!sol.optimal()) {
    throw SolverError("tsMCF LP failed: " + to_string(sol.status));
  }
  TsMcfSolution out;
  out.steps = steps;
  out.pairs = pairs;
  out.step_utilization.resize(static_cast<std::size_t>(steps));
  for (int t = 1; t <= steps; ++t) {
    out.step_utilization[static_cast<std::size_t>(t - 1)] =
        sol.values[static_cast<std::size_t>(u_var[static_cast<std::size_t>(t - 1)])];
    out.total_utilization += out.step_utilization[static_cast<std::size_t>(t - 1)];
  }
  out.flow.assign(static_cast<std::size_t>(K),
                  std::vector<std::vector<double>>(
                      static_cast<std::size_t>(steps),
                      std::vector<double>(static_cast<std::size_t>(E), 0.0)));
  for (int k = 0; k < K; ++k) {
    for (int e = 0; e < E; ++e) {
      for (int t = 1; t <= steps; ++t) {
        const double v = sol.values[static_cast<std::size_t>(var(k, e, t))];
        if (v > 1e-10) {
          out.flow[static_cast<std::size_t>(k)][static_cast<std::size_t>(t - 1)]
                  [static_cast<std::size_t>(e)] = v;
        }
      }
    }
  }
  out.lp_iterations = sol.iterations;
  out.solve_seconds = sol.solve_seconds;
  return out;
}

}  // namespace a2a
