// Link-variable max-concurrent multi-commodity flow — §3.1.1 of the paper.
//
// The all-to-all collective on G is modelled as an MCF with one unit-demand
// commodity per ordered terminal pair; the optimal concurrent rate F gives
// the throughput upper bound (N-1)·F·b and 1/F is the "all-to-all time"
// plotted throughout §5.
#pragma once

#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "lp/simplex.hpp"
#include "mcf/sparse_flow.hpp"

namespace a2a {

class DemandMatrix;  // collectives/demand.hpp; nullptr params mean unit demand

/// Ordered pairs over a terminal set. On plain fabrics the terminals are all
/// nodes; on Fig. 2-augmented graphs they are the host nodes only.
class TerminalPairs {
 public:
  explicit TerminalPairs(std::vector<NodeId> terminals);

  [[nodiscard]] int num_terminals() const {
    return static_cast<int>(terminals_.size());
  }
  [[nodiscard]] int count() const {
    return num_terminals() * (num_terminals() - 1);
  }
  /// Index of the commodity (terminals[si] -> terminals[di]), si != di.
  [[nodiscard]] int index(int si, int di) const;
  /// Inverse of index(): terminal indices of commodity `idx`.
  [[nodiscard]] std::pair<int, int> terminal_indices(int idx) const;
  /// Node ids of commodity `idx`.
  [[nodiscard]] std::pair<NodeId, NodeId> nodes(int idx) const;

  [[nodiscard]] const std::vector<NodeId>& terminals() const {
    return terminals_;
  }

 private:
  std::vector<NodeId> terminals_;
};

/// Per-commodity link flows at a common concurrent rate F.
struct LinkFlowSolution {
  double concurrent_flow = 0.0;  ///< F
  TerminalPairs pairs{std::vector<NodeId>{}};
  /// per_commodity[pair index][edge id] — flow of that commodity on the
  /// edge. Sparse: each commodity touches a handful of edges, so the old
  /// dense S^2 x E matrix of doubles is now (edge, value) support lists.
  std::vector<SparseFlow> per_commodity;
  long long lp_iterations = 0;
  double solve_seconds = 0.0;

  /// Total flow on each edge (sum over commodities).
  [[nodiscard]] std::vector<double> total_edge_flow(const DiGraph& g) const;
};

/// Aggregate per-source flows (the master solution of §3.1.2).
struct GroupedFlowSolution {
  double concurrent_flow = 0.0;  ///< F
  std::vector<NodeId> terminals;
  /// per_source[terminal index][edge id]
  std::vector<std::vector<double>> per_source;
  double solve_seconds = 0.0;
  long long lp_iterations = 0;
};

/// All nodes of g as the terminal set.
[[nodiscard]] std::vector<NodeId> all_nodes(const DiGraph& g);

/// Variable layout of the link-MCF LP: commodity-major flow variables. The
/// single definition shared by the model builder and every consumer of
/// LpSolution::values.
[[nodiscard]] inline int link_mcf_var(int num_edges, int k, int e) {
  return k * num_edges + e;
}

/// Builds the link-MCF LP (eqs. 1–5) without solving it. Variables follow
/// link_mcf_var() with the concurrent rate F last (`*f_var`). Exposed so
/// benchmarks and tests can time/inspect the exact model the solver entry
/// points run. A non-null `demand` weights each commodity's demand row by
/// w_k (eq. 4 becomes in(d) >= w_k * F); zero-weight commodities get their
/// variables fixed to zero. A unit matrix builds the identical model to
/// nullptr — the weighted path is a strict generalization.
[[nodiscard]] LpModel build_link_mcf_model(const DiGraph& g,
                                           const TerminalPairs& pairs,
                                           int* f_var = nullptr,
                                           const DemandMatrix* demand = nullptr);

/// Exact link-based MCF (eqs. 1–5). Tractable only at small N (the point of
/// Fig. 7); throws SolverError if the LP fails numerically. A non-null
/// `warm` is used as the LP starting basis when non-empty and is overwritten
/// with the final basis, so sweeps over perturbed instances (Fig. 9) restart
/// near-optimal. F is per unit demand: commodity k receives w_k * F.
[[nodiscard]] LinkFlowSolution solve_link_mcf_exact(
    const DiGraph& g, const std::vector<NodeId>& terminals,
    const SimplexOptions& lp = {}, LpBasis* warm = nullptr,
    LpWarmMode warm_mode = LpWarmMode::kAuto,
    const DemandMatrix* demand = nullptr);

/// Exact master LP (eqs. 6–9): grouped source-rooted commodities. Warm-start
/// semantics as in solve_link_mcf_exact(). With `demand`, the grouped
/// conservation row (eq. 8) requires w(s,u) * F net inflow at terminal u.
[[nodiscard]] GroupedFlowSolution solve_master_lp(
    const DiGraph& g, const std::vector<NodeId>& terminals,
    const SimplexOptions& lp = {}, LpBasis* warm = nullptr,
    LpWarmMode warm_mode = LpWarmMode::kAuto,
    const DemandMatrix* demand = nullptr);

/// Exact child LP (eqs. 10–14) for one source: splits the master's
/// per-source aggregate flow into per-destination flows at rate F.
/// Returns flows indexed [destination terminal index][edge]; the source's
/// own slot is left empty. Child LPs of different sources share their shape,
/// so one source's final basis (`warm`, in/out) seeds the next source's
/// solve. With `demand`, destination d's demand row asks for w(s,d) * F.
[[nodiscard]] std::vector<std::vector<double>> solve_child_lp(
    const DiGraph& g, const std::vector<NodeId>& terminals, int source_index,
    const std::vector<double>& source_flow, double F,
    const SimplexOptions& lp = {}, LpBasis* warm = nullptr,
    LpWarmMode warm_mode = LpWarmMode::kAuto,
    const DemandMatrix* demand = nullptr);

}  // namespace a2a
