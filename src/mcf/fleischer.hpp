// Fleischer / Garg–Könemann style FPTAS for maximum concurrent flow.
//
// Two roles in this repository (mirroring §2.3 and §5.3):
//   1. It reimplements the Karakostas/Fleischer FPTAS baseline of Fig. 7.
//   2. At large N — beyond the dense simplex — it serves as the approximate
//      master solver of the decomposed MCF pipeline (at tight epsilon), with
//      the combinatorial child splitter recovering per-commodity flows.
//
// Grouped mode exploits the paper's source-grouping insight directly: a
// phase routes one unit of demand from a source to *every* sink along the
// current shortest-path tree, so a phase costs one Dijkstra per source
// instead of one per commodity.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/paths.hpp"
#include "mcf/concurrent_flow.hpp"

namespace a2a {

struct FleischerOptions {
  double epsilon = 0.05;       ///< target (1-O(eps)) approximation.
  long long max_phases = 200'000;
  /// Wall-clock budget in seconds; 0 = unlimited. Checked at phase
  /// boundaries only — the congestion rescale makes the flow accumulated by
  /// *completed* phases feasible, so stopping there keeps the anytime
  /// guarantee (a weaker F, never an invalid flow). At least one phase
  /// always runs.
  double time_limit_s = 0.0;
};

/// Grouped-source concurrent flow: demands are 1 from every terminal to
/// every other terminal (or w(s,d) under a non-null demand matrix); the
/// result reports feasible per-source flows after congestion rescaling, and
/// F = achieved common rate per unit demand (sink d of source s receives
/// w(s,d)·F). A unit matrix routes identically to nullptr.
[[nodiscard]] GroupedFlowSolution fleischer_grouped(
    const DiGraph& g, const std::vector<NodeId>& terminals,
    const FleischerOptions& options = {},
    const DemandMatrix* demand = nullptr);

/// Candidate path sets for the restricted-path variant (= the pMCF of
/// §3.1.4 solved approximately): commodities[i] flows only on candidates[i].
/// `demands` carries per-commodity weights; empty means unit demand for all
/// (the pre-existing all-to-all shape). Zero-weight pairs are never added
/// by the builders, so every listed commodity moves bytes.
struct PathSet {
  std::vector<std::pair<NodeId, NodeId>> commodities;
  std::vector<std::vector<Path>> candidates;
  std::vector<double> demands;

  [[nodiscard]] double demand_of(std::size_t k) const {
    return demands.empty() ? 1.0 : demands[k];
  }
};

struct PathFlowSolution {
  double concurrent_flow = 0.0;                 ///< F per unit demand.
  std::vector<std::vector<double>> weights;     ///< [commodity][candidate].
  long long phases = 0;
  double solve_seconds = 0.0;
};

[[nodiscard]] PathFlowSolution fleischer_paths(const DiGraph& g,
                                               const PathSet& paths,
                                               const FleischerOptions& options = {});

}  // namespace a2a
