// Sparse per-commodity edge flows.
//
// A commodity's flow touches a handful of edges (a few paths), but the
// decomposed pipeline used to keep S^2 dense length-E vectors of doubles —
// the dominant memory cost on large terminal sets. SparseFlow stores only
// the (edge, value) support, sorted by edge id; operator[] keeps the old
// dense-indexing call sites working via binary search.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "graph/digraph.hpp"

namespace a2a {

class SparseFlow {
 public:
  SparseFlow() = default;

  /// Builds from a dense edge-flow vector, dropping entries <= tol.
  [[nodiscard]] static SparseFlow from_dense(const std::vector<double>& dense,
                                             double tol = 1e-10) {
    SparseFlow out;
    for (std::size_t e = 0; e < dense.size(); ++e) {
      if (dense[e] > tol) {
        out.edges_.push_back(static_cast<EdgeId>(e));
        out.values_.push_back(dense[e]);
      }
    }
    return out;
  }

  /// Appends an entry; edges must be pushed in increasing order (operator[]
  /// binary-searches the support).
  void push(EdgeId e, double value) {
    A2A_ASSERT(edges_.empty() || e > edges_.back(),
               "SparseFlow entries must be pushed in increasing edge order");
    edges_.push_back(e);
    values_.push_back(value);
  }

  [[nodiscard]] std::size_t size() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }
  [[nodiscard]] const std::vector<EdgeId>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Flow on edge e (0 outside the support). Binary search — kept for the
  /// dense-indexing idiom `flow[e]` used across tests and consumers.
  [[nodiscard]] double operator[](std::size_t e) const {
    const auto it = std::lower_bound(edges_.begin(), edges_.end(),
                                     static_cast<EdgeId>(e));
    if (it == edges_.end() || *it != static_cast<EdgeId>(e)) return 0.0;
    return values_[static_cast<std::size_t>(it - edges_.begin())];
  }

  [[nodiscard]] std::vector<double> to_dense(int num_edges) const {
    std::vector<double> out(static_cast<std::size_t>(num_edges), 0.0);
    for (std::size_t k = 0; k < edges_.size(); ++k) {
      out[static_cast<std::size_t>(edges_[k])] = values_[k];
    }
    return out;
  }

 private:
  std::vector<EdgeId> edges_;    ///< sorted ascending.
  std::vector<double> values_;
};

}  // namespace a2a
