// Decomposed MCF — §3.1.2, the paper's headline scalability contribution.
//
// The O(N^3)-variable link MCF is split into
//   * a master LP on N source-grouped commodities (O(N^2) variables), and
//   * N independent child problems, one per source, run on a thread pool.
//
// Two exactness tiers per stage:
//   master: exact simplex up to a size threshold, Fleischer FPTAS at tight
//           epsilon beyond;
//   child:  the paper's child LP (eqs. 10-14), or an exact combinatorial
//           splitter (max-flow within the master's per-source flow followed
//           by flow decomposition) that avoids the LP entirely — any valid
//           per-destination split attains the same F, so this is a faithful
//           and much faster alternative (measured in the ablation bench).
#pragma once

#include "common/thread_pool.hpp"
#include "mcf/concurrent_flow.hpp"
#include "mcf/fleischer.hpp"

namespace a2a {

enum class MasterMode { kAuto, kExactLp, kFptas };
enum class ChildMode { kLp, kCombinatorial };

struct DecomposedOptions {
  MasterMode master = MasterMode::kAuto;
  ChildMode child = ChildMode::kCombinatorial;
  /// Auto mode uses the exact LP master up to this many terminals. Raised
  /// from 40 with the sparse revised simplex: the GenKautz(56, d=4) master
  /// LP solves in ~40s where the dense solver needed minutes at 40 (see
  /// BENCH_lp.json).
  int exact_master_limit = 56;
  double fptas_epsilon = 0.02;
  SimplexOptions lp;
  /// Warm-start strategy for the exact master and child LPs. kAuto lets a
  /// dual-feasible basis from a prior solve (or the first child) absorb
  /// rhs-only perturbations with the dual simplex instead of restoration.
  LpWarmMode warm_mode = LpWarmMode::kAuto;
  FleischerOptions fptas;
  /// 0 = hardware concurrency.
  unsigned threads = 0;
};

struct DecomposedTiming {
  double master_seconds = 0.0;
  double child_seconds = 0.0;  ///< wall time of the parallel child stage.
};

/// Full decomposed solve: returns per-commodity link flows at the common
/// rate F (the reported F is min(master F, weakest delivered commodity) and
/// equals the master F up to tolerance). A non-null `master_warm` seeds the
/// exact-LP master basis and receives the final one, so repeated pipeline
/// runs over the same fabric shape (cache misses, sweeps) restart
/// near-optimal. Child LPs share a shape across sources: the first child's
/// basis seeds the remaining parallel children automatically.
/// With a non-null `demand`, F is the common rate per unit demand (sink d of
/// source s receives w(s,d)·F); zero-weight sinks are dropped from their
/// source's child problem and silent sources skip the child stage entirely.
[[nodiscard]] LinkFlowSolution solve_decomposed_mcf(
    const DiGraph& g, const std::vector<NodeId>& terminals,
    const DecomposedOptions& options = {}, DecomposedTiming* timing = nullptr,
    LpBasis* master_warm = nullptr, const DemandMatrix* demand = nullptr);

/// Master stage only (mode-dispatched); exposed for Fig. 7's breakdown.
[[nodiscard]] GroupedFlowSolution solve_master(const DiGraph& g,
                                               const std::vector<NodeId>& terminals,
                                               const DecomposedOptions& options = {},
                                               LpBasis* master_warm = nullptr,
                                               const DemandMatrix* demand = nullptr);

}  // namespace a2a
