#include "mcf/decomposed.hpp"

#include <algorithm>
#include <chrono>

#include "collectives/demand.hpp"
#include "mcf/extraction.hpp"
#include "obs/trace.hpp"

namespace a2a {

GroupedFlowSolution solve_master(const DiGraph& g,
                                 const std::vector<NodeId>& terminals,
                                 const DecomposedOptions& options,
                                 LpBasis* master_warm,
                                 const DemandMatrix* demand) {
  MasterMode mode = options.master;
  if (mode == MasterMode::kAuto) {
    mode = static_cast<int>(terminals.size()) <= options.exact_master_limit
               ? MasterMode::kExactLp
               : MasterMode::kFptas;
  }
  if (mode == MasterMode::kExactLp) {
    return solve_master_lp(g, terminals, options.lp, master_warm,
                           options.warm_mode, demand);
  }
  FleischerOptions fo = options.fptas;
  fo.epsilon = options.fptas_epsilon;
  return fleischer_grouped(g, terminals, fo, demand);
}

LinkFlowSolution solve_decomposed_mcf(const DiGraph& g,
                                      const std::vector<NodeId>& terminals,
                                      const DecomposedOptions& options,
                                      DecomposedTiming* timing,
                                      LpBasis* master_warm,
                                      const DemandMatrix* demand) {
  const auto t0 = std::chrono::steady_clock::now();
  const GroupedFlowSolution master = [&] {
    A2A_TRACE_SPAN("mcf.master",
                   std::to_string(terminals.size()) + " terminals");
    return solve_master(g, terminals, options, master_warm, demand);
  }();
  const auto t1 = std::chrono::steady_clock::now();

  const int S = static_cast<int>(terminals.size());
  TerminalPairs pairs(terminals);
  LinkFlowSolution out;
  out.pairs = pairs;
  out.per_commodity.resize(static_cast<std::size_t>(pairs.count()));

  const double F = master.concurrent_flow;
  std::vector<double> weakest(static_cast<std::size_t>(S), F);

  // Silent sources (all-zero demand rows) ship nothing: no child problem.
  std::vector<bool> silent(static_cast<std::size_t>(S), false);
  if (demand != nullptr) {
    for (int si = 0; si < S; ++si) {
      silent[static_cast<std::size_t>(si)] = demand->row_sum(si) <= 0.0;
    }
  }

  // The child LPs of all sources share one shape (same variable and row
  // counts, different rhs), so the first solve's basis is a near-optimal
  // seed for every other source — each parallel task takes a private copy.
  LpBasis child_seed;
  if (options.child == ChildMode::kLp && S > 1 && !silent[0]) {
    const auto flows = solve_child_lp(g, terminals, 0, master.per_source[0], F,
                                      options.lp, &child_seed,
                                      options.warm_mode, demand);
    for (int di = 1; di < S; ++di) {
      const int pair = pairs.index(0, di);
      out.per_commodity[static_cast<std::size_t>(pair)] =
          SparseFlow::from_dense(flows[static_cast<std::size_t>(di)]);
    }
  }

  ThreadPool pool(options.threads);
  pool.parallel_for(static_cast<std::size_t>(S), [&](std::size_t si) {
    if (silent[si]) return;
    // Child solves run on pool workers; the span carries the worker's
    // thread id, so traces show how child LPs spread across the pool.
    A2A_TRACE_SPAN("mcf.child", "source " + std::to_string(si));
    const NodeId src = terminals[si];
    std::vector<NodeId> sinks;
    std::vector<int> sink_terminal_index;
    std::vector<double> sink_weight;
    for (int di = 0; di < S; ++di) {
      if (di == static_cast<int>(si)) continue;
      const double w =
          demand == nullptr ? 1.0 : demand->at(static_cast<int>(si), di);
      if (w <= 0.0) continue;  // zero-weight sinks need no flow
      sinks.push_back(terminals[static_cast<std::size_t>(di)]);
      sink_terminal_index.push_back(di);
      sink_weight.push_back(w);
    }
    if (sinks.empty()) return;
    if (options.child == ChildMode::kLp) {
      if (si == 0) return;  // solved above to produce the shared seed
      LpBasis warm = child_seed;
      const auto flows = solve_child_lp(g, terminals, static_cast<int>(si),
                                        master.per_source[si], F, options.lp,
                                        &warm, options.warm_mode, demand);
      for (std::size_t k = 0; k < sinks.size(); ++k) {
        const int di = sink_terminal_index[k];
        const int pair = pairs.index(static_cast<int>(si), di);
        out.per_commodity[static_cast<std::size_t>(pair)] =
            SparseFlow::from_dense(flows[static_cast<std::size_t>(di)]);
      }
      return;
    }
    // Combinatorial splitter: max-flow within the master's per-source flow,
    // sink-capped at w(s,d)·F, then flow decomposition.
    std::vector<double> sink_caps(sinks.size());
    for (std::size_t k = 0; k < sinks.size(); ++k) sink_caps[k] = sink_weight[k] * F;
    const MultiSinkFlow split =
        split_source_flow(g, src, sinks, master.per_source[si], sink_caps);
    double min_delivered = F;
    for (std::size_t k = 0; k < sinks.size(); ++k) {
      // Normalize to per-unit-demand rate so the common-F minimum compares
      // like with like across unequal weights.
      min_delivered = std::min(min_delivered, split.delivered[k] / sink_weight[k]);
      const int di = sink_terminal_index[k];
      const int pair = pairs.index(static_cast<int>(si), di);
      out.per_commodity[static_cast<std::size_t>(pair)] =
          SparseFlow::from_dense(split.per_sink_flow[k]);
    }
    weakest[si] = min_delivered;
  });
  const auto t2 = std::chrono::steady_clock::now();

  out.concurrent_flow = *std::min_element(weakest.begin(), weakest.end());
  out.lp_iterations = master.lp_iterations;
  out.solve_seconds = std::chrono::duration<double>(t2 - t0).count();
  if (timing != nullptr) {
    timing->master_seconds = std::chrono::duration<double>(t1 - t0).count();
    timing->child_seconds = std::chrono::duration<double>(t2 - t1).count();
  }
  return out;
}

}  // namespace a2a
