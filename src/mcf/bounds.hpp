// Analytical bounds on all-to-all performance — Theorem 1 (§5.4).
#pragma once

#include "graph/digraph.hpp"

namespace a2a {

/// Lower bound on the all-to-all completion time 1/F per unit demand:
///   max( Σ_{s,t} D(s,t) / Σ_e cap_e ,          — aggregate capacity bound
///        max_r (N-1) / outcap(r),              — injection bound
///        max_r (N-1) / incap(r) )              — drain bound
/// The first term is the Theorem-1 bound generalized to irregular capacities
/// (every shard must traverse at least its BFS distance in link-transmissions).
[[nodiscard]] double alltoall_time_lower_bound(const DiGraph& g);

/// Matching upper bound on the concurrent rate: F <= 1 / time_lower_bound.
[[nodiscard]] double concurrent_flow_upper_bound(const DiGraph& g);

/// Theorem-1-style lower bound on completion time 1/F for an arbitrary
/// demand matrix over `terminals` (node ids; demand indices follow terminal
/// order):
///   max( Σ_k w_k · dist(s_k, d_k) / Σ_e cap_e ,   — aggregate capacity
///        max_s rowsum(s) / outcap(s),             — weighted injection
///        max_d colsum(d) / incap(d) )             — weighted drain
/// With unit weights over all nodes this equals alltoall_time_lower_bound.
class DemandMatrix;
[[nodiscard]] double collective_time_lower_bound(
    const DiGraph& g, const std::vector<NodeId>& terminals,
    const DemandMatrix& demand);

/// The Θ(N log_d N) closed form of Theorem 1 for d-regular graphs, i.e. the
/// distance sum of a complete d-ary arborescence divided by d — the ideal
/// floor any N-node degree-d topology can approach (Fig. 10 left).
[[nodiscard]] double regular_graph_time_bound(int n, int d);

}  // namespace a2a
