#include "mcf/path_mcf.hpp"

#include <algorithm>

#include "collectives/demand.hpp"
#include "graph/algorithms.hpp"

namespace a2a {

namespace {

void check_demand_shape(const DemandMatrix* demand,
                        const std::vector<NodeId>& terminals) {
  if (demand == nullptr) return;
  A2A_REQUIRE(demand->num_terminals() == static_cast<int>(terminals.size()),
              "demand matrix size does not match terminal count");
}

}  // namespace

PathSet build_disjoint_path_set(const DiGraph& g,
                                const std::vector<NodeId>& terminals,
                                const DemandMatrix* demand) {
  check_demand_shape(demand, terminals);
  PathSet set;
  for (std::size_t si = 0; si < terminals.size(); ++si) {
    const NodeId s = terminals[si];
    for (std::size_t ti = 0; ti < terminals.size(); ++ti) {
      const NodeId t = terminals[ti];
      if (s == t) continue;
      const double w = demand == nullptr
                           ? 1.0
                           : demand->at(static_cast<int>(si), static_cast<int>(ti));
      if (w <= 0.0) continue;
      auto paths = edge_disjoint_paths(g, s, t);
      A2A_REQUIRE(!paths.empty(), "no path between terminals ", s, " and ", t);
      set.commodities.emplace_back(s, t);
      set.candidates.push_back(std::move(paths));
      if (demand != nullptr) set.demands.push_back(w);
    }
  }
  return set;
}

PathSet build_shortest_path_set(const DiGraph& g,
                                const std::vector<NodeId>& terminals,
                                int per_pair_limit, bool* truncated,
                                const DemandMatrix* demand) {
  check_demand_shape(demand, terminals);
  if (truncated != nullptr) *truncated = false;
  PathSet set;
  for (std::size_t si = 0; si < terminals.size(); ++si) {
    const NodeId s = terminals[si];
    for (std::size_t ti = 0; ti < terminals.size(); ++ti) {
      const NodeId t = terminals[ti];
      if (s == t) continue;
      const double w = demand == nullptr
                           ? 1.0
                           : demand->at(static_cast<int>(si), static_cast<int>(ti));
      if (w <= 0.0) continue;
      bool trunc = false;
      auto paths = enumerate_shortest_paths(g, s, t, per_pair_limit, &trunc);
      if (trunc && truncated != nullptr) *truncated = true;
      set.commodities.emplace_back(s, t);
      set.candidates.push_back(std::move(paths));
      if (demand != nullptr) set.demands.push_back(w);
    }
  }
  return set;
}

namespace {

PathMcfSolution solve_path_mcf_impl(const DiGraph& g, const PathSet& paths,
                                    const SimplexOptions& lp, LpBasis* warm,
                                    LpWarmMode warm_mode, bool throw_on_fail) {
  const std::size_t K = paths.commodities.size();
  A2A_REQUIRE(K >= 1, "empty path set");
  LpModel model(Sense::kMaximize);
  // One variable per (commodity, candidate), then F.
  std::vector<int> first_var(K);
  for (std::size_t k = 0; k < K; ++k) {
    first_var[k] = model.num_variables();
    for (std::size_t p = 0; p < paths.candidates[k].size(); ++p) {
      model.add_variable(0.0, kInfinity, 0.0);
    }
  }
  const int f_var = model.add_variable(0.0, kInfinity, 1.0);

  // (22) capacity rows, built edge-major from the path incidences.
  std::vector<int> cap_row(static_cast<std::size_t>(g.num_edges()), -1);
  for (int e = 0; e < g.num_edges(); ++e) {
    cap_row[static_cast<std::size_t>(e)] =
        model.add_row(RowType::kLessEqual, g.edge(e).capacity);
  }
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t p = 0; p < paths.candidates[k].size(); ++p) {
      const int v = first_var[k] + static_cast<int>(p);
      for (const EdgeId e : paths.candidates[k][p]) {
        model.add_coefficient(cap_row[static_cast<std::size_t>(e)], v, 1.0);
      }
    }
    // (23) demand row: path flow >= d_k · F (d_k == 1 when unweighted).
    const int row = model.add_row(RowType::kGreaterEqual, 0.0);
    for (std::size_t p = 0; p < paths.candidates[k].size(); ++p) {
      model.add_coefficient(row, first_var[k] + static_cast<int>(p), 1.0);
    }
    model.add_coefficient(row, f_var, -paths.demand_of(k));
  }

  const LpSolution sol = solve_lp_warm(model, lp, warm, warm_mode);
  if (throw_on_fail && !sol.optimal()) {
    throw SolverError("path MCF LP failed: " + to_string(sol.status));
  }
  PathMcfSolution out;
  out.status = sol.status;
  out.weights.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    out.weights[k].assign(paths.candidates[k].size(), 0.0);
  }
  // A solve aborted before its first basis export carries no values; leave
  // the zero weights for the caller's repair pass in that case.
  if (sol.values.size() > static_cast<std::size_t>(f_var)) {
    out.concurrent_flow = sol.values[static_cast<std::size_t>(f_var)];
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t p = 0; p < paths.candidates[k].size(); ++p) {
        const double v =
            sol.values[static_cast<std::size_t>(first_var[k]) + p];
        out.weights[k][p] = v > 1e-10 ? v : 0.0;
      }
    }
  }
  out.lp_iterations = sol.iterations;
  out.solve_seconds = sol.solve_seconds;
  return out;
}

}  // namespace

PathMcfSolution solve_path_mcf_exact(const DiGraph& g, const PathSet& paths,
                                     const SimplexOptions& lp, LpBasis* warm,
                                     LpWarmMode warm_mode) {
  return solve_path_mcf_impl(g, paths, lp, warm, warm_mode,
                             /*throw_on_fail=*/true);
}

PathMcfSolution solve_path_mcf_budgeted(const DiGraph& g, const PathSet& paths,
                                        const SimplexOptions& lp, LpBasis* warm,
                                        LpWarmMode warm_mode) {
  return solve_path_mcf_impl(g, paths, lp, warm, warm_mode,
                             /*throw_on_fail=*/false);
}

double max_link_load(const DiGraph& g, const PathSet& paths,
                     const std::vector<std::vector<double>>& weights) {
  A2A_REQUIRE(weights.size() == paths.candidates.size(),
              "weights shape mismatch");
  std::vector<double> load(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (std::size_t k = 0; k < weights.size(); ++k) {
    const double dk = paths.demand_of(k);
    if (dk <= 0.0) continue;
    double total = 0.0;
    for (const double w : weights[k]) total += w;
    A2A_REQUIRE(total > 0.0, "commodity ", k, " has zero total weight");
    for (std::size_t p = 0; p < weights[k].size(); ++p) {
      const double share = dk * (weights[k][p] / total);
      if (share <= 0.0) continue;
      for (const EdgeId e : paths.candidates[k][p]) {
        load[static_cast<std::size_t>(e)] += share / g.edge(e).capacity;
      }
    }
  }
  double worst = 0.0;
  for (const double l : load) worst = std::max(worst, l);
  return worst;
}

}  // namespace a2a
