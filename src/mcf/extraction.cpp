#include "mcf/extraction.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/algorithms.hpp"

namespace a2a {

namespace {

/// Finds one directed cycle in the positive-flow subgraph via iterative DFS.
/// Returns the cycle's edges, or empty if the subgraph is acyclic.
std::vector<EdgeId> find_positive_cycle(const DiGraph& g,
                                        const std::vector<double>& flow) {
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  // 0 = white, 1 = on stack, 2 = done.
  std::vector<unsigned char> color(n, 0);
  std::vector<EdgeId> entered_by(n, -1);
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    // Iterative DFS with explicit stack of (node, next-out-index).
    std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      const auto& outs = g.out_edges(u);
      bool advanced = false;
      while (idx < outs.size()) {
        const EdgeId e = outs[idx++];
        if (flow[static_cast<std::size_t>(e)] <= 0.0) continue;
        const NodeId v = g.edge(e).to;
        if (color[static_cast<std::size_t>(v)] == 1) {
          // Back edge: recover the cycle v -> ... -> u -> v.
          std::vector<EdgeId> cycle{e};
          for (NodeId at = u; at != v;) {
            const EdgeId pe = entered_by[static_cast<std::size_t>(at)];
            cycle.push_back(pe);
            at = g.edge(pe).from;
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
        if (color[static_cast<std::size_t>(v)] == 0) {
          color[static_cast<std::size_t>(v)] = 1;
          entered_by[static_cast<std::size_t>(v)] = e;
          stack.emplace_back(v, 0);
          advanced = true;
          break;
        }
      }
      if (!advanced && idx >= outs.size()) {
        color[static_cast<std::size_t>(u)] = 2;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace

void cancel_cycles(const DiGraph& g, std::vector<double>& flow, double tol) {
  A2A_REQUIRE(flow.size() == static_cast<std::size_t>(g.num_edges()),
              "flow vector size mismatch");
  for (auto& f : flow) {
    if (f < tol) f = 0.0;
  }
  for (;;) {
    const auto cycle = find_positive_cycle(g, flow);
    if (cycle.empty()) return;
    double bottleneck = std::numeric_limits<double>::infinity();
    for (const EdgeId e : cycle) {
      bottleneck = std::min(bottleneck, flow[static_cast<std::size_t>(e)]);
    }
    for (const EdgeId e : cycle) {
      auto& f = flow[static_cast<std::size_t>(e)];
      f -= bottleneck;
      if (f < tol) f = 0.0;
    }
  }
}

std::vector<WeightedPath> extract_widest_paths(const DiGraph& g, NodeId s,
                                               NodeId t,
                                               std::vector<double> flow,
                                               double target, double tol) {
  cancel_cycles(g, flow, tol);
  std::vector<WeightedPath> out;
  double extracted = 0.0;
  for (;;) {
    if (target >= 0.0 && extracted >= target - tol) break;
    const auto widest = widest_path(g, s, t, flow, tol);
    if (!widest) break;
    double rate = widest->bottleneck;
    if (target >= 0.0) rate = std::min(rate, target - extracted);
    for (const EdgeId e : widest->path) {
      auto& f = flow[static_cast<std::size_t>(e)];
      f -= rate;
      if (f < tol) f = 0.0;
    }
    out.push_back(WeightedPath{widest->path, rate});
    extracted += rate;
  }
  return out;
}

std::vector<WeightedPath> extract_widest_paths(const DiGraph& g, NodeId s,
                                               NodeId t, const SparseFlow& flow,
                                               double target, double tol) {
  return extract_widest_paths(g, s, t, flow.to_dense(g.num_edges()), target,
                              tol);
}

std::vector<double> prune_to_exact_flow(const DiGraph& g, NodeId s, NodeId t,
                                        const std::vector<double>& flow,
                                        double amount) {
  const auto paths = extract_widest_paths(g, s, t, flow, amount);
  double total = 0.0;
  for (const auto& wp : paths) total += wp.weight;
  A2A_REQUIRE(total >= amount - 1e-6,
              "flow does not carry the requested amount: ", total, " < ", amount);
  std::vector<double> pruned(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (const auto& wp : paths) {
    for (const EdgeId e : wp.path) pruned[static_cast<std::size_t>(e)] += wp.weight;
  }
  return pruned;
}

MultiSinkFlow split_source_flow(const DiGraph& g, NodeId s,
                                const std::vector<NodeId>& sinks,
                                const std::vector<double>& cap,
                                double sink_cap, double tol) {
  return split_source_flow(g, s, sinks, cap,
                           std::vector<double>(sinks.size(), sink_cap), tol);
}

MultiSinkFlow split_source_flow(const DiGraph& g, NodeId s,
                                const std::vector<NodeId>& sinks,
                                const std::vector<double>& cap,
                                const std::vector<double>& sink_caps,
                                double tol) {
  A2A_REQUIRE(cap.size() == static_cast<std::size_t>(g.num_edges()),
              "capacity vector size mismatch");
  A2A_REQUIRE(sink_caps.size() == sinks.size(), "sink cap vector size mismatch");
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  const std::size_t m = static_cast<std::size_t>(g.num_edges());

  // Max-flow by widest augmenting paths on the residual graph. Residual
  // widths: forward = cap - f, backward = f.
  std::vector<double> f(m, 0.0);
  std::vector<double> sink_remaining = sink_caps;
  std::vector<int> sink_index(n, -1);
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    sink_index[static_cast<std::size_t>(sinks[i])] = static_cast<int>(i);
  }

  for (;;) {
    // Single-source widest distances over the residual graph; edges are
    // (edge id, forward?) pairs.
    std::vector<double> width(n, 0.0);
    std::vector<std::pair<EdgeId, bool>> parent(n, {-1, true});
    std::vector<bool> done(n, false);
    width[static_cast<std::size_t>(s)] = std::numeric_limits<double>::infinity();
    using Item = std::pair<double, NodeId>;
    std::priority_queue<Item> heap;
    heap.emplace(width[static_cast<std::size_t>(s)], s);
    while (!heap.empty()) {
      const auto [w, u] = heap.top();
      heap.pop();
      if (done[static_cast<std::size_t>(u)]) continue;
      done[static_cast<std::size_t>(u)] = true;
      auto relax = [&](NodeId v, double res, EdgeId e, bool forward) {
        if (res <= tol) return;
        const double cand = std::min(w, res);
        if (cand > width[static_cast<std::size_t>(v)]) {
          width[static_cast<std::size_t>(v)] = cand;
          parent[static_cast<std::size_t>(v)] = {e, forward};
          heap.emplace(cand, v);
        }
      };
      for (const EdgeId e : g.out_edges(u)) {
        relax(g.edge(e).to, cap[static_cast<std::size_t>(e)] - f[static_cast<std::size_t>(e)], e, true);
      }
      for (const EdgeId e : g.in_edges(u)) {
        relax(g.edge(e).from, f[static_cast<std::size_t>(e)], e, false);
      }
    }
    // Pick the sink with the largest augmentable amount.
    int best_sink = -1;
    double best_amount = tol;
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      const double amount =
          std::min(width[static_cast<std::size_t>(sinks[i])], sink_remaining[i]);
      if (amount > best_amount) {
        best_amount = amount;
        best_sink = static_cast<int>(i);
      }
    }
    if (best_sink < 0) break;
    // Augment along the recorded parents.
    const NodeId d = sinks[static_cast<std::size_t>(best_sink)];
    for (NodeId at = d; at != s;) {
      const auto [e, forward] = parent[static_cast<std::size_t>(at)];
      A2A_ASSERT(e >= 0, "augmenting path backtrack broke");
      if (forward) {
        f[static_cast<std::size_t>(e)] += best_amount;
        at = g.edge(e).from;
      } else {
        f[static_cast<std::size_t>(e)] -= best_amount;
        at = g.edge(e).to;
      }
    }
    sink_remaining[static_cast<std::size_t>(best_sink)] -= best_amount;
  }

  cancel_cycles(g, f, tol);

  MultiSinkFlow out;
  out.delivered.assign(sinks.size(), 0.0);
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    out.delivered[i] = sink_caps[i] - sink_remaining[i];
  }
  out.per_sink_flow.assign(sinks.size(), std::vector<double>(m, 0.0));

  // Flow decomposition: repeatedly trace backward from a sink with remaining
  // demand along positive-flow edges to s; each subtraction preserves
  // conservation, so progress is guaranteed on the acyclic support.
  std::vector<double> remaining_demand = out.delivered;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    while (remaining_demand[i] > tol) {
      Path reversed;
      NodeId at = sinks[i];
      double bottleneck = remaining_demand[i];
      while (at != s) {
        EdgeId pick = -1;
        double best = 0.0;
        for (const EdgeId e : g.in_edges(at)) {
          if (f[static_cast<std::size_t>(e)] > best) {
            best = f[static_cast<std::size_t>(e)];
            pick = e;
          }
        }
        A2A_ASSERT(pick >= 0, "flow decomposition stuck at node ", at,
                   " for sink ", sinks[i]);
        reversed.push_back(pick);
        bottleneck = std::min(bottleneck, best);
        at = g.edge(pick).from;
      }
      for (const EdgeId e : reversed) {
        auto& fe = f[static_cast<std::size_t>(e)];
        fe -= bottleneck;
        if (fe < tol) fe = 0.0;
        out.per_sink_flow[i][static_cast<std::size_t>(e)] += bottleneck;
      }
      remaining_demand[i] -= bottleneck;
      if (remaining_demand[i] < tol) remaining_demand[i] = 0.0;
    }
  }
  return out;
}

}  // namespace a2a
