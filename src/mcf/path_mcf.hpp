// Path-variable MCF (pMCF) — §3.1.4, eqs. (21)-(24).
//
// For fabrics with NIC forwarding, flow variables live on candidate paths.
// The exact LP is the dual view of the link MCF; with the candidate set
// restricted to link-disjoint paths (|P| <= d per pair) it stays tractable
// and — as §5.3 observes — almost matches the unrestricted optimum, while
// all-shortest-path candidates can be both weaker (expanders) and
// exponentially many (tori).
#pragma once

#include "graph/digraph.hpp"
#include "lp/simplex.hpp"
#include "mcf/fleischer.hpp"

namespace a2a {

/// Candidate set builders -----------------------------------------------
///
/// With a non-null `demand`, zero-weight pairs are omitted from the set and
/// PathSet::demands records each kept commodity's weight; nullptr keeps the
/// historical all-pairs shape with `demands` left empty (unit).

/// Maximal link-disjoint path sets for every ordered terminal pair.
[[nodiscard]] PathSet build_disjoint_path_set(const DiGraph& g,
                                              const std::vector<NodeId>& terminals,
                                              const DemandMatrix* demand = nullptr);

/// All shortest paths per pair, truncated at `per_pair_limit`; `truncated`
/// (optional) reports whether any pair hit the limit — the Fig. 1
/// "#(s,d) paths large?" signal.
[[nodiscard]] PathSet build_shortest_path_set(const DiGraph& g,
                                              const std::vector<NodeId>& terminals,
                                              int per_pair_limit = 64,
                                              bool* truncated = nullptr,
                                              const DemandMatrix* demand = nullptr);

/// Exact path-based MCF LP. Result weights align with `paths.candidates`.
struct PathMcfSolution {
  double concurrent_flow = 0.0;
  std::vector<std::vector<double>> weights;  ///< [commodity][candidate].
  long long lp_iterations = 0;
  double solve_seconds = 0.0;
  /// LP outcome. Always kOptimal from solve_path_mcf_exact (it throws
  /// otherwise); the budgeted variant reports kTimeLimit / kIterationLimit
  /// with best-effort weights instead.
  LpStatus status = LpStatus::kOptimal;
};
/// A non-null `warm` seeds the LP basis (when non-empty) and receives the
/// final one — the Fig. 9 disabled-link sweep re-solves the same candidate
/// set under perturbed capacities, so each step restarts near-optimal.
[[nodiscard]] PathMcfSolution solve_path_mcf_exact(const DiGraph& g,
                                                   const PathSet& paths,
                                                   const SimplexOptions& lp = {},
                                                   LpBasis* warm = nullptr,
                                                   LpWarmMode warm_mode = LpWarmMode::kAuto);

/// Deadline-tolerant variant for online re-scheduling: a non-optimal LP
/// outcome (e.g. SimplexOptions::time_limit_s expired) is reported via
/// `status` instead of thrown, with whatever primal values the solver
/// reached. Callers must check `status` — non-optimal weights may be
/// infeasible or all-zero and need a downstream repair/validation pass.
[[nodiscard]] PathMcfSolution solve_path_mcf_budgeted(const DiGraph& g,
                                                      const PathSet& paths,
                                                      const SimplexOptions& lp = {},
                                                      LpBasis* warm = nullptr,
                                                      LpWarmMode warm_mode = LpWarmMode::kAuto);

/// Max per-edge load if each commodity splits its demand (unit, or
/// PathSet::demands when set) over its candidate paths with the given
/// weights (weights are normalized per commodity first). 1/load is the
/// achieved concurrent rate per unit demand.
[[nodiscard]] double max_link_load(const DiGraph& g, const PathSet& paths,
                                   const std::vector<std::vector<double>>& weights);

}  // namespace a2a
